package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTreeDPMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		g, src := gen.RandomCTree(12, 0.4, seed)
		m, err := flow.NewModel(g, []int{src})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ev := flow.NewBig(m)
		for k := 0; k <= 3; k++ {
			a, fDP, err := TreeDP(g, src, k)
			if err != nil {
				t.Logf("seed %d k=%d: TreeDP: %v", seed, k, err)
				return false
			}
			if len(a) > k {
				t.Logf("seed %d k=%d: %d filters placed", seed, k, len(a))
				return false
			}
			// The DP's claimed value must match the evaluator's view of
			// the returned set, and equal the exhaustive optimum.
			got := ev.F(flow.MaskOf(g.N(), a))
			if math.Abs(got-fDP) > 1e-9 {
				t.Logf("seed %d k=%d: DP claims F=%v, evaluator says %v (set %v)", seed, k, fDP, got, a)
				return false
			}
			_, optF := Exhaustive(ev, k)
			if math.Abs(fDP-optF) > 1e-9 {
				t.Logf("seed %d k=%d: DP F=%v, exhaustive F=%v", seed, k, fDP, optF)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTreeDPZeroBudget(t *testing.T) {
	g, src := gen.RandomCTree(10, 0.5, 3)
	a, f, err := TreeDP(g, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 0 || f != 0 {
		t.Errorf("k=0: set=%v F=%v, want empty and 0", a, f)
	}
}

func TestTreeDPPathGraph(t *testing.T) {
	// A pure path with source edges into every node: s→v0, s→v1, s→v2,
	// v0→v1→v2. Copy counts: v0 gets 1, v1 gets 1+1=2, v2 gets 1+2=3.
	// Φ(∅) = 6. One filter: best at v1 (emit 1 → v2 gets 2): Φ = 5? or at
	// v2 (no children — useless). Actually filter at v1: v1 still
	// receives 2, v2 receives 1+1 = 2 → Φ = 1+2+2 = 5, F = 1.
	b := graph.NewBuilder(4)
	s := 3
	b.AddEdge(s, 0)
	b.AddEdge(s, 1)
	b.AddEdge(s, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	a, f, err := TreeDP(g, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Errorf("F = %v, want 1 (set %v)", f, a)
	}
	if len(a) != 1 || a[0] != 1 {
		t.Errorf("filter set = %v, want [1]", a)
	}
	// Two filters: also filter... v2 is a sink and v0 receives 1 copy, so
	// nothing else helps; DP must not waste the budget.
	_, f2, err := TreeDP(g, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != 1 {
		t.Errorf("F(k=2) = %v, want 1", f2)
	}
}

func TestTreeDPRejectsNonTree(t *testing.T) {
	// Diamond: node 3 has two non-source parents.
	g := graph.MustFromEdges(5, [][2]int{{4, 0}, {0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if _, _, err := TreeDP(g, 4, 1); !errors.Is(err, ErrNotCTree) {
		t.Errorf("err = %v, want ErrNotCTree", err)
	}
}

func TestTreeDPRejectsCycle(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{2, 0}, {0, 1}, {1, 0}})
	// Node 0 and 1 form a cycle below source 2... node 0 has parents {2,1}:
	// two-parent check fires or cycle check fires; either way ErrNotCTree.
	if _, _, err := TreeDP(g, 2, 1); !errors.Is(err, ErrNotCTree) {
		t.Errorf("err = %v, want ErrNotCTree", err)
	}
}

func TestTreeDPBadArgs(t *testing.T) {
	g, src := gen.RandomCTree(5, 0.5, 1)
	if _, _, err := TreeDP(g, src, -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := TreeDP(g, -3, 1); err == nil {
		t.Error("negative source accepted")
	}
	if _, _, err := TreeDP(g, 0, 1); err == nil {
		// Node 0 has in-edges (it is the tree root fed by the source), so
		// it cannot be a source.
		t.Error("non-source node accepted as source")
	}
}

func TestTreeDPMatchesGreedyOnTrees(t *testing.T) {
	// Greedy is near-optimal; on trees the DP is exact, so DP ≥ greedy.
	f := func(seed int64) bool {
		g, src := gen.RandomCTree(40, 0.3, seed)
		m := flow.MustModel(g, []int{src})
		ev := flow.NewBig(m)
		k := 3
		a := GreedyAll(ev, k)
		greedyF := ev.F(flow.MaskOf(g.N(), a))
		_, dpF, err := TreeDP(g, src, k)
		if err != nil {
			return false
		}
		return dpF >= greedyF-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
