package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

// chainTestModel builds a chain-heavy DAG: a small random core with long
// single-in relay chains hanging off it — the structure ml-celf's lossless
// rules contract hardest.
func chainTestModel(t testing.TB, n int, seed int64) *flow.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	core := n / 5
	if core < 4 {
		core = 4
	}
	b := graph.NewBuilder(n)
	for v := 1; v < core; v++ {
		d := 1 + rng.Intn(3)
		for j := 0; j < d; j++ {
			b.AddEdge(rng.Intn(v), v)
		}
	}
	v := core
	for v < n {
		length := 2 + rng.Intn(6)
		if v+length > n {
			length = n - v
		}
		origin := rng.Intn(core)
		at := origin
		for j := 0; j < length; j++ {
			b.AddEdge(at, v)
			at = v
			v++
		}
		if rng.Intn(2) == 0 && origin+1 < core {
			b.AddEdge(at, origin+1+rng.Intn(core-origin-1))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := flow.NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMLCELFLosslessEqualsCELF is the tentpole property: with lossless
// coarsening, ml-celf returns EXACTLY celf's filter set — same ids, same
// pick order, same F(A) — on both arithmetic engines.
func TestMLCELFLosslessEqualsCELF(t *testing.T) {
	ctx := context.Background()
	models := map[string]*flow.Model{
		"chain-heavy-300": chainTestModel(t, 300, 1),
		"chain-heavy-500": chainTestModel(t, 500, 2),
		"random-sparse":   placeTestModel(t, 150, 0.03, 3),
	}
	for name, m := range models {
		engines := map[string]func() flow.Evaluator{
			"float": func() flow.Evaluator { return flow.NewFloat(m) },
			"big":   func() flow.Evaluator { return flow.NewBig(m) },
		}
		for engName, mk := range engines {
			ref, err := Place(ctx, mk(), 8, Options{Strategy: StrategyCELF})
			if err != nil {
				t.Fatalf("%s/%s celf: %v", name, engName, err)
			}
			ml, err := Place(ctx, mk(), 8, Options{
				Strategy: StrategyMLCELF,
				Coarsen:  flow.CoarsenOptions{Lossless: true},
			})
			if err != nil {
				t.Fatalf("%s/%s ml-celf: %v", name, engName, err)
			}
			if ml.CoarsenStats == nil || !ml.CoarsenStats.LosslessOnly {
				t.Fatalf("%s/%s: lossless run reported stats %+v", name, engName, ml.CoarsenStats)
			}
			if !reflect.DeepEqual(ml.Filters, ref.Filters) {
				t.Fatalf("%s/%s: ml-celf picked %v, celf picked %v (coarsen %+v)",
					name, engName, ml.Filters, ref.Filters, *ml.CoarsenStats)
			}
			ev := mk()
			mask := flow.MaskOf(m.N(), ml.Filters)
			if got, want := ev.F(mask), ev.F(flow.MaskOf(m.N(), ref.Filters)); got != want {
				t.Fatalf("%s/%s: F mismatch %v vs %v", name, engName, got, want)
			}
			// The quotient solve must touch fewer candidates than celf's
			// V-sized init on graphs that actually contract.
			if ml.CoarsenStats.NodesAfter < ml.CoarsenStats.NodesBefore/2 &&
				ml.Stats.GainEvaluations >= ref.Stats.GainEvaluations {
				t.Fatalf("%s/%s: ml-celf spent %d gain evals, celf %d, despite %d→%d contraction",
					name, engName, ml.Stats.GainEvaluations, ref.Stats.GainEvaluations,
					ml.CoarsenStats.NodesBefore, ml.CoarsenStats.NodesAfter)
			}
		}
	}
}

// TestMLCELFBoundedQuality checks bounded mode (twin merging allowed):
// the refined placement's objective stays within 2% of exact CELF's.
func TestMLCELFBoundedQuality(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 4; seed++ {
		m := placeTestModel(t, 200, 0.04, seed)
		ev := flow.NewFloat(m)
		ref, err := Place(ctx, ev, 10, Options{Strategy: StrategyCELF})
		if err != nil {
			t.Fatal(err)
		}
		ml, err := Place(ctx, flow.NewFloat(m), 10, Options{Strategy: StrategyMLCELF})
		if err != nil {
			t.Fatal(err)
		}
		refF := ev.F(flow.MaskOf(m.N(), ref.Filters))
		mlF := ev.F(flow.MaskOf(m.N(), ml.Filters))
		if mlF < 0.98*refF {
			t.Fatalf("seed %d: bounded ml-celf F=%v vs celf F=%v (%.2f%% loss, coarsen %+v)",
				seed, mlF, refF, 100*(1-mlF/refF), *ml.CoarsenStats)
		}
	}
}

// TestMLCELFApproxQuotient: Quality>0 routes the quotient solve through
// approx-celf; a lossless run propagates the sampled CI (it estimates the
// original Φ), a bounded run must drop it.
func TestMLCELFApproxQuotient(t *testing.T) {
	ctx := context.Background()
	m := chainTestModel(t, 400, 5)
	res, err := Place(ctx, flow.NewFloat(m), 6, Options{
		Strategy: StrategyMLCELF,
		Quality:  0.1,
		Coarsen:  flow.CoarsenOptions{Lossless: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Filters) != 6 {
		t.Fatalf("placed %d filters, want 6", len(res.Filters))
	}
	if res.Stats.SampledEvaluations == 0 {
		t.Fatal("approx quotient solve did no sampled evaluations")
	}
	if res.PhiCI == nil {
		t.Fatal("lossless approx run dropped the Φ confidence interval")
	}
	bounded, err := Place(ctx, flow.NewFloat(m), 6, Options{Strategy: StrategyMLCELF, Quality: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !bounded.CoarsenStats.LosslessOnly && bounded.PhiCI != nil {
		t.Fatal("bounded approx run kept a CI that estimates the wrong objective")
	}
}

// TestMLCELFParallelDeterminism: filters and OracleStats are bit-identical
// at every Parallelism setting, including the refine stage.
func TestMLCELFParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 2; seed++ {
		m := chainTestModel(t, 400, seed)
		for _, lossless := range []bool{true, false} {
			opts := Options{Strategy: StrategyMLCELF, Coarsen: flow.CoarsenOptions{Lossless: lossless}}
			serial, err := Place(ctx, flow.NewFloat(m), 10, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{4, runtime.GOMAXPROCS(0)} {
				popts := opts
				popts.Parallelism = procs
				par, err := Place(ctx, flow.NewFloat(m), 10, popts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(par.Filters, serial.Filters) {
					t.Fatalf("seed %d lossless=%v procs=%d: filters %v != serial %v",
						seed, lossless, procs, par.Filters, serial.Filters)
				}
				if par.Stats != serial.Stats {
					t.Fatalf("seed %d lossless=%v procs=%d: stats %+v != serial %+v",
						seed, lossless, procs, par.Stats, serial.Stats)
				}
			}
		}
	}
}

// TestOptionsValidate pins the centralized validation contract shared by
// core.Place, the HTTP layer and the CLI.
func TestOptionsValidate(t *testing.T) {
	good := []Options{
		{},
		{Strategy: StrategyMLCELF, Coarsen: flow.CoarsenOptions{TargetRatio: 0.5}},
		{Quality: 0.5, SampleBudget: 3},
		{Parallelism: 8},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Fatalf("good[%d] rejected: %v", i, err)
		}
	}
	bad := []Options{
		{Strategy: "no-such-strategy"},
		{Parallelism: -1},
		{Quality: -0.1},
		{Quality: 0.6},
		{SampleBudget: -1},
		{Coarsen: flow.CoarsenOptions{TargetRatio: 1.5}},
		{Coarsen: flow.CoarsenOptions{TargetRatio: -0.1}},
		{Coarsen: flow.CoarsenOptions{MaxRounds: -1}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad[%d] accepted: %+v", i, o)
		}
		// Place must surface the identical error.
		m := placeTestModel(t, 10, 0.2, 1)
		if _, err := Place(context.Background(), flow.NewFloat(m), 2, o); err == nil {
			t.Fatalf("Place accepted bad[%d]: %+v", i, o)
		}
	}
}
