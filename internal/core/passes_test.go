package core

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/flow"
	"repro/internal/obs"
)

// TestPlacePassStats pins the pass-accounting contract: Result.Passes is
// the placement's own delta (engine-construction passes excluded), and
// for the round-structured strategies the counts follow directly from
// the algorithm shape.
func TestPlacePassStats(t *testing.T) {
	m := placeTestModel(t, 120, 0.06, 11)
	ev := flow.NewFloat(m)

	res, err := Place(context.Background(), ev, 8, Options{Strategy: StrategyGreedyAll})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy_All costs exactly one forward + one suffix pass per round,
	// and every round (including a final unproductive one, if any) scans
	// all n candidates.
	rounds := int64(res.Stats.GainEvaluations / m.N())
	if res.Passes.Forward != rounds || res.Passes.Suffix != rounds {
		t.Errorf("greedy-all passes = %+v, want forward=suffix=%d rounds", res.Passes, rounds)
	}
	if res.Passes.Forward == 0 {
		t.Fatal("greedy-all recorded zero passes")
	}

	// A second placement on the same engine must report its own delta,
	// not the cumulative engine total.
	res2, err := Place(context.Background(), ev, 8, Options{Strategy: StrategyGreedyAll})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Passes != res.Passes {
		t.Errorf("repeat placement passes = %+v, first = %+v; delta accounting broken", res2.Passes, res.Passes)
	}

	// Naive re-evaluates every candidate per round: one forward pass per
	// gain evaluation plus one base Φ(A) per round, no suffix passes.
	nres, err := Place(context.Background(), ev, 4, Options{Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	wantFwd := int64(nres.Stats.GainEvaluations + nres.Stats.Iterations)
	if nres.Passes.Forward != wantFwd || nres.Passes.Suffix != 0 {
		t.Errorf("naive passes = %+v, want forward=%d suffix=0", nres.Passes, wantFwd)
	}
}

// TestPlacePassStatsParallelGreedyAll: greedy-all's level-parallel passes
// run the same one forward + one suffix per round, so pass counts match
// the serial run exactly. (CELF makes no such promise: speculative batch
// evaluations execute real passes.)
func TestPlacePassStatsParallelGreedyAll(t *testing.T) {
	m := placeTestModel(t, 150, 0.05, 5)
	serial, err := Place(context.Background(), flow.NewFloat(m), 10, Options{Strategy: StrategyGreedyAll})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Place(context.Background(), flow.NewFloat(m), 10,
		Options{Strategy: StrategyGreedyAll, Parallelism: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if par.Passes != serial.Passes {
		t.Errorf("parallel greedy-all passes %+v != serial %+v", par.Passes, serial.Passes)
	}
}

// TestPlaceTraceStages: a Trace passed through Options records the
// strategy's stage spans without perturbing results.
func TestPlaceTraceStages(t *testing.T) {
	m := placeTestModel(t, 120, 0.06, 3)
	cases := map[Strategy]string{
		StrategyGreedyAll: "greedy-round",
		StrategyCELF:      "celf-init",
		StrategyNaive:     "naive-round",
	}
	for strat, wantStage := range cases {
		tr := obs.NewTrace()
		plain, err := Place(context.Background(), flow.NewFloat(m), 6, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		traced, err := Place(context.Background(), flow.NewFloat(m), 6, Options{Strategy: strat, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if traced.Stats != plain.Stats {
			t.Errorf("%s: tracing changed stats: %+v vs %+v", strat, traced.Stats, plain.Stats)
		}
		found := false
		for _, rec := range tr.Snapshot() {
			if rec.Name == wantStage {
				found = true
				if rec.Count <= 0 || rec.Evals <= 0 {
					t.Errorf("%s: stage %q record %+v lacks count/evals", strat, wantStage, rec)
				}
			}
		}
		if !found {
			t.Errorf("%s: trace missing stage %q: %+v", strat, wantStage, tr.Snapshot())
		}
	}
}
