package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/flow"
	"repro/internal/obs"
)

// TestAccountingEquivalence is the determinism gate of the tenant
// accounting layer: Place with Options.Account set must return filter
// sets AND OracleStats bit-identical to the unaccounted run — accounting
// observes placements, it never participates in them. Checked across
// strategies and parallelism levels, and the counters must end up charged
// with exactly the work the result reports.
func TestAccountingEquivalence(t *testing.T) {
	m := placeTestModel(t, 80, 0.05, 42)
	strategies := []Strategy{StrategyGreedyAll, StrategyCELF, StrategyNaive, StrategyGreedyMax}
	for _, strat := range strategies {
		for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
			base := Options{Strategy: strat, Parallelism: procs, Seed: 7}

			want, err := Place(context.Background(), flow.NewFloat(m), 6, base)
			if err != nil {
				t.Fatalf("%s P=%d unaccounted: %v", strat, procs, err)
			}

			acct := obs.NewAccountant(0)
			opts := base
			opts.Tenant = "acme"
			opts.Account = acct.Tenant("acme")
			got, err := Place(context.Background(), flow.NewFloat(m), 6, opts)
			if err != nil {
				t.Fatalf("%s P=%d accounted: %v", strat, procs, err)
			}

			if !reflect.DeepEqual(got.Filters, want.Filters) {
				t.Errorf("%s P=%d: accounted filters %v, unaccounted %v",
					strat, procs, got.Filters, want.Filters)
			}
			if got.Stats != want.Stats {
				t.Errorf("%s P=%d: accounted stats %+v, unaccounted %+v",
					strat, procs, got.Stats, want.Stats)
			}

			u := acct.Tenant("acme").Usage()
			if u.Placements != 1 {
				t.Errorf("%s P=%d: placements charged = %d, want 1", strat, procs, u.Placements)
			}
			if u.OracleEvaluations != int64(got.Stats.GainEvaluations) {
				t.Errorf("%s P=%d: oracle evals charged = %d, result reports %d",
					strat, procs, u.OracleEvaluations, int64(got.Stats.GainEvaluations))
			}
			if wantPasses := got.Passes.Forward; u.ForwardPasses != wantPasses {
				t.Errorf("%s P=%d: forward passes charged = %d, result reports %d",
					strat, procs, u.ForwardPasses, wantPasses)
			}
		}
	}
}

// TestAccountingBatchEquivalence extends the gate to PlaceBatch: gang
// results with accounting on must match unaccounted solo runs, and the
// tenant is charged once per graph.
func TestAccountingBatchEquivalence(t *testing.T) {
	models := batchTestModels(t, 6)
	base := Options{Strategy: StrategyCELF, Parallelism: 2, Seed: 3}

	want := make([]Result, len(models))
	for i, m := range models {
		var err error
		want[i], err = Place(context.Background(), flow.NewFloat(m), 5, base)
		if err != nil {
			t.Fatalf("solo graph %d: %v", i, err)
		}
	}

	acct := obs.NewAccountant(0)
	opts := base
	opts.Tenant = "fleet"
	opts.Account = acct.Tenant("fleet")
	evs := make([]flow.Evaluator, len(models))
	for i, m := range models {
		evs[i] = flow.NewFloat(m)
	}
	got, err := PlaceBatch(context.Background(), evs, 5, opts)
	if err != nil {
		t.Fatalf("accounted batch: %v", err)
	}
	var totalEvals int64
	for i := range models {
		if !reflect.DeepEqual(got[i].Filters, want[i].Filters) {
			t.Errorf("graph %d: accounted batch filters %v, unaccounted solo %v",
				i, got[i].Filters, want[i].Filters)
		}
		if got[i].Stats != want[i].Stats {
			t.Errorf("graph %d: accounted batch stats %+v, unaccounted solo %+v",
				i, got[i].Stats, want[i].Stats)
		}
		totalEvals += int64(got[i].Stats.GainEvaluations)
	}
	u := acct.Tenant("fleet").Usage()
	if u.Placements != int64(len(models)) {
		t.Errorf("placements charged = %d, want %d", u.Placements, len(models))
	}
	if u.OracleEvaluations != totalEvals {
		t.Errorf("oracle evals charged = %d, results report %d", u.OracleEvaluations, totalEvals)
	}
}

// TestAccountingNilIsNoop: a zero Options.Account must behave exactly as
// before the accounting layer existed.
func TestAccountingNilIsNoop(t *testing.T) {
	m := placeTestModel(t, 40, 0.08, 9)
	res, err := Place(context.Background(), flow.NewFloat(m), 3,
		Options{Strategy: StrategyGreedyAll, Tenant: "named-but-unaccounted"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Filters) != 3 {
		t.Fatalf("got %d filters, want 3", len(res.Filters))
	}
}
