package core

import (
	"context"

	"repro/internal/flow"
)

// Multilevel placement: coarsen, solve on the quotient, project back,
// refine.
//
// CELF's cost is dominated by oracle work proportional to the graph size:
// the exact init sweep is V evaluations and every pass the oracle runs is
// O(V + E). On chain-heavy graphs most of that work is spent on nodes
// that provably cannot beat their neighbors — the interior of a relay
// chain is strictly dominated by the chain's head. ml-celf contracts the
// graph first (flow.Coarsen: chain folding, sink absorption and — in
// bounded mode — twin merging), runs CELF on the quotient where every
// pass touches only the contracted node set, then projects the quotient
// picks back to their supernode heads.
//
// Quality contract, two regimes:
//
//   - Lossless (Options.Coarsen.Lossless, or when no twin merge fired —
//     Result.CoarsenStats.LosslessOnly): the quotient's Φ, marginal gains
//     and argmax are bit-for-bit the original's at every matching filter
//     set, and supernode heads strictly dominate their fiber members. The
//     projected picks are EXACTLY the filter set plain celf returns on
//     the uncoarsened graph — same ids, same order — so no refinement
//     runs.
//
//   - Bounded (twin merges fired): the quotient objective is a tight
//     bound rather than an identity, so each projected pick is locally
//     refined — every member of the pick's fiber is re-evaluated with the
//     EXACT oracle on the original graph (conditioned on the other picks)
//     and the best member replaces the head when it wins. Exact work is
//     Σ|fiber(pick)|, scaling with k and fiber width, never with V.
//
// Determinism matches the rest of the package: coarsening is
// single-threaded and deterministic, the quotient solve inherits CELF's
// bit-identical-at-any-parallelism contract, and refinement evaluates
// fibers in pick order with ascending-id tie-breaking through the same
// evalPool arithmetic as celf/naive.
func placeMultilevel(ctx context.Context, ev flow.Evaluator, k int, opts Options, res *Result) error {
	// The quotient evaluator mirrors the caller's engine so lossless runs
	// reproduce its arithmetic exactly. Engines we cannot rebuild on a
	// quotient model (simulators, custom evaluators) fall back to plain
	// CELF on the original graph — correct, just uncoarsened.
	var build func(*flow.Model) flow.Evaluator
	switch ev.(type) {
	case *flow.FloatEngine:
		build = func(qm *flow.Model) flow.Evaluator { return flow.NewFloat(qm) }
	case *flow.BigEngine:
		build = func(qm *flow.Model) flow.Evaluator { return flow.NewBig(qm) }
	default:
		return placeCELF(ctx, ev, k, opts, res)
	}
	m := ev.Model()

	csp := opts.Trace.Begin("coarsen")
	qm, cm, cst, err := flow.Coarsen(m, opts.Coarsen)
	csp.End()
	if err != nil {
		return err
	}
	res.CoarsenStats = &cst

	qev := build(qm)
	if r, ok := qev.(flow.ScratchReleaser); ok {
		defer r.ReleaseScratch()
	}
	// Quotient passes are charged to this placement too. Snapshot after
	// construction so the quotient engine's invariant passes stay
	// excluded, mirroring Place's accounting of the caller's engine.
	var qf0, qs0 int64
	qpc, hasQPasses := qev.(flow.PassCounter)
	if hasQPasses {
		qf0, qs0 = qpc.Passes()
	}

	// Solve on the quotient: exact CELF by default, estimate-driven
	// approx-celf when the caller asked for sampled quality (the same
	// knobs approx-celf itself reads).
	sub := Result{}
	if opts.Quality != 0 || opts.SampleBudget > 0 {
		err = placeApproxCELF(ctx, qev, k, opts, &sub)
	} else {
		err = placeCELF(ctx, qev, k, opts, &sub)
	}
	res.Stats.GainEvaluations += sub.Stats.GainEvaluations
	res.Stats.SampledEvaluations += sub.Stats.SampledEvaluations
	res.Stats.Iterations += sub.Stats.Iterations
	res.Parallelism = max(res.Parallelism, sub.Parallelism)
	if hasQPasses {
		f, s := qpc.Passes()
		res.Passes.Forward += f - qf0
		res.Passes.Suffix += s - qs0
	}
	if err != nil {
		return err
	}

	heads := cm.ProjectFilters(sub.Filters)
	if cst.LosslessOnly {
		// The quotient solve IS the original solve: heads are the exact
		// celf picks and the sampled CI (if any) estimates the original Φ.
		res.Filters = heads
		res.PhiCI = sub.PhiCI
		return nil
	}
	// Bounded quotient: the CI estimated the quotient objective and the
	// picks are about to move within their fibers, so the CI is dropped
	// rather than misreported.
	return refineFibers(ctx, ev, cm, sub.Filters, heads, opts, res)
}

// refineFibers replaces each projected pick with the exact-gain argmax of
// its supernode fiber, conditioned on all other picks. Fibers are
// disjoint, so picks stay distinct; evaluation order is pick order and
// ties break toward the smaller original id.
func refineFibers(ctx context.Context, ev flow.Evaluator, cm *flow.CoarsenMap, qPicks, heads []int, opts Options, res *Result) error {
	m := ev.Model()
	pool := newEvalPool(ev, opts.Parallelism, opts.Tenant)
	defer pool.close()
	res.Parallelism = max(res.Parallelism, pool.width())
	filters := make([]bool, m.N())
	for _, h := range heads {
		filters[h] = true
	}
	chosen := make([]int, 0, len(heads))
	var cands []int
	for i, h := range heads {
		fiber := cm.Fiber(qPicks[i])
		if len(fiber) == 1 {
			chosen = append(chosen, h)
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		filters[h] = false
		cands = cands[:0]
		for _, v32 := range fiber {
			if v := int(v32); !filters[v] && !m.IsSource(v) {
				cands = append(cands, v)
			}
		}
		rsp := opts.Trace.Begin("refine")
		gains, err := pool.gains(ctx, filters, cands)
		rsp.AddEvals(int64(len(cands)))
		rsp.SetWorkers(pool.width())
		rsp.End()
		if err != nil {
			return err
		}
		res.Stats.GainEvaluations += len(cands)
		// cands ascend (fibers are sorted), so strict > keeps the
		// smallest id among equal gains.
		best, bestGain := h, 0.0
		for j, v := range cands {
			if gains[j] > bestGain {
				best, bestGain = v, gains[j]
			}
		}
		filters[best] = true
		chosen = append(chosen, best)
	}
	res.Filters = chosen
	return nil
}
