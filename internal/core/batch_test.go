package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/flow"
)

// batchTestModels builds a fleet of distinct small DAG models.
func batchTestModels(t testing.TB, count int) []*flow.Model {
	t.Helper()
	models := make([]*flow.Model, count)
	for i := range models {
		// Vary size and density so sub-placements finish at different
		// times and the gang actually interleaves.
		n := 60 + 15*(i%5)
		models[i] = placeTestModel(t, n, 0.04+0.01*float64(i%3), int64(100+i))
	}
	return models
}

// TestPlaceBatchBitIdentical is the acceptance gate of the batch refactor:
// PlaceBatch over G graphs must return filter sets AND OracleStats
// bit-identical to G sequential Place calls, at P = 1, 4 and GOMAXPROCS,
// on both the float and the exact big-integer engine, across strategies.
func TestPlaceBatchBitIdentical(t *testing.T) {
	models := batchTestModels(t, 12)
	strategies := []Strategy{StrategyGreedyAll, StrategyCELF, StrategyNaive, StrategyGreedyMax, StrategyRandK}
	engines := map[string]func(*flow.Model) flow.Evaluator{
		"float": func(m *flow.Model) flow.Evaluator { return flow.NewFloat(m) },
		"big":   func(m *flow.Model) flow.Evaluator { return flow.NewBig(m) },
	}
	for engName, newEv := range engines {
		for _, strat := range strategies {
			for _, procs := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				opts := Options{Strategy: strat, Parallelism: procs, Seed: 5}

				// Sequential reference: one solo Place per graph, fresh
				// evaluators so scratch state cannot leak between runs.
				want := make([]Result, len(models))
				for i, m := range models {
					var err error
					want[i], err = Place(context.Background(), newEv(m), 8, opts)
					if err != nil {
						t.Fatalf("%s/%s P=%d solo graph %d: %v", engName, strat, procs, i, err)
					}
				}

				evs := make([]flow.Evaluator, len(models))
				for i, m := range models {
					evs[i] = newEv(m)
				}
				got, err := PlaceBatch(context.Background(), evs, 8, opts)
				if err != nil {
					t.Fatalf("%s/%s P=%d batch: %v", engName, strat, procs, err)
				}
				for i := range models {
					if !reflect.DeepEqual(got[i].Filters, want[i].Filters) {
						t.Errorf("%s/%s P=%d graph %d: batch filters %v, solo %v",
							engName, strat, procs, i, got[i].Filters, want[i].Filters)
					}
					if got[i].Stats != want[i].Stats {
						t.Errorf("%s/%s P=%d graph %d: batch stats %+v, solo %+v",
							engName, strat, procs, i, got[i].Stats, want[i].Stats)
					}
				}
			}
		}
	}
}

// TestPlaceBatchRejectsSharedRand checks the per-graph-rng contract.
func TestPlaceBatchRejectsSharedRand(t *testing.T) {
	m := placeTestModel(t, 30, 0.1, 1)
	_, err := PlaceBatch(context.Background(), []flow.Evaluator{flow.NewFloat(m)}, 2,
		Options{Strategy: StrategyRandK, Rand: rand.New(rand.NewSource(1))})
	if err == nil {
		t.Fatal("shared Rand accepted")
	}
}

// TestPlaceBatchEmpty checks the trivial gang.
func TestPlaceBatchEmpty(t *testing.T) {
	res, err := PlaceBatch(context.Background(), nil, 3, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
}

// TestPlaceBatchCancellation checks a canceled gang aborts every
// sub-placement, returns ctx.Err, and reports nil filters per graph.
func TestPlaceBatchCancellation(t *testing.T) {
	models := batchTestModels(t, 6)
	evs := make([]flow.Evaluator, len(models))
	for i, m := range models {
		evs[i] = flow.NewFloat(m)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PlaceBatch(ctx, evs, 5, Options{Strategy: StrategyGreedyAll, Parallelism: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range res {
		if r.Filters != nil {
			t.Errorf("graph %d returned filters %v after cancel", i, r.Filters)
		}
	}

	// Mid-flight cancel must also come back promptly.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := PlaceBatch(ctx, evs, 50, Options{Strategy: StrategyNaive, Parallelism: 2})
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && err != context.Canceled {
			t.Fatalf("mid-flight: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("PlaceBatch did not return after cancellation")
	}
}

// TestPlaceBatchConcurrentGangs runs several whole gangs concurrently
// (run under -race): the shared scheduler must keep every gang's results
// bit-identical to its solo reference even while competing for workers.
func TestPlaceBatchConcurrentGangs(t *testing.T) {
	models := batchTestModels(t, 8)
	want := make([]Result, len(models))
	for i, m := range models {
		var err error
		want[i], err = Place(context.Background(), flow.NewFloat(m), 6, Options{Strategy: StrategyCELF, Parallelism: 3})
		if err != nil {
			t.Fatal(err)
		}
	}
	const gangs = 4
	errc := make(chan error, gangs)
	for gg := 0; gg < gangs; gg++ {
		go func() {
			evs := make([]flow.Evaluator, len(models))
			for i, m := range models {
				evs[i] = flow.NewFloat(m)
			}
			got, err := PlaceBatch(context.Background(), evs, 6, Options{Strategy: StrategyCELF, Parallelism: 3})
			if err == nil {
				for i := range got {
					if !reflect.DeepEqual(got[i].Filters, want[i].Filters) || got[i].Stats != want[i].Stats {
						err = context.DeadlineExceeded // any sentinel: mismatch
					}
				}
			}
			errc <- err
		}()
	}
	for gg := 0; gg < gangs; gg++ {
		if err := <-errc; err != nil {
			t.Fatalf("concurrent gang diverged or failed: %v", err)
		}
	}
}
