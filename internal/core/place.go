package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Strategy names a placement algorithm accepted by Place.
type Strategy string

const (
	// StrategyGreedyAll is the paper's Greedy_All via the closed-form
	// marginal gain: one forward + one backward pass per round. With
	// Parallelism > 1 on a flow.ParallelEvaluator the passes shard by
	// topological level.
	StrategyGreedyAll Strategy = "greedy-all"
	// StrategyCELF is Greedy_All at the paper's per-candidate cost profile
	// with CELF lazy evaluation; stale heap entries re-evaluate in
	// round-stamped batches across cloned evaluators.
	StrategyCELF Strategy = "celf"
	// StrategyNaive is Greedy_All at the paper's cost profile with no
	// laziness: every candidate re-evaluates every round. Candidates shard
	// across cloned evaluators.
	StrategyNaive Strategy = "naive"
	// StrategyApproxCELF is CELF on SAMPLED gain estimates: the lazy heap
	// is seeded by a flow.SamplingEngine's edge-sampled estimates and only
	// the heap-top handful is re-checked exactly before each commit, so
	// exact oracle work scales with k instead of V·k. Options.Quality sets
	// the target relative error; Result.PhiCI reports the sampled
	// confidence interval on Φ(A).
	StrategyApproxCELF Strategy = "approx-celf"
	// StrategyMLCELF is multilevel CELF: coarsen the graph losslessly (or,
	// with Options.Coarsen.Lossless false, further via bounded twin
	// merging), run CELF — exact, or approx-celf when Quality/SampleBudget
	// ask for sampling — on the quotient, project the picks back to their
	// supernode heads and locally refine each pick within its fiber by
	// exact gains. When only lossless rules fired the result is bit-for-bit
	// StrategyCELF's. Result.CoarsenStats reports the contraction.
	StrategyMLCELF Strategy = "ml-celf"
	// StrategyGreedyMax is the paper's Greedy_Max (impacts once, top k).
	StrategyGreedyMax Strategy = "greedy-max"
	// StrategyGreedy1 is the paper's Greedy_1 (rank by din·dout).
	StrategyGreedy1 Strategy = "greedy-1"
	// StrategyGreedyL is the paper's Greedy_L.
	StrategyGreedyL Strategy = "greedy-l"
	// StrategyGreedyLFast is Greedy_L with incremental prefix maintenance;
	// identical output to StrategyGreedyL.
	StrategyGreedyLFast Strategy = "greedy-l-fast"
	// StrategyRandK, StrategyRandI and StrategyRandW are the paper's
	// randomized baselines.
	StrategyRandK Strategy = "rand-k"
	StrategyRandI Strategy = "rand-i"
	StrategyRandW Strategy = "rand-w"
	// StrategyProp1 is Proposition 1's unbounded-budget optimal set; the
	// budget k is ignored.
	StrategyProp1 Strategy = "prop1"
)

// Strategies lists every strategy Place accepts, in documentation order.
func Strategies() []Strategy {
	return []Strategy{
		StrategyGreedyAll, StrategyCELF, StrategyNaive, StrategyApproxCELF,
		StrategyMLCELF,
		StrategyGreedyMax, StrategyGreedy1, StrategyGreedyL, StrategyGreedyLFast,
		StrategyRandK, StrategyRandI, StrategyRandW, StrategyProp1,
	}
}

// Options configures Place. The zero value runs serial greedy-all.
type Options struct {
	// Strategy selects the algorithm; empty means StrategyGreedyAll.
	Strategy Strategy
	// Parallelism bounds how many shards one greedy round's marginal-gain
	// evaluation splits into; values ≤ 1 run serially. Shards execute on
	// the process-wide scheduler (internal/sched), whose worker count —
	// not this field — bounds actual CPU concurrency. Results are
	// bit-for-bit identical to the serial path at any setting of either
	// knob: candidate work is sharded deterministically and reduced with
	// the serial tie-breaking order. Parallel execution needs the
	// evaluator to implement flow.Cloner (candidate sharding) or
	// flow.ParallelEvaluator (level-parallel passes); otherwise the
	// strategy silently runs serially and Result.Parallelism reports 1.
	Parallelism int
	// Seed drives the randomized baselines (ignored elsewhere).
	Seed int64
	// Rand, when non-nil, overrides Seed with an existing stream —
	// experiment harnesses average baselines over a shared rng.
	Rand *rand.Rand
	// Trace, when non-nil, records per-stage timing spans (greedy rounds,
	// CELF init/rechecks, naive rounds) for observability. Stages wrap
	// whole rounds — never the pass kernels — so tracing cannot perturb
	// the bit-identical arithmetic. A nil Trace records nothing and never
	// reads the clock.
	Trace *obs.Trace
	// Tenant tags the scheduler batches this placement submits, so the
	// pool's queue-wait sampler can attribute wait time to the requesting
	// tenant. Purely observational: tags never affect scheduling order or
	// results. Empty leaves batches untagged.
	Tenant string
	// Account, when non-nil, receives this placement's total oracle
	// evaluations and topological pass counts when Place returns (on
	// success, error and cancellation alike — the work was done either
	// way). Accounting happens strictly after the algorithm finishes, so
	// placements are bit-identical with accounting on or off.
	Account *obs.TenantCounters
	// Quality is approx-celf's target relative estimate error ε: smaller
	// values buy more sampled passes and a higher edge-sampling rate.
	// 0 means DefaultQuality; values are clamped to [0.005, 0.5].
	// Ignored by every other strategy.
	Quality float64
	// SampleBudget, when > 0, overrides the Quality-derived number of
	// sampled passes per estimate (flow.SampleOptions.Samples).
	// Ignored by every other strategy.
	SampleBudget int
	// SampleSeed drives approx-celf's deterministic sampling streams.
	// Independent of Seed (which feeds the randomized baselines) so the
	// two knobs cannot alias.
	SampleSeed int64
	// Coarsen configures ml-celf's graph contraction (ignored by every
	// other strategy): TargetRatio bounds how far bounded rounds shrink
	// the graph and Lossless restricts contraction to the exactness-
	// preserving rules. The zero value coarsens to fixpoint with twin
	// merging allowed.
	Coarsen flow.CoarsenOptions
}

// Validate checks every option field against its documented domain. It is
// the single validation authority for placement options: core.Place runs
// it before dispatching, and the fpd HTTP layer and the CLI call it on the
// options they are about to submit, so a bad knob produces the same error
// no matter which surface it arrived through.
func (o Options) Validate() error {
	if o.Strategy != "" {
		known := false
		for _, s := range Strategies() {
			if s == o.Strategy {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("core: unknown strategy %q (have %v)", o.Strategy, Strategies())
		}
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("core: parallelism = %d is negative", o.Parallelism)
	}
	if o.Quality < 0 || o.Quality > 0.5 {
		return fmt.Errorf("core: quality = %v outside [0, 0.5]", o.Quality)
	}
	if o.SampleBudget < 0 {
		return fmt.Errorf("core: sample_budget = %d is negative", o.SampleBudget)
	}
	if r := o.Coarsen.TargetRatio; r < 0 || r > 1 {
		return fmt.Errorf("core: coarsen target ratio %v outside [0, 1]", r)
	}
	if o.Coarsen.MaxRounds < 0 {
		return fmt.Errorf("core: coarsen max rounds = %d is negative", o.Coarsen.MaxRounds)
	}
	return nil
}

// Result is a placement outcome.
type Result struct {
	// Filters lists the placed nodes in the order chosen (greedy
	// strategies) or ascending order (set-valued strategies); it may be
	// shorter than k when further filters cannot improve the objective.
	Filters []int
	// Stats counts the objective-function work done. For a given
	// strategy it is identical at every Parallelism setting.
	Stats OracleStats
	// Strategy echoes the algorithm that ran.
	Strategy Strategy
	// Parallelism is the worker count actually used (1 when the
	// evaluator cannot parallelize or the strategy is inherently serial).
	Parallelism int
	// Passes counts the topological passes this placement executed, when
	// the evaluator exposes them (flow.PassCounter); zero otherwise. It is
	// an execution measurement, not part of the deterministic contract:
	// unlike Stats, it may differ across Parallelism settings because
	// parallel CELF runs speculative evaluations whose passes execute even
	// when their results are discarded by the serial-replay commit.
	Passes PassStats
	// PhiCI, set by approx-celf only, is the sampling engine's confidence
	// interval on Φ(A) for the returned filter set. ml-celf propagates it
	// only from lossless runs, where the quotient objective it estimates
	// IS the original Φ.
	PhiCI *flow.MCResult
	// CoarsenStats, set by ml-celf only, reports what the contraction did.
	// LosslessOnly means the placement is bit-for-bit StrategyCELF's.
	CoarsenStats *flow.CoarsenStats
}

// PassStats counts forward (Φ/receive) and suffix (amplification)
// topological passes executed over the graph. Passes are the engine-level
// unit of work behind every oracle call; one gain evaluation costs one
// forward pass, plus one suffix pass for closed-form gain rounds.
type PassStats struct {
	Forward int64 `json:"forward_passes"`
	Suffix  int64 `json:"suffix_passes"`
}

// Place is the unified placement engine: every algorithm of the paper (and
// the CELF/naive ablation profiles) behind one entry point with shared
// context plumbing, oracle accounting and an optional parallel inner loop
// scheduled on the process-wide worker pool. It returns ctx.Err() when
// canceled mid-placement; every work unit it submitted to the scheduler
// is joined before it returns, and the returned Result carries no filters
// but does report the oracle work done up to the abort. For many graphs
// at once, PlaceBatch shares the pool across all of them.
func Place(ctx context.Context, ev flow.Evaluator, k int, opts Options) (Result, error) {
	if opts.Strategy == "" {
		opts.Strategy = StrategyGreedyAll
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	res := Result{Strategy: opts.Strategy, Parallelism: 1}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Snapshot cumulative pass counts so Result.Passes is this placement's
	// delta, excluding the invariant passes run at engine construction.
	var passF0, passS0 int64
	passCounter, hasPasses := ev.(flow.PassCounter)
	if hasPasses {
		passF0, passS0 = passCounter.Passes()
	}
	var err error
	switch opts.Strategy {
	case StrategyGreedyAll:
		err = placeGreedyAll(ctx, ev, k, opts, &res)
	case StrategyCELF:
		err = placeCELF(ctx, ev, k, opts, &res)
	case StrategyNaive:
		err = placeNaive(ctx, ev, k, opts, &res)
	case StrategyApproxCELF:
		err = placeApproxCELF(ctx, ev, k, opts, &res)
	case StrategyMLCELF:
		err = placeMultilevel(ctx, ev, k, opts, &res)
	case StrategyGreedyMax:
		n := ev.Model().N()
		res.Filters = topK(impactsOf(ev, nil, opts.Parallelism, &res), k)
		res.Stats.GainEvaluations += n
	case StrategyGreedy1:
		res.Filters = Greedy1(ev.Model().Graph(), k)
	case StrategyGreedyL:
		res.Filters = GreedyL(ev, k)
	case StrategyGreedyLFast:
		res.Filters = GreedyLFast(ev, k)
	case StrategyRandK:
		res.Filters = RandK(ev.Model(), k, opts.rng())
	case StrategyRandI:
		res.Filters = RandI(ev.Model(), k, opts.rng())
	case StrategyRandW:
		res.Filters = RandW(ev.Model(), k, opts.rng())
	case StrategyProp1:
		res.Filters = UnboundedOptimal(ev.Model().Graph())
	default:
		return Result{}, fmt.Errorf("core: unknown strategy %q (have %v)", opts.Strategy, Strategies())
	}
	if hasPasses {
		// Accumulate rather than assign: ml-celf has already charged its
		// quotient engine's passes to res.Passes.
		f, s := passCounter.Passes()
		res.Passes.Forward += f - passF0
		res.Passes.Suffix += s - passS0
	}
	opts.Account.AddPlacement(int64(res.Stats.GainEvaluations), int64(res.Stats.SampledEvaluations), res.Passes.Forward, res.Passes.Suffix)
	if err != nil {
		res.Filters = nil // partial placements are not usable results
		return res, err
	}
	return res, nil
}

func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(o.Seed))
}

// impactsOf computes all marginal gains, through the level-parallel pass
// when available, recording the effective parallelism.
func impactsOf(ev flow.Evaluator, filters []bool, procs int, res *Result) []float64 {
	if procs > 1 {
		if pe, ok := ev.(flow.ParallelEvaluator); ok {
			res.Parallelism = procs
			return pe.ImpactsP(filters, procs)
		}
	}
	return ev.Impacts(filters)
}

// placeGreedyAll runs the closed-form greedy: per round one forward and
// one backward pass yield every candidate's exact gain.
func placeGreedyAll(ctx context.Context, ev flow.Evaluator, k int, opts Options, res *Result) error {
	n := ev.Model().N()
	pe, canPar := ev.(flow.ParallelEvaluator)
	procs := opts.Parallelism
	if procs > 1 && canPar {
		res.Parallelism = procs
	} else {
		procs = 1
	}
	filters := make([]bool, n)
	chosen := make([]int, 0, k)
	for len(chosen) < k {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp := opts.Trace.Begin("greedy-round")
		var v int
		var gain float64
		if procs > 1 {
			v, gain = pe.ArgmaxImpactP(filters, filters, procs)
		} else {
			v, gain = ev.ArgmaxImpact(filters, filters)
		}
		sp.AddEvals(int64(n))
		sp.SetWorkers(procs)
		sp.End()
		res.Stats.GainEvaluations += n
		if v < 0 || gain <= 0 {
			break // no further filter reduces multiplicity
		}
		filters[v] = true
		chosen = append(chosen, v)
		res.Stats.Iterations++
	}
	res.Filters = chosen
	return nil
}

// evalPool shards per-candidate exact gain evaluations Φ(A) − Φ(A∪{v})
// across cloned evaluators. Gains are bit-for-bit those of the serial
// loop: every candidate is evaluated by the same arithmetic against the
// same base, just on a clone's private scratch state. Shards execute as
// tasks on the process-wide sched.Default pool, so concurrent placements
// (a PlaceBatch gang, parallel fpd jobs) interleave their oracle work on
// shared workers instead of spawning goroutines per round. The shard
// count — and thus the per-shard arithmetic and the CELF batch width —
// depends only on Options.Parallelism, never on pool size.
type evalPool struct {
	root   flow.Evaluator
	clones []flow.Evaluator
	masks  [][]bool
	// plan is the arena the masks were borrowed from (nil when serial).
	plan *flow.Plan
	// tag labels the pool's scheduler batches for tenant attribution.
	tag string
	// gainsBuf backs the slice gains returns; reused across rounds, so a
	// result is only valid until the next gains call.
	gainsBuf []float64
}

func newEvalPool(ev flow.Evaluator, procs int, tag string) *evalPool {
	p := &evalPool{root: ev, tag: tag}
	c, ok := ev.(flow.Cloner)
	if !ok || procs <= 1 {
		return p
	}
	p.plan = ev.Model().Plan()
	for i := 0; i < procs; i++ {
		p.clones = append(p.clones, c.Clone())
		p.masks = append(p.masks, p.plan.GetMask())
	}
	return p
}

// width is the worker count gains can use.
func (p *evalPool) width() int {
	return max(len(p.clones), 1)
}

// close returns the pool's borrowed arenas — the per-shard candidate
// masks and every clone's scratch — to the plan pool, so back-to-back
// placements on one graph reuse memory instead of re-allocating O(N)
// state per call. The caller's root evaluator is left untouched: its
// arena stays borrowed for the engine's own lifetime.
func (p *evalPool) close() {
	for _, mask := range p.masks {
		p.plan.PutMask(mask)
	}
	p.masks = nil
	for _, c := range p.clones {
		if r, ok := c.(flow.ScratchReleaser); ok {
			r.ReleaseScratch()
		}
	}
	p.clones = nil
}

// gains returns gain[i] = Φ(A) − Φ(A ∪ {cands[i]}) for the current filter
// mask. The mask is only toggled one candidate at a time and restored, on
// the caller's slice when serial and on private copies when parallel.
// The returned slice aliases a reusable buffer valid until the next gains
// call. On cancellation it returns ctx.Err() after joining every worker.
func (p *evalPool) gains(ctx context.Context, filters []bool, cands []int) ([]float64, error) {
	if cap(p.gainsBuf) < len(cands) {
		p.gainsBuf = make([]float64, len(cands))
	}
	out := p.gainsBuf[:len(cands)]
	if len(cands) == 0 {
		return out, nil
	}
	base := p.root.Phi(filters)
	if len(p.clones) == 0 {
		for i, v := range cands {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			filters[v] = true
			out[i] = base - p.root.Phi(filters)
			filters[v] = false
		}
		return out, nil
	}
	procs := min(len(p.clones), len(cands))
	chunk := (len(cands) + procs - 1) / procs
	errs := make([]error, procs)
	batch := sched.Default().NewBatch().SetTag(p.tag)
	for w := 0; w < procs; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(cands))
		if lo >= hi {
			break
		}
		w, lo, hi := w, lo, hi
		batch.Go(func() {
			// The shard→clone binding is by shard index, not by executing
			// goroutine, so the arithmetic is identical wherever the
			// scheduler runs the task.
			ev, mask := p.clones[w], p.masks[w]
			copy(mask, filters)
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				v := cands[i]
				mask[v] = true
				out[i] = base - ev.Phi(mask)
				mask[v] = false
			}
		})
	}
	batch.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// placeNaive is the paper's cost profile: every round re-evaluates every
// candidate, sharded across the pool.
func placeNaive(ctx context.Context, ev flow.Evaluator, k int, opts Options, res *Result) error {
	m := ev.Model()
	n := m.N()
	pool := newEvalPool(ev, opts.Parallelism, opts.Tenant)
	defer pool.close()
	res.Parallelism = pool.width()
	filters := make([]bool, n)
	chosen := make([]int, 0, k)
	cands := make([]int, 0, n)
	for len(chosen) < k {
		if err := ctx.Err(); err != nil {
			return err
		}
		cands = cands[:0]
		for v := 0; v < n; v++ {
			if !filters[v] && !m.IsSource(v) {
				cands = append(cands, v)
			}
		}
		sp := opts.Trace.Begin("naive-round")
		gains, err := pool.gains(ctx, filters, cands)
		sp.AddEvals(int64(len(cands)))
		sp.SetWorkers(pool.width())
		sp.End()
		if err != nil {
			return err
		}
		res.Stats.GainEvaluations += len(cands)
		best, bestGain := -1, 0.0
		for i, v := range cands {
			if gains[i] > bestGain {
				best, bestGain = v, gains[i]
			}
		}
		if best < 0 {
			break
		}
		filters[best] = true
		chosen = append(chosen, best)
		res.Stats.Iterations++
	}
	res.Filters = chosen
	return nil
}

// celfEntry is a lazy-greedy heap entry: a gain upper bound for node v,
// valid as of greedy round stamp.
type celfEntry struct {
	gain  float64
	v     int
	stamp int
}

// celfLess orders entries by priority: larger gain first, ties toward the
// smaller node id (so results match greedy-all exactly).
func celfLess(a, b celfEntry) bool { // is a lower priority than b?
	if a.gain != b.gain {
		return a.gain < b.gain
	}
	return a.v > b.v
}

// celfHeap is a max-heap of celfEntry under celfLess.
type celfHeap []celfEntry

func (h *celfHeap) push(e celfEntry) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !celfLess(a[p], a[i]) {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *celfHeap) pop() celfEntry {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	*h = a
	i := 0
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < len(a) && celfLess(a[big], a[l]) {
			big = l
		}
		if r < len(a) && celfLess(a[big], a[r]) {
			big = r
		}
		if big == i {
			break
		}
		a[i], a[big] = a[big], a[i]
		i = big
	}
	return top
}

// placeCELF is lazy greedy (Leskovec et al.'s CELF applied to filter
// placement). Submodularity guarantees a node's gain never increases as
// the filter set grows, so stale upper bounds defer most re-evaluations.
//
// Parallel mode pops stale entries in batches of up to Parallelism,
// evaluates their exact gains concurrently on cloned evaluators, then
// replays the serial commit order against the precomputed values: an
// evaluation is committed (counted, re-stamped with the current round)
// only up to the point where the serial loop would have found a fresh
// entry on top of the heap; speculative evaluations beyond that point are
// discarded and their entries pushed back untouched. The heap therefore
// evolves exactly as in the serial run — filter set AND OracleStats are
// bit-for-bit identical at every Parallelism setting.
func placeCELF(ctx context.Context, ev flow.Evaluator, k int, opts Options, res *Result) error {
	m := ev.Model()
	n := m.N()
	pool := newEvalPool(ev, opts.Parallelism, opts.Tenant)
	defer pool.close()
	res.Parallelism = pool.width()
	filters := make([]bool, n)
	chosen := make([]int, 0, k)
	st := &res.Stats

	sp := opts.Trace.Begin("celf-init")
	gains := impactsOf(ev, filters, opts.Parallelism, res) // initial exact gains, batch computed
	sp.AddEvals(int64(n))
	sp.SetWorkers(res.Parallelism)
	sp.End()
	st.GainEvaluations += n
	var h celfHeap
	for v := 0; v < n; v++ {
		if !m.IsSource(v) && gains[v] > 0 {
			h.push(celfEntry{gains[v], v, 0})
		}
	}

	round := 0
	batch := make([]celfEntry, 0, pool.width())
	nodes := make([]int, 0, pool.width())
	for len(chosen) < k && len(h) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if h[0].stamp == round {
			// Fresh: by submodularity no other node can beat it.
			top := h.pop()
			filters[top.v] = true
			chosen = append(chosen, top.v)
			round++
			st.Iterations++
			continue
		}
		// Stale top: pop the next batch of stale entries in heap order
		// (descending priority) and prefetch their exact gains.
		batch, nodes = batch[:0], nodes[:0]
		for len(h) > 0 && h[0].stamp != round && len(batch) < pool.width() {
			e := h.pop()
			batch = append(batch, e)
			nodes = append(nodes, e.v)
		}
		rsp := opts.Trace.Begin("celf-recheck")
		prefetched, err := pool.gains(ctx, filters, nodes)
		rsp.AddEvals(int64(len(nodes)))
		rsp.SetWorkers(pool.width())
		rsp.End()
		if err != nil {
			return err
		}
		// Replay the serial commit order: the serial loop evaluates stale
		// tops one at a time and stops as soon as the heap top is fresh —
		// i.e. as soon as the best re-evaluated gain outranks the next
		// stale bound. Entries past that point stay stale and uncounted.
		for i := range batch {
			st.GainEvaluations++
			if g := prefetched[i]; g > 0 {
				h.push(celfEntry{g, batch[i].v, round})
			}
			if i+1 < len(batch) && len(h) > 0 && h[0].stamp == round && celfLess(batch[i+1], h[0]) {
				for _, rest := range batch[i+1:] {
					h.push(rest) // untouched: stale bound, old stamp
				}
				break
			}
		}
	}
	res.Filters = chosen
	return nil
}
