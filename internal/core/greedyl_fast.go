package core

import (
	"repro/internal/flow"
)

// GreedyLFast is Greedy_L with the paper's running-time remark implemented
// ("the only nodes whose value of I′ changes are those that are after v in
// the topological order... clever bookkeeping allows us to make these
// updates in, practically, constant time"): instead of recomputing every
// prefix each round, it maintains rec/emit incrementally and, after placing
// a filter at v, pushes the emission delta only through v's descendants.
// Output is identical to GreedyL; edge work per round is proportional to
// the affected cone rather than |E|. Weighted models fall back to the
// plain implementation (their emissions scale by per-edge probabilities,
// which the incremental pass does not track).
//
// Deprecated: use Place with StrategyGreedyLFast.
func GreedyLFast(ev flow.Evaluator, k int) []int {
	m := ev.Model()
	if m.Weighted() {
		return GreedyL(ev, k)
	}
	g := m.Graph()
	n := m.N()
	topo := m.Topo()
	rank := make([]int, n)
	for i, v := range topo {
		rank[v] = i
	}

	// Initial forward state.
	rec := append([]float64(nil), ev.Received(nil)...)
	emit := make([]float64, n)
	for v := 0; v < n; v++ {
		if m.IsSource(v) {
			emit[v] = 1
		} else {
			emit[v] = rec[v]
		}
	}

	filters := make([]bool, n)
	chosen := make([]int, 0, k)
	// Scratch for the dirty-region propagation, keyed by topo rank so
	// updates run in topological order.
	dirty := make([]bool, n)

	for len(chosen) < k {
		best, bestScore := -1, 0.0
		for v := 0; v < n; v++ {
			if filters[v] || m.IsSource(v) {
				continue
			}
			score := rec[v] * float64(g.OutDegree(v))
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			break
		}
		filters[best] = true
		chosen = append(chosen, best)

		// New emission at best: min(1, rec) under the perfect-filter
		// model; rec(best) itself is unchanged.
		newEmit := rec[best]
		if newEmit > 1 {
			newEmit = 1
		}
		if newEmit == emit[best] {
			continue // nothing propagates
		}
		emit[best] = newEmit

		// Push deltas through descendants in topological order. A simple
		// rank-ordered frontier: mark children dirty, sweep ranks after
		// best's.
		for _, c := range g.Out(best) {
			dirty[c] = true
		}
		for i := rank[best] + 1; i < n; i++ {
			v := topo[i]
			if !dirty[v] {
				continue
			}
			dirty[v] = false
			// Recompute rec(v) from parents (cheap: |In(v)| work, only
			// inside the affected cone).
			r := 0.0
			for _, p := range g.In(v) {
				r += emit[p]
			}
			if r == rec[v] {
				continue
			}
			rec[v] = r
			ne := r
			if m.IsSource(v) {
				ne = 1
			} else if filters[v] && r > 1 {
				ne = 1
			}
			if ne != emit[v] {
				emit[v] = ne
				for _, c := range g.Out(v) {
					dirty[c] = true
				}
			}
		}
	}
	return chosen
}
