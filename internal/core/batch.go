package core

import (
	"context"
	"fmt"

	"repro/internal/flow"
	"repro/internal/sched"
)

// PlaceBatch places k filters on every evaluator with one gang submission
// to the process-wide scheduler: each graph's placement runs as a task,
// and the fine-grained work inside it (level-parallel passes, candidate
// shards) lands on the same shared workers, so a fleet of hundreds of
// small c-graphs — the per-venue/per-year subgraphs of a citation corpus,
// say — amortizes worker startup and keeps every core busy without
// oversubscribing the host with per-call pools.
//
// Each evaluator must be distinct (engines carry private scratch state)
// and results[i] is bit-for-bit what a solo Place(ctx, evs[i], k, opts)
// would return — same filters AND same OracleStats — because the gang
// changes only where work executes, never how it is split or reduced.
// Randomized strategies give every graph its own rng seeded from
// opts.Seed, exactly as sequential solo calls would; a shared opts.Rand
// has no per-graph equivalent and is rejected.
//
// On cancellation every sub-placement aborts and PlaceBatch returns
// ctx.Err(); the results slice is still returned with the per-graph
// oracle work done up to the abort (filters nil, as for Place). The
// returned error is the first failing graph's error in index order.
func PlaceBatch(ctx context.Context, evs []flow.Evaluator, k int, opts Options) ([]Result, error) {
	if opts.Rand != nil {
		return nil, fmt.Errorf("core: PlaceBatch needs a per-graph rng; set Options.Seed instead of Options.Rand")
	}
	results := make([]Result, len(evs))
	if len(evs) == 0 {
		return results, nil
	}
	errs := make([]error, len(evs))
	batch := sched.Default().NewBatch().SetTag(opts.Tenant)
	for i := range evs {
		i := i
		batch.Go(func() {
			results[i], errs[i] = Place(ctx, evs[i], k, opts)
		})
	}
	batch.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
