package core

import (
	"repro/internal/flow"
)

// Exhaustive finds an optimal filter set of size at most k by enumerating
// all candidate subsets. It is exponential and intended for validating the
// approximation algorithms on small instances (the paper's Figures 2 and 3
// style examples); candidates are restricted to non-source nodes with
// outgoing edges, which is lossless because a filter at a source or a sink
// never changes any copy count. Ties are broken toward the
// lexicographically smallest node set, making the result deterministic.
func Exhaustive(ev flow.Evaluator, k int) ([]int, float64) {
	m := ev.Model()
	g := m.Graph()
	var cands []int
	for v := 0; v < m.N(); v++ {
		if !m.IsSource(v) && g.OutDegree(v) > 0 && g.InDegree(v) > 0 {
			cands = append(cands, v)
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	filters := make([]bool, m.N())
	best := make([]int, 0, k)
	bestF := 0.0 // F(∅) = 0

	var rec func(start, remaining int, cur []int)
	rec = func(start, remaining int, cur []int) {
		// Evaluate the current (possibly partial) set: monotonicity means
		// supersets only improve, but evaluating every prefix lets the
		// enumeration double as a "≤ k" search at no asymptotic cost.
		f := ev.F(filters)
		if f > bestF {
			bestF = f
			best = append(best[:0], cur...)
		}
		if remaining == 0 {
			return
		}
		for i := start; i < len(cands); i++ {
			v := cands[i]
			filters[v] = true
			rec(i+1, remaining-1, append(cur, v))
			filters[v] = false
		}
	}
	rec(0, k, nil)
	return append([]int(nil), best...), bestF
}
