package core

import (
	"repro/internal/flow"
)

// GreedyAllPartial is Greedy_All for lossy filters (paper footnote 1):
// each placed filter forwards the first copy plus a `leak` fraction of the
// duplicates. The objective remains monotone and submodular in the filter
// set (each node's emission is a fixed concave interpolation between
// filtered and unfiltered behaviour), so the greedy retains its guarantee.
// Only the float engine supports partial semantics.
func GreedyAllPartial(ev flow.PartialEvaluator, k int, leak float64) []int {
	m := ev.Model()
	n := m.N()
	filters := make([]bool, n)
	chosen := make([]int, 0, k)
	for len(chosen) < k {
		gains := ev.ImpactsPartial(filters, leak)
		best, bestGain := -1, 0.0
		for v, gn := range gains {
			if filters[v] {
				continue
			}
			if gn > bestGain {
				best, bestGain = v, gn
			}
		}
		if best < 0 {
			break
		}
		filters[best] = true
		chosen = append(chosen, best)
	}
	return chosen
}
