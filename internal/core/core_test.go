package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

func evalFor(t testing.TB, g *graph.Digraph, sources []int) flow.Evaluator {
	t.Helper()
	m, err := flow.NewModel(g, sources)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return flow.NewBig(m)
}

func TestGreedyAllFigure1(t *testing.T) {
	g, s := gen.Figure1()
	ev := evalFor(t, g, []int{s})
	a := GreedyAll(ev, 1)
	if !reflect.DeepEqual(a, []int{gen.Fig1Z2}) {
		t.Fatalf("GreedyAll = %v, want [z2=%d]", a, gen.Fig1Z2)
	}
	if fr := flow.FR(ev, flow.MaskOf(g.N(), a)); fr != 1 {
		t.Errorf("FR = %v, want 1", fr)
	}
	// Asking for more filters stops early: nothing else helps.
	if a := GreedyAll(ev, 5); len(a) != 1 {
		t.Errorf("GreedyAll(k=5) = %v, want exactly 1 useful filter", a)
	}
}

func TestFigure2PaperNumbers(t *testing.T) {
	g, s := gen.Figure2()
	ev := evalFor(t, g, []int{s})
	if phi := ev.Phi(nil); phi != 14 {
		t.Fatalf("Φ(∅,V) = %v, want 14", phi)
	}
	// Greedy_1 prefers B: m(B) = 1·4 > m(A) = 3·1.
	g1 := Greedy1(g, 1)
	if !reflect.DeepEqual(g1, []int{gen.Fig2B}) {
		t.Errorf("Greedy1 = %v, want [B=%d]", g1, gen.Fig2B)
	}
	if phi := ev.Phi(flow.MaskOf(g.N(), g1)); phi != 14 {
		t.Errorf("Φ({B}) = %v, want 14 (filter at B changes nothing)", phi)
	}
	// The optimum (found by Greedy_All and by exhaustive search) is A.
	ga := GreedyAll(ev, 1)
	if !reflect.DeepEqual(ga, []int{gen.Fig2A}) {
		t.Errorf("GreedyAll = %v, want [A=%d]", ga, gen.Fig2A)
	}
	if phi := ev.Phi(flow.MaskOf(g.N(), ga)); phi != 12 {
		t.Errorf("Φ({A}) = %v, want 12", phi)
	}
	opt, optF := Exhaustive(ev, 1)
	if !reflect.DeepEqual(opt, []int{gen.Fig2A}) || optF != 2 {
		t.Errorf("Exhaustive = %v (F=%v), want [A] with F=2", opt, optF)
	}
}

func TestFigure3PaperNumbers(t *testing.T) {
	g, srcs := gen.Figure3()
	ev := evalFor(t, g, srcs)
	if phi := ev.Phi(nil); phi != 26 {
		t.Fatalf("Φ(∅,V) = %v, want 26", phi)
	}
	imp := ev.Impacts(nil)
	if imp[gen.Fig3A] != 7 || imp[gen.Fig3B] != 6 || imp[gen.Fig3C] != 6 {
		t.Errorf("impacts A,B,C = %v,%v,%v, want 7,6,6",
			imp[gen.Fig3A], imp[gen.Fig3B], imp[gen.Fig3C])
	}
	// After filtering A: I(B|A) = 3, I(C|A) = 4.
	fA := flow.MaskOf(g.N(), []int{gen.Fig3A})
	impA := ev.Impacts(fA)
	if impA[gen.Fig3B] != 3 || impA[gen.Fig3C] != 4 {
		t.Errorf("impacts after A: B=%v C=%v, want 3, 4", impA[gen.Fig3B], impA[gen.Fig3C])
	}
	// Greedy_All chooses {A, C} reaching Φ = 15; the optimum {B, C}
	// reaches Φ = 14.
	ga := GreedyAll(ev, 2)
	if !reflect.DeepEqual(ga, []int{gen.Fig3A, gen.Fig3C}) {
		t.Errorf("GreedyAll = %v, want [A C]", ga)
	}
	if phi := ev.Phi(flow.MaskOf(g.N(), ga)); phi != 15 {
		t.Errorf("Φ({A,C}) = %v, want 15", phi)
	}
	opt, optF := Exhaustive(ev, 2)
	if !reflect.DeepEqual(opt, []int{gen.Fig3B, gen.Fig3C}) {
		t.Errorf("Exhaustive = %v, want [B C]", opt)
	}
	if optF != 12 { // 26 − 14
		t.Errorf("optimal F = %v, want 12", optF)
	}
}

func TestGreedyVariantsAgree(t *testing.T) {
	// GreedyAll, GreedyAllNaive and GreedyAllCELF must produce identical
	// filter sets (same tie-breaking everywhere).
	f := func(seed int64) bool {
		g, src := gen.RandomDAG(25, 0.2, seed)
		ev := evalFor(t, g, []int{src})
		k := 4
		a := GreedyAll(ev, k)
		b, stNaive := GreedyAllNaive(ev, k)
		c, stCELF := GreedyAllCELF(ev, k)
		if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
			t.Logf("seed %d: all=%v naive=%v celf=%v", seed, a, b, c)
			return false
		}
		if len(a) == k && stCELF.GainEvaluations > stNaive.GainEvaluations+g.N() {
			t.Logf("seed %d: CELF did more work than naive: %d vs %d",
				seed, stCELF.GainEvaluations, stNaive.GainEvaluations)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGreedyAllK1Optimal(t *testing.T) {
	// The paper: "Observe that Greedy All is optimal for k = 1."
	f := func(seed int64) bool {
		g, src := gen.RandomDAG(18, 0.25, seed)
		ev := evalFor(t, g, []int{src})
		a := GreedyAll(ev, 1)
		_, optF := Exhaustive(ev, 1)
		var gotF float64
		if len(a) > 0 {
			gotF = ev.F(flow.MaskOf(g.N(), a))
		}
		if math.Abs(gotF-optF) > 1e-9*(1+optF) {
			t.Logf("seed %d: greedy F=%v opt F=%v", seed, gotF, optF)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyAllApproximationBound(t *testing.T) {
	// Nemhauser et al.: greedy achieves at least (1 − 1/e)·OPT.
	bound := 1 - 1/math.E
	f := func(seed int64) bool {
		g, src := gen.RandomDAG(15, 0.3, seed)
		ev := evalFor(t, g, []int{src})
		for _, k := range []int{2, 3} {
			a := GreedyAll(ev, k)
			gotF := ev.F(flow.MaskOf(g.N(), a))
			_, optF := Exhaustive(ev, k)
			if optF == 0 {
				continue
			}
			if gotF < bound*optF-1e-9 {
				t.Logf("seed %d k=%d: F=%v < (1-1/e)·%v", seed, k, gotF, optF)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUnboundedOptimalProposition1(t *testing.T) {
	// Proposition 1: A = {v : din(v) > 1 and dout(v) > 0} achieves F(V),
	// and it is minimal — removing any member strictly hurts.
	f := func(seed int64) bool {
		g, src := gen.RandomDAG(20, 0.25, seed)
		ev := evalFor(t, g, []int{src})
		a := UnboundedOptimal(g)
		mask := flow.MaskOf(g.N(), a)
		if math.Abs(ev.F(mask)-ev.MaxF()) > 1e-9*(1+ev.MaxF()) {
			t.Logf("seed %d: F(A)=%v != MaxF=%v", seed, ev.F(mask), ev.MaxF())
			return false
		}
		for _, v := range a {
			mask[v] = false
			if ev.F(mask) >= ev.MaxF() {
				t.Logf("seed %d: dropping %d keeps F maximal — not minimal", seed, v)
				return false
			}
			mask[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMaxVsGreedyAllOnFigure2(t *testing.T) {
	// Greedy_Max computes true impacts once, so unlike Greedy_1 it
	// correctly prefers A on Figure 2.
	g, s := gen.Figure2()
	ev := evalFor(t, g, []int{s})
	gm := GreedyMax(ev, 1)
	if !reflect.DeepEqual(gm, []int{gen.Fig2A}) {
		t.Errorf("GreedyMax = %v, want [A=%d]", gm, gen.Fig2A)
	}
}

func TestGreedyLPrefersDownstream(t *testing.T) {
	// Greedy_L ranks by Prefix·dout; on Figure 2 the prefix of B equals 1
	// while A's prefix is 3, so I′(A) = 3 > I′(B)·1 = 4 — B still wins
	// because of its fan-out, reproducing the heuristic's known bias.
	g, s := gen.Figure2()
	m := flow.MustModel(g, []int{s})
	gl := GreedyL(flow.NewBig(m), 1)
	if !reflect.DeepEqual(gl, []int{gen.Fig2B}) {
		t.Errorf("GreedyL = %v, want [B=%d]", gl, gen.Fig2B)
	}
}

func TestHeuristicsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		g, src := gen.RandomDAG(30, 0.15, seed)
		m := flow.MustModel(g, []int{src})
		ev := flow.NewFloat(m)
		k := 5
		for name, a := range map[string][]int{
			"GreedyAll": GreedyAll(ev, k),
			"GreedyMax": GreedyMax(ev, k),
			"Greedy1":   Greedy1(g, k),
			"GreedyL":   GreedyL(ev, k),
		} {
			if len(a) > k {
				t.Logf("%s returned %d > k nodes", name, len(a))
				return false
			}
			seen := map[int]bool{}
			for _, v := range a {
				if v < 0 || v >= g.N() || seen[v] {
					t.Logf("%s returned bad/duplicate node %d", name, v)
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRandomBaselines(t *testing.T) {
	g, src := gen.RandomDAG(200, 0.05, 42)
	m := flow.MustModel(g, []int{src})
	k := 10

	rng := rand.New(rand.NewSource(1))
	a := RandK(m, k, rng)
	if len(a) != k {
		t.Errorf("RandK returned %d nodes, want %d", len(a), k)
	}
	if !sort.IntsAreSorted(a) {
		t.Errorf("RandK not sorted: %v", a)
	}
	// Expected size of RandI and RandW is ≈ k; check the average over
	// repetitions stays in a generous window.
	totalI, totalW := 0, 0
	const reps = 200
	for i := 0; i < reps; i++ {
		totalI += len(RandI(m, k, rng))
		totalW += len(RandW(m, k, rng))
	}
	if avg := float64(totalI) / reps; math.Abs(avg-float64(k)) > 2 {
		t.Errorf("RandI average size %v, want ≈ %d", avg, k)
	}
	if avg := float64(totalW) / reps; avg < 2 || avg > 2.5*float64(k) {
		t.Errorf("RandW average size %v, want within a few of %d", avg, k)
	}
	// Determinism given the same rng state.
	r1 := RandK(m, k, rand.New(rand.NewSource(7)))
	r2 := RandK(m, k, rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(r1, r2) {
		t.Error("RandK not deterministic for a fixed seed")
	}
}

func TestRandKClampedToN(t *testing.T) {
	g, src := gen.RandomDAG(5, 0.3, 1)
	m := flow.MustModel(g, []int{src})
	a := RandK(m, 50, rand.New(rand.NewSource(1)))
	if len(a) != 5 {
		t.Errorf("RandK(k>n) returned %d nodes, want 5", len(a))
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0, 5, 3, 5, 0, 1}
	got := topK(scores, 3)
	// Ties toward smaller index: 1 (5), 3 (5), 2 (3).
	if !reflect.DeepEqual(got, []int{1, 3, 2}) {
		t.Errorf("topK = %v, want [1 3 2]", got)
	}
	if got := topK(scores, 10); len(got) != 4 {
		t.Errorf("topK keeps zero scores: %v", got)
	}
	if got := topK([]float64{0, 0}, 2); len(got) != 0 {
		t.Errorf("topK of zeros = %v, want empty", got)
	}
}
