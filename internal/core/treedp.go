package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Communication trees (paper §4.1). A c-tree is a c-graph that becomes a
// forest of out-trees when the source node is removed: every non-source
// node has at most one non-source parent, and may additionally receive
// directly from the source. On c-trees FP is solvable exactly in polynomial
// time by dynamic programming.
//
// The paper sketches a recursion over a binarized tree; we implement an
// equivalent exact DP directly on the c-tree with state (node, budget,
// incoming), where incoming is the copy count arriving over the tree edge.
// Incoming counts are bounded by tree height + 1 (each tree hop adds at most
// the one extra copy injected by the source), so the state space is
// O(n · k · height) and each state distributes its budget over the node's
// children with an inner knapsack.

// ErrNotCTree is returned by TreeDP when the graph is not a communication
// tree with respect to the given source.
var ErrNotCTree = errors.New("core: graph is not a c-tree for the given source")

type cTree struct {
	g        *graph.Digraph
	source   int
	fromSrc  []bool  // fromSrc[v]: edge source→v exists
	children [][]int // tree children (out-neighbors), excluding the source's
	roots    []int   // nodes with no tree parent
}

func newCTree(g *graph.Digraph, source int) (*cTree, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, g.N())
	}
	if g.InDegree(source) != 0 {
		return nil, fmt.Errorf("%w: source has in-degree %d", ErrNotCTree, g.InDegree(source))
	}
	if !g.IsDAG() {
		return nil, fmt.Errorf("%w: graph is cyclic", ErrNotCTree)
	}
	t := &cTree{
		g:        g,
		source:   source,
		fromSrc:  make([]bool, g.N()),
		children: make([][]int, g.N()),
	}
	for _, v := range g.Out(source) {
		t.fromSrc[v] = true
	}
	hasParent := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if v == source {
			continue
		}
		treeParents := 0
		for _, p := range g.In(v) {
			if p != source {
				treeParents++
			}
		}
		if treeParents > 1 {
			return nil, fmt.Errorf("%w: node %d has %d tree parents", ErrNotCTree, v, treeParents)
		}
		hasParent[v] = treeParents == 1
		t.children[v] = g.Out(v)
	}
	for v := 0; v < g.N(); v++ {
		if v != source && !hasParent[v] {
			t.roots = append(t.roots, v)
		}
	}
	return t, nil
}

// dpKey identifies a subproblem: optimal filtering of the subtree rooted at
// v with the given budget when v receives `in` copies over its tree edge.
type dpKey struct {
	v, budget, in int
}

type treeSolver struct {
	t    *cTree
	memo map[dpKey]int64
}

// cost returns the minimum achievable Σ Φ over the subtree rooted at v.
func (s *treeSolver) cost(v, budget, in int) int64 {
	key := dpKey{v, budget, in}
	if c, ok := s.memo[key]; ok {
		return c
	}
	rec := in
	if s.t.fromSrc[v] {
		rec++
	}
	best := int64(rec) + s.splitChildren(v, budget, rec)
	if budget > 0 && rec > 1 {
		if c := int64(rec) + s.splitChildren(v, budget-1, 1); c < best {
			best = c
		}
	}
	s.memo[key] = best
	return best
}

// splitChildren distributes budget filters over v's children minimizing the
// summed subtree cost when v emits `emit` copies to each child.
func (s *treeSolver) splitChildren(v, budget, emit int) int64 {
	kids := s.t.children[v]
	if len(kids) == 0 {
		return 0
	}
	// dp[b] = best cost of the children processed so far using b filters.
	const inf = int64(1) << 62
	dp := make([]int64, budget+1)
	next := make([]int64, budget+1)
	for i := range dp {
		dp[i] = 0
	}
	for _, c := range kids {
		for b := 0; b <= budget; b++ {
			next[b] = inf
			for bc := 0; bc <= b; bc++ {
				if v := dp[b-bc] + s.cost(c, bc, emit); v < next[b] {
					next[b] = v
				}
			}
		}
		dp, next = next, dp
	}
	return dp[budget]
}

// extract rebuilds one optimal filter set by replaying decisions against the
// memo table.
func (s *treeSolver) extract(v, budget, in int, out *[]int) {
	rec := in
	if s.t.fromSrc[v] {
		rec++
	}
	total := s.cost(v, budget, in)
	if budget > 0 && rec > 1 && total == int64(rec)+s.splitChildren(v, budget-1, 1) {
		*out = append(*out, v)
		s.extractSplit(s.t.children[v], budget-1, 1, out)
		return
	}
	s.extractSplit(s.t.children[v], budget, rec, out)
}

// extractSplit replays the knapsack over children, assigning each child the
// budget share consistent with the memoized optimum.
func (s *treeSolver) extractSplit(kids []int, budget, emit int, out *[]int) {
	if len(kids) == 0 {
		return
	}
	// suffixCost(i, b): best cost for kids[i:] with b filters. Recompute
	// with a small memo local to this call; trees in scope are modest.
	type sk struct{ i, b int }
	memo := map[sk]int64{}
	var suffixCost func(i, b int) int64
	suffixCost = func(i, b int) int64 {
		if i == len(kids) {
			return 0
		}
		if c, ok := memo[sk{i, b}]; ok {
			return c
		}
		best := int64(1) << 62
		for bc := 0; bc <= b; bc++ {
			if v := s.cost(kids[i], bc, emit) + suffixCost(i+1, b-bc); v < best {
				best = v
			}
		}
		memo[sk{i, b}] = best
		return best
	}
	b := budget
	for i := range kids {
		want := suffixCost(i, b)
		for bc := 0; bc <= b; bc++ {
			if s.cost(kids[i], bc, emit)+suffixCost(i+1, b-bc) == want {
				s.extract(kids[i], bc, emit, out)
				b -= bc
				break
			}
		}
	}
}

// TreeDP solves FP exactly on a communication tree. It returns an optimal
// filter set of size at most k and the achieved objective value F(A) (as a
// float; copy counts on trees are bounded by n·(height+2), far from
// overflow). It returns ErrNotCTree when the graph is not a c-tree with
// respect to source.
func TreeDP(g *graph.Digraph, source, k int) ([]int, float64, error) {
	t, err := newCTree(g, source)
	if err != nil {
		return nil, 0, err
	}
	if k < 0 {
		return nil, 0, fmt.Errorf("core: negative filter budget %d", k)
	}
	s := &treeSolver{t: t, memo: make(map[dpKey]int64)}

	// Φ(∅): cost with zero budget.
	phiEmpty := int64(0)
	for _, r := range t.roots {
		phiEmpty += s.cost(r, 0, 0)
	}
	// Optimal Φ(A): distribute k over the root forest.
	type sk struct{ i, b int }
	memo := map[sk]int64{}
	var forestCost func(i, b int) int64
	forestCost = func(i, b int) int64 {
		if i == len(t.roots) {
			return 0
		}
		if c, ok := memo[sk{i, b}]; ok {
			return c
		}
		best := int64(1) << 62
		for bc := 0; bc <= b; bc++ {
			if v := s.cost(t.roots[i], bc, 0) + forestCost(i+1, b-bc); v < best {
				best = v
			}
		}
		memo[sk{i, b}] = best
		return best
	}
	phiOpt := forestCost(0, k)

	var filters []int
	b := k
	for i := range t.roots {
		want := forestCost(i, b)
		for bc := 0; bc <= b; bc++ {
			if s.cost(t.roots[i], bc, 0)+forestCost(i+1, b-bc) == want {
				s.extract(t.roots[i], bc, 0, &filters)
				b -= bc
				break
			}
		}
	}
	return filters, float64(phiEmpty - phiOpt), nil
}
