package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

// approxTestModel builds a random DAG (edges low→high id) large enough
// that the sampled init is meaningfully cheaper than an exact sweep.
func approxTestModel(t testing.TB, n int, p float64, seed int64) *flow.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := flow.NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestApproxCELFQuality is the acceptance property of the approximate
// engine: on random DAGs where both paths run, approx-celf reaches F(A)
// within the requested error bound of exact CELF while spending ≥5×
// fewer exact oracle evaluations — on the float AND the big engine.
func TestApproxCELFQuality(t *testing.T) {
	const (
		n       = 800
		k       = 10
		quality = 0.05
	)
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		m := approxTestModel(t, n, 0.01, seed)
		exactEv := flow.NewFloat(m)
		exact, err := Place(ctx, exactEv, k, Options{Strategy: StrategyCELF})
		if err != nil {
			t.Fatalf("seed %d: exact celf: %v", seed, err)
		}
		fExact := exactEv.F(flow.MaskOf(n, exact.Filters))
		if fExact <= 0 {
			t.Fatalf("seed %d: exact F = %v, want > 0 (graph too sparse for the property)", seed, fExact)
		}
		engines := map[string]flow.Evaluator{
			"float": exactEv,
			"big":   flow.NewBig(m),
		}
		for name, ev := range engines {
			approx, err := Place(ctx, ev, k, Options{Strategy: StrategyApproxCELF, Quality: quality})
			if err != nil {
				t.Fatalf("seed %d %s: approx-celf: %v", seed, name, err)
			}
			fApprox := exactEv.F(flow.MaskOf(n, approx.Filters))
			if fApprox < (1-quality)*fExact {
				t.Errorf("seed %d %s: F(approx) = %v < %v = (1-%v)·F(exact)",
					seed, name, fApprox, (1-quality)*fExact, quality)
			}
			if approx.Stats.GainEvaluations*5 > exact.Stats.GainEvaluations {
				t.Errorf("seed %d %s: approx exact evals %d, exact celf %d — want ≥5× fewer",
					seed, name, approx.Stats.GainEvaluations, exact.Stats.GainEvaluations)
			}
			if approx.Stats.SampledEvaluations == 0 {
				t.Errorf("seed %d %s: SampledEvaluations = 0, want > 0", seed, name)
			}
			if approx.PhiCI == nil || approx.PhiCI.Runs <= 0 {
				t.Errorf("seed %d %s: PhiCI = %+v, want a populated confidence interval", seed, name, approx.PhiCI)
			}
		}
	}
}

// TestApproxCELFDeterminism pins the PR 3/4 contract for the new
// strategy: filters, OracleStats and the reported confidence interval
// are bit-for-bit identical at every Parallelism setting.
func TestApproxCELFDeterminism(t *testing.T) {
	m := approxTestModel(t, 300, 0.03, 11)
	ev := flow.NewFloat(m)
	ctx := context.Background()
	opts := Options{Strategy: StrategyApproxCELF, Quality: 0.1, SampleSeed: 42}
	serial, err := Place(ctx, ev, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		o := opts
		o.Parallelism = procs
		par, err := Place(ctx, ev, 8, o)
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if !reflect.DeepEqual(par.Filters, serial.Filters) {
			t.Errorf("P=%d: filters %v, serial %v", procs, par.Filters, serial.Filters)
		}
		if par.Stats != serial.Stats {
			t.Errorf("P=%d: stats %+v, serial %+v", procs, par.Stats, serial.Stats)
		}
		if *par.PhiCI != *serial.PhiCI {
			t.Errorf("P=%d: PhiCI %+v, serial %+v", procs, *par.PhiCI, *serial.PhiCI)
		}
	}
}

// TestApproxCELFQualityKnob checks the knob's direction: tighter quality
// buys more sampled passes and a higher edge rate, and out-of-range
// values clamp instead of exploding.
func TestApproxCELFQualityKnob(t *testing.T) {
	epsTight, tight := approxSampleOptions(Options{Quality: 0.01})
	epsLoose, loose := approxSampleOptions(Options{Quality: 0.25})
	if epsTight >= epsLoose {
		t.Fatalf("eps: tight %v ≥ loose %v", epsTight, epsLoose)
	}
	if tight.Samples <= loose.Samples {
		t.Errorf("samples: tight %d ≤ loose %d", tight.Samples, loose.Samples)
	}
	if tight.EdgeRate <= loose.EdgeRate {
		t.Errorf("edge rate: tight %v ≤ loose %v", tight.EdgeRate, loose.EdgeRate)
	}
	if eps, _ := approxSampleOptions(Options{Quality: 99}); eps != 0.5 {
		t.Errorf("quality 99 clamps to %v, want 0.5", eps)
	}
	if eps, _ := approxSampleOptions(Options{}); eps != DefaultQuality {
		t.Errorf("zero quality = %v, want DefaultQuality", eps)
	}
	if _, o := approxSampleOptions(Options{SampleBudget: 3}); o.Samples != 3 {
		t.Errorf("SampleBudget override = %d, want 3", o.Samples)
	}
}

// TestApproxCELFCancellation: a canceled context aborts mid-placement
// with no filters, like every other strategy.
func TestApproxCELFCancellation(t *testing.T) {
	m := approxTestModel(t, 200, 0.03, 5)
	ev := flow.NewFloat(m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Place(ctx, ev, 5, Options{Strategy: StrategyApproxCELF})
	if err == nil {
		t.Fatal("want context error, got nil")
	}
	if len(res.Filters) != 0 {
		t.Errorf("canceled placement returned filters %v", res.Filters)
	}
}

// TestApproxCELFStress hammers concurrent approximate placements over
// models sharing nothing but the process-wide scheduler and, per model,
// the plan's scratch arena — the -race CI job runs this specifically.
func TestApproxCELFStress(t *testing.T) {
	m := approxTestModel(t, 250, 0.03, 7)
	ctx := context.Background()
	want, err := Place(ctx, flow.NewFloat(m), 6, Options{Strategy: StrategyApproxCELF, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				ev := flow.NewFloat(m)
				res, err := Place(ctx, ev, 6, Options{Strategy: StrategyApproxCELF, Parallelism: 1 + g%4})
				if err != nil {
					errs[g] = err
					return
				}
				ev.ReleaseScratch()
				if !reflect.DeepEqual(res.Filters, want.Filters) {
					t.Errorf("goroutine %d: filters %v, want %v", g, res.Filters, want.Filters)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
