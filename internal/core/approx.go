package core

import (
	"context"
	"math"

	"repro/internal/flow"
)

// Approximate placement: CELF's lazy greedy driven by sampled gain
// estimates, with exact re-checks only where they decide a commit.
//
// Exact CELF pays one full exact gain sweep (V evaluations) to seed its
// heap, then a handful of exact re-evaluations per round. On graphs
// where one exact pass is already the budget, that V-sized init is the
// wall. approx-celf replaces it with ONE sampled sweep from a
// flow.SamplingEngine (O(V + EdgeRate·E) per sampled pass) and keeps the
// exact oracle only for the few heap-top entries that must be compared
// before a pick commits — so exact work scales with k·recheckWidth, not
// V·k, while every committed pick is still justified by exact gains.
//
// Correctness leans on the same property as CELF: stale heap values only
// defer work when they are upper bounds. Re-checked entries are exact
// gains, hence true upper bounds under submodularity; estimate-seeded
// entries are inflated by a slack factor derived from Options.Quality,
// so an underestimate within the target relative error cannot hide a
// node from the re-check window. The result: F(A) within ~Quality of
// exact CELF's, verified by the property suite on graphs where both
// paths run.
//
// Determinism: the sampling engine's estimates depend only on its seed
// (never on worker count), the re-check batch width is a constant, and
// exact re-checks run through the same evalPool arithmetic as CELF —
// so filters, OracleStats AND the reported Φ confidence interval are
// bit-for-bit identical at every Parallelism setting.

// DefaultQuality is the target relative estimate error when
// Options.Quality is 0.
const DefaultQuality = 0.05

// approxRecheckWidth is how many stale/estimated heap entries one
// re-check batch evaluates exactly. It is a constant — NOT tied to
// Parallelism — so the commit sequence is identical at every setting.
const approxRecheckWidth = 4

// approxQuality clamps the quality knob to its accepted range.
func approxQuality(q float64) float64 {
	if q == 0 {
		q = DefaultQuality
	}
	return math.Min(0.5, math.Max(0.005, q))
}

// approxSampleOptions maps the quality knob to sampling parameters:
// the pass budget grows as 1/ε and the per-node edge-sampling rate
// rises as ε tightens, floored/capped to keep a single estimate
// bounded. SampleBudget overrides the derived pass count.
func approxSampleOptions(opts Options) (float64, flow.SampleOptions) {
	eps := approxQuality(opts.Quality)
	samples := opts.SampleBudget
	if samples <= 0 {
		samples = int(math.Round(0.4 / eps))
		samples = min(max(samples, 4), 64)
	}
	rate := math.Min(0.5, math.Max(0.05, 0.01/eps))
	return eps, flow.SampleOptions{
		Samples:     samples,
		EdgeRate:    rate,
		Seed:        opts.SampleSeed,
		Parallelism: opts.Parallelism,
	}
}

// placeApproxCELF runs the lazy greedy over estimated gains.
//
// Heap discipline: entries carry the usual round stamp; estimate-seeded
// entries are stamped -1 (never "fresh") and their priority is the
// sampled estimate inflated by (1 + ε). A pick commits only when the
// heap top is an EXACT gain computed this round — estimates and stale
// exact bounds above it have all been re-checked down, so the committed
// gain beats every bound that could have hidden a better node (up to
// the estimate error the slack absorbs).
func placeApproxCELF(ctx context.Context, ev flow.Evaluator, k int, opts Options, res *Result) error {
	m := ev.Model()
	n := m.N()
	eps, sopts := approxSampleOptions(opts)
	se := flow.NewSampling(m, sopts)
	defer se.ReleaseScratch()
	pool := newEvalPool(ev, opts.Parallelism, opts.Tenant)
	defer pool.close()
	res.Parallelism = pool.width()
	st := &res.Stats
	filters := make([]bool, n)
	chosen := make([]int, 0, k)

	// One sampled sweep estimates every candidate's gain; construction
	// of the engine itself estimated Φ(∅,V) (its confidence interval is
	// re-used for the final report).
	sp := opts.Trace.Begin("approx-sample")
	est := se.Impacts(nil)
	sp.AddEvals(int64(n))
	sp.SetWorkers(pool.width())
	sp.End()
	st.SampledEvaluations += n

	slack := 1 + eps
	var h celfHeap
	for v := 0; v < n; v++ {
		if !m.IsSource(v) && est[v] > 0 {
			h.push(celfEntry{est[v] * slack, v, -1})
		}
	}

	round := 0
	batch := make([]celfEntry, 0, approxRecheckWidth)
	nodes := make([]int, 0, approxRecheckWidth)
	for len(chosen) < k && len(h) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if h[0].stamp == round {
			top := h.pop()
			if top.gain <= 0 {
				break
			}
			filters[top.v] = true
			chosen = append(chosen, top.v)
			round++
			st.Iterations++
			continue
		}
		// Top is an estimate or a stale exact bound: exactly re-check the
		// next batch of such entries in heap (descending-bound) order.
		batch, nodes = batch[:0], nodes[:0]
		for len(h) > 0 && h[0].stamp != round && len(batch) < approxRecheckWidth {
			e := h.pop()
			batch = append(batch, e)
			nodes = append(nodes, e.v)
		}
		rsp := opts.Trace.Begin("approx-recheck")
		exact, err := pool.gains(ctx, filters, nodes)
		rsp.AddEvals(int64(len(nodes)))
		rsp.SetWorkers(pool.width())
		rsp.End()
		if err != nil {
			return err
		}
		st.GainEvaluations += len(nodes)
		for i := range batch {
			if g := exact[i]; g > 0 {
				h.push(celfEntry{g, batch[i].v, round})
			}
		}
	}
	res.Filters = chosen

	// Report the sampled confidence interval on Φ(A) for the final set.
	fsp := opts.Trace.Begin("approx-sample")
	ci := se.PhiEstimate(filters)
	fsp.AddEvals(1)
	fsp.SetWorkers(pool.width())
	fsp.End()
	st.SampledEvaluations++
	res.PhiCI = &ci
	return nil
}
