package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/gen"
)

func TestGreedyLFastMatchesGreedyL(t *testing.T) {
	f := func(seed int64) bool {
		g, src := gen.RandomDAG(40, 0.12, seed)
		ev := flow.NewFloat(flow.MustModel(g, []int{src}))
		a := GreedyL(ev, 6)
		b := GreedyLFast(ev, 6)
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed %d: plain %v vs fast %v", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyLFastOnDatasets(t *testing.T) {
	for name, mk := range map[string]func() (*flow.Model, error){
		"quote": func() (*flow.Model, error) {
			g, s := gen.QuoteLike(1)
			return flow.NewModel(g, []int{s})
		},
		"citation": func() (*flow.Model, error) {
			g, s := gen.CitationLike(1)
			return flow.NewModel(g, []int{s})
		},
		"twitter-small": func() (*flow.Model, error) {
			g, s := gen.TwitterLike(0.02, 1)
			return flow.NewModel(g, []int{s})
		},
	} {
		m, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ev := flow.NewFloat(m)
		a := GreedyL(ev, 10)
		b := GreedyLFast(ev, 10)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: plain %v vs fast %v", name, a, b)
		}
	}
}

func TestGreedyLFastWeightedFallback(t *testing.T) {
	g, src := gen.RandomDAG(30, 0.15, 2)
	m := flow.MustModel(g, []int{src}).WithWeights(func(u, v int) float64 { return 0.8 })
	ev := flow.NewFloat(m)
	a := GreedyL(ev, 4)
	b := GreedyLFast(ev, 4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("weighted fallback differs: %v vs %v", a, b)
	}
}

func BenchmarkGreedyLPlain(b *testing.B) {
	g, src := gen.CitationLike(1)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyL(ev, 10)
	}
}

func BenchmarkGreedyLFast(b *testing.B) {
	g, src := gen.CitationLike(1)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyLFast(ev, 10)
	}
}
