package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/gen"
)

func TestGreedyAllPartialZeroLeakMatchesGreedyAll(t *testing.T) {
	f := func(seed int64) bool {
		g, src := gen.RandomDAG(25, 0.2, seed)
		e := flow.NewFloat(flow.MustModel(g, []int{src}))
		a := GreedyAll(e, 4)
		b := GreedyAllPartial(e, 4, 0)
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed %d: %v vs %v", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyAllPartialFullLeakPlacesNothing(t *testing.T) {
	g, src := gen.RandomDAG(25, 0.2, 7)
	e := flow.NewFloat(flow.MustModel(g, []int{src}))
	if a := GreedyAllPartial(e, 4, 1); len(a) != 0 {
		t.Errorf("leak=1 placed %v; fully-leaky filters have zero gain", a)
	}
}

func TestGreedyAllPartialImproves(t *testing.T) {
	// With moderate leak the placement still recovers a large share of
	// the perfect-filter reduction on QuoteLike.
	g, src := gen.QuoteLike(1)
	e := flow.NewFloat(flow.MustModel(g, []int{src}))
	a := GreedyAllPartial(e, 4, 0.3)
	if len(a) != 4 {
		t.Fatalf("placed %d filters, want 4", len(a))
	}
	fr := e.FRPartial(flow.MaskOf(g.N(), a), 0.3)
	// Leaky filters compound down the hub chain, so the recovery exceeds
	// the naive 1−ρ bound but stays short of perfect.
	if fr < 0.6 || fr > 0.97 {
		t.Errorf("FR = %v, want in (0.6, 0.97)", fr)
	}
	// And more budget keeps helping (weakly).
	a10 := GreedyAllPartial(e, 10, 0.3)
	fr10 := e.FRPartial(flow.MaskOf(g.N(), a10), 0.3)
	if fr10 < fr-1e-9 {
		t.Errorf("FR decreased with budget: %v → %v", fr, fr10)
	}
}

func TestGreedyAllOnMultiEngine(t *testing.T) {
	// The multi-item engine satisfies Evaluator; greedy must run on it
	// and its picks must be exact marginal-gain maximizers.
	g, src := gen.RandomDAG(30, 0.15, 3)
	me, err := flow.NewMulti(g, []flow.Item{
		{Name: "root", Source: src, Rate: 1},
		{Name: "mid", Source: 10, Rate: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := GreedyAll(me, 3)
	if len(plan) == 0 {
		t.Fatal("no filters placed")
	}
	// First pick = argmax of initial impacts.
	gains := me.Impacts(nil)
	best := 0
	for v := range gains {
		if gains[v] > gains[best] {
			best = v
		}
	}
	if plan[0] != best {
		t.Errorf("first pick %d, want argmax %d", plan[0], best)
	}
	// FR is monotone along the plan.
	mask := make([]bool, g.N())
	prev := 0.0
	for _, v := range plan {
		mask[v] = true
		fr := flow.FR(me, mask)
		if fr < prev-1e-9 {
			t.Errorf("FR decreased along greedy plan")
		}
		prev = fr
	}
}
