package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/graph"
)

// placeTestModel builds a random DAG model (edges low→high id, always
// acyclic) dense enough that every strategy places a full budget.
func placeTestModel(t testing.TB, n int, p float64, seed int64) *flow.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := flow.NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPlaceParallelDeterminism is the acceptance gate of the parallel
// refactor: on random DAGs, Place at P = 1, 4 and GOMAXPROCS returns
// exactly the serial path's filter sets AND OracleStats for every
// strategy, on both engines.
func TestPlaceParallelDeterminism(t *testing.T) {
	strategies := []Strategy{
		StrategyGreedyAll, StrategyCELF, StrategyNaive, StrategyMLCELF,
		StrategyGreedyMax, StrategyGreedy1, StrategyGreedyL, StrategyGreedyLFast,
		StrategyRandK, StrategyRandI, StrategyRandW, StrategyProp1,
	}
	procsList := []int{1, 4, runtime.GOMAXPROCS(0)}
	for seed := int64(1); seed <= 3; seed++ {
		m := placeTestModel(t, 150, 0.05, seed)
		engines := map[string]flow.Evaluator{
			"float": flow.NewFloat(m),
			"big":   flow.NewBig(m),
		}
		for engName, ev := range engines {
			for _, strat := range strategies {
				serial, err := Place(context.Background(), ev, 12, Options{Strategy: strat, Seed: 7})
				if err != nil {
					t.Fatalf("seed %d %s/%s serial: %v", seed, engName, strat, err)
				}
				for _, procs := range procsList {
					par, err := Place(context.Background(), ev, 12, Options{Strategy: strat, Seed: 7, Parallelism: procs})
					if err != nil {
						t.Fatalf("seed %d %s/%s P=%d: %v", seed, engName, strat, procs, err)
					}
					if !reflect.DeepEqual(par.Filters, serial.Filters) {
						t.Errorf("seed %d %s/%s P=%d: filters %v, serial %v",
							seed, engName, strat, procs, par.Filters, serial.Filters)
					}
					if par.Stats != serial.Stats {
						t.Errorf("seed %d %s/%s P=%d: stats %+v, serial %+v",
							seed, engName, strat, procs, par.Stats, serial.Stats)
					}
				}
			}
		}
	}
}

// TestPlaceMatchesLegacy pins the refactor to the pre-Place functions:
// every strategy reproduces its legacy wrapper's output exactly.
func TestPlaceMatchesLegacy(t *testing.T) {
	m := placeTestModel(t, 120, 0.06, 11)
	ev := flow.NewFloat(m)
	k := 10
	ctx := context.Background()

	check := func(name string, got, want []int) {
		t.Helper()
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Place %v, legacy %v", name, got, want)
		}
	}
	res, _ := Place(ctx, ev, k, Options{Strategy: StrategyGreedyAll, Parallelism: 4})
	check("greedy-all", res.Filters, GreedyAll(ev, k))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyCELF, Parallelism: 4})
	check("celf", res.Filters, GreedyAll(ev, k))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyNaive, Parallelism: 4})
	check("naive", res.Filters, GreedyAll(ev, k))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyGreedyMax, Parallelism: 4})
	check("greedy-max", res.Filters, GreedyMax(ev, k))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyGreedy1})
	check("greedy-1", res.Filters, Greedy1(m.Graph(), k))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyGreedyL})
	check("greedy-l", res.Filters, GreedyL(ev, k))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyGreedyLFast})
	check("greedy-l-fast", res.Filters, GreedyLFast(ev, k))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyRandK, Seed: 3})
	check("rand-k", res.Filters, RandK(m, k, rand.New(rand.NewSource(3))))

	res, _ = Place(ctx, ev, k, Options{Strategy: StrategyProp1})
	check("prop1", res.Filters, UnboundedOptimal(m.Graph()))
}

// TestPlaceCELFStatsSaveWork sanity-checks the ablation invariant: lazy
// evaluation spends strictly fewer oracle calls than the naive profile on
// a non-trivial graph, at any parallelism.
func TestPlaceCELFStatsSaveWork(t *testing.T) {
	m := placeTestModel(t, 200, 0.04, 5)
	ev := flow.NewFloat(m)
	naive, err := Place(context.Background(), ev, 10, Options{Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		celf, err := Place(context.Background(), ev, 10, Options{Strategy: StrategyCELF, Parallelism: procs})
		if err != nil {
			t.Fatal(err)
		}
		if celf.Stats.GainEvaluations >= naive.Stats.GainEvaluations {
			t.Errorf("P=%d: CELF spent %d gain evaluations, naive %d — laziness saved nothing",
				procs, celf.Stats.GainEvaluations, naive.Stats.GainEvaluations)
		}
		if !reflect.DeepEqual(celf.Filters, naive.Filters) {
			t.Errorf("P=%d: CELF filters %v != naive %v", procs, celf.Filters, naive.Filters)
		}
	}
}

// TestPlaceCancellation checks that a context canceled mid-placement makes
// Place return promptly with ctx.Err() and without leaking goroutines
// beyond the process-wide scheduler pool.
func TestPlaceCancellation(t *testing.T) {
	m := placeTestModel(t, 400, 0.05, 9)
	ev := flow.NewFloat(m)
	// Warm the shared pool first: its workers are process-persistent by
	// design, so they must be part of the baseline, not counted as leaks.
	if _, err := Place(context.Background(), ev, 2, Options{Strategy: StrategyNaive, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for _, strat := range []Strategy{StrategyGreedyAll, StrategyCELF, StrategyNaive} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already canceled: must abort before the first round
		if _, err := Place(ctx, ev, 50, Options{Strategy: strat, Parallelism: 4}); err != context.Canceled {
			t.Errorf("%s pre-canceled: err = %v, want context.Canceled", strat, err)
		}

		// Cancel mid-flight from another goroutine.
		ctx, cancel = context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := Place(ctx, ev, 200, Options{Strategy: strat, Parallelism: 4})
			done <- err
		}()
		time.Sleep(2 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Errorf("%s mid-flight: err = %v", strat, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not return within 10s of cancellation", strat)
		}
	}
	// Workers are joined before Place returns, so the goroutine count
	// settles back to the baseline (poll briefly: the runtime may retire
	// exiting goroutines asynchronously).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before", g, before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPlaceUnknownStrategy checks the error path.
func TestPlaceUnknownStrategy(t *testing.T) {
	m := placeTestModel(t, 20, 0.2, 1)
	if _, err := Place(context.Background(), flow.NewFloat(m), 3, Options{Strategy: "simulated-annealing"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestPlaceMultiEngine checks Place runs (and parallelizes via cloning) on
// the multi-item evaluator.
func TestPlaceMultiEngine(t *testing.T) {
	m := placeTestModel(t, 100, 0.06, 13)
	me, err := flow.NewMulti(m.Graph(), []flow.Item{
		{Name: "a", Source: m.Sources()[0], Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Place(context.Background(), me, 8, Options{Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Place(context.Background(), me, 8, Options{Strategy: StrategyNaive, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Filters, par.Filters) || serial.Stats != par.Stats {
		t.Fatalf("multi-engine parallel diverged: %v/%+v vs %v/%+v",
			par.Filters, par.Stats, serial.Filters, serial.Stats)
	}
	if par.Parallelism != 3 {
		t.Fatalf("multi-engine did not clone: parallelism %d", par.Parallelism)
	}
}

// TestPlaceNoCandidatesParallel is a regression test: an edgeless graph
// (every node a source, zero candidates) must return an empty placement,
// not divide by zero in the parallel sharding.
func TestPlaceNoCandidatesParallel(t *testing.T) {
	g, err := graph.FromEdges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := flow.NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyNaive, StrategyCELF, StrategyGreedyAll} {
		res, err := Place(context.Background(), flow.NewFloat(m), 2, Options{Strategy: strat, Parallelism: 4})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(res.Filters) != 0 {
			t.Errorf("%s placed %v on an edgeless graph", strat, res.Filters)
		}
	}
}

// TestPlacePartialStatsOnCancel checks the canceled-run contract: no
// filters, but the oracle work done before the abort is reported.
func TestPlacePartialStatsOnCancel(t *testing.T) {
	m := placeTestModel(t, 300, 0.05, 21)
	ev := flow.NewFloat(m)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	res, err := Place(ctx, ev, 200, Options{Strategy: StrategyNaive})
	if err == nil {
		t.Skip("placement finished before cancellation on this host")
	}
	if res.Filters != nil {
		t.Errorf("canceled Place returned filters %v", res.Filters)
	}
	// Stats may legitimately be zero if the cancel landed before round 1,
	// but the field must reflect whatever was counted — exercised here by
	// just reading it; the stats-parity test pins the accounting itself.
	_ = res.Stats
}
