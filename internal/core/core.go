// Package core implements the paper's filter-placement algorithms: the
// (1−1/e)-approximate greedy (Greedy_All) with two cost profiles and a lazy
// (CELF-style) variant, the scalable heuristics Greedy_Max, Greedy_1 and
// Greedy_L, the randomized baselines Rand_K, Rand_I and Rand_W, the exact
// dynamic program for communication trees, an exhaustive optimal solver for
// validation, and Proposition 1's unbounded-budget optimal set.
//
// Place is the unified entry point: one engine with pluggable strategies,
// shared context/cancellation plumbing, oracle accounting and an optional
// parallel inner loop that shards per-round marginal-gain evaluation
// across cloned evaluators with results bit-for-bit identical to the
// serial path. The per-algorithm functions (GreedyAll, GreedyAllCELF,
// GreedyL, …) remain as thin deprecated wrappers.
//
// All algorithms return the placed filter nodes in the order chosen (greedy
// algorithms) or ascending order (set-valued algorithms); the returned slice
// may be shorter than k when further filters cannot improve the objective.
package core

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/flow"
	"repro/internal/graph"
)

// GreedyAll is the paper's Greedy_All: repeatedly add the node with the
// largest exact marginal gain F(A∪{v}) − F(A). By the Nemhauser–Wolsey–
// Fisher bound it is a (1 − 1/e)-approximation for the monotone submodular
// objective F. This implementation computes all marginal gains with one
// forward and one backward topological pass per iteration (O(k·|E|) total),
// improving on the paper's O(k·Δ·|E|) plist bookkeeping.
//
// Deprecated: use Place with StrategyGreedyAll, which adds cancellation,
// oracle accounting and a parallel inner loop behind the same semantics.
func GreedyAll(ev flow.Evaluator, k int) []int {
	chosen, _ := GreedyAllCtx(context.Background(), ev, k)
	return chosen
}

// GreedyAllCtx is GreedyAll with a cancellation check between greedy
// rounds. It returns ctx.Err() when canceled.
//
// Deprecated: use Place with StrategyGreedyAll.
func GreedyAllCtx(ctx context.Context, ev flow.Evaluator, k int) ([]int, error) {
	res, err := Place(ctx, ev, k, Options{Strategy: StrategyGreedyAll})
	if err != nil {
		return nil, err
	}
	return res.Filters, nil
}

// OracleStats counts objective-function work done by an algorithm, used by
// the CELF ablation experiment and surfaced per-job by the fpd service.
type OracleStats struct {
	// GainEvaluations counts single-node marginal-gain computations.
	GainEvaluations int `json:"gain_evaluations"`
	// SampledEvaluations counts single-node SAMPLED gain/Φ estimates
	// (approx-celf only): each costs EdgeRate-sampled passes instead of
	// exact ones. Like GainEvaluations it is part of the deterministic
	// contract — identical at every Parallelism setting.
	SampledEvaluations int `json:"sampled_evaluations,omitempty"`
	// Iterations counts greedy rounds completed.
	Iterations int `json:"iterations"`
}

// GreedyAllNaive is Greedy_All at the paper's cost profile: in every round
// it recomputes the marginal gain of every candidate node by re-evaluating
// Φ, exactly as "an update of the impact of every node is required"
// describes. It returns the same filter set as GreedyAll and reports how
// many gain evaluations it spent; it exists as the baseline for the CELF
// ablation.
//
// Deprecated: use Place with StrategyNaive.
func GreedyAllNaive(ev flow.Evaluator, k int) ([]int, OracleStats) {
	res, _ := Place(context.Background(), ev, k, Options{Strategy: StrategyNaive})
	return res.Filters, res.Stats
}

// GreedyAllCELF is the lazy-evaluation variant of GreedyAllNaive
// (Leskovec et al.'s CELF applied to filter placement — an extension beyond
// the paper). Submodularity guarantees a node's gain never increases as the
// filter set grows, so stale upper bounds can defer most re-evaluations.
// It returns the same filter set as GreedyAll, typically with far fewer
// gain evaluations than GreedyAllNaive.
//
// Deprecated: use Place with StrategyCELF.
func GreedyAllCELF(ev flow.Evaluator, k int) ([]int, OracleStats) {
	chosen, st, _ := GreedyAllCELFCtx(context.Background(), ev, k)
	return chosen, st
}

// GreedyAllCELFCtx is GreedyAllCELF with a cancellation check on every
// heap pop, returning ctx.Err() when canceled.
//
// Deprecated: use Place with StrategyCELF.
func GreedyAllCELFCtx(ctx context.Context, ev flow.Evaluator, k int) ([]int, OracleStats, error) {
	res, err := Place(ctx, ev, k, Options{Strategy: StrategyCELF})
	if err != nil {
		return nil, res.Stats, err
	}
	return res.Filters, res.Stats, nil
}

// GreedyMax is the paper's Greedy_Max heuristic: compute every node's
// impact once in the empty-filter state and keep the k largest, with no
// recomputation. Runs in O(|E| + n log n).
//
// Deprecated: use Place with StrategyGreedyMax.
func GreedyMax(ev flow.Evaluator, k int) []int {
	gains := ev.Impacts(nil)
	return topK(gains, k)
}

// Greedy1 is the paper's Greedy_1 heuristic: rank nodes by the local
// redundancy lower bound m(v) = din(v)·dout(v) and keep the k largest.
// Runs in O(|E| + n log n).
//
// Deprecated: use Place with StrategyGreedy1.
func Greedy1(g *graph.Digraph, k int) []int {
	m := make([]float64, g.N())
	for v := range m {
		m[v] = float64(g.InDegree(v)) * float64(g.OutDegree(v))
	}
	return topK(m, k)
}

// GreedyL is the paper's Greedy_L heuristic: in each of k rounds compute
// the simplified impact I′(v) = Prefix(v)·dout(v) under the current filter
// set — the number of copies v pushes to its immediate children — and place
// a filter at the maximizer. Runs in O(k·|E|).
//
// Deprecated: use Place with StrategyGreedyL.
func GreedyL(ev flow.Evaluator, k int) []int {
	m := ev.Model()
	g := m.Graph()
	n := m.N()
	filters := make([]bool, n)
	chosen := make([]int, 0, k)
	for len(chosen) < k {
		prefix := ev.Received(filters)
		best, bestScore := -1, 0.0
		for v := 0; v < n; v++ {
			if filters[v] || m.IsSource(v) {
				continue
			}
			score := prefix[v] * float64(g.OutDegree(v))
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			break
		}
		filters[best] = true
		chosen = append(chosen, best)
	}
	return chosen
}

// topK returns the indices of the k largest strictly-positive scores,
// breaking ties toward smaller indices, in descending score order.
func topK(scores []float64, k int) []int {
	idx := make([]int, 0, len(scores))
	for v, s := range scores {
		if s > 0 {
			idx = append(idx, v)
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	return idx
}

// UnboundedOptimal returns Proposition 1's minimal filter set achieving the
// maximum possible reduction F(V): every node that is not a sink and has
// in-degree greater than one. Runs in O(|E|).
func UnboundedOptimal(g *graph.Digraph) []int {
	var a []int
	for v := 0; v < g.N(); v++ {
		if g.InDegree(v) > 1 && g.OutDegree(v) > 0 {
			a = append(a, v)
		}
	}
	return a
}

// RandK is the paper's Random_k baseline: k filters chosen uniformly at
// random without replacement from all nodes.
func RandK(m *flow.Model, k int, rng *rand.Rand) []int {
	n := m.N()
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	nodes := append([]int(nil), perm[:k]...)
	sort.Ints(nodes)
	return nodes
}

// RandI is the paper's Random_Independent baseline: every node becomes a
// filter independently with probability k/n, so the expected filter count
// is k.
func RandI(m *flow.Model, k int, rng *rand.Rand) []int {
	n := m.N()
	p := float64(k) / float64(n)
	var nodes []int
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			nodes = append(nodes, v)
		}
	}
	return nodes
}

// RandW is the paper's Random_Weighted baseline: node v is assigned weight
// w(v) = Σ_{u ∈ children(v)} 1/din(u) — v's share of responsibility for the
// copies its children receive — and becomes a filter independently with
// probability min(1, w(v)·k/n).
func RandW(m *flow.Model, k int, rng *rand.Rand) []int {
	g := m.Graph()
	n := m.N()
	var nodes []int
	for v := 0; v < n; v++ {
		w := 0.0
		for _, u := range g.Out(v) {
			w += 1 / float64(g.InDegree(u))
		}
		p := w * float64(k) / float64(n)
		if p > 1 {
			p = 1
		}
		if rng.Float64() < p {
			nodes = append(nodes, v)
		}
	}
	return nodes
}
