package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
)

func init() {
	registry["abl-mc"] = AblationMonteCarlo
	registry["abl-tree"] = AblationTreeOptimality
}

// AblationMonteCarlo quantifies the gap the paper's §3 glosses over when it
// says the results "continue to hold under a probabilistic information
// propagation mode": the analytic weighted engine computes expected copy
// counts with filters emitting min(1, E[rec]), while the ground truth is a
// random process in which a filter forwards the first copy it actually
// receives. Monte-Carlo sampling measures the truth and its gap to the
// analytic surrogate.
func AblationMonteCarlo(opt Options) (*Report, error) {
	runs := 2000
	if opt.Quick {
		runs = 300
	}
	g, src := gen.Figure1()
	rep := &Report{
		ID:      "abl-mc",
		Title:   "Probabilistic model: analytic expectation vs Monte-Carlo ground truth",
		Dataset: fmt.Sprintf("Figure 1 graph; filter at z2; %d simulation runs", runs),
	}
	rep.Header = []string{"relay p", "analytic Φ(∅)", "MC Φ(∅) ±95%", "analytic Φ({z2})", "MC Φ({z2}) ±95%"}
	fz2 := flow.MaskOf(g.N(), []int{gen.Fig1Z2})
	for _, p := range []float64{1.0, 0.8, 0.6, 0.4} {
		m := flow.MustModel(g, []int{src})
		if p < 1 {
			pp := p
			m = m.WithWeights(func(u, v int) float64 { return pp })
		}
		ev := flow.NewFloat(m)
		mcEmpty, err := flow.MonteCarlo(m, nil, runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		mcFilt, err := flow.MonteCarlo(m, fz2, runs, opt.Seed+1)
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("%.1f", p),
			ev.Phi(nil),
			fmt.Sprintf("%.3f ± %.3f", mcEmpty.Mean, mcEmpty.CI95()),
			ev.Phi(fz2),
			fmt.Sprintf("%.3f ± %.3f", mcFilt.Mean, mcFilt.CI95()))
	}
	rep.Note("without filters the process is linear, so analytic = MC; with a filter the analytic")
	rep.Note("min(1, E[rec]) overestimates the filter's emission (Jensen), so analytic Φ({z2}) ≥ true Φ({z2})")
	return rep, nil
}

// AblationTreeOptimality measures how close Greedy_All gets to the exact
// tree DP on random communication trees — an empirical companion to the
// paper's §4.1 polynomial-time result and its (1−1/e) guarantee. The
// observed ratios are far above the worst-case bound.
func AblationTreeOptimality(opt Options) (*Report, error) {
	nTrees, size := 40, 120
	if opt.Quick {
		nTrees, size = 10, 40
	}
	rep := &Report{
		ID:      "abl-tree",
		Title:   "Exact tree DP vs Greedy_All on random communication trees",
		Dataset: fmt.Sprintf("%d random c-trees, %d nodes each", nTrees, size),
	}
	rep.Header = []string{"k", "mean greedy/OPT", "min greedy/OPT", "greedy optimal (of trees)"}
	for _, k := range []int{1, 2, 4, 8} {
		sum, minRatio, optimal, counted := 0.0, 1.0, 0, 0
		for i := 0; i < nTrees; i++ {
			g, src := gen.RandomCTree(size, 0.4, opt.Seed+int64(i))
			m, err := flow.NewModel(g, []int{src})
			if err != nil {
				return nil, err
			}
			ev := flow.NewFloat(m)
			_, dpF, err := core.TreeDP(g, src, k)
			if err != nil {
				return nil, err
			}
			if dpF == 0 {
				continue // redundancy-free tree
			}
			greedy := core.GreedyAll(ev, k)
			gF := ev.F(flow.MaskOf(g.N(), greedy))
			ratio := gF / dpF
			sum += ratio
			if ratio < minRatio {
				minRatio = ratio
			}
			if ratio > 1-1e-9 {
				optimal++
			}
			counted++
		}
		if counted == 0 {
			continue
		}
		rep.AddRow(k, sum/float64(counted), minRatio, fmt.Sprintf("%d/%d", optimal, counted))
	}
	rep.Note("the (1−1/e) ≈ 0.632 guarantee is loose in practice: greedy is optimal on most trees")
	return rep, nil
}
