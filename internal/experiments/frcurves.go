package experiments

import (
	"math/rand"

	"repro/internal/flow"
	"repro/internal/stats"
)

// FRPoint is one (k, FR) measurement; randomized algorithms carry the
// standard deviation across repetitions.
type FRPoint struct {
	K      int
	FR     float64
	StdDev float64
}

// FRSeries is one algorithm's curve in a figure.
type FRSeries struct {
	Algorithm string
	Points    []FRPoint
}

// FRResult is a full FR-vs-k figure: one series per algorithm over a fixed
// dataset.
type FRResult struct {
	Dataset      string
	Nodes, Edges int
	Series       []FRSeries
}

// FRCurves reproduces the paper's FR figures: for every algorithm and every
// budget k in ks, place filters and report the Filter Ratio
// FR(A) = F(A)/F(V). Deterministic incremental algorithms are placed once
// at max(ks) and measured on prefixes; randomized baselines are averaged
// over reps independent runs (the paper uses 25).
func FRCurves(ev flow.Evaluator, dataset string, ks []int, algos []Algorithm, reps int, seed int64) *FRResult {
	g := ev.Model().Graph()
	res := &FRResult{Dataset: dataset, Nodes: g.N(), Edges: g.M()}
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	for _, algo := range algos {
		series := FRSeries{Algorithm: algo.Name}
		switch {
		case algo.Randomized:
			rng := rand.New(rand.NewSource(seed))
			for _, k := range ks {
				var w stats.Welford
				for r := 0; r < reps; r++ {
					nodes := algo.Place(ev, k, rng)
					w.Add(flow.FR(ev, flow.MaskOf(g.N(), nodes)))
				}
				series.Points = append(series.Points, FRPoint{K: k, FR: w.Mean(), StdDev: w.StdDev()})
			}
		case algo.Incremental:
			placement := algo.Place(ev, maxK, nil)
			mask := make([]bool, g.N())
			next := 0
			for _, k := range ks {
				for next < k && next < len(placement) {
					mask[placement[next]] = true
					next++
				}
				series.Points = append(series.Points, FRPoint{K: k, FR: flow.FR(ev, mask)})
			}
		default:
			for _, k := range ks {
				nodes := algo.Place(ev, k, nil)
				series.Points = append(series.Points, FRPoint{K: k, FR: flow.FR(ev, flow.MaskOf(g.N(), nodes))})
			}
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// Final returns the last point of the named series, to let tests assert
// end-of-curve behaviour ("FR reaches 1 by k = 10").
func (r *FRResult) Final(algorithm string) (FRPoint, bool) {
	for _, s := range r.Series {
		if s.Algorithm == algorithm {
			if len(s.Points) == 0 {
				return FRPoint{}, false
			}
			return s.Points[len(s.Points)-1], true
		}
	}
	return FRPoint{}, false
}

// At returns the point with the given k of the named series.
func (r *FRResult) At(algorithm string, k int) (FRPoint, bool) {
	for _, s := range r.Series {
		if s.Algorithm != algorithm {
			continue
		}
		for _, p := range s.Points {
			if p.K == k {
				return p, true
			}
		}
	}
	return FRPoint{}, false
}

// Ks returns an inclusive integer range {0, 1, …, max} with the given
// step (the paper plots every k in its figures).
func Ks(max, step int) []int {
	if step < 1 {
		step = 1
	}
	var ks []int
	for k := 0; k <= max; k += step {
		ks = append(ks, k)
	}
	if ks[len(ks)-1] != max {
		ks = append(ks, max)
	}
	return ks
}
