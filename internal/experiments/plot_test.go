package experiments

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/gen"
)

func TestPlotFR(t *testing.T) {
	g, src := gen.QuoteLike(1)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "quote", Ks(10, 1), GreedyAlgorithms(), 1, 1)
	out := PlotFR(res, 40, 10)
	for _, want := range []string{"FR 1", "k=0", "k=10", "A=G_ALL", "M=G_Max"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The G_ALL series saturates at FR 1, so the top row must contain its
	// symbol.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "A") {
		t.Errorf("top row missing saturated G_ALL symbol:\n%s", out)
	}
}

func TestPlotFREmpty(t *testing.T) {
	out := PlotFR(&FRResult{}, 40, 8)
	if !strings.Contains(out, "empty") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestPlotFRTinyDimensionsClamped(t *testing.T) {
	g, src := gen.Figure1()
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "fig1", Ks(2, 1), GreedyAlgorithms(), 1, 1)
	out := PlotFR(res, 1, 1) // clamps to minimum size, must not panic
	if len(out) == 0 {
		t.Error("no output")
	}
}
