package experiments

import (
	"fmt"

	"repro/internal/acyclic"
	"repro/internal/gen"
)

func init() {
	registry["abl-acyclic"] = AblationAcyclic
}

// AblationAcyclic validates a finding of this reproduction: the paper's
// §4.3 junction-signature Acyclic algorithm, implemented as written, is
// *exact* — it accepts precisely the non-back edges of the DFS, which is
// the same maximal acyclic subgraph the Pearce–Kelly-based construction
// produces (DFS finish time strictly decreases along tree, forward and
// cross edges, so only back edges can close cycles). The experiment
// verifies the equivalence across random digraphs of increasing density;
// retention ratio 1 and zero cyclic outputs are the expected result.
func AblationAcyclic(opt Options) (*Report, error) {
	trials := 40
	if opt.Quick {
		trials = 10
	}
	rep := &Report{
		ID:    "abl-acyclic",
		Title: "Acyclic extraction: paper's junction signatures vs exact incremental ordering",
	}
	rep.Header = []string{"density m/n", "mean edges kept (exact)", "mean edges kept (signature)", "retention ratio", "cyclic outputs"}
	n := 60
	for _, density := range []int{2, 4, 8} {
		sumExact, sumSig, cyclic := 0, 0, 0
		for i := 0; i < trials; i++ {
			g := gen.RandomDigraph(n, density*n, opt.Seed+int64(1000*density+i))
			res, err := acyclic.Compare(g, 0)
			if err != nil {
				return nil, err
			}
			sumExact += res.ExactEdges
			sumSig += res.SignatureEdges
			if !res.SignatureOK {
				cyclic++
			}
		}
		rep.AddRow(
			density,
			float64(sumExact)/float64(trials),
			float64(sumSig)/float64(trials),
			float64(sumSig)/float64(sumExact),
			fmt.Sprintf("%d/%d", cyclic, trials),
		)
	}
	rep.Note("retention ratio 1 and 0 cyclic outputs confirm the junction-signature test is exact")
	rep.Note("(it accepts exactly the DFS cross and forward edges; only back edges can close cycles)")
	return rep, nil
}
