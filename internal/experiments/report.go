package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Report is the printable result of one experiment: a table whose rows are
// the same series the corresponding paper figure plots, plus free-form
// notes recording scalar findings (Φ values, chosen filter sets, timings).
type Report struct {
	ID      string
	Title   string
	Dataset string
	Header  []string
	Rows    [][]string
	Notes   []string
	// Plot holds an optional ASCII rendering of the figure (FR curves);
	// printed by cmd/fpexp under -plot.
	Plot string
}

// Note appends a formatted note line.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddRow appends a table row; values are formatted with %v, floats with
// four decimals.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				row[i] = fmt.Sprintf("%d", int64(v))
			} else {
				row[i] = fmt.Sprintf("%.4f", v)
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s", r.ID, r.Title)
	if r.Dataset != "" {
		fmt.Fprintf(&sb, " [%s]", r.Dataset)
	}
	sb.WriteString(" ==\n")
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					sb.WriteString("  ")
				}
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			}
			sb.WriteString("\n")
		}
		writeRow(r.Header)
		for i, w := range widths {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat("-", w))
		}
		sb.WriteString("\n")
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders header and rows as comma-separated values (cells containing
// commas are quoted).
func (r *Report) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteString("\n")
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// reportFromFR converts an FR figure into a Report table with one row per
// k and one column per algorithm.
func reportFromFR(id, title string, res *FRResult) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Dataset: fmt.Sprintf("%s: %d nodes, %d edges", res.Dataset, res.Nodes, res.Edges),
	}
	rep.Header = []string{"k"}
	for _, s := range res.Series {
		rep.Header = append(rep.Header, s.Algorithm)
	}
	if len(res.Series) == 0 {
		return rep
	}
	for i, p := range res.Series[0].Points {
		row := []any{p.K}
		for _, s := range res.Series {
			row = append(row, s.Points[i].FR)
		}
		rep.AddRow(row...)
	}
	rep.Plot = PlotFR(res, 60, 12)
	return rep
}

// Options configures experiment runs.
type Options struct {
	// Seed drives every random generator involved. Default 1.
	Seed int64
	// Reps is the number of runs averaged for randomized baselines; the
	// paper uses 25 (the default).
	Reps int
	// Quick shrinks datasets and repetition counts so the whole suite
	// runs in seconds; used by unit tests. Benchmarks run full size.
	Quick bool
	// Parallelism is the core.Place worker bound used by the greedy
	// algorithms (fpexp -procs); ≤ 1 is serial. Series are bit-for-bit
	// identical at any setting.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Reps == 0 {
		if o.Quick {
			o.Reps = 5
		} else {
			o.Reps = 25
		}
	}
	return o
}

// Runner is an experiment driver.
type Runner func(Options) (*Report, error)

// registry maps experiment ids (as in DESIGN.md's per-experiment index) to
// drivers; populated in figures.go.
var registry = map[string]Runner{}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opt.withDefaults())
}
