package experiments

import (
	"fmt"

	"repro/internal/centrality"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

func init() {
	registry["abl-between"] = AblationBetweenness
	registry["abl-leaky"] = AblationLeakyFilters
	registry["abl-multi"] = AblationMultiItem
}

// AblationBetweenness makes the paper's §2 argument quantitative:
// betweenness centrality identifies shortest-path brokers, not redundancy
// choke points, so placing filters at the top-k central nodes trails every
// impact-aware algorithm.
func AblationBetweenness(opt Options) (*Report, error) {
	rep := &Report{
		ID:    "abl-between",
		Title: "Betweenness-centrality placement vs filter-placement algorithms",
	}
	rep.Header = []string{"dataset", "k", "Betweenness FR", "G_ALL FR", "G_1 FR"}
	for _, d := range []struct {
		name string
		k    int
	}{
		{"Figure1", 1},
		{"QuoteLike", 4},
		{"CitationLike", 10},
	} {
		var g *graphT
		var src int
		switch d.name {
		case "Figure1":
			g, src = gen.Figure1()
		case "QuoteLike":
			g, src = gen.QuoteLike(opt.Seed)
		case "CitationLike":
			g, src = gen.CitationLike(opt.Seed)
		}
		ev := flow.NewFloat(flow.MustModel(g, []int{src}))
		between := centrality.TopK(g, d.k)
		gall := core.GreedyAll(ev, d.k)
		g1 := core.Greedy1(g, d.k)
		rep.AddRow(d.name, d.k,
			flow.FR(ev, flow.MaskOf(g.N(), between)),
			flow.FR(ev, flow.MaskOf(g.N(), gall)),
			flow.FR(ev, flow.MaskOf(g.N(), g1)))
		if d.name == "Figure1" {
			rep.Note("Figure 1: top-betweenness nodes are %s and %s (paper: x, y); the useful filter is %s",
				g.Label(between[0]), g.Label(centrality.TopK(g, 2)[1]), g.Label(gall[0]))
		}
	}
	return rep, nil
}

// graphT shortens the signatures below.
type graphT = graph.Digraph

// AblationLeakyFilters exercises the paper's footnote-1 generalization:
// filters that let a ρ fraction of duplicates through. FR is measured
// against the perfect-filter optimum, so curves for different leaks share
// a scale.
func AblationLeakyFilters(opt Options) (*Report, error) {
	g, src := gen.QuoteLike(opt.Seed)
	e := flow.NewFloat(flow.MustModel(g, []int{src}))
	rep := &Report{
		ID:      "abl-leaky",
		Title:   "Lossy filters: FR of Greedy_All when each filter leaks ρ of the duplicates",
		Dataset: fmt.Sprintf("QuoteLike: %d nodes, %d edges", g.N(), g.M()),
	}
	leaks := []float64{0, 0.1, 0.3, 0.5}
	rep.Header = []string{"k", "ρ=0", "ρ=0.1", "ρ=0.3", "ρ=0.5"}
	placements := make([][]int, len(leaks))
	for i, leak := range leaks {
		placements[i] = core.GreedyAllPartial(e, 10, leak)
	}
	for k := 0; k <= 10; k++ {
		row := []any{k}
		for i, leak := range leaks {
			pl := placements[i]
			if k < len(pl) {
				pl = pl[:k]
			}
			row = append(row, e.FRPartial(flow.MaskOf(g.N(), pl), leak))
		}
		rep.AddRow(row...)
	}
	rep.Note("a ρ-leaky placement can recover at most ≈(1−ρ) of the perfect reduction; the greedy adapts its picks to the leak")
	return rep, nil
}

// AblationMultiItem exercises the multi-item / multirate extension (paper
// §3 and §6): three items injected at different layers of the synthetic
// graph with rates 1, 2 and 4. A placement optimized for the aggregate
// objective beats one tuned to the heaviest item alone.
func AblationMultiItem(opt Options) (*Report, error) {
	perLevel := 60
	if opt.Quick {
		perLevel = 25
	}
	g, src := gen.Layered(8, perLevel, 1, 4, opt.Seed)
	// Items: the epoch feed from the super-source, plus two mid-graph
	// originators. An item injected deep into the layer structure reaches
	// exponentially fewer node-paths, so raw rates cannot make it matter;
	// instead rates are calibrated so the three streams carry epoch
	// traffic in proportion 1 : 2 : 1 — "multirate sources" in the sense
	// of §6. A placement tuned to the breaking stream alone then ignores
	// two thirds of the traffic.
	sources := []int{src, pickAtLevel(g, src, 3), pickAtLevel(g, src, 4)}
	shares := []float64{1, 2, 1}
	items := make([]flow.Item, len(sources))
	for i, s := range sources {
		probe, err := flow.NewMulti(g, []flow.Item{{Source: s}})
		if err != nil {
			return nil, err
		}
		mass := probe.Phi(nil)
		if mass <= 0 {
			mass = 1
		}
		items[i] = flow.Item{
			Name:   []string{"breaking", "analysis", "op-ed"}[i],
			Source: s,
			Rate:   shares[i] / mass,
		}
	}
	me, err := flow.NewMulti(g, items)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "abl-multi",
		Title:   "Multi-item, multirate sources: aggregate-aware vs single-item placement",
		Dataset: fmt.Sprintf("layered x=1/4: %d nodes, %d edges; 3 items, traffic shares 1:2:1", g.N(), g.M()),
	}
	// Single-item tuning: optimize only the heaviest item.
	heavy := flow.NewFloat(flow.MustModel(g, []int{src}))
	rep.Header = []string{"k", "multi-aware FR", "heavy-item-only FR"}
	multiPlan := core.GreedyAll(me, 12)
	heavyPlan := core.GreedyAll(heavy, 12)
	for _, k := range []int{0, 2, 4, 6, 8, 10, 12} {
		mp, hp := multiPlan, heavyPlan
		if k < len(mp) {
			mp = mp[:k]
		}
		if k < len(hp) {
			hp = hp[:k]
		}
		rep.AddRow(k,
			flow.FR(me, flow.MaskOf(g.N(), mp)),
			flow.FR(me, flow.MaskOf(g.N(), hp)))
	}
	rep.Note("both columns measure the aggregate (rate-weighted) FR; Greedy_All on the MultiEngine keeps its (1−1/e) guarantee because sums of submodular functions are submodular")
	return rep, nil
}

// pickAtLevel returns a deterministic node at the given BFS depth from the
// source with at least one out-edge, to act as a mid-graph originator.
func pickAtLevel(g *graphT, src, depth int) int {
	level, levels := g.BFSLevels(src)
	_ = level
	if depth >= len(levels) {
		depth = len(levels) - 1
	}
	for _, v := range levels[depth] {
		if g.OutDegree(v) > 0 {
			return v
		}
	}
	return levels[depth][0]
}
