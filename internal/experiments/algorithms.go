// Package experiments reproduces every figure of the paper's evaluation
// (§5): the in-degree CDFs (Figures 4 and 6), the Filter-Ratio-vs-k curves
// for the synthetic and real-like datasets (Figures 5, 7, 8, 9), the toy
// worked examples (Figures 1–3), the Figure-10 bottleneck motif, the
// running-time comparison (Figure 11), plus Proposition 1 and this
// reproduction's own ablations (CELF laziness, exact-vs-float engines,
// probabilistic propagation). Each experiment produces a Report whose rows
// are the same series the paper plots.
package experiments

import (
	"context"
	"math/rand"

	"repro/internal/core"
	"repro/internal/flow"
)

// Algorithm is a named filter-placement strategy in the paper's legend
// form.
type Algorithm struct {
	// Name as in the paper's figure legends (G_ALL, G_Max, G_1, G_L,
	// Rand_W, Rand_I, Rand_K).
	Name string
	// Place returns up to k filter nodes. rng is consulted only when
	// Randomized.
	Place func(ev flow.Evaluator, k int, rng *rand.Rand) []int
	// Randomized marks the baselines that must be averaged over runs.
	Randomized bool
	// Incremental marks algorithms whose length-i output prefix equals
	// their budget-i output, letting FR curves reuse one placement.
	Incremental bool
}

// place adapts core.Place to the Algorithm closure shape, discarding the
// error: the background context never cancels and every strategy name is
// valid by construction.
func place(ev flow.Evaluator, strat core.Strategy, k, parallelism int, rng *rand.Rand) []int {
	res, _ := core.Place(context.Background(), ev, k, core.Options{
		Strategy:    strat,
		Parallelism: parallelism,
		Rand:        rng,
	})
	return res.Filters
}

// StandardAlgorithms returns the paper's seven algorithms in legend order.
// The optional argument is the core.Place parallelism for the greedy
// strategies (results are identical at any setting; it only changes how
// many goroutines evaluate marginal gains).
func StandardAlgorithms(parallelism ...int) []Algorithm {
	par := 1
	if len(parallelism) > 0 {
		par = parallelism[0]
	}
	return []Algorithm{
		{
			Name: "G_ALL",
			Place: func(ev flow.Evaluator, k int, _ *rand.Rand) []int {
				return place(ev, core.StrategyGreedyAll, k, par, nil)
			},
			Incremental: true,
		},
		{
			Name: "G_Max",
			Place: func(ev flow.Evaluator, k int, _ *rand.Rand) []int {
				return place(ev, core.StrategyGreedyMax, k, par, nil)
			},
			Incremental: true,
		},
		{
			Name: "G_1",
			Place: func(ev flow.Evaluator, k int, _ *rand.Rand) []int {
				return place(ev, core.StrategyGreedy1, k, 1, nil)
			},
			Incremental: true,
		},
		{
			// greedy-l-fast implements the paper's "clever bookkeeping"
			// remark; output is identical to plain Greedy_L.
			Name: "G_L",
			Place: func(ev flow.Evaluator, k int, _ *rand.Rand) []int {
				return place(ev, core.StrategyGreedyLFast, k, 1, nil)
			},
			Incremental: true,
		},
		{
			Name: "Rand_W",
			Place: func(ev flow.Evaluator, k int, rng *rand.Rand) []int {
				return place(ev, core.StrategyRandW, k, 1, rng)
			},
			Randomized: true,
		},
		{
			Name: "Rand_I",
			Place: func(ev flow.Evaluator, k int, rng *rand.Rand) []int {
				return place(ev, core.StrategyRandI, k, 1, rng)
			},
			Randomized: true,
		},
		{
			Name: "Rand_K",
			Place: func(ev flow.Evaluator, k int, rng *rand.Rand) []int {
				return place(ev, core.StrategyRandK, k, 1, rng)
			},
			Randomized: true,
		},
	}
}

// GreedyAlgorithms returns only the four deterministic algorithms, the set
// the paper times in Figure 11.
func GreedyAlgorithms(parallelism ...int) []Algorithm {
	all := StandardAlgorithms(parallelism...)
	var out []Algorithm
	for _, a := range all {
		if !a.Randomized {
			out = append(out, a)
		}
	}
	return out
}
