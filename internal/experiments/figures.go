package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	registry["fig1"] = Fig1
	registry["fig2"] = Fig2
	registry["fig3"] = Fig3
	registry["fig4"] = Fig4
	registry["fig5a"] = Fig5a
	registry["fig5b"] = Fig5b
	registry["fig6"] = Fig6
	registry["fig7"] = Fig7
	registry["fig8"] = Fig8
	registry["fig9"] = Fig9
	registry["fig10"] = Fig10
	registry["fig11"] = Fig11
	registry["prop1"] = Prop1
	registry["abl-celf"] = AblationCELF
	registry["abl-engine"] = AblationEngines
	registry["abl-prob"] = AblationProbabilistic
}

// Fig1 reproduces the paper's Figure 1 walk-through: per-node copy counts
// in the toy news network, and the effect of the single Proposition-1
// filter z2.
func Fig1(opt Options) (*Report, error) {
	g, s := gen.Figure1()
	ev := flow.NewBig(flow.MustModel(g, []int{s}))
	rep := &Report{ID: "fig1", Title: "Information multiplicity in the toy news network", Dataset: "Figure 1 graph"}
	rep.Header = []string{"node", "copies (no filters)", "copies (filter at z2)"}
	fz2 := flow.MaskOf(g.N(), []int{gen.Fig1Z2})
	before := ev.Received(nil)
	after := ev.Received(fz2)
	for v := 0; v < g.N(); v++ {
		rep.AddRow(g.Label(v), before[v], after[v])
	}
	rep.Note("Φ(∅,V) = %.0f; Φ({z2},V) = %.0f; paper: w receives 1+2+1 = 4 copies", ev.Phi(nil), ev.Phi(fz2))
	rep.Note("Proposition-1 set = {z2}; FR({z2}) = %.2f", flow.FR(ev, fz2))
	return rep, nil
}

// Fig2 reproduces Figure 2: Greedy_1 prefers the high-fan-out node B whose
// filtering changes nothing, while the optimum filters A.
func Fig2(opt Options) (*Report, error) {
	g, s := gen.Figure2()
	ev := flow.NewBig(flow.MustModel(g, []int{s}))
	rep := &Report{ID: "fig2", Title: "Greedy_1 failure example (k = 1)", Dataset: "Figure 2 graph"}
	rep.Header = []string{"algorithm", "filter", "Φ after"}
	for _, algo := range []struct {
		name  string
		nodes []int
	}{
		{"G_1", core.Greedy1(g, 1)},
		{"G_Max", core.GreedyMax(ev, 1)},
		{"G_ALL", core.GreedyAll(ev, 1)},
	} {
		label := "-"
		if len(algo.nodes) > 0 {
			label = g.Label(algo.nodes[0])
		}
		rep.AddRow(algo.name, label, ev.Phi(flow.MaskOf(g.N(), algo.nodes)))
	}
	opt2, optF := core.Exhaustive(ev, 1)
	rep.AddRow("OPT", g.Label(opt2[0]), ev.Phi(nil)-optF)
	rep.Note("Φ(∅,V) = %.0f; paper: 14 with B, 12 with A", ev.Phi(nil))
	return rep, nil
}

// Fig3 reproduces Figure 3: Greedy_All picks {A, C} (Φ = 15) while the
// optimum is {B, C} (Φ = 14).
func Fig3(opt Options) (*Report, error) {
	g, srcs := gen.Figure3()
	ev := flow.NewBig(flow.MustModel(g, srcs))
	rep := &Report{ID: "fig3", Title: "Greedy_All suboptimality example (k = 2)", Dataset: "Figure 3 graph"}
	rep.Header = []string{"node", "I(v)", "I(v | {A})"}
	imp0 := ev.Impacts(nil)
	impA := ev.Impacts(flow.MaskOf(g.N(), []int{gen.Fig3A}))
	for _, v := range []int{gen.Fig3A, gen.Fig3B, gen.Fig3C} {
		rep.AddRow(g.Label(v), imp0[v], impA[v])
	}
	greedy := core.GreedyAll(ev, 2)
	optSet, optF := core.Exhaustive(ev, 2)
	rep.Note("Φ(∅,V) = %.0f (paper: 26)", ev.Phi(nil))
	rep.Note("Greedy_All picks %s: Φ = %.0f (paper: {A,C} → 15)", labelSet(g, greedy), ev.Phi(flow.MaskOf(g.N(), greedy)))
	rep.Note("Optimal set %s: Φ = %.0f (paper: {B,C} → 14)", labelSet(g, optSet), ev.Phi(nil)-optF)
	return rep, nil
}

// Fig4 reproduces Figure 4: in-degree CDFs of the two layered synthetic
// graphs, (x, y) = (1, 4) and (3, 4).
func Fig4(opt Options) (*Report, error) {
	perLevel := 100
	if opt.Quick {
		perLevel = 30
	}
	rep := &Report{ID: "fig4", Title: "CDF of in-degrees for synthetic graphs"}
	rep.Header = []string{"quantile", "indegree (x=1/4)", "indegree (x=3/4)"}
	var cdfs []*stats.CDF
	for _, x := range []float64{1, 3} {
		g, _ := gen.Layered(10, perLevel, x, 4, opt.Seed)
		cdfs = append(cdfs, stats.NewCDF(g.InDegrees()))
		rep.Note("x=%g/4: %d nodes, %d edges (paper: %s)", x, g.N(), g.M(),
			map[float64]string{1: "1026 nodes, 32427 edges", 3: "1069 nodes, 101226 edges"}[x])
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		rep.AddRow(fmt.Sprintf("P≤%.2f", q), cdfs[0].Quantile(q), cdfs[1].Quantile(q))
	}
	// The paper omits the out-degree CDFs as "quite similar"; report the
	// medians so the similarity is checkable.
	gOut, _ := gen.Layered(10, perLevel, 1, 4, opt.Seed)
	outCDF := stats.NewCDF(gOut.OutDegrees())
	rep.Note("x=1/4 out-degree median %d vs in-degree median %d (paper: out-degree CDFs \"quite similar\")",
		outCDF.Quantile(0.5), cdfs[0].Quantile(0.5))
	return rep, nil
}

func layeredFR(id, title string, x float64, opt Options) (*Report, error) {
	perLevel, maxK, step := 100, 50, 2
	if opt.Quick {
		perLevel, maxK, step = 30, 12, 3
	}
	g, src := gen.Layered(10, perLevel, x, 4, opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, fmt.Sprintf("layered x=%g/4", x), Ks(maxK, step), StandardAlgorithms(opt.Parallelism), opt.Reps, opt.Seed)
	return reportFromFR(id, title, res), nil
}

// Fig5a reproduces Figure 5(a): FR vs number of filters on the sparse
// layered synthetic graph (x = 1/4).
func Fig5a(opt Options) (*Report, error) {
	return layeredFR("fig5a", "FR for synthetic graph, x=1/4", 1, opt)
}

// Fig5b reproduces Figure 5(b): the same on the dense layered graph
// (x = 3/4).
func Fig5b(opt Options) (*Report, error) {
	return layeredFR("fig5b", "FR for synthetic graph, x=3/4", 3, opt)
}

// Fig6 reproduces Figure 6: in-degree CDF of G_Phrase (the Quote "lipstick
// on a pig" subgraph, simulated by gen.QuoteLike).
func Fig6(opt Options) (*Report, error) {
	g, _ := gen.QuoteLike(opt.Seed)
	cdf := stats.NewCDF(g.InDegrees())
	rep := &Report{
		ID: "fig6", Title: "CDF of node indegree for G_Phrase",
		Dataset: fmt.Sprintf("QuoteLike: %d nodes, %d edges (paper: 932 nodes, 2703 edges)", g.N(), g.M()),
	}
	rep.Header = []string{"indegree x", "P(indegree ≤ x)"}
	for _, x := range []int{0, 1, 2, 3, 5, 10, 20, 50, cdf.Max()} {
		rep.AddRow(x, cdf.P(x))
	}
	sinks := len(g.Sinks())
	rep.Note("sinks: %d (%.0f%%; paper: ≈70%%)", sinks, 100*float64(sinks)/float64(g.N()))
	rep.Note("indegree-1 nodes: %.0f%% (paper: ≈50%%)", 100*float64(g.InDegreeStats().One)/float64(g.N()))
	return rep, nil
}

// Fig7 reproduces Figure 7: FR vs number of filters on G_Phrase; the
// paper's headline is that four filters achieve perfect filtering.
func Fig7(opt Options) (*Report, error) {
	g, src := gen.QuoteLike(opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "QuoteLike (G_Phrase)", Ks(10, 1), StandardAlgorithms(opt.Parallelism), opt.Reps, opt.Seed)
	rep := reportFromFR("fig7", "FR for G_Phrase on the Quote dataset", res)
	if p, ok := res.At("G_ALL", 4); ok {
		rep.Note("G_ALL at k=4: FR = %.4f (paper: perfect filtering with four filters)", p.FR)
	}
	return rep, nil
}

// Fig8 reproduces Figure 8: FR vs number of filters on the Twitter graph;
// Greedy_All removes all redundancy with six filters, every deterministic
// heuristic with at most ten.
func Fig8(opt Options) (*Report, error) {
	scale := 1.0
	if opt.Quick {
		scale = 0.02
	}
	g, root := gen.TwitterLike(scale, opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{root}))
	res := FRCurves(ev, "TwitterLike", Ks(10, 1), StandardAlgorithms(opt.Parallelism), opt.Reps, opt.Seed)
	rep := reportFromFR("fig8", "FR for the Twitter graph", res)
	if p, ok := res.At("G_ALL", 6); ok {
		rep.Note("G_ALL at k=6: FR = %.4f (paper: all redundancy removed with six filters)", p.FR)
	}
	return rep, nil
}

// Fig9 reproduces Figure 9: FR vs number of filters on G_Citation, where
// Greedy_All clearly beats the heuristics and Greedy_Max shows a long flat
// stretch caused by the Figure-10 bottleneck chain.
func Fig9(opt Options) (*Report, error) {
	g, src := gen.CitationLike(opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "CitationLike (G_Citation)", Ks(10, 1), StandardAlgorithms(opt.Parallelism), opt.Reps, opt.Seed)
	rep := reportFromFR("fig9", "FR for G_Citation in the APS dataset", res)
	if a, ok := res.Final("G_ALL"); ok {
		if m, ok2 := res.Final("G_Max"); ok2 {
			rep.Note("k=10: G_ALL FR = %.4f vs G_Max FR = %.4f (paper: G_ALL performs best)", a.FR, m.FR)
		}
	}
	return rep, nil
}

// Fig10 isolates the Figure-10 motif: the nine-node in-degree-one chain
// whose members all look high-impact to Greedy_Max even though one filter
// deactivates the rest.
func Fig10(opt Options) (*Report, error) {
	width, depth := 40, 10
	if opt.Quick {
		width, depth = 10, 6
	}
	g, src := gen.BottleneckChain(width, 9, depth, opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	gateway, chain := gen.ChainNodes(width, 9)
	imp := ev.Impacts(nil)
	rep := &Report{
		ID: "fig10", Title: "Bottleneck-chain motif of the APS graph",
		Dataset: fmt.Sprintf("BottleneckChain(width=%d, chain=9, depth=%d): %d nodes, %d edges", width, depth, g.N(), g.M()),
	}
	rep.Header = []string{"node", "unfiltered impact", "impact after filtering gateway"}
	impG := ev.Impacts(flow.MaskOf(g.N(), []int{gateway}))
	rep.AddRow("gateway", imp[gateway], impG[gateway])
	for i, c := range chain {
		rep.AddRow(fmt.Sprintf("chain[%d]", i), imp[c], impG[c])
	}
	res := FRCurves(ev, "motif", Ks(10, 1), GreedyAlgorithms(opt.Parallelism), opt.Reps, opt.Seed)
	if a, _ := res.At("G_ALL", 1); true {
		if m, _ := res.At("G_Max", 10); true {
			rep.Note("G_ALL reaches FR = %.4f at k=1; G_Max after 10 picks: FR = %.4f (flat plateau: its top-10 are the chain)", a.FR, m.FR)
		}
	}
	return rep, nil
}

// Fig11 reproduces Figure 11: wall-clock running time of the four
// deterministic algorithms placing k = 10 filters on the Twitter graph.
// Absolute numbers are hardware- and implementation-specific (the paper
// timed Python on a 4GHz Opteron); the reproduction target is the ordering
// G_1 ≪ G_Max ≈ G_L ≪ G_ALL.
func Fig11(opt Options) (*Report, error) {
	scale := 1.0
	if opt.Quick {
		scale = 0.02
	}
	g, root := gen.TwitterLike(scale, opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{root}))
	rep := &Report{
		ID: "fig11", Title: "Execution times for the placement of ten filters (Twitter)",
		Dataset: fmt.Sprintf("TwitterLike(scale=%g): %d nodes, %d edges", scale, g.N(), g.M()),
	}
	rep.Header = []string{"algorithm", "seconds", "FR at k=10"}
	for _, algo := range GreedyAlgorithms(opt.Parallelism) {
		start := time.Now()
		nodes := algo.Place(ev, 10, nil)
		secs := time.Since(start).Seconds()
		rep.AddRow(algo.Name, fmt.Sprintf("%.4f", secs), flow.FR(ev, flow.MaskOf(g.N(), nodes)))
	}
	rep.Note("paper (Python, k=10, 90K-node Twitter): G_1 <1 min, G_Max ≈ G_L ≈ 60 min, G_ALL 83 min")
	return rep, nil
}

// Prop1 exercises Proposition 1 on the three real-like datasets: the
// minimal unbounded filter set is found in O(|E|) and achieves FR = 1.
func Prop1(opt Options) (*Report, error) {
	scale := 1.0
	if opt.Quick {
		scale = 0.02
	}
	rep := &Report{ID: "prop1", Title: "Proposition 1: minimal unbounded-budget optimal filter sets"}
	rep.Header = []string{"dataset", "nodes", "edges", "|A|", "FR(A)", "seconds"}
	for _, d := range []struct {
		name string
		g    *graph.Digraph
		src  int
	}{
		{name: "QuoteLike"}, {name: "TwitterLike"}, {name: "CitationLike"},
	} {
		switch d.name {
		case "QuoteLike":
			d.g, d.src = gen.QuoteLike(opt.Seed)
		case "TwitterLike":
			d.g, d.src = gen.TwitterLike(scale, opt.Seed)
		case "CitationLike":
			d.g, d.src = gen.CitationLike(opt.Seed)
		}
		start := time.Now()
		a := core.UnboundedOptimal(d.g)
		secs := time.Since(start).Seconds()
		ev := flow.NewFloat(flow.MustModel(d.g, []int{d.src}))
		rep.AddRow(d.name, d.g.N(), d.g.M(), len(a), flow.FR(ev, flow.MaskOf(d.g.N(), a)), fmt.Sprintf("%.5f", secs))
	}
	return rep, nil
}

// AblationCELF compares the three Greedy_All implementations: closed-form
// batch gains (this reproduction's default), the paper's
// recompute-everything profile, and CELF lazy evaluation.
func AblationCELF(opt Options) (*Report, error) {
	g, src := gen.QuoteLike(opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	k := 10
	rep := &Report{
		ID: "abl-celf", Title: "Greedy_All implementations: gain evaluations and time (k = 10)",
		Dataset: fmt.Sprintf("QuoteLike: %d nodes, %d edges", g.N(), g.M()),
	}
	rep.Header = []string{"variant", "gain evals", "seconds", "same filter set"}

	ctx := context.Background()
	start := time.Now()
	ref, _ := core.Place(ctx, ev, k, core.Options{Strategy: core.StrategyGreedyAll, Parallelism: opt.Parallelism})
	closedSecs := time.Since(start).Seconds()
	rep.AddRow("closed-form (ours)", "n per round (batched)", fmt.Sprintf("%.4f", closedSecs), true)

	start = time.Now()
	naive, _ := core.Place(ctx, ev, k, core.Options{Strategy: core.StrategyNaive, Parallelism: opt.Parallelism})
	rep.AddRow("naive (paper's profile)", naive.Stats.GainEvaluations, fmt.Sprintf("%.4f", time.Since(start).Seconds()), equalInts(ref.Filters, naive.Filters))

	start = time.Now()
	celf, _ := core.Place(ctx, ev, k, core.Options{Strategy: core.StrategyCELF, Parallelism: opt.Parallelism})
	rep.AddRow("CELF (lazy)", celf.Stats.GainEvaluations, fmt.Sprintf("%.4f", time.Since(start).Seconds()), equalInts(ref.Filters, celf.Filters))

	if naive.Stats.GainEvaluations > 0 {
		rep.Note("CELF evaluated %.1f%% of the naive variant's gains", 100*float64(celf.Stats.GainEvaluations)/float64(naive.Stats.GainEvaluations))
	}
	return rep, nil
}

// AblationEngines compares the exact big-integer engine against the
// float64 engine on the layered synthetic graph, where path counts overflow
// int64 but stay far below float64's range.
func AblationEngines(opt Options) (*Report, error) {
	perLevel := 100
	if opt.Quick {
		perLevel = 30
	}
	g, src := gen.Layered(10, perLevel, 1, 4, opt.Seed)
	m := flow.MustModel(g, []int{src})
	rep := &Report{
		ID: "abl-engine", Title: "Arithmetic engines: exact big.Int vs float64",
		Dataset: fmt.Sprintf("layered x=1/4: %d nodes, %d edges", g.N(), g.M()),
	}
	rep.Header = []string{"engine", "build+3 greedy rounds (s)", "Φ(∅,V)", "G_ALL(3) set"}
	for _, e := range []struct {
		name string
		mk   func() flow.Evaluator
	}{
		{"float64", func() flow.Evaluator { return flow.NewFloat(m) }},
		{"big.Int", func() flow.Evaluator { return flow.NewBig(m) }},
	} {
		start := time.Now()
		ev := e.mk()
		set := core.GreedyAll(ev, 3)
		secs := time.Since(start).Seconds()
		rep.AddRow(e.name, fmt.Sprintf("%.4f", secs), fmt.Sprintf("%.6g", ev.Phi(nil)), fmt.Sprintf("%v", set))
	}
	rep.Note("both engines must select identical filter sets; float64 is the experiment default")
	return rep, nil
}

// AblationProbabilistic runs the probabilistic-propagation extension the
// paper sketches in §3: relay probabilities shrink expected copy counts but
// leave the FR machinery unchanged.
func AblationProbabilistic(opt Options) (*Report, error) {
	g, src := gen.QuoteLike(opt.Seed)
	rep := &Report{
		ID: "abl-prob", Title: "Probabilistic propagation: FR of G_ALL under relay probability p",
		Dataset: fmt.Sprintf("QuoteLike: %d nodes, %d edges", g.N(), g.M()),
	}
	rep.Header = []string{"k", "p=1.0", "p=0.9", "p=0.7"}
	evs := make([]flow.Evaluator, 0, 3)
	for _, p := range []float64{1.0, 0.9, 0.7} {
		m := flow.MustModel(g, []int{src})
		if p < 1 {
			pp := p
			m = m.WithWeights(func(u, v int) float64 { return pp })
		}
		evs = append(evs, flow.NewFloat(m))
	}
	placements := make([][]int, len(evs))
	for i, ev := range evs {
		placements[i] = core.GreedyAll(ev, 10)
	}
	for k := 0; k <= 10; k++ {
		row := []any{k}
		for i, ev := range evs {
			pl := placements[i]
			if k < len(pl) {
				pl = pl[:k]
			}
			row = append(row, flow.FR(ev, flow.MaskOf(g.N(), pl)))
		}
		rep.AddRow(row...)
	}
	rep.Note("expected-copy semantics: a filter emits min(1, E[copies]); lower p shifts redundancy (and filter value) toward the hubs")
	return rep, nil
}

func labelSet(g *graph.Digraph, nodes []int) string {
	s := "{"
	for i, v := range nodes {
		if i > 0 {
			s += ","
		}
		s += g.Label(v)
	}
	return s + "}"
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
