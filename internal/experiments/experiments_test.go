package experiments

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/gen"
)

func quickOpt() Options {
	return Options{Seed: 1, Quick: true, Reps: 5}.withDefaults()
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("no-such-experiment", quickOpt()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"abl-acyclic", "abl-between", "abl-celf", "abl-dom", "abl-engine",
		"abl-leaky", "abl-mc", "abl-multi", "abl-prob", "abl-tree",
		"fig1", "fig10", "fig11", "fig2", "fig3", "fig4", "fig5a", "fig5b",
		"fig6", "fig7", "fig8", "fig9", "prop1",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	// Smoke: every registered experiment runs in quick mode and renders.
	for _, id := range IDs() {
		rep, err := Run(id, quickOpt())
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		out := rep.String()
		if !strings.Contains(out, rep.Title) {
			t.Errorf("%s: render missing title", id)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		if csv := rep.CSV(); !strings.Contains(csv, rep.Header[0]) {
			t.Errorf("%s: CSV missing header", id)
		}
	}
}

func TestFig1Numbers(t *testing.T) {
	rep, err := Run("fig1", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// w's row: 4 copies without filters, 3 with the z2 filter.
	found := false
	for _, row := range rep.Rows {
		if row[0] == "w" {
			found = true
			if row[1] != "4" || row[2] != "3" {
				t.Errorf("w row = %v, want copies 4 → 3", row)
			}
		}
	}
	if !found {
		t.Error("row for w missing")
	}
}

func TestFig7QuotePerfectFilteringAtFour(t *testing.T) {
	// The paper's headline for G_Phrase: four filters achieve perfect
	// redundancy elimination, with the greedy family ahead of the random
	// baselines.
	g, src := gen.QuoteLike(1)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "quote", Ks(10, 1), StandardAlgorithms(), 5, 1)
	if p, ok := res.At("G_ALL", 4); !ok || p.FR < 0.9999 {
		t.Errorf("G_ALL at k=4: FR = %v, want 1", p.FR)
	}
	if p, ok := res.At("G_Max", 4); !ok || p.FR < 0.9999 {
		t.Errorf("G_Max at k=4: FR = %v, want 1", p.FR)
	}
	// Random baselines are nowhere near perfect at k = 4.
	for _, name := range []string{"Rand_K", "Rand_I"} {
		if p, ok := res.At(name, 4); !ok || p.FR > 0.6 {
			t.Errorf("%s at k=4: FR = %v, want well below the greedy family", name, p.FR)
		}
	}
	// Monotone non-decreasing curves for incremental algorithms.
	for _, s := range res.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].FR < s.Points[i-1].FR-1e-9 && !algoRandomized(s.Algorithm) {
				t.Errorf("%s: FR decreased at k=%d", s.Algorithm, s.Points[i].K)
			}
		}
	}
}

func algoRandomized(name string) bool { return strings.HasPrefix(name, "Rand") }

func TestFig8TwitterPerfectFilteringAtSix(t *testing.T) {
	g, root := gen.TwitterLike(0.02, 1)
	ev := flow.NewFloat(flow.MustModel(g, []int{root}))
	res := FRCurves(ev, "twitter", Ks(10, 1), StandardAlgorithms(), 5, 1)
	if p, ok := res.At("G_ALL", 6); !ok || p.FR < 0.9999 {
		t.Errorf("G_ALL at k=6: FR = %v, want 1 (six amplifiers)", p.FR)
	}
	if p, ok := res.At("G_Max", 10); !ok || p.FR < 0.9999 {
		t.Errorf("G_Max at k=10: FR = %v, want 1", p.FR)
	}
	if p, ok := res.At("G_1", 10); !ok || p.FR < 0.9999 {
		t.Errorf("G_1 at k=10: FR = %v, want 1", p.FR)
	}
	// G_L converges more slowly (the paper's observation) but still gets
	// most of the way by k = 10.
	if p, ok := res.At("G_L", 10); !ok || p.FR < 0.8 {
		t.Errorf("G_L at k=10: FR = %v, want ≥ 0.8", p.FR)
	}
}

func TestFig9CitationShape(t *testing.T) {
	g, src := gen.CitationLike(1)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "citation", Ks(10, 1), GreedyAlgorithms(), 1, 1)
	// G_ALL dominates G_Max at every k.
	for k := 0; k <= 10; k++ {
		a, _ := res.At("G_ALL", k)
		m, _ := res.At("G_Max", k)
		if a.FR < m.FR-1e-9 {
			t.Errorf("k=%d: G_ALL %v < G_Max %v", k, a.FR, m.FR)
		}
	}
	// The bottleneck chain makes G_Max flat: from k=2 to k=10 it gains
	// almost nothing, while G_ALL keeps improving.
	m2, _ := res.At("G_Max", 2)
	m10, _ := res.At("G_Max", 10)
	a2, _ := res.At("G_ALL", 2)
	a10, _ := res.At("G_ALL", 10)
	if gainMax, gainAll := m10.FR-m2.FR, a10.FR-a2.FR; gainMax > gainAll {
		t.Errorf("G_Max plateau missing: ΔG_Max = %v vs ΔG_ALL = %v", gainMax, gainAll)
	}
	if a10.FR < 0.9 {
		t.Errorf("G_ALL final FR = %v, want ≥ 0.9", a10.FR)
	}
}

func TestFig5SyntheticGradual(t *testing.T) {
	// Dense layered graphs: gradual FR growth, no algorithm close to
	// perfect with few filters (the paper's contrast with real data).
	g, src := gen.Layered(10, 30, 1, 4, 1)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "layered", Ks(12, 3), GreedyAlgorithms(), 1, 1)
	p4, _ := res.At("G_ALL", 3)
	if p4.FR > 0.5 {
		t.Errorf("G_ALL at k=3 on dense synthetic: FR = %v, want ≤ 0.5 (gradual curve)", p4.FR)
	}
	// But more filters keep helping.
	p12, _ := res.At("G_ALL", 12)
	if p12.FR <= p4.FR {
		t.Errorf("no gradual improvement: %v → %v", p4.FR, p12.FR)
	}
}

func TestFig10MotifPlateau(t *testing.T) {
	g, src := gen.BottleneckChain(10, 9, 6, 1)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	gateway, chain := gen.ChainNodes(10, 9)
	imp := ev.Impacts(nil)
	// Every chain node's unfiltered impact is large...
	for _, c := range chain {
		if imp[c] <= 0 {
			t.Errorf("chain node %d impact = %v, want > 0", c, imp[c])
		}
	}
	// ...but collapses once the gateway is filtered.
	impG := ev.Impacts(flow.MaskOf(g.N(), []int{gateway}))
	for _, c := range chain {
		if impG[c] != 0 {
			t.Errorf("chain node %d impact after gateway = %v, want 0", c, impG[c])
		}
	}
	// G_Max's first ten picks are the gateway and chain, so its FR equals
	// its k=1 FR for all k ≤ 10; G_ALL reaches FR = 1 at k = 1.
	res := FRCurves(ev, "motif", Ks(10, 1), GreedyAlgorithms(), 1, 1)
	a1, _ := res.At("G_ALL", 1)
	if a1.FR < 0.9999 {
		t.Errorf("G_ALL at k=1: FR = %v, want 1 (gateway is the whole Prop-1 set)", a1.FR)
	}
	m1, _ := res.At("G_Max", 1)
	m9, _ := res.At("G_Max", 9)
	if m9.FR > m1.FR+1e-9 {
		t.Errorf("G_Max plateau broken: FR(1) = %v, FR(9) = %v", m1.FR, m9.FR)
	}
}

func TestKsHelper(t *testing.T) {
	got := Ks(10, 3)
	want := []int{0, 3, 6, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("Ks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ks[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if ks := Ks(5, 0); len(ks) != 6 {
		t.Errorf("Ks(5,0) = %v (step clamped to 1)", ks)
	}
}

func TestFRCurvesRandomizedAveraging(t *testing.T) {
	g, src := gen.QuoteLike(2)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	res := FRCurves(ev, "quote", []int{5}, StandardAlgorithms()[4:], 25, 3)
	for _, s := range res.Series {
		p := s.Points[0]
		if p.FR < 0 || p.FR > 1 {
			t.Errorf("%s: FR = %v outside [0,1]", s.Algorithm, p.FR)
		}
		// With 25 repetitions randomized baselines have nonzero spread on
		// this graph.
		if p.StdDev == 0 {
			t.Errorf("%s: zero stddev over 25 runs is implausible", s.Algorithm)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "x", Title: "T", Header: []string{"a", "b"}}
	rep.AddRow(1, 0.5)
	rep.AddRow("long-cell-value", 2.25)
	rep.Note("hello %d", 7)
	out := rep.String()
	for _, want := range []string{"== x: T ==", "a", "0.5000", "long-cell-value", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "a,b") || !strings.Contains(csv, "1,0.5000") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestReportCSVQuoting(t *testing.T) {
	rep := &Report{Header: []string{"h"}, Rows: [][]string{{`va"l,ue`}}}
	csv := rep.CSV()
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("quoting wrong: %s", csv)
	}
}
