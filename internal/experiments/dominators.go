package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

func init() {
	registry["abl-dom"] = AblationDominators
}

// AblationDominators connects filter placement to dominator analysis. The
// paper's Figure 10 observes that "all paths from the upper to the lower
// half of the graph traverse through these nodes" — in graph-theoretic
// terms, the gateway and chain *dominate* the entire lower half. This
// experiment computes each node's dominated-node count on the citation
// graph and shows that (a) Greedy_All's first pick is the maximum-coverage
// dominator, and (b) a placement at the top-k dominator choke points is a
// decent but strictly weaker heuristic than impact-aware greedy, because
// dominance ignores *how many* redundant copies flow through a node.
func AblationDominators(opt Options) (*Report, error) {
	g, src := gen.CitationLike(opt.Seed)
	ev := flow.NewFloat(flow.MustModel(g, []int{src}))
	idom := g.Dominators(src)
	counts := graph.DominatedCount(idom)

	rep := &Report{
		ID:      "abl-dom",
		Title:   "Dominator choke points vs impact-aware placement (Figure-10 structure)",
		Dataset: fmt.Sprintf("CitationLike: %d nodes, %d edges", g.N(), g.M()),
	}

	// Rank non-root nodes by dominated count.
	type domNode struct {
		v, count int
	}
	var ranked []domNode
	for v := 0; v < g.N(); v++ {
		if v != src && idom[v] >= 0 && g.OutDegree(v) > 0 {
			ranked = append(ranked, domNode{v, counts[v]})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].v < ranked[j].v
	})

	rep.Header = []string{"rank", "node", "dominated nodes", "unfiltered impact"}
	imp := ev.Impacts(nil)
	topDom := make([]int, 0, 10)
	for i := 0; i < 10 && i < len(ranked); i++ {
		rep.AddRow(i+1, ranked[i].v, ranked[i].count, imp[ranked[i].v])
		topDom = append(topDom, ranked[i].v)
	}

	gall := core.GreedyAll(ev, 10)
	frDom := flow.FR(ev, flow.MaskOf(g.N(), topDom))
	frAll := flow.FR(ev, flow.MaskOf(g.N(), gall))
	rep.Note("Greedy_All's first pick: node %d; top dominator: node %d", gall[0], ranked[0].v)
	rep.Note("FR of top-10 dominators: %.4f vs Greedy_All: %.4f", frDom, frAll)
	rep.Note("the top dominators are the gateway/chain — mutually redundant, like Greedy_Max's picks")
	return rep, nil
}
