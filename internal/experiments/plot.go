package experiments

import (
	"fmt"
	"strings"
)

// PlotFR renders an FR figure as ASCII art, one plot symbol per series,
// approximating the paper's figure style for terminal use. Height counts
// interior rows; the x axis spans the ks present in the result.
func PlotFR(res *FRResult, width, height int) string {
	if len(res.Series) == 0 || len(res.Series[0].Points) == 0 {
		return "(empty figure)\n"
	}
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	symbols := []byte{'A', 'M', '1', 'L', 'W', 'I', 'K', '*', '+', 'o'}
	maxK := 0
	for _, p := range res.Series[0].Points {
		if p.K > maxK {
			maxK = p.K
		}
	}
	if maxK == 0 {
		maxK = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(k int) int { return k * (width - 1) / maxK }
	row := func(fr float64) int {
		r := int((1 - fr) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range res.Series {
		sym := symbols[si%len(symbols)]
		for _, p := range s.Points {
			c, r := col(p.K), row(p.FR)
			if grid[r][c] == ' ' {
				grid[r][c] = sym
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%d nodes, %d edges)\n", res.Dataset, res.Nodes, res.Edges)
	for r, line := range grid {
		label := "     "
		switch r {
		case 0:
			label = "FR 1 "
		case height - 1:
			label = "   0 "
		case (height - 1) / 2:
			label = " 0.5 "
		}
		fmt.Fprintf(&sb, "%s|%s\n", label, strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(&sb, "     +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "      k=0%sk=%d\n", strings.Repeat(" ", max(1, width-6-len(fmt.Sprint(maxK)))), maxK)
	var legend []string
	for si, s := range res.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", symbols[si%len(symbols)], s.Algorithm))
	}
	fmt.Fprintf(&sb, "      %s\n", strings.Join(legend, " "))
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
