package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden experiment reports")

// goldenIDs are the experiments whose quick-mode reports are fully
// deterministic (no wall-clock columns), so their rendered output can be
// pinned. This catches silent regressions in the generators, the engines
// and the algorithms all at once.
var goldenIDs = []string{"fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "abl-leaky"}

func TestGoldenReports(t *testing.T) {
	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, Options{Seed: 1, Quick: true, Reps: 5})
			if err != nil {
				t.Fatal(err)
			}
			got := rep.String()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run: go test ./internal/experiments -run TestGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from golden file %s.\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}
