package graph

// Dominator trees. In a rooted digraph, node d dominates node v when every
// path from the root to v passes through d — exactly the "all paths from
// the upper to the lower half traverse through these nodes" structure the
// paper's Figure 10 identifies in the APS citation graph. The immediate
// dominator idom(v) is the unique closest strict dominator; idom edges form
// a tree rooted at the root.
//
// The implementation is the Cooper–Harvey–Kennedy iterative algorithm
// ("A Simple, Fast Dominance Algorithm"): data-flow iteration over the
// reverse postorder, intersecting dominator-tree paths. On reducible and
// irreducible graphs alike it converges to the unique maximal fixed point;
// for the DAGs used in this library it typically converges in two passes.

// Dominators computes idom[v] for every node reachable from root, with
// idom[root] = root and idom[v] = -1 for unreachable nodes.
func (g *Digraph) Dominators(root int) []int {
	n := g.n
	// Reverse postorder of the reachable subgraph.
	post := make([]int, 0, n)
	state := make([]int8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{v: root}}
	state[root] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		adj := g.Out(f.v)
		advanced := false
		for f.next < len(adj) {
			w := adj[f.next]
			f.next++
			if state[w] == 0 {
				state[w] = 1
				stack = append(stack, frame{v: w})
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		state[f.v] = 2
		post = append(post, f.v)
		stack = stack[:len(stack)-1]
	}
	// rpo[v] = position in reverse postorder (root first).
	rpo := make([]int, n)
	for i := range rpo {
		rpo[i] = -1
	}
	order := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo[post[i]] = len(order)
		order = append(order, post[i])
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, v := range order {
			if v == root {
				continue
			}
			newIdom := -1
			for _, p := range g.In(v) {
				if rpo[p] < 0 || idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether d dominates v given an idom table from
// Dominators (every node dominates itself; the root dominates every
// reachable node).
func Dominates(idom []int, d, v int) bool {
	if idom[v] < 0 {
		return false
	}
	for {
		if v == d {
			return true
		}
		if idom[v] == v {
			return false // reached the root
		}
		v = idom[v]
	}
}

// DominatedCount returns, for every node v, the number of nodes it
// dominates (including itself; 0 for unreachable nodes) — a choke-point
// score: the citation gateway of the paper's Figure 10 dominates the whole
// lower half.
func DominatedCount(idom []int) []int {
	n := len(idom)
	count := make([]int, n)
	// Accumulate bottom-up: children of the dominator tree processed
	// before parents. Repeated parent-chasing is O(n·depth); dominator
	// trees here are shallow, and correctness is easier to see than with
	// an explicit topological pass.
	for v := 0; v < n; v++ {
		if idom[v] < 0 {
			continue
		}
		for u := v; ; u = idom[u] {
			count[u]++
			if idom[u] == u {
				break
			}
		}
	}
	return count
}
