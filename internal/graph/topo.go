package graph

import "errors"

// ErrCyclic is returned by DAG-only operations when the graph contains a
// directed cycle.
var ErrCyclic = errors.New("graph: directed cycle present")

// TopoOrder returns a topological order of all nodes (Kahn's algorithm,
// smallest-id-first among ready nodes so the order is deterministic). It
// returns ErrCyclic when the graph has a directed cycle.
func (g *Digraph) TopoOrder() ([]int, error) {
	indeg := g.InDegrees()
	// Min-ordered ready "queue": a simple bucket of ready nodes scanned in
	// insertion order would suffice for correctness, but deterministic
	// output across builds makes tests and experiments reproducible, so we
	// keep the ready set as a binary heap keyed by node id.
	h := &intHeap{}
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			h.push(v)
		}
	}
	order := make([]int, 0, g.n)
	for h.len() > 0 {
		v := h.pop()
		order = append(order, v)
		for _, w := range g.Out(v) {
			indeg[w]--
			if indeg[w] == 0 {
				h.push(w)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCyclic
	}
	return order, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Digraph) IsDAG() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// TopoRank returns rank[v] = position of v in a deterministic topological
// order, or ErrCyclic for cyclic graphs.
func (g *Digraph) TopoRank() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]int, g.n)
	for i, v := range order {
		rank[v] = i
	}
	return rank, nil
}

// intHeap is a minimal binary min-heap of ints. It avoids container/heap's
// interface indirection on this hot path.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
