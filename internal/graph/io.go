package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list text format.
//
// One edge per line, "u v", whitespace separated. Lines starting with '#'
// are comments; blank lines are skipped. Node tokens may be arbitrary
// strings: purely numeric token sets are mapped to their numeric ids when
// every token is a valid non-negative integer (so files written by
// WriteEdgeList round-trip exactly); otherwise tokens are interned in first-
// appearance order and kept as labels.

// ReadEdgeList parses the edge-list format described in the package
// documentation from r.
func ReadEdgeList(r io.Reader) (*Digraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	type rawEdge struct{ u, v string }
	var raw []rawEdge
	numeric := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		raw = append(raw, rawEdge{fields[0], fields[1]})
		if numeric {
			for _, f := range fields {
				if !isUint(f) {
					numeric = false
					break
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}

	b := NewBuilder(0)
	if numeric {
		for _, e := range raw {
			u, uerr := strconv.Atoi(e.u)
			v, verr := strconv.Atoi(e.v)
			if uerr != nil || verr != nil {
				// isUint accepted the digits, so only range overflow
				// lands here; silently wrapping would corrupt the ids.
				return nil, fmt.Errorf("graph: node id out of range in edge %q %q", e.u, e.v)
			}
			b.AddEdge(u, v)
		}
		return b.Build()
	}
	intern := make(map[string]int)
	var labels []string
	id := func(tok string) int {
		if i, ok := intern[tok]; ok {
			return i
		}
		i := len(labels)
		intern[tok] = i
		labels = append(labels, tok)
		return i
	}
	for _, e := range raw {
		b.AddEdge(id(e.u), id(e.v))
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.labels = labels
	return g, nil
}

func isUint(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ReadWeightedEdgeList parses a three-column variant of the edge-list
// format: "u v p" per line, where p ∈ [0, 1] is the relay probability of
// the edge (the probabilistic model of paper §3). Comments and blank lines
// are skipped as in ReadEdgeList; node tokens follow the same numeric/label
// rules. It returns the graph and a weight lookup suitable for
// Model.WithWeights (1.0 for edges not present, which cannot occur when the
// lookup is used with the same graph).
func ReadWeightedEdgeList(r io.Reader) (*Digraph, func(u, v int) float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	type rawEdge struct {
		u, v string
		p    float64
	}
	var raw []rawEdge
	numeric := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("graph: line %d: want 3 fields (u v p), got %d", lineNo, len(fields))
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, nil, fmt.Errorf("graph: line %d: bad probability %q", lineNo, fields[2])
		}
		raw = append(raw, rawEdge{fields[0], fields[1], p})
		if numeric && (!isUint(fields[0]) || !isUint(fields[1])) {
			numeric = false
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading weighted edge list: %w", err)
	}

	b := NewBuilder(0)
	weights := make(map[[2]int]float64, len(raw))
	var labels []string
	intern := make(map[string]int)
	var idErr error
	id := func(tok string) int {
		if numeric {
			n, err := strconv.Atoi(tok)
			if err != nil && idErr == nil { // range overflow (isUint passed)
				idErr = fmt.Errorf("graph: node id %q out of range", tok)
			}
			return n
		}
		if i, ok := intern[tok]; ok {
			return i
		}
		i := len(labels)
		intern[tok] = i
		labels = append(labels, tok)
		return i
	}
	for _, e := range raw {
		u, v := id(e.u), id(e.v)
		if idErr != nil {
			return nil, nil, idErr
		}
		b.AddEdge(u, v)
		weights[[2]int{u, v}] = e.p
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	if !numeric {
		g.labels = labels
	}
	lookup := func(u, v int) float64 {
		if p, ok := weights[[2]int{u, v}]; ok {
			return p
		}
		return 1
	}
	return g, lookup, nil
}

// WriteEdgeList writes the graph in edge-list format. When the graph has
// labels, labels are written instead of numeric ids.
func WriteEdgeList(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(u) {
			var err error
			if g.HasLabels() {
				_, err = fmt.Fprintf(bw, "%s %s\n", g.Label(u), g.Label(v))
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
