package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// diamond is the 4-node graph 0→1, 0→2, 1→3, 2→3.
func diamond(t *testing.T) *Digraph {
	t.Helper()
	g, err := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := diamond(t)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4", g.M())
	}
	if got := g.Out(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Out(0) = %v, want [1 2]", got)
	}
	if got := g.In(3); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("In(3) = %v, want [1 2]", got)
	}
	if g.OutDegree(3) != 0 || g.InDegree(0) != 0 {
		t.Errorf("degree mismatch at extremes")
	}
}

func TestBuilderGrowsNodes(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 7)
	g := b.MustBuild()
	if g.N() != 8 {
		t.Fatalf("N = %d, want 8", g.N())
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestBuilderDedupes(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (dedupe)", g.M())
	}
}

func TestBuilderParallelEdges(t *testing.T) {
	b := NewBuilder(2).AllowParallelEdges()
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (parallel kept)", g.M())
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a self-loop")
	}
}

func TestBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(-1, 0) did not panic")
		}
	}()
	NewBuilder(1).AddEdge(-1, 0)
}

func TestHasEdge(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 3, true}, {2, 3, true},
		{1, 0, false}, {0, 3, false}, {3, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if got := g.Sources(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Sources = %v, want [0]", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Sinks = %v, want [3]", got)
	}
}

func TestTranspose(t *testing.T) {
	g := diamond(t)
	tr := g.Transpose()
	if !tr.HasEdge(3, 1) || !tr.HasEdge(1, 0) {
		t.Error("transpose missing reversed edges")
	}
	if tr.HasEdge(0, 1) {
		t.Error("transpose kept a forward edge")
	}
	if tr.M() != g.M() || tr.N() != g.N() {
		t.Error("transpose changed size")
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Errorf("order = %v, want [0 1 2 3]", order)
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if _, err := g.TopoOrder(); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	if g.IsDAG() {
		t.Error("IsDAG true for a 3-cycle")
	}
}

func TestTopoRank(t *testing.T) {
	g := diamond(t)
	rank, err := g.TopoRank()
	if err != nil {
		t.Fatalf("TopoRank: %v", err)
	}
	for _, e := range g.Edges() {
		if rank[e[0]] >= rank[e[1]] {
			t.Errorf("edge (%d,%d) violates rank %d >= %d", e[0], e[1], rank[e[0]], rank[e[1]])
		}
	}
}

// TestTopoOrderProperty checks that on random DAGs (edges oriented low→high)
// every edge respects the returned order.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 30, 0.15)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomDAG generates a DAG by sampling edges u→v for u < v after a random
// relabeling, so topological order is not simply 0..n-1.
func randomDAG(rng *rand.Rand, n int, p float64) *Digraph {
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(perm[i], perm[j])
			}
		}
	}
	return b.MustBuild()
}

func TestReachable(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	seen := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("Reachable(0) = %v, want %v", seen, want)
	}
	if n := g.CountReachable(0); n != 3 {
		t.Errorf("CountReachable(0) = %d, want 3", n)
	}
	if n := g.CountReachable(0, 3); n != 5 {
		t.Errorf("CountReachable(0,3) = %d, want 5", n)
	}
}

func TestBFSLevels(t *testing.T) {
	g := diamond(t)
	level, levels := g.BFSLevels(0)
	if !reflect.DeepEqual(level, []int{0, 1, 1, 2}) {
		t.Errorf("level = %v", level)
	}
	if len(levels) != 3 {
		t.Errorf("levels count = %d, want 3", len(levels))
	}
}

func TestDFSTree(t *testing.T) {
	g := diamond(t)
	tr := g.DFS(0)
	if tr.Parent[0] != -1 {
		t.Error("root has a parent")
	}
	for _, v := range []int{1, 2, 3} {
		if !tr.Visited(v) {
			t.Errorf("node %d unvisited", v)
		}
	}
	// Node 3 is discovered via 1 (ascending adjacency order).
	if tr.Parent[3] != 1 {
		t.Errorf("Parent[3] = %d, want 1", tr.Parent[3])
	}
	if len(tr.TreeEdges()) != 3 {
		t.Errorf("tree edges = %d, want 3", len(tr.TreeEdges()))
	}
	// Discovery times are a permutation of 0..3.
	seen := map[int]bool{}
	for _, d := range tr.Discovery {
		seen[d] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Errorf("discovery time %d missing", i)
		}
	}
}

func TestDFSUnreachable(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}})
	tr := g.DFS(0)
	if tr.Visited(2) {
		t.Error("unreachable node marked visited")
	}
	if tr.Discovery[2] != -1 {
		t.Error("unreachable node has a discovery time")
	}
}

func TestSCCThreeCycle(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("ncomp = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("cycle nodes not in one component")
	}
	if comp[3] == comp[0] {
		t.Error("node 3 merged into the cycle component")
	}
	// Reverse topological numbering: edge comp(2)→comp(3) implies
	// comp[2] > comp[3].
	if comp[2] <= comp[3] {
		t.Errorf("component ids not reverse-topological: %v", comp)
	}
}

func TestSCCOnDAGIsIdentityLike(t *testing.T) {
	g := diamond(t)
	_, n := g.SCC()
	if n != g.N() {
		t.Fatalf("DAG: ncomp = %d, want %d", n, g.N())
	}
}

func TestCondensationIsDAG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		b := NewBuilder(n)
		for i := 0; i < 60; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		cond, comp := g.Condensation()
		if !cond.IsDAG() {
			return false
		}
		for _, e := range g.Edges() {
			cu, cv := comp[e[0]], comp[e[1]]
			if cu != cv && !cond.HasEdge(cu, cv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond(t)
	sub, remap := g.InducedSubgraph([]bool{true, true, false, true})
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d, want 3", sub.N())
	}
	if remap[2] != -1 {
		t.Errorf("remap[2] = %d, want -1", remap[2])
	}
	// Edges 0→1 and 1→3 survive under new ids.
	if !sub.HasEdge(remap[0], remap[1]) || !sub.HasEdge(remap[1], remap[3]) {
		t.Error("surviving edges missing")
	}
	if sub.M() != 2 {
		t.Errorf("sub.M = %d, want 2", sub.M())
	}
}

func TestAddSuperSource(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 2}, {1, 2}, {2, 3}})
	ng, s, err := g.AddSuperSource([]int{0, 1})
	if err != nil {
		t.Fatalf("AddSuperSource: %v", err)
	}
	if s != 4 || ng.N() != 5 {
		t.Fatalf("s=%d N=%d", s, ng.N())
	}
	if !ng.HasEdge(s, 0) || !ng.HasEdge(s, 1) {
		t.Error("super-source edges missing")
	}
	if got := ng.Sources(); !reflect.DeepEqual(got, []int{s}) {
		t.Errorf("Sources = %v, want [%d]", got, s)
	}
	if _, _, err := g.AddSuperSource([]int{99}); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestDegreeStats(t *testing.T) {
	g := diamond(t)
	in := g.InDegreeStats()
	if in.Min != 0 || in.Max != 2 || in.Zero != 1 || in.One != 2 {
		t.Errorf("in stats = %+v", in)
	}
	if in.Mean != 1.0 {
		t.Errorf("in mean = %f, want 1", in.Mean)
	}
	out := g.OutDegreeStats()
	if out.Max != 2 || out.Zero != 1 {
		t.Errorf("out stats = %+v", out)
	}
}

func TestLabels(t *testing.T) {
	g := diamond(t)
	if g.HasLabels() {
		t.Error("unlabeled graph claims labels")
	}
	if g.Label(2) != "2" {
		t.Errorf("Label(2) = %q, want \"2\"", g.Label(2))
	}
	lg, err := g.WithLabels([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatalf("WithLabels: %v", err)
	}
	if lg.Label(2) != "c" {
		t.Errorf("Label(2) = %q, want \"c\"", lg.Label(2))
	}
	if _, err := g.WithLabels([]string{"too", "short"}); err == nil {
		t.Error("short label slice accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone size mismatch")
	}
	c.outAdj[0] = 99
	if g.outAdj[0] == 99 {
		t.Error("clone shares storage with original")
	}
}

func TestEdgeListRoundTripNumeric(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip size: got (%d,%d), want (%d,%d)", g2.N(), g2.M(), g.N(), g.M())
	}
	if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Error("round trip edges differ")
	}
}

func TestEdgeListLabeled(t *testing.T) {
	in := "# comment\nalpha beta\nbeta gamma\n\nalpha gamma\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got (%d,%d), want (3,3)", g.N(), g.M())
	}
	if !g.HasLabels() {
		t.Fatal("labels lost")
	}
	if g.Label(0) != "alpha" || g.Label(1) != "beta" || g.Label(2) != "gamma" {
		t.Errorf("labels = %q %q %q", g.Label(0), g.Label(1), g.Label(2))
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	if !strings.Contains(buf.String(), "alpha beta") {
		t.Errorf("labeled output missing tokens:\n%s", buf.String())
	}
}

func TestWeightedEdgeList(t *testing.T) {
	in := "# weighted\n0 1 0.5\n0 2 1.0\n1 3 0.25\n2 3 0.75\n"
	g, w, err := ReadWeightedEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("size = (%d,%d)", g.N(), g.M())
	}
	cases := []struct {
		u, v int
		want float64
	}{{0, 1, 0.5}, {0, 2, 1.0}, {1, 3, 0.25}, {2, 3, 0.75}, {3, 0, 1.0}}
	for _, c := range cases {
		if got := w(c.u, c.v); got != c.want {
			t.Errorf("w(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestWeightedEdgeListLabeled(t *testing.T) {
	in := "src mid 0.9\nmid dst 0.8\n"
	g, w, err := ReadWeightedEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasLabels() || g.Label(0) != "src" {
		t.Error("labels lost")
	}
	if w(0, 1) != 0.9 {
		t.Errorf("w = %v", w(0, 1))
	}
}

func TestWeightedEdgeListMalformed(t *testing.T) {
	for _, in := range []string{
		"0 1\n",       // missing probability
		"0 1 1.5\n",   // out of range
		"0 1 -0.5\n",  // negative
		"0 1 x\n",     // non-numeric
		"0 1 0.5 9\n", // too many fields
	} {
		if _, _, err := ReadWeightedEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("malformed weighted input %q accepted", in)
		}
	}
}

func TestEdgeListMalformed(t *testing.T) {
	cases := []string{
		"1 2 3\n",
		"only-one-field\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("malformed input %q accepted", in)
		}
	}
}

func TestEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty input produced (%d,%d)", g.N(), g.M())
	}
}

func TestMaxDegrees(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}})
	if g.MaxOutDegree() != 3 {
		t.Errorf("MaxOutDegree = %d, want 3", g.MaxOutDegree())
	}
	if g.MaxInDegree() != 2 {
		t.Errorf("MaxInDegree = %d, want 2", g.MaxInDegree())
	}
}

func TestDegreesSlices(t *testing.T) {
	g := diamond(t)
	if !reflect.DeepEqual(g.InDegrees(), []int{0, 1, 1, 2}) {
		t.Errorf("InDegrees = %v", g.InDegrees())
	}
	if !reflect.DeepEqual(g.OutDegrees(), []int{2, 1, 1, 0}) {
		t.Errorf("OutDegrees = %v", g.OutDegrees())
	}
}

// sortInts is a helper for comparisons where order is irrelevant.
func sortInts(a []int) []int {
	b := append([]int(nil), a...)
	sort.Ints(b)
	return b
}

func TestEdgesEnumeration(t *testing.T) {
	g := diamond(t)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("Edges len = %d", len(es))
	}
	var targets []int
	for _, e := range es {
		targets = append(targets, e[1])
	}
	if !reflect.DeepEqual(sortInts(targets), []int{1, 2, 3, 3}) {
		t.Errorf("edge targets = %v", targets)
	}
}
