package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the parser never panics on arbitrary input, and
// that accepted inputs survive a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\nalpha beta\n\nbeta gamma\n")
	f.Add("9 9\n")
	f.Add("a  b\t\n")
	f.Add("0 1 2\n")
	f.Add(strings.Repeat("1 2\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed edge count %d → %d", g.M(), g2.M())
		}
	})
}

// FuzzBuilder checks that arbitrary edge batches either build a consistent
// graph or fail cleanly (self-loops).
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{3, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder(0)
		selfLoop := false
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i]%32), int(data[i+1]%32)
			b.AddEdge(u, v)
			if u == v {
				selfLoop = true
			}
		}
		g, err := b.Build()
		if selfLoop {
			if err == nil {
				t.Fatal("self-loop accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("clean input rejected: %v", err)
		}
		// CSR consistency: out and in edge counts agree and every edge is
		// visible from both sides.
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Out(u) {
				found := false
				for _, p := range g.In(v) {
					if p == u {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("edge (%d,%d) missing from in-adjacency", u, v)
				}
			}
		}
	})
}
