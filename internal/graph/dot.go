package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT writes the graph in Graphviz DOT format for visualization.
// highlight marks nodes to draw filled (e.g. a filter placement); it may be
// nil. Labels are used when present.
func WriteDOT(w io.Writer, g *Digraph, name string, highlight []bool) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name)
	for v := 0; v < g.N(); v++ {
		attrs := []string{fmt.Sprintf("label=%q", g.Label(v))}
		if highlight != nil && v < len(highlight) && highlight[v] {
			attrs = append(attrs, `style=filled`, `fillcolor=gold`)
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(u) {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", u, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
