package graph

// SCC computes the strongly connected components of the graph with Tarjan's
// algorithm (iterative, so deep graphs do not overflow the goroutine stack).
// It returns comp[v] = component id and the number of components. Component
// ids are assigned in reverse topological order of the condensation: if
// there is an edge from component a to component b (a != b) then
// comp id of a > comp id of b.
func (g *Digraph) SCC() (comp []int, ncomp int) {
	const unvisited = -1
	comp = make([]int, g.n)
	low := make([]int, g.n)
	num := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range comp {
		comp[i] = unvisited
		num[i] = unvisited
	}
	var tarjanStack []int
	clock := 0

	type frame struct {
		v    int
		next int
	}
	for root := 0; root < g.n; root++ {
		if num[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		num[root] = clock
		low[root] = clock
		clock++
		tarjanStack = append(tarjanStack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			adj := g.Out(f.v)
			recursed := false
			for f.next < len(adj) {
				w := adj[f.next]
				f.next++
				if num[w] == unvisited {
					num[w] = clock
					low[w] = clock
					clock++
					tarjanStack = append(tarjanStack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
					recursed = true
					break
				}
				if onStack[w] && num[w] < low[f.v] {
					low[f.v] = num[w]
				}
			}
			if recursed {
				continue
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == num[v] {
				for {
					w := tarjanStack[len(tarjanStack)-1]
					tarjanStack = tarjanStack[:len(tarjanStack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// Condensation returns the DAG of strongly connected components along with
// the comp mapping from SCC. Node i of the condensation corresponds to
// component i.
func (g *Digraph) Condensation() (*Digraph, []int) {
	comp, ncomp := g.SCC()
	b := NewBuilder(ncomp)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(u) {
			if comp[u] != comp[v] {
				b.AddEdge(comp[u], comp[v])
			}
		}
	}
	return b.MustBuild(), comp
}
