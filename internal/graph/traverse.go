package graph

// Reachable returns the set of nodes reachable from the given roots by
// directed paths, including the roots themselves. The result is a boolean
// mask of length N().
func (g *Digraph) Reachable(roots ...int) []bool {
	seen := make([]bool, g.n)
	stack := make([]int, 0, len(roots))
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Out(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// CountReachable returns the number of nodes reachable from roots (roots
// included).
func (g *Digraph) CountReachable(roots ...int) int {
	n := 0
	for _, ok := range g.Reachable(roots...) {
		if ok {
			n++
		}
	}
	return n
}

// BFSLevels returns level[v] = BFS distance from root (-1 when v is
// unreachable) and the nodes of each level in ascending id order.
func (g *Digraph) BFSLevels(root int) (level []int, levels [][]int) {
	level = make([]int, g.n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	frontier := []int{root}
	levels = append(levels, frontier)
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, w := range g.Out(v) {
				if level[w] < 0 {
					level[w] = level[v] + 1
					next = append(next, w)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		levels = append(levels, next)
		frontier = next
	}
	return level, levels
}

// DFSTree holds the result of a depth-first traversal from a single root:
// the tree edges, each node's parent in the DFS tree (-1 for the root and
// for unvisited nodes), and discovery times (σ in the paper's Acyclic
// algorithm; -1 for unvisited nodes).
type DFSTree struct {
	Root      int
	Parent    []int
	Discovery []int
	// Order lists visited nodes in discovery order.
	Order []int
}

// DFS performs an iterative depth-first traversal from root, visiting
// out-neighbors in ascending id order, and returns the resulting tree.
func (g *Digraph) DFS(root int) *DFSTree {
	t := &DFSTree{
		Root:      root,
		Parent:    make([]int, g.n),
		Discovery: make([]int, g.n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Discovery[i] = -1
	}
	type frame struct {
		v    int
		next int // index into g.Out(v)
	}
	t.Discovery[root] = 0
	t.Order = append(t.Order, root)
	clock := 1
	stack := []frame{{v: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		adj := g.Out(f.v)
		advanced := false
		for f.next < len(adj) {
			w := adj[f.next]
			f.next++
			if t.Discovery[w] < 0 {
				t.Discovery[w] = clock
				clock++
				t.Parent[w] = f.v
				t.Order = append(t.Order, w)
				stack = append(stack, frame{v: w})
				advanced = true
				break
			}
		}
		if !advanced && f.next >= len(adj) {
			stack = stack[:len(stack)-1]
		}
	}
	return t
}

// TreeEdges returns the DFS tree's edges (parent, child).
func (t *DFSTree) TreeEdges() [][2]int {
	var es [][2]int
	for v, p := range t.Parent {
		if p >= 0 {
			es = append(es, [2]int{p, v})
		}
	}
	return es
}

// Visited reports whether v was reached by the traversal.
func (t *DFSTree) Visited(v int) bool { return t.Discovery[v] >= 0 }
