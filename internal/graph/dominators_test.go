package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominatorsDiamond(t *testing.T) {
	// 0→1, 0→2, 1→3, 2→3: neither middle dominates 3; idom(3) = 0.
	g := MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	idom := g.Dominators(0)
	want := []int{0, 0, 0, 0}
	for v, w := range want {
		if idom[v] != w {
			t.Errorf("idom[%d] = %d, want %d", v, idom[v], w)
		}
	}
	if !Dominates(idom, 0, 3) || Dominates(idom, 1, 3) {
		t.Error("dominance queries wrong")
	}
}

func TestDominatorsChain(t *testing.T) {
	// 0→1→2→3: each node dominated by its predecessor.
	g := MustFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	idom := g.Dominators(0)
	for v := 1; v < 4; v++ {
		if idom[v] != v-1 {
			t.Errorf("idom[%d] = %d, want %d", v, idom[v], v-1)
		}
	}
	counts := DominatedCount(idom)
	// Node 0 dominates all 4, node 1 dominates 3, etc.
	for v, want := range []int{4, 3, 2, 1} {
		if counts[v] != want {
			t.Errorf("count[%d] = %d, want %d", v, counts[v], want)
		}
	}
}

func TestDominatorsGatewayMotif(t *testing.T) {
	// Fan into a gateway, then a subtree: 0→{1,2}→3 (gateway), 3→4, 3→5.
	g := MustFromEdges(6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}})
	idom := g.Dominators(0)
	if idom[3] != 0 {
		t.Errorf("idom[gateway] = %d, want 0", idom[3])
	}
	if idom[4] != 3 || idom[5] != 3 {
		t.Error("gateway must immediately dominate its subtree")
	}
	counts := DominatedCount(idom)
	if counts[3] != 3 { // gateway + 2 leaves
		t.Errorf("gateway dominates %d nodes, want 3", counts[3])
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}})
	idom := g.Dominators(0)
	if idom[2] != -1 {
		t.Errorf("idom of unreachable node = %d, want -1", idom[2])
	}
	if Dominates(idom, 0, 2) {
		t.Error("root dominates unreachable node")
	}
	counts := DominatedCount(idom)
	if counts[2] != 0 {
		t.Errorf("unreachable count = %d", counts[2])
	}
}

// bruteDominates checks "d dominates v" by deleting d and testing
// reachability.
func bruteDominates(g *Digraph, root, d, v int) bool {
	if d == v {
		return g.Reachable(root)[v]
	}
	if !g.Reachable(root)[v] {
		return false
	}
	if d == root {
		return true
	}
	// BFS from root avoiding d.
	seen := make([]bool, g.N())
	seen[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(x) {
			if w == d || seen[w] {
				continue
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
	return !seen[v]
}

func TestDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		idom := g.Dominators(0)
		for d := 0; d < n; d++ {
			for v := 0; v < n; v++ {
				if g.Reachable(0)[v] == false {
					continue
				}
				fast := Dominates(idom, d, v)
				slow := bruteDominates(g, 0, d, v)
				if fast != slow {
					t.Logf("seed %d: Dominates(%d,%d) = %v, brute = %v", seed, d, v, fast, slow)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDominatorsOnCyclicGraph(t *testing.T) {
	// The CHK algorithm handles cycles: 0→1→2→1, 2→3.
	g := MustFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {2, 3}})
	idom := g.Dominators(0)
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 2 {
		t.Errorf("idom = %v", idom)
	}
}
