package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	g, _ = g.WithLabels([]string{"src", "mid", "dst"})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "toy", []bool{false, true, false}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "toy"`,
		`label="mid"`,
		`fillcolor=gold`,
		"n0 -> n1;",
		"n1 -> n2;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Only one highlighted node.
	if strings.Count(out, "fillcolor") != 1 {
		t.Errorf("highlight count wrong:\n%s", out)
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := MustFromEdges(2, [][2]int{{0, 1}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `digraph "G"`) {
		t.Errorf("default name missing:\n%s", buf.String())
	}
}
