package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Digraph. The zero
// value is a builder for an empty graph; NewBuilder pre-sizes it for a known
// node count. Builders are not safe for concurrent use.
type Builder struct {
	n     int
	edges [][2]int
	// allowParallel keeps duplicate (u,v) edges instead of collapsing them.
	// The propagation model treats parallel edges as independent relay
	// channels; the paper's graphs are simple, so collapsing is the default.
	allowParallel bool
}

// NewBuilder returns a Builder for a graph with n nodes. More nodes may be
// added later with Grow or implicitly by AddEdge.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// AllowParallelEdges configures the builder to keep duplicate edges rather
// than collapsing them. It returns the builder for chaining.
func (b *Builder) AllowParallelEdges() *Builder {
	b.allowParallel = true
	return b
}

// N returns the current number of nodes.
func (b *Builder) N() int { return b.n }

// Grow ensures the graph has at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddNode appends a fresh node and returns its id.
func (b *Builder) AddNode() int {
	b.n++
	return b.n - 1
}

// AddEdge records the directed edge (u, v), growing the node count if
// needed. Self-loops are recorded as given; Build rejects them because the
// propagation model has no meaningful interpretation for a node relaying to
// itself.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative node id in edge (%d,%d)", u, v))
	}
	if u >= b.n {
		b.n = u + 1
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, [2]int{u, v})
}

// AddEdges records a batch of directed edges.
func (b *Builder) AddEdges(edges [][2]int) {
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
}

// Build assembles the immutable Digraph. Unless AllowParallelEdges was
// called, duplicate edges are collapsed. Build returns an error when a
// self-loop is present.
func (b *Builder) Build() (*Digraph, error) {
	for _, e := range b.edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop at node %d", e[0])
		}
	}
	es := append([][2]int(nil), b.edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	if !b.allowParallel {
		es = dedupeEdges(es)
	}

	g := &Digraph{n: b.n}
	g.outOff = make([]int, b.n+1)
	g.outAdj = make([]int, len(es))
	for _, e := range es {
		g.outOff[e[0]+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outOff[v+1] += g.outOff[v]
	}
	fill := make([]int, b.n)
	for _, e := range es {
		g.outAdj[g.outOff[e[0]]+fill[e[0]]] = e[1]
		fill[e[0]]++
	}

	// In-CSR: counting sort of the same edge set keyed by target. A second
	// pass keyed by (v, u) keeps each in-adjacency list sorted because the
	// primary sort above already ordered sources ascending.
	g.inOff = make([]int, b.n+1)
	g.inAdj = make([]int, len(es))
	for _, e := range es {
		g.inOff[e[1]+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	for i := range fill {
		fill[i] = 0
	}
	for _, e := range es {
		g.inAdj[g.inOff[e[1]]+fill[e[1]]] = e[0]
		fill[e[1]]++
	}
	return g, nil
}

// MustBuild is Build for graphs known to be well-formed; it panics on error.
func (b *Builder) MustBuild() *Digraph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func dedupeEdges(es [][2]int) [][2]int {
	if len(es) == 0 {
		return es
	}
	out := es[:1]
	for _, e := range es[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

// FromEdges builds a graph with n nodes from an explicit edge list. It is a
// convenience wrapper over Builder for tests and examples.
func FromEdges(n int, edges [][2]int) (*Digraph, error) {
	b := NewBuilder(n)
	b.AddEdges(edges)
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(n int, edges [][2]int) *Digraph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
