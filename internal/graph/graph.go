// Package graph provides the directed-graph substrate used by the
// filter-placement library: a compact immutable digraph representation,
// builders, traversals, topological ordering, strongly connected components,
// reachability, subgraph extraction and edge-list I/O.
//
// Terminology follows the paper "The Filter-Placement Problem and its
// Application to Minimizing Information Multiplicity" (Erdős et al., VLDB
// 2012): a communication graph (c-graph) is a directed graph along which
// items propagate from source nodes to the rest of the network. An edge
// (u, v) means u forwards copies of the items it holds to v.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is an immutable directed graph in compressed sparse row form.
// Nodes are dense integers in [0, N()). Both out- and in-adjacency are
// materialized so forward propagation passes (over out-edges) and backward
// suffix passes (over in-edges) are equally cheap.
//
// Construct a Digraph with a Builder, or with convenience constructors such
// as FromEdges.
type Digraph struct {
	n int

	// CSR layout for out-edges: the out-neighbors of node v are
	// outAdj[outOff[v]:outOff[v+1]], sorted ascending.
	outOff []int
	outAdj []int

	// CSR layout for in-edges, symmetric to the above.
	inOff []int
	inAdj []int

	// labels is optional; when non-nil it has length n and carries the
	// external name of each node (e.g. a site hostname or paper id).
	labels []string
}

// FromCSR builds a Digraph directly from prebuilt CSR arrays, taking
// ownership of the slices. The caller guarantees the Digraph invariants:
// offsets are monotone with outOff[0] == inOff[0] == 0 and
// outOff[n] == len(outAdj), inOff[n] == len(inAdj); every adjacency row
// is in ascending order; and the in-CSR is the exact transpose of the
// out-CSR. Only structural sizes are validated here — the trusted
// producer is flow.Plan.Digraph, whose rows carry these invariants by
// construction, letting the PATCH path rebuild a model in O(n+m) instead
// of the builder's O(m log m) sort.
func FromCSR(n int, outOff, outAdj, inOff, inAdj []int) *Digraph {
	if n < 0 || len(outOff) != n+1 || len(inOff) != n+1 ||
		outOff[n] != len(outAdj) || inOff[n] != len(inAdj) ||
		len(outAdj) != len(inAdj) {
		panic(fmt.Sprintf("graph: FromCSR arrays inconsistent: n=%d |outOff|=%d |inOff|=%d |outAdj|=%d |inAdj|=%d",
			n, len(outOff), len(inOff), len(outAdj), len(inAdj)))
	}
	return &Digraph{n: n, outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Digraph) M() int { return len(g.outAdj) }

// Out returns the out-neighbors of v in ascending order. The returned slice
// aliases internal storage and must not be modified.
func (g *Digraph) Out(v int) []int { return g.outAdj[g.outOff[v]:g.outOff[v+1]] }

// In returns the in-neighbors of v in ascending order. The returned slice
// aliases internal storage and must not be modified.
func (g *Digraph) In(v int) []int { return g.inAdj[g.inOff[v]:g.inOff[v+1]] }

// OutDegree returns the number of out-edges of v.
func (g *Digraph) OutDegree(v int) int { return g.outOff[v+1] - g.outOff[v] }

// InDegree returns the number of in-edges of v.
func (g *Digraph) InDegree(v int) int { return g.inOff[v+1] - g.inOff[v] }

// HasEdge reports whether the edge (u, v) is present.
func (g *Digraph) HasEdge(u, v int) bool {
	adj := g.Out(u)
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// Label returns the external label of v, or its decimal id when the graph
// carries no labels.
func (g *Digraph) Label(v int) string {
	if g.labels == nil {
		return fmt.Sprintf("%d", v)
	}
	return g.labels[v]
}

// HasLabels reports whether the graph carries external node labels.
func (g *Digraph) HasLabels() bool { return g.labels != nil }

// Edges returns all edges as (u, v) pairs in CSR order. The slice is freshly
// allocated on every call.
func (g *Digraph) Edges() [][2]int {
	es := make([][2]int, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(u) {
			es = append(es, [2]int{u, v})
		}
	}
	return es
}

// Sources returns all nodes with in-degree zero, in ascending order. In a
// c-graph these are the information origins unless the caller designates
// sources explicitly.
func (g *Digraph) Sources() []int {
	var src []int
	for v := 0; v < g.n; v++ {
		if g.InDegree(v) == 0 {
			src = append(src, v)
		}
	}
	return src
}

// Sinks returns all nodes with out-degree zero, in ascending order.
func (g *Digraph) Sinks() []int {
	var snk []int
	for v := 0; v < g.n; v++ {
		if g.OutDegree(v) == 0 {
			snk = append(snk, v)
		}
	}
	return snk
}

// MaxOutDegree returns the maximum out-degree over all nodes (0 for the
// empty graph).
func (g *Digraph) MaxOutDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.OutDegree(v); d > max {
			max = d
		}
	}
	return max
}

// MaxInDegree returns the maximum in-degree over all nodes (0 for the empty
// graph).
func (g *Digraph) MaxInDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.InDegree(v); d > max {
			max = d
		}
	}
	return max
}

// Transpose returns a new graph with every edge reversed. Labels are shared
// with the receiver.
func (g *Digraph) Transpose() *Digraph {
	t := &Digraph{
		n:      g.n,
		outOff: g.inOff,
		outAdj: g.inAdj,
		inOff:  g.outOff,
		inAdj:  g.outAdj,
		labels: g.labels,
	}
	return t
}

// Clone returns a deep copy of the graph. Useful when the caller intends to
// attach different labels.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		n:      g.n,
		outOff: append([]int(nil), g.outOff...),
		outAdj: append([]int(nil), g.outAdj...),
		inOff:  append([]int(nil), g.inOff...),
		inAdj:  append([]int(nil), g.inAdj...),
	}
	if g.labels != nil {
		c.labels = append([]string(nil), g.labels...)
	}
	return c
}

// WithLabels returns a shallow copy of g carrying the given labels. The
// label slice length must equal g.N().
func (g *Digraph) WithLabels(labels []string) (*Digraph, error) {
	if len(labels) != g.n {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(labels), g.n)
	}
	c := *g
	c.labels = labels
	return &c, nil
}

// InducedSubgraph returns the subgraph induced by the nodes for which
// keep[v] is true, together with the mapping old→new node id (new id is -1
// for dropped nodes). Labels, when present, are carried over.
func (g *Digraph) InducedSubgraph(keep []bool) (*Digraph, []int) {
	if len(keep) != g.n {
		panic(fmt.Sprintf("graph: keep mask of length %d for %d nodes", len(keep), g.n))
	}
	remap := make([]int, g.n)
	next := 0
	for v := 0; v < g.n; v++ {
		if keep[v] {
			remap[v] = next
			next++
		} else {
			remap[v] = -1
		}
	}
	b := NewBuilder(next)
	for u := 0; u < g.n; u++ {
		if !keep[u] {
			continue
		}
		for _, v := range g.Out(u) {
			if keep[v] {
				b.AddEdge(remap[u], remap[v])
			}
		}
	}
	sub := b.MustBuild()
	if g.labels != nil {
		labels := make([]string, next)
		for v := 0; v < g.n; v++ {
			if keep[v] {
				labels[remap[v]] = g.labels[v]
			}
		}
		sub.labels = labels
	}
	return sub, remap
}

// AddSuperSource returns a new graph with one extra node s = g.N() that has
// an edge to every node listed in roots, mirroring the construction the
// paper uses when a c-graph has several information origins. The new node's
// id is returned alongside the graph. Duplicate roots are tolerated.
func (g *Digraph) AddSuperSource(roots []int) (*Digraph, int, error) {
	s := g.n
	b := NewBuilder(g.n + 1)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(u) {
			b.AddEdge(u, v)
		}
	}
	for _, r := range roots {
		if r < 0 || r >= g.n {
			return nil, -1, fmt.Errorf("graph: super-source root %d out of range [0,%d)", r, g.n)
		}
		b.AddEdge(s, r)
	}
	ng, err := b.Build()
	if err != nil {
		return nil, -1, err
	}
	if g.labels != nil {
		labels := append(append([]string(nil), g.labels...), "super-source")
		ng.labels = labels
	}
	return ng, s, nil
}

// DegreeStats summarizes a degree sequence.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Zero counts the nodes with degree zero.
	Zero int
	// One counts the nodes with degree exactly one.
	One int
}

// InDegreeStats returns summary statistics of the in-degree sequence.
func (g *Digraph) InDegreeStats() DegreeStats { return g.degreeStats(g.InDegree) }

// OutDegreeStats returns summary statistics of the out-degree sequence.
func (g *Digraph) OutDegreeStats() DegreeStats { return g.degreeStats(g.OutDegree) }

func (g *Digraph) degreeStats(deg func(int) int) DegreeStats {
	st := DegreeStats{Min: 0, Max: 0}
	if g.n == 0 {
		return st
	}
	st.Min = deg(0)
	total := 0
	for v := 0; v < g.n; v++ {
		d := deg(v)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		switch d {
		case 0:
			st.Zero++
		case 1:
			st.One++
		}
	}
	st.Mean = float64(total) / float64(g.n)
	return st
}

// InDegrees returns the in-degree of every node as a fresh slice.
func (g *Digraph) InDegrees() []int {
	ds := make([]int, g.n)
	for v := range ds {
		ds[v] = g.InDegree(v)
	}
	return ds
}

// OutDegrees returns the out-degree of every node as a fresh slice.
func (g *Digraph) OutDegrees() []int {
	ds := make([]int, g.n)
	for v := range ds {
		ds[v] = g.OutDegree(v)
	}
	return ds
}
