package acyclic

import (
	"fmt"

	"repro/internal/graph"
)

// sigEntry is one (junction, first child on path) pair of a node's
// signature.
type sigEntry struct{ w, firstChild int }

// BuildSignature implements the paper's §4.3 Acyclic algorithm as written:
// phase 1 builds a DFS spanning tree from the source; phase 2 decides every
// remaining edge (u, v) with the junction-signature test — accept when the
// deepest common junction w on the two root paths sends u and v into
// different branches, i.e. σ(v) < σ(w_u1) ≤ σ(u) for w's first children
// w_u1, w_v1 on the respective paths.
//
// The test turns out to be exact, by an argument the paper leaves implicit:
// in a directed DFS every non-tree edge is either *forward* (to a
// descendant; the paper's "no forward edges" remark overlooks these, but
// they are harmless), *cross* (to a node whose subtree finished before the
// tail was discovered), or *back* (to an ancestor). DFS finish time
// strictly decreases along tree, forward, and cross edges, so any edge
// subset excluding back edges is acyclic — and the junction condition holds
// precisely for cross edges and fails precisely for back edges. The
// resulting subgraph therefore equals the exact Pearce–Kelly construction
// in Build ("drop exactly the back edges", which is also maximal);
// TestSignatureEquivalentToExact and the abl-acyclic experiment verify the
// equivalence empirically. SignatureStats.Cyclic is retained as a
// tripwire: it would flag any input on which the equivalence argument
// failed.
func BuildSignature(g *graph.Digraph, source int) (*graph.Digraph, SignatureStats, error) {
	var st SignatureStats
	if source < 0 || source >= g.N() {
		return nil, st, fmt.Errorf("acyclic: source %d out of range [0,%d)", source, g.N())
	}
	tree := g.DFS(source)
	sigma := tree.Discovery

	// Junctions: tree nodes with ≥ 2 tree children.
	childCount := make([]int, g.N())
	for _, p := range tree.Parent {
		if p >= 0 {
			childCount[p]++
		}
	}

	// sign(u): for every junction w on the tree path source→u, the first
	// child of w on that path. Built top-down in discovery order.
	signs := make([][]sigEntry, g.N())
	for _, v := range tree.Order {
		p := tree.Parent[v]
		if p < 0 {
			continue
		}
		sig := signs[p]
		if childCount[p] > 1 {
			sig = append(append([]sigEntry(nil), sig...), sigEntry{p, v})
		}
		signs[v] = sig
	}

	b := graph.NewBuilder(g.N())
	for _, e := range tree.TreeEdges() {
		b.AddEdge(e[0], e[1])
		st.TreeEdges++
	}
	for u := 0; u < g.N(); u++ {
		if !tree.Visited(u) {
			continue
		}
		for _, v := range g.Out(u) {
			if !tree.Visited(v) || tree.Parent[v] == u {
				continue
			}
			if sigma[u] < sigma[v] {
				// Forward edge to a descendant (the case the paper's "no
				// forward edges" remark overlooks): parallel to a tree
				// path, always safe.
				st.ForwardExtras++
				b.AddEdge(u, v)
				continue
			}
			if acceptBackward(signs[u], signs[v], sigma, u, v) {
				st.Accepted++
				b.AddEdge(u, v)
			} else {
				st.Rejected++
			}
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, st, err
	}
	st.Cyclic = !out.IsDAG()
	return out, st, nil
}

// SignatureStats reports the decisions of BuildSignature.
type SignatureStats struct {
	TreeEdges     int
	Accepted      int // backward edges accepted by the junction test
	ForwardExtras int // non-tree forward edges (the paper assumes none)
	Rejected      int
	// Cyclic records whether the produced subgraph contains a cycle —
	// the failure mode the signature shortcut admits.
	Cyclic bool
}

// acceptBackward runs the paper's test: find the junction w with the
// largest σ(w) such that (w, wu1) ∈ sign(u) and (w, wv1) ∈ sign(v), then
// accept iff σ(v) < σ(wu1) ≤ σ(u).
func acceptBackward(su, sv []sigEntry, sigma []int, u, v int) bool {
	// Signatures are root→node ordered; scan for the deepest shared w.
	bestU, bestV := -1, -1
	for i := len(su) - 1; i >= 0 && bestU < 0; i-- {
		for j := len(sv) - 1; j >= 0; j-- {
			if su[i].w == sv[j].w {
				bestU, bestV = i, j
				break
			}
		}
	}
	if bestU < 0 {
		return false
	}
	wu1 := su[bestU].firstChild
	wv1 := sv[bestV].firstChild
	if wu1 == wv1 {
		return false // same branch
	}
	return sigma[v] < sigma[wu1] && sigma[wu1] <= sigma[u]
}

// CompareOnRandom runs Build (exact) and BuildSignature (paper) on the same
// input and reports edge counts and whether the signature output was
// acyclic; used by the abl-acyclic experiment.
type CompareResult struct {
	ExactEdges     int
	SignatureEdges int
	SignatureOK    bool // acyclic output
}

// Compare runs both constructions from the same source.
func Compare(g *graph.Digraph, source int) (CompareResult, error) {
	exact, _, err := Build(g, source)
	if err != nil {
		return CompareResult{}, err
	}
	sig, st, err := BuildSignature(g, source)
	if err != nil {
		return CompareResult{}, err
	}
	return CompareResult{
		ExactEdges:     exact.M(),
		SignatureEdges: sig.M(),
		SignatureOK:    !st.Cyclic,
	}, nil
}
