package acyclic

import (
	"fmt"

	"repro/internal/graph"
)

// BuildStats reports what the Acyclic algorithm did.
type BuildStats struct {
	// Visited counts nodes reached by the phase-1 DFS; the paper observes
	// that unvisited nodes never receive the item and are irrelevant.
	Visited int
	// TreeEdges counts phase-1 spanning-tree edges (all accepted).
	TreeEdges int
	// ExtraEdges counts phase-2 edges accepted without closing a cycle.
	ExtraEdges int
	// Rejected counts phase-2 edges that would have closed a cycle.
	Rejected int
}

// Build runs the paper's Acyclic algorithm from the given source: first a
// DFS spanning tree of the reachable portion of g, then every remaining
// edge between visited nodes, in deterministic (u, then v) order, accepted
// exactly when the subgraph stays acyclic. The result keeps g's node ids
// (unreachable nodes become isolated) and is maximal: adding any rejected
// edge would create a directed cycle.
func Build(g *graph.Digraph, source int) (*graph.Digraph, BuildStats, error) {
	var st BuildStats
	if source < 0 || source >= g.N() {
		return nil, st, fmt.Errorf("acyclic: source %d out of range [0,%d)", source, g.N())
	}
	tree := g.DFS(source)
	inc := NewIncrementalDAG(g.N())
	for _, e := range tree.TreeEdges() {
		if !inc.AddEdge(e[0], e[1]) {
			// Tree edges can never cycle; this would be a library bug.
			panic("acyclic: DFS tree edge rejected")
		}
		st.TreeEdges++
	}
	for v := 0; v < g.N(); v++ {
		if tree.Visited(v) {
			st.Visited++
		}
	}
	for u := 0; u < g.N(); u++ {
		if !tree.Visited(u) {
			continue
		}
		for _, v := range g.Out(u) {
			if !tree.Visited(v) || tree.Parent[v] == u {
				continue
			}
			if inc.AddEdge(u, v) {
				st.ExtraEdges++
			} else {
				st.Rejected++
			}
		}
	}
	b := graph.NewBuilder(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range inc.Out(u) {
			b.AddEdge(u, v)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, st, err
	}
	if g.HasLabels() {
		labels := make([]string, g.N())
		for v := range labels {
			labels[v] = g.Label(v)
		}
		out, _ = out.WithLabels(labels)
	}
	return out, st, nil
}

// BestRoot mirrors the paper's Quote-dataset procedure: when a c-graph has
// no clear initiator, run Acyclic from every node and keep the largest
// resulting DAG — largest by visited-node count, then by edge count, then
// by smallest root id for determinism. The chosen root is the single source
// of the returned DAG.
func BestRoot(g *graph.Digraph) (*graph.Digraph, int, BuildStats, error) {
	bestRoot := -1
	var bestG *graph.Digraph
	var bestStats BuildStats
	for r := 0; r < g.N(); r++ {
		dag, st, err := Build(g, r)
		if err != nil {
			return nil, -1, BuildStats{}, err
		}
		if bestRoot < 0 ||
			st.Visited > bestStats.Visited ||
			(st.Visited == bestStats.Visited && dag.M() > bestG.M()) {
			bestRoot, bestG, bestStats = r, dag, st
		}
	}
	if bestRoot < 0 {
		return nil, -1, BuildStats{}, fmt.Errorf("acyclic: empty graph")
	}
	return bestG, bestRoot, bestStats, nil
}
