// Package acyclic implements the paper's Acyclic algorithm (§4.3): given an
// arbitrary directed c-graph and a source, extract a connected, maximal
// acyclic subgraph on which the DAG filter-placement algorithms can run.
//
// The algorithm keeps the paper's two phases — a DFS spanning tree rooted at
// the source, then greedy augmentation with every remaining edge that does
// not close a cycle — but replaces the paper's junction-signature test
// (which assumes DFS on a digraph yields no non-tree forward edges, untrue
// in general) with Pearce–Kelly incremental topological-order maintenance,
// which is exact: an edge is accepted if and only if the subgraph stays
// acyclic. The result is maximal with respect to the deterministic edge
// scan order.
package acyclic

import "sort"

// IncrementalDAG maintains a directed acyclic graph under edge insertions,
// rejecting any insertion that would create a cycle. It implements the
// Pearce–Kelly dynamic topological-ordering algorithm (ACM JEA 2006), whose
// amortized cost per insertion is bounded by the size of the "affected
// region" between the edge's endpoints.
type IncrementalDAG struct {
	out [][]int
	in  [][]int
	ord []int // ord[v] = position of v in the maintained topological order
}

// NewIncrementalDAG returns an empty DAG on n nodes with the identity
// topological order.
func NewIncrementalDAG(n int) *IncrementalDAG {
	d := &IncrementalDAG{
		out: make([][]int, n),
		in:  make([][]int, n),
		ord: make([]int, n),
	}
	for v := range d.ord {
		d.ord[v] = v
	}
	return d
}

// N returns the node count.
func (d *IncrementalDAG) N() int { return len(d.ord) }

// Out returns the current out-neighbors of v (insertion order). The slice
// aliases internal storage.
func (d *IncrementalDAG) Out(v int) []int { return d.out[v] }

// Order returns ord[v] for every v; it is always a valid topological order
// of the accepted edges.
func (d *IncrementalDAG) Order() []int { return append([]int(nil), d.ord...) }

// AddEdge inserts (u, v) if doing so keeps the graph acyclic and reports
// whether the edge was accepted. Self-loops are always rejected. Duplicate
// edges are accepted (and stored once).
func (d *IncrementalDAG) AddEdge(u, v int) bool {
	if u == v {
		return false
	}
	for _, w := range d.out[u] {
		if w == v {
			return true // already present
		}
	}
	if d.ord[u] > d.ord[v] {
		// Possible order violation: discover the affected region.
		lb, ub := d.ord[v], d.ord[u]
		deltaF, hitsU := d.forwardFrom(v, ub, u)
		if hitsU {
			return false // path v ⇝ u exists; (u,v) would close a cycle
		}
		deltaB := d.backwardFrom(u, lb)
		d.reorder(deltaB, deltaF)
	}
	d.out[u] = append(d.out[u], v)
	d.in[v] = append(d.in[v], u)
	return true
}

// forwardFrom collects nodes reachable from start whose order index is at
// most ub, reporting whether target was reached.
func (d *IncrementalDAG) forwardFrom(start, ub, target int) ([]int, bool) {
	seen := map[int]bool{start: true}
	stack := []int{start}
	var visited []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited = append(visited, x)
		for _, w := range d.out[x] {
			if w == target {
				return nil, true
			}
			if !seen[w] && d.ord[w] <= ub {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return visited, false
}

// backwardFrom collects nodes that reach start whose order index is at
// least lb.
func (d *IncrementalDAG) backwardFrom(start, lb int) []int {
	seen := map[int]bool{start: true}
	stack := []int{start}
	var visited []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited = append(visited, x)
		for _, w := range d.in[x] {
			if !seen[w] && d.ord[w] >= lb {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return visited
}

// reorder reassigns the order indices of the affected region so every node
// that must precede comes first: the backward set (ancestors of u) takes
// the smallest available indices in its existing relative order, followed
// by the forward set (descendants of v).
func (d *IncrementalDAG) reorder(deltaB, deltaF []int) {
	byOrd := func(s []int) {
		sort.Slice(s, func(i, j int) bool { return d.ord[s[i]] < d.ord[s[j]] })
	}
	byOrd(deltaB)
	byOrd(deltaF)
	nodes := append(append([]int(nil), deltaB...), deltaF...)
	slots := make([]int, len(nodes))
	for i, x := range nodes {
		slots[i] = d.ord[x]
	}
	sort.Ints(slots)
	for i, x := range nodes {
		d.ord[x] = slots[i]
	}
}
