package acyclic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBuildSignatureOnDAG(t *testing.T) {
	// On an already-acyclic single-source input the signature variant
	// must at least produce an acyclic subgraph containing the tree.
	g, src := gen.RandomDAG(30, 0.15, 9)
	out, st, err := BuildSignature(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cyclic {
		t.Fatal("cyclic output on a DAG input")
	}
	if out.M() < st.TreeEdges {
		t.Error("tree edges missing")
	}
	if out.M() > g.M() {
		t.Error("invented edges")
	}
}

func TestBuildSignatureAcceptsCrossBranch(t *testing.T) {
	// Junction j with two branches: j→a→b and j→c. Backward edge (c, b)?
	// σ: s=0, j=1, a=2, b=3, c=4 (DFS ascending ids). Edge (c, a):
	// junction j, wu1 = first child toward c = c(4)... condition
	// σ(v)=2 < σ(wu1)=4 ≤ σ(u)=4 ✓ accepted: c and a in different
	// branches, no cycle.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1) // s→j
	b.AddEdge(1, 2) // j→a
	b.AddEdge(2, 3) // a→b
	b.AddEdge(1, 4) // j→c
	b.AddEdge(4, 2) // c→a: the candidate backward edge
	g := b.MustBuild()
	out, st, err := BuildSignature(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasEdge(4, 2) {
		t.Errorf("cross-branch edge rejected (stats %+v)", st)
	}
	if st.Cyclic {
		t.Error("output cyclic")
	}
}

func TestBuildSignatureRejectsSameBranch(t *testing.T) {
	// Path s→a→b→c plus candidate (c, a): same branch (no junction), must
	// be rejected — it would close a cycle.
	g := graph.MustFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}})
	out, st, err := BuildSignature(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.HasEdge(3, 1) {
		t.Error("cycle-closing edge accepted")
	}
	if st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

func TestSignatureNeverBreaksTreeReachability(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.RandomDigraph(20, 70, seed)
		out, _, err := BuildSignature(g, 0)
		if err != nil {
			return false
		}
		want := g.Reachable(0)
		got := out.Reachable(0)
		for v := range want {
			if want[v] != got[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSignatureEquivalentToExact(t *testing.T) {
	// The junction-signature test is exact (see the BuildSignature doc
	// comment): both constructions drop exactly the DFS back edges, so
	// their outputs must be identical edge sets on arbitrary digraphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + int(rng.Int31n(20))
		g := gen.RandomDigraph(n, 5*n, seed)
		exact, _, err := Build(g, 0)
		if err != nil {
			return false
		}
		sig, st, err := BuildSignature(g, 0)
		if err != nil {
			return false
		}
		if st.Cyclic {
			t.Logf("seed %d: signature output cyclic", seed)
			return false
		}
		if !reflect.DeepEqual(exact.Edges(), sig.Edges()) {
			t.Logf("seed %d: edge sets differ (%d vs %d edges)", seed, exact.M(), sig.M())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCompareReportsEquivalence(t *testing.T) {
	g := gen.RandomDigraph(40, 200, 11)
	res, err := Compare(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SignatureOK || res.SignatureEdges != res.ExactEdges {
		t.Errorf("Compare = %+v, want equal acyclic outputs", res)
	}
}
