package acyclic

import (
	"testing"

	"repro/internal/graph"
)

// FuzzIncrementalDAG feeds arbitrary edge-insertion sequences into the
// Pearce–Kelly structure and checks its two invariants: the accepted edge
// set is always acyclic, and the maintained order is a topological order of
// it.
func FuzzIncrementalDAG(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 4, 4, 3, 3, 5, 0, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		d := NewIncrementalDAG(n)
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i]%n), int(data[i+1]%n)
			if d.AddEdge(u, v) && u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		if !g.IsDAG() {
			t.Fatal("accepted edges contain a cycle")
		}
		ord := d.Order()
		for _, e := range g.Edges() {
			if ord[e[0]] >= ord[e[1]] {
				t.Fatalf("order violates accepted edge %v", e)
			}
		}
	})
}
