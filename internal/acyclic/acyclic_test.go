package acyclic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestIncrementalRejectsCycle(t *testing.T) {
	d := NewIncrementalDAG(3)
	if !d.AddEdge(0, 1) || !d.AddEdge(1, 2) {
		t.Fatal("forward edges rejected")
	}
	if d.AddEdge(2, 0) {
		t.Fatal("cycle-closing edge accepted")
	}
	if d.AddEdge(1, 1) {
		t.Fatal("self-loop accepted")
	}
	// After rejection the structure still accepts consistent edges.
	if !d.AddEdge(0, 2) {
		t.Fatal("transitive edge rejected")
	}
}

func TestIncrementalReorders(t *testing.T) {
	// Insert edges against the identity order so the affected-region
	// machinery must run: 2→1, 1→0.
	d := NewIncrementalDAG(3)
	if !d.AddEdge(2, 1) {
		t.Fatal("2→1 rejected")
	}
	if !d.AddEdge(1, 0) {
		t.Fatal("1→0 rejected")
	}
	if d.AddEdge(0, 2) {
		t.Fatal("0→2 closes a cycle but was accepted")
	}
	ord := d.Order()
	if !(ord[2] < ord[1] && ord[1] < ord[0]) {
		t.Errorf("order not maintained: %v", ord)
	}
}

func TestIncrementalDuplicateEdge(t *testing.T) {
	d := NewIncrementalDAG(2)
	if !d.AddEdge(0, 1) || !d.AddEdge(0, 1) {
		t.Fatal("duplicate rejected")
	}
	if len(d.Out(0)) != 1 {
		t.Errorf("duplicate stored: %v", d.Out(0))
	}
}

func TestIncrementalRandomSequence(t *testing.T) {
	// Property: after any insertion sequence, accepted edges form a DAG
	// and ord is a topological order of them.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15
		d := NewIncrementalDAG(n)
		b := graph.NewBuilder(n)
		for i := 0; i < 60; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if d.AddEdge(u, v) {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		if !g.IsDAG() {
			t.Logf("seed %d: accepted edges contain a cycle", seed)
			return false
		}
		ord := d.Order()
		for _, e := range g.Edges() {
			if ord[e[0]] >= ord[e[1]] {
				t.Logf("seed %d: ord violates edge %v", seed, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildOnDAGKeepsEverything(t *testing.T) {
	// On an already-acyclic input rooted at its source, nothing between
	// visited nodes is rejected.
	g, src := gen.RandomDAG(40, 0.15, 5)
	dag, st, err := Build(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 0 {
		t.Errorf("rejected %d edges of a DAG", st.Rejected)
	}
	if dag.M() != g.M() {
		t.Errorf("edges: got %d, want %d", dag.M(), g.M())
	}
	if st.Visited != g.N() {
		t.Errorf("visited %d of %d", st.Visited, g.N())
	}
}

func TestBuildProperties(t *testing.T) {
	// On arbitrary digraphs: output is acyclic; contains a path from the
	// source to every DFS-visited node; and is maximal — re-adding any
	// rejected edge closes a cycle (checked via reachability).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 14 + int(rng.Int31n(10))
		g := gen.RandomDigraph(n, 4*n, seed)
		src := 0
		dag, st, err := Build(g, src)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !dag.IsDAG() {
			t.Logf("seed %d: output cyclic", seed)
			return false
		}
		reach := g.Reachable(src)
		dagReach := dag.Reachable(src)
		for v := 0; v < n; v++ {
			if reach[v] != dagReach[v] {
				t.Logf("seed %d: reachability mismatch at %d", seed, v)
				return false
			}
		}
		// Maximality: every original edge between visited nodes is either
		// present or would close a cycle (v already reaches u in dag).
		for _, e := range g.Edges() {
			u, v := e[0], e[1]
			if !reach[u] || !reach[v] || dag.HasEdge(u, v) {
				continue
			}
			if !dag.Reachable(v)[u] {
				t.Logf("seed %d: edge (%d,%d) omitted but acyclic-addable", seed, u, v)
				return false
			}
		}
		// Stats add up.
		if st.TreeEdges+st.ExtraEdges != dag.M() {
			t.Logf("seed %d: stats %+v vs M=%d", seed, st, dag.M())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuildBadSource(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}})
	if _, _, err := Build(g, -1); err == nil {
		t.Error("negative source accepted")
	}
	if _, _, err := Build(g, 9); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestBestRoot(t *testing.T) {
	// A 4-cycle with a pendant: every root sees all nodes of the cycle;
	// roots on the cycle additionally reach the pendant.
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 4}})
	dag, root, st, err := BestRoot(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Visited != 5 {
		t.Errorf("visited = %d, want 5", st.Visited)
	}
	if !dag.IsDAG() {
		t.Error("BestRoot output cyclic")
	}
	// Exactly one edge of the 4-cycle must be dropped: 4 + 1 − 1 = 4.
	if dag.M() != 4 {
		t.Errorf("M = %d, want 4", dag.M())
	}
	if root != 0 {
		// All cycle roots tie on visited count and edge count; id 0 wins.
		t.Errorf("root = %d, want 0 (deterministic tie-break)", root)
	}
}

func TestBestRootEmpty(t *testing.T) {
	b := graph.NewBuilder(0)
	g := b.MustBuild()
	if _, _, _, err := BestRoot(g); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestBuildPreservesLabels(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 1}})
	g, _ = g.WithLabels([]string{"a", "b", "c"})
	dag, _, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dag.HasLabels() || dag.Label(1) != "b" {
		t.Error("labels lost through Build")
	}
}
