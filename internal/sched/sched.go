// Package sched is the process-wide placement scheduler. Before it
// existed, every core.Place call owned its worker goroutines: the
// candidate-sharding evalPool spawned per call and the level-parallel
// passes spawned per level, so a tenant placing filters on hundreds of
// c-graphs paid goroutine startup per graph and oversubscribed the host
// with graphs × parallelism workers. sched inverts that ownership: one
// bounded pool per process executes the fine-grained work units — a chunk
// of a topological level, a shard of candidate gains, a whole
// sub-placement of a batch — from however many concurrent placements are
// in flight.
//
// The design is a helping scheduler with per-batch fairness:
//
//   - Tasks are submitted in a Batch. The submitter calls Wait, which
//     RUNS ITS OWN BATCH'S TASKS on the calling goroutine until none are
//     left. Progress therefore never depends on pool capacity: with zero
//     workers every batch degrades to serial inline execution, which is
//     also why nesting cannot deadlock (a pool worker running a
//     sub-placement task that submits its own inner batch just helps that
//     inner batch on the same goroutine).
//   - Idle pool workers steal queued tasks from any batch, picking
//     batches round-robin so one huge gang (a 500-graph fleet placement)
//     cannot starve a small interactive one: each runnable batch gives up
//     one task per scheduling turn.
//
// Determinism is untouched by construction: the scheduler only decides
// WHERE a task runs, never how work is split or reduced. Callers keep
// their serial chunking and left-to-right reduction, so placements remain
// bit-for-bit identical at every pool size (including zero).
package sched

import (
	"runtime"
	"sync"
	"time"
)

// Pool is a bounded work-stealing scheduler. The zero value is not usable;
// create pools with NewPool or share the process-wide Default pool.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond // wakes workers: runnable task, resize, or close
	batches []*Batch   // batches with queued tasks, in round-robin rotation
	rr      int        // next batch to serve
	target  int        // desired worker count
	live    int        // running workers
	queued  int        // tasks submitted and not yet started
	closed  bool
	// sampler, when installed, observes each task's queue wait (submit →
	// start) along with the submitting batch's tag — the tenant-
	// attribution hook. Tasks are only wrapped while a sampler is set, so
	// the default nil costs nothing — no clock reads, no extra closure.
	sampler func(tag string, wait time.Duration)
}

// NewPool starts a pool with the given number of worker goroutines.
// workers may be zero: the pool then adds no concurrency and every batch
// runs inline on its submitter, which is the degenerate case tests use to
// prove helping alone makes progress.
func NewPool(workers int) *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.Resize(workers)
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool, starting it with GOMAXPROCS
// workers on first use. Every placement path (level-parallel passes,
// candidate sharding, PlaceBatch gangs) schedules through it.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(runtime.GOMAXPROCS(0)) })
	return defaultPool
}

// SetDefaultWorkers resizes the process-wide pool (the fpd -sched-workers
// flag). n ≤ 0 resets to GOMAXPROCS.
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	Default().Resize(n)
}

// Resize sets the worker count, starting or retiring workers as needed.
// Shrinking takes effect as workers finish their current task; negative
// values mean zero.
func (p *Pool) Resize(workers int) {
	if workers < 0 {
		workers = 0
	}
	p.mu.Lock()
	p.target = workers
	for p.live < p.target {
		p.live++
		go p.worker()
	}
	p.mu.Unlock()
	p.cond.Broadcast() // excess workers notice the shrink
}

// Workers returns the current target worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// ChunkHint returns the chunk count a caller should split one span of
// level-parallel work into to keep every worker busy without
// oversplitting: the current target worker count, floored at 1.
// flow.Plan snapshots it when precomputing per-level chunk boundaries; it
// is a performance hint only and never affects results.
func (p *Pool) ChunkHint() int {
	if w := p.Workers(); w > 1 {
		return w
	}
	return 1
}

// SetQueueWaitSampler installs fn to observe every task's queue wait —
// the time from Batch.Go to the task starting, whether it starts on a
// stealing pool worker or on the submitter helping inline. tag is the
// submitting batch's tag (see Batch.SetTag; empty for untagged internal
// batches), which fpd uses to attribute scheduler wait to tenants on
// top of the fpd_sched_queue_wait_seconds histogram; nil uninstalls. fn
// runs on the executing goroutine just before the task and must be fast
// and concurrency-safe.
func (p *Pool) SetQueueWaitSampler(fn func(tag string, wait time.Duration)) {
	p.mu.Lock()
	p.sampler = fn
	p.mu.Unlock()
}

// QueueDepth returns the number of submitted tasks no goroutine has
// started yet, across all batches — the backlog gauge fpd surfaces in
// /metrics.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// Close retires every worker. Batches still waiting are not abandoned:
// their submitters keep helping inline, so Close never strands work. A
// closed pool still accepts batches (they just run helper-only).
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.target = 0
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Batch is one caller's gang of tasks. Submit with Go, then call Wait
// exactly once; the batch must not be reused after Wait returns.
type Batch struct {
	pool    *Pool
	tasks   []func() // queued, not yet started (FIFO)
	pending int      // submitted and not yet finished
	idle    *sync.Cond
	tag     string // attribution tag passed to the queue-wait sampler
}

// NewBatch creates an empty batch on the pool.
func (p *Pool) NewBatch() *Batch {
	return &Batch{pool: p, idle: sync.NewCond(&p.mu)}
}

// SetTag labels the batch for the pool's queue-wait sampler (fpd tags
// placement gangs with the submitting tenant). Purely observational —
// tags never affect scheduling order. Returns the batch for chaining;
// call before the first Go.
func (b *Batch) SetTag(tag string) *Batch {
	b.tag = tag
	return b
}

// Go submits one task. Tasks must not panic; they may themselves create
// and wait on new batches (nesting), but must never call Wait on the
// batch they belong to.
func (b *Batch) Go(fn func()) {
	p := b.pool
	p.mu.Lock()
	if sample := p.sampler; sample != nil {
		submitted := time.Now()
		task, tag := fn, b.tag
		fn = func() {
			sample(tag, time.Since(submitted))
			task()
		}
	}
	b.tasks = append(b.tasks, fn)
	b.pending++
	p.queued++
	if len(b.tasks) == 1 {
		p.batches = append(p.batches, b) // became runnable
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// Wait runs the batch's queued tasks on the calling goroutine (helping),
// then blocks until tasks stolen by pool workers have finished too. It
// returns when every submitted task has completed.
func (b *Batch) Wait() {
	p := b.pool
	p.mu.Lock()
	for b.pending > 0 {
		if fn := b.popOwnLocked(); fn != nil {
			p.mu.Unlock()
			fn()
			p.mu.Lock()
			b.taskDoneLocked()
			continue
		}
		// Own queue drained; the stragglers are running elsewhere.
		b.idle.Wait()
	}
	p.mu.Unlock()
}

// popOwnLocked removes the batch's next queued task, maintaining the
// pool's runnable rotation.
func (b *Batch) popOwnLocked() func() {
	if len(b.tasks) == 0 {
		return nil
	}
	fn := b.tasks[0]
	b.tasks[0] = nil
	b.tasks = b.tasks[1:]
	b.pool.queued--
	if len(b.tasks) == 0 {
		b.pool.removeLocked(b)
	}
	return fn
}

// taskDoneLocked retires one finished task, waking the submitter when the
// batch is complete.
func (b *Batch) taskDoneLocked() {
	b.pending--
	if b.pending == 0 {
		b.idle.Broadcast()
	}
}

// removeLocked drops a batch from the runnable rotation, keeping the
// round-robin cursor on the same successor.
func (p *Pool) removeLocked(b *Batch) {
	for i, cur := range p.batches {
		if cur == b {
			p.batches = append(p.batches[:i], p.batches[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			return
		}
	}
}

// stealLocked takes one task from the next runnable batch in round-robin
// order.
func (p *Pool) stealLocked() (*Batch, func()) {
	if len(p.batches) == 0 {
		return nil, nil
	}
	if p.rr >= len(p.batches) {
		p.rr = 0
	}
	b := p.batches[p.rr]
	fn := b.tasks[0]
	b.tasks[0] = nil
	b.tasks = b.tasks[1:]
	p.queued--
	if len(b.tasks) == 0 {
		p.removeLocked(b)
	} else {
		p.rr++ // fairness: next turn serves the next batch
	}
	return b, fn
}

// worker is the pool goroutine loop: steal fairly, run, repeat; exit on
// close or shrink.
func (p *Pool) worker() {
	p.mu.Lock()
	for {
		if p.closed || p.live > p.target {
			p.live--
			p.mu.Unlock()
			return
		}
		b, fn := p.stealLocked()
		if fn == nil {
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		fn()
		p.mu.Lock()
		b.taskDoneLocked()
	}
}
