package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestZeroWorkerPoolCompletesInline proves the helping invariant: a pool
// with no workers still completes every batch, entirely on the submitter.
func TestZeroWorkerPoolCompletesInline(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	var ran atomic.Int64
	b := p.NewBatch()
	for i := 0; i < 100; i++ {
		b.Go(func() { ran.Add(1) })
	}
	b.Wait()
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
	if d := p.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after Wait", d)
	}
}

// TestTasksRunExactlyOnce hammers a small pool with many batches from many
// submitters and checks no task is lost or double-run (run under -race).
func TestTasksRunExactlyOnce(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const submitters, tasks = 8, 200
	var wg sync.WaitGroup
	counts := make([][]atomic.Int64, submitters)
	for s := range counts {
		counts[s] = make([]atomic.Int64, tasks)
	}
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			b := p.NewBatch()
			for i := 0; i < tasks; i++ {
				i := i
				b.Go(func() { counts[s][i].Add(1) })
			}
			b.Wait()
		}(s)
	}
	wg.Wait()
	for s := range counts {
		for i := range counts[s] {
			if got := counts[s][i].Load(); got != 1 {
				t.Fatalf("submitter %d task %d ran %d times", s, i, got)
			}
		}
	}
}

// TestNestedBatches checks a task may itself submit and wait on an inner
// batch on the same pool without deadlock — the shape PlaceBatch creates
// (sub-placement tasks whose gain evaluations are inner batches).
func TestNestedBatches(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int64
	outer := p.NewBatch()
	for i := 0; i < 6; i++ {
		outer.Go(func() {
			inner := p.NewBatch()
			for j := 0; j < 10; j++ {
				inner.Go(func() { ran.Add(1) })
			}
			inner.Wait()
		})
	}
	done := make(chan struct{})
	go func() { outer.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested batches deadlocked")
	}
	if ran.Load() != 60 {
		t.Fatalf("ran %d inner tasks, want 60", ran.Load())
	}
}

// TestRoundRobinFairness checks a small batch is not starved behind a big
// one: with one worker and the big batch's submitter parked (not helping
// yet), the worker must alternate between batches, so the small batch
// finishes while most of the big one is still queued.
func TestRoundRobinFairness(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	var bigDoneBeforeSmall atomic.Int64
	gate := make(chan struct{}) // holds the worker until both batches queue
	big := p.NewBatch()
	big.Go(func() { <-gate }) // first big task parks the lone worker
	const bigTasks = 100
	for i := 1; i < bigTasks; i++ {
		big.Go(func() { bigDoneBeforeSmall.Add(1) })
	}
	small := p.NewBatch()
	smallDone := make(chan int64, 1)
	small.Go(func() { smallDone <- bigDoneBeforeSmall.Load() })

	close(gate)
	// Let the lone worker drain alone until the small batch's task has
	// run: calling Wait first would add helping submitters whose relative
	// scheduling is nondeterministic, letting big's helper race past the
	// worker's round-robin.
	ahead := <-smallDone
	big.Wait()
	small.Wait()

	if ahead > bigTasks/2 {
		t.Fatalf("small batch waited behind %d of %d big tasks — not fair", ahead, bigTasks)
	}
}

// TestResizeGrowShrink checks workers can be added and retired live, and
// that a shrink to zero still lets batches complete via helping.
func TestResizeGrowShrink(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.Resize(4)
	if w := p.Workers(); w != 4 {
		t.Fatalf("workers = %d, want 4", w)
	}
	p.Resize(0)
	// Retired workers park in cond.Wait until signaled; submit work to
	// flush them out and prove helping still completes it.
	var ran atomic.Int64
	b := p.NewBatch()
	for i := 0; i < 50; i++ {
		b.Go(func() { ran.Add(1) })
	}
	b.Wait()
	if ran.Load() != 50 {
		t.Fatalf("ran %d, want 50", ran.Load())
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		p.mu.Lock()
		live := p.live
		p.mu.Unlock()
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still live after Resize(0)", live)
		}
		p.cond.Broadcast()
		time.Sleep(time.Millisecond)
	}
}

// TestCloseRetiresWorkers checks Close stops the pool goroutines and that
// batches submitted after Close still complete inline.
func TestCloseRetiresWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)
	p.Close()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("workers leaked: %d goroutines, started at %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
	var ran atomic.Int64
	b := p.NewBatch()
	b.Go(func() { ran.Add(1) })
	b.Wait()
	if ran.Load() != 1 {
		t.Fatal("batch on closed pool did not run inline")
	}
}

// TestDefaultPoolSingleton checks Default returns one shared pool and
// SetDefaultWorkers resizes it.
func TestDefaultPoolSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default not a singleton")
	}
	old := Default().Workers()
	SetDefaultWorkers(old + 2)
	if got := Default().Workers(); got != old+2 {
		t.Fatalf("workers = %d, want %d", got, old+2)
	}
	SetDefaultWorkers(0) // reset to GOMAXPROCS
	if got := Default().Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset workers = %d, want GOMAXPROCS", got)
	}
}

// TestQueueWaitSampler: every task submitted while a sampler is
// installed produces exactly one non-negative sample carrying the
// batch's tag — whether it runs on a pool worker or inline on the
// helping submitter — and uninstalling stops sampling.
func TestQueueWaitSampler(t *testing.T) {
	for _, workers := range []int{0, 2} {
		p := NewPool(workers)
		defer p.Close()
		var samples atomic.Int64
		var negative atomic.Int64
		var wrongTag atomic.Int64
		p.SetQueueWaitSampler(func(tag string, wait time.Duration) {
			samples.Add(1)
			if wait < 0 {
				negative.Add(1)
			}
			if tag != "tenant-a" {
				wrongTag.Add(1)
			}
		})
		const tasks = 50
		b := p.NewBatch().SetTag("tenant-a")
		var ran atomic.Int64
		for i := 0; i < tasks; i++ {
			b.Go(func() { ran.Add(1) })
		}
		b.Wait()
		if wrongTag.Load() != 0 {
			t.Errorf("workers=%d: %d samples with wrong tag", workers, wrongTag.Load())
		}
		if ran.Load() != tasks {
			t.Fatalf("workers=%d: ran %d tasks, want %d", workers, ran.Load(), tasks)
		}
		if samples.Load() != tasks {
			t.Errorf("workers=%d: %d samples, want %d", workers, samples.Load(), tasks)
		}
		if negative.Load() != 0 {
			t.Errorf("workers=%d: %d negative waits", workers, negative.Load())
		}

		p.SetQueueWaitSampler(nil)
		b2 := p.NewBatch()
		b2.Go(func() {})
		b2.Wait()
		if samples.Load() != tasks {
			t.Errorf("workers=%d: sampler fired after uninstall", workers)
		}
	}
}
