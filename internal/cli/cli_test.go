package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFpexpList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpexp([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"fig1", "fig11", "prop1", "abl-mc"} {
		if !strings.Contains(got, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestFpexpSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpexp([]string{"-exp", "fig2", "-quick"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Greedy_1 failure") {
		t.Errorf("fig2 output missing title:\n%s", out.String())
	}
}

func TestFpexpCSV(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpexp([]string{"-exp", "fig3", "-csv", "-quick"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "node,I(v)") {
		t.Errorf("csv output wrong:\n%s", out.String())
	}
}

func TestFpexpPlot(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpexp([]string{"-exp", "fig7", "-quick", "-plot"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "A=G_ALL") {
		t.Errorf("plot legend missing:\n%s", out.String())
	}
}

func TestFpexpUnknownID(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpexp([]string{"-exp", "nope"}, &out, &errw); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFpexpBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpexp([]string{"-definitely-not-a-flag"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestFpgenToStdout(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpgen([]string{"-dataset", "fig1"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "s x") {
		t.Errorf("fig1 edge list missing labeled edge:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "7 nodes, 9 edges") {
		t.Errorf("summary missing: %s", errw.String())
	}
}

func TestFpgenToFileAndFpplaceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quote.edges")
	var out, errw bytes.Buffer
	if err := RunFpgen([]string{"-dataset", "quote", "-out", path, "-seed", "3"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errw.Reset()
	if err := RunFpplace([]string{"-in", path, "-k", "4", "-algo", "gall"}, nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FR(A):      1.0000") {
		t.Errorf("expected perfect FR with 4 filters on quote:\n%s", out.String())
	}
}

func TestFpgenErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpgen([]string{"-dataset", "nope"}, &out, &errw); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := RunFpgen([]string{"-dataset", "twitter", "-scale", "7"}, &out, &errw); err == nil {
		t.Error("bad scale accepted")
	}
	if err := RunFpgen([]string{"-dataset", "quote", "-out", "/no/such/dir/x.edges"}, &out, &errw); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestFpplaceFromStdin(t *testing.T) {
	edges := "0 1\n0 2\n1 3\n2 3\n3 4\n"
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-k", "1", "-algo", "gall", "-q"},
		strings.NewReader(edges), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "3" {
		t.Errorf("quiet output = %q, want the junction node 3", out.String())
	}
}

func TestFpplaceBatchMultiFile(t *testing.T) {
	dir := t.TempDir()
	diamond := "0 1\n0 2\n1 3\n2 3\n3 4\n"
	wide := "0 1\n0 2\n0 3\n1 4\n2 4\n3 4\n4 5\n"
	paths := []string{filepath.Join(dir, "a.edges"), filepath.Join(dir, "b.edges")}
	for i, text := range []string{diamond, wide} {
		if err := os.WriteFile(paths[i], []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Quiet batch output: one "file<TAB>node" line per placed filter,
	// each graph's placement identical to its solo run (junction nodes 3
	// and 4 respectively).
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-k", "1", "-algo", "gall", "-q", paths[0], paths[1]},
		strings.NewReader(""), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(out.String())
	want := paths[0] + "\t3\n" + paths[1] + "\t4"
	if got != want {
		t.Errorf("batch quiet output = %q, want %q", got, want)
	}
	if !strings.Contains(errw.String(), "batch-placed 2 graphs") {
		t.Errorf("missing batch summary: %s", errw.String())
	}

	// Verbose mode prints one report block per file.
	out.Reset()
	errw.Reset()
	if err := RunFpplace([]string{"-in", paths[0], "-k", "1", paths[1]},
		strings.NewReader(""), &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if !strings.Contains(out.String(), "=== "+p) {
			t.Errorf("verbose batch output missing block for %s:\n%s", p, out.String())
		}
	}
}

func TestFpplaceBatchRejectsSingleFileModes(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(p, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-acyclic", p, p},
		{"-impacts", p, p},
		{"-algo", "tree", p, p},
		{"-in", "-", p},
		{p, "-"},
	} {
		if err := RunFpplace(args, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted in batch mode", args)
		}
	}
}

func TestFpplaceImpacts(t *testing.T) {
	edges := "0 1\n0 2\n1 3\n2 3\n3 4\n"
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-impacts"}, strings.NewReader(edges), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3     1") {
		t.Errorf("impact table missing node 3:\n%s", out.String())
	}
}

func TestFpplaceAcyclicStdin(t *testing.T) {
	// Cycle 1↔2; must be repaired before the model accepts it.
	edges := "0 1\n1 2\n2 1\n2 3\n"
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-acyclic", "-source", "0", "-k", "2"},
		strings.NewReader(edges), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "1 rejected") {
		t.Errorf("acyclic stats missing:\n%s", errw.String())
	}
}

func TestFpplaceTreeAlgo(t *testing.T) {
	// Source 3 feeding a 3-node path (a c-tree).
	edges := "3 0\n3 1\n3 2\n0 1\n1 2\n"
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-algo", "tree", "-k", "1"},
		strings.NewReader(edges), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "algorithm:  tree") {
		t.Errorf("tree output wrong:\n%s", out.String())
	}
}

func TestFpplaceErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpplace([]string{}, nil, &out, &errw); err == nil {
		t.Error("missing -in accepted")
	}
	if err := RunFpplace([]string{"-in", "/no/such/file"}, nil, &out, &errw); err == nil {
		t.Error("missing file accepted")
	}
	if err := RunFpplace([]string{"-in", "-", "-algo", "nope"},
		strings.NewReader("0 1\n"), &out, &errw); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := RunFpplace([]string{"-in", "-", "-engine", "nope"},
		strings.NewReader("0 1\n"), &out, &errw); err == nil {
		t.Error("unknown engine accepted")
	}
	// Cyclic input without -acyclic must fail at model construction.
	if err := RunFpplace([]string{"-in", "-"},
		strings.NewReader("0 1\n1 0\n"), &out, &errw); err == nil {
		t.Error("cyclic input accepted without -acyclic")
	}
}

func TestFpplaceBigEngine(t *testing.T) {
	edges := "0 1\n0 2\n1 3\n2 3\n3 4\n"
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-engine", "big", "-k", "1"},
		strings.NewReader(edges), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F(A):       1") {
		t.Errorf("big engine output wrong:\n%s", out.String())
	}
}

func TestFpplaceWeighted(t *testing.T) {
	edges := "0 1 0.5\n0 2 0.5\n1 3 1.0\n2 3 1.0\n3 4 1.0\n3 5 1.0\n"
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-weighted", "-k", "1"},
		strings.NewReader(edges), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	// Expected copies at node 3 = 1.0; no node exceeds 1 in expectation,
	// so no filter helps and Φ is reported in expectation.
	if !strings.Contains(out.String(), "Φ(∅,V):     4") {
		t.Errorf("expected-value Φ wrong:\n%s", out.String())
	}
	// Weighted + big engine is rejected.
	if err := RunFpplace([]string{"-in", "-", "-weighted", "-engine", "big"},
		strings.NewReader(edges), &out, &errw); err == nil {
		t.Error("weighted + big engine accepted")
	}
}

func TestFpplaceDOTOutput(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "out.dot")
	edges := "0 1\n0 2\n1 3\n2 3\n3 4\n"
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-k", "1", "-dot", dot},
		strings.NewReader(edges), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fillcolor=gold") {
		t.Errorf("DOT output missing highlighted filter:\n%s", data)
	}
}

func TestFpplaceRandomAlgos(t *testing.T) {
	edges := "0 1\n0 2\n1 3\n2 3\n3 4\n"
	for _, algo := range []string{"randk", "randi", "randw", "gmax", "g1", "gl", "celf", "prop1"} {
		var out, errw bytes.Buffer
		err := RunFpplace([]string{"-in", "-", "-algo", algo, "-k", "2", "-stats"},
			strings.NewReader(edges), &out, &errw)
		if err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}
