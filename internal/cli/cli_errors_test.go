package cli

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// These tests cover the entrypoint error paths the original suite left
// untested, so CLI regressions surface as test failures instead of
// runtime surprises.

func TestFpgenBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpgen([]string{"-definitely-not-a-flag"}, &out, &errw); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestFpplaceBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpplace([]string{"-definitely-not-a-flag"}, nil, &out, &errw); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestFpplaceGarbageInput(t *testing.T) {
	var out, errw bytes.Buffer
	if err := RunFpplace([]string{"-in", "-"},
		strings.NewReader("0\n"), &out, &errw); err == nil {
		t.Error("malformed edge list accepted")
	}
}

func TestFpplaceWeightedAcyclicRejected(t *testing.T) {
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-weighted", "-acyclic"},
		strings.NewReader("0 1 0.5\n"), &out, &errw)
	if err == nil {
		t.Error("-weighted with -acyclic accepted")
	}
}

func TestFpplaceTreeNeedsSingleSource(t *testing.T) {
	// Two in-degree-0 nodes feeding node 2: the tree DP must refuse.
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-algo", "tree"},
		strings.NewReader("0 2\n1 2\n"), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "exactly one source") {
		t.Errorf("err = %v, want single-source complaint", err)
	}
}

func TestFpplaceTreeOnNonTree(t *testing.T) {
	// Single source but a diamond, not a communication tree.
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-algo", "tree", "-k", "1"},
		strings.NewReader("0 1\n0 2\n1 3\n2 3\n"), &out, &errw)
	if err == nil {
		t.Error("tree DP accepted a non-tree graph")
	}
}

func TestFpplaceDOTUnwritable(t *testing.T) {
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-k", "1", "-dot", filepath.Join("/no/such/dir", "x.dot")},
		strings.NewReader("0 1\n0 2\n1 3\n2 3\n"), &out, &errw)
	if err == nil {
		t.Error("unwritable -dot path accepted")
	}
}

func TestFpplaceAcyclicBadSource(t *testing.T) {
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-acyclic", "-source", "99"},
		strings.NewReader("0 1\n1 0\n"), &out, &errw)
	if err == nil {
		t.Error("out-of-range -source accepted")
	}
}

func TestFpplaceSourceWithInEdges(t *testing.T) {
	var out, errw bytes.Buffer
	err := RunFpplace([]string{"-in", "-", "-source", "1"},
		strings.NewReader("0 1\n1 2\n"), &out, &errw)
	if err == nil {
		t.Error("source with in-edges accepted")
	}
}

func TestFpexpRunErrorMidStream(t *testing.T) {
	// A valid id followed by an invalid one: the error must surface after
	// the first experiment already printed.
	var out, errw bytes.Buffer
	err := RunFpexp([]string{"-exp", "fig2,bogus", "-quick"}, &out, &errw)
	if err == nil {
		t.Error("bogus id in list accepted")
	}
	if !strings.Contains(out.String(), "Greedy_1") {
		t.Error("first experiment did not run before the failure")
	}
}
