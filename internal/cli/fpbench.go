package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchmeta"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

// RunFpbench is the fpbench command: measure the approximate placement
// engine against exact CELF across graph sizes and emit the comparison
// as a BENCH_approx.json-shaped artifact, host-stamped so the
// measurement context is machine-checkable. -suite coarsen instead
// measures multilevel placement (coarsen + quotient CELF + refine)
// against approx-celf and writes BENCH_coarsen.json.
func RunFpbench(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite   = fs.String("suite", "approx", "benchmark suite: approx (exact vs approx-celf) or coarsen (ml-celf vs approx-celf)")
		out     = fs.String("out", "", "output artifact path (default BENCH_<suite>.json; '-' for stdout)")
		k       = fs.Int("k", 20, "filter budget per placement")
		quality = fs.Float64("quality", 0, "approx target relative error (0 = engine default)")
		procs   = fs.Int("procs", 1, "parallel marginal-gain workers (results identical at any setting)")
		quick   = fs.Bool("quick", false, "tiny graphs only — CI smoke mode")
		huge    = fs.Bool("huge", true, "include the approx-only graph exact placement cannot handle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *suite {
	case "approx":
		if *out == "" {
			*out = "BENCH_approx.json"
		}
	case "coarsen":
		if *out == "" {
			*out = "BENCH_coarsen.json"
		}
		return runFpbenchCoarsen(*out, *k, *quality, *procs, *quick, *huge, stdout, stderr)
	default:
		return fmt.Errorf("fpbench: unknown suite %q (have approx, coarsen)", *suite)
	}

	type caseSpec struct {
		name  string
		build func() (*graph.Digraph, int)
		exact bool // also run exact CELF for the head-to-head
	}
	var cases []caseSpec
	if *quick {
		cases = []caseSpec{
			{"twitter-1k", func() (*graph.Digraph, int) { return gen.TwitterLike(0.01, 1) }, true},
			{"powerlaw-5k", func() (*graph.Digraph, int) { return gen.PowerLawDAG(5_000, 6, 1) }, true},
		}
	} else {
		cases = []caseSpec{
			{"twitter-9k", func() (*graph.Digraph, int) { return gen.TwitterLike(0.1, 1) }, true},
			{"twitter-45k", func() (*graph.Digraph, int) { return gen.TwitterLike(0.5, 1) }, true},
			{"twitter-90k", func() (*graph.Digraph, int) { return gen.TwitterLike(1.0, 1) }, true},
			{"powerlaw-200k", func() (*graph.Digraph, int) { return gen.PowerLawDAG(200_000, 6, 1) }, true},
		}
		if *huge {
			cases = append(cases, caseSpec{
				"powerlaw-1m", func() (*graph.Digraph, int) { return gen.PowerLawDAG(1_000_000, 6, 1) }, false})
		}
	}

	type sideReport struct {
		Seconds     float64        `json:"seconds"`
		F           float64        `json:"f"`
		ExactEvals  int            `json:"exact_evals"`
		SampledEval int            `json:"sampled_evals,omitempty"`
		PhiCI       *flow.MCResult `json:"phi_ci,omitempty"`
	}
	type caseReport struct {
		Nodes          int         `json:"nodes"`
		Edges          int         `json:"edges"`
		Exact          *sideReport `json:"exact,omitempty"`
		Approx         sideReport  `json:"approx"`
		ObjectiveRatio float64     `json:"objective_ratio,omitempty"`
		ExactEvalRatio float64     `json:"exact_eval_ratio,omitempty"`
		Speedup        float64     `json:"speedup,omitempty"`
	}

	ctx := context.Background()
	results := map[string]caseReport{}
	for _, cs := range cases {
		g, _ := cs.build()
		m, err := flow.NewModel(g, nil)
		if err != nil {
			return fmt.Errorf("fpbench: %s: %w", cs.name, err)
		}
		ev := flow.NewFloat(m)
		rep := caseReport{Nodes: g.N(), Edges: g.M()}
		fmt.Fprintf(stderr, "fpbench: %s (%d nodes, %d edges)\n", cs.name, g.N(), g.M())

		if cs.exact {
			t0 := time.Now()
			res, err := core.Place(ctx, ev, *k, core.Options{Strategy: core.StrategyCELF, Parallelism: *procs})
			if err != nil {
				return fmt.Errorf("fpbench: %s exact: %w", cs.name, err)
			}
			rep.Exact = &sideReport{
				Seconds:    time.Since(t0).Seconds(),
				F:          ev.F(flow.MaskOf(g.N(), res.Filters)),
				ExactEvals: res.Stats.GainEvaluations,
			}
			fmt.Fprintf(stderr, "  exact  celf: %.3fs, F=%.6g, %d exact evals\n",
				rep.Exact.Seconds, rep.Exact.F, rep.Exact.ExactEvals)
		}

		t0 := time.Now()
		res, err := core.Place(ctx, ev, *k, core.Options{
			Strategy: core.StrategyApproxCELF, Parallelism: *procs, Quality: *quality})
		if err != nil {
			return fmt.Errorf("fpbench: %s approx: %w", cs.name, err)
		}
		rep.Approx = sideReport{
			Seconds:     time.Since(t0).Seconds(),
			F:           ev.F(flow.MaskOf(g.N(), res.Filters)),
			ExactEvals:  res.Stats.GainEvaluations,
			SampledEval: res.Stats.SampledEvaluations,
			PhiCI:       res.PhiCI,
		}
		fmt.Fprintf(stderr, "  approx celf: %.3fs, F=%.6g, %d exact + %d sampled evals, Φ̂(A) %.6g ± %.3g\n",
			rep.Approx.Seconds, rep.Approx.F, rep.Approx.ExactEvals, rep.Approx.SampledEval,
			res.PhiCI.Mean, res.PhiCI.CI95())

		if rep.Exact != nil {
			if rep.Exact.F > 0 {
				rep.ObjectiveRatio = rep.Approx.F / rep.Exact.F
			}
			if rep.Approx.ExactEvals > 0 {
				rep.ExactEvalRatio = float64(rep.Exact.ExactEvals) / float64(rep.Approx.ExactEvals)
			}
			if rep.Approx.Seconds > 0 {
				rep.Speedup = rep.Exact.Seconds / rep.Approx.Seconds
			}
		}
		results[cs.name] = rep
		ev.ReleaseScratch()
	}

	doc := map[string]any{
		"benchmark": "fpbench: exact CELF vs approx-celf (sampled estimates + lazy exact re-check)",
		"description": "Head-to-head placement cost: exact CELF (closed-form init + lazy exact re-checks) vs the " +
			"approximate engine (sampled-estimate heap seed, exact re-checks only at heap tops). 'f' is ALWAYS the " +
			"exact objective of the returned filter set, evaluated post-hoc on the float engine, so objective_ratio " +
			"is an exact-vs-exact comparison; phi_ci is the sampling engine's own confidence interval on Φ(A). " +
			"exact_eval_ratio = exact CELF's oracle evaluations / approx's — the ≥5× acceptance property. The " +
			"largest case runs approx only: at that size an exact V-per-round profile is off the table, which is " +
			"the regime the approximate engine exists for.",
		"command":  "go run ./cmd/fpbench" + map[bool]string{true: " -quick", false: ""}[*quick],
		"host":     benchmeta.Current(),
		"recorded": time.Now().UTC().Format("2006-01-02"),
		"k":        *k,
		"quality":  *quality,
		"results":  results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fmt.Errorf("fpbench: %w", err)
	}
	fmt.Fprintf(stderr, "fpbench: wrote %s\n", *out)
	return nil
}
