package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchmeta"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

// coarsenSide is one placement run in the coarsen suite. F is always
// the exact objective of the returned filter set, evaluated post-hoc on
// the full (uncoarsened) float engine, so every cross-side comparison
// is exact-vs-exact regardless of how the filters were chosen.
type coarsenSide struct {
	Seconds     float64            `json:"seconds"`
	F           float64            `json:"f"`
	ExactEvals  int                `json:"exact_evals"`
	SampledEval int                `json:"sampled_evals,omitempty"`
	Coarsen     *flow.CoarsenStats `json:"coarsen,omitempty"`
}

type coarsenReport struct {
	Nodes    int         `json:"nodes"`
	Edges    int         `json:"edges"`
	Approx   coarsenSide `json:"approx"`
	Lossless coarsenSide `json:"mlcelf_lossless"`
	Bounded  coarsenSide `json:"mlcelf_bounded"`
	// Speedups are end-to-end (coarsen + quotient solve + refine) over
	// the approx-celf baseline on the same graph.
	SpeedupLossless float64 `json:"speedup_lossless,omitempty"`
	SpeedupBounded  float64 `json:"speedup_bounded,omitempty"`
	// Loss*Pct = 100·(F_approx − F_ml)/F_approx; negative means the
	// multilevel run found a strictly better filter set.
	LossLosslessPct float64 `json:"loss_lossless_pct"`
	LossBoundedPct  float64 `json:"loss_bounded_pct"`
	// LosslessExactMatchesCELF (small cases only): ml-celf with an exact
	// quotient solve returned the bit-identical objective — and filter
	// set — that exact CELF returns on the uncoarsened graph.
	LosslessExactMatchesCELF *bool `json:"lossless_exact_matches_celf,omitempty"`
}

// runFpbenchCoarsen measures multilevel placement against the
// approx-celf baseline on chain-heavy and power-law graphs.
func runFpbenchCoarsen(out string, k int, quality float64, procs int, quick, huge bool, stdout, stderr io.Writer) error {
	type caseSpec struct {
		name  string
		build func() (*graph.Digraph, int)
		exact bool // cheap enough to pin lossless-exact == CELF bit equality
	}
	var cases []caseSpec
	if quick {
		cases = []caseSpec{
			{"chain-5k", func() (*graph.Digraph, int) { return gen.ChainDAG(5_000, 8, 1) }, true},
			{"powerlaw-5k", func() (*graph.Digraph, int) { return gen.PowerLawDAG(5_000, 6, 1) }, true},
		}
	} else {
		cases = []caseSpec{
			{"chain-50k", func() (*graph.Digraph, int) { return gen.ChainDAG(50_000, 8, 1) }, true},
			{"chain-200k", func() (*graph.Digraph, int) { return gen.ChainDAG(200_000, 8, 1) }, false},
			{"powerlaw-50k", func() (*graph.Digraph, int) { return gen.PowerLawDAG(50_000, 6, 1) }, false},
			{"powerlaw-200k", func() (*graph.Digraph, int) { return gen.PowerLawDAG(200_000, 6, 1) }, false},
		}
		if huge {
			cases = append(cases, caseSpec{
				"chain-1m", func() (*graph.Digraph, int) { return gen.ChainDAG(1_000_000, 8, 1) }, false})
		}
	}

	// The quotient solve goes through the same quality knob as the
	// baseline; resolve the engine default explicitly so ml-celf's
	// dispatch (exact when Quality == 0) samples at the same target.
	q := quality
	if q == 0 {
		q = core.DefaultQuality
	}

	ctx := context.Background()
	run := func(ev *flow.FloatEngine, n int, opts core.Options) (coarsenSide, []int, error) {
		t0 := time.Now()
		res, err := core.Place(ctx, ev, k, opts)
		if err != nil {
			return coarsenSide{}, nil, err
		}
		return coarsenSide{
			Seconds:     time.Since(t0).Seconds(),
			F:           ev.F(flow.MaskOf(n, res.Filters)),
			ExactEvals:  res.Stats.GainEvaluations,
			SampledEval: res.Stats.SampledEvaluations,
			Coarsen:     res.CoarsenStats,
		}, res.Filters, nil
	}

	results := map[string]coarsenReport{}
	for _, cs := range cases {
		g, _ := cs.build()
		m, err := flow.NewModel(g, nil)
		if err != nil {
			return fmt.Errorf("fpbench: %s: %w", cs.name, err)
		}
		ev := flow.NewFloat(m)
		rep := coarsenReport{Nodes: g.N(), Edges: g.M()}
		fmt.Fprintf(stderr, "fpbench: %s (%d nodes, %d edges)\n", cs.name, g.N(), g.M())

		if rep.Approx, _, err = run(ev, g.N(), core.Options{
			Strategy: core.StrategyApproxCELF, Parallelism: procs, Quality: q}); err != nil {
			return fmt.Errorf("fpbench: %s approx: %w", cs.name, err)
		}
		fmt.Fprintf(stderr, "  approx celf:     %.3fs, F=%.6g\n", rep.Approx.Seconds, rep.Approx.F)

		if rep.Lossless, _, err = run(ev, g.N(), core.Options{
			Strategy: core.StrategyMLCELF, Parallelism: procs, Quality: q,
			Coarsen: flow.CoarsenOptions{Lossless: true}}); err != nil {
			return fmt.Errorf("fpbench: %s ml-celf lossless: %w", cs.name, err)
		}
		st := rep.Lossless.Coarsen
		fmt.Fprintf(stderr, "  ml-celf lossless: %.3fs, F=%.6g (%d → %d nodes)\n",
			rep.Lossless.Seconds, rep.Lossless.F, st.NodesBefore, st.NodesAfter)

		if rep.Bounded, _, err = run(ev, g.N(), core.Options{
			Strategy: core.StrategyMLCELF, Parallelism: procs, Quality: q,
			Coarsen: flow.CoarsenOptions{}}); err != nil {
			return fmt.Errorf("fpbench: %s ml-celf bounded: %w", cs.name, err)
		}
		st = rep.Bounded.Coarsen
		fmt.Fprintf(stderr, "  ml-celf bounded:  %.3fs, F=%.6g (%d → %d nodes)\n",
			rep.Bounded.Seconds, rep.Bounded.F, st.NodesBefore, st.NodesAfter)

		if rep.Lossless.Seconds > 0 {
			rep.SpeedupLossless = rep.Approx.Seconds / rep.Lossless.Seconds
		}
		if rep.Bounded.Seconds > 0 {
			rep.SpeedupBounded = rep.Approx.Seconds / rep.Bounded.Seconds
		}
		if rep.Approx.F > 0 {
			rep.LossLosslessPct = 100 * (rep.Approx.F - rep.Lossless.F) / rep.Approx.F
			rep.LossBoundedPct = 100 * (rep.Approx.F - rep.Bounded.F) / rep.Approx.F
		}

		if cs.exact {
			// Bit-exactness pin: when only lossless rules fire and the
			// quotient is solved exactly, ml-celf IS CELF — same filter
			// ids in the same order, same objective to the last bit.
			_, celfFilters, err := run(ev, g.N(), core.Options{
				Strategy: core.StrategyCELF, Parallelism: procs})
			if err != nil {
				return fmt.Errorf("fpbench: %s exact celf: %w", cs.name, err)
			}
			mlSide, mlFilters, err := run(ev, g.N(), core.Options{
				Strategy: core.StrategyMLCELF, Parallelism: procs,
				Coarsen: flow.CoarsenOptions{Lossless: true}})
			if err != nil {
				return fmt.Errorf("fpbench: %s ml-celf exact: %w", cs.name, err)
			}
			match := len(mlFilters) == len(celfFilters)
			for i := 0; match && i < len(mlFilters); i++ {
				match = mlFilters[i] == celfFilters[i]
			}
			match = match && mlSide.F == ev.F(flow.MaskOf(g.N(), celfFilters))
			rep.LosslessExactMatchesCELF = &match
			fmt.Fprintf(stderr, "  lossless-exact == celf: %v\n", match)
		}

		results[cs.name] = rep
		ev.ReleaseScratch()
	}

	doc := map[string]any{
		"benchmark": "fpbench -suite coarsen: multilevel placement (ml-celf) vs approx-celf",
		"description": "End-to-end placement cost of multilevel CELF — lossless/bounded graph coarsening, CELF on the " +
			"quotient, projection, and (bounded mode) per-fiber exact refinement — against the approx-celf baseline on " +
			"the full graph, both at the same sampling quality. 'f' is ALWAYS the exact objective of the returned " +
			"filter set evaluated post-hoc on the uncoarsened float engine, so loss_*_pct compares exact objectives. " +
			"speedup_* is wall-clock including the contraction itself. Chain-heavy graphs are the headline regime: " +
			"lossless folding alone collapses the relay chains, so the quotient solve touches a fraction of the " +
			"nodes; the acceptance bar is ≥3× over approx-celf at ≤2% loss on chain graphs of ≥200k nodes. " +
			"lossless_exact_matches_celf pins the quality contract on the cases small enough to run exact CELF: " +
			"with only Φ-exact rules firing, ml-celf returns CELF's filters bit-for-bit.",
		"command":  "go run ./cmd/fpbench -suite coarsen" + map[bool]string{true: " -quick", false: ""}[quick],
		"host":     benchmeta.Current(),
		"recorded": time.Now().UTC().Format("2006-01-02"),
		"k":        k,
		"quality":  q,
		"results":  results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fmt.Errorf("fpbench: %w", err)
	}
	fmt.Fprintf(stderr, "fpbench: wrote %s\n", out)
	return nil
}
