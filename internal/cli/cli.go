// Package cli implements the three command-line tools (fpexp, fpgen,
// fpplace) as testable functions: each Run* takes an argument vector and
// output writers and returns an error instead of exiting, so the thin
// main() wrappers in cmd/ stay one line and the behaviour is covered by
// unit tests.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"repro/internal/acyclic"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

// RunFpexp is the fpexp command: run paper-reproduction experiments.
func RunFpexp(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp   = fs.String("exp", "all", "experiment id to run, comma-separated ids, or 'all'")
		list  = fs.Bool("list", false, "list experiment ids and exit")
		seed  = fs.Int64("seed", 1, "random seed for generators and baselines")
		reps  = fs.Int("reps", 0, "repetitions for randomized baselines (default: 25, or 5 with -quick)")
		quick = fs.Bool("quick", false, "shrink datasets for a fast smoke run")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		plot  = fs.Bool("plot", false, "also draw FR figures as ASCII plots")
		procs = fs.Int("procs", 1, "parallel marginal-gain workers for the greedy algorithms (series are identical at any setting)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}
	opt := experiments.Options{Seed: *seed, Reps: *reps, Quick: *quick, Parallelism: *procs}
	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		rep, err := experiments.Run(strings.TrimSpace(id), opt)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprintf(stdout, "# %s: %s\n%s\n", rep.ID, rep.Title, rep.CSV())
			continue
		}
		fmt.Fprintln(stdout, rep)
		if *plot && rep.Plot != "" {
			fmt.Fprintln(stdout, rep.Plot)
		}
	}
	return nil
}

// RunFpgen is the fpgen command: generate datasets as edge-list files.
func RunFpgen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset  = fs.String("dataset", "", "quote | twitter | citation | layered | dag | powerlaw | tree | chain | deep | fig1 | fig2 | fig3")
		out      = fs.String("out", "-", "output file ('-' for stdout)")
		seed     = fs.Int64("seed", 1, "generator seed")
		scale    = fs.Float64("scale", 1, "twitter: level-size scale in (0,1]")
		x        = fs.Float64("x", 1, "layered: edge-probability numerator")
		y        = fs.Float64("y", 4, "layered: edge-probability base")
		levels   = fs.Int("levels", 10, "layered: number of levels")
		perLevel = fs.Int("perlevel", 100, "layered: expected nodes per level")
		n        = fs.Int("n", 1000, "dag/powerlaw/tree/chain/deep: node count")
		p        = fs.Float64("p", 0.01, "dag: edge probability; tree: source-link probability")
		epn      = fs.Int("epn", 3, "powerlaw: average edges per node")
		chainLen = fs.Int("chainlen", 8, "chain: mean relay-chain length")
		depth    = fs.Int("depth", 50, "deep: level count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Digraph
	var sources []int
	single := func(gg *graph.Digraph, s int) {
		g, sources = gg, []int{s}
	}
	switch *dataset {
	case "quote":
		single(gen.QuoteLike(*seed))
	case "twitter":
		if *scale <= 0 || *scale > 1 {
			return fmt.Errorf("fpgen: -scale %v outside (0,1]", *scale)
		}
		single(gen.TwitterLike(*scale, *seed))
	case "citation":
		single(gen.CitationLike(*seed))
	case "layered":
		single(gen.Layered(*levels, *perLevel, *x, *y, *seed))
	case "dag":
		single(gen.RandomDAG(*n, *p, *seed))
	case "powerlaw":
		single(gen.PowerLawDAG(*n, *epn, *seed))
	case "tree":
		single(gen.RandomCTree(*n, *p, *seed))
	case "chain":
		single(gen.ChainDAG(*n, *chainLen, *seed))
	case "deep":
		single(gen.DeepDAG(*n, *depth, *seed))
	case "fig1":
		single(gen.Figure1())
	case "fig2":
		single(gen.Figure2())
	case "fig3":
		gg, ss := gen.Figure3()
		g, sources = gg, ss
	default:
		return fmt.Errorf("fpgen: unknown dataset %q", *dataset)
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("fpgen: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		return fmt.Errorf("fpgen: %w", err)
	}
	fmt.Fprintf(stderr, "fpgen: %d nodes, %d edges, source(s) %v\n", g.N(), g.M(), sources)
	return nil
}

// RunFpplace is the fpplace command: place filters on one edge-list graph,
// or — with multiple input files — on all of them as one batched gang
// through the process-wide scheduler (core.PlaceBatch).
func RunFpplace(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fpplace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "edge-list input file ('-' for stdin); additional files may be passed as positional arguments for batched placement")
		k         = fs.Int("k", 10, "filter budget")
		algo      = fs.String("algo", "gall", "gall | gmax | g1 | gl | glfast | celf | approx | ml-celf | naive | randk | randi | randw | prop1 | tree")
		engine    = fs.String("engine", "float", "float | big (exact)")
		source    = fs.Int("source", -1, "source node id (-1: all in-degree-0 nodes, or best root with -acyclic)")
		acyclicF  = fs.Bool("acyclic", false, "extract a maximal acyclic subgraph first (paper §4.3)")
		seed      = fs.Int64("seed", 1, "seed for randomized baselines")
		procs     = fs.Int("procs", 1, "parallel marginal-gain workers (placement is identical at any setting)")
		quiet     = fs.Bool("q", false, "print only the filter node list")
		showStats = fs.Bool("stats", false, "print graph degree statistics")
		impacts   = fs.Bool("impacts", false, "print the per-node impact table instead of placing filters")
		weighted  = fs.Bool("weighted", false, "input is 'u v p' with relay probabilities (probabilistic model; float engine only)")
		quality   = fs.Float64("quality", 0, "approx algorithm: target relative estimate error in (0, 0.5] (0 = engine default)")
		coarsenR  = fs.Float64("coarsen-ratio", 0, "ml-celf: bounded-mode target node ratio in [0, 1] (0 = contract to fixpoint)")
		coarsenL  = fs.Bool("coarsen-lossless", false, "ml-celf: restrict coarsening to the bit-exactness-preserving rules")
		dotOut    = fs.String("dot", "", "also write a Graphviz DOT file with the placement highlighted")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs := fs.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}
	if len(inputs) == 0 {
		return fmt.Errorf("fpplace: -in (or positional input files) required")
	}
	if len(inputs) > 1 {
		if *acyclicF || *weighted || *impacts || *dotOut != "" || *algo == "tree" {
			return fmt.Errorf("fpplace: batched placement over %d files supports plain placement only (no -acyclic, -weighted, -impacts, -dot or tree)", len(inputs))
		}
		if slices.Contains(inputs, "-") {
			return fmt.Errorf("fpplace: stdin ('-') cannot be combined with batched placement; pass files only")
		}
		return runFpplaceBatch(inputs, *k, *algo, *engine, *source, *seed, *procs, *quiet, stdout, stderr)
	}
	*in = inputs[0]

	var g *graph.Digraph
	var weightFn func(u, v int) float64
	var err error
	read := func(r io.Reader) {
		if *weighted {
			g, weightFn, err = graph.ReadWeightedEdgeList(r)
		} else {
			g, err = graph.ReadEdgeList(r)
		}
	}
	if *in == "-" {
		read(stdin)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			read(f)
			f.Close()
		}
	}
	if err != nil {
		return fmt.Errorf("fpplace: %w", err)
	}
	if *weighted && (*acyclicF || *engine == "big") {
		return fmt.Errorf("fpplace: -weighted requires the float engine and an acyclic input")
	}
	sources := []int{}
	if *source >= 0 {
		sources = []int{*source}
	}

	if *acyclicF {
		var st acyclic.BuildStats
		if *source >= 0 {
			g, st, err = acyclic.Build(g, *source)
		} else {
			var root int
			g, root, st, err = acyclic.BestRoot(g)
			sources = []int{root}
			if err == nil {
				fmt.Fprintf(stderr, "fpplace: best acyclic root = %s\n", g.Label(root))
			}
		}
		if err != nil {
			return fmt.Errorf("fpplace: %w", err)
		}
		fmt.Fprintf(stderr, "fpplace: acyclic: visited %d nodes, %d tree + %d extra edges, %d rejected\n",
			st.Visited, st.TreeEdges, st.ExtraEdges, st.Rejected)
	}

	if *showStats {
		ins, outs := g.InDegreeStats(), g.OutDegreeStats()
		fmt.Fprintf(stderr, "fpplace: %d nodes, %d edges; indeg mean %.2f max %d; outdeg mean %.2f max %d; %d sinks\n",
			g.N(), g.M(), ins.Mean, ins.Max, outs.Mean, outs.Max, len(g.Sinks()))
	}

	m, err := flow.NewModel(g, sources)
	if err != nil {
		return fmt.Errorf("fpplace: %w", err)
	}
	if weightFn != nil {
		m = m.WithWeights(weightFn)
	}
	var ev flow.Evaluator
	switch *engine {
	case "float":
		ev = flow.NewFloat(m)
	case "big":
		ev = flow.NewBig(m)
	default:
		return fmt.Errorf("fpplace: unknown engine %q", *engine)
	}

	if *impacts {
		fmt.Fprintln(stdout, "node  impact")
		for v, gn := range ev.Impacts(nil) {
			if gn > 0 {
				fmt.Fprintf(stdout, "%-5s %.6g\n", g.Label(v), gn)
			}
		}
		return nil
	}

	var filters []int
	var phiCI *flow.MCResult
	var coarsenStats *flow.CoarsenStats
	if strat, ok := cliStrategies[*algo]; ok {
		opts := core.Options{
			Strategy:    strat,
			Parallelism: *procs,
			Seed:        *seed,
			Quality:     *quality,
			SampleSeed:  *seed,
			Coarsen:     flow.CoarsenOptions{TargetRatio: *coarsenR, Lossless: *coarsenL},
		}
		// The same Validate the HTTP layer runs, so a bad knob reads
		// identically from either surface.
		if err := opts.Validate(); err != nil {
			return fmt.Errorf("fpplace: %w", err)
		}
		res, err := core.Place(context.Background(), ev, *k, opts)
		if err != nil {
			return fmt.Errorf("fpplace: %w", err)
		}
		filters = res.Filters
		phiCI = res.PhiCI
		coarsenStats = res.CoarsenStats
	} else if *algo == "tree" {
		if len(m.Sources()) != 1 {
			return fmt.Errorf("fpplace: tree DP needs exactly one source, have %d", len(m.Sources()))
		}
		filters, _, err = core.TreeDP(g, m.Sources()[0], *k)
		if err != nil {
			return fmt.Errorf("fpplace: %w", err)
		}
	} else {
		return fmt.Errorf("fpplace: unknown algorithm %q", *algo)
	}

	mask := flow.MaskOf(g.N(), filters)
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return fmt.Errorf("fpplace: %w", err)
		}
		err = graph.WriteDOT(f, g, "placement", mask)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("fpplace: %w", err)
		}
	}
	if *quiet {
		for _, v := range filters {
			fmt.Fprintln(stdout, g.Label(v))
		}
		return nil
	}
	fmt.Fprintf(stdout, "algorithm:  %s\n", *algo)
	fmt.Fprintf(stdout, "filters:    %d", len(filters))
	if len(filters) > 0 {
		fmt.Fprintf(stdout, " →")
		for _, v := range filters {
			fmt.Fprintf(stdout, " %s", g.Label(v))
		}
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "Φ(∅,V):     %.6g\n", ev.Phi(nil))
	fmt.Fprintf(stdout, "Φ(A,V):     %.6g\n", ev.Phi(mask))
	fmt.Fprintf(stdout, "F(A):       %.6g\n", ev.F(mask))
	fmt.Fprintf(stdout, "FR(A):      %.4f\n", flow.FR(ev, mask))
	if phiCI != nil {
		fmt.Fprintf(stdout, "Φ̂(A) CI95:  %.6g ± %.3g (%d sampled passes)\n", phiCI.Mean, phiCI.CI95(), phiCI.Runs)
	}
	if coarsenStats != nil {
		mode := "bounded"
		if coarsenStats.LosslessOnly {
			mode = "lossless"
		}
		fmt.Fprintf(stdout, "coarsen:    %d → %d nodes, %d → %d edges (%d rounds, %s)\n",
			coarsenStats.NodesBefore, coarsenStats.NodesAfter,
			coarsenStats.EdgesBefore, coarsenStats.EdgesAfter,
			coarsenStats.Rounds, mode)
	}
	return nil
}

// cliStrategies maps CLI algorithm names onto core.Place strategies;
// "tree" stays separate (the exact DP has a different signature and
// tree-only semantics).
var cliStrategies = map[string]core.Strategy{
	"gall":    core.StrategyGreedyAll,
	"celf":    core.StrategyCELF,
	"approx":  core.StrategyApproxCELF,
	"ml-celf": core.StrategyMLCELF,
	"naive":   core.StrategyNaive,
	"gmax":    core.StrategyGreedyMax,
	"g1":      core.StrategyGreedy1,
	"gl":      core.StrategyGreedyL,
	"glfast":  core.StrategyGreedyLFast,
	"randk":   core.StrategyRandK,
	"randi":   core.StrategyRandI,
	"randw":   core.StrategyRandW,
	"prop1":   core.StrategyProp1,
}

// runFpplaceBatch places the same spec on every input file as one gang
// through core.PlaceBatch. Results per graph are bit-identical to a solo
// fpplace run on that file; only scheduling is shared.
func runFpplaceBatch(inputs []string, k int, algo, engine string, source int, seed int64, procs int, quiet bool, stdout, stderr io.Writer) error {
	strat, ok := cliStrategies[algo]
	if !ok {
		return fmt.Errorf("fpplace: unknown algorithm %q", algo)
	}
	graphs := make([]*graph.Digraph, len(inputs))
	evs := make([]flow.Evaluator, len(inputs))
	for i, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("fpplace: %w", err)
		}
		g, err := graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("fpplace: %s: %w", path, err)
		}
		sources := []int{}
		if source >= 0 {
			sources = []int{source}
		}
		m, err := flow.NewModel(g, sources)
		if err != nil {
			return fmt.Errorf("fpplace: %s: %w", path, err)
		}
		graphs[i] = g
		switch engine {
		case "float":
			evs[i] = flow.NewFloat(m)
		case "big":
			evs[i] = flow.NewBig(m)
		default:
			return fmt.Errorf("fpplace: unknown engine %q", engine)
		}
	}
	results, err := core.PlaceBatch(context.Background(), evs, k, core.Options{
		Strategy:    strat,
		Parallelism: procs,
		Seed:        seed,
	})
	if err != nil {
		return fmt.Errorf("fpplace: %w", err)
	}
	for i, res := range results {
		g, ev := graphs[i], evs[i]
		if quiet {
			for _, v := range res.Filters {
				fmt.Fprintf(stdout, "%s\t%s\n", inputs[i], g.Label(v))
			}
			continue
		}
		mask := flow.MaskOf(g.N(), res.Filters)
		fmt.Fprintf(stdout, "=== %s (%d nodes, %d edges)\n", inputs[i], g.N(), g.M())
		fmt.Fprintf(stdout, "filters:    %d", len(res.Filters))
		if len(res.Filters) > 0 {
			fmt.Fprintf(stdout, " →")
			for _, v := range res.Filters {
				fmt.Fprintf(stdout, " %s", g.Label(v))
			}
		}
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "F(A):       %.6g\n", ev.F(mask))
		fmt.Fprintf(stdout, "FR(A):      %.4f\n", flow.FR(ev, mask))
	}
	fmt.Fprintf(stderr, "fpplace: batch-placed %d graphs (algo %s, k=%d)\n", len(inputs), algo, k)
	return nil
}
