package server_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// getRaw fetches url with the given Accept header and returns status,
// content type and body.
func getRaw(t *testing.T, url, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// stageNames flattens a job timeline to its stage-name set.
func stageNames(info server.JobInfo) map[string]bool {
	out := make(map[string]bool, len(info.Timeline))
	for _, rec := range info.Timeline {
		out[rec.Name] = true
	}
	return out
}

// TestMetricsPrometheusExposition drives real traffic through the server
// and checks the scrape surface: content negotiation, the version header,
// the four core latency histograms, and a lint-clean exposition.
func TestMetricsPrometheusExposition(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)

	// Generate one sync placement and one async job so the route, job and
	// stage histograms all have observations.
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gmax", K: 1}, nil); code != http.StatusOK {
		t.Fatalf("sync place: status %d", code)
	}
	var ji server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &ji); code != http.StatusAccepted {
		t.Fatalf("async place: status %d", code)
	}
	waitJob(t, ts.URL, ji.ID)

	code, ctype, body := getRaw(t, ts.URL+"/metrics?format=prometheus", "")
	if code != http.StatusOK {
		t.Fatalf("prometheus metrics: status %d", code)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("content type = %q, want text/plain version=0.0.4", ctype)
	}
	for _, hist := range []string{
		"fpd_http_request_seconds",
		"fpd_job_queue_wait_seconds",
		"fpd_job_run_seconds",
		"fpd_sched_queue_wait_seconds",
		"fpd_place_stage_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+hist+" histogram\n") {
			t.Errorf("exposition missing histogram %s", hist)
		}
	}
	// The route and stage vec labels carry real observations by now.
	if !strings.Contains(body, `fpd_http_request_seconds_bucket{route=`) {
		t.Error("http latency histogram has no route-labeled buckets")
	}
	if !strings.Contains(body, `fpd_place_stage_seconds_bucket{stage="greedy-round"`) {
		t.Error("stage histogram has no greedy-round buckets")
	}
	if !strings.Contains(body, "fpd_jobs_completed 1\n") {
		t.Error("counter snapshot missing from exposition")
	}
	if err := obs.LintPrometheus(strings.NewReader(body)); err != nil {
		t.Errorf("exposition fails lint: %v", err)
	}

	// Content negotiation: a text/plain Accept header (what a Prometheus
	// scraper sends) selects the exposition; ?format=json overrides it.
	if _, _, body := getRaw(t, ts.URL+"/metrics", "text/plain"); !strings.HasPrefix(body, "# TYPE ") {
		t.Errorf("Accept: text/plain did not select Prometheus: %.80s", body)
	}
	if _, _, body := getRaw(t, ts.URL+"/metrics?format=json", "text/plain"); !strings.HasPrefix(body, "{") {
		t.Errorf("?format=json did not select JSON: %.80s", body)
	}
	if _, _, body := getRaw(t, ts.URL+"/metrics", ""); !strings.HasPrefix(body, "{") {
		t.Errorf("default /metrics is not JSON: %.80s", body)
	}
}

// TestJobTimelines checks GET /v1/jobs/{id} reports a stage timeline for
// the async job kinds: solo greedy-all and CELF jobs, and gang batches.
func TestJobTimelines(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)

	tests := []struct {
		algo  string
		stage string // the algorithm-specific core stage
	}{
		{"gall", "greedy-round"},
		{"celf", "celf-init"},
	}
	for _, tc := range tests {
		t.Run(tc.algo, func(t *testing.T) {
			var ji server.JobInfo
			if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
				server.PlaceSpec{Algorithm: tc.algo, K: 2}, &ji); code != http.StatusAccepted {
				t.Fatalf("place: status %d", code)
			}
			done := waitJob(t, ts.URL, ji.ID)
			if done.State != server.JobDone {
				t.Fatalf("job state %s (%s)", done.State, done.Error)
			}
			stages := stageNames(done)
			for _, want := range []string{"queued", "run", "build-evaluator", tc.stage} {
				if !stages[want] {
					t.Errorf("timeline missing %q: %+v", want, done.Timeline)
				}
			}
			// Every recorded stage ran at least once.
			for _, rec := range done.Timeline {
				if rec.Count < 1 {
					t.Errorf("stage %s has count %d", rec.Name, rec.Count)
				}
			}
		})
	}

	// A gang batch is one job; its timeline spans the whole gang.
	g2 := uploadLayered(t, ts.URL, 7)
	var job server.JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{info.ID, g2.ID},
		Spec:   server.PlaceSpec{Algorithm: "gall", K: 1},
	}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", code)
	}
	done := waitJob(t, ts.URL, job.ID)
	if done.State != server.JobDone {
		t.Fatalf("batch job state %s (%s)", done.State, done.Error)
	}
	stages := stageNames(done)
	for _, want := range []string{"queued", "run"} {
		if !stages[want] {
			t.Errorf("batch timeline missing %q: %+v", want, done.Timeline)
		}
	}

	// Synchronous placements return inline results, not jobs — their cost
	// shows up in PlaceResult.Passes instead of a timeline.
	var res server.PlaceResult
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gmax", K: 1}, &res); code != http.StatusOK {
		t.Fatalf("sync place: status %d", code)
	}
	if res.Passes == nil || res.Passes.Forward == 0 {
		t.Errorf("sync gmax result carries no pass stats: %+v", res.Passes)
	}
}
