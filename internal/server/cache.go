package server

import (
	"strings"
	"sync"
)

// resultCache is an LRU cache of completed placement results, keyed by
// PlaceSpec.cacheKey. It makes repeated expensive queries O(1): the job
// API answers a cache hit inline instead of enqueueing a duplicate job.
type resultCache struct {
	mu      sync.Mutex
	entries *lruMap[string, *PlaceResult]
	metrics *Metrics
}

func newResultCache(capacity int, m *Metrics) *resultCache {
	return &resultCache{entries: newLRUMap[string, *PlaceResult](capacity), metrics: m}
}

// get returns a copy of the cached result with Cached set, counting a hit
// or a miss.
func (c *resultCache) get(key string) (*PlaceResult, bool) {
	res, ok := c.peek(key)
	if ok {
		c.metrics.CacheHits.Add(1)
	} else {
		c.metrics.CacheMisses.Add(1)
	}
	return res, ok
}

// peek is get without touching the hit/miss counters: runShared's
// execution-time re-check uses it so the metrics keep counting
// client-visible lookups only, not internal dedup probes.
func (c *resultCache) peek(key string) (*PlaceResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cached, ok := c.entries.get(key)
	if !ok {
		return nil, false
	}
	res := *cached
	res.Cached = true
	return &res, true
}

// put stores a result, evicting the least-recently-used entry beyond
// capacity.
func (c *resultCache) put(key string, res *PlaceResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries.put(key, res)
}

// invalidateGraph drops every cached placement for the graph — keys are
// "graphID|..." — returning the number invalidated. PATCHed graphs call
// this so no stale placement survives a mutation.
func (c *resultCache) invalidateGraph(graphID string) int {
	prefix := graphID + "|"
	c.mu.Lock()
	n := c.entries.deleteMatching(func(k string) bool {
		return strings.HasPrefix(k, prefix)
	})
	c.mu.Unlock()
	if n > 0 {
		c.metrics.CacheInvalidations.Add(int64(n))
	}
	return n
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries.len()
}
