package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gangJob submits a one-graph gang job whose work is fn, mirroring what
// handlePlaceBatch builds.
func gangJob(t *testing.T, e *JobEngine, key string, fn func(context.Context) (*PlaceResult, error)) JobInfo {
	t.Helper()
	bs := newBatchState([]BatchItem{{GraphID: "g", State: JobQueued}})
	info, err := e.SubmitBatch("g", PlaceSpec{Algorithm: "gall", K: 1}, key, JobMeta{}, bs, fn)
	if err != nil {
		t.Fatalf("gang submit: %v", err)
	}
	return info
}

// okFn is a job closure that completes immediately.
func okFn(ctx context.Context) (*PlaceResult, error) {
	return &PlaceResult{Filters: []int{1}}, nil
}

// forceProbe installs a controllable saturation probe on the engine.
func forceProbe(e *JobEngine) *atomic.Bool {
	var saturated atomic.Bool
	e.mu.Lock()
	e.satProbe = func() bool { return saturated.Load() }
	e.mu.Unlock()
	return &saturated
}

// TestGangDeferredWhenSchedSaturated pins the ROADMAP behavior: a gang
// job arriving while the shared scheduler is saturated is parked (202,
// state queued) instead of rejected, counted in jobs_deferred, and runs
// as soon as the scheduler drains.
func TestGangDeferredWhenSchedSaturated(t *testing.T) {
	e, metrics := newTestEngine(1, 4)
	defer e.Close()
	saturated := forceProbe(e)
	saturated.Store(true)

	info := gangJob(t, e, "batch|k1", okFn)
	if info.State != JobQueued {
		t.Fatalf("deferred gang state %s, want queued", info.State)
	}
	if d := e.DeferredDepth(); d != 1 {
		t.Fatalf("deferred depth %d, want 1", d)
	}
	if got := metrics.JobsDeferred.Load(); got != 1 {
		t.Fatalf("jobs_deferred = %d, want 1", got)
	}
	// Saturated: the dispatcher must NOT admit it.
	time.Sleep(20 * time.Millisecond)
	if in, _ := e.Get(info.ID); in.State != JobQueued {
		t.Fatalf("gang advanced to %s while scheduler saturated", in.State)
	}

	saturated.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := e.Wait(ctx, info.ID)
	if err != nil || done.State != JobDone {
		t.Fatalf("deferred gang finished as %s (err %v), want done", done.State, err)
	}
}

// TestGangDeferredWhenQueueFull: a full worker queue 503s solo jobs as
// before, but parks gang jobs.
func TestGangDeferredWhenQueueFull(t *testing.T) {
	e, metrics := newTestEngine(1, 1)
	defer e.Close()
	release := make(chan struct{})

	// Occupy the single worker, then the single queue slot.
	running, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 1}, "run", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, JobRunning)
	if _, err := e.SubmitFunc("g2", PlaceSpec{Algorithm: "gall", K: 1}, "queued", JobMeta{}, blockingFn(release)); err != nil {
		t.Fatal(err)
	}

	// Solo: immediate back pressure, exactly as before.
	if _, err := e.SubmitFunc("g3", PlaceSpec{Algorithm: "gall", K: 1}, "solo", JobMeta{}, okFn); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("solo on full queue: err %v, want ErrQueueFull", err)
	}
	// Gang: parked instead.
	gang := gangJob(t, e, "batch|k1", okFn)
	if got := metrics.JobsDeferred.Load(); got != 1 {
		t.Fatalf("jobs_deferred = %d, want 1", got)
	}

	// The deferred bound is still a bound: maxDeferred defaults to the
	// queue depth (1 here), so a second gang is rejected.
	bs := newBatchState([]BatchItem{{GraphID: "g", State: JobQueued}})
	if _, err := e.SubmitBatch("g", PlaceSpec{Algorithm: "gall", K: 1}, "batch|k2", JobMeta{}, bs, okFn); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("gang beyond deferred bound: err %v, want ErrQueueFull", err)
	}
	if got := metrics.JobsRejected.Load(); got != 2 {
		t.Fatalf("jobs_rejected = %d, want 2", got)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := e.Wait(ctx, gang.ID)
	if err != nil || done.State != JobDone {
		t.Fatalf("parked gang finished as %s (err %v), want done", done.State, err)
	}
}

// TestDeferredGangsRunOldestFirst: parked gangs are admitted in
// submission order once the scheduler drains — later arrivals (which
// also park while older gangs wait, rather than jumping the queue) never
// overtake.
func TestDeferredGangsRunOldestFirst(t *testing.T) {
	e, _ := newTestEngine(1, 8)
	defer e.Close()
	saturated := forceProbe(e)
	saturated.Store(true)

	var mu sync.Mutex
	var order []string
	record := func(tag string) func(context.Context) (*PlaceResult, error) {
		return func(ctx context.Context) (*PlaceResult, error) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return &PlaceResult{Filters: []int{1}}, nil
		}
	}
	a := gangJob(t, e, "batch|a", record("a"))
	b := gangJob(t, e, "batch|b", record("b"))
	c := gangJob(t, e, "batch|c", record("c"))
	if d := e.DeferredDepth(); d != 3 {
		t.Fatalf("deferred depth %d, want 3", d)
	}
	saturated.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if done, err := e.Wait(ctx, id); err != nil || done.State != JobDone {
			t.Fatalf("gang %s: state %s err %v", id, done.State, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("execution order %v, want [a b c]", order)
	}
}

// TestCancelDeferredGang: canceling a parked gang terminates it without it
// ever reaching a worker.
func TestCancelDeferredGang(t *testing.T) {
	e, metrics := newTestEngine(1, 4)
	defer e.Close()
	saturated := forceProbe(e)
	saturated.Store(true)

	var ran atomic.Bool
	info := gangJob(t, e, "batch|k1", func(ctx context.Context) (*PlaceResult, error) {
		ran.Store(true)
		return nil, nil
	})
	canceled, ok := e.Cancel(info.ID)
	if !ok || canceled.State != JobCanceled {
		t.Fatalf("cancel deferred: ok=%v state=%s", ok, canceled.State)
	}
	for _, item := range canceled.Batch {
		if item.State != JobCanceled {
			t.Fatalf("batch item state %s, want canceled", item.State)
		}
	}
	saturated.Store(false)
	time.Sleep(20 * time.Millisecond) // give the dispatcher a chance to misbehave
	if ran.Load() {
		t.Fatal("canceled deferred gang still executed")
	}
	if got := metrics.JobsCanceled.Load(); got != 1 {
		t.Fatalf("jobs_canceled = %d, want 1", got)
	}
}

// TestCloseCancelsDeferred: engine shutdown terminates parked gangs as
// canceled without executing them.
func TestCloseCancelsDeferred(t *testing.T) {
	e, _ := newTestEngine(1, 4)
	saturated := forceProbe(e)
	saturated.Store(true)

	var ran atomic.Bool
	info := gangJob(t, e, "batch|k1", func(ctx context.Context) (*PlaceResult, error) {
		ran.Store(true)
		return nil, nil
	})
	e.Close()
	if ran.Load() {
		t.Fatal("deferred gang executed during Close")
	}
	got, ok := e.Get(info.ID)
	if !ok || got.State != JobCanceled {
		t.Fatalf("after Close: ok=%v state=%s, want canceled", ok, got.State)
	}
}
