package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/graph"
)

func testModel(t *testing.T) *flow.Model {
	t.Helper()
	m, err := flow.NewModel(graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}}), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// blockingFn returns a job closure that parks until release is closed (or
// the job context is canceled), so tests can hold a worker busy
// deterministically.
func blockingFn(release <-chan struct{}) func(context.Context) (*PlaceResult, error) {
	return func(ctx context.Context) (*PlaceResult, error) {
		select {
		case <-release:
			return &PlaceResult{Filters: []int{1}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func newTestEngine(workers, depth int) (*JobEngine, *Metrics) {
	m := &Metrics{}
	return NewJobEngine(workers, depth, 64, newResultCache(8, m), m, nil), m
}

func waitState(t *testing.T, e *JobEngine, id string, want JobState) JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := e.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if info.State == want {
			return info
		}
		if info.State.Terminal() {
			t.Fatalf("job %s reached %s, want %s", id, info.State, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobInfo{}
}

func TestCancelRunningJob(t *testing.T) {
	e, metrics := newTestEngine(1, 4)
	defer e.Close()
	release := make(chan struct{})
	defer close(release)

	info, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 1}, "k1", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, info.ID, JobRunning)
	if _, ok := e.Cancel(info.ID); !ok {
		t.Fatal("cancel failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := e.Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobCanceled {
		t.Errorf("state = %s, want canceled", done.State)
	}
	if metrics.JobsCanceled.Load() != 1 {
		t.Errorf("jobs_canceled = %d", metrics.JobsCanceled.Load())
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e, _ := newTestEngine(1, 4)
	defer e.Close()
	release := make(chan struct{})

	running, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 1}, "k1", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, JobRunning)
	queued, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 2}, "k2", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	// The single worker is parked, so the second job is still queued and
	// cancels synchronously.
	info, ok := e.Cancel(queued.ID)
	if !ok || info.State != JobCanceled {
		t.Fatalf("queued cancel = %+v, ok=%v", info, ok)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if done, err := e.Wait(ctx, running.ID); err != nil || done.State != JobDone {
		t.Errorf("first job = %+v, err %v", done, err)
	}
	// The worker must skip the canceled job without re-running it.
	if info, _ := e.Get(queued.ID); info.State != JobCanceled {
		t.Errorf("canceled job re-entered state %s", info.State)
	}
}

func TestQueueFullRejects(t *testing.T) {
	e, metrics := newTestEngine(1, 1)
	defer e.Close()
	release := make(chan struct{})
	defer close(release)

	running, err := e.SubmitFunc("g1", PlaceSpec{K: 1}, "k1", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, JobRunning)
	if _, err := e.SubmitFunc("g1", PlaceSpec{K: 2}, "k2", JobMeta{}, blockingFn(release)); err != nil {
		t.Fatalf("queue slot should be free: %v", err)
	}
	if _, err := e.SubmitFunc("g1", PlaceSpec{K: 3}, "k3", JobMeta{}, blockingFn(release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if metrics.JobsRejected.Load() != 1 {
		t.Errorf("jobs_rejected = %d", metrics.JobsRejected.Load())
	}
}

func TestEngineCloseCancelsRunning(t *testing.T) {
	e, _ := newTestEngine(2, 4)
	never := make(chan struct{}) // only the context can unblock the job
	info, err := e.SubmitFunc("g1", PlaceSpec{K: 1}, "k1", JobMeta{}, blockingFn(never))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, info.ID, JobRunning)
	e.Close() // must not hang
	if got, _ := e.Get(info.ID); got.State != JobCanceled {
		t.Errorf("state after close = %s, want canceled", got.State)
	}
	if _, err := e.SubmitFunc("g1", PlaceSpec{K: 1}, "k2", JobMeta{}, blockingFn(never)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// TestCloseRacesSubmitAndCancel is the shutdown-race regression test (run
// under -race): Close concurrent with a storm of SubmitFunc and Cancel
// calls must leave every accepted job in a terminal state, reject late
// submissions with ErrClosed, and leak no goroutines. It also pins the
// fast-cancel path: jobs still queued at Close are canceled WITHOUT
// running, so Close is not stalled behind the backlog.
func TestCloseRacesSubmitAndCancel(t *testing.T) {
	for round := 0; round < 10; round++ {
		before := runtime.NumGoroutine()
		e, _ := newTestEngine(2, 32)
		var (
			mu  sync.Mutex
			ids []string
		)
		slow := func(ctx context.Context) (*PlaceResult, error) {
			select {
			case <-time.After(100 * time.Millisecond):
				return &PlaceResult{Filters: []int{1}}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 16; i++ {
					info, err := e.SubmitFunc("g1", PlaceSpec{K: 1},
						fmt.Sprintf("key-%d-%d", g, i), JobMeta{}, slow)
					if errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull) {
						continue
					}
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					mu.Lock()
					ids = append(ids, info.ID)
					mu.Unlock()
					if i%3 == 0 {
						e.Cancel(info.ID)
					}
				}
			}(g)
		}
		closed := make(chan struct{})
		go func() {
			time.Sleep(time.Duration(round) * time.Millisecond)
			e.Close()
			close(closed)
		}()
		wg.Wait()
		<-closed

		mu.Lock()
		for _, id := range ids {
			info, ok := e.Get(id)
			if !ok {
				continue // pruned — only terminal jobs are
			}
			if !info.State.Terminal() {
				t.Fatalf("round %d: job %s stuck in %s after Close", round, id, info.State)
			}
		}
		mu.Unlock()

		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: goroutines leaked: %d, started with %d",
					round, runtime.NumGoroutine(), before)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestCloseDoesNotRunQueuedBacklog checks the Close fast path directly: a
// deep queue behind a parked worker must reach canceled without any of
// the queued closures executing.
func TestCloseDoesNotRunQueuedBacklog(t *testing.T) {
	e, _ := newTestEngine(1, 16)
	release := make(chan struct{})
	running, err := e.SubmitFunc("g1", PlaceSpec{K: 1}, "running", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, JobRunning)
	var ran atomic.Int64
	var queued []string
	for i := 0; i < 16; i++ {
		info, err := e.SubmitFunc("g1", PlaceSpec{K: 1}, fmt.Sprintf("q%d", i), JobMeta{},
			func(ctx context.Context) (*PlaceResult, error) {
				ran.Add(1)
				return nil, ctx.Err()
			})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, info.ID)
	}
	e.Close() // cancels the running job; queued ones must not execute
	if got := ran.Load(); got != 0 {
		t.Errorf("%d queued closures ran during Close", got)
	}
	for _, id := range queued {
		if info, ok := e.Get(id); ok && info.State != JobCanceled {
			t.Errorf("queued job %s ended %s, want canceled", id, info.State)
		}
	}
	close(release)
}

func TestResultCacheEvictionAndOverwrite(t *testing.T) {
	m := &Metrics{}
	c := newResultCache(2, m)
	r := func(k int) *PlaceResult { return &PlaceResult{K: k} }
	c.put("a", r(1))
	c.put("b", r(2))
	if _, ok := c.get("a"); !ok { // bumps a over b
		t.Fatal("a missing")
	}
	c.put("c", r(3)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	got, ok := c.get("a")
	if !ok || got.K != 1 || !got.Cached {
		t.Errorf("a = %+v, ok=%v", got, ok)
	}
	c.put("a", r(9))
	if got, _ := c.get("a"); got.K != 9 {
		t.Errorf("overwrite lost: %+v", got)
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
}

// TestGreedyCtxCancel checks that both async algorithms honor an
// already-canceled context through the shared execute path.
func TestGreedyCtxCancel(t *testing.T) {
	m := testModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []string{"gall", "celf"} {
		spec := PlaceSpec{Algorithm: algo, K: 2, Engine: "float"}
		if _, err := spec.execute(ctx, algos[algo], m, "g1", nil, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
}

// TestSubmitDeduplicatesInFlight checks that an identical request (same
// cache key) while a job is queued or running shares the existing job
// instead of spawning a duplicate.
func TestSubmitDeduplicatesInFlight(t *testing.T) {
	e, metrics := newTestEngine(1, 4)
	defer e.Close()
	release := make(chan struct{})
	defer close(release)

	first, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 1}, "same-key", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	dup, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 1}, "same-key", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Errorf("duplicate spawned new job %s, want %s", dup.ID, first.ID)
	}
	if metrics.JobsSubmitted.Load() != 1 || metrics.JobsDeduped.Load() != 1 {
		t.Errorf("submitted/deduped = %d/%d, want 1/1",
			metrics.JobsSubmitted.Load(), metrics.JobsDeduped.Load())
	}
}

// TestTerminalJobRetentionBound checks that old terminal jobs are pruned
// beyond MaxJobs (clamped to workers+queueDepth+1 = 3 here) while the
// newest records are kept.
func TestTerminalJobRetentionBound(t *testing.T) {
	metrics := &Metrics{}
	e := NewJobEngine(1, 1, 1, newResultCache(8, metrics), metrics, nil)
	defer e.Close()
	instant := func(context.Context) (*PlaceResult, error) {
		return &PlaceResult{Filters: []int{1}}, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var last string
	for i := 0; i < 6; i++ {
		info, err := e.SubmitFunc("g1", PlaceSpec{K: 1}, string(rune('a'+i)), JobMeta{}, instant)
		if err != nil {
			t.Fatal(err)
		}
		last = info.ID
		if _, err := e.Wait(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
	}
	jobs := e.List()
	if len(jobs) != 3 {
		t.Fatalf("retained %d jobs, want 3: %+v", len(jobs), jobs)
	}
	if jobs[len(jobs)-1].ID != last {
		t.Errorf("newest job %s missing from %+v", last, jobs)
	}
	if _, ok := e.Get("j1"); ok {
		t.Error("oldest job survived pruning")
	}
	// A pruned job's Wait still reports its terminal state.
	pruned, err := e.Wait(ctx, "j1")
	if err == nil {
		t.Errorf("Wait on pruned job = %+v, want unknown-job error", pruned)
	}
}
