package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dyn"
	"repro/internal/flow"
	"repro/internal/obs"
)

// PatchSpec is the PATCH /v1/graphs/{id}/edges request body. Mutations may
// be given structurally (Add/Remove/AddNodes) or as a text patch in the
// dyn.ParseBatch format; both forms merge. Setting Maintain enqueues an
// auto-maintain job refreshing a k-filter placement right after the batch
// commits.
type PatchSpec struct {
	Add      [][2]int `json:"add,omitempty"`
	Remove   [][2]int `json:"remove,omitempty"`
	AddNodes int      `json:"add_nodes,omitempty"`
	// Patch is the text form: "+ u v", "- u v", "n k", "#" comments.
	Patch string `json:"patch,omitempty"`
	// Maintain requests an auto-maintain job; K is its filter budget.
	Maintain bool `json:"maintain,omitempty"`
	K        int  `json:"k,omitempty"`
}

// maxPatchAddNodes bounds node growth per batch: edge lists cost body
// bytes, but a tiny "add_nodes" number would otherwise allocate adjacency
// state for billions of nodes (the same OOM vector checkEdgeListBounds
// closes for uploads).
const maxPatchAddNodes = 1_000_000

// batch merges the structural and text mutation forms.
func (sp *PatchSpec) batch() (dyn.Batch, error) {
	b := dyn.Batch{AddNodes: sp.AddNodes, Add: sp.Add, Remove: sp.Remove}
	if sp.AddNodes < 0 {
		return b, fmt.Errorf("add_nodes = %d is negative", sp.AddNodes)
	}
	if sp.Patch != "" {
		parsed, err := dyn.ParseBatch(sp.Patch)
		if err != nil {
			return b, err
		}
		b.AddNodes += parsed.AddNodes
		b.Add = append(b.Add, parsed.Add...)
		b.Remove = append(b.Remove, parsed.Remove...)
	}
	if b.AddNodes > maxPatchAddNodes {
		return b, fmt.Errorf("add_nodes = %d exceeds the per-batch limit of %d", b.AddNodes, maxPatchAddNodes)
	}
	return b, nil
}

// PatchResult is the PATCH response: the refreshed graph info, what the
// batch did, how many cached placements were invalidated, and — when
// auto-maintain was requested — the enqueued job (or why it wasn't).
type PatchResult struct {
	Graph        GraphInfo `json:"graph"`
	NodesAdded   int       `json:"nodes_added"`
	EdgesAdded   int       `json:"edges_added"`
	EdgesRemoved int       `json:"edges_removed"`
	Reordered    int       `json:"reordered"`
	Invalidated  int       `json:"cache_invalidated"`
	// PlanSpliced reports whether the execution plan was repaired
	// incrementally (true) or rebuilt from scratch (false); PlanRepair
	// carries the repair's cost breakdown.
	PlanSpliced bool            `json:"plan_spliced"`
	PlanRepair  *PlanRepairInfo `json:"plan_repair,omitempty"`
	Job         *JobInfo        `json:"job,omitempty"`
	JobError    string          `json:"job_error,omitempty"`
}

// PlanRepairInfo breaks down what one PATCH's execution-plan repair did.
type PlanRepairInfo struct {
	Spliced bool `json:"spliced"`
	// Reason names why the splicer fell back to a rebuild ("cone-budget",
	// "window-budget", "desync", "forced"); empty when spliced.
	Reason      string  `json:"reason,omitempty"`
	DepthVisits int     `json:"depth_visits"`
	Moved       int     `json:"moved"`
	Window      int     `json:"window"`
	RowsRebuilt int     `json:"rows_rebuilt"`
	DurationMS  float64 `json:"duration_ms"`
}

func planRepairInfo(st flow.SpliceStats, d time.Duration) *PlanRepairInfo {
	return &PlanRepairInfo{
		Spliced:     st.Spliced,
		Reason:      st.Reason,
		DepthVisits: st.DepthVisits,
		Moved:       st.Moved,
		Window:      st.Window,
		RowsRebuilt: st.RowsRebuilt,
		DurationMS:  float64(d) / float64(time.Millisecond),
	}
}

// MaintainInfo augments a PlaceResult produced by an auto-maintain job.
type MaintainInfo struct {
	Strategy string  `json:"strategy"`
	FBefore  float64 `json:"f_before"`
	Delta    float64 `json:"delta"`
	Added    []int   `json:"added,omitempty"`
	Removed  []int   `json:"removed,omitempty"`
	Swaps    int     `json:"swaps"`
}

// handlePatchEdges is PATCH /v1/graphs/{id}/edges: apply one atomic
// mutation batch, drop every cached placement of the graph, and optionally
// enqueue an auto-maintain job. Cycle-creating batches return 409 with
// nothing changed.
func (s *Server) handlePatchEdges(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var spec PatchSpec
	if !s.decodeBody(w, r, &spec) {
		return
	}
	b, err := spec.batch()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "patch spec: %v", err)
		return
	}
	if b.Empty() {
		s.writeError(w, r, http.StatusBadRequest, "patch spec: empty batch")
		return
	}
	if spec.Maintain && spec.K < 1 {
		s.writeError(w, r, http.StatusBadRequest, "maintain wants k ≥ 1, got %d", spec.K)
		return
	}

	patchStart := time.Now()
	info, res, st, err := s.registry.Patch(id, b)
	patchDur := time.Since(patchStart)
	switch {
	case errors.Is(err, ErrUnknownGraph):
		s.writeError(w, r, http.StatusNotFound, "unknown graph %q", id)
		return
	case errors.Is(err, dyn.ErrCycle):
		s.writeError(w, r, http.StatusConflict, "rejected: %v", err)
		return
	case err != nil:
		s.writeError(w, r, http.StatusUnprocessableEntity, "rejected: %v", err)
		return
	}
	// Plan repair ran synchronously on the requester's dime: charge its
	// abstract cost to the tenant alongside the usual oracle accounting.
	s.tenantCounters(r).AddPlanRepair(st.Spliced, st.Work())

	out := &PatchResult{
		Graph:        info,
		NodesAdded:   res.NodesAdded,
		EdgesAdded:   res.EdgesAdded,
		EdgesRemoved: res.EdgesRemoved,
		Reordered:    res.Reordered,
		// Every cached placement for this graph is stale now.
		Invalidated: s.cache.invalidateGraph(id),
		PlanSpliced: st.Spliced,
		PlanRepair:  planRepairInfo(st, patchDur),
	}

	if spec.Maintain {
		job, err := s.submitMaintain(id, spec.K, jobMetaOf(r))
		if err != nil {
			// The mutation is committed either way; report the job failure
			// in-band instead of failing the whole request.
			out.JobError = err.Error()
		} else {
			out.Job = &job
			w.Header().Set("Location", "/v1/jobs/"+job.ID)
			// Stamp the synchronous repair onto the job's timeline so the
			// per-job view shows the full PATCH→maintain pipeline.
			s.jobs.ObserveStage(job.ID, "plan-splice", patchStart, patchDur)
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// submitMaintain enqueues the auto-maintain job kind: refresh graph id's
// k-filter placement against its current version. The cache key carries
// the patch count (read under the registry lock — the overlay's dynMu may
// be held by a long maintain run), so each graph version computes at most
// once and concurrent identical requests dedup onto one job.
func (s *Server) submitMaintain(id string, k int, meta JobMeta) (JobInfo, error) {
	_, info, ok := s.registry.Get(id)
	if !ok {
		return JobInfo{}, ErrUnknownGraph
	}
	key := fmt.Sprintf("%s|maintain|%d|float|v%d|", id, k, info.Patches)
	spec := PlaceSpec{Algorithm: "maintain", K: k, Engine: "float"}
	job, err := s.jobs.SubmitFunc(id, spec, key, meta, func(ctx context.Context) (*PlaceResult, error) {
		return s.runMaintain(ctx, id, k)
	})
	if err == nil {
		s.metrics.MaintainJobs.Add(1)
	}
	return job, err
}

// runMaintain executes one maintenance pass under the graph's per-entry
// lock and shapes the report as a PlaceResult.
func (s *Server) runMaintain(ctx context.Context, id string, k int) (*PlaceResult, error) {
	mt, unlock, err := s.registry.Maintainer(id, k, s.maxParallelism)
	if err != nil {
		return nil, err
	}
	defer unlock()
	sp := obs.TraceFrom(ctx).Begin("maintain")
	// Maintain may resync its plan internally (missed batches force a
	// rebuild); diff the shared splicer's counters around the run so those
	// repairs land in the global metrics too. Patch-time repairs are
	// counted by Registry.Patch, so the two never double-count.
	s0, r0 := mt.Splicer().Counters()
	rep, err := mt.Maintain(ctx)
	s1, r1 := mt.Splicer().Counters()
	s.metrics.PlanSplices.Add(s1 - s0)
	s.metrics.PlanRebuilds.Add(r1 - r0)
	sp.End()
	if err != nil {
		return nil, err
	}
	filters := rep.Filters
	if filters == nil {
		filters = []int{}
	}
	return &PlaceResult{
		GraphID:   id,
		Algorithm: "maintain",
		K:         k,
		Filters:   filters,
		PhiEmpty:  rep.PhiEmpty,
		PhiA:      rep.PhiEmpty - rep.FAfter,
		F:         rep.FAfter,
		FR:        rep.FRatio,
		Maintain: &MaintainInfo{
			Strategy: rep.Strategy,
			FBefore:  rep.FBefore,
			Delta:    rep.Delta,
			Added:    rep.Added,
			Removed:  rep.Removed,
			Swaps:    rep.Swaps,
		},
	}, nil
}
