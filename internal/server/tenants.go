package server

import "net/http"

// Tenant usage endpoints over the obs.Accountant. Tenants are implicit —
// any request carrying a valid X-FP-Tenant header creates one — so there
// is no tenant CRUD, only usage reads. With accounting disabled
// (Config.DisableAccounting) both endpoints answer 404.

// handleListTenants is GET /v1/tenants: every tenant the accountant has
// seen, with its accumulated usage, sorted by tenant name.
func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	if s.acct == nil {
		s.writeError(w, r, http.StatusNotFound, "tenant accounting disabled")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"tenants": s.acct.Snapshot()})
}

// handleTenantUsage is GET /v1/tenants/{id}/usage: one tenant's
// accumulated resource usage. 404 for a tenant no request has used yet —
// existence is defined by recorded usage, nothing else.
func (s *Server) handleTenantUsage(w http.ResponseWriter, r *http.Request) {
	if s.acct == nil {
		s.writeError(w, r, http.StatusNotFound, "tenant accounting disabled")
		return
	}
	id := r.PathValue("id")
	tc, ok := s.acct.Lookup(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "no usage recorded for tenant %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, tc.Usage())
}
