package server

import "sync/atomic"

// Metrics holds the daemon's monotonic counters (plus one gauge for
// running jobs). Everything is atomic so handlers, workers and the
// registry update them without coordination; Snapshot copies the values
// for the /metrics endpoint, and the handler fills in the two sampled
// gauges (job-queue depth, cache entries) that live outside this struct.
type Metrics struct {
	RequestsTotal  atomic.Int64
	RequestErrors  atomic.Int64
	GraphsCreated  atomic.Int64
	GraphsEvicted  atomic.Int64
	GraphsDeleted  atomic.Int64
	GraphsPatched  atomic.Int64
	EdgesAdded     atomic.Int64
	EdgesRemoved   atomic.Int64
	SyncPlacements atomic.Int64
	Evaluations    atomic.Int64
	JobsSubmitted  atomic.Int64
	JobsDeduped    atomic.Int64
	JobsRunning    atomic.Int64
	JobsCompleted  atomic.Int64
	JobsFailed     atomic.Int64
	JobsCanceled   atomic.Int64
	JobsRejected   atomic.Int64
	// JobsDeferred counts gang jobs admitted into the bounded wait queue
	// instead of the worker queue (scheduler saturated or queue full).
	JobsDeferred atomic.Int64
	// FlightsJoined counts placements that joined an identical in-flight
	// computation (cross-kind dedup) instead of executing their own.
	FlightsJoined atomic.Int64
	MaintainJobs   atomic.Int64
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	// CacheInvalidations counts placements dropped by graph mutations.
	CacheInvalidations atomic.Int64
	// PlaceWorkersBusy is a gauge of goroutines currently reserved by
	// running placements (each job contributes its parallelism).
	PlaceWorkersBusy atomic.Int64
	// OracleEvaluations counts single-node marginal-gain computations
	// spent across all placements (core.OracleStats.GainEvaluations).
	OracleEvaluations atomic.Int64
	// BatchesSubmitted counts gang-submitted batch placement jobs.
	BatchesSubmitted atomic.Int64
	// BatchGraphsInflight is a gauge of batch sub-placements currently
	// executing on the shared scheduler.
	BatchGraphsInflight atomic.Int64
}

// MetricsSnapshot is the JSON shape served by GET /metrics. JobQueueDepth
// and CacheEntries are gauges sampled at snapshot time by the caller —
// queue depth is what an operator watches to see auto-maintain load pile
// up behind the worker pool.
type MetricsSnapshot struct {
	RequestsTotal      int64 `json:"requests_total"`
	RequestErrors      int64 `json:"request_errors"`
	GraphsCreated      int64 `json:"graphs_created"`
	GraphsEvicted      int64 `json:"graphs_evicted"`
	GraphsDeleted      int64 `json:"graphs_deleted"`
	GraphsPatched      int64 `json:"graphs_patched"`
	EdgesAdded         int64 `json:"edges_added"`
	EdgesRemoved       int64 `json:"edges_removed"`
	SyncPlacements     int64 `json:"sync_placements"`
	Evaluations        int64 `json:"evaluations"`
	JobsSubmitted      int64 `json:"jobs_submitted"`
	JobsDeduped        int64 `json:"jobs_deduped"`
	JobsRunning        int64 `json:"jobs_running"`
	JobsCompleted      int64 `json:"jobs_completed"`
	JobsFailed         int64 `json:"jobs_failed"`
	JobsCanceled       int64 `json:"jobs_canceled"`
	JobsRejected       int64 `json:"jobs_rejected"`
	JobsDeferred       int64 `json:"jobs_deferred"`
	FlightsJoined      int64 `json:"flights_joined"`
	JobQueueDepth      int64 `json:"job_queue_depth"`
	MaintainJobs       int64 `json:"maintain_jobs"`
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	CacheInvalidations int64 `json:"cache_invalidations"`
	CacheEntries       int64 `json:"cache_entries"`
	PlaceWorkersBusy   int64 `json:"place_workers_busy"`
	OracleEvaluations  int64 `json:"oracle_evaluations"`
	BatchesSubmitted   int64 `json:"batches_submitted"`
	// BatchGraphsInflight counts batch sub-placements running right now;
	// SchedQueueDepth and SchedWorkers are sampled from the process-wide
	// scheduler at snapshot time — queue depth is what an operator
	// watches to see oracle work pile up behind the shared pool.
	BatchGraphsInflight int64 `json:"batch_graphs_inflight"`
	SchedQueueDepth     int64 `json:"sched_queue_depth"`
	SchedWorkers        int64 `json:"sched_workers"`
}

// Snapshot copies every counter.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		RequestsTotal:      m.RequestsTotal.Load(),
		RequestErrors:      m.RequestErrors.Load(),
		GraphsCreated:      m.GraphsCreated.Load(),
		GraphsEvicted:      m.GraphsEvicted.Load(),
		GraphsDeleted:      m.GraphsDeleted.Load(),
		GraphsPatched:      m.GraphsPatched.Load(),
		EdgesAdded:         m.EdgesAdded.Load(),
		EdgesRemoved:       m.EdgesRemoved.Load(),
		SyncPlacements:     m.SyncPlacements.Load(),
		Evaluations:        m.Evaluations.Load(),
		JobsSubmitted:      m.JobsSubmitted.Load(),
		JobsDeduped:        m.JobsDeduped.Load(),
		JobsRunning:        m.JobsRunning.Load(),
		JobsCompleted:      m.JobsCompleted.Load(),
		JobsFailed:         m.JobsFailed.Load(),
		JobsCanceled:       m.JobsCanceled.Load(),
		JobsRejected:       m.JobsRejected.Load(),
		JobsDeferred:       m.JobsDeferred.Load(),
		FlightsJoined:      m.FlightsJoined.Load(),
		MaintainJobs:       m.MaintainJobs.Load(),
		CacheHits:          m.CacheHits.Load(),
		CacheMisses:        m.CacheMisses.Load(),
		CacheInvalidations: m.CacheInvalidations.Load(),
		PlaceWorkersBusy:    m.PlaceWorkersBusy.Load(),
		OracleEvaluations:   m.OracleEvaluations.Load(),
		BatchesSubmitted:    m.BatchesSubmitted.Load(),
		BatchGraphsInflight: m.BatchGraphsInflight.Load(),
	}
}
