package server

import (
	"fmt"
	"reflect"
	"sync/atomic"
)

// Metrics holds the daemon's monotonic counters (plus one gauge for
// running jobs). Everything is atomic so handlers, workers and the
// registry update them without coordination; Snapshot copies the values
// for the /metrics endpoint, and the handler fills in the two sampled
// gauges (job-queue depth, cache entries) that live outside this struct.
type Metrics struct {
	RequestsTotal  atomic.Int64
	RequestErrors  atomic.Int64
	GraphsCreated  atomic.Int64
	GraphsEvicted  atomic.Int64
	GraphsDeleted  atomic.Int64
	GraphsPatched  atomic.Int64
	EdgesAdded     atomic.Int64
	EdgesRemoved   atomic.Int64
	SyncPlacements atomic.Int64
	Evaluations    atomic.Int64
	JobsSubmitted  atomic.Int64
	JobsDeduped    atomic.Int64
	JobsRunning    atomic.Int64
	JobsCompleted  atomic.Int64
	JobsFailed     atomic.Int64
	JobsCanceled   atomic.Int64
	JobsRejected   atomic.Int64
	// JobsDeferred counts gang jobs admitted into the bounded wait queue
	// instead of the worker queue (scheduler saturated or queue full).
	JobsDeferred atomic.Int64
	// FlightsJoined counts placements that joined an identical in-flight
	// computation (cross-kind dedup) instead of executing their own.
	FlightsJoined atomic.Int64
	MaintainJobs  atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	// CacheInvalidations counts placements dropped by graph mutations.
	CacheInvalidations atomic.Int64
	// PlaceWorkersBusy is a gauge of goroutines currently reserved by
	// running placements (each job contributes its parallelism).
	PlaceWorkersBusy atomic.Int64
	// OracleEvaluations counts single-node marginal-gain computations
	// spent across all placements (core.OracleStats.GainEvaluations).
	OracleEvaluations atomic.Int64
	// BatchesSubmitted counts gang-submitted batch placement jobs.
	BatchesSubmitted atomic.Int64
	// BatchGraphsInflight is a gauge of batch sub-placements currently
	// executing on the shared scheduler.
	BatchGraphsInflight atomic.Int64
	// EventsPublished counts job lifecycle events fanned out to the SSE
	// bus; EventsDropped counts per-subscriber deliveries lost to a full
	// subscriber buffer (the bus never blocks the job engine).
	EventsPublished atomic.Int64
	EventsDropped   atomic.Int64
	// PlanSplices counts execution plans repaired incrementally after a
	// PATCH batch; PlanRebuilds counts the ones rebuilt from scratch
	// (splice-cost threshold exceeded, or a forced resync). Their ratio is
	// the operator's signal that dynamic graphs are staying on the fast
	// splice path.
	PlanSplices  atomic.Int64
	PlanRebuilds atomic.Int64
	// ApproxPlacements counts placements served by the estimate-driven
	// approx algorithm; ApproxSampledEvaluations its sampled gain
	// estimates and ApproxExactRechecks the exact oracle evaluations it
	// spent confirming heap tops. Rechecks/placements ≪ oracle
	// evaluations/exact-placement is the signal that approximation is
	// actually saving exact work.
	ApproxPlacements         atomic.Int64
	ApproxSampledEvaluations atomic.Int64
	ApproxExactRechecks      atomic.Int64
	// Coarsen* describe the multilevel (mlcelf) path: placements that ran
	// through graph coarsening, how many nodes the contractions removed,
	// how many contraction rounds they spent, and how many runs stayed on
	// the lossless (bit-exact) rules only. NodesContracted/Placements is
	// the operator's view of how compressible the workload's graphs are.
	CoarsenPlacements      atomic.Int64
	CoarsenNodesContracted atomic.Int64
	CoarsenRounds          atomic.Int64
	CoarsenLossless        atomic.Int64
}

// MetricsSnapshot is the JSON shape served by GET /metrics. JobQueueDepth
// and CacheEntries are gauges sampled at snapshot time by the caller —
// queue depth is what an operator watches to see auto-maintain load pile
// up behind the worker pool.
type MetricsSnapshot struct {
	RequestsTotal      int64 `json:"requests_total"`
	RequestErrors      int64 `json:"request_errors"`
	GraphsCreated      int64 `json:"graphs_created"`
	GraphsEvicted      int64 `json:"graphs_evicted"`
	GraphsDeleted      int64 `json:"graphs_deleted"`
	GraphsPatched      int64 `json:"graphs_patched"`
	EdgesAdded         int64 `json:"edges_added"`
	EdgesRemoved       int64 `json:"edges_removed"`
	SyncPlacements     int64 `json:"sync_placements"`
	Evaluations        int64 `json:"evaluations"`
	JobsSubmitted      int64 `json:"jobs_submitted"`
	JobsDeduped        int64 `json:"jobs_deduped"`
	JobsRunning        int64 `json:"jobs_running"`
	JobsCompleted      int64 `json:"jobs_completed"`
	JobsFailed         int64 `json:"jobs_failed"`
	JobsCanceled       int64 `json:"jobs_canceled"`
	JobsRejected       int64 `json:"jobs_rejected"`
	JobsDeferred       int64 `json:"jobs_deferred"`
	FlightsJoined      int64 `json:"flights_joined"`
	JobQueueDepth      int64 `json:"job_queue_depth"`
	MaintainJobs       int64 `json:"maintain_jobs"`
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	CacheInvalidations int64 `json:"cache_invalidations"`
	CacheEntries       int64 `json:"cache_entries"`
	PlaceWorkersBusy   int64 `json:"place_workers_busy"`
	OracleEvaluations  int64 `json:"oracle_evaluations"`
	BatchesSubmitted   int64 `json:"batches_submitted"`
	// BatchGraphsInflight counts batch sub-placements running right now;
	// SchedQueueDepth and SchedWorkers are sampled from the process-wide
	// scheduler at snapshot time — queue depth is what an operator
	// watches to see oracle work pile up behind the shared pool.
	BatchGraphsInflight int64 `json:"batch_graphs_inflight"`
	SchedQueueDepth     int64 `json:"sched_queue_depth"`
	SchedWorkers        int64 `json:"sched_workers"`
	// JobsDeferredWaiting is a gauge of gang jobs currently parked in the
	// admission wait queue, and OldestDeferredAgeSeconds the age of the
	// one waiting longest — together they tell an operator whether
	// deferred gangs are draining or starving. Both are sampled at
	// snapshot time by the /metrics handler.
	JobsDeferredWaiting      int64   `json:"jobs_deferred_waiting"`
	OldestDeferredAgeSeconds float64 `json:"oldest_deferred_age_seconds"`
	// EventsPublished/EventsDropped mirror the SSE bus counters;
	// EventsSubscribers, HistorySamples and TenantsTracked are gauges
	// sampled at snapshot time (live SSE streams, stats-history ring
	// population, distinct tenants the accountant has seen).
	EventsPublished   int64 `json:"events_published"`
	EventsDropped     int64 `json:"events_dropped"`
	EventsSubscribers int64 `json:"events_subscribers"`
	HistorySamples    int64 `json:"history_samples"`
	TenantsTracked    int64 `json:"tenants_tracked"`
	// PlanSplices/PlanRebuilds split PATCH-driven execution-plan repairs
	// into incremental splices vs from-scratch rebuilds.
	PlanSplices  int64 `json:"plan_splices_total"`
	PlanRebuilds int64 `json:"plan_rebuilds_total"`
	// Approx* split the approximate engine's work: sampled estimates vs
	// the exact re-checks that gate each commit.
	ApproxPlacements         int64 `json:"approx_placements_total"`
	ApproxSampledEvaluations int64 `json:"approx_sampled_evaluations_total"`
	ApproxExactRechecks      int64 `json:"approx_exact_rechecks_total"`
	// Coarsen* describe multilevel placements: runs, nodes contracted
	// away, contraction rounds, and runs that stayed lossless-only.
	CoarsenPlacements      int64 `json:"coarsen_placements_total"`
	CoarsenNodesContracted int64 `json:"coarsen_nodes_contracted_total"`
	CoarsenRounds          int64 `json:"coarsen_rounds_total"`
	CoarsenLossless        int64 `json:"coarsen_lossless_total"`
}

// Snapshot copies every counter into the same-named MetricsSnapshot
// field by reflection, so adding a Metrics field without its snapshot
// counterpart is impossible to miss: the mismatch panics on the first
// snapshot (and TestMetricsSnapshotDrift pins it at test time). Fields
// that exist only on the snapshot (sampled gauges) are left for the
// caller to fill.
func (m *Metrics) Snapshot() MetricsSnapshot {
	var snap MetricsSnapshot
	mv := reflect.ValueOf(m).Elem()
	sv := reflect.ValueOf(&snap).Elem()
	mt := mv.Type()
	for i := 0; i < mt.NumField(); i++ {
		name := mt.Field(i).Name
		counter, ok := mv.Field(i).Addr().Interface().(*atomic.Int64)
		if !ok {
			panic(fmt.Sprintf("server: Metrics.%s is not an atomic.Int64", name))
		}
		target := sv.FieldByName(name)
		if !target.IsValid() {
			panic(fmt.Sprintf("server: Metrics.%s has no MetricsSnapshot counterpart", name))
		}
		target.SetInt(counter.Load())
	}
	return snap
}
