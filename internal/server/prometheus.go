package server

import (
	"fmt"
	"io"
	"reflect"
	"strings"

	"repro/internal/obs"
)

// Prometheus text exposition of the daemon's metrics. The counters and
// sampled gauges are emitted reflectively from MetricsSnapshot — every
// field's json tag becomes fpd_<tag> — so a metric added to the snapshot
// shows up in both the JSON and the Prometheus form with no further
// wiring (TestMetricsSnapshotDrift pins this). Histograms come from the
// server's obs.Registry, written by the same obs helpers, so the two
// halves cannot drift in format.

// snapshotGauges names the MetricsSnapshot fields that are
// point-in-time gauges rather than monotonic counters, keyed by json
// tag. Everything not listed is emitted as a Prometheus counter. A
// MetricsSnapshot field whose json tag is in neither category is a
// counter by default, which is the safe reading for anything monotonic.
var snapshotGauges = map[string]bool{
	"jobs_running":                true,
	"job_queue_depth":             true,
	"cache_entries":               true,
	"place_workers_busy":          true,
	"batch_graphs_inflight":       true,
	"sched_queue_depth":           true,
	"sched_workers":               true,
	"jobs_deferred_waiting":       true,
	"oldest_deferred_age_seconds": true,
	"events_subscribers":          true,
	"history_samples":             true,
	"tenants_tracked":             true,
}

// writePrometheusSnapshot emits every MetricsSnapshot field as an
// fpd_-prefixed Prometheus sample.
func writePrometheusSnapshot(w io.Writer, snap MetricsSnapshot) error {
	sv := reflect.ValueOf(snap)
	st := sv.Type()
	for i := 0; i < st.NumField(); i++ {
		tag := strings.Split(st.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			return fmt.Errorf("server: MetricsSnapshot.%s has no json tag", st.Field(i).Name)
		}
		name := "fpd_" + tag
		kind := "counter"
		if snapshotGauges[tag] {
			kind = "gauge"
		}
		var value float64
		switch f := sv.Field(i); f.Kind() {
		case reflect.Int64:
			value = float64(f.Int())
		case reflect.Float64:
			value = f.Float()
		default:
			return fmt.Errorf("server: MetricsSnapshot.%s has unsupported kind %s", st.Field(i).Name, f.Kind())
		}
		if err := obs.WriteHeader(w, name, "", kind); err != nil {
			return err
		}
		if err := obs.WriteSample(w, name, "", value); err != nil {
			return err
		}
	}
	return nil
}

// writePrometheus writes the full exposition: snapshot counters/gauges
// first, then the registry's histograms.
func (s *Server) writePrometheus(w io.Writer, snap MetricsSnapshot) error {
	if err := writePrometheusSnapshot(w, snap); err != nil {
		return err
	}
	return s.obs.reg.WritePrometheus(w)
}
