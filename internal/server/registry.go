package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dyn"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

// GraphSpec is the POST /v1/graphs request body. Exactly one of Edges or
// Generator must be set: Edges carries an inline edge list in the fpgen
// text format ("u v" per line, '#' comments, non-numeric tokens become
// labels); Generator names one of the internal/gen dataset generators with
// the same parameters the fpgen CLI exposes.
type GraphSpec struct {
	Name    string `json:"name,omitempty"`
	Edges   string `json:"edges,omitempty"`
	Sources []int  `json:"sources,omitempty"`

	Generator string  `json:"generator,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Scale     float64 `json:"scale,omitempty"`    // twitter
	X         float64 `json:"x,omitempty"`        // layered
	Y         float64 `json:"y,omitempty"`        // layered
	Levels    int     `json:"levels,omitempty"`   // layered
	PerLevel  int     `json:"perlevel,omitempty"` // layered
	N         int     `json:"n,omitempty"`        // dag | powerlaw | tree
	P         float64 `json:"p,omitempty"`        // dag | tree
	EPN       int     `json:"epn,omitempty"`      // powerlaw
	Width     int     `json:"width,omitempty"`    // bottleneck
	ChainLen  int     `json:"chainlen,omitempty"` // bottleneck
	Depth     int     `json:"depth,omitempty"`    // bottleneck
}

// Generators lists the generator names accepted by GraphSpec.Generator.
func Generators() []string {
	return []string{"quote", "twitter", "citation", "layered", "dag",
		"powerlaw", "tree", "bottleneck", "fig1", "fig2", "fig3"}
}

// Upload bounds: node ids allocate O(maxID) adjacency state in the graph
// builder, so a tiny body like "0 2000000000" would otherwise OOM the
// daemon despite MaxBodyBytes.
const (
	maxUploadNodeID = 5_000_000
	maxUploadEdges  = 2_000_000
)

// checkEdgeListBounds pre-scans an uploaded edge list, rejecting numeric
// node ids beyond maxUploadNodeID (when the file is in numeric-id mode,
// mirroring graph.ReadEdgeList's rules) and more than maxUploadEdges
// lines. Label-mode files are safe by construction: distinct labels are
// bounded by the edge count.
func checkEdgeListBounds(text string) error {
	edges, maxID, numeric := 0, 0, true
	for line := range strings.Lines(text) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		edges++
		if edges > maxUploadEdges {
			return fmt.Errorf("edge list exceeds %d edges", maxUploadEdges)
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil || n < 0 {
				numeric = false
				continue
			}
			maxID = max(maxID, n)
		}
	}
	if numeric && maxID > maxUploadNodeID {
		return fmt.Errorf("node id %d exceeds the upload limit of %d", maxID, maxUploadNodeID)
	}
	return nil
}

// Build materializes the spec into a graph and its default sources. Every
// generator parameter is range-checked first: the quadratic generators
// (dag, layered) are capped at 20K nodes and the linear ones at 2M, so a
// single request can't wedge or OOM the daemon; edge-list uploads go
// through checkEdgeListBounds.
func (sp *GraphSpec) Build() (*graph.Digraph, []int, error) {
	if (sp.Edges != "") == (sp.Generator != "") {
		return nil, nil, fmt.Errorf("exactly one of \"edges\" and \"generator\" must be set")
	}
	if sp.Edges != "" {
		if err := checkEdgeListBounds(sp.Edges); err != nil {
			return nil, nil, err
		}
		g, err := graph.ReadEdgeList(strings.NewReader(sp.Edges))
		if err != nil {
			return nil, nil, err
		}
		return g, sp.Sources, nil
	}

	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	or := func(v, def int) int {
		if v == 0 {
			return def
		}
		return v
	}
	orF := func(v, def float64) float64 {
		if v == 0 {
			return def
		}
		return v
	}
	// The check helpers collect the first parameter-range violation;
	// generators panic or allocate unboundedly on garbage, so the API
	// rejects it here with a 400 instead.
	var paramErr error
	checkInt := func(name string, v, lo, hi int) int {
		if paramErr == nil && (v < lo || v > hi) {
			paramErr = fmt.Errorf("%s = %d outside [%d, %d]", name, v, lo, hi)
		}
		return v
	}
	checkFloat := func(name string, v, lo, hi float64) float64 {
		if paramErr == nil && (v < lo || v > hi) {
			paramErr = fmt.Errorf("%s = %v outside [%v, %v]", name, v, lo, hi)
		}
		return v
	}
	var (
		g   *graph.Digraph
		src int
	)
	switch sp.Generator {
	case "quote":
		g, src = gen.QuoteLike(seed)
	case "twitter":
		scale := orF(sp.Scale, 1)
		if scale <= 0 || scale > 1 {
			return nil, nil, fmt.Errorf("twitter scale %v outside (0,1]", scale)
		}
		g, src = gen.TwitterLike(scale, seed)
	case "citation":
		g, src = gen.CitationLike(seed)
	case "layered":
		levels := checkInt("levels", or(sp.Levels, 10), 1, 20000)
		perLevel := checkInt("perlevel", or(sp.PerLevel, 100), 1, 20000)
		if paramErr == nil && levels*perLevel > 20000 {
			paramErr = fmt.Errorf("levels*perlevel = %d exceeds 20000 (the generator is quadratic)", levels*perLevel)
		}
		x := checkFloat("x", orF(sp.X, 1), 0, 1e6)
		y := checkFloat("y", orF(sp.Y, 4), 1, 1e6)
		if paramErr != nil {
			return nil, nil, paramErr
		}
		g, src = gen.Layered(levels, perLevel, x, y, seed)
	case "dag":
		n := checkInt("n", or(sp.N, 1000), 1, 20000)
		p := checkFloat("p", orF(sp.P, 0.01), 0, 1)
		if paramErr != nil {
			return nil, nil, paramErr
		}
		g, src = gen.RandomDAG(n, p, seed)
	case "powerlaw":
		n := checkInt("n", or(sp.N, 1000), 1, 2000000)
		epn := checkInt("epn", or(sp.EPN, 3), 1, 100)
		if paramErr == nil && n*epn > 4000000 {
			paramErr = fmt.Errorf("n*epn = %d exceeds 4000000 edges", n*epn)
		}
		if paramErr != nil {
			return nil, nil, paramErr
		}
		g, src = gen.PowerLawDAG(n, epn, seed)
	case "tree":
		n := checkInt("n", or(sp.N, 1000), 1, 2000000)
		p := checkFloat("p", orF(sp.P, 0.01), 0, 1)
		if paramErr != nil {
			return nil, nil, paramErr
		}
		g, src = gen.RandomCTree(n, p, seed)
	case "bottleneck":
		width := checkInt("width", or(sp.Width, 10), 1, 1000000)
		chainLen := checkInt("chainlen", or(sp.ChainLen, 5), 1, 1000000)
		depth := checkInt("depth", or(sp.Depth, 3), 1, 20)
		if paramErr != nil {
			return nil, nil, paramErr
		}
		g, src = gen.BottleneckChain(width, chainLen, depth, seed)
	case "fig1":
		g, src = gen.Figure1()
	case "fig2":
		g, src = gen.Figure2()
	case "fig3":
		gg, srcs := gen.Figure3()
		if len(sp.Sources) > 0 {
			srcs = sp.Sources
		}
		return gg, srcs, nil
	default:
		return nil, nil, fmt.Errorf("unknown generator %q (have %s)",
			sp.Generator, strings.Join(Generators(), ", "))
	}
	sources := sp.Sources
	if len(sources) == 0 {
		sources = []int{src}
	}
	return g, sources, nil
}

// GraphInfo is the JSON description of a registered graph.
type GraphInfo struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	Nodes     int       `json:"nodes"`
	Edges     int       `json:"edges"`
	Sources   []int     `json:"sources"`
	Sinks     int       `json:"sinks"`
	Hits      int64     `json:"hits"`
	// Patches counts committed PATCH batches; a non-zero value marks the
	// graph as dynamic.
	Patches   int64     `json:"patches,omitempty"`
	CreatedAt time.Time `json:"created_at"`
}

// graphEntry is one registry slot. The model (and the digraph inside it)
// is immutable and shared by every request that reads the entry; the
// bookkeeping fields mutate under the registry lock. The dynamic overlay
// and its maintainer — created lazily on the first PATCH — mutate under
// dynMu, which is never acquired while holding the registry lock (the
// reverse order, dynMu → registry lock, is the one mutation and maintain
// paths use).
type graphEntry struct {
	info  GraphInfo
	model *flow.Model

	dynMu      sync.Mutex
	dynamic    *dyn.Dynamic
	maintainer *dyn.Maintainer
	// splicer repairs the entry's execution plan incrementally per PATCH
	// batch (guarded by dynMu, like the overlay it watches). It is shared
	// with the maintainer, so auto-maintain and the placement path run on
	// the same spliced plan instead of each rebuilding their own.
	splicer *flow.Splicer
}

// ErrUnknownGraph is returned by mutation paths when the graph id is not
// registered (or already evicted).
var ErrUnknownGraph = errors.New("server: unknown graph")

// Registry is the concurrency-safe LRU-bounded graph store. Get bumps
// recency; Add evicts the least-recently-used graph beyond capacity.
type Registry struct {
	mu      sync.Mutex
	entries *lruMap[string, *graphEntry]
	nextID  int
	metrics *Metrics
	// spliceOpts tunes every entry's plan splicer (the fpd
	// -splice-max-cone flag); read-only after SetSpliceOptions.
	spliceOpts flow.SpliceOptions
}

// NewRegistry creates a registry holding at most capacity graphs
// (minimum 1).
func NewRegistry(capacity int, m *Metrics) *Registry {
	return &Registry{entries: newLRUMap[string, *graphEntry](capacity), metrics: m}
}

// SetSpliceOptions configures the plan-splice threshold used for every
// subsequently upgraded dynamic graph. Call before serving requests.
func (r *Registry) SetSpliceOptions(o flow.SpliceOptions) { r.spliceOpts = o }

// Add registers a validated model under a fresh id and returns its info.
// It may evict the least-recently-used graph.
func (r *Registry) Add(name string, m *flow.Model) GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	e := &graphEntry{
		info: GraphInfo{
			ID:        fmt.Sprintf("g%d", r.nextID),
			Name:      name,
			Nodes:     m.Graph().N(),
			Edges:     m.Graph().M(),
			Sources:   m.Sources(),
			Sinks:     len(m.Graph().Sinks()),
			CreatedAt: time.Now().UTC(),
		},
		model: m,
	}
	r.metrics.GraphsCreated.Add(1)
	r.metrics.GraphsEvicted.Add(int64(r.entries.put(e.info.ID, e)))
	return e.info
}

// Get returns the model and current info for id, bumping its recency and
// hit count. ok is false when the id is unknown (or already evicted).
func (r *Registry) Get(id string) (*flow.Model, GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries.get(id)
	if !ok {
		return nil, GraphInfo{}, false
	}
	e.info.Hits++
	return e.model, e.info, true
}

// entry returns the registry slot for id, bumping recency (an actively
// mutated or maintained graph is in use and must not be the LRU eviction
// victim) but not the client-visible hit count.
func (r *Registry) entry(id string) (*graphEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries.get(id)
}

// Patch applies a mutation batch to graph id, upgrading the entry to a
// dynamic overlay on first use and swapping in a refreshed immutable model
// for readers. It returns the updated info, the overlay's apply result and
// what the plan repair did; a rejected batch (cycle, bad edge) changes
// nothing. The entry's dynMu serializes mutations and maintenance per
// graph while other graphs stay fully concurrent.
//
// The refreshed model is NOT rebuilt from a snapshot: the entry's splicer
// repairs the execution plan within the batch's dirty cone and the model
// is stood up over the spliced plan in O(n+m), so subsequent placements
// (and the auto-maintain job) reuse it directly.
func (r *Registry) Patch(id string, b dyn.Batch) (GraphInfo, dyn.ApplyResult, flow.SpliceStats, error) {
	e, ok := r.entry(id)
	if !ok {
		return GraphInfo{}, dyn.ApplyResult{}, flow.SpliceStats{}, ErrUnknownGraph
	}
	e.dynMu.Lock()
	defer e.dynMu.Unlock()
	if err := r.upgradeLocked(e); err != nil {
		return GraphInfo{}, dyn.ApplyResult{}, flow.SpliceStats{}, err
	}
	var (
		res dyn.ApplyResult
		err error
	)
	// Route through the maintainer when one exists so its incremental flow
	// state stays warm; otherwise mutate the overlay directly. Either way
	// the shared splicer ends up holding the repaired plan.
	if e.maintainer != nil {
		res, err = e.maintainer.Apply(b)
	} else {
		res, err = e.dynamic.Apply(b)
		if err == nil {
			e.splicer.Apply(res.DirtyFwd, res.DirtyBwd, res.NodesAdded)
		}
	}
	if err != nil {
		return GraphInfo{}, res, flow.SpliceStats{}, err
	}
	st := e.splicer.Last()
	if st.Spliced {
		r.metrics.PlanSplices.Add(1)
	} else {
		r.metrics.PlanRebuilds.Add(1)
	}
	// The overlay pins the sources, so a model over the spliced plan
	// cannot fail validation; the snapshot build is a belt-and-suspenders
	// fallback only.
	model, err := flow.NewModelFromPlan(e.splicer.Plan(), e.dynamic.Sources())
	if err != nil {
		model, err = flow.NewModel(e.dynamic.Snapshot(), e.dynamic.Sources())
		if err != nil {
			return GraphInfo{}, res, st, err
		}
	}

	r.mu.Lock()
	// The entry may have been evicted between entry() and here; the
	// orphan's mutation is then moot and the client must see the graph as
	// gone rather than a confirmed patch on a 404-ing id.
	if cur, ok := r.entries.peek(id); !ok || cur != e {
		r.mu.Unlock()
		return GraphInfo{}, res, st, ErrUnknownGraph
	}
	e.model = model
	e.info.Nodes = e.dynamic.N()
	e.info.Edges = e.dynamic.M()
	e.info.Sinks = len(model.Graph().Sinks())
	e.info.Patches++
	info := e.info
	r.mu.Unlock()

	r.metrics.GraphsPatched.Add(1)
	r.metrics.EdgesAdded.Add(int64(res.EdgesAdded))
	r.metrics.EdgesRemoved.Add(int64(res.EdgesRemoved))
	return info, res, st, nil
}

// Maintainer returns graph id's placement maintainer with budget k,
// creating or re-budgeting it as needed, plus the function to release the
// per-entry lock the caller now holds. The lock spans the whole maintain
// run so a concurrent PATCH cannot mutate the overlay mid-placement.
// parallelism bounds the Greedy_All workers of recompute fallbacks (it is
// fixed at maintainer creation; later calls reuse the existing one).
func (r *Registry) Maintainer(id string, k, parallelism int) (*dyn.Maintainer, func(), error) {
	e, ok := r.entry(id)
	if !ok {
		return nil, nil, ErrUnknownGraph
	}
	e.dynMu.Lock()
	if err := r.upgradeLocked(e); err != nil {
		e.dynMu.Unlock()
		return nil, nil, err
	}
	if e.maintainer == nil {
		mt, err := dyn.NewMaintainer(e.dynamic, dyn.Options{K: k, Parallelism: parallelism, Splicer: e.splicer}, nil)
		if err != nil {
			e.dynMu.Unlock()
			return nil, nil, err
		}
		e.maintainer = mt
	} else if err := e.maintainer.SetK(k); err != nil {
		e.dynMu.Unlock()
		return nil, nil, err
	}
	return e.maintainer, e.dynMu.Unlock, nil
}

// upgradeLocked creates the dynamic overlay from the current immutable
// model; the caller holds e.dynMu.
func (r *Registry) upgradeLocked(e *graphEntry) error {
	if e.dynamic != nil {
		return nil
	}
	r.mu.Lock()
	m := e.model
	r.mu.Unlock()
	d, err := dyn.FromDigraph(m.Graph(), m.Sources())
	if err != nil {
		return err
	}
	e.dynamic = d
	// Adopt the model's already-built plan so the first PATCH splices
	// instead of paying a from-scratch build.
	e.splicer = flow.NewSplicer(d, m.Plan(), r.spliceOpts)
	return nil
}

// Delete removes a graph; it reports whether the id existed.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.entries.delete(id) {
		return false
	}
	r.metrics.GraphsDeleted.Add(1)
	return true
}

// List returns every registered graph, most recently used first.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, r.entries.len())
	r.entries.each(func(e *graphEntry) { out = append(out, e.info) })
	return out
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries.len()
}
