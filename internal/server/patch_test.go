package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// patchJSON sends a PATCH to /v1/graphs/{id}/edges.
func patchJSON(t *testing.T, base, id string, spec server.PatchSpec, out *server.PatchResult) int {
	t.Helper()
	var dst any
	if out != nil {
		dst = out
	}
	return doJSON(t, "PATCH", base+"/v1/graphs/"+id+"/edges", spec, dst)
}

func metricsSnapshot(t *testing.T, base string) server.MetricsSnapshot {
	t.Helper()
	var snap server.MetricsSnapshot
	if code := doJSON(t, "GET", base+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	return snap
}

// TestPatchRoundTripWithCacheInvalidation is the acceptance criterion:
// PATCH round-trips through fpd and drops the stale cached placement.
func TestPatchRoundTripWithCacheInvalidation(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	info := uploadDiamond(t, ts.URL)

	// Cache a greedy placement for the pristine diamond.
	var ji server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &ji); code != http.StatusAccepted {
		t.Fatalf("place: status %d", code)
	}
	done := waitJob(t, ts.URL, ji.ID)
	if done.State != server.JobDone || done.Result == nil {
		t.Fatalf("job = %+v", done)
	}
	// A repeat query must now answer 200 from the cache.
	var cached server.PlaceResult
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &cached); code != http.StatusOK || !cached.Cached {
		t.Fatalf("expected cache hit, status %d cached %v", code, cached.Cached)
	}

	// Mutate: graft a second junction feeding the sink.
	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{AddNodes: 1, Add: [][2]int{{1, 4}, {1, 5}, {2, 5}, {5, 4}}}, &pr); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	if pr.Graph.Nodes != 6 || pr.EdgesAdded != 4 || pr.NodesAdded != 1 || pr.Graph.Patches != 1 {
		t.Fatalf("patch result = %+v", pr)
	}
	if pr.Invalidated < 1 {
		t.Fatalf("cache_invalidated = %d, want ≥ 1", pr.Invalidated)
	}

	// The graph info endpoint serves the mutated shape.
	var got server.GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("GET graph: status %d", code)
	}
	if got.Nodes != 6 || got.Edges != 9 {
		t.Fatalf("info after patch = %+v", got)
	}

	// The same placement query must MISS now (202: a fresh job), and its
	// result must reflect the mutated graph.
	var ji2 server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &ji2); code != http.StatusAccepted {
		t.Fatalf("place after patch: status %d, want 202 (stale cache served?)", code)
	}
	done2 := waitJob(t, ts.URL, ji2.ID)
	if done2.State != server.JobDone || done2.Result == nil {
		t.Fatalf("job2 = %+v", done2)
	}
	if done2.Result.PhiEmpty == done.Result.PhiEmpty {
		t.Fatalf("Φ(∅) unchanged (%v) — placement ran on the stale graph", done.Result.PhiEmpty)
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.GraphsPatched != 1 || snap.EdgesAdded != 4 || snap.CacheInvalidations < 1 {
		t.Errorf("metrics = %+v", snap)
	}
}

func TestPatchCycleRejected(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{Add: [][2]int{{4, 3}}}, &pr); code != http.StatusConflict {
		t.Fatalf("cyclic patch: status %d, want 409", code)
	}
	// Nothing changed.
	var got server.GraphInfo
	doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID, nil, &got)
	if got.Edges != 5 || got.Patches != 0 {
		t.Fatalf("info after rejected patch = %+v", got)
	}
}

func TestPatchErrors(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	cases := []struct {
		name string
		spec server.PatchSpec
		code int
	}{
		{"unknown graph handled elsewhere", server.PatchSpec{}, http.StatusBadRequest},
		{"empty batch", server.PatchSpec{}, http.StatusBadRequest},
		{"bad text patch", server.PatchSpec{Patch: "+ 1\n"}, http.StatusBadRequest},
		{"missing removal", server.PatchSpec{Remove: [][2]int{{0, 4}}}, http.StatusUnprocessableEntity},
		{"duplicate add", server.PatchSpec{Add: [][2]int{{0, 3}, {0, 3}}}, http.StatusUnprocessableEntity},
		{"edge into source", server.PatchSpec{Add: [][2]int{{4, 0}}}, http.StatusUnprocessableEntity},
		{"maintain without k", server.PatchSpec{Add: [][2]int{{0, 3}}, Maintain: true}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := patchJSON(t, ts.URL, info.ID, tc.spec, nil); code != tc.code {
				t.Errorf("status %d, want %d", code, tc.code)
			}
		})
	}
	if code := patchJSON(t, ts.URL, "nope", server.PatchSpec{Add: [][2]int{{0, 3}}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
}

func TestPatchTextForm(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{Patch: "# graft\nn 1\n+ 3 5\n- 0 2\n"}, &pr); code != http.StatusOK {
		t.Fatalf("text patch: status %d", code)
	}
	if pr.NodesAdded != 1 || pr.EdgesAdded != 1 || pr.EdgesRemoved != 1 {
		t.Fatalf("text patch result = %+v", pr)
	}
}

// TestPatchAutoMaintain drives the auto-maintain job kind end to end: the
// job computes a placement for the mutated graph, and once the maintainer
// is warm a local mutation takes the incremental path.
func TestPatchAutoMaintain(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	// A wide fan off the root (nodes 1..40 are sinks) plus one diamond
	// 41→{42,43}→44→45 hanging off it: mutations inside the diamond leave
	// the fan's propagation state untouched, so drift stays small.
	var sb strings.Builder
	for i := 1; i <= 40; i++ {
		fmt.Fprintf(&sb, "0 %d\n", i)
	}
	sb.WriteString("0 41\n41 42\n41 43\n42 44\n43 44\n44 45\n")
	var info server.GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Name: "fan+diamond", Edges: sb.String()}, &info); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{AddNodes: 1, Add: [][2]int{{42, 46}}, Maintain: true, K: 1}, &pr); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	if pr.Job == nil {
		t.Fatalf("no maintain job enqueued: %+v", pr)
	}
	done := waitJob(t, ts.URL, pr.Job.ID)
	if done.State != server.JobDone || done.Result == nil {
		t.Fatalf("maintain job = %+v", done)
	}
	res := done.Result
	if res.Algorithm != "maintain" || res.Maintain == nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Maintain.Strategy != "initial" {
		t.Fatalf("strategy = %q, want initial on a fresh maintainer", res.Maintain.Strategy)
	}
	if len(res.Filters) != 1 || res.Filters[0] != 44 {
		t.Fatalf("maintained filters = %v, want [44]", res.Filters)
	}
	if res.F <= 0 || res.FR <= 0 {
		t.Fatalf("objective not reported: %+v", res)
	}

	// Second local batch: the warm maintainer repairs incrementally.
	var pr2 server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{AddNodes: 1, Add: [][2]int{{43, 47}}, Maintain: true, K: 1}, &pr2); code != http.StatusOK {
		t.Fatalf("patch 2: status %d", code)
	}
	done2 := waitJob(t, ts.URL, pr2.Job.ID)
	if done2.State != server.JobDone || done2.Result == nil || done2.Result.Maintain == nil {
		t.Fatalf("maintain job 2 = %+v", done2)
	}
	if got := done2.Result.Maintain.Strategy; got != "incremental" {
		t.Fatalf("strategy = %q, want incremental on the second batch", got)
	}
	if got := done2.Result.Filters; len(got) != 1 || got[0] != 44 {
		t.Fatalf("maintained filters after batch 2 = %v, want [44]", got)
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.MaintainJobs != 2 {
		t.Errorf("maintain_jobs = %d, want 2", snap.MaintainJobs)
	}
}

// TestPatchPlanSpliceReporting pins the plan-splice observability surface:
// the PATCH response says whether the plan was spliced, /metrics counts the
// repair, and its cost is charged to the requesting tenant.
func TestPatchPlanSpliceReporting(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)

	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{AddNodes: 1, Add: [][2]int{{3, 5}}}, &pr); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	if !pr.PlanSpliced || pr.PlanRepair == nil || !pr.PlanRepair.Spliced {
		t.Fatalf("tiny batch did not splice: %+v (repair %+v)", pr, pr.PlanRepair)
	}
	if pr.PlanRepair.Reason != "" {
		t.Fatalf("spliced repair carries a rebuild reason %q", pr.PlanRepair.Reason)
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.PlanSplices != 1 || snap.PlanRebuilds != 0 {
		t.Errorf("plan repair metrics = %d splices / %d rebuilds, want 1 / 0",
			snap.PlanSplices, snap.PlanRebuilds)
	}
	var usage obs.TenantUsage
	if code := doJSON(t, "GET", ts.URL+"/v1/tenants/default/usage", nil, &usage); code != http.StatusOK {
		t.Fatalf("tenant usage: status %d", code)
	}
	if usage.PlanSplices != 1 || usage.PlanRepairWork <= 0 {
		t.Errorf("tenant plan accounting = %+v, want 1 splice with positive work", usage)
	}
}

// TestPatchSpliceDisabled pins the fallback knob: a negative SpliceMaxCone
// forces every PATCH onto the from-scratch rebuild path, with identical
// client-visible results.
func TestPatchSpliceDisabled(t *testing.T) {
	ts := newTestServer(t, server.Config{SpliceMaxCone: -1})
	info := uploadDiamond(t, ts.URL)
	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{Add: [][2]int{{0, 3}}}, &pr); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	if pr.PlanSpliced || pr.PlanRepair == nil || pr.PlanRepair.Reason == "" {
		t.Fatalf("splice not disabled: %+v (repair %+v)", pr, pr.PlanRepair)
	}
	if snap := metricsSnapshot(t, ts.URL); snap.PlanRebuilds != 1 || snap.PlanSplices != 0 {
		t.Errorf("metrics = %d splices / %d rebuilds, want 0 / 1", snap.PlanSplices, snap.PlanRebuilds)
	}
}

// TestPatchStormSpliceStress is the -race stress for the splice path:
// concurrent PATCH batches (some with auto-maintain) race placements and
// reads on one graph, every successful batch repairs the shared plan, and
// the final spliced plan serves correct evaluations.
func TestPatchStormSpliceStress(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	// A fan 0→1..40: mutator w toggles its own edge (1+w, 21+w), so the
	// goroutines never conflict and every batch is accepted.
	var sb strings.Builder
	for i := 1; i <= 40; i++ {
		fmt.Fprintf(&sb, "0 %d\n", i)
	}
	var info server.GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Name: "fan", Edges: sb.String()}, &info); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	const (
		mutators = 4
		rounds   = 20
	)
	send := func(spec server.PatchSpec) (server.PatchResult, int, error) {
		b, err := json.Marshal(spec)
		if err != nil {
			return server.PatchResult{}, 0, err
		}
		req, err := http.NewRequest("PATCH", ts.URL+"/v1/graphs/"+info.ID+"/edges", bytes.NewReader(b))
		if err != nil {
			return server.PatchResult{}, 0, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return server.PatchResult{}, 0, err
		}
		defer resp.Body.Close()
		var pr server.PatchResult
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				return server.PatchResult{}, resp.StatusCode, err
			}
		}
		return pr, resp.StatusCode, nil
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		jobIDs []string
		errs   []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		errs = append(errs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := 1+w, 21+w
			for i := 0; i < rounds; i++ {
				spec := server.PatchSpec{}
				if i%2 == 0 {
					spec.Add = [][2]int{{a, b}}
				} else {
					spec.Remove = [][2]int{{a, b}}
				}
				if i%5 == 0 {
					spec.Maintain, spec.K = true, 2
				}
				pr, code, err := send(spec)
				if err != nil || code != http.StatusOK {
					fail("mutator %d round %d: status %d err %v", w, i, code, err)
					return
				}
				if pr.PlanRepair == nil {
					fail("mutator %d round %d: no plan repair reported", w, i)
					return
				}
				if pr.Job != nil {
					mu.Lock()
					jobIDs = append(jobIDs, pr.Job.ID)
					mu.Unlock()
				}
			}
		}(w)
	}
	// Readers race the mutators on the same graph: evaluations and info
	// reads must always see a consistent model.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2*rounds; i++ {
				resp, err := http.Get(ts.URL + "/v1/graphs/" + info.ID + "/evaluate?filters=5,9")
				if err != nil {
					fail("reader: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("reader: evaluate status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range jobIDs {
		if done := waitJob(t, ts.URL, id); done.State != server.JobDone {
			t.Fatalf("maintain job %s = %+v", id, done)
		}
	}

	// Each mutator ran an equal number of adds and removes, so the fan is
	// back to its original 40 edges — and the spliced plan must agree.
	var got server.GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("GET graph: status %d", code)
	}
	if got.Edges != 40 || got.Patches != mutators*rounds {
		t.Fatalf("after storm: %+v, want 40 edges and %d patches", got, mutators*rounds)
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.GraphsPatched != mutators*rounds {
		t.Fatalf("graphs_patched = %d, want %d", snap.GraphsPatched, mutators*rounds)
	}
	if snap.PlanSplices+snap.PlanRebuilds < snap.GraphsPatched {
		t.Fatalf("plan repairs %d+%d < patches %d: a batch skipped plan repair",
			snap.PlanSplices, snap.PlanRebuilds, snap.GraphsPatched)
	}
	// The fan's Φ(∅): root emits 1 copy to each of its 40 children.
	var ev server.PlaceResult
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID+"/evaluate?filters=", nil, &ev); code != http.StatusOK {
		t.Fatalf("final evaluate: status %d", code)
	}
	if ev.PhiEmpty != 40 {
		t.Fatalf("Φ(∅) over the post-storm plan = %v, want 40", ev.PhiEmpty)
	}
}

func TestMetricsGauges(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	snap := metricsSnapshot(t, ts.URL)
	if snap.JobQueueDepth != 0 || snap.CacheEntries != 0 {
		t.Errorf("fresh gauges = %+v", snap)
	}
}
