package server_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/server"
)

// patchJSON sends a PATCH to /v1/graphs/{id}/edges.
func patchJSON(t *testing.T, base, id string, spec server.PatchSpec, out *server.PatchResult) int {
	t.Helper()
	var dst any
	if out != nil {
		dst = out
	}
	return doJSON(t, "PATCH", base+"/v1/graphs/"+id+"/edges", spec, dst)
}

func metricsSnapshot(t *testing.T, base string) server.MetricsSnapshot {
	t.Helper()
	var snap server.MetricsSnapshot
	if code := doJSON(t, "GET", base+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	return snap
}

// TestPatchRoundTripWithCacheInvalidation is the acceptance criterion:
// PATCH round-trips through fpd and drops the stale cached placement.
func TestPatchRoundTripWithCacheInvalidation(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	info := uploadDiamond(t, ts.URL)

	// Cache a greedy placement for the pristine diamond.
	var ji server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &ji); code != http.StatusAccepted {
		t.Fatalf("place: status %d", code)
	}
	done := waitJob(t, ts.URL, ji.ID)
	if done.State != server.JobDone || done.Result == nil {
		t.Fatalf("job = %+v", done)
	}
	// A repeat query must now answer 200 from the cache.
	var cached server.PlaceResult
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &cached); code != http.StatusOK || !cached.Cached {
		t.Fatalf("expected cache hit, status %d cached %v", code, cached.Cached)
	}

	// Mutate: graft a second junction feeding the sink.
	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{AddNodes: 1, Add: [][2]int{{1, 4}, {1, 5}, {2, 5}, {5, 4}}}, &pr); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	if pr.Graph.Nodes != 6 || pr.EdgesAdded != 4 || pr.NodesAdded != 1 || pr.Graph.Patches != 1 {
		t.Fatalf("patch result = %+v", pr)
	}
	if pr.Invalidated < 1 {
		t.Fatalf("cache_invalidated = %d, want ≥ 1", pr.Invalidated)
	}

	// The graph info endpoint serves the mutated shape.
	var got server.GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("GET graph: status %d", code)
	}
	if got.Nodes != 6 || got.Edges != 9 {
		t.Fatalf("info after patch = %+v", got)
	}

	// The same placement query must MISS now (202: a fresh job), and its
	// result must reflect the mutated graph.
	var ji2 server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &ji2); code != http.StatusAccepted {
		t.Fatalf("place after patch: status %d, want 202 (stale cache served?)", code)
	}
	done2 := waitJob(t, ts.URL, ji2.ID)
	if done2.State != server.JobDone || done2.Result == nil {
		t.Fatalf("job2 = %+v", done2)
	}
	if done2.Result.PhiEmpty == done.Result.PhiEmpty {
		t.Fatalf("Φ(∅) unchanged (%v) — placement ran on the stale graph", done.Result.PhiEmpty)
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.GraphsPatched != 1 || snap.EdgesAdded != 4 || snap.CacheInvalidations < 1 {
		t.Errorf("metrics = %+v", snap)
	}
}

func TestPatchCycleRejected(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{Add: [][2]int{{4, 3}}}, &pr); code != http.StatusConflict {
		t.Fatalf("cyclic patch: status %d, want 409", code)
	}
	// Nothing changed.
	var got server.GraphInfo
	doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID, nil, &got)
	if got.Edges != 5 || got.Patches != 0 {
		t.Fatalf("info after rejected patch = %+v", got)
	}
}

func TestPatchErrors(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	cases := []struct {
		name string
		spec server.PatchSpec
		code int
	}{
		{"unknown graph handled elsewhere", server.PatchSpec{}, http.StatusBadRequest},
		{"empty batch", server.PatchSpec{}, http.StatusBadRequest},
		{"bad text patch", server.PatchSpec{Patch: "+ 1\n"}, http.StatusBadRequest},
		{"missing removal", server.PatchSpec{Remove: [][2]int{{0, 4}}}, http.StatusUnprocessableEntity},
		{"duplicate add", server.PatchSpec{Add: [][2]int{{0, 3}, {0, 3}}}, http.StatusUnprocessableEntity},
		{"edge into source", server.PatchSpec{Add: [][2]int{{4, 0}}}, http.StatusUnprocessableEntity},
		{"maintain without k", server.PatchSpec{Add: [][2]int{{0, 3}}, Maintain: true}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := patchJSON(t, ts.URL, info.ID, tc.spec, nil); code != tc.code {
				t.Errorf("status %d, want %d", code, tc.code)
			}
		})
	}
	if code := patchJSON(t, ts.URL, "nope", server.PatchSpec{Add: [][2]int{{0, 3}}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
}

func TestPatchTextForm(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{Patch: "# graft\nn 1\n+ 3 5\n- 0 2\n"}, &pr); code != http.StatusOK {
		t.Fatalf("text patch: status %d", code)
	}
	if pr.NodesAdded != 1 || pr.EdgesAdded != 1 || pr.EdgesRemoved != 1 {
		t.Fatalf("text patch result = %+v", pr)
	}
}

// TestPatchAutoMaintain drives the auto-maintain job kind end to end: the
// job computes a placement for the mutated graph, and once the maintainer
// is warm a local mutation takes the incremental path.
func TestPatchAutoMaintain(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	// A wide fan off the root (nodes 1..40 are sinks) plus one diamond
	// 41→{42,43}→44→45 hanging off it: mutations inside the diamond leave
	// the fan's propagation state untouched, so drift stays small.
	var sb strings.Builder
	for i := 1; i <= 40; i++ {
		fmt.Fprintf(&sb, "0 %d\n", i)
	}
	sb.WriteString("0 41\n41 42\n41 43\n42 44\n43 44\n44 45\n")
	var info server.GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Name: "fan+diamond", Edges: sb.String()}, &info); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	var pr server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{AddNodes: 1, Add: [][2]int{{42, 46}}, Maintain: true, K: 1}, &pr); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	if pr.Job == nil {
		t.Fatalf("no maintain job enqueued: %+v", pr)
	}
	done := waitJob(t, ts.URL, pr.Job.ID)
	if done.State != server.JobDone || done.Result == nil {
		t.Fatalf("maintain job = %+v", done)
	}
	res := done.Result
	if res.Algorithm != "maintain" || res.Maintain == nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Maintain.Strategy != "initial" {
		t.Fatalf("strategy = %q, want initial on a fresh maintainer", res.Maintain.Strategy)
	}
	if len(res.Filters) != 1 || res.Filters[0] != 44 {
		t.Fatalf("maintained filters = %v, want [44]", res.Filters)
	}
	if res.F <= 0 || res.FR <= 0 {
		t.Fatalf("objective not reported: %+v", res)
	}

	// Second local batch: the warm maintainer repairs incrementally.
	var pr2 server.PatchResult
	if code := patchJSON(t, ts.URL, info.ID,
		server.PatchSpec{AddNodes: 1, Add: [][2]int{{43, 47}}, Maintain: true, K: 1}, &pr2); code != http.StatusOK {
		t.Fatalf("patch 2: status %d", code)
	}
	done2 := waitJob(t, ts.URL, pr2.Job.ID)
	if done2.State != server.JobDone || done2.Result == nil || done2.Result.Maintain == nil {
		t.Fatalf("maintain job 2 = %+v", done2)
	}
	if got := done2.Result.Maintain.Strategy; got != "incremental" {
		t.Fatalf("strategy = %q, want incremental on the second batch", got)
	}
	if got := done2.Result.Filters; len(got) != 1 || got[0] != 44 {
		t.Fatalf("maintained filters after batch 2 = %v, want [44]", got)
	}

	snap := metricsSnapshot(t, ts.URL)
	if snap.MaintainJobs != 2 {
		t.Errorf("maintain_jobs = %d, want 2", snap.MaintainJobs)
	}
}

func TestMetricsGauges(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	snap := metricsSnapshot(t, ts.URL)
	if snap.JobQueueDepth != 0 || snap.CacheEntries != 0 {
		t.Errorf("fresh gauges = %+v", snap)
	}
}
