package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// JobState is the lifecycle of an asynchronous placement job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("server: job queue full")

// ErrClosed is returned by Submit after the engine has shut down.
var ErrClosed = errors.New("server: job engine closed")

// JobMeta carries the request identity a job was created under: the
// tenant its work is accounted to, the client-visible request id, and
// the W3C traceparent so the job's timeline and logs join the caller's
// distributed trace. The zero value (direct library use) means the
// default tenant and no trace.
type JobMeta struct {
	Tenant      string
	RequestID   string
	Traceparent string
}

// JobInfo is the JSON view of a job served by GET /v1/jobs/{id}.
type JobInfo struct {
	ID      string       `json:"id"`
	GraphID string       `json:"graph_id"`
	Spec    PlaceSpec    `json:"spec"`
	State   JobState     `json:"state"`
	Error   string       `json:"error,omitempty"`
	Result  *PlaceResult `json:"result,omitempty"`
	// Tenant, RequestID and Traceparent echo the identity of the request
	// that submitted the job (see JobMeta).
	Tenant      string `json:"tenant,omitempty"`
	RequestID   string `json:"request_id,omitempty"`
	Traceparent string `json:"traceparent,omitempty"`
	// Batch holds the per-graph sub-placements of a gang-submitted batch
	// job, in canonical (sorted) graph order; nil for ordinary jobs.
	Batch     []BatchItem `json:"batch,omitempty"`
	Created   time.Time   `json:"created_at"`
	Started   *time.Time  `json:"started_at,omitempty"`
	Finished  *time.Time  `json:"finished_at,omitempty"`
	ElapsedMS int64       `json:"elapsed_ms,omitempty"`
	// Timeline is the job's stage trace: lifecycle phases (queued,
	// deferred-wait, run) plus the placement stages core.Place recorded
	// (greedy-round, celf-init, …), each with a start offset relative to
	// submission and a total duration, merged by stage name. Present as
	// soon as a job starts; complete once the job is terminal.
	Timeline []obs.StageRecord `json:"timeline,omitempty"`
}

// job is the engine-internal record; every field after construction is
// guarded by the engine mutex except the immutable inputs.
type job struct {
	id      string
	graphID string
	spec    PlaceSpec
	key     string
	// runFn is the job's work. Every kind supplies one: solo placements
	// close over Server.runShared (which owns cache fills and in-flight
	// dedup), auto-maintain and batch jobs their own closures.
	runFn func(context.Context) (*PlaceResult, error)
	// batch, when set, tracks the per-graph sub-placements of a gang job;
	// it has its own mutex and is safe to snapshot under the engine lock.
	batch *batchState
	// meta is the submitting request's identity (immutable after
	// construction, so event publication may read it without the lock).
	meta JobMeta

	state    JobState
	result   *PlaceResult
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	// admitted is when a deferred gang moved from the admission wait
	// queue into the worker queue; zero for jobs admitted directly.
	admitted time.Time
	// trace records the job's stage timeline from submission on; the
	// worker threads it through the run context so core.Place stages land
	// on it too.
	trace  *obs.Trace
	cancel context.CancelFunc
	done   chan struct{}
}

// JobEngine runs expensive placements on a fixed worker pool, tracks job
// lifecycles, supports cancellation via context, and feeds completed
// results into the shared result cache.
type JobEngine struct {
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string        // submission order, for listing
	active  map[string]*job // non-terminal jobs by cache key, for dedup
	queue   chan *job
	closed  bool
	nextID  int
	maxJobs int
	cache   *resultCache
	metrics *Metrics
	// obs carries the engine's latency histograms, stage sink and slow
	// log; nil (direct library use) disables all of it.
	obs *engineObs

	// Scheduler-aware gang admission: a gang (batch) job arriving while
	// the shared oracle scheduler is saturated — or while the worker
	// queue is full — is parked in this bounded FIFO instead of being
	// rejected with 503; the dispatcher goroutine feeds it to the queue
	// once the scheduler drains. Solo jobs keep the plain bounded-queue
	// contract (clients poll a single placement and should see back
	// pressure immediately; gangs represent minutes of fleet work and are
	// worth queueing for).
	deferred    []*job
	maxDeferred int
	// satProbe reports whether the shared scheduler is saturated; tests
	// inject their own. Guarded by mu (set before any Submit).
	satProbe func() bool
	dispStop chan struct{}
	dispKick chan struct{} // 1-buffered nudge: a gang was just parked
	dispWG   sync.WaitGroup

	// doneTimes is a ring of recent job completion instants; the observed
	// drain rate prices the Retry-After hint on 503 admission rejections.
	doneTimes [completionRingSize]time.Time
	doneIdx   int
	doneN     int

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// schedSaturated is the default saturation probe: the process-wide pool
// has more unstarted oracle tasks than 4× its workers — adding a gang's
// worth of sub-placements now would only deepen the backlog.
func schedSaturated() bool {
	p := sched.Default()
	w := p.Workers()
	if w < 1 {
		w = 1
	}
	return p.QueueDepth() > 4*w
}

// NewJobEngine starts workers goroutines consuming a queue of queueDepth
// pending jobs. At most maxJobs job records are retained: once a job is
// terminal its model is released and the oldest terminal records beyond
// the bound are pruned, so a long-running daemon's memory stays bounded.
// o (optional, may be nil) wires the engine's observability: lifecycle
// histograms, the stage sink and the slow-placement log.
func NewJobEngine(workers, queueDepth, maxJobs int, cache *resultCache, m *Metrics, o *engineObs) *JobEngine {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	// The retention bound must leave room for every job that can be live
	// at once (queued + running), or fresh jobs would starve pruning and a
	// just-issued job id could 404 while its client polls.
	if min := workers + queueDepth + 1; maxJobs < min {
		maxJobs = min
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &JobEngine{
		jobs:        make(map[string]*job),
		active:      make(map[string]*job),
		queue:       make(chan *job, queueDepth),
		maxJobs:     maxJobs,
		maxDeferred: queueDepth,
		satProbe:    schedSaturated,
		dispStop:    make(chan struct{}),
		dispKick:    make(chan struct{}, 1),
		cache:       cache,
		metrics:     m,
		obs:         o,
		baseCtx:     ctx,
		baseCancel:  cancel,
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	e.dispWG.Add(1)
	go e.dispatch()
	return e
}

// SubmitFunc enqueues a job whose work is the given closure — solo
// placements (via Server.runShared) and auto-maintain both submit this
// way. spec documents the job for listings; key drives in-flight
// submission dedup: an identical request already queued or running —
// same cache key — is not duplicated, the existing job is returned, so
// client retries and concurrent identical queries share one computation.
// meta attributes the job to the submitting request (zero value for
// direct library use).
func (e *JobEngine) SubmitFunc(graphID string, spec PlaceSpec, key string, meta JobMeta, fn func(context.Context) (*PlaceResult, error)) (JobInfo, error) {
	return e.enqueue(&job{graphID: graphID, spec: spec, key: key, meta: meta, runFn: fn})
}

// SubmitBatch enqueues a gang job: one record whose closure runs a whole
// multi-graph placement and whose per-graph progress is tracked in bs
// (surfaced as JobInfo.Batch). key dedups identical in-flight gangs; the
// closure populates per-graph cache entries itself, so the job-level
// result stays nil.
func (e *JobEngine) SubmitBatch(graphID string, spec PlaceSpec, key string, meta JobMeta, bs *batchState, fn func(context.Context) (*PlaceResult, error)) (JobInfo, error) {
	return e.enqueue(&job{graphID: graphID, spec: spec, key: key, meta: meta, batch: bs, runFn: fn})
}

// event builds the skeleton lifecycle event for the job; every field it
// reads is immutable after construction.
func (j *job) event(typ string) JobEvent {
	return JobEvent{
		Type:        typ,
		JobID:       j.id,
		GraphID:     j.graphID,
		Algorithm:   j.spec.Algorithm,
		Tenant:      j.meta.Tenant,
		RequestID:   j.meta.RequestID,
		Traceparent: j.meta.Traceparent,
	}
}

// publish forwards a lifecycle event to the server's event bus; a nil
// engineObs (direct library use) drops it. Safe under e.mu: the bus has
// its own lock and never calls back into the engine.
func (e *JobEngine) publish(ev JobEvent) {
	if e.obs != nil {
		e.obs.events.publish(ev)
	}
}

// tenant resolves the accounting sink for a tenant name; nil (a no-op)
// without an engineObs or when accounting is disabled.
func (e *JobEngine) tenant(name string) *obs.TenantCounters {
	if e.obs == nil {
		return nil
	}
	return e.obs.acct.Tenant(name)
}

// enqueue assigns the job id and runs the shared admission bookkeeping:
// closed check, in-flight dedup by cache key, bounded queue push with id
// rollback on rejection.
func (e *JobEngine) enqueue(j *job) (JobInfo, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	if dup, ok := e.active[j.key]; ok {
		info := e.infoLocked(dup)
		e.mu.Unlock()
		e.metrics.JobsDeduped.Add(1)
		return info, nil
	}
	e.nextID++
	j.id = fmt.Sprintf("j%d", e.nextID)
	j.state = JobQueued
	j.created = time.Now().UTC()
	j.trace = obs.NewTrace() // t0 = submission; stage offsets are relative to it
	j.trace.SetTraceParent(j.meta.Traceparent)
	j.done = make(chan struct{})
	deferredJob := false
	admit := true
	// A gang parks when the scheduler is saturated, and also whenever
	// older gangs are already parked — jumping the deferred queue would
	// starve them behind a sustained arrival rate.
	if j.batch != nil && (len(e.deferred) > 0 || e.satProbe()) {
		admit = false
	}
	if admit {
		select {
		case e.queue <- j:
		default:
			admit = false // queue full
		}
	}
	if !admit {
		// Gangs get the bounded wait queue; solo jobs keep immediate back
		// pressure.
		if j.batch == nil || len(e.deferred) >= e.maxDeferred {
			e.nextID-- // slot unused
			e.mu.Unlock()
			e.metrics.JobsRejected.Add(1)
			return JobInfo{}, ErrQueueFull
		}
		e.deferred = append(e.deferred, j)
		deferredJob = true
		select {
		case e.dispKick <- struct{}{}: // wake the idle dispatcher
		default:
		}
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.active[j.key] = j
	info := e.infoLocked(j)
	// Published under the lock so a worker grabbing the job cannot emit
	// "started" ahead of "submitted"; the bus never blocks or re-enters.
	e.publish(j.event(EventSubmitted))
	if deferredJob {
		e.publish(j.event(EventDeferred))
	}
	e.mu.Unlock()
	e.tenant(j.meta.Tenant).AddJobSubmitted()
	e.metrics.JobsSubmitted.Add(1)
	if deferredJob {
		e.metrics.JobsDeferred.Add(1)
	}
	if j.batch != nil {
		e.metrics.BatchesSubmitted.Add(1)
	}
	return info, nil
}

// dispatch is the deferred-gang feeder: while gangs are parked it
// re-probes the shared scheduler every few milliseconds (saturation
// clearing has no event to wait on) and moves them into the worker
// queue, oldest first, once the scheduler has drained and a queue slot
// is free; with nothing parked it sleeps until enqueue kicks it. It
// stops (leaving any remaining parked jobs to Close's cancellation
// sweep) when the engine shuts down.
func (e *JobEngine) dispatch() {
	defer e.dispWG.Done()
	for {
		if e.DeferredDepth() == 0 {
			select {
			case <-e.dispStop:
				return
			case <-e.dispKick:
			}
			continue
		}
		tick := time.NewTicker(2 * time.Millisecond)
		for e.DeferredDepth() > 0 {
			select {
			case <-e.dispStop:
				tick.Stop()
				return
			case <-tick.C:
				e.admitDeferred()
			}
		}
		tick.Stop()
	}
}

// admitDeferred drains the front of the deferred queue into the worker
// queue while the scheduler has room.
func (e *JobEngine) admitDeferred() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.deferred) > 0 {
		j := e.deferred[0]
		if j.state != JobQueued { // canceled while parked
			e.deferred = e.deferred[1:]
			continue
		}
		if e.satProbe() {
			return
		}
		select {
		case e.queue <- j:
			j.admitted = time.Now().UTC()
			j.trace.Observe("deferred-wait", j.created, j.admitted.Sub(j.created))
			e.deferred = e.deferred[1:]
		default:
			return // worker queue still full
		}
	}
}

// DeferredDepth returns the number of gang jobs parked in the admission
// wait queue.
func (e *JobEngine) DeferredDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.deferred)
}

// DeferredStats samples the admission wait queue for /metrics: how many
// gangs are parked and how long the oldest has been waiting. The
// deferred queue is FIFO, so the front entry is the oldest.
func (e *JobEngine) DeferredStats() (waiting int, oldest time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	waiting = len(e.deferred)
	if waiting > 0 {
		oldest = time.Since(e.deferred[0].created)
	}
	return waiting, oldest
}

// QueueDepth returns the number of jobs waiting for a worker; surfaced in
// /metrics so auto-maintain backlog is observable.
func (e *JobEngine) QueueDepth() int { return len(e.queue) }

func (e *JobEngine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.mu.Lock()
		if j.state != JobQueued { // canceled while waiting
			e.mu.Unlock()
			continue
		}
		if e.baseCtx.Err() != nil {
			// The engine is closing: don't start the job at all. Running
			// it with a pre-canceled context would still pay evaluator
			// construction (full Φ passes on a large graph) per queued
			// job, stalling Close behind the whole backlog.
			j.state = JobCanceled
			j.finished = time.Now().UTC()
			j.trace.Observe("queued", j.queuedFrom(), j.finished.Sub(j.queuedFrom()))
			if j.batch != nil {
				j.batch.cancelPending()
			}
			e.retireLocked(j)
			e.publish(j.event(EventCanceled))
			e.mu.Unlock()
			e.tenant(j.meta.Tenant).AddJobOutcome(string(JobCanceled))
			e.metrics.JobsCanceled.Add(1)
			close(j.done)
			continue
		}
		ctx, cancel := context.WithCancel(e.baseCtx)
		j.state = JobRunning
		j.started = time.Now().UTC()
		j.cancel = cancel
		j.trace.Observe("queued", j.queuedFrom(), j.started.Sub(j.queuedFrom()))
		if e.obs != nil {
			if e.obs.queueWait != nil {
				e.obs.queueWait.Observe(j.started.Sub(j.created))
			}
			// Core placement stages recorded between here and SetSink(nil)
			// below also feed the fpd_place_stage_seconds histograms, and
			// each first-seen stage name becomes one live "stage" event.
			j.trace.SetSink(e.obs.stageSink)
			j.trace.SetStageObserver(func(name string) {
				ev := j.event(EventStage)
				ev.Stage = name
				e.publish(ev)
			})
		}
		e.publish(j.event(EventStarted))
		e.mu.Unlock()
		e.tenant(j.meta.Tenant).AddQueueWait(j.started.Sub(j.created))

		e.metrics.JobsRunning.Add(1)
		res, err := j.runFn(obs.NewContext(ctx, j.trace))
		e.metrics.JobsRunning.Add(-1)
		cancel()

		e.mu.Lock()
		j.finished = time.Now().UTC()
		j.trace.SetSink(nil)
		j.trace.SetStageObserver(nil)
		elapsed := j.finished.Sub(j.started)
		j.trace.Observe("run", j.started, elapsed)
		if e.obs != nil && e.obs.runTime != nil {
			e.obs.runTime.Observe(elapsed)
		}
		switch {
		case err == nil:
			j.state = JobDone
			j.result = res
			// Caching is the closure's business: solo placements fill
			// their per-graph slot inside runShared (where in-flight
			// dedup lives), batch closures fill per-graph slots as
			// sub-placements complete, and auto-maintain keys are
			// write-only version stamps nothing reads back.
			e.metrics.JobsCompleted.Add(1)
		case errors.Is(err, context.Canceled):
			j.state = JobCanceled
			e.metrics.JobsCanceled.Add(1)
		default:
			j.state = JobFailed
			j.errMsg = err.Error()
			e.metrics.JobsFailed.Add(1)
		}
		e.retireLocked(j)
		e.doneTimes[e.doneIdx] = j.finished
		e.doneIdx = (e.doneIdx + 1) % completionRingSize
		if e.doneN < completionRingSize {
			e.doneN++
		}
		terminal := j.event(terminalEvent(j.state))
		terminal.Error = j.errMsg
		e.publish(terminal)
		state, errMsg := j.state, j.errMsg
		e.mu.Unlock()
		tc := e.tenant(j.meta.Tenant)
		tc.AddRunTime(elapsed)
		tc.AddJobOutcome(string(state))
		e.logJobDone(j, state, errMsg, elapsed)
		close(j.done)
	}
}

// terminalEvent maps a terminal job state to its event type.
func terminalEvent(st JobState) string {
	switch st {
	case JobDone:
		return EventFinished
	case JobFailed:
		return EventFailed
	default:
		return EventCanceled
	}
}

// completionRingSize bounds the Retry-After drain-rate sample window.
const completionRingSize = 32

// RetryAfterEstimate prices the Retry-After hint attached to 503 queue
// rejections: the average interval between recent job completions times
// the work currently ahead of a new arrival, clamped to [1s, 60s]. With
// fewer than two completions observed there is no rate yet; a flat 2s
// keeps clients polling rather than stampeding.
func (e *JobEngine) RetryAfterEstimate() time.Duration {
	e.mu.Lock()
	pending := len(e.queue) + len(e.deferred)
	n := e.doneN
	var oldest, newest time.Time
	if n >= 2 {
		newest = e.doneTimes[(e.doneIdx-1+completionRingSize)%completionRingSize]
		if n < completionRingSize {
			oldest = e.doneTimes[0]
		} else {
			oldest = e.doneTimes[e.doneIdx]
		}
	}
	e.mu.Unlock()

	est := 2 * time.Second
	if n >= 2 {
		if avg := newest.Sub(oldest) / time.Duration(n-1); avg > 0 {
			est = avg * time.Duration(pending+1)
		}
	}
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// Closed reports whether the engine has been shut down (the /readyz
// check: a closed engine can accept no more work).
func (e *JobEngine) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// queuedFrom is the instant the job last entered the worker queue: its
// deferred-queue admission for parked gangs, its submission otherwise.
func (j *job) queuedFrom() time.Time {
	if !j.admitted.IsZero() {
		return j.admitted
	}
	return j.created
}

// logJobDone emits the job's terminal log line, plus the slow-placement
// warning (with the full stage timeline) when the run exceeded the
// configured threshold.
func (e *JobEngine) logJobDone(j *job, state JobState, errMsg string, elapsed time.Duration) {
	o := e.obs
	if o == nil || o.logger == nil {
		return
	}
	attrs := []any{
		"job", j.id,
		"graph", j.graphID,
		"algorithm", j.spec.Algorithm,
		"state", string(state),
		"elapsed", elapsed.Round(time.Microsecond),
	}
	if j.meta.Tenant != "" {
		attrs = append(attrs, "tenant", j.meta.Tenant)
	}
	if j.meta.RequestID != "" {
		attrs = append(attrs, "request_id", j.meta.RequestID)
	}
	if j.meta.Traceparent != "" {
		attrs = append(attrs, "traceparent", j.meta.Traceparent)
	}
	if errMsg != "" {
		attrs = append(attrs, "error", errMsg)
	}
	o.logger.Info("job finished", attrs...)
	if o.slowThreshold > 0 && elapsed > o.slowThreshold {
		o.logger.Warn("slow placement",
			"job", j.id,
			"graph", j.graphID,
			"algorithm", j.spec.Algorithm,
			"elapsed", elapsed.Round(time.Microsecond),
			"threshold", o.slowThreshold,
			"timeline", j.trace.Snapshot())
	}
}

// Get returns a snapshot of job id.
func (e *JobEngine) Get(id string) (JobInfo, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return e.infoLocked(j), true
}

// ObserveStage stamps a pre-measured span onto job id's timeline. The
// PATCH handler uses it to attach the synchronous plan-splice work to the
// auto-maintain job it enqueued — the handler holds no live trace of its
// own, and the span predates the job's t0 (Trace clamps the offset).
func (e *JobEngine) ObserveStage(id, name string, start time.Time, d time.Duration) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if ok {
		j.trace.Observe(name, start, d)
	}
}

// Cancel requests cancellation of job id: a queued job is canceled
// immediately, a running job has its context canceled (the worker records
// the terminal state), and a terminal job is left untouched.
func (e *JobEngine) Cancel(id string) (JobInfo, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.finished = time.Now().UTC()
		j.trace.Observe("queued", j.queuedFrom(), j.finished.Sub(j.queuedFrom()))
		if j.batch != nil {
			j.batch.cancelPending()
		}
		e.metrics.JobsCanceled.Add(1)
		e.retireLocked(j)
		e.publish(j.event(EventCanceled))
		e.tenant(j.meta.Tenant).AddJobOutcome(string(JobCanceled))
		close(j.done)
	case JobRunning:
		j.cancel()
	}
	return e.infoLocked(j), true
}

// retireLocked releases a terminal job's heavyweight references (the
// closure captures the model, which can be large and may already be
// evicted from the registry) and prunes the oldest terminal job records
// beyond the retention bound. The job being retired is never pruned in
// the same step, so the client that just submitted it always gets at
// least one successful poll.
func (e *JobEngine) retireLocked(j *job) {
	j.runFn = nil
	if e.active[j.key] == j {
		delete(e.active, j.key)
	}
	if len(e.jobs) <= e.maxJobs {
		return
	}
	kept := e.order[:0]
	excess := len(e.jobs) - e.maxJobs
	for _, id := range e.order {
		if old := e.jobs[id]; excess > 0 && old != j && old.state.Terminal() {
			delete(e.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

// Wait blocks until job id reaches a terminal state or ctx expires.
func (e *JobEngine) Wait(ctx context.Context, id string) (JobInfo, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("server: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
	// Read the retained job pointer rather than the map: the record may
	// have been pruned by a later retirement, but the terminal state is
	// immutable.
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.infoLocked(j), nil
}

// List returns every job in submission order.
func (e *JobEngine) List() []JobInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]JobInfo, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.infoLocked(e.jobs[id]))
	}
	return out
}

// Close cancels running jobs, drains the queue and stops the workers.
// Queued and deferred jobs finish as canceled.
func (e *JobEngine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.baseCancel()
	// Stop the dispatcher before closing the queue channel (it sends on
	// it), then cancel whatever is still parked: those jobs never reached
	// the queue, so no worker will retire them.
	close(e.dispStop)
	e.dispWG.Wait()
	e.mu.Lock()
	for _, j := range e.deferred {
		if j.state != JobQueued {
			continue
		}
		j.state = JobCanceled
		j.finished = time.Now().UTC()
		j.trace.Observe("deferred-wait", j.created, j.finished.Sub(j.created))
		if j.batch != nil {
			j.batch.cancelPending()
		}
		e.retireLocked(j)
		e.publish(j.event(EventCanceled))
		e.tenant(j.meta.Tenant).AddJobOutcome(string(JobCanceled))
		e.metrics.JobsCanceled.Add(1)
		close(j.done)
	}
	e.deferred = nil
	e.mu.Unlock()
	close(e.queue)
	e.wg.Wait()
}

func (e *JobEngine) infoLocked(j *job) JobInfo {
	info := JobInfo{
		ID:          j.id,
		GraphID:     j.graphID,
		Spec:        j.spec,
		State:       j.state,
		Error:       j.errMsg,
		Result:      j.result,
		Tenant:      j.meta.Tenant,
		RequestID:   j.meta.RequestID,
		Traceparent: j.meta.Traceparent,
		Created:     j.created,
	}
	if j.batch != nil {
		// batchState has its own mutex and never acquires the engine's,
		// so snapshotting under the engine lock cannot deadlock.
		info.Batch = j.batch.snapshot()
	}
	// Trace has its own mutex and never acquires the engine's.
	info.Timeline = j.trace.Snapshot()
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
		if !j.started.IsZero() {
			info.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	return info
}
