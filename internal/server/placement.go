package server

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/obs"
)

// PlaceSpec is the POST /v1/graphs/{id}/place request body.
type PlaceSpec struct {
	Algorithm string `json:"algorithm"`
	// K is the filter budget, 1 ≤ k ≤ n (ignored by prop1, which places
	// at every merge node).
	K int `json:"k,omitempty"`
	// Engine selects the arithmetic: "float" (default) or "big".
	Engine string `json:"engine,omitempty"`
	// Sources overrides the graph's registered sources for this request.
	Sources []int `json:"sources,omitempty"`
	// Seed feeds the randomized baselines (randk/randi/randw).
	Seed int64 `json:"seed,omitempty"`
	// Parallelism bounds the worker goroutines evaluating marginal gains
	// for this placement; 0 means serial, values above the server's
	// MaxParallelism are clamped. Results are bit-for-bit independent of
	// the setting, so it does not participate in the result-cache key.
	Parallelism int `json:"parallelism,omitempty"`
	// Quality is the approximate engine's target relative error (approx
	// algorithm only; 0 means the engine default). Zeroed for every other
	// algorithm so it cannot fragment their cache slots.
	Quality float64 `json:"quality,omitempty"`
	// SampleBudget overrides the sampled pass count derived from Quality
	// (approx only; 0 derives from Quality).
	SampleBudget int `json:"sample_budget,omitempty"`
	// Coarsen selects the mlcelf contraction mode: "lossless" restricts
	// coarsening to the bit-exactness-preserving rules, "bounded" (the
	// default) also merges modular twins and locally refines the projected
	// picks. Zeroed for every other algorithm.
	Coarsen string `json:"coarsen,omitempty"`
	// CoarsenRatio is mlcelf's bounded-mode target node ratio in [0, 1]:
	// twin-merge rounds stop once quotient/original nodes falls below it
	// (0 contracts to fixpoint). Lossless rules always run to fixpoint
	// regardless.
	CoarsenRatio float64 `json:"coarsen_ratio,omitempty"`
}

// coarsenOptions maps the spec's validated coarsen fields to core options.
func (sp *PlaceSpec) coarsenOptions() flow.CoarsenOptions {
	return flow.CoarsenOptions{
		TargetRatio: sp.CoarsenRatio,
		Lossless:    sp.Coarsen == "lossless",
	}
}

// PlaceResult is the placement outcome, returned inline for synchronous
// algorithms and through the job API for asynchronous ones.
type PlaceResult struct {
	GraphID   string   `json:"graph_id"`
	Algorithm string   `json:"algorithm"`
	K         int      `json:"k"`
	Filters   []int    `json:"filters"`
	Labels    []string `json:"labels,omitempty"`
	PhiEmpty  float64  `json:"phi_empty"`
	PhiA      float64  `json:"phi_filtered"`
	F         float64  `json:"f"`
	FR        float64  `json:"fr"`
	Cached    bool     `json:"cached"`
	// Parallelism is the worker count the placement actually used.
	Parallelism int `json:"parallelism,omitempty"`
	// Oracle counts the objective-function work the algorithm spent
	// (omitted for strategies that do no marginal-gain evaluation).
	Oracle *core.OracleStats `json:"oracle,omitempty"`
	// Passes counts the topological passes the placement executed — the
	// engine-level cost behind the oracle calls. Unlike Oracle it is an
	// execution measurement and may vary across parallelism settings
	// (parallel CELF runs speculative evaluations), so it never enters
	// cache keys or determinism comparisons.
	Passes *core.PassStats `json:"passes,omitempty"`
	// PhiCI is the approximate engine's sampled confidence interval on
	// Φ(A) — the honesty report that accompanies an estimate-driven
	// placement. Exact algorithms omit it.
	PhiCI *flow.MCResult `json:"phi_ci,omitempty"`
	// Maintain is set by the auto-maintain job kind: what the maintenance
	// pass did to the previous placement.
	Maintain *MaintainInfo `json:"maintain,omitempty"`
	// Coarsen, set by mlcelf only, reports what the graph contraction did.
	// lossless_only true means the result is bit-for-bit celf's.
	Coarsen *flow.CoarsenStats `json:"coarsen,omitempty"`
}

// algoSpec describes one placement algorithm: which core.Place strategy
// runs it, whether it is expensive enough to route through the async job
// engine, and which request fields (seed, k) actually matter for its
// result.
type algoSpec struct {
	async      bool
	randomized bool
	kless      bool // ignores the budget (prop1 places at every merge node)
	approx     bool // estimate-driven: quality/sample_budget apply, result carries phi_ci
	coarsen    bool // multilevel: coarsen/coarsen_ratio apply, result carries coarsen stats
	strategy   core.Strategy
}

var algos = map[string]algoSpec{
	"gall":   {async: true, strategy: core.StrategyGreedyAll},
	"celf":   {async: true, strategy: core.StrategyCELF},
	"approx": {async: true, approx: true, strategy: core.StrategyApproxCELF},
	"mlcelf": {async: true, approx: true, coarsen: true, strategy: core.StrategyMLCELF},
	"gmax":   {strategy: core.StrategyGreedyMax},
	"g1":     {strategy: core.StrategyGreedy1},
	"gl":     {strategy: core.StrategyGreedyL},
	"glfast": {strategy: core.StrategyGreedyLFast},
	"randk":  {randomized: true, strategy: core.StrategyRandK},
	"randi":  {randomized: true, strategy: core.StrategyRandI},
	"randw":  {randomized: true, strategy: core.StrategyRandW},
	"prop1":  {kless: true, strategy: core.StrategyProp1},
}

// Algorithms lists the accepted algorithm names, asynchronous ones first.
func Algorithms() []string {
	names := make([]string, 0, len(algos))
	for name := range algos {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := algos[names[i]].async, algos[names[j]].async
		if ai != aj {
			return ai
		}
		return names[i] < names[j]
	})
	return names
}

// validate normalizes the spec in place against a model and returns the
// algorithm table entry. k must satisfy 1 ≤ k ≤ n and parallelism is
// clamped to [0, maxParallelism]. Normalization canonicalizes the cache
// key: the default engine becomes explicit and the seed is dropped for
// deterministic algorithms, so requests differing only in irrelevant
// fields share a cache slot.
func (sp *PlaceSpec) validate(m *flow.Model, maxParallelism int) (algoSpec, error) {
	spec, ok := algos[sp.Algorithm]
	if !ok {
		return algoSpec{}, fmt.Errorf("unknown algorithm %q (have %s)",
			sp.Algorithm, strings.Join(Algorithms(), ", "))
	}
	if spec.kless {
		sp.K = 0 // the budget is ignored; one cache slot for all k
	} else if n := m.N(); sp.K < 1 || sp.K > n {
		return algoSpec{}, fmt.Errorf("k = %d outside [1, %d]", sp.K, n)
	}
	switch sp.Engine {
	case "":
		sp.Engine = "float"
	case "float", "big":
	default:
		return algoSpec{}, fmt.Errorf("unknown engine %q (have float, big)", sp.Engine)
	}
	if !spec.randomized && !spec.approx {
		sp.Seed = 0 // deterministic algorithms: one cache slot for all seeds
	}
	if !spec.approx {
		sp.Quality, sp.SampleBudget = 0, 0 // irrelevant: don't fragment cache slots
	}
	if spec.coarsen {
		switch sp.Coarsen {
		case "":
			sp.Coarsen = "bounded" // canonical: one cache slot for the default
		case "bounded", "lossless":
		default:
			return algoSpec{}, fmt.Errorf("unknown coarsen mode %q (have lossless, bounded)", sp.Coarsen)
		}
	} else {
		sp.Coarsen, sp.CoarsenRatio = "", 0 // irrelevant: don't fragment cache slots
	}
	// The numeric knobs share core's validation, so a bad value produces
	// the same error through HTTP, the CLI and direct core callers.
	if err := (core.Options{
		Strategy:     spec.strategy,
		Parallelism:  sp.Parallelism,
		Quality:      sp.Quality,
		SampleBudget: sp.SampleBudget,
		Coarsen:      sp.coarsenOptions(),
	}).Validate(); err != nil {
		return algoSpec{}, err
	}
	if sp.Parallelism > maxParallelism {
		sp.Parallelism = maxParallelism
	}
	return spec, nil
}

// newEvaluator builds a fresh evaluator for the model. Engines reuse
// scratch buffers internally, so one is built per request/job rather than
// shared.
func (sp *PlaceSpec) newEvaluator(m *flow.Model) flow.Evaluator {
	if sp.Engine == "big" {
		return flow.NewBig(m)
	}
	return flow.NewFloat(m)
}

// cacheKey identifies a placement result: same graph, graph version,
// sources, algorithm, budget, engine and seed ⇒ same result. version is
// the graph's patch count, so a job still in flight when a PATCH commits
// writes its result under the superseded version and can never be served
// for the mutated graph — invalidateGraph reclaims the memory, the
// version keeps the correctness. Parallelism is deliberately absent:
// placements are bit-for-bit identical at every setting, so concurrent
// requests differing only in parallelism dedup onto one job.
func (sp *PlaceSpec) cacheKey(graphID string, version int64, sources []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|v%d|%s|%d|%s|%d|q%g|b%d|c%s|r%g|", graphID, version, sp.Algorithm, sp.K, sp.Engine, sp.Seed, sp.Quality, sp.SampleBudget, sp.Coarsen, sp.CoarsenRatio)
	for _, s := range sources {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

// execute runs the placement through core.Place and evaluates the paper's
// report quantities for the chosen filter set. metrics (optional) receives
// the per-job worker gauge and the oracle-call counter; tc (optional)
// receives the tenant-level attribution of the same work — core.Place
// charges it post-algorithm, so accounting can never perturb placements.
// A trace carried by ctx (async jobs attach one) records the evaluator
// build and the per-stage placement timing.
func (sp *PlaceSpec) execute(ctx context.Context, spec algoSpec, m *flow.Model, graphID string, metrics *Metrics, tc *obs.TenantCounters) (*PlaceResult, error) {
	tr := obs.TraceFrom(ctx)
	bsp := tr.Begin("build-evaluator")
	ev := sp.newEvaluator(m)
	bsp.End()
	if metrics != nil {
		metrics.PlaceWorkersBusy.Add(int64(max(sp.Parallelism, 1)))
		defer metrics.PlaceWorkersBusy.Add(-int64(max(sp.Parallelism, 1)))
	}
	pres, err := core.Place(ctx, ev, sp.K, core.Options{
		Strategy:     spec.strategy,
		Parallelism:  sp.Parallelism,
		Seed:         sp.Seed,
		Quality:      sp.Quality,
		SampleBudget: sp.SampleBudget,
		SampleSeed:   sp.Seed,
		Coarsen:      sp.coarsenOptions(),
		Trace:        tr,
		Tenant:       tc.Name(),
		Account:      tc,
	})
	if err != nil {
		return nil, err
	}
	if cs := pres.CoarsenStats; cs != nil {
		contracted := int64(cs.NodesBefore - cs.NodesAfter)
		if metrics != nil {
			metrics.CoarsenPlacements.Add(1)
			metrics.CoarsenNodesContracted.Add(contracted)
			metrics.CoarsenRounds.Add(int64(cs.Rounds))
			if cs.LosslessOnly {
				metrics.CoarsenLossless.Add(1)
			}
		}
		tc.AddCoarsen(contracted)
	}
	if metrics != nil {
		metrics.OracleEvaluations.Add(int64(pres.Stats.GainEvaluations))
		// mlcelf is approx-capable but only estimate-driven when the
		// quality knobs are set; exact quotient solves stay out of the
		// Approx* series.
		if spec.approx && pres.Stats.SampledEvaluations > 0 {
			metrics.ApproxPlacements.Add(1)
			metrics.ApproxSampledEvaluations.Add(int64(pres.Stats.SampledEvaluations))
			metrics.ApproxExactRechecks.Add(int64(pres.Stats.GainEvaluations))
		}
	}
	filters := pres.Filters
	if filters == nil {
		filters = []int{} // serialize as [], not null
	}
	k := sp.K
	if spec.kless {
		k = len(filters) // report the budget actually used
	}
	mask := flow.MaskOf(m.N(), filters)
	res := &PlaceResult{
		GraphID:     graphID,
		Algorithm:   sp.Algorithm,
		K:           k,
		Filters:     filters,
		PhiEmpty:    ev.Phi(nil),
		PhiA:        ev.Phi(mask),
		F:           ev.F(mask),
		FR:          flow.FR(ev, mask),
		Parallelism: pres.Parallelism,
	}
	if pres.Stats != (core.OracleStats{}) {
		st := pres.Stats
		res.Oracle = &st
	}
	if pres.Passes != (core.PassStats{}) {
		ps := pres.Passes
		res.Passes = &ps
	}
	if pres.PhiCI != nil {
		ci := *pres.PhiCI
		res.PhiCI = &ci
	}
	if pres.CoarsenStats != nil {
		cs := *pres.CoarsenStats
		res.Coarsen = &cs
	}
	if g := m.Graph(); g.HasLabels() {
		res.Labels = make([]string, len(filters))
		for i, v := range filters {
			res.Labels[i] = g.Label(v)
		}
	}
	return res, nil
}
