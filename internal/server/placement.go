package server

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/flow"
)

// PlaceSpec is the POST /v1/graphs/{id}/place request body.
type PlaceSpec struct {
	Algorithm string `json:"algorithm"`
	// K is the filter budget, 1 ≤ k ≤ n (ignored by prop1, which places
	// at every merge node).
	K int `json:"k,omitempty"`
	// Engine selects the arithmetic: "float" (default) or "big".
	Engine string `json:"engine,omitempty"`
	// Sources overrides the graph's registered sources for this request.
	Sources []int `json:"sources,omitempty"`
	// Seed feeds the randomized baselines (randk/randi/randw).
	Seed int64 `json:"seed,omitempty"`
}

// PlaceResult is the placement outcome, returned inline for synchronous
// algorithms and through the job API for asynchronous ones.
type PlaceResult struct {
	GraphID   string   `json:"graph_id"`
	Algorithm string   `json:"algorithm"`
	K         int      `json:"k"`
	Filters   []int    `json:"filters"`
	Labels    []string `json:"labels,omitempty"`
	PhiEmpty  float64  `json:"phi_empty"`
	PhiA      float64  `json:"phi_filtered"`
	F         float64  `json:"f"`
	FR        float64  `json:"fr"`
	Cached    bool     `json:"cached"`
	// Maintain is set by the auto-maintain job kind: what the maintenance
	// pass did to the previous placement.
	Maintain *MaintainInfo `json:"maintain,omitempty"`
}

// algoSpec describes one placement algorithm: how to run it, whether it
// is expensive enough to route through the async job engine, and which
// request fields (seed, k) actually matter for its result.
type algoSpec struct {
	async      bool
	randomized bool
	kless      bool // ignores the budget (prop1 places at every merge node)
	run        func(ctx context.Context, ev flow.Evaluator, k int, seed int64) ([]int, error)
}

var algos = map[string]algoSpec{
	"gall": {async: true, run: func(ctx context.Context, ev flow.Evaluator, k int, _ int64) ([]int, error) {
		return core.GreedyAllCtx(ctx, ev, k)
	}},
	"celf": {async: true, run: func(ctx context.Context, ev flow.Evaluator, k int, _ int64) ([]int, error) {
		filters, _, err := core.GreedyAllCELFCtx(ctx, ev, k)
		return filters, err
	}},
	"gmax": {run: func(_ context.Context, ev flow.Evaluator, k int, _ int64) ([]int, error) {
		return core.GreedyMax(ev, k), nil
	}},
	"g1": {run: func(_ context.Context, ev flow.Evaluator, k int, _ int64) ([]int, error) {
		return core.Greedy1(ev.Model().Graph(), k), nil
	}},
	"gl": {run: func(_ context.Context, ev flow.Evaluator, k int, _ int64) ([]int, error) {
		return core.GreedyL(ev, k), nil
	}},
	"glfast": {run: func(_ context.Context, ev flow.Evaluator, k int, _ int64) ([]int, error) {
		return core.GreedyLFast(ev, k), nil
	}},
	"randk": {randomized: true, run: func(_ context.Context, ev flow.Evaluator, k int, seed int64) ([]int, error) {
		return core.RandK(ev.Model(), k, rand.New(rand.NewSource(seed))), nil
	}},
	"randi": {randomized: true, run: func(_ context.Context, ev flow.Evaluator, k int, seed int64) ([]int, error) {
		return core.RandI(ev.Model(), k, rand.New(rand.NewSource(seed))), nil
	}},
	"randw": {randomized: true, run: func(_ context.Context, ev flow.Evaluator, k int, seed int64) ([]int, error) {
		return core.RandW(ev.Model(), k, rand.New(rand.NewSource(seed))), nil
	}},
	"prop1": {kless: true, run: func(_ context.Context, ev flow.Evaluator, k int, _ int64) ([]int, error) {
		return core.UnboundedOptimal(ev.Model().Graph()), nil
	}},
}

// Algorithms lists the accepted algorithm names, asynchronous ones first.
func Algorithms() []string {
	names := make([]string, 0, len(algos))
	for name := range algos {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := algos[names[i]].async, algos[names[j]].async
		if ai != aj {
			return ai
		}
		return names[i] < names[j]
	})
	return names
}

// validate normalizes the spec in place against a model and returns the
// algorithm table entry. k must satisfy 1 ≤ k ≤ n. Normalization
// canonicalizes the cache key: the default engine becomes explicit and the
// seed is dropped for deterministic algorithms, so requests differing only
// in irrelevant fields share a cache slot.
func (sp *PlaceSpec) validate(m *flow.Model) (algoSpec, error) {
	spec, ok := algos[sp.Algorithm]
	if !ok {
		return algoSpec{}, fmt.Errorf("unknown algorithm %q (have %s)",
			sp.Algorithm, strings.Join(Algorithms(), ", "))
	}
	if spec.kless {
		sp.K = 0 // the budget is ignored; one cache slot for all k
	} else if n := m.N(); sp.K < 1 || sp.K > n {
		return algoSpec{}, fmt.Errorf("k = %d outside [1, %d]", sp.K, n)
	}
	switch sp.Engine {
	case "":
		sp.Engine = "float"
	case "float", "big":
	default:
		return algoSpec{}, fmt.Errorf("unknown engine %q (have float, big)", sp.Engine)
	}
	if !spec.randomized {
		sp.Seed = 0
	}
	return spec, nil
}

// newEvaluator builds a fresh evaluator for the model. Engines reuse
// scratch buffers internally, so one is built per request/job rather than
// shared.
func (sp *PlaceSpec) newEvaluator(m *flow.Model) flow.Evaluator {
	if sp.Engine == "big" {
		return flow.NewBig(m)
	}
	return flow.NewFloat(m)
}

// cacheKey identifies a placement result: same graph, graph version,
// sources, algorithm, budget, engine and seed ⇒ same result. version is
// the graph's patch count, so a job still in flight when a PATCH commits
// writes its result under the superseded version and can never be served
// for the mutated graph — invalidateGraph reclaims the memory, the
// version keeps the correctness.
func (sp *PlaceSpec) cacheKey(graphID string, version int64, sources []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|v%d|%s|%d|%s|%d|", graphID, version, sp.Algorithm, sp.K, sp.Engine, sp.Seed)
	for _, s := range sources {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

// execute runs the placement and evaluates the paper's report quantities
// for the chosen filter set.
func (sp *PlaceSpec) execute(ctx context.Context, spec algoSpec, m *flow.Model, graphID string) (*PlaceResult, error) {
	ev := sp.newEvaluator(m)
	filters, err := spec.run(ctx, ev, sp.K, sp.Seed)
	if err != nil {
		return nil, err
	}
	if filters == nil {
		filters = []int{} // serialize as [], not null
	}
	k := sp.K
	if spec.kless {
		k = len(filters) // report the budget actually used
	}
	mask := flow.MaskOf(m.N(), filters)
	res := &PlaceResult{
		GraphID:   graphID,
		Algorithm: sp.Algorithm,
		K:         k,
		Filters:   filters,
		PhiEmpty:  ev.Phi(nil),
		PhiA:      ev.Phi(mask),
		F:         ev.F(mask),
		FR:        flow.FR(ev, mask),
	}
	if g := m.Graph(); g.HasLabels() {
		res.Labels = make([]string, len(filters))
		for i, v := range filters {
			res.Labels[i] = g.Label(v)
		}
	}
	return res, nil
}
