package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// newEventedEngine builds a job engine wired to an event bus only — the
// minimal engineObs the lifecycle-event tests need.
func newEventedEngine(workers, depth int) (*JobEngine, *eventBus, *Metrics) {
	m := &Metrics{}
	bus := newEventBus(m)
	e := NewJobEngine(workers, depth, 64, newResultCache(8, m), m, &engineObs{events: bus})
	return e, bus, m
}

// collectEvents drains events for one job id until a terminal type (or
// timeout), returning them in arrival order.
func collectEvents(t *testing.T, sub *eventSub, jobID string) []JobEvent {
	t.Helper()
	var got []JobEvent
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				t.Fatalf("bus closed before job %s finished; got %+v", jobID, got)
			}
			if ev.JobID != jobID {
				continue
			}
			got = append(got, ev)
			switch ev.Type {
			case EventFinished, EventFailed, EventCanceled:
				return got
			}
		case <-deadline:
			t.Fatalf("timed out waiting for terminal event of job %s; got %+v", jobID, got)
		}
	}
}

func TestEventLifecycleOrder(t *testing.T) {
	e, bus, _ := newEventedEngine(1, 4)
	defer e.Close()
	sub, cancel, ok := bus.subscribe(64)
	if !ok {
		t.Fatal("subscribe on a fresh bus failed")
	}
	defer cancel()

	release := make(chan struct{})
	meta := JobMeta{Tenant: "acme", RequestID: "req-1", Traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"}
	info, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 1}, "k1", meta, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, info.ID, JobRunning)
	close(release)

	events := collectEvents(t, sub, info.ID)
	var types []string
	for i, ev := range events {
		types = append(types, ev.Type)
		if ev.Tenant != "acme" || ev.RequestID != "req-1" || ev.Traceparent != meta.Traceparent {
			t.Errorf("event %d lost request identity: %+v", i, ev)
		}
		if ev.GraphID != "g1" {
			t.Errorf("event %d graph = %q, want g1", i, ev.GraphID)
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Errorf("seq not increasing: %d then %d", events[i-1].Seq, ev.Seq)
		}
	}
	if len(types) < 3 || types[0] != EventSubmitted || types[1] != EventStarted || types[len(types)-1] != EventFinished {
		t.Errorf("lifecycle order = %v, want submitted, started, ..., finished", types)
	}
}

func TestEventCanceledBeforeStart(t *testing.T) {
	e, bus, _ := newEventedEngine(1, 4)
	defer e.Close()
	sub, cancel, ok := bus.subscribe(64)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()

	release := make(chan struct{})
	defer close(release)
	running, err := e.SubmitFunc("g1", PlaceSpec{K: 1}, "k1", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, JobRunning)
	queued, err := e.SubmitFunc("g1", PlaceSpec{K: 2}, "k2", JobMeta{Tenant: "acme"}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Cancel(queued.ID); !ok {
		t.Fatal("cancel of queued job refused")
	}

	events := collectEvents(t, sub, queued.ID)
	var types []string
	for _, ev := range events {
		types = append(types, ev.Type)
		if ev.Type == EventStarted {
			t.Error("queued-then-canceled job emitted a started event")
		}
	}
	if len(types) != 2 || types[0] != EventSubmitted || types[1] != EventCanceled {
		t.Errorf("canceled lifecycle = %v, want [submitted canceled]", types)
	}
}

func TestEventBusDropAndSeq(t *testing.T) {
	m := &Metrics{}
	bus := newEventBus(m)
	sub, cancel, ok := bus.subscribe(1)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	for i := 0; i < 3; i++ {
		bus.publish(JobEvent{Type: EventStage, JobID: "j"})
	}
	if got := m.EventsPublished.Load(); got != 3 {
		t.Errorf("EventsPublished = %d, want 3", got)
	}
	// Buffer of 1: the first event landed, the next two dropped.
	if got := m.EventsDropped.Load(); got != 2 {
		t.Errorf("EventsDropped = %d, want 2", got)
	}
	ev := <-sub.ch
	if ev.Seq != 1 {
		t.Errorf("first delivered seq = %d, want 1", ev.Seq)
	}
	if n := bus.subscribers(); n != 1 {
		t.Errorf("subscribers() = %d, want 1", n)
	}
}

func TestEventBusClose(t *testing.T) {
	bus := newEventBus(nil)
	sub, _, ok := bus.subscribe(4)
	if !ok {
		t.Fatal("subscribe failed")
	}
	bus.close()
	if _, open := <-sub.ch; open {
		t.Error("subscriber channel still open after bus close")
	}
	bus.publish(JobEvent{Type: EventStage}) // must not panic
	if _, _, ok := bus.subscribe(4); ok {
		t.Error("subscribe succeeded on a closed bus")
	}
	bus.close() // idempotent
}

func TestRetryAfterEstimate(t *testing.T) {
	e, _ := newTestEngine(1, 4)
	defer e.Close()
	// No completion history: the fixed default.
	if got := e.RetryAfterEstimate(); got != 2*time.Second {
		t.Errorf("cold estimate = %v, want 2s", got)
	}
	// Synthetic history: completions 10s apart → 10s per pending job;
	// empty queue means one interval.
	base := time.Now()
	e.mu.Lock()
	for i := 0; i < 5; i++ {
		e.doneTimes[i] = base.Add(time.Duration(i) * 10 * time.Second)
	}
	e.doneIdx, e.doneN = 5, 5
	e.mu.Unlock()
	if got := e.RetryAfterEstimate(); got != 10*time.Second {
		t.Errorf("estimate with 10s cadence = %v, want 10s", got)
	}
	// Sub-second cadence clamps up to 1s.
	e.mu.Lock()
	for i := 0; i < 5; i++ {
		e.doneTimes[i] = base.Add(time.Duration(i) * 10 * time.Millisecond)
	}
	e.mu.Unlock()
	if got := e.RetryAfterEstimate(); got != time.Second {
		t.Errorf("fast-cadence estimate = %v, want 1s floor", got)
	}
}

func TestWriteQueueFullResponse(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/graphs/g/place", nil)
	s.writeQueueFull(rec, req, ErrQueueFull)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer ≥ 1", ra)
	}
	var body struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad 503 body %q: %v", rec.Body.String(), err)
	}
	if body.Error == "" || body.RetryAfterSeconds != secs {
		t.Errorf("body = %+v, want error text and retry_after_seconds == header (%d)", body, secs)
	}
}

func TestReadyzReportsClosedEngine(t *testing.T) {
	s := New(Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz on a live server = %d, want 200", rec.Code)
	}
	var body struct {
		Ready  bool              `json:"ready"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || !body.Ready {
		t.Fatalf("readyz body = %q (err %v), want ready:true", rec.Body.String(), err)
	}
	for _, check := range []string{"job_engine", "registry", "sched", "history"} {
		if body.Checks[check] == "" {
			t.Errorf("readyz missing check %q: %+v", check, body.Checks)
		}
	}

	s.Close()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz after Close = %d, want 503", rec.Code)
	}
}
