package server

import (
	"log/slog"
	"time"

	"repro/internal/obs"
)

// serverObs bundles the daemon's latency instrumentation: an obs.Registry
// holding every histogram, plus direct handles the hot paths observe
// into. Counters and sampled gauges stay in Metrics/MetricsSnapshot —
// the registry carries only time distributions; /metrics merges both
// into one Prometheus exposition.
type serverObs struct {
	reg *obs.Registry
	// httpLat is per-route request latency, labeled by the registered
	// route pattern ("POST /v1/graphs/{id}/place"), not the raw URL —
	// bounded cardinality by construction.
	httpLat *obs.HistogramVec
	// jobQueueWait is the job lifecycle queued→started wait.
	jobQueueWait *obs.Histogram
	// jobRun is the job lifecycle started→finished run time.
	jobRun *obs.Histogram
	// schedWait is the process-wide scheduler's task queue wait, sampled
	// via sched.Pool.SetQueueWaitSampler.
	schedWait *obs.Histogram
	// placeStage is per-stage placement time (greedy-round, celf-init,
	// celf-recheck, naive-round, build-evaluator, maintain), fed by each
	// job trace's sink.
	placeStage *obs.HistogramVec
}

func newServerObs() *serverObs {
	reg := obs.NewRegistry()
	return &serverObs{
		reg: reg,
		httpLat: reg.HistogramVec("fpd_http_request_seconds",
			"HTTP request latency by registered route pattern.", "route", nil),
		jobQueueWait: reg.Histogram("fpd_job_queue_wait_seconds",
			"Async job wait from submission to a worker starting it.", nil),
		jobRun: reg.Histogram("fpd_job_run_seconds",
			"Async job run time from start to terminal state.", nil),
		schedWait: reg.Histogram("fpd_sched_queue_wait_seconds",
			"Oracle scheduler task wait from submission to execution.", nil),
		placeStage: reg.HistogramVec("fpd_place_stage_seconds",
			"Placement stage durations (greedy rounds, CELF init/rechecks, evaluator builds).", "stage", nil),
	}
}

// engineObs is the slice of serverObs the JobEngine needs, plus the slow
// placement log. nil disables all of it (direct library users of
// NewJobEngine without a server).
type engineObs struct {
	queueWait *obs.Histogram
	runTime   *obs.Histogram
	stageSink *obs.HistogramVec
	logger    *slog.Logger
	// slowThreshold triggers a warn-level log with the job's stage
	// timeline when a job's run time exceeds it; 0 disables.
	slowThreshold time.Duration
}
