package server

import (
	"log/slog"
	"time"

	"repro/internal/obs"
)

// serverObs bundles the daemon's latency instrumentation: an obs.Registry
// holding every histogram, plus direct handles the hot paths observe
// into. Counters and sampled gauges stay in Metrics/MetricsSnapshot —
// the registry carries only time distributions; /metrics merges both
// into one Prometheus exposition.
type serverObs struct {
	reg *obs.Registry
	// httpLat is per-route request latency, labeled by the registered
	// route pattern ("POST /v1/graphs/{id}/place"), not the raw URL —
	// bounded cardinality by construction.
	httpLat *obs.HistogramVec
	// jobQueueWait is the job lifecycle queued→started wait.
	jobQueueWait *obs.Histogram
	// jobRun is the job lifecycle started→finished run time.
	jobRun *obs.Histogram
	// schedWait is the process-wide scheduler's task queue wait, sampled
	// via sched.Pool.SetQueueWaitSampler.
	schedWait *obs.Histogram
	// placeStage is per-stage placement time (greedy-round, celf-init,
	// celf-recheck, naive-round, build-evaluator, coarsen, refine,
	// maintain), fed by each job trace's sink.
	placeStage *obs.HistogramVec
}

func newServerObs() *serverObs {
	reg := obs.NewRegistry()
	return &serverObs{
		reg: reg,
		httpLat: reg.HistogramVec("fpd_http_request_seconds",
			"HTTP request latency by registered route pattern.", "route", nil),
		jobQueueWait: reg.Histogram("fpd_job_queue_wait_seconds",
			"Async job wait from submission to a worker starting it.", nil),
		jobRun: reg.Histogram("fpd_job_run_seconds",
			"Async job run time from start to terminal state.", nil),
		schedWait: reg.Histogram("fpd_sched_queue_wait_seconds",
			"Oracle scheduler task wait from submission to execution.", nil),
		placeStage: reg.HistogramVec("fpd_place_stage_seconds",
			"Placement stage durations (greedy rounds, CELF init/rechecks, evaluator builds).", "stage", nil),
	}
}

// engineObs is the slice of serverObs the JobEngine needs, plus the slow
// placement log. nil disables all of it (direct library users of
// NewJobEngine without a server).
type engineObs struct {
	queueWait *obs.Histogram
	runTime   *obs.Histogram
	stageSink *obs.HistogramVec
	logger    *slog.Logger
	// slowThreshold triggers a warn-level log with the job's stage
	// timeline when a job's run time exceeds it; 0 disables.
	slowThreshold time.Duration
	// acct receives per-tenant job accounting (queue wait, run time,
	// outcomes); nil disables tenant accounting.
	acct *obs.Accountant
	// events receives job lifecycle events for the SSE stream; nil (and
	// the publish helper's nil-obs guard) disables it.
	events *eventBus
}

// tenantSeries describes one per-tenant Prometheus family: its metric
// name, help text, kind, and which TenantUsage field it samples.
var tenantSeries = []struct {
	name, help, kind string
	value            func(u obs.TenantUsage) float64
}{
	{"fpd_tenant_requests_total", "HTTP requests attributed to the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.Requests) }},
	{"fpd_tenant_jobs_submitted_total", "Async jobs submitted by the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.JobsSubmitted) }},
	{"fpd_tenant_jobs_completed_total", "Tenant jobs that finished successfully.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.JobsCompleted) }},
	{"fpd_tenant_jobs_failed_total", "Tenant jobs that finished in error.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.JobsFailed) }},
	{"fpd_tenant_jobs_canceled_total", "Tenant jobs that were canceled.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.JobsCanceled) }},
	{"fpd_tenant_placements_total", "Placements executed on behalf of the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.Placements) }},
	{"fpd_tenant_oracle_evaluations_total", "Marginal-gain oracle evaluations spent for the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.OracleEvaluations) }},
	{"fpd_tenant_sampled_evaluations_total", "Sampled (approximate-engine) gain estimates spent for the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.SampledEvaluations) }},
	{"fpd_tenant_forward_passes_total", "Forward topological passes executed for the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.ForwardPasses) }},
	{"fpd_tenant_suffix_passes_total", "Suffix topological passes executed for the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.SuffixPasses) }},
	{"fpd_tenant_cache_hits_total", "Result-cache hits for the tenant's placement requests.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.CacheHits) }},
	{"fpd_tenant_cache_misses_total", "Result-cache misses for the tenant's placement requests.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.CacheMisses) }},
	{"fpd_tenant_job_queue_wait_seconds_total", "Total time the tenant's jobs spent queued.", "counter",
		func(u obs.TenantUsage) float64 { return u.JobQueueWaitSeconds }},
	{"fpd_tenant_job_run_seconds_total", "Total wall time the tenant's jobs spent running.", "counter",
		func(u obs.TenantUsage) float64 { return u.JobRunSeconds }},
	{"fpd_tenant_sched_queue_wait_seconds_total", "Total scheduler queue wait of the tenant's oracle tasks.", "counter",
		func(u obs.TenantUsage) float64 { return u.SchedQueueWaitSeconds }},
	{"fpd_tenant_sched_tasks_total", "Scheduler tasks executed for the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.SchedTasks) }},
	{"fpd_tenant_plan_splices_total", "Execution plans spliced incrementally for the tenant's PATCH batches.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.PlanSplices) }},
	{"fpd_tenant_plan_rebuilds_total", "Execution plans rebuilt from scratch for the tenant's PATCH batches.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.PlanRebuilds) }},
	{"fpd_tenant_plan_repair_work_total", "Abstract plan-repair cost (visits + moves + CSR rows) charged to the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.PlanRepairWork) }},
	{"fpd_tenant_coarsen_placements_total", "Multilevel (coarsened) placements executed for the tenant.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.CoarsenPlacements) }},
	{"fpd_tenant_coarsen_nodes_contracted_total", "Nodes removed by graph coarsening in the tenant's multilevel placements.", "counter",
		func(u obs.TenantUsage) float64 { return float64(u.CoarsenNodesContracted) }},
}

// registerTenantSeries exposes the accountant as labeled Prometheus
// families: one accountant snapshot per family per scrape (snapshots are
// a read-locked copy of at most MaxTenants entries, so the scrape cost
// is bounded by construction).
func registerTenantSeries(reg *obs.Registry, acct *obs.Accountant) {
	if acct == nil {
		return
	}
	for _, ts := range tenantSeries {
		value := ts.value
		fn := func() []obs.LabeledValue {
			snap := acct.Snapshot()
			out := make([]obs.LabeledValue, len(snap))
			for i, u := range snap {
				out[i] = obs.LabeledValue{Label: u.Tenant, Value: value(u)}
			}
			return out
		}
		if ts.kind == "gauge" {
			reg.GaugeVec(ts.name, ts.help, "tenant", fn)
		} else {
			reg.CounterVec(ts.name, ts.help, "tenant", fn)
		}
	}
}
