package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/graph"
)

// TestFlightTableJoinFinish pins the leader/follower contract.
func TestFlightTableJoinFinish(t *testing.T) {
	ft := newFlightTable()
	f1, leader := ft.join("k")
	if !leader {
		t.Fatal("first join is not leader")
	}
	f2, leader2 := ft.join("k")
	if leader2 || f2 != f1 {
		t.Fatal("second join did not attach to the in-flight leader")
	}
	res := &PlaceResult{Filters: []int{7}}
	ft.finish("k", f1, res, nil)
	select {
	case <-f2.done:
	default:
		t.Fatal("finish did not wake followers")
	}
	if f2.res != res || f2.err != nil {
		t.Fatal("follower observed wrong outcome")
	}
	// The key is retired: the next join leads again.
	if _, leader := ft.join("k"); !leader {
		t.Fatal("key not retired after finish")
	}
}

// TestCrossKindDedupGangSoloRace is the regression test for the ROADMAP
// item: a gang's sub-placement and a solo job with the same per-graph
// cache key must share ONE computation. The test takes flight leadership
// for the key itself, submits both kinds, and proves both jobs block as
// followers (flights_joined reaches 2 with zero oracle evaluations), then
// finish with the leader's sentinel result — neither ever computed.
func TestCrossKindDedupGangSoloRace(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()

	g := graph.MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	m, err := flow.NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	info := srv.registry.Add("diamond", m)
	spec := PlaceSpec{Algorithm: "gall", K: 1}
	algo, err := spec.validate(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := spec.cacheKey(info.ID, 0, m.Sources())

	// Become the leader for the per-graph key before either job starts.
	f, leader := srv.flights.join(key)
	if !leader {
		t.Fatal("test could not take flight leadership")
	}

	// Solo job, exactly as handlePlace submits it.
	solo, err := srv.jobs.SubmitFunc(info.ID, spec, key, JobMeta{}, func(ctx context.Context) (*PlaceResult, error) {
		return srv.runShared(ctx, key, spec, algo, m, info.ID, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gang job over the same graph, exactly as handlePlaceBatch submits it.
	bs := newBatchState([]BatchItem{{GraphID: info.ID, State: JobQueued}})
	gang, err := srv.jobs.SubmitBatch(info.ID, spec, "batch|"+key, JobMeta{}, bs,
		srv.runBatch([]batchMiss{{graphID: info.ID, model: m, key: key}}, spec, algo, bs, nil))
	if err != nil {
		t.Fatal(err)
	}

	// Both kinds must reach the flight table and park as followers.
	deadline := time.Now().Add(10 * time.Second)
	for srv.metrics.FlightsJoined.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("flights_joined = %d, want 2", srv.metrics.FlightsJoined.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.metrics.OracleEvaluations.Load(); got != 0 {
		t.Fatalf("oracle_evaluations = %d while both kinds should be parked", got)
	}

	// Publish the leader's result; both jobs must adopt it verbatim.
	sentinel := &PlaceResult{GraphID: info.ID, Algorithm: "gall", K: 1, Filters: []int{3}}
	srv.cache.put(key, sentinel)
	srv.flights.finish(key, f, sentinel, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	soloDone, err := srv.jobs.Wait(ctx, solo.ID)
	if err != nil || soloDone.State != JobDone {
		t.Fatalf("solo job: state %s err %v", soloDone.State, err)
	}
	if len(soloDone.Result.Filters) != 1 || soloDone.Result.Filters[0] != 3 {
		t.Fatalf("solo result %+v did not come from the shared flight", soloDone.Result)
	}
	gangDone, err := srv.jobs.Wait(ctx, gang.ID)
	if err != nil || gangDone.State != JobDone {
		t.Fatalf("gang job: state %s err %v", gangDone.State, err)
	}
	item := gangDone.Batch[0]
	if item.State != JobDone || len(item.Result.Filters) != 1 || item.Result.Filters[0] != 3 {
		t.Fatalf("gang item %+v did not come from the shared flight", item)
	}
	// The decisive assertion: NO placement executed anywhere.
	if got := srv.metrics.OracleEvaluations.Load(); got != 0 {
		t.Fatalf("oracle_evaluations = %d, want 0 (work ran twice?)", got)
	}
}

// TestFlightFollowerRetriesAfterLeaderFailure: a follower whose leader
// fails recomputes instead of inheriting the failure.
func TestFlightFollowerRetriesAfterLeaderFailure(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()

	// A diamond with a tail: node 3 receives 2 copies and relays them to 4,
	// so greedy places its one filter at 3.
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	m, err := flow.NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	info := srv.registry.Add("diamond-tail", m)
	spec := PlaceSpec{Algorithm: "gall", K: 1}
	algo, err := spec.validate(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := spec.cacheKey(info.ID, 0, m.Sources())

	f, leader := srv.flights.join(key)
	if !leader {
		t.Fatal("test could not take flight leadership")
	}
	type out struct {
		res *PlaceResult
		err error
	}
	got := make(chan out, 1)
	go func() {
		res, err := srv.runShared(context.Background(), key, spec, algo, m, info.ID, nil)
		got <- out{res, err}
	}()
	// Wait for the follower to park, then fail the leader.
	deadline := time.Now().Add(10 * time.Second)
	for srv.metrics.FlightsJoined.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined")
		}
		time.Sleep(time.Millisecond)
	}
	srv.flights.finish(key, f, nil, errors.New("leader crashed"))

	o := <-got
	if o.err != nil {
		t.Fatalf("follower inherited leader failure: %v", o.err)
	}
	if len(o.res.Filters) != 1 || o.res.Filters[0] != 3 {
		t.Fatalf("follower recomputed wrong result: %+v", o.res)
	}
}
