package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// doJSONHeaders is doJSON plus request headers; it returns the status and
// response headers.
func doJSONHeaders(t *testing.T, method, url string, hdr map[string]string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

func TestTenantAccountingEndToEnd(t *testing.T) {
	ts := newTestServer(t, server.Config{Version: "v-test"})
	var info server.GraphInfo
	code, _ := doJSONHeaders(t, "POST", ts.URL+"/v1/graphs", map[string]string{"X-FP-Tenant": "acme"},
		server.GraphSpec{Generator: "layered", Levels: 4, PerLevel: 8, Seed: 5}, &info)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	var jobInfo server.JobInfo
	code, _ = doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"X-FP-Tenant": "acme"}, server.PlaceSpec{Algorithm: "gall", K: 3}, &jobInfo)
	if code != http.StatusAccepted {
		t.Fatalf("place: status %d, want 202", code)
	}
	if jobInfo.Tenant != "acme" {
		t.Errorf("job tenant = %q, want acme", jobInfo.Tenant)
	}
	waitJob(t, ts.URL, jobInfo.ID)

	var usage struct {
		Tenant            string `json:"tenant"`
		Requests          int64  `json:"requests"`
		JobsSubmitted     int64  `json:"jobs_submitted"`
		JobsCompleted     int64  `json:"jobs_completed"`
		Placements        int64  `json:"placements"`
		OracleEvaluations int64  `json:"oracle_evaluations"`
		ForwardPasses     int64  `json:"forward_passes"`
	}
	// Job accounting is charged as the worker finishes, marginally after
	// the job record turns terminal; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, "GET", ts.URL+"/v1/tenants/acme/usage", nil, &usage); code != http.StatusOK {
			t.Fatalf("tenant usage: status %d", code)
		}
		if usage.JobsCompleted >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if usage.Tenant != "acme" || usage.Requests < 2 || usage.JobsSubmitted != 1 ||
		usage.JobsCompleted != 1 || usage.Placements < 1 || usage.OracleEvaluations < 1 {
		t.Errorf("acme usage = %+v, want ≥2 requests, 1 job submitted+completed, ≥1 placement with oracle work", usage)
	}

	// The tenant listing includes acme; an unseen tenant 404s.
	var list struct {
		Tenants []json.RawMessage `json:"tenants"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/tenants", nil, &list); code != http.StatusOK || len(list.Tenants) == 0 {
		t.Fatalf("tenant list: status %d, %d tenants", code, len(list.Tenants))
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/tenants/ghost/usage", nil, nil); code != http.StatusNotFound {
		t.Errorf("unseen tenant usage: status %d, want 404", code)
	}

	// Labeled Prometheus series and build info.
	prom := fetchText(t, ts.URL+"/metrics?format=prometheus")
	for _, want := range []string{
		`fpd_tenant_requests_total{tenant="acme"}`,
		`fpd_tenant_oracle_evaluations_total{tenant="acme"}`,
		`fpd_build_info{go_version="go`,
		`version="v-test"`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

func TestTenantAccountingDisabled(t *testing.T) {
	ts := newTestServer(t, server.Config{DisableAccounting: true})
	if code := doJSON(t, "GET", ts.URL+"/v1/tenants", nil, nil); code != http.StatusNotFound {
		t.Errorf("tenant list with accounting disabled: status %d, want 404", code)
	}
	// Requests with tenant headers still work; they just aren't accounted.
	var info server.GraphInfo
	code, _ := doJSONHeaders(t, "POST", ts.URL+"/v1/graphs", map[string]string{"X-FP-Tenant": "acme"},
		server.GraphSpec{Edges: diamondEdges}, &info)
	if code != http.StatusCreated {
		t.Errorf("upload with accounting disabled: status %d", code)
	}
}

func TestInvalidTenantRejected(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	code, hdr := doJSONHeaders(t, "GET", ts.URL+"/healthz", map[string]string{"X-FP-Tenant": "not a tenant!"}, nil, &body)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid tenant: status %d, want 400", code)
	}
	if !strings.Contains(body.Error, "X-FP-Tenant") {
		t.Errorf("error body %q does not name the offending header", body.Error)
	}
	if body.RequestID == "" || hdr.Get("X-Request-ID") != body.RequestID {
		t.Errorf("rejection request id: body %q, header %q — want matching non-empty ids",
			body.RequestID, hdr.Get("X-Request-ID"))
	}
}

func TestRequestIDAndTraceparent(t *testing.T) {
	ts := newTestServer(t, server.Config{})

	// Client-supplied id echoes back; error bodies carry it too.
	var errBody struct {
		RequestID string `json:"request_id"`
	}
	code, hdr := doJSONHeaders(t, "GET", ts.URL+"/v1/graphs/nope", map[string]string{"X-Request-ID": "cli-42"}, nil, &errBody)
	if code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", code)
	}
	if hdr.Get("X-Request-ID") != "cli-42" || errBody.RequestID != "cli-42" {
		t.Errorf("request id not echoed: header %q, body %q, want cli-42", hdr.Get("X-Request-ID"), errBody.RequestID)
	}

	// Absent (or malformed) id: one is generated.
	_, hdr = doJSONHeaders(t, "GET", ts.URL+"/healthz", map[string]string{"X-Request-ID": "has spaces"}, nil, nil)
	if id := hdr.Get("X-Request-ID"); id == "" || id == "has spaces" {
		t.Errorf("malformed client id not replaced: %q", id)
	}

	// A client traceparent is continued: same trace id, new span id.
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	_, hdr = doJSONHeaders(t, "GET", ts.URL+"/healthz", map[string]string{"Traceparent": parent}, nil, nil)
	tp := hdr.Get("Traceparent")
	if len(tp) != len(parent) || tp[0:36] != parent[0:36] {
		t.Fatalf("traceparent %q does not continue trace %q", tp, parent)
	}
	if tp[36:52] == parent[36:52] {
		t.Error("response traceparent kept the client's span id")
	}

	// The trace survives into the async job record.
	var info server.GraphInfo
	doJSON(t, "POST", ts.URL+"/v1/graphs", server.GraphSpec{Edges: diamondEdges}, &info)
	var jobInfo server.JobInfo
	code, _ = doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"Traceparent": parent, "X-Request-ID": "cli-43"},
		server.PlaceSpec{Algorithm: "gall", K: 1}, &jobInfo)
	if code != http.StatusAccepted {
		t.Fatalf("place: status %d, want 202", code)
	}
	if !strings.HasPrefix(jobInfo.Traceparent, parent[0:36]) {
		t.Errorf("job traceparent %q lost the client trace id", jobInfo.Traceparent)
	}
	if jobInfo.RequestID != "cli-43" {
		t.Errorf("job request id = %q, want cli-43", jobInfo.RequestID)
	}
	done := waitJob(t, ts.URL, jobInfo.ID)
	if done.Traceparent != jobInfo.Traceparent {
		t.Errorf("terminal job traceparent %q != submitted %q", done.Traceparent, jobInfo.Traceparent)
	}
}

func TestStatsHistoryEndpoint(t *testing.T) {
	ts := newTestServer(t, server.Config{HistoryInterval: 10 * time.Millisecond, HistoryRetention: time.Minute})
	uploadDiamond(t, ts.URL)

	var out struct {
		IntervalMS  int64 `json:"interval_ms"`
		RetentionMS int64 `json:"retention_ms"`
		Capacity    int   `json:"capacity"`
		Samples     []struct {
			T      time.Time          `json:"t"`
			Values map[string]float64 `json:"values"`
		} `json:"samples"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, "GET", ts.URL+"/v1/stats/history", nil, &out); code != http.StatusOK {
			t.Fatalf("history: status %d", code)
		}
		if len(out.Samples) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(out.Samples) < 2 {
		t.Fatalf("history never accumulated samples: %+v", out)
	}
	if out.IntervalMS != 10 || out.Capacity < 1 {
		t.Errorf("interval_ms = %d, capacity = %d; want 10, ≥1", out.IntervalMS, out.Capacity)
	}
	last := out.Samples[len(out.Samples)-1]
	for _, key := range []string{"requests_total", "sched_queue_depth", "job_run_seconds_p50", "history_samples"} {
		if _, ok := last.Values[key]; !ok {
			t.Errorf("history sample missing %q; have %d keys", key, len(last.Values))
		}
	}
	if !out.Samples[0].T.Before(last.T) && len(out.Samples) > 1 {
		t.Errorf("samples not oldest-first: %v then %v", out.Samples[0].T, last.T)
	}

	if code := doJSON(t, "GET", ts.URL+"/v1/stats/history?window=bogus", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad window: status %d, want 400", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/stats/history?window=-5s", nil, nil); code != http.StatusBadRequest {
		t.Errorf("negative window: status %d, want 400", code)
	}
	// A tiny window still answers 200 with whatever fits.
	if code := doJSON(t, "GET", ts.URL+"/v1/stats/history?window=1ms", nil, &out); code != http.StatusOK {
		t.Errorf("tiny window: status %d, want 200", code)
	}
}

// TestSSELifecycleOverHTTP subscribes to /v1/events, submits an async
// placement, and expects the submitted → started → finished transitions
// for that job, in order, on the stream.
func TestSSELifecycleOverHTTP(t *testing.T) {
	ts := newTestServer(t, server.Config{})

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	events := make(chan server.JobEvent, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev server.JobEvent
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err == nil {
				events <- ev
			}
		}
	}()

	var info server.GraphInfo
	doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Generator: "layered", Levels: 4, PerLevel: 8, Seed: 7}, &info)
	var jobInfo server.JobInfo
	code, _ := doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"X-FP-Tenant": "streamer"}, server.PlaceSpec{Algorithm: "gall", K: 2}, &jobInfo)
	if code != http.StatusAccepted {
		t.Fatalf("place: status %d, want 202", code)
	}

	var got []server.JobEvent
	deadline := time.After(15 * time.Second)
collect:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream ended early; got %+v", got)
			}
			if ev.JobID != jobInfo.ID {
				continue
			}
			got = append(got, ev)
			if ev.Type == server.EventFinished || ev.Type == server.EventFailed {
				break collect
			}
		case <-deadline:
			t.Fatalf("no terminal event on the stream; got %+v", got)
		}
	}
	var types []string
	var lastSeq int64
	for _, ev := range got {
		types = append(types, ev.Type)
		if ev.Seq <= lastSeq {
			t.Errorf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Tenant != "streamer" {
			t.Errorf("event tenant = %q, want streamer", ev.Tenant)
		}
	}
	if len(types) < 3 || types[0] != server.EventSubmitted || types[1] != server.EventStarted ||
		types[len(types)-1] != server.EventFinished {
		t.Errorf("event order = %v, want submitted, started, ..., finished", types)
	}
}

// TestSSETypeFilter checks ?types= narrows the stream.
func TestSSETypeFilter(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/v1/events?types=finished")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan server.JobEvent, 64)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				var ev server.JobEvent
				if json.Unmarshal([]byte(line[len("data: "):]), &ev) == nil {
					events <- ev
				}
			}
		}
	}()
	var info server.GraphInfo
	doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Generator: "layered", Levels: 3, PerLevel: 6, Seed: 9}, &info)
	var jobInfo server.JobInfo
	doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place", server.PlaceSpec{Algorithm: "gall", K: 2}, &jobInfo)
	select {
	case ev := <-events:
		if ev.Type != server.EventFinished {
			t.Errorf("filtered stream delivered %q, want only finished", ev.Type)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("filtered stream delivered nothing")
	}
}

// TestConcurrentScrapeUnderLoad races Prometheus scrapes, tenant reads
// and placement submissions; the payoff is under -race.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2, HistoryInterval: 5 * time.Millisecond})
	var info server.GraphInfo
	doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Generator: "layered", Levels: 4, PerLevel: 8, Seed: 3}, &info)

	var wg sync.WaitGroup
	tenants := []string{"t-a", "t-b", "t-c"}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 1; k <= 4; k++ {
				var jobInfo server.JobInfo
				code, _ := doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
					map[string]string{"X-FP-Tenant": tenants[i]},
					server.PlaceSpec{Algorithm: "gall", K: k}, &jobInfo)
				if code == http.StatusAccepted {
					waitJob(t, ts.URL, jobInfo.ID)
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				fetchText(t, ts.URL+"/metrics?format=prometheus")
				doJSON(t, "GET", ts.URL+"/v1/tenants", nil, nil)
				doJSON(t, "GET", ts.URL+"/v1/stats/history", nil, nil)
			}
		}()
	}
	wg.Wait()

	prom := fetchText(t, ts.URL+"/metrics?format=prometheus")
	for _, tn := range tenants {
		if !strings.Contains(prom, `fpd_tenant_placements_total{tenant="`+tn+`"}`) {
			t.Errorf("exposition missing placements series for %s", tn)
		}
	}
}
