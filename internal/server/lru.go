package server

import "container/list"

// lruMap is the shared LRU bookkeeping behind the graph registry and the
// placement result cache: a key→value map with recency tracking and
// capacity eviction. It is not safe for concurrent use; both owners hold
// their own mutex around it.
type lruMap[K comparable, V any] struct {
	cap   int
	byKey map[K]*list.Element
	order *list.List // front = most recently used; values are *lruPair
}

type lruPair[K comparable, V any] struct {
	key K
	val V
}

func newLRUMap[K comparable, V any](capacity int) *lruMap[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruMap[K, V]{
		cap:   capacity,
		byKey: make(map[K]*list.Element),
		order: list.New(),
	}
}

// get returns the value for k, bumping its recency.
func (l *lruMap[K, V]) get(k K) (V, bool) {
	el, ok := l.byKey[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruPair[K, V]).val, true
}

// peek returns the value for k without bumping its recency.
func (l *lruMap[K, V]) peek(k K) (V, bool) {
	el, ok := l.byKey[k]
	if !ok {
		var zero V
		return zero, false
	}
	return el.Value.(*lruPair[K, V]).val, true
}

// put inserts or overwrites k as the most recent entry, evicting the
// least-recently-used entries beyond capacity; it returns the number
// evicted.
func (l *lruMap[K, V]) put(k K, v V) int {
	if el, ok := l.byKey[k]; ok {
		el.Value.(*lruPair[K, V]).val = v
		l.order.MoveToFront(el)
		return 0
	}
	l.byKey[k] = l.order.PushFront(&lruPair[K, V]{key: k, val: v})
	evicted := 0
	for l.order.Len() > l.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.byKey, oldest.Value.(*lruPair[K, V]).key)
		evicted++
	}
	return evicted
}

// delete removes k, reporting whether it was present.
func (l *lruMap[K, V]) delete(k K) bool {
	el, ok := l.byKey[k]
	if !ok {
		return false
	}
	l.order.Remove(el)
	delete(l.byKey, k)
	return true
}

// deleteMatching removes every entry whose key satisfies pred, returning
// the number removed.
func (l *lruMap[K, V]) deleteMatching(pred func(K) bool) int {
	removed := 0
	for el := l.order.Front(); el != nil; {
		next := el.Next()
		if k := el.Value.(*lruPair[K, V]).key; pred(k) {
			l.order.Remove(el)
			delete(l.byKey, k)
			removed++
		}
		el = next
	}
	return removed
}

// each visits every value, most recently used first.
func (l *lruMap[K, V]) each(visit func(V)) {
	for el := l.order.Front(); el != nil; el = el.Next() {
		visit(el.Value.(*lruPair[K, V]).val)
	}
}

// len returns the number of entries.
func (l *lruMap[K, V]) len() int { return l.order.Len() }
