// Package server implements fpd, the filter-placement daemon: an HTTP/JSON
// service over the fp library built from three layers.
//
//   - A concurrency-safe graph Registry: clients upload edge lists or
//     instantiate any internal/gen generator by name; graphs are immutable
//     and shared across requests, LRU-bounded with per-graph stats. A
//     PATCH upgrades a graph to a dynamic overlay (internal/dyn): batched
//     edge mutations apply atomically, stale cached placements are
//     invalidated, and an optional auto-maintain job refreshes the filter
//     placement incrementally.
//   - An async JobEngine: expensive placements (GreedyAll/CELF) run on a
//     worker pool with queued/running/done/failed/canceled states,
//     context-based cancellation, and an LRU result cache keyed by
//     (graph, sources, algorithm, k, engine, seed) so repeated queries
//     are O(1). A gang-submitted batch (POST /v1/placements:batch) is
//     ONE job whose sub-placements run on the process-wide internal/sched
//     scheduler with per-graph state, filling per-graph cache slots.
//   - The HTTP API itself — see Routes for the endpoint list.
//
// Everything is stdlib-only; cmd/fpd wires the server to flags, logging
// and graceful shutdown.
package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Config sizes the server. Zero values pick the documented defaults.
type Config struct {
	// Workers is the job-engine pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds pending jobs (default 64); beyond it Submit
	// returns 503.
	QueueDepth int
	// MaxJobs bounds retained job records (default 1024); older terminal
	// jobs are pruned.
	MaxJobs int
	// MaxGraphs bounds the registry (default 32, LRU eviction).
	MaxGraphs int
	// CacheSize bounds the placement result cache (default 256).
	CacheSize int
	// MaxBodyBytes bounds request bodies (default 64 MiB) — edge-list
	// uploads can be large.
	MaxBodyBytes int64
	// MaxParallelism caps the per-placement `parallelism` request field
	// (default GOMAXPROCS); requests asking for more are clamped. It also
	// sets the parallelism of auto-maintain recompute fallbacks.
	MaxParallelism int
	// SchedWorkers resizes the PROCESS-WIDE placement scheduler (the fpd
	// -sched-workers flag): the bounded pool every placement's oracle
	// work — solo, batch or auto-maintain — executes on. 0 leaves the
	// pool at its default (GOMAXPROCS). Unlike the other knobs it is
	// global, not per-Server.
	SchedWorkers int
	// Logger receives structured request and job lifecycle logs; nil
	// disables logging. cmd/fpd builds one from -log-level.
	Logger *slog.Logger
	// SlowPlaceThreshold triggers a warn-level log — including the job's
	// stage timeline — for any async job whose run time exceeds it
	// (the fpd -slow-place flag). 0 disables.
	SlowPlaceThreshold time.Duration
	// HistoryInterval is the period of the stats-history sampler feeding
	// GET /v1/stats/history (default 5s).
	HistoryInterval time.Duration
	// HistoryRetention is how far back the stats history reaches (default
	// 15m); the ring holds HistoryRetention/HistoryInterval samples.
	HistoryRetention time.Duration
	// MaxTenants caps the distinct tenants the accountant tracks (default
	// obs.DefaultMaxTenants); names past the cap account to "(overflow)".
	MaxTenants int
	// SpliceMaxCone bounds plan splicing as a fraction of graph size (the
	// fpd -splice-max-cone flag): a PATCH whose dirty cone or re-level
	// window exceeds SpliceMaxCone × nodes falls back to a from-scratch
	// plan rebuild. 0 picks the flow package default (0.25); negative
	// disables splicing so every PATCH rebuilds.
	SpliceMaxCone float64
	// DisableAccounting turns per-tenant resource accounting off entirely:
	// no accountant is built, /v1/tenants endpoints return 404, and the
	// labeled tenant series are absent from /metrics.
	DisableAccounting bool
	// Version labels the fpd_build_info gauge (default "dev"); cmd/fpd
	// sets it from its build metadata.
	Version string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 32
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.HistoryInterval <= 0 {
		c.HistoryInterval = 5 * time.Second
	}
	if c.HistoryRetention <= 0 {
		c.HistoryRetention = 15 * time.Minute
	}
	if c.HistoryRetention < c.HistoryInterval {
		c.HistoryRetention = c.HistoryInterval
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	return c
}

// Server is the fpd HTTP handler plus its registry, job engine and result
// cache. Create with New, serve via any http.Server, release with Close.
type Server struct {
	mux            *http.ServeMux
	registry       *Registry
	jobs           *JobEngine
	cache          *resultCache
	flights        *flightTable
	metrics        *Metrics
	obs            *serverObs
	logger         *slog.Logger
	slowPlace      time.Duration
	maxBodyBytes   int64
	maxParallelism int

	// acct aggregates per-tenant resource usage; nil when accounting is
	// disabled (every accounting call is nil-safe).
	acct *obs.Accountant
	// events fans job lifecycle events out to SSE subscribers.
	events *eventBus
	// history is the in-process time-series ring behind /v1/stats/history,
	// fed by a background sampler every historyInterval.
	history          *obs.SeriesRing
	historyInterval  time.Duration
	historyRetention time.Duration
	historyStop      chan struct{}
	historyWG        sync.WaitGroup

	version   string
	closeOnce sync.Once
}

// maxHistorySamples bounds the history ring regardless of configuration:
// a pathological retention/interval ratio must not allocate unbounded
// memory.
const maxHistorySamples = 1 << 16

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.SchedWorkers > 0 {
		sched.SetDefaultWorkers(cfg.SchedWorkers)
	}
	m := &Metrics{}
	so := newServerObs()
	var acct *obs.Accountant
	if !cfg.DisableAccounting {
		acct = obs.NewAccountant(cfg.MaxTenants)
	}
	events := newEventBus(m)
	eo := &engineObs{
		queueWait:     so.jobQueueWait,
		runTime:       so.jobRun,
		stageSink:     so.placeStage,
		logger:        cfg.Logger,
		slowThreshold: cfg.SlowPlaceThreshold,
		acct:          acct,
		events:        events,
	}
	capacity := int(cfg.HistoryRetention / cfg.HistoryInterval)
	if capacity < 1 {
		capacity = 1
	}
	if capacity > maxHistorySamples {
		capacity = maxHistorySamples
	}
	cache := newResultCache(cfg.CacheSize, m)
	s := &Server{
		mux:              http.NewServeMux(),
		registry:         NewRegistry(cfg.MaxGraphs, m),
		jobs:             NewJobEngine(cfg.Workers, cfg.QueueDepth, cfg.MaxJobs, cache, m, eo),
		cache:            cache,
		flights:          newFlightTable(),
		metrics:          m,
		obs:              so,
		logger:           cfg.Logger,
		slowPlace:        cfg.SlowPlaceThreshold,
		maxBodyBytes:     cfg.MaxBodyBytes,
		maxParallelism:   cfg.MaxParallelism,
		acct:             acct,
		events:           events,
		history:          obs.NewSeriesRing(capacity),
		historyInterval:  cfg.HistoryInterval,
		historyRetention: cfg.HistoryRetention,
		historyStop:      make(chan struct{}),
		version:          cfg.Version,
	}
	s.registry.SetSpliceOptions(flow.SpliceOptions{MaxConeFrac: cfg.SpliceMaxCone})
	registerTenantSeries(so.reg, acct)
	so.reg.Info("fpd_build_info",
		"Build metadata of the running fpd binary; the value is always 1.",
		map[string]string{"version": cfg.Version, "go_version": runtime.Version()})
	// Route latency is labeled by the REGISTERED pattern, wrapped here at
	// registration time: the outer ServeHTTP never learns which pattern
	// the mux matched, and raw URLs would be unbounded-cardinality labels.
	for pattern, h := range s.Routes() {
		s.mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	// The queue-wait sampler is a process-wide hook (like SetDefaultWorkers):
	// the most recently created server observes the shared scheduler. The
	// tag a sched.Batch carries is the submitting tenant, so the shared
	// pool's wait time is attributed per tenant as well as in aggregate.
	sched.Default().SetQueueWaitSampler(func(tag string, wait time.Duration) {
		so.schedWait.Observe(wait)
		if tag != "" {
			acct.Tenant(tag).AddSchedWait(wait)
		}
	})
	s.historyWG.Add(1)
	go s.historyLoop()
	return s
}

// instrument wraps one route handler with its latency histogram.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.obs.httpLat.With(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

// Obs exposes the latency registry (tests and embedders scrape it
// without going through the HTTP endpoint).
func (s *Server) Obs() *obs.Registry { return s.obs.reg }

// Routes maps "METHOD /pattern" to handlers; exported so tests and docs
// stay in sync with the actual surface.
func (s *Server) Routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"POST /v1/graphs":              s.handleCreateGraph,
		"GET /v1/graphs":               s.handleListGraphs,
		"GET /v1/graphs/{id}":          s.handleGetGraph,
		"DELETE /v1/graphs/{id}":       s.handleDeleteGraph,
		"PATCH /v1/graphs/{id}/edges":  s.handlePatchEdges,
		"POST /v1/graphs/{id}/place":   s.handlePlace,
		"POST /v1/placements:batch":    s.handlePlaceBatch,
		"GET /v1/graphs/{id}/evaluate": s.handleEvaluate,
		"GET /v1/jobs":                 s.handleListJobs,
		"GET /v1/jobs/{id}":            s.handleGetJob,
		"DELETE /v1/jobs/{id}":         s.handleCancelJob,
		"GET /v1/tenants":              s.handleListTenants,
		"GET /v1/tenants/{id}/usage":   s.handleTenantUsage,
		"GET /v1/stats/history":        s.handleStatsHistory,
		"GET /v1/events":               s.handleEvents,
		"GET /healthz":                 s.handleHealthz,
		"GET /readyz":                  s.handleReadyz,
		"GET /metrics":                 s.handleMetrics,
	}
}

// ServeHTTP implements http.Handler: every request is stamped with its
// identity (request id, tenant, trace context) before routing, counted,
// and logged with the identity fields so one token joins the client log,
// the server log and the trace.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.RequestsTotal.Add(1)
	start := time.Now()
	ri, r, ok := s.stampRequest(w, r)
	if !ok {
		return
	}
	s.acct.Tenant(ri.tenant).AddRequest()
	s.mux.ServeHTTP(w, r)
	if s.logger != nil {
		s.logger.Debug("request",
			"method", r.Method,
			"path", r.URL.Path,
			"tenant", ri.tenant,
			"request_id", ri.id,
			"traceparent", ri.trace.String(),
			"dur", time.Since(start).Round(time.Microsecond))
	}
}

// Jobs exposes the job engine (examples use Wait instead of polling).
func (s *Server) Jobs() *JobEngine { return s.jobs }

// Metrics exposes the server's counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// ShutdownStreams ends every live SSE event stream and refuses new
// subscriptions (503). Call it before draining the HTTP listener: an
// open /v1/events connection would otherwise hold http.Server.Shutdown
// until its grace timeout expires, since SSE handlers only return when
// their subscription channel closes or the client hangs up.
func (s *Server) ShutdownStreams() { s.events.close() }

// Close stops the history sampler, ends every SSE stream, cancels
// running jobs and stops the worker pool. The HTTP listener (owned by
// the caller) should be shut down first. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.historyStop)
		s.historyWG.Wait()
		s.events.close()
		s.jobs.Close()
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Warn(fmt.Sprintf(format, args...))
	}
}
