package server

import (
	"net/http"
	"reflect"
	"strings"
	"time"

	"repro/internal/obs"
)

// In-process stats history: a background sampler snapshots the metrics
// every HistoryInterval and appends the flattened values — every
// MetricsSnapshot field plus latency quantiles derived from the live
// histograms — to a fixed-size ring. GET /v1/stats/history serves a
// window of it, so an operator can see the last N minutes of queue
// depth, deferred-gang backlog and job latency without running a
// Prometheus server at all.

// historyQuantiles are the quantiles sampled from each tracked latency
// histogram into the history (job_run_seconds_p50 and friends).
var historyQuantiles = []struct {
	suffix string
	q      float64
}{
	{"_p50", 0.50},
	{"_p90", 0.90},
	{"_p99", 0.99},
}

// historyValues flattens a metrics snapshot plus histogram quantiles
// into the flat map one history sample stores. Snapshot fields keep
// their json tags as keys, so the history vocabulary and the /metrics
// vocabulary cannot drift.
func (s *Server) historyValues(snap MetricsSnapshot) map[string]float64 {
	sv := reflect.ValueOf(snap)
	st := sv.Type()
	vals := make(map[string]float64, st.NumField()+3*len(historyQuantiles))
	for i := 0; i < st.NumField(); i++ {
		tag := strings.Split(st.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		switch f := sv.Field(i); f.Kind() {
		case reflect.Int64:
			vals[tag] = float64(f.Int())
		case reflect.Float64:
			vals[tag] = f.Float()
		}
	}
	for name, h := range map[string]*obs.Histogram{
		"job_run_seconds":          s.obs.jobRun,
		"job_queue_wait_seconds":   s.obs.jobQueueWait,
		"sched_queue_wait_seconds": s.obs.schedWait,
	} {
		hs := h.Snapshot()
		for _, hq := range historyQuantiles {
			vals[name+hq.suffix] = hs.Quantile(hq.q)
		}
	}
	return vals
}

// historyLoop is the background sampler; it runs from New until Close.
func (s *Server) historyLoop() {
	defer s.historyWG.Done()
	tick := time.NewTicker(s.historyInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.historyStop:
			return
		case <-tick.C:
			s.history.Add(time.Now().UTC(), s.historyValues(s.sampleSnapshot()))
		}
	}
}

// handleStatsHistory is GET /v1/stats/history?window=5m: the retained
// samples, oldest first. window limits how far back the response
// reaches; absent or zero means everything the ring holds.
func (s *Server) handleStatsHistory(w http.ResponseWriter, r *http.Request) {
	var window time.Duration
	if ws := r.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad window %q: %v", ws, err)
			return
		}
		if d < 0 {
			s.writeError(w, r, http.StatusBadRequest, "window %q is negative", ws)
			return
		}
		window = d
	}
	samples := s.history.Window(window, time.Now().UTC())
	if samples == nil {
		samples = []obs.Sample{} // serialize as [], not null
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"interval_ms":  s.historyInterval.Milliseconds(),
		"retention_ms": s.historyRetention.Milliseconds(),
		"capacity":     s.history.Cap(),
		"samples":      samples,
	})
}
