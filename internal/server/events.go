package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Live job lifecycle events over Server-Sent Events (GET /v1/events).
// Every job transition — submitted, deferred, started, stage entries,
// finished/failed/canceled — is published to an in-process bus;
// subscribers get a bounded buffered channel each, and a subscriber that
// cannot keep up loses events (counted in events_dropped) rather than
// blocking the job engine: observability must never apply back pressure
// to the work it observes.

// JobEvent is one lifecycle transition as streamed to SSE subscribers.
type JobEvent struct {
	// Seq is a bus-wide monotonically increasing sequence number;
	// per-subscriber gaps indicate dropped events.
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	// Type is the transition: submitted, deferred, started, stage,
	// finished, failed or canceled.
	Type      string `json:"type"`
	JobID     string `json:"job_id"`
	GraphID   string `json:"graph_id,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	// Traceparent is the W3C trace identity of the request that created
	// the job, so an SSE consumer can join events with distributed traces.
	Traceparent string `json:"traceparent,omitempty"`
	// Stage names the placement stage just entered (type "stage" only).
	Stage string `json:"stage,omitempty"`
	Error string `json:"error,omitempty"`
}

// Event type names.
const (
	EventSubmitted = "submitted"
	EventDeferred  = "deferred"
	EventStarted   = "started"
	EventStage     = "stage"
	EventFinished  = "finished"
	EventFailed    = "failed"
	EventCanceled  = "canceled"
)

// eventSub is one subscriber: a buffered channel the bus sends into
// without ever blocking.
type eventSub struct {
	ch chan JobEvent
}

// eventBus fans job events out to subscribers. publish is cheap (one
// mutex, one non-blocking send per subscriber) and never blocks, so it
// is safe to call from inside the job engine's critical sections.
type eventBus struct {
	mu      sync.Mutex
	subs    map[*eventSub]struct{}
	seq     int64
	closed  bool
	metrics *Metrics
}

func newEventBus(m *Metrics) *eventBus {
	return &eventBus{subs: make(map[*eventSub]struct{}), metrics: m}
}

// subscribe registers a subscriber with the given channel buffer,
// returning it plus its cancel function. ok is false once the bus is
// closed (server shutting down).
func (b *eventBus) subscribe(buf int) (sub *eventSub, cancel func(), ok bool) {
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, nil, false
	}
	sub = &eventSub{ch: make(chan JobEvent, buf)}
	b.subs[sub] = struct{}{}
	return sub, func() { b.unsubscribe(sub) }, true
}

func (b *eventBus) unsubscribe(sub *eventSub) {
	b.mu.Lock()
	if _, live := b.subs[sub]; live {
		delete(b.subs, sub)
		close(sub.ch)
	}
	b.mu.Unlock()
}

// publish stamps the event with the next sequence number and fans it
// out. Slow subscribers drop the event; the bus never blocks.
func (b *eventBus) publish(ev JobEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now().UTC()
	}
	dropped := 0
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			dropped++
		}
	}
	b.mu.Unlock()
	if b.metrics != nil {
		b.metrics.EventsPublished.Add(1)
		if dropped > 0 {
			b.metrics.EventsDropped.Add(int64(dropped))
		}
	}
}

// subscribers reports the current subscriber count (a /metrics gauge).
func (b *eventBus) subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// close shuts the bus: every subscriber's channel closes (ending its SSE
// stream) and later publishes are dropped.
func (b *eventBus) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for sub := range b.subs {
			delete(b.subs, sub)
			close(sub.ch)
		}
	}
	b.mu.Unlock()
}

// sseHeartbeat is the keep-alive comment cadence for idle streams.
const sseHeartbeat = 15 * time.Second

// handleEvents is GET /v1/events: a text/event-stream of job lifecycle
// events. Optional query filters: ?tenant= keeps one tenant's jobs,
// ?job= one job id, ?types=started,finished a comma list of event types.
// The stream ends when the client disconnects or the server closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	q := r.URL.Query()
	filterTenant := q.Get("tenant")
	filterJob := q.Get("job")
	filterTypes := map[string]bool{}
	if t := q.Get("types"); t != "" {
		for _, part := range splitComma(t) {
			filterTypes[part] = true
		}
	}

	sub, cancel, ok := s.events.subscribe(256)
	if !ok {
		s.writeError(w, r, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": stream opened\n\n")
	fl.Flush()

	tick := time.NewTicker(sseHeartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case ev, ok := <-sub.ch:
			if !ok {
				return // bus closed: server shutting down
			}
			if filterTenant != "" && ev.Tenant != filterTenant {
				continue
			}
			if filterJob != "" && ev.JobID != filterJob {
				continue
			}
			if len(filterTypes) > 0 && !filterTypes[ev.Type] {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		}
	}
}

// splitComma splits a comma list, trimming empties.
func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
