package server_test

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/server"
)

// uploadLayered registers a distinct generated graph per seed.
func uploadLayered(t *testing.T, base string, seed int64) server.GraphInfo {
	t.Helper()
	var info server.GraphInfo
	spec := server.GraphSpec{Name: fmt.Sprintf("layered-%d", seed), Generator: "layered",
		Levels: 6, PerLevel: 10, Seed: seed}
	if code := doJSON(t, "POST", base+"/v1/graphs", spec, &info); code != http.StatusCreated {
		t.Fatalf("upload layered %d: status %d", seed, code)
	}
	return info
}

// TestBatchPlaceEndToEnd drives the gang path: N graphs, one job, one
// terminal state per graph, per-graph cache entries populated.
func TestBatchPlaceEndToEnd(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = uploadLayered(t, ts.URL, int64(i+1)).ID
	}

	var job server.JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: ids,
		Spec:   server.PlaceSpec{Algorithm: "gall", K: 3, Parallelism: 2},
	}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", code)
	}
	if len(job.Batch) != len(ids) {
		t.Fatalf("job carries %d batch items, want %d", len(job.Batch), len(ids))
	}
	done := waitJob(t, ts.URL, job.ID)
	if done.State != server.JobDone {
		t.Fatalf("job state %s (%s)", done.State, done.Error)
	}
	for _, item := range done.Batch {
		if item.State != server.JobDone || item.Result == nil {
			t.Fatalf("item %+v not done", item)
		}
		if len(item.Result.Filters) != 3 {
			t.Errorf("graph %s placed %d filters, want 3", item.GraphID, len(item.Result.Filters))
		}
	}

	// Per-graph cache entries were populated: a later SOLO request for any
	// member graph answers 200 from cache, no new job.
	for _, id := range ids {
		var res server.PlaceResult
		code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+id+"/place",
			server.PlaceSpec{Algorithm: "gall", K: 3}, &res)
		if code != http.StatusOK || !res.Cached {
			t.Fatalf("solo after batch on %s: status %d, cached %v", id, code, res.Cached)
		}
	}

	var ms server.MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, &ms)
	if ms.BatchesSubmitted != 1 {
		t.Errorf("batches_submitted = %d, want 1", ms.BatchesSubmitted)
	}
	if ms.BatchGraphsInflight != 0 {
		t.Errorf("batch_graphs_inflight = %d after completion", ms.BatchGraphsInflight)
	}
	if ms.SchedWorkers < 1 {
		t.Errorf("sched_workers = %d, want ≥ 1", ms.SchedWorkers)
	}
}

// TestBatchCacheKeyNormalization is the cache-key satellite: batch specs
// canonicalize graph order and exclude parallelism, so (a) a permuted
// batch with a different parallelism is answered inline from the first
// batch's cache entries, and (b) a solo request at yet another
// parallelism hits too.
func TestBatchCacheKeyNormalization(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	g1 := uploadLayered(t, ts.URL, 11).ID
	g2 := uploadLayered(t, ts.URL, 12).ID

	var job server.JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{g2, g1}, // reversed on purpose
		Spec:   server.PlaceSpec{Algorithm: "celf", K: 2, Parallelism: 3},
	}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("first batch: status %d", code)
	}
	if done := waitJob(t, ts.URL, job.ID); done.State != server.JobDone {
		t.Fatalf("first batch ended %s (%s)", done.State, done.Error)
	}

	// Same set, different order AND different parallelism: every slot is
	// cached, so the response is inline 200 — no job.
	var inline server.BatchResult
	code = doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{g1, g2},
		Spec:   server.PlaceSpec{Algorithm: "celf", K: 2, Parallelism: 7},
	}, &inline)
	if code != http.StatusOK {
		t.Fatalf("permuted batch: status %d, want inline 200", code)
	}
	if len(inline.Graphs) != 2 {
		t.Fatalf("inline result has %d graphs", len(inline.Graphs))
	}
	for _, item := range inline.Graphs {
		if item.State != server.JobDone || item.Result == nil || !item.Result.Cached {
			t.Fatalf("inline item %+v not served from cache", item)
		}
	}

	// Solo request at serial parallelism shares the same entries.
	var res server.PlaceResult
	code = doJSON(t, "POST", ts.URL+"/v1/graphs/"+g1+"/place",
		server.PlaceSpec{Algorithm: "celf", K: 2}, &res)
	if code != http.StatusOK || !res.Cached {
		t.Fatalf("solo after batch: status %d, cached %v", code, res.Cached)
	}
}

// TestBatchPartialCachePrefill checks a batch over a half-cached set only
// runs the misses: the cached graph comes back done immediately in the
// 202 body.
func TestBatchPartialCachePrefill(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2})
	g1 := uploadLayered(t, ts.URL, 21).ID
	g2 := uploadLayered(t, ts.URL, 22).ID

	// Prime g1 through the solo path.
	var solo server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+g1+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 2}, &solo); code != http.StatusAccepted {
		t.Fatalf("solo prime: status %d", code)
	}
	waitJob(t, ts.URL, solo.ID)

	var job server.JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{g1, g2},
		Spec:   server.PlaceSpec{Algorithm: "gall", K: 2},
	}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("batch: status %d", code)
	}
	var prefilled int
	for _, item := range job.Batch {
		if item.GraphID == g1 {
			if item.State != server.JobDone || item.Result == nil || !item.Result.Cached {
				t.Fatalf("cached member not prefilled: %+v", item)
			}
			prefilled++
		}
	}
	if prefilled != 1 {
		t.Fatalf("prefilled %d items, want 1", prefilled)
	}
	if done := waitJob(t, ts.URL, job.ID); done.State != server.JobDone {
		t.Fatalf("batch ended %s", done.State)
	}
}

// TestBatchDedupsInFlight checks two identical gangs (modulo order and
// parallelism) share one job while in flight.
func TestBatchDedupsInFlight(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 1})
	g1 := uploadLayered(t, ts.URL, 31).ID
	g2 := uploadLayered(t, ts.URL, 32).ID

	var first, second server.JobInfo
	doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{g1, g2},
		Spec:   server.PlaceSpec{Algorithm: "gall", K: 2, Parallelism: 2},
	}, &first)
	code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{g2, g1},
		Spec:   server.PlaceSpec{Algorithm: "gall", K: 2, Parallelism: 5},
	}, &second)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("second batch: status %d", code)
	}
	if code == http.StatusAccepted && second.ID != first.ID {
		t.Fatalf("identical in-flight gang spawned job %s, want dedup onto %s", second.ID, first.ID)
	}
	waitJob(t, ts.URL, first.ID)
}

// TestBatchErrorPaths covers the request validation surface.
func TestBatchErrorPaths(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	id := uploadLayered(t, ts.URL, 41).ID

	var errBody struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/placements:batch",
		server.BatchPlaceSpec{Spec: server.PlaceSpec{Algorithm: "gall", K: 1}}, &errBody); code != http.StatusBadRequest {
		t.Errorf("empty graph list: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{id, "nope"},
		Spec:   server.PlaceSpec{Algorithm: "gall", K: 1},
	}, &errBody); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{id},
		Spec:   server.PlaceSpec{Algorithm: "made-up", K: 1},
	}, &errBody); code != http.StatusBadRequest {
		t.Errorf("unknown algorithm: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/placements:batch", server.BatchPlaceSpec{
		Graphs: []string{id},
		Spec:   server.PlaceSpec{Algorithm: "gall", K: 100000},
	}, &errBody); code != http.StatusBadRequest {
		t.Errorf("k out of range: status %d", code)
	}
}
