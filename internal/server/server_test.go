package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	fp "repro"
	"repro/internal/server"
)

// newTestServer starts an httptest server over a fresh fpd handler.
func newTestServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// doJSON sends body (marshaled when non-nil) and decodes the response into
// out (when non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

const diamondEdges = "0 1\n0 2\n1 3\n2 3\n3 4\n"

// uploadDiamond registers the 5-node diamond (junction at node 3).
func uploadDiamond(t *testing.T, base string) server.GraphInfo {
	t.Helper()
	var info server.GraphInfo
	if code := doJSON(t, "POST", base+"/v1/graphs",
		server.GraphSpec{Name: "diamond", Edges: diamondEdges}, &info); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	return info
}

// waitJob polls GET /v1/jobs/{id} until the job is terminal.
func waitJob(t *testing.T, base, id string) server.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info server.JobInfo
		if code := doJSON(t, "GET", base+"/v1/jobs/"+id, nil, &info); code != http.StatusOK {
			t.Fatalf("poll job %s: status %d", id, code)
		}
		if info.State.Terminal() {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return server.JobInfo{}
}

func TestGraphUploadAndInfo(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	if info.Nodes != 5 || info.Edges != 5 || info.Sinks != 1 {
		t.Errorf("info = %+v, want 5 nodes, 5 edges, 1 sink", info)
	}
	if len(info.Sources) != 1 || info.Sources[0] != 0 {
		t.Errorf("sources = %v, want [0]", info.Sources)
	}
	var got server.GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("GET graph: status %d", code)
	}
	if got.ID != info.ID || got.Name != "diamond" {
		t.Errorf("GET = %+v", got)
	}
	var list struct {
		Graphs []server.GraphInfo `json:"graphs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs", nil, &list); code != http.StatusOK || len(list.Graphs) != 1 {
		t.Errorf("list: status %d, %d graphs", code, len(list.Graphs))
	}
}

func TestGraphFromGenerator(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	var info server.GraphInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Generator: "layered", Levels: 4, PerLevel: 10, Seed: 3}, &info)
	if code != http.StatusCreated {
		t.Fatalf("generator upload: status %d", code)
	}
	g, src := fp.Layered(4, 10, 1, 4, 3)
	if info.Nodes != g.N() || info.Edges != g.M() {
		t.Errorf("generated %d nodes %d edges, want %d/%d", info.Nodes, info.Edges, g.N(), g.M())
	}
	if len(info.Sources) != 1 || info.Sources[0] != src {
		t.Errorf("sources = %v, want [%d]", info.Sources, src)
	}
}

// TestCreateGraphErrors is the table-driven error-path suite for POST
// /v1/graphs.
func TestCreateGraphErrors(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	tests := []struct {
		name string
		body any
		want int
	}{
		{"cyclic upload", server.GraphSpec{Edges: "0 1\n1 0\n"}, http.StatusUnprocessableEntity},
		{"self loop", server.GraphSpec{Edges: "0 0\n"}, http.StatusBadRequest},
		{"unknown generator", server.GraphSpec{Generator: "petersen"}, http.StatusBadRequest},
		{"edges and generator", server.GraphSpec{Edges: "0 1\n", Generator: "quote"}, http.StatusBadRequest},
		{"neither", server.GraphSpec{Name: "empty"}, http.StatusBadRequest},
		{"bad twitter scale", server.GraphSpec{Generator: "twitter", Scale: 7}, http.StatusBadRequest},
		{"negative dag n", server.GraphSpec{Generator: "dag", N: -5}, http.StatusBadRequest},
		{"oversized dag n", server.GraphSpec{Generator: "dag", N: 2000000000}, http.StatusBadRequest},
		{"negative layered levels", server.GraphSpec{Generator: "layered", Levels: -3, PerLevel: -2}, http.StatusBadRequest},
		{"quadratic layered blowup", server.GraphSpec{Generator: "layered", Levels: 1000, PerLevel: 1000}, http.StatusBadRequest},
		{"negative tree n", server.GraphSpec{Generator: "tree", N: -7}, http.StatusBadRequest},
		{"bad dag p", server.GraphSpec{Generator: "dag", N: 10, P: 1.5}, http.StatusBadRequest},
		{"oversized bottleneck depth", server.GraphSpec{Generator: "bottleneck", Depth: 40}, http.StatusBadRequest},
		{"powerlaw edge blowup", server.GraphSpec{Generator: "powerlaw", N: 2000000, EPN: 100}, http.StatusBadRequest},
		{"huge numeric node id", server.GraphSpec{Edges: "0 2000000000\n"}, http.StatusBadRequest},
		{"overflowing node id", server.GraphSpec{Edges: "0 99999999999999999999\n"}, http.StatusBadRequest},
		{"source with in-edges", server.GraphSpec{Edges: "0 1\n1 2\n", Sources: []int{1}}, http.StatusUnprocessableEntity},
		{"source out of range", server.GraphSpec{Edges: "0 1\n", Sources: []int{9}}, http.StatusUnprocessableEntity},
		{"unknown field", map[string]any{"foo": 1}, http.StatusBadRequest},
		{"malformed edge list", server.GraphSpec{Edges: "0\n"}, http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var e struct {
				Error string `json:"error"`
			}
			if code := doJSON(t, "POST", ts.URL+"/v1/graphs", tc.body, &e); code != tc.want {
				t.Errorf("status = %d, want %d (error %q)", code, tc.want, e.Error)
			}
			if e.Error == "" {
				t.Error("missing error message")
			}
		})
	}
}

func TestSyncPlacementHeuristics(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	for _, algo := range []string{"gmax", "g1", "gl", "glfast", "randk", "randi", "randw", "prop1"} {
		t.Run(algo, func(t *testing.T) {
			var res server.PlaceResult
			code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
				server.PlaceSpec{Algorithm: algo, K: 1, Seed: 1}, &res)
			if code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
			if res.PhiEmpty != 6 {
				t.Errorf("phi_empty = %v, want 6", res.PhiEmpty)
			}
			if res.GraphID != info.ID || res.Algorithm != algo {
				t.Errorf("result = %+v", res)
			}
		})
	}
	// The informed heuristics all find the junction on the diamond.
	var res server.PlaceResult
	doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gmax", K: 1}, &res)
	if len(res.Filters) != 1 || res.Filters[0] != 3 || res.FR != 1 {
		t.Errorf("gmax on diamond = %+v, want filter [3] with FR 1", res)
	}
	// prop1 ignores k entirely (no k in the request is fine) and reports
	// the budget it actually used.
	code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "prop1"}, &res)
	if code != http.StatusOK || res.K != len(res.Filters) || len(res.Filters) != 1 {
		t.Errorf("prop1 = %d %+v, want 200 with K == len(filters) == 1", code, res)
	}
}

// TestPlaceErrors is the table-driven error-path suite for place requests.
func TestPlaceErrors(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	place := ts.URL + "/v1/graphs/" + info.ID + "/place"
	tests := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown graph", ts.URL + "/v1/graphs/g999/place", server.PlaceSpec{Algorithm: "gall", K: 1}, http.StatusNotFound},
		{"unknown algorithm", place, server.PlaceSpec{Algorithm: "simulated-annealing", K: 1}, http.StatusBadRequest},
		{"k zero", place, server.PlaceSpec{Algorithm: "gall"}, http.StatusBadRequest},
		{"k negative", place, server.PlaceSpec{Algorithm: "gall", K: -2}, http.StatusBadRequest},
		{"k beyond n", place, server.PlaceSpec{Algorithm: "gall", K: 6}, http.StatusBadRequest},
		{"unknown engine", place, server.PlaceSpec{Algorithm: "gall", K: 1, Engine: "posit"}, http.StatusBadRequest},
		{"bad sources override", place, server.PlaceSpec{Algorithm: "gall", K: 1, Sources: []int{3}}, http.StatusUnprocessableEntity},
		{"bad body", place, "not an object", http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if code := doJSON(t, "POST", tc.url, tc.body, nil); code != tc.want {
				t.Errorf("status = %d, want %d", code, tc.want)
			}
		})
	}
}

// TestAsyncGreedyMatchesLibraryAndCaches is the end-to-end acceptance
// path: upload → async greedy job → polled result equals a direct
// fp.GreedyAll + fp.FR call, and an identical second request is served
// from the result cache (observed via /metrics).
func TestAsyncGreedyMatchesLibraryAndCaches(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	var info server.GraphInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Generator: "layered", Levels: 6, PerLevel: 15, Seed: 11}, &info)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	spec := server.PlaceSpec{Algorithm: "gall", K: 5}

	var jobInfo server.JobInfo
	code = doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place", spec, &jobInfo)
	if code != http.StatusAccepted {
		t.Fatalf("place: status %d, want 202", code)
	}
	if jobInfo.State != server.JobQueued && jobInfo.State != server.JobRunning {
		t.Errorf("fresh job state = %s", jobInfo.State)
	}
	done := waitJob(t, ts.URL, jobInfo.ID)
	if done.State != server.JobDone || done.Result == nil {
		t.Fatalf("job finished as %s (error %q)", done.State, done.Error)
	}

	// Ground truth straight from the library on the same generated graph.
	g, src := fp.Layered(6, 15, 1, 4, 11)
	model, err := fp.NewModel(g, []int{src})
	if err != nil {
		t.Fatal(err)
	}
	ev := fp.NewFloat(model)
	filters := fp.GreedyAll(ev, 5)
	wantFR := fp.FR(ev, fp.MaskOf(g.N(), filters))

	res := done.Result
	if len(res.Filters) != len(filters) {
		t.Fatalf("filters = %v, want %v", res.Filters, filters)
	}
	for i := range filters {
		if res.Filters[i] != filters[i] {
			t.Fatalf("filters = %v, want %v", res.Filters, filters)
		}
	}
	if math.Abs(res.FR-wantFR) > 1e-12 {
		t.Errorf("FR = %v, want %v", res.FR, wantFR)
	}
	if res.Cached {
		t.Error("first result marked cached")
	}

	// The identical request again: served inline from the result cache.
	var cached server.PlaceResult
	code = doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place", spec, &cached)
	if code != http.StatusOK {
		t.Fatalf("cached place: status %d, want 200", code)
	}
	if !cached.Cached || math.Abs(cached.FR-wantFR) > 1e-12 {
		t.Errorf("cached result = %+v, want cached FR %v", cached, wantFR)
	}

	var ms server.MetricsSnapshot
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &ms); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if ms.CacheHits != 1 || ms.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", ms.CacheHits, ms.CacheMisses)
	}
	if ms.JobsSubmitted != 1 || ms.JobsCompleted != 1 {
		t.Errorf("jobs submitted/completed = %d/%d, want 1/1", ms.JobsSubmitted, ms.JobsCompleted)
	}

	// A different k is a different cache slot.
	code = doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 6}, &jobInfo)
	if code != http.StatusAccepted {
		t.Errorf("different k: status %d, want 202", code)
	}
	waitJob(t, ts.URL, jobInfo.ID)
}

// TestConcurrentJobSubmission fans out parallel async placements with
// increasing budgets and checks every job completes with monotonically
// nondecreasing FR (submodularity of F).
func TestConcurrentJobSubmission(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 4})
	var info server.GraphInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Generator: "layered", Levels: 5, PerLevel: 12, Seed: 2}, &info)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	const jobs = 8
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var ji server.JobInfo
			code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
				server.PlaceSpec{Algorithm: "gall", K: i + 1}, &ji)
			if code != http.StatusAccepted {
				t.Errorf("job %d: status %d", i, code)
				return
			}
			ids[i] = ji.ID
		}(i)
	}
	wg.Wait()
	frs := make([]float64, jobs)
	for i, id := range ids {
		if id == "" {
			t.Fatalf("job %d was not submitted", i)
		}
		done := waitJob(t, ts.URL, id)
		if done.State != server.JobDone {
			t.Fatalf("job %d state %s (error %q)", i, done.State, done.Error)
		}
		frs[i] = done.Result.FR
	}
	for i := 1; i < jobs; i++ {
		if frs[i] < frs[i-1]-1e-12 {
			t.Errorf("FR(k=%d) = %v < FR(k=%d) = %v", i+1, frs[i], i, frs[i-1])
		}
	}
	var ms server.MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, &ms)
	if ms.JobsCompleted != jobs {
		t.Errorf("jobs_completed = %d, want %d", ms.JobsCompleted, jobs)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	var res server.PlaceResult
	code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID+"/evaluate?filters=3", nil, &res)
	if code != http.StatusOK {
		t.Fatalf("evaluate: status %d", code)
	}
	// Diamond Φ(∅,V) = 1 + 1 + 2 + 2 = 6; filtering node 3 drops the sink
	// to one copy: Φ = 5, F = 1, FR = 1 (node 3 is the only multiplicity
	// point).
	if res.PhiEmpty != 6 || res.PhiA != 5 || res.F != 1 || res.FR != 1 {
		t.Errorf("evaluate = %+v, want Φ(∅)=6 Φ(A)=5 F=1 FR=1", res)
	}
	// Empty filter set is allowed.
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID+"/evaluate", nil, &res); code != http.StatusOK || res.F != 0 {
		t.Errorf("empty evaluate: status %d, F = %v", code, res.F)
	}
	for _, q := range []string{"filters=99", "filters=x", "filters=3,3", "filters=-1"} {
		if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+info.ID+"/evaluate?"+q, nil, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/g999/evaluate", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d", code)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxGraphs: 2})
	g1 := uploadDiamond(t, ts.URL)
	g2 := uploadDiamond(t, ts.URL)
	// Touch g1 so g2 is the LRU victim when g3 arrives.
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+g1.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("touch g1: status %d", code)
	}
	g3 := uploadDiamond(t, ts.URL)
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+g2.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("evicted graph still served: status %d", code)
	}
	for _, id := range []string{g1.ID, g3.ID} {
		if code := doJSON(t, "GET", ts.URL+"/v1/graphs/"+id, nil, nil); code != http.StatusOK {
			t.Errorf("graph %s gone: status %d", id, code)
		}
	}
	var ms server.MetricsSnapshot
	doJSON(t, "GET", ts.URL+"/metrics", nil, &ms)
	if ms.GraphsEvicted != 1 || ms.GraphsCreated != 3 {
		t.Errorf("created/evicted = %d/%d, want 3/1", ms.GraphsCreated, ms.GraphsEvicted)
	}
}

func TestDeleteGraph(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	if code := doJSON(t, "DELETE", ts.URL+"/v1/graphs/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/graphs/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status %d", code)
	}
}

func TestSourcesOverrideAndBigEngine(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	// Two in-degree-0 nodes 0 and 5; default sources are both.
	var info server.GraphInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		server.GraphSpec{Edges: diamondEdges + "5 1\n"}, &info)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	if len(info.Sources) != 2 {
		t.Fatalf("sources = %v, want two", info.Sources)
	}
	var one, both server.PlaceResult
	doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gmax", K: 1, Sources: []int{0}}, &one)
	doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gmax", K: 1, Engine: "big"}, &both)
	if one.PhiEmpty >= both.PhiEmpty {
		t.Errorf("Φ with one source (%v) should be < with both (%v)", one.PhiEmpty, both.PhiEmpty)
	}
}

func TestHealthzAndRouteErrors(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	var h struct {
		Status string `json:"status"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %d %+v", code, h)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/j999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/j999", nil, nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown route: status %d", code)
	}
}

func TestJobListing(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)
	var ji server.JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "celf", K: 2}, &ji)
	if code != http.StatusAccepted {
		t.Fatalf("place: status %d", code)
	}
	waitJob(t, ts.URL, ji.ID)
	var list struct {
		Jobs []server.JobInfo `json:"jobs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs", nil, &list); code != http.StatusOK {
		t.Fatalf("list jobs: status %d", code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != ji.ID || list.Jobs[0].State != server.JobDone {
		t.Errorf("jobs = %+v", list.Jobs)
	}
	if fmt.Sprintf("%v", list.Jobs[0].Spec.Algorithm) != "celf" {
		t.Errorf("spec echoed wrong: %+v", list.Jobs[0].Spec)
	}
}

// TestParallelPlacement checks the parallelism request field: clamped to
// the server's MaxParallelism, identical filters to the serial run, the
// effective worker count echoed in the result, and the new /metrics
// gauges present.
func TestParallelPlacement(t *testing.T) {
	ts := newTestServer(t, server.Config{Workers: 2, MaxParallelism: 2})
	info := uploadDiamond(t, ts.URL)
	place := ts.URL + "/v1/graphs/" + info.ID + "/place"

	var serial server.JobInfo
	if code := doJSON(t, "POST", place,
		server.PlaceSpec{Algorithm: "gall", K: 1}, &serial); code != http.StatusAccepted {
		t.Fatalf("serial place: status %d", code)
	}
	serialDone := waitJob(t, ts.URL, serial.ID)
	if serialDone.State != server.JobDone {
		t.Fatalf("serial job: %+v", serialDone)
	}

	// A parallelism request beyond the cap is clamped, reuses the cache
	// slot (parallelism is not part of the key) and returns identical
	// filters.
	var cached server.PlaceResult
	if code := doJSON(t, "POST", place,
		server.PlaceSpec{Algorithm: "gall", K: 1, Parallelism: 64}, &cached); code != http.StatusOK {
		t.Fatalf("parallel place: status %d", code)
	}
	if !cached.Cached {
		t.Error("parallel request missed the cache despite identical key")
	}
	if fmt.Sprint(cached.Filters) != fmt.Sprint(serialDone.Result.Filters) {
		t.Errorf("parallel filters %v != serial %v", cached.Filters, serialDone.Result.Filters)
	}
	if serialDone.Result.Oracle == nil || serialDone.Result.Oracle.GainEvaluations == 0 {
		t.Errorf("greedy result carries no oracle stats: %+v", serialDone.Result)
	}

	// Negative parallelism is a client error.
	var errBody map[string]any
	if code := doJSON(t, "POST", place,
		server.PlaceSpec{Algorithm: "gmax", K: 1, Parallelism: -1}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("negative parallelism: status %d, want 400", code)
	}

	var snap server.MetricsSnapshot
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.OracleEvaluations == 0 {
		t.Error("oracle_evaluations gauge never moved")
	}
	if snap.PlaceWorkersBusy != 0 {
		t.Errorf("place_workers_busy = %d after all jobs finished", snap.PlaceWorkersBusy)
	}
}
