package server

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"net/http"

	"repro/internal/obs"
)

// Request-scope identity. Every request entering ServeHTTP is stamped
// with three values before routing:
//
//   - a request id (X-Request-ID: accepted from the client when well
//     formed, generated otherwise), echoed in the response headers and
//     in every error body so a client log line and a server log line
//     can be joined on one token;
//   - a tenant (X-FP-Tenant, defaulting to obs.DefaultTenant), the unit
//     of resource accounting;
//   - a W3C trace context (traceparent: continued as a child span when
//     the client sent one, minted otherwise), carried through job
//     records, timelines and logs.
//
// All three travel in the request context and are copied into JobMeta
// at submission, so asynchronous work keeps the identity of the request
// that created it.

// reqInfo is the per-request identity bundle stored in the context.
type reqInfo struct {
	id     string
	tenant string
	trace  obs.TraceContext
}

// reqInfoKey is the context key reqInfo travels under.
type reqInfoKey struct{}

// reqFrom extracts the request identity; the zero value (direct handler
// tests that bypass ServeHTTP) means "no id, default tenant".
func reqFrom(ctx context.Context) reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(reqInfo)
	return ri
}

// genRequestID mints an 8-byte hex request id. Randomness failure falls
// back to a constant rather than failing a serving path.
func genRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "r-00000000"
	}
	return "r-" + hex.EncodeToString(b[:])
}

// validRequestID accepts client-supplied request ids: 1–64 characters
// from the same conservative charset as tenant names, safe for headers,
// logs and JSON without escaping. Anything else is silently replaced
// with a generated id (a malformed tracing header should never fail the
// request itself).
func validRequestID(s string) bool { return obs.ValidTenant(s) }

// stampRequest resolves the request identity from headers, stores it in
// the context and echoes it into the response headers. It returns the
// derived info and the updated request. A present-but-invalid tenant
// header is a client error (ok=false, response already written): silent
// fallback to the default tenant would misattribute usage.
func (s *Server) stampRequest(w http.ResponseWriter, r *http.Request) (reqInfo, *http.Request, bool) {
	ri := reqInfo{tenant: obs.DefaultTenant}
	if t := r.Header.Get("X-FP-Tenant"); t != "" {
		if !obs.ValidTenant(t) {
			ri.id = genRequestID()
			w.Header().Set("X-Request-ID", ri.id)
			s.writeError(w, r, http.StatusBadRequest,
				"invalid X-FP-Tenant %q: want 1-64 chars of [A-Za-z0-9._-]", t)
			return ri, r, false
		}
		ri.tenant = t
	}
	if id := r.Header.Get("X-Request-ID"); id != "" && validRequestID(id) {
		ri.id = id
	} else {
		ri.id = genRequestID()
	}
	if tc, err := obs.ParseTraceparent(r.Header.Get("Traceparent")); err == nil {
		ri.trace = tc.Child() // continue the client's trace with our own span
	} else {
		ri.trace = obs.NewTraceContext()
	}
	w.Header().Set("X-Request-ID", ri.id)
	w.Header().Set("Traceparent", ri.trace.String())
	r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
	return ri, r, true
}

// tenantCounters returns the accounting sink for the request's tenant —
// nil (a universal no-op) when accounting is disabled.
func (s *Server) tenantCounters(r *http.Request) *obs.TenantCounters {
	return s.acct.Tenant(reqFrom(r.Context()).tenant)
}

// jobMetaOf builds the JobMeta a handler passes to the job engine.
func jobMetaOf(r *http.Request) JobMeta {
	ri := reqFrom(r.Context())
	return JobMeta{Tenant: ri.tenant, RequestID: ri.id, Traceparent: ri.trace.String()}
}
