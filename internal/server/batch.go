package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"sync"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/sched"
)

// BatchPlaceSpec is the POST /v1/placements:batch request body: one
// PlaceSpec fanned out over many registered graphs as a single gang job.
// A fleet-wide tenant placing filters on hundreds of c-graphs (the
// per-venue/per-year subgraphs of a citation corpus) submits once instead
// of serializing through the job queue; the sub-placements share the
// process-wide scheduler, and each graph's result lands in the ordinary
// placement cache so later solo requests hit.
type BatchPlaceSpec struct {
	// Graphs names the registered graphs to place on. Order is
	// canonicalized (sorted, deduplicated) so two requests naming the
	// same set share cache entries and dedup onto one job.
	Graphs []string `json:"graphs"`
	// Spec is the placement to run on every graph. Parallelism is, as for
	// solo placements, excluded from every cache key.
	Spec PlaceSpec `json:"spec"`
}

// BatchItem is the per-graph view inside a batch job or result.
type BatchItem struct {
	GraphID string       `json:"graph_id"`
	State   JobState     `json:"state"`
	Error   string       `json:"error,omitempty"`
	Result  *PlaceResult `json:"result,omitempty"`
}

// BatchResult is the 200 response when every requested graph was already
// cached: no job is created, the items come back inline.
type BatchResult struct {
	Graphs []BatchItem `json:"graphs"`
}

// batchState tracks per-graph placement progress for one gang job. It has
// its own mutex so the job engine can snapshot it while holding the
// engine lock; no batchState method may acquire engine or registry locks.
type batchState struct {
	mu    sync.Mutex
	items []BatchItem
	index map[string]int
}

func newBatchState(items []BatchItem) *batchState {
	bs := &batchState{items: items, index: make(map[string]int, len(items))}
	for i, it := range items {
		bs.index[it.GraphID] = i
	}
	return bs
}

// setState transitions one graph's sub-placement.
func (bs *batchState) setState(graphID string, st JobState) {
	bs.mu.Lock()
	bs.items[bs.index[graphID]].State = st
	bs.mu.Unlock()
}

// finish records a successful sub-placement.
func (bs *batchState) finish(graphID string, res *PlaceResult) {
	bs.mu.Lock()
	it := &bs.items[bs.index[graphID]]
	it.State = JobDone
	it.Result = res
	bs.mu.Unlock()
}

// fail records a failed or canceled sub-placement.
func (bs *batchState) fail(graphID string, st JobState, err error) {
	bs.mu.Lock()
	it := &bs.items[bs.index[graphID]]
	it.State = st
	it.Error = err.Error()
	bs.mu.Unlock()
}

// cancelPending marks every non-terminal sub-placement canceled — the
// whole-job cancellation path for gangs that never started.
func (bs *batchState) cancelPending() {
	bs.mu.Lock()
	for i := range bs.items {
		if !bs.items[i].State.Terminal() {
			bs.items[i].State = JobCanceled
		}
	}
	bs.mu.Unlock()
}

// snapshot copies the items in canonical graph order.
func (bs *batchState) snapshot() []BatchItem {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return slices.Clone(bs.items)
}

// batchMiss is one graph the cache could not answer: the resolved model
// to place on and the cache key its result will fill.
type batchMiss struct {
	graphID string
	model   *flow.Model
	key     string
}

// handlePlaceBatch is POST /v1/placements:batch. The graph list is
// canonicalized, every graph's cache slot is consulted (hits come back
// prefilled), and the remaining sub-placements become ONE job whose
// closure gang-submits them to the shared scheduler. 200 with the inline
// result when everything was cached, 202 with the job otherwise.
func (s *Server) handlePlaceBatch(w http.ResponseWriter, r *http.Request) {
	var breq BatchPlaceSpec
	if !s.decodeBody(w, r, &breq) {
		return
	}
	if len(breq.Graphs) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "batch spec: empty graph list")
		return
	}
	ids := slices.Clone(breq.Graphs)
	slices.Sort(ids)
	ids = slices.Compact(ids)

	spec := breq.Spec
	tc := s.tenantCounters(r)
	var (
		algo   algoSpec
		items  = make([]BatchItem, 0, len(ids))
		misses = make([]batchMiss, 0, len(ids))
		keys   = make([]string, 0, len(ids))
	)
	for _, id := range ids {
		m, info, ok := s.registry.Get(id)
		if !ok {
			s.writeError(w, r, http.StatusNotFound, "unknown graph %q", id)
			return
		}
		// validate normalizes the spec in place; the normalization is
		// idempotent and graph-independent, only the k/sources range
		// checks differ per graph.
		var err error
		if algo, err = spec.validate(m, s.maxParallelism); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "place spec (graph %s): %v", id, err)
			return
		}
		m, sources, err := resolveModel(m, spec.Sources)
		if err != nil {
			s.writeError(w, r, http.StatusUnprocessableEntity, "sources override (graph %s): %v", id, err)
			return
		}
		key := spec.cacheKey(id, info.Patches, sources)
		if res, ok := s.cache.get(key); ok {
			tc.AddCacheHit()
			items = append(items, BatchItem{GraphID: id, State: JobDone, Result: res})
			continue
		}
		tc.AddCacheMiss()
		items = append(items, BatchItem{GraphID: id, State: JobQueued})
		misses = append(misses, batchMiss{graphID: id, model: m, key: key})
		keys = append(keys, key)
	}

	if len(misses) == 0 {
		s.writeJSON(w, http.StatusOK, BatchResult{Graphs: items})
		return
	}

	// The gang's dedup key is the joined per-graph MISS keys: two batches
	// needing the same outstanding placements share one job even when
	// their full graph lists differ by already-cached entries. Per-graph
	// keys exclude parallelism, so the gang key does too.
	bs := newBatchState(items)
	gangKey := "batch|" + strings.Join(keys, "&")
	job, err := s.jobs.SubmitBatch(strings.Join(ids, ","), spec, gangKey, jobMetaOf(r), bs, s.runBatch(misses, spec, algo, bs, tc))
	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeQueueFull(w, r, err)
		return
	case err != nil:
		s.writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	s.writeJSON(w, http.StatusAccepted, job)
}

// runBatch builds the gang closure: every miss becomes one scheduler task
// running the ordinary execute path, reporting its own state transitions
// and filling its own cache slot as it completes — so a gang interrupted
// mid-flight still leaves every finished graph cached and marked done.
// The gang is tagged with the submitting tenant so its scheduler queue
// waits are attributed in the per-tenant accounting.
func (s *Server) runBatch(misses []batchMiss, spec PlaceSpec, algo algoSpec, bs *batchState, tc *obs.TenantCounters) func(context.Context) (*PlaceResult, error) {
	return func(ctx context.Context) (*PlaceResult, error) {
		errs := make([]error, len(misses))
		gang := sched.Default().NewBatch().SetTag(tc.Name())
		for i := range misses {
			i := i
			gang.Go(func() {
				ms := misses[i]
				if err := ctx.Err(); err != nil {
					errs[i] = err
					bs.fail(ms.graphID, JobCanceled, err)
					return
				}
				bs.setState(ms.graphID, JobRunning)
				s.metrics.BatchGraphsInflight.Add(1)
				// runShared re-checks the cache (a solo job or an
				// overlapping gang may have filled this slot while we sat
				// queued), registers the per-graph key in the flight table
				// so identical work in flight is joined instead of
				// duplicated, and fills the cache slot on success.
				res, err := s.runShared(ctx, ms.key, spec, algo, ms.model, ms.graphID, tc)
				s.metrics.BatchGraphsInflight.Add(-1)
				if err != nil {
					errs[i] = err
					st := JobFailed
					if errors.Is(err, context.Canceled) {
						st = JobCanceled
					}
					bs.fail(ms.graphID, st, err)
					return
				}
				bs.finish(ms.graphID, res)
			})
		}
		gang.Wait()
		// Job-level outcome: prefer a real failure over cancellation so a
		// genuinely broken sub-placement is not masked by siblings that
		// were canceled in its wake.
		var firstErr error
		for i, err := range errs {
			if err == nil {
				continue
			}
			if !errors.Is(err, context.Canceled) {
				return nil, fmt.Errorf("graph %s: %w", misses[i].graphID, err)
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return nil, firstErr
	}
}
