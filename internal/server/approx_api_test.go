package server_test

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestApproxPlacementEndToEnd drives the approximate engine through the
// HTTP surface: an async "approx" job returns filters plus a sampled
// confidence interval on Φ(A), its timeline records the sample/recheck
// stages, the fpd_approx_* counters move, and the tenant is charged for
// sampled evaluations alongside exact ones.
func TestApproxPlacementEndToEnd(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadLayered(t, ts.URL, 17)

	var ji server.JobInfo
	code, _ := doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"X-FP-Tenant": "approxco"},
		server.PlaceSpec{Algorithm: "approx", K: 3, Quality: 0.1, Seed: 7}, &ji)
	if code != http.StatusAccepted {
		t.Fatalf("approx place: status %d, want 202", code)
	}
	done := waitJob(t, ts.URL, ji.ID)
	if done.State != server.JobDone {
		t.Fatalf("job state %s (%s)", done.State, done.Error)
	}
	res := done.Result
	if res == nil {
		t.Fatal("approx job carries no result")
	}
	if len(res.Filters) != 3 {
		t.Errorf("filters = %v, want 3 placements", res.Filters)
	}
	if res.PhiCI == nil || res.PhiCI.Runs <= 0 {
		t.Fatalf("PhiCI = %+v, want a populated confidence interval", res.PhiCI)
	}
	if res.Oracle == nil || res.Oracle.SampledEvaluations <= 0 {
		t.Errorf("Oracle = %+v, want sampled evaluations > 0", res.Oracle)
	}
	if res.Oracle != nil && res.Oracle.GainEvaluations <= 0 {
		t.Errorf("Oracle = %+v, want exact re-checks > 0", res.Oracle)
	}
	stages := stageNames(done)
	for _, want := range []string{"queued", "run", "build-evaluator", "approx-sample", "approx-recheck"} {
		if !stages[want] {
			t.Errorf("timeline missing %q: %+v", want, done.Timeline)
		}
	}

	// The daemon-level approx counters moved.
	var snap server.MetricsSnapshot
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.ApproxPlacements < 1 || snap.ApproxSampledEvaluations < 1 || snap.ApproxExactRechecks < 1 {
		t.Errorf("approx counters = (%d, %d, %d), want all ≥ 1",
			snap.ApproxPlacements, snap.ApproxSampledEvaluations, snap.ApproxExactRechecks)
	}

	// Tenant accounting charges sampled evaluations like oracle work
	// (charged as the worker finishes, marginally after the job record
	// turns terminal; poll briefly).
	var usage struct {
		SampledEvaluations int64 `json:"sampled_evaluations"`
		OracleEvaluations  int64 `json:"oracle_evaluations"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, "GET", ts.URL+"/v1/tenants/approxco/usage", nil, &usage); code != http.StatusOK {
			t.Fatalf("tenant usage: status %d", code)
		}
		if usage.SampledEvaluations >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if usage.SampledEvaluations < 1 || usage.OracleEvaluations < 1 {
		t.Errorf("tenant usage = %+v, want sampled and oracle evaluations ≥ 1", usage)
	}

	// The per-tenant sampled-evaluations family appears in the scrape.
	body := fetchText(t, ts.URL+"/metrics?format=prometheus")
	if !strings.Contains(body, `fpd_tenant_sampled_evaluations_total{tenant="approxco"}`) {
		t.Error("exposition missing fpd_tenant_sampled_evaluations_total for the tenant")
	}
	if !strings.Contains(body, "fpd_approx_placements_total ") {
		t.Error("exposition missing fpd_approx_placements_total")
	}

	// An identical resubmit is answered inline from the placement cache,
	// confidence interval intact.
	var cached server.PlaceResult
	code, _ = doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"X-FP-Tenant": "approxco"},
		server.PlaceSpec{Algorithm: "approx", K: 3, Quality: 0.1, Seed: 7}, &cached)
	if code != http.StatusOK || !cached.Cached {
		t.Errorf("identical approx resubmit not served from cache: status %d, %+v", code, cached)
	}
	if cached.PhiCI == nil {
		t.Error("cached approx result lost its confidence interval")
	}

	// A different quality is a different result: it must NOT hit the
	// cached slot.
	var other server.JobInfo
	code, _ = doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"X-FP-Tenant": "approxco"},
		server.PlaceSpec{Algorithm: "approx", K: 3, Quality: 0.25, Seed: 7}, &other)
	if code != http.StatusAccepted {
		t.Errorf("different quality reused the cache slot: status %d", code)
	} else {
		waitJob(t, ts.URL, other.ID)
	}
}

// TestApproxPlacementValidation pins the quality knob's server-side
// contract: out-of-range values are rejected for approx, and silently
// irrelevant (zeroed, same cache slot) for exact algorithms.
func TestApproxPlacementValidation(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)

	for _, bad := range []server.PlaceSpec{
		{Algorithm: "approx", K: 1, Quality: 0.9},
		{Algorithm: "approx", K: 1, Quality: -0.1},
		{Algorithm: "approx", K: 1, SampleBudget: -4},
	} {
		if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place", bad, nil); code != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", bad, code)
		}
	}

	// Quality on an exact algorithm is ignored, not an error — validate
	// zeroes it, so a quality-decorated request lands in the same cache
	// slot as the plain one.
	var ji server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1}, &ji); code != http.StatusAccepted {
		t.Fatalf("gall: status %d", code)
	}
	done := waitJob(t, ts.URL, ji.ID)
	if done.State != server.JobDone {
		t.Fatalf("gall job state %s (%s)", done.State, done.Error)
	}
	var second server.PlaceResult
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "gall", K: 1, Quality: 0.3, SampleBudget: 9}, &second); code != http.StatusOK {
		t.Fatalf("gall with quality: status %d, want 200 (cache hit)", code)
	}
	if !second.Cached {
		t.Error("quality fragment: exact algorithm with quality set missed the cache")
	}
	if second.PhiCI != nil {
		t.Error("exact placement grew a confidence interval")
	}
}
