package server

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsSnapshotDrift pins the counter plumbing end to end: every
// Metrics field must land in the same-named MetricsSnapshot field, every
// snapshot field must be emitted as an fpd_-prefixed Prometheus sample
// with the right TYPE, and the exposition must pass the strict linter.
// Adding a counter without one of its counterparts fails here (the
// reflective Snapshot additionally panics at runtime).
func TestMetricsSnapshotDrift(t *testing.T) {
	var m Metrics
	mv := reflect.ValueOf(&m).Elem()
	for i := 0; i < mv.NumField(); i++ {
		mv.Field(i).Addr().Interface().(*atomic.Int64).Store(int64(i + 1))
	}
	snap := m.Snapshot()
	sv := reflect.ValueOf(snap)
	mt := mv.Type()
	for i := 0; i < mt.NumField(); i++ {
		name := mt.Field(i).Name
		if got := sv.FieldByName(name).Int(); got != int64(i+1) {
			t.Errorf("snapshot.%s = %d, want %d", name, got, i+1)
		}
	}

	var buf bytes.Buffer
	if err := writePrometheusSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	st := reflect.TypeOf(snap)
	for i := 0; i < st.NumField(); i++ {
		tag := strings.Split(st.Field(i).Tag.Get("json"), ",")[0]
		name := "fpd_" + tag
		if !strings.Contains(text, "\n"+name+" ") && !strings.HasPrefix(text, name+" ") {
			t.Errorf("metric %s missing from exposition", name)
		}
		wantType := "counter"
		if snapshotGauges[tag] {
			wantType = "gauge"
		}
		if !strings.Contains(text, "# TYPE "+name+" "+wantType+"\n") {
			t.Errorf("metric %s missing %q TYPE line", name, wantType)
		}
	}
	if err := obs.LintPrometheus(strings.NewReader(text)); err != nil {
		t.Errorf("exposition fails lint: %v", err)
	}
}

// timelineStages flattens a timeline to its stage names.
func timelineStages(info JobInfo) map[string]obs.StageRecord {
	out := make(map[string]obs.StageRecord, len(info.Timeline))
	for _, rec := range info.Timeline {
		out[rec.Name] = rec
	}
	return out
}

// TestJobTimelineDeferred: a gang parked behind a saturated scheduler
// reports a deferred-wait stage once admitted, and the deferred gauges
// expose the parked backlog while it waits.
func TestJobTimelineDeferred(t *testing.T) {
	e, _ := newTestEngine(1, 4)
	defer e.Close()
	saturated := forceProbe(e)
	saturated.Store(true)

	info := gangJob(t, e, "batch|k1", okFn)
	if waiting, oldest := e.DeferredStats(); waiting != 1 || oldest < 0 {
		t.Fatalf("DeferredStats = %d, %v, want 1 parked with non-negative age", waiting, oldest)
	}
	saturated.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := e.Wait(ctx, info.ID)
	if err != nil || done.State != JobDone {
		t.Fatalf("deferred gang finished as %s (err %v)", done.State, err)
	}
	stages := timelineStages(done)
	for _, want := range []string{"deferred-wait", "queued", "run"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("timeline missing %q stage: %+v", want, done.Timeline)
		}
	}
	if waiting, oldest := e.DeferredStats(); waiting != 0 || oldest != 0 {
		t.Errorf("DeferredStats after drain = %d, %v, want 0, 0", waiting, oldest)
	}
}

// TestJobTimelineCanceled: a job canceled while still queued records the
// time it spent in the queue.
func TestJobTimelineCanceled(t *testing.T) {
	e, _ := newTestEngine(1, 4)
	defer e.Close()
	release := make(chan struct{})
	defer close(release)

	running, err := e.SubmitFunc("g1", PlaceSpec{Algorithm: "gall", K: 1}, "run", JobMeta{}, blockingFn(release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, JobRunning)
	queued, err := e.SubmitFunc("g2", PlaceSpec{Algorithm: "gall", K: 1}, "queued", JobMeta{}, okFn)
	if err != nil {
		t.Fatal(err)
	}
	canceled, ok := e.Cancel(queued.ID)
	if !ok || canceled.State != JobCanceled {
		t.Fatalf("cancel queued: ok=%v state=%s", ok, canceled.State)
	}
	if _, ok := timelineStages(canceled)["queued"]; !ok {
		t.Errorf("canceled job timeline missing queued stage: %+v", canceled.Timeline)
	}
}
