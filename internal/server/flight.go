package server

import (
	"context"
	"sync"

	"repro/internal/flow"
	"repro/internal/obs"
)

// Cross-kind in-flight dedup. The job engine's active-key map dedups
// identical SUBMISSIONS, but it cannot see across job kinds: a gang job's
// key is the joined per-graph miss keys ("batch|k1&k2…"), so a solo job
// for k1 submitted while the gang is mid-flight used to start a second,
// identical placement. The flight table closes that gap at EXECUTION
// time: every placement — solo job or gang sub-placement — registers its
// per-graph cache key when it starts computing, and any other worker
// reaching the same key waits for the leader's result instead of
// recomputing.

// flight is one in-flight placement computation; done closes when res/err
// are final.
type flight struct {
	done chan struct{}
	res  *PlaceResult
	err  error
}

// flightTable maps per-graph cache keys to in-flight computations.
type flightTable struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightTable() *flightTable {
	return &flightTable{m: make(map[string]*flight)}
}

// join returns the in-flight computation for key, creating it when absent;
// leader reports whether the caller created it (and therefore must compute
// and finish it).
func (t *flightTable) join(key string) (f *flight, leader bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	t.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and retires the key. The table is
// cleared before done closes, so a follower that sees a failed flight and
// retries will either hit the cache or become the new leader.
func (t *flightTable) finish(key string, f *flight, res *PlaceResult, err error) {
	t.mu.Lock()
	if t.m[key] == f {
		delete(t.m, key)
	}
	t.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// runShared executes one placement with cache consultation and cross-kind
// in-flight dedup: a cache hit returns immediately; otherwise the caller
// either becomes the leader for the key (computes, fills the cache, wakes
// the followers) or waits for the current leader. A follower whose leader
// fails or is canceled retries — its own context may still be live, and
// correctness must not depend on another request's lifecycle.
//
// tc is the tenant the computation is charged to. Only the leader's
// tenant pays for the oracle work — the work runs once, so charging the
// followers too would double-bill shared computations.
func (s *Server) runShared(ctx context.Context, key string, spec PlaceSpec, algo algoSpec, m *flow.Model, graphID string, tc *obs.TenantCounters) (*PlaceResult, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res, ok := s.cache.peek(key); ok {
			return res, nil
		}
		f, leader := s.flights.join(key)
		if leader {
			res, err := spec.execute(ctx, algo, m, graphID, s.metrics, tc)
			if err == nil {
				s.cache.put(key, res)
			}
			s.flights.finish(key, f, res, err)
			return res, err
		}
		s.metrics.FlightsJoined.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err == nil {
			return f.res, nil
		}
		// Leader failed or was canceled; loop and recompute (or pick up a
		// newer leader / cache entry).
	}
}
