package server_test

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestMLCELFPlacementEndToEnd drives multilevel placement through the
// HTTP surface: an async "mlcelf" job returns filters plus coarsening
// stats, its timeline records the coarsen stage, the fpd_coarsen_*
// counters move, and the tenant is charged for the contraction.
func TestMLCELFPlacementEndToEnd(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadLayered(t, ts.URL, 23)

	var ji server.JobInfo
	code, _ := doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"X-FP-Tenant": "coarseco"},
		server.PlaceSpec{Algorithm: "mlcelf", K: 3, Coarsen: "lossless"}, &ji)
	if code != http.StatusAccepted {
		t.Fatalf("mlcelf place: status %d, want 202", code)
	}
	done := waitJob(t, ts.URL, ji.ID)
	if done.State != server.JobDone {
		t.Fatalf("job state %s (%s)", done.State, done.Error)
	}
	res := done.Result
	if res == nil {
		t.Fatal("mlcelf job carries no result")
	}
	if len(res.Filters) != 3 {
		t.Errorf("filters = %v, want 3 placements", res.Filters)
	}
	if res.Coarsen == nil {
		t.Fatal("mlcelf result carries no coarsen stats")
	}
	if !res.Coarsen.LosslessOnly {
		t.Errorf("lossless run reported %+v", res.Coarsen)
	}
	if res.Coarsen.NodesAfter > res.Coarsen.NodesBefore {
		t.Errorf("coarsen stats grew the graph: %+v", res.Coarsen)
	}
	stages := stageNames(done)
	for _, want := range []string{"queued", "run", "build-evaluator", "coarsen"} {
		if !stages[want] {
			t.Errorf("timeline missing %q: %+v", want, done.Timeline)
		}
	}

	// A lossless mlcelf placement equals celf's on the same graph.
	var celfJob server.JobInfo
	code, _ = doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place", nil,
		server.PlaceSpec{Algorithm: "celf", K: 3}, &celfJob)
	if code != http.StatusAccepted {
		t.Fatalf("celf place: status %d", code)
	}
	celfDone := waitJob(t, ts.URL, celfJob.ID)
	if celfDone.Result == nil {
		t.Fatalf("celf job state %s", celfDone.State)
	}
	if want := celfDone.Result.Filters; len(want) != len(res.Filters) {
		t.Errorf("mlcelf filters %v, celf filters %v", res.Filters, want)
	} else {
		for i := range want {
			if res.Filters[i] != want[i] {
				t.Errorf("mlcelf filters %v, celf filters %v", res.Filters, want)
				break
			}
		}
	}

	// The daemon-level coarsen counters moved.
	var snap server.MetricsSnapshot
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.CoarsenPlacements < 1 || snap.CoarsenLossless < 1 {
		t.Errorf("coarsen counters = (%d placements, %d lossless), want both ≥ 1",
			snap.CoarsenPlacements, snap.CoarsenLossless)
	}

	// Tenant accounting charges the contraction (charged as the worker
	// finishes, marginally after the job turns terminal; poll briefly).
	var usage struct {
		CoarsenPlacements      int64 `json:"coarsen_placements"`
		CoarsenNodesContracted int64 `json:"coarsen_nodes_contracted"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, "GET", ts.URL+"/v1/tenants/coarseco/usage", nil, &usage); code != http.StatusOK {
			t.Fatalf("tenant usage: status %d", code)
		}
		if usage.CoarsenPlacements >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if usage.CoarsenPlacements < 1 {
		t.Errorf("tenant usage = %+v, want coarsen placements ≥ 1", usage)
	}

	// The per-tenant coarsen family appears in the scrape alongside the
	// daemon-level counters.
	body := fetchText(t, ts.URL+"/metrics?format=prometheus")
	if !strings.Contains(body, `fpd_tenant_coarsen_placements_total{tenant="coarseco"}`) {
		t.Error("exposition missing fpd_tenant_coarsen_placements_total for the tenant")
	}
	if !strings.Contains(body, "fpd_coarsen_placements_total ") {
		t.Error("exposition missing fpd_coarsen_placements_total")
	}

	// An identical resubmit is answered inline from the placement cache,
	// coarsen stats intact.
	var cached server.PlaceResult
	code, _ = doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		map[string]string{"X-FP-Tenant": "coarseco"},
		server.PlaceSpec{Algorithm: "mlcelf", K: 3, Coarsen: "lossless"}, &cached)
	if code != http.StatusOK || !cached.Cached {
		t.Errorf("identical mlcelf resubmit not served from cache: status %d, %+v", code, cached)
	}
	if cached.Coarsen == nil {
		t.Error("cached mlcelf result lost its coarsen stats")
	}

	// A different coarsen mode is a different cache slot.
	var other server.JobInfo
	code, _ = doJSONHeaders(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place", nil,
		server.PlaceSpec{Algorithm: "mlcelf", K: 3}, &other)
	if code != http.StatusAccepted {
		t.Errorf("different coarsen mode reused the cache slot: status %d", code)
	} else {
		waitJob(t, ts.URL, other.ID)
	}
}

// TestMLCELFPlacementValidation pins the coarsen knobs' server-side
// contract: bad modes and ratios are rejected, and the fields are
// irrelevant (zeroed, same cache slot) for other algorithms.
func TestMLCELFPlacementValidation(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	info := uploadDiamond(t, ts.URL)

	for _, bad := range []server.PlaceSpec{
		{Algorithm: "mlcelf", K: 1, Coarsen: "sideways"},
		{Algorithm: "mlcelf", K: 1, CoarsenRatio: 1.5},
		{Algorithm: "mlcelf", K: 1, CoarsenRatio: -0.1},
	} {
		if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place", bad, nil); code != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", bad, code)
		}
	}

	// Coarsen fields on a non-multilevel algorithm are ignored, not an
	// error — validate zeroes them, so the decorated request lands in the
	// same cache slot as the plain one.
	var ji server.JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "celf", K: 1}, &ji); code != http.StatusAccepted {
		t.Fatalf("celf: status %d", code)
	}
	waitJob(t, ts.URL, ji.ID)
	var second server.PlaceResult
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs/"+info.ID+"/place",
		server.PlaceSpec{Algorithm: "celf", K: 1, Coarsen: "lossless", CoarsenRatio: 0.5}, &second); code != http.StatusOK {
		t.Fatalf("decorated celf: status %d", code)
	}
	if !second.Cached {
		t.Error("coarsen-decorated celf missed the plain request's cache slot")
	}
}
