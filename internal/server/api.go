package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/sched"
)

// errorBody is the JSON shape of every non-2xx response. RequestID
// echoes the X-Request-ID header so a client can quote one token when
// reporting a failure; RetryAfterSeconds mirrors the Retry-After header
// on 503 admission rejections.
type errorBody struct {
	Error             string `json:"error"`
	RequestID         string `json:"request_id,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("fpd: encode response: %v", err)
	}
}

// requestIDOf recovers the request id for error bodies: from the stamped
// context normally, from the already-set response header on the one path
// (stampRequest's own rejection) that errors before stamping completes.
func requestIDOf(w http.ResponseWriter, r *http.Request) string {
	if id := reqFrom(r.Context()).id; id != "" {
		return id
	}
	return w.Header().Get("X-Request-ID")
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	s.metrics.RequestErrors.Add(1)
	s.writeJSON(w, status, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: requestIDOf(w, r),
	})
}

// writeQueueFull is the 503 admission-rejection path: the Retry-After
// header (and its JSON mirror) is priced from the job engine's observed
// drain rate, so a saturated daemon tells clients when capacity is
// actually expected rather than having them hammer a fixed backoff.
func (s *Server) writeQueueFull(w http.ResponseWriter, r *http.Request, err error) {
	retry := s.jobs.RetryAfterEstimate()
	secs := int((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.metrics.RequestErrors.Add(1)
	s.writeJSON(w, http.StatusServiceUnavailable, errorBody{
		Error:             fmt.Sprintf("%v; retry later", err),
		RequestID:         requestIDOf(w, r),
		RetryAfterSeconds: secs,
	})
}

// decodeBody strictly decodes a JSON request body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// handleCreateGraph is POST /v1/graphs: upload an edge list or instantiate
// a generator, validate it as a propagation model, and register it.
func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if !s.decodeBody(w, r, &spec) {
		return
	}
	g, sources, err := spec.Build()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "graph spec: %v", err)
		return
	}
	m, err := flow.NewModel(g, sources)
	if err != nil {
		// Cyclic uploads and bad sources are client errors: the model
		// semantics require a DAG (use the library's Acyclic extraction
		// offline for cyclic datasets).
		s.writeError(w, r, http.StatusUnprocessableEntity, "invalid model: %v", err)
		return
	}
	info := s.registry.Add(spec.Name, m)
	w.Header().Set("Location", "/v1/graphs/"+info.ID)
	s.writeJSON(w, http.StatusCreated, info)
}

// handleListGraphs is GET /v1/graphs.
func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"graphs": s.registry.List()})
}

// handleGetGraph is GET /v1/graphs/{id}.
func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, info, ok := s.registry.Get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown graph %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// handleDeleteGraph is DELETE /v1/graphs/{id}.
func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.Delete(id) {
		s.writeError(w, r, http.StatusNotFound, "unknown graph %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// resolveModel returns the model to evaluate: the registered one, or a
// fresh model over the same immutable graph when the request overrides the
// sources.
func resolveModel(m *flow.Model, sources []int) (*flow.Model, []int, error) {
	if len(sources) == 0 {
		return m, m.Sources(), nil
	}
	override, err := flow.NewModel(m.Graph(), sources)
	if err != nil {
		return nil, nil, err
	}
	return override, override.Sources(), nil
}

// handlePlace is POST /v1/graphs/{id}/place. Cheap heuristics run inline
// and return 200; expensive greedy algorithms consult the result cache
// (hit ⇒ 200 with the cached result) and otherwise enqueue a job and
// return 202 with its location.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, info, ok := s.registry.Get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown graph %q", id)
		return
	}
	var spec PlaceSpec
	if !s.decodeBody(w, r, &spec) {
		return
	}
	algo, err := spec.validate(m, s.maxParallelism)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "place spec: %v", err)
		return
	}
	m, sources, err := resolveModel(m, spec.Sources)
	if err != nil {
		s.writeError(w, r, http.StatusUnprocessableEntity, "sources override: %v", err)
		return
	}

	tc := s.tenantCounters(r)
	if !algo.async {
		res, err := spec.execute(r.Context(), algo, m, id, s.metrics, tc)
		if err != nil {
			s.writeError(w, r, http.StatusInternalServerError, "placement: %v", err)
			return
		}
		s.metrics.SyncPlacements.Add(1)
		s.writeJSON(w, http.StatusOK, res)
		return
	}

	key := spec.cacheKey(id, info.Patches, sources)
	if res, ok := s.cache.get(key); ok {
		tc.AddCacheHit()
		s.writeJSON(w, http.StatusOK, res)
		return
	}
	tc.AddCacheMiss()
	// The job's work runs through runShared, so a solo job racing a gang
	// sub-placement (or another solo) on the same per-graph key joins the
	// in-flight computation instead of duplicating it; runShared also
	// fills the cache slot.
	job, err := s.jobs.SubmitFunc(id, spec, key, jobMetaOf(r), func(ctx context.Context) (*PlaceResult, error) {
		return s.runShared(ctx, key, spec, algo, m, id, tc)
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeQueueFull(w, r, err)
		return
	case err != nil:
		s.writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	s.writeJSON(w, http.StatusAccepted, job)
}

// handleEvaluate is GET /v1/graphs/{id}/evaluate?filters=3,17,42: report
// Φ(∅,V), Φ(A,V), F(A) and the Filter Ratio for an explicit filter mask.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, _, ok := s.registry.Get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown graph %q", id)
		return
	}
	filters, err := parseNodeList(r.URL.Query().Get("filters"), m.N())
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "filters: %v", err)
		return
	}
	if srcParam := r.URL.Query().Get("sources"); srcParam != "" {
		sources, err := parseNodeList(srcParam, m.N())
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "sources: %v", err)
			return
		}
		if m, _, err = resolveModel(m, sources); err != nil {
			s.writeError(w, r, http.StatusUnprocessableEntity, "sources override: %v", err)
			return
		}
	}
	ev := flow.NewFloat(m)
	mask := flow.MaskOf(m.N(), filters)
	s.metrics.Evaluations.Add(1)
	s.writeJSON(w, http.StatusOK, &PlaceResult{
		GraphID:   id,
		Algorithm: "evaluate",
		K:         len(filters),
		Filters:   filters,
		PhiEmpty:  ev.Phi(nil),
		PhiA:      ev.Phi(mask),
		F:         ev.F(mask),
		FR:        flow.FR(ev, mask),
	})
}

// parseNodeList parses "3,17,42" into node ids, checking range and
// rejecting duplicates. An empty string is the empty set.
func parseNodeList(s string, n int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{}, nil
	}
	parts := strings.Split(s, ",")
	nodes := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", p)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("node %d outside [0, %d)", v, n)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate node %d", v)
		}
		seen[v] = true
		nodes = append(nodes, v)
	}
	return nodes, nil
}

// handleListJobs is GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

// handleGetJob is GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.jobs.Get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// handleCancelJob is DELETE /v1/jobs/{id}: request cancellation and return
// the job's current state.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.jobs.Cancel(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// handleHealthz is GET /healthz: liveness. It answers 200 whenever the
// process can serve HTTP at all; readiness (can it take work?) is
// /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"graphs": s.registry.Len(),
	})
}

// handleReadyz is GET /readyz: readiness. Each subsystem reports a named
// check; any failing check turns the response 503 so a load balancer
// stops routing work here (a closed job engine, in particular, rejects
// every async placement).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := true
	checks := map[string]string{
		"registry": fmt.Sprintf("ok (%d graphs)", s.registry.Len()),
		"sched":    fmt.Sprintf("ok (%d workers)", sched.Default().Workers()),
		"history":  fmt.Sprintf("ok (%d samples)", s.history.Len()),
	}
	if s.jobs.Closed() {
		checks["job_engine"] = "closed"
		ready = false
	} else {
		checks["job_engine"] = "ok"
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, map[string]any{"ready": ready, "checks": checks})
}

// handleMetrics is GET /metrics. The counter snapshot is augmented with
// sampled gauges: the job-queue depth (auto-maintain backlog), the
// placement-cache population, the deferred-gang wait queue, and the
// shared scheduler's queue depth and worker count. The default response
// is JSON; Prometheus text format (0.0.4) — including the latency
// histograms — is served for ?format=prometheus or an Accept header
// preferring text/plain (what a Prometheus scraper sends).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.sampleSnapshot()

	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.writePrometheus(w, snap); err != nil {
			s.logf("fpd: write prometheus exposition: %v", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// sampleSnapshot couples the counter snapshot with the point-in-time
// gauges sampled from the live subsystems. Shared by /metrics and the
// stats-history sampler so both report identical readings.
func (s *Server) sampleSnapshot() MetricsSnapshot {
	snap := s.metrics.Snapshot()
	snap.JobQueueDepth = int64(s.jobs.QueueDepth())
	snap.CacheEntries = int64(s.cache.len())
	snap.SchedQueueDepth = int64(sched.Default().QueueDepth())
	snap.SchedWorkers = int64(sched.Default().Workers())
	waiting, oldest := s.jobs.DeferredStats()
	snap.JobsDeferredWaiting = int64(waiting)
	snap.OldestDeferredAgeSeconds = oldest.Seconds()
	snap.EventsSubscribers = int64(s.events.subscribers())
	snap.HistorySamples = int64(s.history.Len())
	snap.TenantsTracked = int64(s.acct.Len())
	return snap
}

// wantsPrometheus decides the /metrics response format: an explicit
// ?format= wins; otherwise an Accept header naming text/plain (and not
// json) selects the exposition format.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}
