// Package benchmeta stamps benchmark artifacts with the host facts that
// qualify their numbers. Every BENCH_*.json in the repo carries a "host"
// object in this shape, so the recurring "measured on a 1-CPU container"
// caveat is machine-checkable (TestBenchArtifactsCarryHostMetadata)
// instead of a prose footnote a reader may miss.
package benchmeta

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
)

// Host describes the machine and toolchain a benchmark artifact was
// recorded on. CPUs and GOMAXPROCS are what make parallel-speedup claims
// interpretable: on a 1-CPU host, level-parallel ratios measure overhead,
// not speedup.
type Host struct {
	// CPU is the processor model string (best-effort; empty when the
	// platform does not expose one).
	CPU string `json:"cpu,omitempty"`
	// CPUs is runtime.NumCPU() — the schedulable processor count.
	CPUs int `json:"cpus"`
	// GOMAXPROCS is the worker ceiling the process actually ran with.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GOAMD64 is the amd64 ISA level the binary was compiled for ("v1"
	// when unset or on other architectures' artifacts recorded on amd64
	// defaults).
	GOAMD64 string `json:"goamd64,omitempty"`
	// Go is the toolchain version (runtime.Version()).
	Go string `json:"go"`
	// OS and Arch are GOOS/GOARCH.
	OS   string `json:"os"`
	Arch string `json:"arch"`
}

// Current captures the running process's host metadata.
func Current() Host {
	h := Host{
		CPU:        cpuModel(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOAMD64:    goamd64(),
		Go:         runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	return h
}

// SingleCPU reports whether the artifact was recorded where parallel
// speedups cannot show wall-clock gains.
func (h Host) SingleCPU() bool { return h.CPUs == 1 || h.GOMAXPROCS == 1 }

// String renders the host one-line for bench logs.
func (h Host) String() string {
	cpu := h.CPU
	if cpu == "" {
		cpu = "unknown cpu"
	}
	return fmt.Sprintf("%s (%d cpus, GOMAXPROCS=%d, %s %s/%s GOAMD64=%s)",
		cpu, h.CPUs, h.GOMAXPROCS, h.Go, h.OS, h.Arch, h.GOAMD64)
}

// goamd64 reads the compiled-in GOAMD64 level from build info, defaulting
// to "v1" (the toolchain default) when the setting is absent — which is
// exactly what an unset environment compiles to on amd64.
func goamd64() string {
	if runtime.GOARCH != "amd64" {
		return ""
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				return s.Value
			}
		}
	}
	return "v1"
}

// cpuModel extracts the processor model string, best-effort per platform.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}
