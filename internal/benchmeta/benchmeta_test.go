package benchmeta

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestCurrent(t *testing.T) {
	h := Current()
	if h.CPUs < 1 || h.GOMAXPROCS < 1 {
		t.Fatalf("Current() = %+v, want cpus and gomaxprocs ≥ 1", h)
	}
	if h.Go != runtime.Version() || h.OS != runtime.GOOS || h.Arch != runtime.GOARCH {
		t.Errorf("toolchain fields = %q/%q/%q", h.Go, h.OS, h.Arch)
	}
	if runtime.GOARCH == "amd64" && !strings.HasPrefix(h.GOAMD64, "v") {
		t.Errorf("GOAMD64 = %q, want v1..v4 on amd64", h.GOAMD64)
	}
	if s := h.String(); !strings.Contains(s, "GOMAXPROCS=") {
		t.Errorf("String() = %q", s)
	}
}

// TestBenchArtifactsCarryHostMetadata makes the repo's "recorded on a
// 1-CPU container" caveat machine-checkable: every BENCH_*.json must
// carry a host object with the fields that qualify its numbers.
func TestBenchArtifactsCarryHostMetadata(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json artifacts found at the repo root")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Host *Host `json:"host"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if doc.Host == nil {
			t.Errorf("%s: no host object — the measurement context is unverifiable", filepath.Base(path))
			continue
		}
		h := *doc.Host
		if h.CPUs < 1 || h.GOMAXPROCS < 1 || h.Go == "" || h.OS == "" || h.Arch == "" {
			t.Errorf("%s: incomplete host metadata %+v", filepath.Base(path), h)
		}
		if h.Arch == "amd64" && h.GOAMD64 == "" {
			t.Errorf("%s: amd64 artifact without a GOAMD64 level", filepath.Base(path))
		}
	}
}
