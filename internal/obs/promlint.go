package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-format (0.0.4) exposition:
// comment grammar, metric and label name syntax, parseable sample
// values, TYPE consistency, and — for histograms — cumulative bucket
// monotonicity, a closing le="+Inf" bucket, and _sum/_count presence
// with _count equal to the +Inf bucket. It is the checker behind the CI
// /metrics lint step and deliberately errs on the strict side: a clean
// pass here is a superset of what real scrapers require.
func LintPrometheus(r io.Reader) error {
	l := &promLinter{
		types:   make(map[string]string),
		hists:   make(map[string]*histSeries),
		sampled: make(map[string]bool),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if err := l.feed(sc.Text()); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return l.finish()
}

var (
	lintNameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lintLabelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// histSeries accumulates one histogram's per-labelset bucket state.
type histSeries struct {
	// keyed by the labelset excluding le.
	buckets map[string][]bucketSample
	sums    map[string]bool
	counts  map[string]float64
}

type bucketSample struct {
	le    float64
	inf   bool
	value float64
}

type promLinter struct {
	types   map[string]string
	hists   map[string]*histSeries
	sampled map[string]bool
}

func (l *promLinter) feed(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return l.feedComment(line)
	}
	return l.feedSample(line)
}

func (l *promLinter) feedComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !lintNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !lintNameRE.MatchString(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := l.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for metric %s", name)
		}
		if l.sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		l.types[name] = typ
		if typ == "histogram" {
			l.hists[name] = &histSeries{
				buckets: make(map[string][]bucketSample),
				sums:    make(map[string]bool),
				counts:  make(map[string]float64),
			}
		}
	}
	return nil
}

func (l *promLinter) feedSample(line string) error {
	name, labels, value, err := splitSample(line)
	if err != nil {
		return err
	}
	if !lintNameRE.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	lset, err := parseLabels(labels)
	if err != nil {
		return fmt.Errorf("metric %s: %w", name, err)
	}
	v, err := parseValue(value)
	if err != nil {
		return fmt.Errorf("metric %s: bad value %q", name, value)
	}

	// Histogram series route to their base metric's accumulator.
	base, kind := name, ""
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed != name && l.hists[trimmed] != nil {
			base, kind = trimmed, suffix
			break
		}
	}
	l.sampled[base] = true
	if kind == "" {
		if l.types[name] == "histogram" {
			return fmt.Errorf("histogram %s has a bare sample (want _bucket/_sum/_count)", name)
		}
		return nil
	}

	h := l.hists[base]
	key := labelsetKey(lset, "le")
	switch kind {
	case "_bucket":
		le, ok := lset["le"]
		if !ok {
			return fmt.Errorf("histogram %s bucket without le label", base)
		}
		bs := bucketSample{value: v}
		if le == "+Inf" {
			bs.inf = true
		} else if bs.le, err = strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("histogram %s: bad le %q", base, le)
		}
		h.buckets[key] = append(h.buckets[key], bs)
	case "_sum":
		h.sums[key] = true
	case "_count":
		h.counts[key] = v
	}
	return nil
}

// finish runs the whole-exposition checks that need every sample seen.
func (l *promLinter) finish() error {
	for name, h := range l.hists {
		if !l.sampled[name] {
			continue // declared but never sampled: legal
		}
		for key, buckets := range h.buckets {
			var prev float64 = -1
			lastLE := -1.0
			sawInf := false
			for _, b := range buckets {
				if b.inf {
					sawInf = true
				} else {
					if b.le <= lastLE {
						return fmt.Errorf("histogram %s{%s}: le bounds not ascending", name, key)
					}
					lastLE = b.le
				}
				if b.value < prev {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative", name, key)
				}
				prev = b.value
			}
			if !sawInf {
				return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", name, key)
			}
			if !h.sums[key] {
				return fmt.Errorf("histogram %s{%s}: missing _sum", name, key)
			}
			count, ok := h.counts[key]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing _count", name, key)
			}
			if inf := buckets[len(buckets)-1]; inf.inf && inf.value != count {
				return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", name, key, count, inf.value)
			}
		}
	}
	return nil
}

// splitSample cuts "name{labels} value [timestamp]" into parts.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unclosed label braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("malformed sample %q", line)
	}
	// fields[1], when present, is a timestamp; ParseInt check is enough.
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", "", fmt.Errorf("bad timestamp in %q", line)
		}
	}
	return name, labels, fields[0], nil
}

// parseLabels parses `k1="v1",k2="v2"` into a map, validating names and
// escape sequences.
func parseLabels(s string) (map[string]string, error) {
	lset := make(map[string]string)
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !lintLabelRE.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		rest := strings.TrimSpace(s[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", name)
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		var val strings.Builder
		for {
			if i >= len(rest) {
				return nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				i++
				switch rest[i] {
				case '\\', '"':
					val.WriteByte(rest[i])
				case 'n':
					val.WriteByte('\n')
				default:
					// Go's %q can emit other escapes; accept them verbatim.
					val.WriteByte('\\')
					val.WriteByte(rest[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := lset[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		lset[name] = val.String()
		rest = strings.TrimSpace(rest[i+1:])
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return nil, fmt.Errorf("expected ',' between labels near %q", rest)
		}
		s = strings.TrimSpace(rest[1:])
	}
	return lset, nil
}

// labelsetKey renders a labelset (minus the excluded label) as a stable
// string key.
func labelsetKey(lset map[string]string, exclude string) string {
	parts := make([]string, 0, len(lset))
	for k, v := range lset {
		if k == exclude {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	if len(parts) > 1 {
		for i := 1; i < len(parts); i++ {
			for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
				parts[j], parts[j-1] = parts[j-1], parts[j]
			}
		}
	}
	return strings.Join(parts, ",")
}

// parseValue accepts Prometheus sample values: Go float syntax plus
// +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
