package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSeriesRingFillAndRollover(t *testing.T) {
	r := NewSeriesRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d, want 3, 0", r.Cap(), r.Len())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring reported ok")
	}
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		r.Add(base.Add(time.Duration(i)*time.Second), map[string]float64{"v": float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len after 5 adds into cap-3 ring = %d, want 3", r.Len())
	}
	last, ok := r.Last()
	if !ok || last.Values["v"] != 4 {
		t.Fatalf("Last = %+v, %v; want v=4", last, ok)
	}
	// Oldest two (v=0, v=1) must have been overwritten; order oldest-first.
	got := r.Window(0, base.Add(time.Hour))
	if len(got) != 3 {
		t.Fatalf("Window(0) returned %d samples, want 3", len(got))
	}
	for i, want := range []float64{2, 3, 4} {
		if got[i].Values["v"] != want {
			t.Errorf("Window[%d].v = %v, want %v", i, got[i].Values["v"], want)
		}
	}
}

func TestSeriesRingWindowCutoff(t *testing.T) {
	r := NewSeriesRing(10)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		r.Add(base.Add(time.Duration(i)*time.Minute), map[string]float64{"v": float64(i)})
	}
	now := base.Add(5 * time.Minute)
	// 2m window from t=5m keeps samples at t=3m, 4m, 5m.
	got := r.Window(2*time.Minute, now)
	if len(got) != 3 || got[0].Values["v"] != 3 || got[2].Values["v"] != 5 {
		t.Fatalf("Window(2m) = %+v, want v=3,4,5", got)
	}
	// A window wider than retention returns everything.
	if got := r.Window(time.Hour, now); len(got) != 6 {
		t.Fatalf("Window(1h) returned %d samples, want 6", len(got))
	}
}

func TestSeriesRingCopiesValues(t *testing.T) {
	r := NewSeriesRing(2)
	vals := map[string]float64{"v": 1}
	r.Add(time.Unix(0, 0), vals)
	vals["v"] = 99 // caller reuses its map; the ring must not see it
	last, _ := r.Last()
	if last.Values["v"] != 1 {
		t.Errorf("ring saw caller's mutation: v = %v, want 1", last.Values["v"])
	}
	last.Values["v"] = 77 // and mutating a read must not corrupt the ring
	again, _ := r.Last()
	if again.Values["v"] != 1 {
		t.Errorf("reader mutation reached the ring: v = %v, want 1", again.Values["v"])
	}
}

func TestSeriesRingMinCapacity(t *testing.T) {
	r := NewSeriesRing(0)
	if r.Cap() != 1 {
		t.Fatalf("Cap() = %d, want 1 (floor)", r.Cap())
	}
	r.Add(time.Unix(1, 0), map[string]float64{"v": 1})
	r.Add(time.Unix(2, 0), map[string]float64{"v": 2})
	if last, _ := r.Last(); last.Values["v"] != 2 {
		t.Errorf("cap-1 ring kept %v, want the newest sample", last.Values["v"])
	}
}

// TestSeriesRingConcurrent interleaves a writer with windowed readers;
// meaningful under -race.
func TestSeriesRingConcurrent(t *testing.T) {
	r := NewSeriesRing(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Add(time.Unix(int64(i), 0), map[string]float64{"v": float64(i)})
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Window(0, time.Unix(1<<40, 0))
				r.Last()
				r.Len()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
