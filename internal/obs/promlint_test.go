package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRegistryExpositionPassesLint is the round-trip check: everything
// the registry can emit must satisfy the linter.
func TestRegistryExpositionPassesLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("fpd_test_total", "a counter", func() float64 { return 42 })
	r.Gauge("fpd_test_depth", "a gauge", func() float64 { return -3.5 })
	h := r.Histogram("fpd_test_seconds", "a histogram", nil)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Second)
	v := r.HistogramVec("fpd_test_stage_seconds", "a labeled histogram", "stage", []float64{0.01, 1})
	v.With("forward").Observe(time.Millisecond)
	v.With(`wei"rd\value`).Observe(time.Minute)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("lint failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fpd_test_total counter",
		"fpd_test_total 42",
		"# TYPE fpd_test_depth gauge",
		"fpd_test_depth -3.5",
		`fpd_test_seconds_bucket{le="+Inf"} 2`,
		"fpd_test_seconds_count 2",
		`fpd_test_stage_seconds_bucket{stage="forward",le="0.01"} 1`,
		`fpd_test_stage_seconds_count{stage="forward"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLintAcceptsCanonicalExposition(t *testing.T) {
	good := `# HELP fpd_requests_total Total requests.
# TYPE fpd_requests_total counter
fpd_requests_total 107
# TYPE fpd_lat_seconds histogram
fpd_lat_seconds_bucket{le="0.1"} 3
fpd_lat_seconds_bucket{le="+Inf"} 5
fpd_lat_seconds_sum 1.5
fpd_lat_seconds_count 5
# TYPE fpd_up gauge
fpd_up 1
`
	if err := LintPrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("lint rejected canonical exposition: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"bad metric name":       "0bad_name 1\n",
		"unparseable value":     "fpd_x one\n",
		"unclosed braces":       "fpd_x{le=\"1\" 3\n",
		"unquoted label":        "fpd_x{le=1} 3\n",
		"bad type":              "# TYPE fpd_x weird\nfpd_x 1\n",
		"duplicate TYPE":        "# TYPE fpd_x counter\n# TYPE fpd_x counter\nfpd_x 1\n",
		"type after samples":    "fpd_x 1\n# TYPE fpd_x counter\n",
		"non-cumulative hist":   "# TYPE fpd_h histogram\nfpd_h_bucket{le=\"1\"} 5\nfpd_h_bucket{le=\"+Inf\"} 3\nfpd_h_sum 1\nfpd_h_count 3\n",
		"missing +Inf bucket":   "# TYPE fpd_h histogram\nfpd_h_bucket{le=\"1\"} 5\nfpd_h_sum 1\nfpd_h_count 5\n",
		"missing _count":        "# TYPE fpd_h histogram\nfpd_h_bucket{le=\"+Inf\"} 5\nfpd_h_sum 1\n",
		"count != Inf bucket":   "# TYPE fpd_h histogram\nfpd_h_bucket{le=\"+Inf\"} 5\nfpd_h_sum 1\nfpd_h_count 4\n",
		"descending le bounds":  "# TYPE fpd_h histogram\nfpd_h_bucket{le=\"2\"} 1\nfpd_h_bucket{le=\"1\"} 2\nfpd_h_bucket{le=\"+Inf\"} 2\nfpd_h_sum 1\nfpd_h_count 2\n",
		"bare histogram sample": "# TYPE fpd_h histogram\nfpd_h 5\n",
	}
	for name, input := range cases {
		if err := LintPrometheus(strings.NewReader(input)); err == nil {
			t.Errorf("%s: lint accepted %q", name, input)
		}
	}
}

func TestLintAcceptsSpecialValues(t *testing.T) {
	input := "fpd_x +Inf\nfpd_y -Inf\nfpd_z NaN\nfpd_ts 3 1700000000\n"
	if err := LintPrometheus(strings.NewReader(input)); err != nil {
		t.Fatalf("special values rejected: %v", err)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("fpd_x", "", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("fpd_x", "", func() float64 { return 0 })
}
