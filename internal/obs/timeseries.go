package obs

import (
	"sync"
	"time"
)

// Sample is one periodic observation of the system: a timestamp plus a
// flat name→value map (counters, gauges and pre-computed histogram
// quantiles). Values are copied on insert and on read, so callers may
// reuse or mutate their maps freely.
type Sample struct {
	Time   time.Time          `json:"t"`
	Values map[string]float64 `json:"values"`
}

// SeriesRing is a fixed-capacity ring buffer of Samples — the in-process
// time-series store behind GET /v1/stats/history. Writers append at a
// fixed cadence (the server's history sampler); readers take windowed
// copies. With one writer every few seconds and capacity in the
// hundreds, a plain RWMutex is far below contention concern.
type SeriesRing struct {
	mu    sync.RWMutex
	buf   []Sample
	next  int // index the next Add writes to
	count int // number of valid samples, ≤ len(buf)
}

// NewSeriesRing returns a ring holding at most capacity samples
// (minimum 1).
func NewSeriesRing(capacity int) *SeriesRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SeriesRing{buf: make([]Sample, capacity)}
}

// Add appends a sample, overwriting the oldest once full. The values map
// is defensively copied so the caller can reuse its map.
func (r *SeriesRing) Add(t time.Time, values map[string]float64) {
	vals := make(map[string]float64, len(values))
	for k, v := range values {
		vals[k] = v
	}
	r.mu.Lock()
	r.buf[r.next] = Sample{Time: t, Values: vals}
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// Len reports how many samples are currently stored.
func (r *SeriesRing) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count
}

// Cap reports the ring capacity.
func (r *SeriesRing) Cap() int { return len(r.buf) }

// Last returns the most recent sample, if any.
func (r *SeriesRing) Last() (Sample, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.count == 0 {
		return Sample{}, false
	}
	i := (r.next - 1 + len(r.buf)) % len(r.buf)
	return r.buf[i].clone(), true
}

// Window returns the retained samples no older than window before now,
// oldest first. window <= 0 returns everything. Samples are deep-copied;
// mutating the result cannot corrupt the ring.
func (r *SeriesRing) Window(window time.Duration, now time.Time) []Sample {
	var cutoff time.Time
	if window > 0 {
		cutoff = now.Add(-window)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Sample, 0, r.count)
	start := (r.next - r.count + len(r.buf)) % len(r.buf)
	for i := 0; i < r.count; i++ {
		s := r.buf[(start+i)%len(r.buf)]
		if window > 0 && s.Time.Before(cutoff) {
			continue
		}
		out = append(out, s.clone())
	}
	return out
}

func (s Sample) clone() Sample {
	vals := make(map[string]float64, len(s.Values))
	for k, v := range s.Values {
		vals[k] = v
	}
	return Sample{Time: s.Time, Values: vals}
}
