package obs

import (
	"context"
	"sync"
	"time"
)

// StageRecord is one entry of a job timeline: a named stage with its
// offset from job submission, accumulated duration, and optional work
// counters. Stages with the same name merge — Count tells how many spans
// the entry aggregates (e.g. one record "greedy-round" with Count 50 for
// a k=50 placement), StartMS keeps the earliest occurrence.
type StageRecord struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Count      int64   `json:"count,omitempty"`
	// Evals accumulates oracle (marginal-gain) evaluations spent in the
	// stage; Workers is the largest parallelism any merged span used.
	Evals   int64 `json:"evals,omitempty"`
	Workers int   `json:"workers,omitempty"`
}

// maxTraceStages bounds distinct stage names per trace so a misbehaving
// caller cannot grow a job record without bound; excess distinct names
// are counted in the "(dropped)" record. Merged spans never hit the cap.
const maxTraceStages = 64

// Trace is a per-job stage recorder. It is safe for concurrent use — a
// gang job's sub-placements record into the shared trace from many
// scheduler workers — and cheap when absent: every method is nil-safe,
// and a nil trace never reads the clock.
type Trace struct {
	mu     sync.Mutex
	t0     time.Time
	byName map[string]int
	stages []StageRecord
	// sink, when set, additionally observes every span's duration into a
	// histogram family keyed by stage name — the fpd_place_stage_seconds
	// exposition path.
	sink *HistogramVec
	// onStage, when set, fires once per distinct stage name, on first
	// occurrence only — the SSE live-event path, which wants "the job
	// entered stage X", not one event per merged span of a 50-round
	// placement.
	onStage func(name string)
	// traceparent carries the W3C trace identity the job runs under, so
	// any holder of the trace can correlate it across processes.
	traceparent string
}

// SetTraceParent attaches a W3C traceparent value to the trace.
func (t *Trace) SetTraceParent(tp string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceparent = tp
	t.mu.Unlock()
}

// TraceParent returns the trace's W3C traceparent value, if set.
func (t *Trace) TraceParent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceparent
}

// SetStageObserver installs fn to be called the first time each distinct
// stage name is recorded. fn runs outside the trace lock and must be
// safe for concurrent use.
func (t *Trace) SetStageObserver(fn func(name string)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onStage = fn
	t.mu.Unlock()
}

// NewTrace starts a trace; stage offsets are relative to this call.
func NewTrace() *Trace {
	return &Trace{t0: time.Now(), byName: make(map[string]int)}
}

// SetSink routes a copy of every recorded span duration into the given
// histogram family (keyed by stage name) in addition to the timeline.
func (t *Trace) SetSink(v *HistogramVec) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = v
	t.mu.Unlock()
}

// Span is an open stage created by Begin. Spans are values: keep them on
// the stack, set counters, and call End exactly once. The zero Span (from
// a nil trace) is a no-op.
type Span struct {
	t       *Trace
	name    string
	start   time.Time
	evals   int64
	workers int
}

// Begin opens a stage span. On a nil trace it returns a no-op span
// without touching the clock.
func (t *Trace) Begin(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// AddEvals accumulates oracle evaluations attributed to the span.
func (s *Span) AddEvals(n int64) {
	if s.t != nil {
		s.evals += n
	}
}

// SetWorkers records the parallelism the span's work used.
func (s *Span) SetWorkers(n int) {
	if s.t != nil {
		s.workers = n
	}
}

// End closes the span, merging it into the trace.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.t.record(s.name, s.start, time.Since(s.start), s.evals, s.workers)
	s.t = nil
}

// Observe records a complete stage directly — for callers that already
// hold a measured duration (e.g. the engine-level queue-wait stages).
func (t *Trace) Observe(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.record(name, start, d, 0, 0)
}

func (t *Trace) record(name string, start time.Time, d time.Duration, evals int64, workers int) {
	t.mu.Lock()
	if i, ok := t.byName[name]; ok {
		r := &t.stages[i]
		r.DurationMS += float64(d) / float64(time.Millisecond)
		r.Count++
		r.Evals += evals
		if workers > r.Workers {
			r.Workers = workers
		}
	} else {
		if len(t.stages) >= maxTraceStages {
			name = "(dropped)"
			if i, ok := t.byName[name]; ok {
				r := &t.stages[i]
				r.DurationMS += float64(d) / float64(time.Millisecond)
				r.Count++
				r.Evals += evals
				t.mu.Unlock()
				t.sinkObserve(name, d)
				return
			}
		}
		// Callers may pass timestamps taken just before the trace existed
		// (a job's created stamp predates its NewTrace by nanoseconds);
		// clamp so offsets never go negative.
		offset := start.Sub(t.t0)
		if offset < 0 {
			offset = 0
		}
		t.byName[name] = len(t.stages)
		t.stages = append(t.stages, StageRecord{
			Name:       name,
			StartMS:    float64(offset) / float64(time.Millisecond),
			DurationMS: float64(d) / float64(time.Millisecond),
			Count:      1,
			Evals:      evals,
			Workers:    workers,
		})
		if fn := t.onStage; fn != nil {
			t.mu.Unlock()
			fn(name)
			t.sinkObserve(name, d)
			return
		}
	}
	t.mu.Unlock()
	t.sinkObserve(name, d)
}

// sinkObserve forwards one span duration to the sink, outside the trace
// lock (the histogram is lock-free anyway).
func (t *Trace) sinkObserve(stage string, d time.Duration) {
	t.mu.Lock()
	v := t.sink
	t.mu.Unlock()
	if v != nil {
		v.With(stage).Observe(d)
	}
}

// Start returns the trace epoch (zero time on a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.t0
}

// Snapshot copies the recorded stages in first-seen order.
func (t *Trace) Snapshot() []StageRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageRecord, len(t.stages))
	copy(out, t.stages)
	return out
}

// traceKey is the context key TraceFrom looks under.
type traceKey struct{}

// NewContext attaches a trace to a context; the job engine uses it to
// hand each job's trace to the placement closure without widening any
// signatures.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
