package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the tenant requests are attributed to when they carry
// no X-FP-Tenant header.
const DefaultTenant = "default"

// OverflowTenant absorbs accounting for tenants beyond an Accountant's
// cardinality cap, so a client inventing tenant names cannot grow the
// label space (and therefore the Prometheus exposition) without bound.
const OverflowTenant = "(overflow)"

// maxTenantNameLen bounds accepted tenant identifiers.
const maxTenantNameLen = 64

// ValidTenant reports whether s is an acceptable tenant identifier:
// 1–64 characters drawn from [A-Za-z0-9._-]. The charset keeps tenant
// names safe as Prometheus label values and log fields without escaping.
func ValidTenant(s string) bool {
	if len(s) == 0 || len(s) > maxTenantNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// TenantCounters is one tenant's accounting sink: a fixed set of atomic
// counters, so attribution from hot paths (scheduler workers, placement
// completion, cache lookups) is a handful of uncontended atomic adds.
// All methods are nil-safe — threading a nil *TenantCounters through a
// call chain disables accounting for that call at zero cost.
type TenantCounters struct {
	name string

	requests      atomic.Int64
	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64

	placements    atomic.Int64
	oracleEvals   atomic.Int64
	sampledEvals  atomic.Int64
	forwardPasses atomic.Int64
	suffixPasses  atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	queueWaitNS atomic.Int64
	runNS       atomic.Int64
	schedWaitNS atomic.Int64
	schedTasks  atomic.Int64

	planSplices    atomic.Int64
	planRebuilds   atomic.Int64
	planRepairWork atomic.Int64

	coarsenPlacements      atomic.Int64
	coarsenNodesContracted atomic.Int64
}

// Name returns the tenant identifier the counters accumulate under
// (empty for a nil receiver).
func (c *TenantCounters) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// AddRequest counts one HTTP request attributed to the tenant.
func (c *TenantCounters) AddRequest() {
	if c != nil {
		c.requests.Add(1)
	}
}

// AddJobSubmitted counts one job accepted into the engine.
func (c *TenantCounters) AddJobSubmitted() {
	if c != nil {
		c.jobsSubmitted.Add(1)
	}
}

// AddJobOutcome counts a terminal job transition by state name
// ("done", "failed" or "canceled").
func (c *TenantCounters) AddJobOutcome(state string) {
	if c == nil {
		return
	}
	switch state {
	case "done":
		c.jobsCompleted.Add(1)
	case "failed":
		c.jobsFailed.Add(1)
	case "canceled":
		c.jobsCanceled.Add(1)
	}
}

// AddPlacement attributes one completed placement's exact oracle
// evaluations, sampled (approximate-engine) evaluations and topological
// pass counts. Called after core.Place returns — never from inside the
// algorithm — so accounting cannot perturb placement results. Sampled
// evaluations are charged like oracle evaluations: they are the
// approximate engine's unit of work.
func (c *TenantCounters) AddPlacement(evals, sampled, forward, suffix int64) {
	if c == nil {
		return
	}
	c.placements.Add(1)
	c.oracleEvals.Add(evals)
	c.sampledEvals.Add(sampled)
	c.forwardPasses.Add(forward)
	c.suffixPasses.Add(suffix)
}

// AddCacheHit / AddCacheMiss count result-cache outcomes for the tenant.
func (c *TenantCounters) AddCacheHit() {
	if c != nil {
		c.cacheHits.Add(1)
	}
}

// AddCacheMiss counts one result-cache miss for the tenant.
func (c *TenantCounters) AddCacheMiss() {
	if c != nil {
		c.cacheMisses.Add(1)
	}
}

// AddQueueWait accumulates time a tenant's job spent queued before a
// worker picked it up.
func (c *TenantCounters) AddQueueWait(d time.Duration) {
	if c != nil && d > 0 {
		c.queueWaitNS.Add(int64(d))
	}
}

// AddRunTime accumulates a tenant's job execution wall time.
func (c *TenantCounters) AddRunTime(d time.Duration) {
	if c != nil && d > 0 {
		c.runNS.Add(int64(d))
	}
}

// AddSchedWait accumulates scheduler queue wait for one task tagged with
// the tenant.
func (c *TenantCounters) AddSchedWait(d time.Duration) {
	if c == nil {
		return
	}
	c.schedTasks.Add(1)
	if d > 0 {
		c.schedWaitNS.Add(int64(d))
	}
}

// AddPlanRepair attributes one execution-plan repair triggered by the
// tenant's PATCH: spliced says whether it stayed on the incremental path,
// work is the splicer's abstract cost (depth visits + moved nodes + CSR
// rows touched, or n+rows for a rebuild).
func (c *TenantCounters) AddPlanRepair(spliced bool, work int64) {
	if c == nil {
		return
	}
	if spliced {
		c.planSplices.Add(1)
	} else {
		c.planRebuilds.Add(1)
	}
	if work > 0 {
		c.planRepairWork.Add(work)
	}
}

// AddCoarsen attributes one multilevel placement's graph contraction:
// nodesContracted is how many nodes the coarsening removed before the
// quotient solve. Charged post-placement, like AddPlacement.
func (c *TenantCounters) AddCoarsen(nodesContracted int64) {
	if c == nil {
		return
	}
	c.coarsenPlacements.Add(1)
	if nodesContracted > 0 {
		c.coarsenNodesContracted.Add(nodesContracted)
	}
}

// Usage snapshots the counters.
func (c *TenantCounters) Usage() TenantUsage {
	if c == nil {
		return TenantUsage{}
	}
	return TenantUsage{
		Tenant:                 c.name,
		Requests:               c.requests.Load(),
		JobsSubmitted:          c.jobsSubmitted.Load(),
		JobsCompleted:          c.jobsCompleted.Load(),
		JobsFailed:             c.jobsFailed.Load(),
		JobsCanceled:           c.jobsCanceled.Load(),
		Placements:             c.placements.Load(),
		OracleEvaluations:      c.oracleEvals.Load(),
		SampledEvaluations:     c.sampledEvals.Load(),
		ForwardPasses:          c.forwardPasses.Load(),
		SuffixPasses:           c.suffixPasses.Load(),
		CacheHits:              c.cacheHits.Load(),
		CacheMisses:            c.cacheMisses.Load(),
		JobQueueWaitSeconds:    time.Duration(c.queueWaitNS.Load()).Seconds(),
		JobRunSeconds:          time.Duration(c.runNS.Load()).Seconds(),
		SchedQueueWaitSeconds:  time.Duration(c.schedWaitNS.Load()).Seconds(),
		SchedTasks:             c.schedTasks.Load(),
		PlanSplices:            c.planSplices.Load(),
		PlanRebuilds:           c.planRebuilds.Load(),
		PlanRepairWork:         c.planRepairWork.Load(),
		CoarsenPlacements:      c.coarsenPlacements.Load(),
		CoarsenNodesContracted: c.coarsenNodesContracted.Load(),
	}
}

// TenantUsage is a point-in-time copy of one tenant's accumulated
// resource accounting, as served by GET /v1/tenants/{id}/usage.
type TenantUsage struct {
	Tenant                string  `json:"tenant"`
	Requests              int64   `json:"requests"`
	JobsSubmitted         int64   `json:"jobs_submitted"`
	JobsCompleted         int64   `json:"jobs_completed"`
	JobsFailed            int64   `json:"jobs_failed"`
	JobsCanceled          int64   `json:"jobs_canceled"`
	Placements            int64   `json:"placements"`
	OracleEvaluations     int64   `json:"oracle_evaluations"`
	SampledEvaluations    int64   `json:"sampled_evaluations"`
	ForwardPasses         int64   `json:"forward_passes"`
	SuffixPasses          int64   `json:"suffix_passes"`
	CacheHits             int64   `json:"cache_hits"`
	CacheMisses           int64   `json:"cache_misses"`
	JobQueueWaitSeconds   float64 `json:"job_queue_wait_seconds"`
	JobRunSeconds         float64 `json:"job_run_seconds"`
	SchedQueueWaitSeconds float64 `json:"sched_queue_wait_seconds"`
	SchedTasks            int64   `json:"sched_tasks"`
	// PlanSplices/PlanRebuilds split the tenant's PATCH-driven plan
	// repairs; PlanRepairWork is their accumulated abstract cost.
	PlanSplices    int64 `json:"plan_splices"`
	PlanRebuilds   int64 `json:"plan_rebuilds"`
	PlanRepairWork int64 `json:"plan_repair_work"`
	// CoarsenPlacements counts the tenant's multilevel (mlcelf)
	// placements; CoarsenNodesContracted the nodes their coarsening
	// removed before the quotient solve.
	CoarsenPlacements      int64 `json:"coarsen_placements"`
	CoarsenNodesContracted int64 `json:"coarsen_nodes_contracted"`
}

// Accountant aggregates per-tenant resource usage. Lookup is a
// read-locked map hit returning the tenant's atomic counter block; all
// subsequent accounting on that block is lock-free. Distinct tenants are
// capped — past the cap, new names account under OverflowTenant — so an
// adversarial client cannot grow memory or metric cardinality.
type Accountant struct {
	mu  sync.RWMutex
	m   map[string]*TenantCounters
	max int
}

// DefaultMaxTenants is the Accountant cardinality cap used when the
// caller passes max <= 0.
const DefaultMaxTenants = 64

// NewAccountant returns an accountant tracking at most max distinct
// tenants (DefaultMaxTenants when max <= 0).
func NewAccountant(max int) *Accountant {
	if max <= 0 {
		max = DefaultMaxTenants
	}
	return &Accountant{m: make(map[string]*TenantCounters), max: max}
}

// Tenant returns the counter block for the named tenant, creating it on
// first use. Invalid or empty names fold into DefaultTenant; names past
// the cardinality cap fold into OverflowTenant. Safe for concurrent use;
// nil-safe (returns nil, and nil counters no-op).
func (a *Accountant) Tenant(name string) *TenantCounters {
	if a == nil {
		return nil
	}
	if name == "" {
		name = DefaultTenant
	} else if !ValidTenant(name) && name != OverflowTenant {
		name = DefaultTenant
	}
	a.mu.RLock()
	c, ok := a.m[name]
	a.mu.RUnlock()
	if ok {
		return c
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if c, ok := a.m[name]; ok {
		return c
	}
	if len(a.m) >= a.max && name != OverflowTenant && name != DefaultTenant {
		if c, ok := a.m[OverflowTenant]; ok {
			return c
		}
		c := &TenantCounters{name: OverflowTenant}
		a.m[OverflowTenant] = c
		return c
	}
	c = &TenantCounters{name: name}
	a.m[name] = c
	return c
}

// Lookup returns the counter block for name only if it already exists.
func (a *Accountant) Lookup(name string) (*TenantCounters, bool) {
	if a == nil {
		return nil, false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	c, ok := a.m[name]
	return c, ok
}

// Len reports how many distinct tenants have been seen.
func (a *Accountant) Len() int {
	if a == nil {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.m)
}

// Snapshot copies every tenant's usage, sorted by tenant name so
// expositions and API responses are deterministic.
func (a *Accountant) Snapshot() []TenantUsage {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	out := make([]TenantUsage, 0, len(a.m))
	for _, c := range a.m {
		out = append(out, c.Usage())
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// String implements fmt.Stringer for debug logging.
func (a *Accountant) String() string {
	return fmt.Sprintf("obs.Accountant(%d tenants)", a.Len())
}
