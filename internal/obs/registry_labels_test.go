package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_requests_total", "Requests per tenant.", "tenant", func() []LabeledValue {
		// Deliberately unsorted: the writer must sort by label value.
		return []LabeledValue{{Label: "zeta", Value: 3}, {Label: "acme", Value: 7}}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# HELP test_requests_total Requests per tenant.\n" +
		"# TYPE test_requests_total counter\n" +
		"test_requests_total{tenant=\"acme\"} 7\n" +
		"test_requests_total{tenant=\"zeta\"} 3\n"
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
	if err := LintPrometheus(strings.NewReader(got)); err != nil {
		t.Errorf("labeled exposition fails lint: %v", err)
	}
}

func TestInfoExposition(t *testing.T) {
	r := NewRegistry()
	r.Info("test_build_info", "Build metadata.", map[string]string{
		"version": "v1.2.3", "go_version": "go1.23",
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	// Labels render sorted by key, value always 1.
	wantLine := `test_build_info{go_version="go1.23",version="v1.2.3"} 1`
	if !strings.Contains(got, wantLine+"\n") {
		t.Errorf("exposition missing %q:\n%s", wantLine, got)
	}
	if err := LintPrometheus(strings.NewReader(got)); err != nil {
		t.Errorf("info exposition fails lint: %v", err)
	}
}

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("test_depth", "Depth per queue.", "queue", func() []LabeledValue {
		return []LabeledValue{{Label: "deferred", Value: 2.5}}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_depth{queue="deferred"} 2.5`) {
		t.Errorf("gauge family sample missing:\n%s", buf.String())
	}
}

func TestRegisterFamilyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CounterVec accepted an invalid label name")
		}
	}()
	NewRegistry().CounterVec("m_total", "m", "bad-label!", func() []LabeledValue { return nil })
}

// TestConcurrentScrapeWithLabeledSeries scrapes a registry whose labeled
// families are backed by a live accountant while other goroutines keep
// accounting — the daemon's steady state. Run under -race this proves
// scrape-time sampling takes consistent snapshots.
func TestConcurrentScrapeWithLabeledSeries(t *testing.T) {
	a := NewAccountant(16)
	r := NewRegistry()
	r.CounterVec("test_tenant_requests_total", "Requests per tenant.", "tenant", func() []LabeledValue {
		snap := a.Snapshot()
		out := make([]LabeledValue, len(snap))
		for i, u := range snap {
			out[i] = LabeledValue{Label: u.Tenant, Value: float64(u.Requests)}
		}
		return out
	})
	r.Info("test_build_info", "Build metadata.", map[string]string{"version": "dev"})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					a.Tenant(fmt.Sprintf("t%d", (g*31+i)%10)).AddRequest()
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d fails lint: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}
