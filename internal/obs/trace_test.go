package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceMergesStagesByName(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 5; i++ {
		sp := tr.Begin("round")
		sp.AddEvals(10)
		sp.SetWorkers(i + 1)
		sp.End()
	}
	sp := tr.Begin("init")
	sp.End()

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(snap), snap)
	}
	round := snap[0]
	if round.Name != "round" || round.Count != 5 || round.Evals != 50 || round.Workers != 5 {
		t.Errorf("round record wrong: %+v", round)
	}
	if snap[1].Name != "init" || snap[1].Count != 1 {
		t.Errorf("init record wrong: %+v", snap[1])
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Begin("x")
	sp.AddEvals(1)
	sp.SetWorkers(2)
	sp.End()
	tr.Observe("y", time.Now(), time.Second)
	tr.SetSink(NewHistogramVec("stage", nil))
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil trace snapshot = %v, want nil", got)
	}
	if !tr.Start().IsZero() {
		t.Error("nil trace Start should be zero")
	}
}

func TestTraceSinkObservesStages(t *testing.T) {
	vec := NewHistogramVec("stage", nil)
	tr := NewTrace()
	tr.SetSink(vec)
	for i := 0; i < 3; i++ {
		sp := tr.Begin("pass")
		sp.End()
	}
	if got := vec.With("pass").Snapshot().Count; got != 3 {
		t.Errorf("sink count = %d, want 3", got)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Begin(fmt.Sprintf("stage-%d", g%4))
				sp.AddEvals(1)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, r := range tr.Snapshot() {
		total += r.Count
	}
	if total != 8*500 {
		t.Errorf("total span count = %d, want %d", total, 8*500)
	}
}

// TestTraceStageCap: distinct names beyond the cap collapse into one
// "(dropped)" record instead of growing without bound.
func TestTraceStageCap(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxTraceStages+10; i++ {
		sp := tr.Begin(fmt.Sprintf("s%d", i))
		sp.End()
	}
	snap := tr.Snapshot()
	if len(snap) > maxTraceStages+1 {
		t.Fatalf("trace grew to %d records, cap is %d+1", len(snap), maxTraceStages)
	}
	last := snap[len(snap)-1]
	if last.Name != "(dropped)" || last.Count != 10 {
		t.Errorf("dropped record = %+v, want name (dropped) count 10", last)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := NewContext(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Error("TraceFrom did not return the attached trace")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Errorf("TraceFrom(empty) = %v, want nil", got)
	}
}
