package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucketing rule: an observation
// equal to an upper bound lands IN that bucket (le is ≤, Prometheus
// semantics), one epsilon above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.ObserveSeconds(0.001)  // == bound 0 → bucket 0
	h.ObserveSeconds(0.0011) // just above → bucket 1
	h.ObserveSeconds(0.01)   // == bound 1 → bucket 1
	h.ObserveSeconds(0.05)   // → bucket 2
	h.ObserveSeconds(0.5)    // beyond all bounds → +Inf bucket
	h.ObserveSeconds(0)      // zero → bucket 0

	s := h.Snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
}

func TestHistogramSumAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.ObserveSeconds(0.5) // all in bucket [0,1]
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got <= 0 || got > 1 {
		t.Errorf("p50 = %v, want within (0, 1]", got)
	}
	if math.Abs(s.Sum-50) > 1e-6 {
		t.Errorf("Sum = %v, want 50", s.Sum)
	}

	// Overflow observations clamp to the largest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.ObserveSeconds(100)
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %v, want clamp to 2", got)
	}

	// Empty histogram quantile is 0.
	if got := NewHistogram(nil).Snapshot().Quantile(0.9); got != 0 {
		t.Errorf("empty p90 = %v, want 0", got)
	}
}

// TestHistogramQuantileInterpolation checks the rank interpolation: with
// 100 samples split 50/50 across two buckets, p25 lands midway through
// the first bucket and p75 midway through the second.
func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 50; i++ {
		h.ObserveSeconds(0.5)
		h.ObserveSeconds(1.5)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p25 = %v, want 0.5", got)
	}
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5", got)
	}
}

// TestHistogramConcurrency hammers one histogram (and one vec child) from
// many goroutines; run under -race this is the lock-free soundness check,
// and the final count must be exact regardless.
func TestHistogramConcurrency(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	h := NewHistogram(nil)
	vec := NewHistogramVec("stage", []float64{0.001, 1})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stage := []string{"a", "b", "c"}[g%3]
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(i%10) * time.Millisecond)
				vec.With(stage).Observe(time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var vecTotal uint64
	for _, ls := range vec.snapshotAll() {
		vecTotal += ls.snap.Count
	}
	if vecTotal != goroutines*perG {
		t.Errorf("vec total = %d, want %d", vecTotal, goroutines*perG)
	}
}

func TestHistogramVecSortedSnapshots(t *testing.T) {
	vec := NewHistogramVec("route", nil)
	for _, v := range []string{"z", "a", "m"} {
		vec.With(v).Observe(time.Millisecond)
	}
	all := vec.snapshotAll()
	if len(all) != 3 || all[0].value != "a" || all[1].value != "m" || all[2].value != "z" {
		t.Errorf("snapshotAll order wrong: %+v", all)
	}
	// Same value returns the same child.
	if vec.With("a") != vec.With("a") {
		t.Error("With is not idempotent")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}
