package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if !tc.Valid() {
		t.Fatal("parsed context reports invalid")
	}
	if tc.Flags != 0x01 {
		t.Errorf("Flags = %#x, want 0x01", tc.Flags)
	}
	if got := tc.String(); got != hdr {
		t.Errorf("String() = %q, want round-trip %q", got, hdr)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version ff forbidden
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // v00 must be exactly 55 bytes
		"00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // wrong separator
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex version
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", s)
		}
	}
	// Future versions with a dash-separated suffix are accepted.
	if _, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestNewTraceContextAndChild(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatal("NewTraceContext returned an invalid context")
	}
	if tc.Flags&0x01 == 0 {
		t.Error("minted context is not sampled")
	}
	s := tc.String()
	if len(s) != 55 || !strings.HasPrefix(s, "00-") {
		t.Errorf("String() = %q, want 55-byte version-00 header", s)
	}
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("Child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Error("Child kept the parent span id")
	}
	if child.Flags != tc.Flags {
		t.Error("Child changed the flags")
	}
	// Two mints should never collide.
	if other := NewTraceContext(); other.TraceID == tc.TraceID {
		t.Error("two NewTraceContext calls shared a trace id")
	}
}

func TestTraceContextZeroString(t *testing.T) {
	if got := (TraceContext{}).String(); got != "" {
		t.Errorf("zero context String() = %q, want \"\"", got)
	}
}

func TestWithTraceContext(t *testing.T) {
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Fatal("empty context reported a trace context")
	}
	tc := NewTraceContext()
	ctx := WithTraceContext(context.Background(), tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceContextFrom = %+v, %v; want the stored context", got, ok)
	}
}
