// Package obs is fpd's observability layer: allocation-light latency
// histograms, a per-job stage/span recorder, a metric registry with
// Prometheus text-format exposition, and a validator for that format.
//
// The package is deliberately zero-dependency (stdlib only) and designed
// so that instrumentation disabled is instrumentation free: a nil *Trace
// records nothing and never reads the clock, a Histogram observe is a
// handful of atomic adds, and the sched queue-wait hook wraps tasks only
// while a sampler is installed. Nothing in this package may be called
// from inside the flow kernels (forwardRange/suffixRange and friends);
// callers record around whole passes, placements and requests, keeping
// the bit-identical hot paths untouched.
//
// The pieces:
//
//   - Histogram / HistogramVec: fixed-bucket latency histograms with
//     lock-free atomic buckets and p50/p90/p99 estimation, matching the
//     Prometheus cumulative-bucket exposition.
//   - Trace / Span: a lightweight per-job stage recorder. Stages with the
//     same name merge (duration accumulates, count increments), so a
//     thousand greedy rounds collapse into one timeline entry instead of
//     a thousand; GET /v1/jobs/{id} serves the snapshot as the job
//     timeline.
//   - Registry: named counters, gauges and histograms with a
//     WritePrometheus exposition method.
//   - LintPrometheus: a strict-enough validator for the text exposition
//     format, used by tests and the CI metrics-lint step.
package obs
