package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
)

// TraceContext is a W3C Trace Context identity (traceparent header,
// version 00): a 16-byte trace id shared by every span of a distributed
// operation, an 8-byte span id for this hop, and the trace flags byte
// (bit 0 = sampled). It is the cross-process half of tracing — the
// in-process half is the stage Trace — and the groundwork for carrying
// request identity across fpd peers in the distributed roadmap item.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// ErrTraceparent is returned by ParseTraceparent for any malformed or
// all-zero header value.
var ErrTraceparent = errors.New("obs: invalid traceparent")

// Valid reports whether both ids are non-zero, as the spec requires.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// String renders the traceparent header value:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>". An invalid
// (zero) context renders as "".
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-%02x",
		hex.EncodeToString(tc.TraceID[:]),
		hex.EncodeToString(tc.SpanID[:]),
		tc.Flags)
}

// ParseTraceparent parses a traceparent header value. Per the W3C spec,
// version "ff" is rejected, unknown versions are accepted as long as the
// version-00 prefix parses, and all-zero trace or span ids are invalid.
func ParseTraceparent(s string) (TraceContext, error) {
	// Shortest valid form: "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, ErrTraceparent
	}
	if len(s) > 55 && s[55] != '-' {
		// A longer value is only valid for future versions, which must
		// extend with a dash-separated suffix.
		return TraceContext{}, ErrTraceparent
	}
	version := s[0:2]
	if version == "ff" || !isHex(version) {
		return TraceContext{}, ErrTraceparent
	}
	if version == "00" && len(s) != 55 {
		return TraceContext{}, ErrTraceparent
	}
	var tc TraceContext
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return TraceContext{}, ErrTraceparent
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return TraceContext{}, ErrTraceparent
	}
	flags, err := hex.DecodeString(s[53:55])
	if err != nil {
		return TraceContext{}, ErrTraceparent
	}
	tc.Flags = flags[0]
	if !tc.Valid() {
		return TraceContext{}, ErrTraceparent
	}
	return tc, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// NewTraceContext mints a fresh sampled trace identity from
// crypto/rand. Randomness failure (never on supported platforms) is
// masked by a fixed fallback id rather than panicking a serving path.
func NewTraceContext() TraceContext {
	var tc TraceContext
	if _, err := crand.Read(tc.TraceID[:]); err != nil || tc.TraceID == [16]byte{} {
		tc.TraceID[15] = 1
	}
	if _, err := crand.Read(tc.SpanID[:]); err != nil || tc.SpanID == [8]byte{} {
		tc.SpanID[7] = 1
	}
	tc.Flags = 0x01
	return tc
}

// Child derives a new span under the same trace: fresh span id, same
// trace id and flags. Used when fpd continues a trace a client started.
func (tc TraceContext) Child() TraceContext {
	out := tc
	if _, err := crand.Read(out.SpanID[:]); err != nil || out.SpanID == [8]byte{} {
		out.SpanID[7] ^= 0xff
	}
	return out
}

// traceCtxKey is the context key WithTraceContext stores under.
type traceCtxKey struct{}

// WithTraceContext attaches a trace identity to a context.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the context's trace identity, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
