package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket layout: upper bounds in
// seconds, spanning 100µs (a cheap heuristic on a small graph) to 30s (a
// greedy placement on the largest graphs the exact path handles). The
// layout matches Prometheus conventions (roughly 1-2.5-5 per decade) so
// dashboards can use standard histogram_quantile queries.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Observe is lock-free: one atomic add into the matching bucket plus two
// for the count/sum, so it can sit on request and job completion paths
// without coordination. Bucket bounds are immutable after construction.
type Histogram struct {
	bounds []float64       // ascending upper bounds (seconds); +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last bucket is the +Inf overflow
	count  atomic.Uint64
	sumNS  atomic.Int64 // sum of observations in nanoseconds
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). nil or empty bounds use DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.observeSeconds(d.Seconds(), int64(d))
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	h.observeSeconds(s, int64(s*float64(time.Second)))
}

func (h *Histogram) observeSeconds(s float64, ns int64) {
	// Linear scan: the bucket list is short (≤ ~20) and latencies cluster
	// in the low buckets, so this beats binary search in practice and
	// keeps the fast path branch-predictable.
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// HistSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); Sum is in seconds. Because buckets are
// read individually while writers proceed, a snapshot taken under
// concurrent load may be off by the handful of observations that landed
// mid-copy — fine for monitoring, which is the only consumer.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	// Derive Count from the buckets rather than h.count so Count always
	// equals the +Inf cumulative bucket, as the Prometheus format requires
	// even for a snapshot racing writers.
	s.Count = total
	s.Sum = time.Duration(h.sumNS.Load()).Seconds()
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation within the bucket containing the target rank, the same
// estimate Prometheus's histogram_quantile computes. Observations in the
// +Inf bucket clamp to the largest finite bound. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		// Position of the target rank inside this bucket.
		within := rank - float64(cum-c)
		return lower + (upper-lower)*(within/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramVec is a histogram family partitioned by one label (route,
// stage, job kind…). Children are created on first use and live forever —
// label values must therefore be low-cardinality (route patterns, not
// URLs; stage names, not node ids).
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// NewHistogramVec builds a histogram family keyed by the given label
// name. nil bounds use DefBuckets.
func NewHistogramVec(label string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistogramVec{label: label, bounds: bounds, m: make(map[string]*Histogram)}
}

// Label returns the family's label name.
func (v *HistogramVec) Label() string { return v.label }

// With returns the child histogram for the given label value, creating it
// on first use. The read-locked fast path makes repeated lookups cheap
// enough for per-request use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.m[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.m[value]; ok {
		return h
	}
	h = NewHistogram(v.bounds)
	v.m[value] = h
	return h
}

// snapshotAll returns every (label value, snapshot) pair sorted by label
// value, for deterministic exposition.
func (v *HistogramVec) snapshotAll() []labeledSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]labeledSnapshot, 0, len(v.m))
	for value, h := range v.m {
		out = append(out, labeledSnapshot{value: value, snap: h.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

type labeledSnapshot struct {
	value string
	snap  HistSnapshot
}
