package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestValidTenant(t *testing.T) {
	valid := []string{"a", "default", "team-42", "A.B_c-d", strings.Repeat("x", 64)}
	for _, s := range valid {
		if !ValidTenant(s) {
			t.Errorf("ValidTenant(%q) = false, want true", s)
		}
	}
	invalid := []string{"", " ", "a b", "tenant/1", "é", "a\n", strings.Repeat("x", 65), `x"y`}
	for _, s := range invalid {
		if ValidTenant(s) {
			t.Errorf("ValidTenant(%q) = true, want false", s)
		}
	}
}

func TestTenantCountersNilSafe(t *testing.T) {
	var c *TenantCounters
	// None of these may panic; they must all no-op.
	c.AddRequest()
	c.AddJobSubmitted()
	c.AddJobOutcome("done")
	c.AddPlacement(1, 2, 3, 4)
	c.AddCacheHit()
	c.AddCacheMiss()
	c.AddQueueWait(time.Second)
	c.AddRunTime(time.Second)
	c.AddSchedWait(time.Second)
	if got := c.Name(); got != "" {
		t.Errorf("nil.Name() = %q, want \"\"", got)
	}
	if got := c.Usage(); got != (TenantUsage{}) {
		t.Errorf("nil.Usage() = %+v, want zero", got)
	}
}

func TestTenantCountersUsage(t *testing.T) {
	a := NewAccountant(0)
	c := a.Tenant("acme")
	c.AddRequest()
	c.AddRequest()
	c.AddJobSubmitted()
	c.AddJobOutcome("done")
	c.AddJobOutcome("failed")
	c.AddJobOutcome("canceled")
	c.AddJobOutcome("bogus") // ignored
	c.AddPlacement(100, 40, 7, 3)
	c.AddCacheHit()
	c.AddCacheMiss()
	c.AddQueueWait(1500 * time.Millisecond)
	c.AddRunTime(250 * time.Millisecond)
	c.AddSchedWait(500 * time.Millisecond)
	c.AddSchedWait(0) // counts the task, adds no wait

	u := c.Usage()
	want := TenantUsage{
		Tenant: "acme", Requests: 2,
		JobsSubmitted: 1, JobsCompleted: 1, JobsFailed: 1, JobsCanceled: 1,
		Placements: 1, OracleEvaluations: 100, SampledEvaluations: 40, ForwardPasses: 7, SuffixPasses: 3,
		CacheHits: 1, CacheMisses: 1,
		JobQueueWaitSeconds: 1.5, JobRunSeconds: 0.25,
		SchedQueueWaitSeconds: 0.5, SchedTasks: 2,
	}
	if u != want {
		t.Errorf("Usage() = %+v\nwant      %+v", u, want)
	}
}

func TestAccountantFolding(t *testing.T) {
	a := NewAccountant(3)
	if got := a.Tenant("").Name(); got != DefaultTenant {
		t.Errorf("empty name folded to %q, want %q", got, DefaultTenant)
	}
	if got := a.Tenant("not a tenant!").Name(); got != DefaultTenant {
		t.Errorf("invalid name folded to %q, want %q", got, DefaultTenant)
	}
	// Same name returns the same counter block.
	if a.Tenant("x") != a.Tenant("x") {
		t.Error("Tenant(\"x\") returned distinct blocks for one name")
	}
	a.Tenant("y") // 3 tenants now: default, x, y — cap reached
	if got := a.Tenant("z").Name(); got != OverflowTenant {
		t.Errorf("past-cap tenant accounted to %q, want %q", got, OverflowTenant)
	}
	// Default always resolves even past the cap.
	if got := a.Tenant("").Name(); got != DefaultTenant {
		t.Errorf("default tenant past cap = %q, want %q", got, DefaultTenant)
	}
	// Pre-cap tenants still resolve to their own blocks.
	if got := a.Tenant("x").Name(); got != "x" {
		t.Errorf("existing tenant past cap = %q, want x", got)
	}
}

func TestAccountantLookupAndSnapshot(t *testing.T) {
	a := NewAccountant(0)
	if _, ok := a.Lookup("ghost"); ok {
		t.Error("Lookup of an unseen tenant reported ok")
	}
	a.Tenant("bbb").AddRequest()
	a.Tenant("aaa").AddRequest()
	a.Tenant("aaa").AddRequest()
	if c, ok := a.Lookup("aaa"); !ok || c.Usage().Requests != 2 {
		t.Errorf("Lookup(aaa) = %v, %v; want 2 requests", c, ok)
	}
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0].Tenant != "aaa" || snap[1].Tenant != "bbb" {
		t.Errorf("Snapshot not sorted by tenant: %+v", snap)
	}
	if a.Len() != 2 {
		t.Errorf("Len() = %d, want 2", a.Len())
	}
}

func TestAccountantNilSafe(t *testing.T) {
	var a *Accountant
	if c := a.Tenant("x"); c != nil {
		t.Errorf("nil.Tenant = %v, want nil", c)
	}
	if _, ok := a.Lookup("x"); ok {
		t.Error("nil.Lookup reported ok")
	}
	if a.Len() != 0 || a.Snapshot() != nil {
		t.Error("nil accountant should report empty")
	}
}

// TestAccountantConcurrent hammers tenant creation and accounting from
// many goroutines; run with -race this proves the read-lock fast path and
// the double-checked create path are sound.
func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := a.Tenant(fmt.Sprintf("tenant-%d", i%12))
				c.AddRequest()
				c.AddPlacement(1, 1, 1, 1)
				if i%10 == 0 {
					a.Snapshot()
					a.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, u := range a.Snapshot() {
		total += u.Requests
	}
	if want := int64(16 * 200); total != want {
		t.Errorf("total requests across tenants = %d, want %d (no adds lost)", total, want)
	}
	// Cap of 8 plus the overflow bucket.
	if n := a.Len(); n > 9 {
		t.Errorf("Len() = %d, want ≤ 9 (cap 8 + overflow)", n)
	}
}
