package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricNameRE is the Prometheus metric/label name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds named metrics for one exposition endpoint. Counters and
// gauges are callback-based (the value is sampled at scrape time, so the
// owner keeps its own atomic state); histograms are owned by the
// registry's callers and scraped via their snapshots. Registration is
// idempotent by name and panics on an invalid name or a kind conflict —
// both are programmer errors a test hits immediately.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string // name → counter|gauge|histogram
	help     map[string]string
	counters map[string]func() float64
	gauges   map[string]func() float64
	families map[string]labeledFamily
	infos    map[string]string // name → rendered constant-label selector
	hists    map[string]*Histogram
	vecs     map[string]*HistogramVec
}

// LabeledValue is one sample of a labeled metric family: the value of
// the family's single label plus the sample value.
type LabeledValue struct {
	Label string
	Value float64
}

// labeledFamily is a callback-based counter or gauge family partitioned
// by one label; fn is sampled at scrape time and may return samples in
// any order (exposition sorts them).
type labeledFamily struct {
	label string
	fn    func() []LabeledValue
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]string),
		help:     make(map[string]string),
		counters: make(map[string]func() float64),
		gauges:   make(map[string]func() float64),
		families: make(map[string]labeledFamily),
		hists:    make(map[string]*Histogram),
		vecs:     make(map[string]*HistogramVec),
	}
}

func (r *Registry) register(name, help, kind string) {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, k))
	}
	r.kinds[name] = kind
	r.help[name] = help
}

// Counter registers a monotonic counter sampled from fn at scrape time.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, "counter")
	r.counters[name] = fn
}

// Gauge registers a gauge sampled from fn at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, "gauge")
	r.gauges[name] = fn
}

// CounterVec registers a counter family partitioned by one label,
// sampled from fn at scrape time. fn returns one sample per label value
// (the per-tenant accounting series use this: the accountant snapshot is
// taken once per scrape, not per observation).
func (r *Registry) CounterVec(name, help, label string, fn func() []LabeledValue) {
	r.registerFamily(name, help, label, "counter", fn)
}

// GaugeVec registers a gauge family partitioned by one label, sampled
// from fn at scrape time.
func (r *Registry) GaugeVec(name, help, label string, fn func() []LabeledValue) {
	r.registerFamily(name, help, label, "gauge", fn)
}

func (r *Registry) registerFamily(name, help, label, kind string, fn func() []LabeledValue) {
	if !metricNameRE.MatchString(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kind)
	r.families[name] = labeledFamily{label: label, fn: fn}
}

// Info registers an always-1 gauge with constant labels — the
// build-info idiom (fpd_build_info{version="...",go_version="..."} 1).
// Label values are fixed at registration.
func (r *Registry) Info(name, help string, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !metricNameRE.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	sel := strings.Join(parts, ",")
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, "gauge")
	r.infoSels(name, sel)
}

// infoSels stores the rendered constant-label selector for an info
// gauge. Kept as a tiny map to avoid another struct field per metric.
func (r *Registry) infoSels(name, sel string) {
	if r.infos == nil {
		r.infos = make(map[string]string)
	}
	r.infos[name] = sel
}

// Histogram registers (or returns the existing) named histogram. nil
// bounds use DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, help, "histogram")
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// HistogramVec registers (or returns the existing) named histogram
// family partitioned by one label. nil bounds use DefBuckets.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if !metricNameRE.MatchString(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vecs[name]; ok {
		return v
	}
	r.register(name, help, "histogram")
	v := NewHistogramVec(label, bounds)
	r.vecs[name] = v
	return v
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by metric name so scrapes
// are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	// Copy the callback/handle maps so sampling runs outside the lock.
	counters := make(map[string]func() float64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	families := make(map[string]labeledFamily, len(r.families))
	for k, v := range r.families {
		families[k] = v
	}
	infos := make(map[string]string, len(r.infos))
	for k, v := range r.infos {
		infos[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	vecs := make(map[string]*HistogramVec, len(r.vecs))
	for k, v := range r.vecs {
		vecs[k] = v
	}
	kinds, help := r.kinds, r.help
	r.mu.Unlock()

	for _, name := range names {
		if err := writeHeader(w, name, help[name], kinds[name]); err != nil {
			return err
		}
		var err error
		switch {
		case counters[name] != nil:
			err = writeSample(w, name, "", counters[name]())
		case gauges[name] != nil:
			err = writeSample(w, name, "", gauges[name]())
		case families[name].fn != nil:
			fam := families[name]
			samples := fam.fn()
			sort.Slice(samples, func(i, j int) bool { return samples[i].Label < samples[j].Label })
			for _, s := range samples {
				sel := fmt.Sprintf("%s=%q", fam.label, s.Label)
				if err = writeSample(w, name, sel, s.Value); err != nil {
					break
				}
			}
		case infos[name] != "":
			err = writeSample(w, name, infos[name], 1)
		case hists[name] != nil:
			err = writeHistogram(w, name, "", hists[name].Snapshot())
		case vecs[name] != nil:
			v := vecs[name]
			for _, ls := range v.snapshotAll() {
				// %q escaping (backslash, quote, newline) matches the
				// exposition format's label escaping for the printable
				// values used here (route patterns, stage names).
				sel := fmt.Sprintf("%s=%q", v.Label(), ls.value)
				if err = writeHistogram(w, name, sel, ls.snap); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteHeader writes the # HELP / # TYPE preamble for one metric —
// exported for the server's hand-rolled counter exposition, which shares
// this writer so the formats cannot drift.
func WriteHeader(w io.Writer, name, help, kind string) error {
	return writeHeader(w, name, help, kind)
}

// WriteSample writes one "name value" (or "name{labels} value") line.
func WriteSample(w io.Writer, name, labels string, value float64) error {
	return writeSample(w, name, labels, value)
}

func writeHeader(w io.Writer, name, help, kind string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

func writeSample(w io.Writer, name, labels string, value float64) error {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(value))
	return err
}

// writeHistogram writes the cumulative _bucket series plus _sum and
// _count, with sel ("label=\"value\"") merged into each bucket's le
// selector.
func writeHistogram(w io.Writer, name, sel string, s HistSnapshot) error {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		labels := fmt.Sprintf("le=%q", le)
		if sel != "" {
			labels = sel + "," + labels
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, labels, cum); err != nil {
			return err
		}
	}
	suffix := ""
	if sel != "" {
		suffix = "{" + sel + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
	return err
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
