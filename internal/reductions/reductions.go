// Package reductions implements the paper's two NP-completeness
// constructions as executable graph builders, so the hardness arguments can
// be exercised and tested rather than only stated:
//
//   - Theorem 1: SetCover → FP on general (cyclic) c-graphs. Every universe
//     element becomes a directed cycle through the nodes of the sets that
//     contain it; propagation stays finite exactly when the chosen filters
//     hit every cycle, i.e. when the chosen sets cover the universe.
//   - Theorem 2: VertexCover → FP on DAGs. Every edge of the undirected
//     graph is oriented by a fixed node order and replaced by an m-way
//     "multiplier" gadget (the paper's Figure 12); copies explode as Θ(m³)
//     across any edge whose endpoints are both unfiltered, and stay O(m²)
//     otherwise, so a Φ threshold separates vertex covers from non-covers.
package reductions

import (
	"fmt"

	"repro/internal/graph"
)

// SetCoverInstance is a universe {0, …, M−1} and a family of subsets.
type SetCoverInstance struct {
	M    int
	Sets [][]int
}

// Validate checks element ranges.
func (inst SetCoverInstance) Validate() error {
	for i, s := range inst.Sets {
		for _, u := range s {
			if u < 0 || u >= inst.M {
				return fmt.Errorf("reductions: set %d contains out-of-range element %d", i, u)
			}
		}
	}
	return nil
}

// IsCover reports whether the chosen set indices cover the whole universe.
func (inst SetCoverInstance) IsCover(pick []int) bool {
	covered := make([]bool, inst.M)
	for _, i := range pick {
		for _, u := range inst.Sets[i] {
			covered[u] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// SetCoverToFP builds the Theorem-1 c-graph: one node per set, a directed
// cycle per universe element through the nodes of the sets containing it
// (consecutive in index order, closed with a wrap-around edge), and a
// source node with an edge to every set node. It returns the graph, the
// source id, and setNode[i] = node id of set i.
//
// An element contained in fewer than two sets induces no cycle (a
// single-node "cycle" would be a self-loop); the reduction's finiteness
// criterion therefore tracks covers exactly on instances where every
// element belongs to at least two sets, which is the regime the NP-hardness
// argument uses.
func SetCoverToFP(inst SetCoverInstance) (*graph.Digraph, int, []int, error) {
	if err := inst.Validate(); err != nil {
		return nil, -1, nil, err
	}
	n := len(inst.Sets)
	b := graph.NewBuilder(n + 1)
	source := n
	setNode := make([]int, n)
	for i := range setNode {
		setNode[i] = i
		b.AddEdge(source, i)
	}
	members := make([][]int, inst.M)
	for i, s := range inst.Sets {
		for _, u := range s {
			members[u] = append(members[u], i)
		}
	}
	for _, ms := range members {
		if len(ms) < 2 {
			continue
		}
		for j := 0; j+1 < len(ms); j++ {
			b.AddEdge(ms[j], ms[j+1])
		}
		b.AddEdge(ms[len(ms)-1], ms[0])
	}
	g, err := b.Build()
	if err != nil {
		return nil, -1, nil, err
	}
	return g, source, setNode, nil
}

// VertexCoverInstance is an undirected graph on nodes {0, …, N−1}.
type VertexCoverInstance struct {
	N     int
	Edges [][2]int
}

// Validate checks node ranges and rejects self-loops.
func (inst VertexCoverInstance) Validate() error {
	for _, e := range inst.Edges {
		if e[0] < 0 || e[0] >= inst.N || e[1] < 0 || e[1] >= inst.N {
			return fmt.Errorf("reductions: edge %v out of range", e)
		}
		if e[0] == e[1] {
			return fmt.Errorf("reductions: self-loop %v", e)
		}
	}
	return nil
}

// IsVertexCover reports whether every edge has an endpoint in pick.
func (inst VertexCoverInstance) IsVertexCover(pick []int) bool {
	in := make([]bool, inst.N)
	for _, v := range pick {
		in[v] = true
	}
	for _, e := range inst.Edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

// VertexCoverToFP builds the Theorem-2 DAG with multiplier parameter m ≥ 2
// (the paper takes m polynomially huge; tests use small m and compare Φ
// thresholds directly). Construction: original nodes keep ids 0..N−1;
// node N is the source s and node N+1 the sink t; every undirected edge is
// oriented low→high; every resulting edge — including s→v and v→t for all
// v — is replaced by m parallel two-hop paths through fresh gadget nodes.
// It returns the graph, the source and sink ids.
func VertexCoverToFP(inst VertexCoverInstance, m int) (*graph.Digraph, int, int, error) {
	if err := inst.Validate(); err != nil {
		return nil, -1, -1, err
	}
	if m < 2 {
		return nil, -1, -1, fmt.Errorf("reductions: multiplier m = %d, need ≥ 2", m)
	}
	b := graph.NewBuilder(inst.N + 2)
	source, sink := inst.N, inst.N+1
	multiplier := func(u, v int) {
		for i := 0; i < m; i++ {
			w := b.AddNode()
			b.AddEdge(u, w)
			b.AddEdge(w, v)
		}
	}
	for v := 0; v < inst.N; v++ {
		multiplier(source, v)
		multiplier(v, sink)
	}
	for _, e := range inst.Edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		multiplier(u, v)
	}
	g, err := b.Build()
	if err != nil {
		return nil, -1, -1, err
	}
	return g, source, sink, nil
}
