package reductions

import (
	"math"
	"testing"

	"repro/internal/flow"
)

// combinations invokes fn with every size-k subset of {0..n-1}.
func combinations(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, i int)
	rec = func(start, i int) {
		if i == k {
			fn(idx)
			return
		}
		for v := start; v < n; v++ {
			idx[i] = v
			rec(v+1, i+1)
		}
	}
	rec(0, 0)
}

func TestSetCoverReductionFiniteness(t *testing.T) {
	// Universe {0..4}; each element in ≥ 2 sets. Minimum cover is
	// {S0, S2} (size 2).
	inst := SetCoverInstance{
		M: 5,
		Sets: [][]int{
			{0, 1, 2},
			{0, 3},
			{3, 4},
			{1, 2, 4},
		},
	}
	g, source, setNode, err := SetCoverToFP(inst)
	if err != nil {
		t.Fatal(err)
	}
	if g.IsDAG() {
		t.Fatal("Theorem-1 construction must contain cycles")
	}
	// For every k and subset: propagation is finite ⟺ the subset covers.
	for k := 1; k <= 3; k++ {
		combinations(len(inst.Sets), k, func(pick []int) {
			filters := make([]bool, g.N())
			for _, i := range pick {
				filters[setNode[i]] = true
			}
			sim, err := flow.NewSimulator(g, []int{source})
			if err != nil {
				t.Fatal(err)
			}
			sim.MaxEvents = 200000
			_, err = sim.Run(filters)
			finite := err == nil
			if cover := inst.IsCover(pick); cover != finite {
				t.Errorf("pick %v: cover=%v but finite=%v", pick, cover, finite)
			}
		})
	}
}

func TestSetCoverSingletonElementNoCycle(t *testing.T) {
	inst := SetCoverInstance{M: 1, Sets: [][]int{{0}}}
	g, _, _, err := SetCoverToFP(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDAG() {
		t.Error("singleton element must not create a cycle")
	}
}

func TestSetCoverValidate(t *testing.T) {
	bad := SetCoverInstance{M: 2, Sets: [][]int{{0, 5}}}
	if _, _, _, err := SetCoverToFP(bad); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestVertexCoverReductionThreshold(t *testing.T) {
	// Path graph 0—1—2—3: minimum vertex cover {1, 2} (size 2).
	inst := VertexCoverInstance{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}
	const m = 6
	g, source, _, err := VertexCoverToFP(inst, m)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDAG() {
		t.Fatal("Theorem-2 construction must be a DAG")
	}
	model, err := flow.NewModel(g, []int{source})
	if err != nil {
		t.Fatal(err)
	}
	ev := flow.NewBig(model)

	// Over all vertex subsets of size 2: Φ must cleanly separate covers
	// from non-covers.
	maxCover, minNonCover := 0.0, math.Inf(1)
	combinations(inst.N, 2, func(pick []int) {
		filters := make([]bool, g.N())
		for _, v := range pick {
			filters[v] = true
		}
		phi := ev.Phi(filters)
		if inst.IsVertexCover(pick) {
			if phi > maxCover {
				maxCover = phi
			}
		} else if phi < minNonCover {
			minNonCover = phi
		}
	})
	if maxCover == 0 || math.IsInf(minNonCover, 1) {
		t.Fatal("test instance must contain both covers and non-covers")
	}
	if maxCover >= minNonCover {
		t.Errorf("no threshold: max over covers %v ≥ min over non-covers %v", maxCover, minNonCover)
	}
	// The separation grows like m: worst cover is O(m²)·|structure| while
	// any uncovered edge contributes Ω(m³).
	if minNonCover/maxCover < 1.5 {
		t.Errorf("separation too weak: %v vs %v", maxCover, minNonCover)
	}
}

func TestVertexCoverTriangleNeedsTwo(t *testing.T) {
	// Triangle: no single vertex covers all edges; Φ over all 1-subsets
	// must exceed Φ of the best 2-subset.
	inst := VertexCoverInstance{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	g, source, _, err := VertexCoverToFP(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev := flow.NewBig(flow.MustModel(g, []int{source}))
	best1 := math.Inf(1)
	combinations(3, 1, func(pick []int) {
		if phi := ev.Phi(flow.MaskOf(g.N(), pick)); phi < best1 {
			best1 = phi
		}
	})
	best2 := math.Inf(1)
	combinations(3, 2, func(pick []int) {
		if phi := ev.Phi(flow.MaskOf(g.N(), pick)); phi < best2 {
			best2 = phi
		}
	})
	if best2 >= best1 {
		t.Errorf("two filters (a cover) should beat one: %v vs %v", best2, best1)
	}
}

func TestVertexCoverValidate(t *testing.T) {
	if _, _, _, err := VertexCoverToFP(VertexCoverInstance{N: 2, Edges: [][2]int{{0, 0}}}, 3); err == nil {
		t.Error("self-loop accepted")
	}
	if _, _, _, err := VertexCoverToFP(VertexCoverInstance{N: 2, Edges: [][2]int{{0, 1}}}, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, _, _, err := VertexCoverToFP(VertexCoverInstance{N: 2, Edges: [][2]int{{0, 7}}}, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestVertexCoverGraphSize(t *testing.T) {
	inst := VertexCoverInstance{N: 3, Edges: [][2]int{{0, 1}}}
	m := 4
	g, source, sink, err := VertexCoverToFP(inst, m)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: 3 original + s + t + m per multiplied edge; multiplied edges:
	// 3 source + 3 sink + 1 original = 7.
	wantN := 3 + 2 + 7*m
	if g.N() != wantN {
		t.Errorf("N = %d, want %d", g.N(), wantN)
	}
	if g.M() != 7*m*2 {
		t.Errorf("M = %d, want %d", g.M(), 14*m)
	}
	if g.OutDegree(sink) != 0 || g.InDegree(source) != 0 {
		t.Error("source/sink degrees wrong")
	}
}
