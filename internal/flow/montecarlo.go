package flow

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sched"
)

// Monte-Carlo evaluation of the probabilistic propagation model.
//
// The analytic weighted engine computes *expected* copy counts and models a
// filter as emitting min(1, E[received]) — exact for the deterministic
// model, an approximation under randomness because E[min(1, X)] ≤
// min(1, E[X]) (Jensen). MonteCarlo measures the ground truth by sampling
// actual propagations: every copy crosses each edge independently with the
// edge's probability and a filter forwards only the first copy of the item
// it sees. The estimator reports the sample mean of Φ(A, V) with a normal
// confidence interval, letting tests and experiments quantify the gap the
// paper's §3 glosses over.
//
// Runs execute in fixed-size SHARDS of mcShardRuns, each with its own
// simulator and its own RNG stream derived only from (seed, shard index).
// The shard layout depends solely on the requested run count — never on
// worker count or scheduler state — and per-shard moments are reduced in
// ascending shard order, so a given (runs, seed) pair yields the same
// MCResult whether the shards execute serially or across the shared
// scheduler at any parallelism.

// mcShardRuns is the number of simulator runs one shard executes. It is
// part of the deterministic contract: changing it changes which stream
// drives which run and therefore the estimate for a given seed.
const mcShardRuns = 16

// MCResult is a Monte-Carlo estimate of Φ(A, V).
type MCResult struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"std_err"`
	Runs   int     `json:"runs"`
}

// CI95 returns the half-width of the 95% confidence interval.
func (r MCResult) CI95() float64 { return 1.96 * r.StdErr }

// mcShardSeed derives shard s's RNG stream from the caller's seed.
func mcShardSeed(seed int64, s int) int64 {
	return int64(mix64(uint64(seed) ^ (uint64(s)+1)*sampleGamma))
}

// MonteCarlo estimates Φ(A, V) under true probabilistic semantics for a
// weighted model by running the event-level simulator `runs` times,
// sharded across the process-wide scheduler. For unweighted models a
// single run suffices (the process is deterministic) and the standard
// error is zero. Same seed ⇒ same result at any worker count; see
// MonteCarloP to bound the parallelism explicitly.
func MonteCarlo(m *Model, filters []bool, runs int, seed int64) (MCResult, error) {
	return MonteCarloP(m, filters, runs, seed, sched.Default().ChunkHint())
}

// MonteCarloP is MonteCarlo with the shard concurrency bounded by procs
// (≤ 1 runs every shard inline). procs only decides where shards
// execute, never how runs split into shards, so the returned MCResult is
// bit-for-bit identical at every setting.
func MonteCarloP(m *Model, filters []bool, runs int, seed int64, procs int) (MCResult, error) {
	if runs <= 0 {
		return MCResult{}, fmt.Errorf("flow: runs = %d, need ≥ 1", runs)
	}
	if !m.Weighted() {
		sim, err := NewSimulator(m.Graph(), m.Sources())
		if err != nil {
			return MCResult{}, err
		}
		phi, err := sim.Phi(filters)
		if err != nil {
			return MCResult{}, err
		}
		return MCResult{Mean: float64(phi), Runs: 1}, nil
	}

	shards := (runs + mcShardRuns - 1) / mcShardRuns
	type shardMoments struct {
		sum, sumSq float64
		err        error
	}
	acc := make([]shardMoments, shards)
	runShard := func(s int) {
		sim, err := NewSimulator(m.Graph(), m.Sources())
		if err != nil {
			acc[s].err = err
			return
		}
		sim.Rand = rand.New(rand.NewSource(mcShardSeed(seed, s)))
		sim.Prob = m.weight
		count := mcShardRuns
		if rem := runs - s*mcShardRuns; rem < count {
			count = rem
		}
		for i := 0; i < count; i++ {
			phi, err := sim.Phi(filters)
			if err != nil {
				acc[s].err = err
				return
			}
			f := float64(phi)
			acc[s].sum += f
			acc[s].sumSq += f * f
		}
	}
	if procs <= 1 || shards == 1 {
		for s := 0; s < shards; s++ {
			runShard(s)
		}
	} else {
		b := sched.Default().NewBatch()
		for s := 0; s < shards; s++ {
			s := s
			b.Go(func() { runShard(s) })
		}
		b.Wait()
	}

	// Reduce in ascending shard order — the serial accumulation order.
	var sum, sumSq float64
	for s := range acc {
		if acc[s].err != nil {
			return MCResult{}, acc[s].err
		}
		sum += acc[s].sum
		sumSq += acc[s].sumSq
	}
	n := float64(runs)
	mean := sum / n
	variance := 0.0
	if runs > 1 {
		variance = (sumSq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
	}
	return MCResult{Mean: mean, StdErr: math.Sqrt(variance / n), Runs: runs}, nil
}
