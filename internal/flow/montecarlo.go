package flow

import (
	"fmt"
	"math"
	"math/rand"
)

// Monte-Carlo evaluation of the probabilistic propagation model.
//
// The analytic weighted engine computes *expected* copy counts and models a
// filter as emitting min(1, E[received]) — exact for the deterministic
// model, an approximation under randomness because E[min(1, X)] ≤
// min(1, E[X]) (Jensen). MonteCarlo measures the ground truth by sampling
// actual propagations: every copy crosses each edge independently with the
// edge's probability and a filter forwards only the first copy of the item
// it sees. The estimator reports the sample mean of Φ(A, V) with a normal
// confidence interval, letting tests and experiments quantify the gap the
// paper's §3 glosses over.

// MCResult is a Monte-Carlo estimate of Φ(A, V).
type MCResult struct {
	Mean   float64
	StdErr float64
	Runs   int
}

// CI95 returns the half-width of the 95% confidence interval.
func (r MCResult) CI95() float64 { return 1.96 * r.StdErr }

// MonteCarlo estimates Φ(A, V) under true probabilistic semantics for a
// weighted model by running the event-level simulator `runs` times. For
// unweighted models a single run suffices (the process is deterministic)
// and the standard error is zero.
func MonteCarlo(m *Model, filters []bool, runs int, seed int64) (MCResult, error) {
	if runs <= 0 {
		return MCResult{}, fmt.Errorf("flow: runs = %d, need ≥ 1", runs)
	}
	sim, err := NewSimulator(m.Graph(), m.Sources())
	if err != nil {
		return MCResult{}, err
	}
	if !m.Weighted() {
		phi, err := sim.Phi(filters)
		if err != nil {
			return MCResult{}, err
		}
		return MCResult{Mean: float64(phi), Runs: 1}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	sim.Rand = rng
	sim.Prob = m.weight
	var sum, sumSq float64
	for i := 0; i < runs; i++ {
		phi, err := sim.Phi(filters)
		if err != nil {
			return MCResult{}, err
		}
		f := float64(phi)
		sum += f
		sumSq += f * f
	}
	n := float64(runs)
	mean := sum / n
	variance := 0.0
	if runs > 1 {
		variance = (sumSq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
	}
	return MCResult{Mean: mean, StdErr: math.Sqrt(variance / n), Runs: runs}, nil
}
