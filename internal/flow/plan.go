package flow

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/sched"
)

// Plan is a per-graph, immutable execution plan: everything about HOW a
// forward or suffix pass iterates a c-graph, precomputed once per Model
// and shared by every engine, clone and placement that evaluates it.
//
// The propagation passes dominate placement time and are memory-bound: the
// pre-plan engines walked Model.Topo() and gathered each node's neighbors
// through the Digraph's CSR, so consecutive iterations touched rec/emit
// slots scattered across the whole array. The plan removes that scatter at
// construction time:
//
//   - Nodes are RENUMBERED level-contiguously: plan position i carries
//     original node perm[i], positions are grouped by topological level
//     (depth), and within a level nodes are ordered by ascending original
//     id. The level-contiguous order is itself a topological order, so a
//     serial pass is one strictly sequential sweep over positions 0..n-1
//     — no index vector in the loop at all. The within-level order is
//     CANONICAL — a pure function of the edge set, independent of which
//     topological order the model happened to cache — which is what lets
//     a spliced plan (see Splicer) be array-for-array identical to a
//     from-scratch build.
//   - The in- and out-adjacency CSR is RE-INDEXED to plan positions, with
//     each node's neighbor list kept in ascending ORIGINAL id order — the
//     exact accumulation order of the pre-plan kernels, which is what
//     makes plan-backed float results bit-for-bit identical.
//   - Edge weights (probabilistic models) are flattened into per-edge
//     arrays aligned with the CSR, so the weighted kernel reads w[j]
//     instead of calling a closure per edge.
//   - Chunk boundaries for level-parallel execution are precomputed for
//     the shared scheduler's worker count (sched.Default().ChunkHint()),
//     so the steady-state parallel pass does no chunk arithmetic.
//
// The flat kernels (forwardRange/suffixRange) are written index-based with
// hoisted bounds checks and branch-light filter masking so a GOAMD64=v3
// build can keep them in the pipeline; the dominant win on current gc
// toolchains is the sequential rec/emit/suf access pattern plus the
// disappearance of per-edge closure and interface calls.
//
// A Plan also owns the scratch-buffer arena for its graph: engines and
// their clones borrow plan-sized rec/emit/suf/mask buffers from a pool
// (getScratch/GetMask) instead of allocating per clone, which is what
// drops the per-candidate sharding in core.Place to ~zero steady-state
// allocations.
//
// Plans are built lazily by Model.Plan and are safe for concurrent use;
// all exported and unexported methods are read-only with respect to the
// plan itself.
type Plan struct {
	n        int
	weighted bool

	// perm maps plan position -> original node id; pos is its inverse.
	// identity marks the common generated-graph case where node ids are
	// already level-contiguous (perm[i] == i), letting mask translation
	// and the original-order sum skip their gathers.
	perm     []int32
	pos      []int32
	identity bool

	// levelOff are the level boundaries: level l occupies plan positions
	// [levelOff[l], levelOff[l+1]). Every in-neighbor of a position in
	// level l lies in a level < l; every out-neighbor in a level > l.
	levelOff []int32

	// In-CSR over plan positions: the in-neighbors of position i are
	// inAdj[inOff[i]:inOff[i+1]], listed in ascending ORIGINAL id order.
	// inW, when non-nil, carries the relay probability of each in-edge.
	inOff []int32
	inAdj []int32
	inW   []float64

	// Out-CSR, symmetric to the above.
	outOff []int32
	outAdj []int32
	outW   []float64

	// mulW, when non-nil, is the plan-indexed node multiplicity of a
	// coarse (quotient) model: position i stands for mulW[i] contracted
	// receivers beyond itself. The suffix kernel seeds suf[i] with it and
	// sumPhi adds mulW[i]·emit[i] per node, so coarse Φ/gain evaluation
	// runs on the same flat kernels as ordinary plans. nil everywhere else
	// — the hot kernels of ordinary models are untouched.
	mulW []float64

	// falseMask is a shared all-false mask handed to kernels when the
	// caller passes nil filters; it is never written.
	falseMask []bool

	// chunkHint is the scheduler worker count the precomputed chunk
	// tables were sized for; levelChunks[l] holds the absolute position
	// boundaries of level l's chunks (nil for levels run serially).
	chunkHint   int
	levelChunks [][]int32

	// arena holds the pooled scratch buffers. It is SHARED across the
	// splice lineage of a plan (every Splicer repair hands the new plan
	// the old plan's arena), so a dynamic graph keeps its warm buffers
	// across mutations instead of repaying the allocation after every
	// batch; buffers grow in place when AddNodes extends the graph.
	arena *planArena
}

// planArena is the pooled scratch shared by a plan and all of its spliced
// descendants. Buffers are sized lazily against the borrowing plan's n —
// a pool entry allocated for an older, smaller plan is grown (never
// shrunk) on its next borrow.
type planArena struct {
	scratch sync.Pool // *floatScratch
	masks   sync.Pool // *[]bool
}

func newPlanArena() *planArena {
	a := &planArena{}
	a.scratch.New = func() any { return &floatScratch{} }
	a.masks.New = func() any { return new([]bool) }
	return a
}

// floatScratch is one borrowed working set for float passes over a plan:
// plan-indexed rec/emit/suf plus a plan-order filter mask. All four live
// together so an engine borrows and releases them as one arena.
type floatScratch struct {
	rec, emit, suf []float64
	fmask          []bool
}

// ensure resizes the working set to n slots, reslicing in place when
// capacity allows (the warm-arena path after a splice grows a graph).
func (s *floatScratch) ensure(n int) {
	if cap(s.rec) < n || cap(s.fmask) < n {
		s.rec = make([]float64, n)
		s.emit = make([]float64, n)
		s.suf = make([]float64, n)
		s.fmask = make([]bool, n)
		return
	}
	s.rec, s.emit, s.suf, s.fmask = s.rec[:n], s.emit[:n], s.suf[:n], s.fmask[:n]
}

// buildPlan computes the plan of a model. It is called once per Model
// through Model.Plan; weighted models have every edge weight validated
// (and baked into the flat arrays) here, so kernels never re-check.
func buildPlan(m *Model) *Plan {
	g, topo := m.g, m.topo
	n := g.N()
	p := &Plan{n: n, weighted: m.weight != nil}

	// Forward depth of every node: 1 + max over in-neighbors.
	depth := make([]int32, n)
	maxDepth := int32(-1)
	for _, v := range topo {
		var d int32
		for _, q := range g.In(v) {
			if depth[q]+1 > d {
				d = depth[q] + 1
			}
		}
		depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}

	// Counting sort by depth, stable in ascending original-id order,
	// yields the canonical level-contiguous permutation (still a valid
	// topological order: edges always cross into a strictly deeper level).
	p.levelOff = make([]int32, maxDepth+2)
	for v := 0; v < n; v++ {
		p.levelOff[depth[v]+1]++
	}
	for l := 1; l < len(p.levelOff); l++ {
		p.levelOff[l] += p.levelOff[l-1]
	}
	p.perm = make([]int32, n)
	p.pos = make([]int32, n)
	next := append([]int32(nil), p.levelOff...)
	for v := 0; v < n; v++ {
		i := next[depth[v]]
		next[depth[v]]++
		p.perm[i] = int32(v)
		p.pos[v] = i
	}
	p.checkIdentity()

	// Re-index both CSRs to plan positions. Neighbor lists stay in
	// ascending original-id order (Digraph.In/Out order), preserving the
	// pre-plan float accumulation order bit for bit.
	p.inOff = make([]int32, n+1)
	p.outOff = make([]int32, n+1)
	p.inAdj = make([]int32, g.M())
	p.outAdj = make([]int32, g.M())
	if p.weighted {
		p.inW = make([]float64, g.M())
		p.outW = make([]float64, g.M())
	}
	var ein, eout int32
	for i := 0; i < n; i++ {
		v := int(p.perm[i])
		p.inOff[i] = ein
		for _, q := range g.In(v) {
			p.inAdj[ein] = p.pos[q]
			if p.weighted {
				p.inW[ein] = m.checkedWeight(q, v)
			}
			ein++
		}
		p.outOff[i] = eout
		for _, c := range g.Out(v) {
			p.outAdj[eout] = p.pos[c]
			if p.weighted {
				p.outW[eout] = m.checkedWeight(v, c)
			}
			eout++
		}
	}
	p.inOff[n] = ein
	p.outOff[n] = eout

	if m.mul != nil {
		p.mulW = make([]float64, n)
		for i := 0; i < n; i++ {
			p.mulW[i] = float64(m.mul[p.perm[i]])
		}
	}

	p.falseMask = make([]bool, n)

	// Precompute per-level chunk boundaries for the scheduler's current
	// worker count. The tables are a perf hint only: chunking never
	// affects results (per-node kernels are independent within a level),
	// and passes asked for a different parallelism fall back to the same
	// arithmetic inline.
	p.chunkHint = sched.Default().ChunkHint()
	p.levelChunks = make([][]int32, p.numLevels())
	for l := range p.levelChunks {
		lo, hi := p.level(l)
		p.levelChunks[l] = p.chunksFor(lo, hi)
	}

	p.arena = newPlanArena()
	return p
}

// checkIdentity recomputes the identity flag — the common generated-graph
// case where node ids are already level-contiguous in canonical order.
func (p *Plan) checkIdentity() {
	p.identity = true
	for i, v := range p.perm {
		if int32(i) != v {
			p.identity = false
			break
		}
	}
}

// chunksFor computes the precomputed chunk boundaries for one level's
// position range [lo, hi) against the plan's scheduler hint, or nil when
// the level runs serially. Boundaries depend only on (size, chunkHint),
// never on contents, so a splice recomputes them exactly as a full build
// would.
func (p *Plan) chunksFor(lo, hi int) []int32 {
	size := hi - lo
	if size < minParallelSpan || p.chunkHint <= 1 {
		return nil
	}
	procs := p.chunkHint
	if procs > size {
		procs = size
	}
	chunk := (size + procs - 1) / procs
	bounds := []int32{int32(lo)}
	for c := lo + chunk; c < hi; c += chunk {
		bounds = append(bounds, int32(c))
	}
	return append(bounds, int32(hi))
}

// N returns the node count the plan was built for.
func (p *Plan) N() int { return p.n }

// M returns the edge count.
func (p *Plan) M() int { return len(p.inAdj) }

// Levels returns the number of topological levels — the critical-path
// length of a level-parallel pass.
func (p *Plan) Levels() int { return p.numLevels() }

// MaxWidth returns the widest level's node count — the available
// parallelism of the widest pass step.
func (p *Plan) MaxWidth() int {
	w := 0
	for l := 0; l < p.numLevels(); l++ {
		lo, hi := p.level(l)
		if hi-lo > w {
			w = hi - lo
		}
	}
	return w
}

// Weighted reports whether the plan carries per-edge relay probabilities.
func (p *Plan) Weighted() bool { return p.weighted }

// Coarse reports whether the plan carries node multiplicity weights (it
// belongs to a quotient model built by Coarsen).
func (p *Plan) Coarse() bool { return p.mulW != nil }

func (p *Plan) numLevels() int { return len(p.levelOff) - 1 }

// level returns the plan-position range [lo, hi) of level l.
func (p *Plan) level(l int) (lo, hi int) {
	return int(p.levelOff[l]), int(p.levelOff[l+1])
}

// getScratch borrows a plan-sized float working set; return it with
// putScratch when the borrower is done (engines do this via
// ReleaseScratch). Contents are unspecified.
func (p *Plan) getScratch() *floatScratch {
	s := p.arena.scratch.Get().(*floatScratch)
	s.ensure(p.n)
	return s
}

func (p *Plan) putScratch(s *floatScratch) {
	if s != nil {
		p.arena.scratch.Put(s)
	}
}

// GetMask borrows an N()-length []bool from the plan's arena; contents
// are unspecified. core.Place borrows per-shard candidate masks here so
// candidate sharding stops allocating O(N) state per placement.
func (p *Plan) GetMask() []bool {
	mp := p.arena.masks.Get().(*[]bool)
	mask := *mp
	if cap(mask) < p.n {
		mask = make([]bool, p.n)
	}
	return mask[:p.n]
}

// PutMask returns a mask borrowed with GetMask.
func (p *Plan) PutMask(mask []bool) {
	if mask != nil {
		p.arena.masks.Put(&mask)
	}
}

// fillMask translates an original-id mask into plan order; nil means no
// filters and returns the shared all-false mask (do not write to it).
func (p *Plan) fillMask(dst []bool, orig []bool) []bool {
	if orig == nil {
		return p.falseMask
	}
	if p.identity {
		copy(dst, orig)
		return dst
	}
	perm := p.perm
	for i := range dst {
		dst[i] = orig[perm[i]]
	}
	return dst
}

// forwardRange runs the flat forward kernel over plan positions [lo, hi):
// rec[i] accumulates the weighted emissions of i's in-neighbors in the
// same order as the pre-plan per-node kernel, and emit[i] applies the
// source/filter rule. src and fmask are plan-order masks (fmask may be
// the shared falseMask); rec and emit are plan-indexed. Positions in
// [lo, hi) must only depend on emit values already computed — the full
// range [0, n) serially, or any subrange of one level in parallel.
func (p *Plan) forwardRange(src, fmask []bool, rec, emit []float64, lo, hi int) {
	inOff, inAdj := p.inOff, p.inAdj
	if p.inW == nil {
		for i := lo; i < hi; i++ {
			r := 0.0
			for _, q := range inAdj[inOff[i]:inOff[i+1]] {
				r += emit[q]
			}
			rec[i] = r
			e := r
			if src[i] || (fmask[i] && r > 1) {
				e = 1
			}
			emit[i] = e
		}
		return
	}
	inW := p.inW
	for i := lo; i < hi; i++ {
		r := 0.0
		adj := inAdj[inOff[i]:inOff[i+1]]
		w := inW[inOff[i]:inOff[i+1]]
		w = w[:len(adj)] // hoist the bounds check out of the edge loop
		for k, q := range adj {
			r += w[k] * emit[q]
		}
		rec[i] = r
		e := r
		if src[i] || (fmask[i] && r > 1) {
			e = 1
		}
		emit[i] = e
	}
}

// suffixRange runs the flat suffix kernel over plan positions [lo, hi) in
// DESCENDING order: suf[i] accumulates 1 + suf[c] (or just the edge
// weight when c is a filter) over i's out-neighbors in the pre-plan
// order. Positions must only depend on suf values already computed — the
// full range [0, n) serially, or any subrange of one level in parallel
// once all later levels are done.
func (p *Plan) suffixRange(fmask []bool, suf []float64, lo, hi int) {
	outOff, outAdj := p.outOff, p.outAdj
	if p.mulW != nil {
		// Coarse plan (never weighted): a supernode's suffix starts at its
		// own multiplicity — one extra unit of emission reaches each of its
		// mulW[i] contracted interior receivers exactly once — and then
		// accumulates the usual external out-edge terms.
		mw := p.mulW
		for i := hi - 1; i >= lo; i-- {
			s := mw[i]
			for _, c := range outAdj[outOff[i]:outOff[i+1]] {
				t := 1 + suf[c]
				if fmask[c] {
					t = 1
				}
				s += t
			}
			suf[i] = s
		}
		return
	}
	if p.outW == nil {
		for i := hi - 1; i >= lo; i-- {
			s := 0.0
			for _, c := range outAdj[outOff[i]:outOff[i+1]] {
				t := 1 + suf[c]
				if fmask[c] {
					t = 1
				}
				s += t
			}
			suf[i] = s
		}
		return
	}
	outW := p.outW
	for i := hi - 1; i >= lo; i-- {
		s := 0.0
		adj := outAdj[outOff[i]:outOff[i+1]]
		w := outW[outOff[i]:outOff[i+1]]
		w = w[:len(adj)] // hoist the bounds check out of the edge loop
		for k, c := range adj {
			t := 1 + suf[c]
			if fmask[c] {
				t = 1
			}
			s += w[k] * t
		}
		suf[i] = s
	}
}

// sumOriginal sums a plan-indexed vector in ascending ORIGINAL node
// order — the exact float addition order of the pre-plan Phi.
func (p *Plan) sumOriginal(vals []float64) float64 {
	total := 0.0
	if p.identity {
		for _, v := range vals {
			total += v
		}
		return total
	}
	for _, i := range p.pos {
		total += vals[i]
	}
	return total
}

// sumPhi folds one forward pass into Φ(A,V): Σ rec on ordinary plans,
// Σ rec[i] + mulW[i]·emit[i] on coarse plans (each supernode's contracted
// interior receives emit[i] once per multiplicity unit). Both sum in
// ascending original node order for bit-stable float accumulation.
func (p *Plan) sumPhi(rec, emit []float64) float64 {
	if p.mulW == nil {
		return p.sumOriginal(rec)
	}
	mw := p.mulW
	total := 0.0
	if p.identity {
		for i, r := range rec {
			total += r + mw[i]*emit[i]
		}
		return total
	}
	for _, i := range p.pos {
		total += rec[i] + mw[i]*emit[i]
	}
	return total
}

// Digraph materializes the plan's edge set as an immutable graph.Digraph
// in O(n+m) — no sorting, no edge map. Plan CSR rows are already in
// ascending original-id order, the exact Digraph contract, so rows are a
// straight position→id translation. NewModelFromPlan uses this to stand
// up a fresh Model over a spliced plan without paying the overlay
// snapshot's O(m log m) sort.
func (p *Plan) Digraph() *graph.Digraph {
	n := p.n
	outOff := make([]int, n+1)
	inOff := make([]int, n+1)
	outAdj := make([]int, len(p.outAdj))
	inAdj := make([]int, len(p.inAdj))
	var eout, ein int
	for v := 0; v < n; v++ {
		i := int(p.pos[v])
		outOff[v] = eout
		for _, c := range p.outAdj[p.outOff[i]:p.outOff[i+1]] {
			outAdj[eout] = int(p.perm[c])
			eout++
		}
		inOff[v] = ein
		for _, q := range p.inAdj[p.inOff[i]:p.inOff[i+1]] {
			inAdj[ein] = int(p.perm[q])
			ein++
		}
	}
	outOff[n] = eout
	inOff[n] = ein
	return graph.FromCSR(n, outOff, outAdj, inOff, inAdj)
}

// scatter copies a plan-indexed vector into a freshly allocated
// original-id-indexed slice.
func (p *Plan) scatter(vals []float64) []float64 {
	out := make([]float64, p.n)
	for i, v := range vals {
		out[p.perm[i]] = v
	}
	return out
}

// runLevel executes fn over level l's position range, split into at most
// procs contiguous chunks on the shared scheduler. Chunk boundaries come
// from the precomputed table when procs matches the plan's scheduler
// hint, and from the same arithmetic inline otherwise; either way they
// depend only on (level size, procs), and per-node kernels are
// independent within a level, so results never depend on chunking.
func (p *Plan) runLevel(l, procs int, fn func(lo, hi int)) {
	lo, hi := p.level(l)
	size := hi - lo
	if procs <= 1 || size < minParallelSpan {
		fn(lo, hi)
		return
	}
	if procs == p.chunkHint && p.levelChunks[l] != nil {
		bounds := p.levelChunks[l]
		b := sched.Default().NewBatch()
		for c := 0; c+1 < len(bounds); c++ {
			clo, chi := int(bounds[c]), int(bounds[c+1])
			b.Go(func() { fn(clo, chi) })
		}
		b.Wait()
		return
	}
	// Off-hint parallelism: same split arithmetic, computed inline.
	parallelFor(size, procs, func(clo, chi int) { fn(lo+clo, lo+chi) })
}

// forwardLevels is forwardRange over every level in ascending order with
// each level sharded across procs scheduler chunks.
func (p *Plan) forwardLevels(src, fmask []bool, rec, emit []float64, procs int) {
	for l := 0; l < p.numLevels(); l++ {
		p.runLevel(l, procs, func(lo, hi int) {
			p.forwardRange(src, fmask, rec, emit, lo, hi)
		})
	}
}

// suffixLevels is suffixRange over every level in descending order with
// each level sharded across procs scheduler chunks. Out-neighbors always
// live in strictly later levels, so by the time level l runs every suf
// value it reads is final.
func (p *Plan) suffixLevels(fmask []bool, suf []float64, procs int) {
	for l := p.numLevels() - 1; l >= 0; l-- {
		p.runLevel(l, procs, func(lo, hi int) {
			p.suffixRange(fmask, suf, lo, hi)
		})
	}
}
