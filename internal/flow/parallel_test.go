package flow

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
)

// randomDAGModel builds a random single-source-ish DAG model for tests:
// edges only go from lower to higher ids, so it is always acyclic.
func randomDAGModel(t testing.TB, n int, p float64, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCloneMatchesOriginal checks that clones of all engines agree exactly
// with their originals on every Evaluator query.
func TestCloneMatchesOriginal(t *testing.T) {
	m := randomDAGModel(t, 120, 0.06, 1)
	filters := make([]bool, m.N())
	for v := 0; v < m.N(); v += 7 {
		if !m.IsSource(v) {
			filters[v] = true
		}
	}
	engines := map[string]Cloner{
		"float": NewFloat(m),
		"big":   NewBig(m),
	}
	me, err := NewMulti(m.Graph(), []Item{{Name: "a", Source: m.Sources()[0], Rate: 2}})
	if err != nil {
		t.Fatal(err)
	}
	engines["multi"] = me
	for name, ev := range engines {
		c := ev.Clone()
		if c.Phi(filters) != ev.Phi(filters) {
			t.Errorf("%s: clone Phi %v != original %v", name, c.Phi(filters), ev.Phi(filters))
		}
		if c.MaxF() != ev.MaxF() {
			t.Errorf("%s: clone MaxF differs", name)
		}
		gv, gg := ev.ArgmaxImpact(filters, filters)
		cv, cg := c.ArgmaxImpact(filters, filters)
		if gv != cv || gg != cg {
			t.Errorf("%s: clone ArgmaxImpact (%d,%v) != original (%d,%v)", name, cv, cg, gv, gg)
		}
	}
}

// TestCloneConcurrentHammer drives many cloned evaluators concurrently
// (run under -race) and checks every goroutine sees bit-identical results.
func TestCloneConcurrentHammer(t *testing.T) {
	m := randomDAGModel(t, 200, 0.04, 2)
	root := NewFloat(m)
	// Build the level cache up front so clones share it, then reference
	// results from a serial run.
	wantV, wantG := root.ArgmaxImpactP(nil, nil, 2)
	wantPhi := root.Phi(nil)

	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errc := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := root.Clone()
			filters := make([]bool, m.N())
			for i := 0; i < 25; i++ {
				if phi := ev.Phi(nil); phi != wantPhi {
					errc <- "Phi diverged"
					return
				}
				v, g := ev.ArgmaxImpact(filters, filters)
				if v != wantV || g != wantG {
					errc <- "ArgmaxImpact diverged"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestParallelPassesBitIdentical checks ArgmaxImpactP and ImpactsP against
// the serial pass across worker counts, filter sets and weighted models.
func TestParallelPassesBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		m := randomDAGModel(t, 300, 0.03, seed)
		if seed%2 == 0 {
			m = m.WithWeights(func(u, v int) float64 {
				return 0.25 + 0.5*float64((u+v)%3)/2
			})
		}
		e := NewFloat(m)
		filters := make([]bool, m.N())
		for round := 0; round < 5; round++ {
			wantGains := e.Impacts(filters)
			wantV, wantG := e.ArgmaxImpact(filters, filters)
			for _, procs := range []int{1, 2, 4, runtime.GOMAXPROCS(0) + 3} {
				gains := e.ImpactsP(filters, procs)
				for v := range gains {
					if gains[v] != wantGains[v] {
						t.Fatalf("seed %d procs %d: ImpactsP[%d] = %v, serial %v", seed, procs, v, gains[v], wantGains[v])
					}
				}
				v, g := e.ArgmaxImpactP(filters, filters, procs)
				if v != wantV || g != wantG {
					t.Fatalf("seed %d procs %d: ArgmaxImpactP (%d,%v), serial (%d,%v)", seed, procs, v, g, wantV, wantG)
				}
			}
			if wantV < 0 {
				break
			}
			filters[wantV] = true
		}
	}
}

// TestBigParallelPassesBitIdentical checks the exact engine's
// level-parallel passes: ArgmaxImpactP and ImpactsP must reproduce the
// serial big-integer results exactly (same filters chosen, same float
// projections) across worker counts and evolving filter sets. Deep graphs
// make the path counts overflow float64 precision, so this also exercises
// selections only exact arithmetic gets right.
func TestBigParallelPassesBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		m := randomDAGModel(t, 300, 0.04, seed)
		e := NewBig(m)
		filters := make([]bool, m.N())
		for round := 0; round < 5; round++ {
			wantGains := e.Impacts(filters)
			wantV, wantG := e.ArgmaxImpact(filters, filters)
			for _, procs := range []int{1, 2, 4, runtime.GOMAXPROCS(0) + 3} {
				gains := e.ImpactsP(filters, procs)
				for v := range gains {
					if gains[v] != wantGains[v] {
						t.Fatalf("seed %d procs %d: ImpactsP[%d] = %v, serial %v", seed, procs, v, gains[v], wantGains[v])
					}
				}
				v, g := e.ArgmaxImpactP(filters, filters, procs)
				if v != wantV || g != wantG {
					t.Fatalf("seed %d procs %d: ArgmaxImpactP (%d,%v), serial (%d,%v)", seed, procs, v, g, wantV, wantG)
				}
			}
			if wantV < 0 {
				break
			}
			filters[wantV] = true
		}
	}
}

// TestBigParallelExactIntegers pins the parallel exact pass at the integer
// level (not just the float projection): rec, emit and suffix from the
// sharded passes must Cmp-equal the serial ones on a graph deep enough
// that float64 would round.
func TestBigParallelExactIntegers(t *testing.T) {
	m := randomDAGModel(t, 400, 0.05, 7)
	e := NewBig(m)
	filters := make([]bool, m.N())
	for v := 0; v < m.N(); v += 9 {
		if !m.IsSource(v) {
			filters[v] = true
		}
	}
	serialRec, serialEmit := e.forwardBig(filters)
	serialSuf := e.suffixBig(filters)
	for _, procs := range []int{2, 5} {
		rec, emit := e.forwardBigP(filters, procs)
		suf := e.suffixBigP(filters, procs)
		for v := range rec {
			if rec[v].Cmp(serialRec[v]) != 0 || emit[v].Cmp(serialEmit[v]) != 0 || suf[v].Cmp(serialSuf[v]) != 0 {
				t.Fatalf("procs %d node %d: parallel (%v,%v,%v) != serial (%v,%v,%v)",
					procs, v, rec[v], emit[v], suf[v], serialRec[v], serialEmit[v], serialSuf[v])
			}
		}
	}
}

// TestIncrementalClone checks an Incremental clone evolves independently.
func TestIncrementalClone(t *testing.T) {
	m := randomDAGModel(t, 80, 0.08, 3)
	d := staticDyn{m}
	e := NewIncremental(d, m.Sources(), nil)
	v, _ := e.ArgmaxGain()
	if v < 0 {
		t.Skip("degenerate graph: no positive gain")
	}
	c := e.Clone()
	c.SetFilter(v, true)
	if !c.IsFilter(v) || e.IsFilter(v) {
		t.Fatalf("clone filter state leaked into original")
	}
	if e.Phi() == c.Phi() {
		t.Fatalf("filter at %d did not change clone Phi", v)
	}
}

// staticDyn adapts an immutable Model to the DynDigraph view.
type staticDyn struct{ m *Model }

func (s staticDyn) N() int          { return s.m.N() }
func (s staticDyn) Out(v int) []int { return s.m.Graph().Out(v) }
func (s staticDyn) In(v int) []int  { return s.m.Graph().In(v) }
func (s staticDyn) OrdOf(v int) int {
	for i, u := range s.m.Topo() {
		if u == v {
			return i
		}
	}
	return -1
}
