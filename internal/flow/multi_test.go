package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestMultiSingleItemEquivalence(t *testing.T) {
	// One item with rate 1 must match the single-item engine exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 18, 0.3)
		src := g.Sources()[0]
		single := NewFloat(MustModel(g, nil))
		multi, err := NewMulti(g, []Item{{Name: "only", Source: src}})
		if err != nil {
			t.Logf("NewMulti: %v", err)
			return false
		}
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = rng.Float64() < 0.3
		}
		if math.Abs(single.Phi(filters)-multi.Phi(filters)) > 1e-9 {
			return false
		}
		si, mi := single.Impacts(filters), multi.Impacts(filters)
		for v := range si {
			if math.Abs(si[v]-mi[v]) > 1e-9*(1+si[v]) {
				return false
			}
		}
		return math.Abs(single.MaxF()-multi.MaxF()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultiRateScaling(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	one, err := NewMulti(g, []Item{{Source: 0, Rate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	five, err := NewMulti(g, []Item{{Source: 0, Rate: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(five.Phi(nil)-5*one.Phi(nil)) > 1e-9 {
		t.Errorf("rate 5: Φ = %v, want %v", five.Phi(nil), 5*one.Phi(nil))
	}
	// Rate ≤ 0 defaults to 1.
	def, err := NewMulti(g, []Item{{Source: 0, Rate: -3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(def.Phi(nil)-one.Phi(nil)) > 1e-9 {
		t.Errorf("defaulted rate: Φ = %v, want %v", def.Phi(nil), one.Phi(nil))
	}
}

func TestMultiItemAccounting(t *testing.T) {
	// Two bloggers who follow each other's relay chains:
	//   a → m, b → m, m → t1, m → t2
	// Item A from a, item B from b. Without filters, m receives one copy
	// of each (Φ_A: m 1, t 2 → 3; same for B; total 6). m is the only
	// useful filter candidate... with no duplicates per item, filtering
	// changes nothing (each item reaches m once). Now make item A arrive
	// twice at m via a second path a → x → m.
	g := graph.MustFromEdges(6, [][2]int{
		{0, 5}, {5, 2}, {0, 2}, // a → x → m, a → m
		{1, 2},         // b → m
		{2, 3}, {2, 4}, // m → t1, t2
	})
	me, err := NewMulti(g, []Item{
		{Name: "A", Source: 0},
		{Name: "B", Source: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Item A: x 1, m 2, t 4 → 7. Item B: m 1, t 2 → 3. Total 10.
	if phi := me.Phi(nil); phi != 10 {
		t.Fatalf("Φ = %v, want 10", phi)
	}
	if phiA := me.PhiOf(0, nil); phiA != 7 {
		t.Errorf("Φ_A = %v, want 7", phiA)
	}
	// Filter at m: item A's t-deliveries halve (m emits 1): A = 1+2+2 = 5;
	// B unchanged (m received B once). Total 8, gain 2.
	fm := MaskOf(g.N(), []int{2})
	if phi := me.Phi(fm); phi != 8 {
		t.Errorf("Φ({m}) = %v, want 8", phi)
	}
	gains := me.Impacts(nil)
	if gains[2] != 2 {
		t.Errorf("gain at m = %v, want 2", gains[2])
	}
	v, gain := me.ArgmaxImpact(nil, nil)
	if v != 2 || gain != 2 {
		t.Errorf("argmax = (%d, %v), want (2, 2)", v, gain)
	}
}

func TestMultiSourceWithInEdgesIsFilterCandidate(t *testing.T) {
	// Blogger b both creates item B and relays item A that reaches it
	// twice. In the multi-item model b may carry a filter (for item A),
	// which the single-item model's source validation would forbid.
	//   a → p, a → q, p → b, q → b, b → t
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	me, err := NewMulti(g, []Item{
		{Name: "A", Source: 0},
		{Name: "B", Source: 3}, // b = node 3, in-degree 2
	})
	if err != nil {
		t.Fatal(err)
	}
	// Item A: p1 + q1 + b2 + t2 = 6; item B: t 1. Total 7.
	if phi := me.Phi(nil); phi != 7 {
		t.Fatalf("Φ = %v, want 7", phi)
	}
	// Filter at b: item A's t-delivery drops to 1 → A = 5; B unaffected.
	gains := me.Impacts(nil)
	if gains[3] != 1 {
		t.Errorf("gain at b = %v, want 1 (b filters item A)", gains[3])
	}
}

func TestMultiImpactIsMarginalGain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 15, 0.3)
		// Two items from random nodes (in-edges allowed), random rates.
		me, err := NewMulti(g, []Item{
			{Source: rng.Intn(g.N()), Rate: 1 + rng.Float64()*3},
			{Source: rng.Intn(g.N()), Rate: 1 + rng.Float64()*3},
		})
		if err != nil {
			return false
		}
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = rng.Float64() < 0.2
		}
		gains := me.Impacts(filters)
		base := me.F(filters)
		for v := 0; v < g.N(); v++ {
			if filters[v] {
				continue
			}
			filters[v] = true
			want := me.F(filters) - base
			filters[v] = false
			// Source nodes of the base model carry zero gain by fiat;
			// their true gain is also zero (they receive nothing).
			if math.Abs(gains[v]-want) > 1e-6*(1+math.Abs(want)) {
				t.Logf("seed %d node %d: gain %v want %v", seed, v, gains[v], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultiValidation(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if _, err := NewMulti(g, nil); err == nil {
		t.Error("empty item list accepted")
	}
	if _, err := NewMulti(g, []Item{{Source: 9}}); err == nil {
		t.Error("out-of-range source accepted")
	}
	cyc := graph.MustFromEdges(2, [][2]int{{0, 1}, {1, 0}})
	if _, err := NewMulti(cyc, []Item{{Source: 0}}); err != ErrNotDAG {
		t.Errorf("cyclic graph: err = %v, want ErrNotDAG", err)
	}
}

func TestMultiFRWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomSourcedDAG(rng, 40, 0.15)
	me, err := NewMulti(g, []Item{
		{Source: 0, Rate: 1},
		{Source: 5, Rate: 2},
		{Source: 11, Rate: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	filters := make([]bool, g.N())
	for v := 0; v < g.N(); v += 3 {
		filters[v] = true
	}
	fr := FR(me, filters)
	if fr < 0 || fr > 1 {
		t.Errorf("FR = %v", fr)
	}
	if fr2 := FR(me, AllFilters(me.Model())); fr2 < fr-1e-9 {
		t.Errorf("all-filters FR %v below partial %v", fr2, fr)
	}
}
