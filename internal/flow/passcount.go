package flow

import "sync/atomic"

// passCount aggregates topological-pass executions for one engine and
// every clone derived from it. It is a shared pointer: candidate-shard
// clones created by core.Place accumulate into their root's counters, so
// the total reflects the placement's real pass workload no matter how
// the work was sharded. Counts are recorded around whole passes — never
// inside forwardRange/suffixRange or the per-node big kernels — so the
// bit-identical hot paths stay untouched.
type passCount struct {
	fwd atomic.Int64
	suf atomic.Int64
}

// PassCounter is implemented by evaluators that count the topological
// passes they execute. The counts are cumulative over the engine's
// lifetime (including the Φ(∅)/F(V) invariant passes run at
// construction); callers interested in one placement's cost take a
// before/after delta, as core.Place does for Result.Passes.
//
// Unlike OracleStats, pass counts reflect actual execution: a parallel
// CELF run's speculative batch evaluations execute real passes even when
// the serial-replay commit discards them, so deltas may legitimately
// differ across Parallelism settings.
type PassCounter interface {
	// Passes returns the cumulative forward and suffix pass counts.
	Passes() (forward, suffix int64)
}
