package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartialExtremes(t *testing.T) {
	// leak = 0 must agree with the perfect-filter engine; leak = 1 must be
	// a no-op.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 18, 0.3)
		e := NewFloat(MustModel(g, nil))
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = rng.Float64() < 0.3
		}
		if math.Abs(e.PhiPartial(filters, 0)-e.Phi(filters)) > 1e-9 {
			t.Logf("seed %d: leak 0 mismatch", seed)
			return false
		}
		if math.Abs(e.PhiPartial(filters, 1)-e.Phi(nil)) > 1e-9 {
			t.Logf("seed %d: leak 1 not a no-op", seed)
			return false
		}
		gi0 := e.ImpactsPartial(filters, 0)
		gi := e.Impacts(filters)
		for v := range gi {
			if math.Abs(gi0[v]-gi[v]) > 1e-9*(1+gi[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartialImpactIsMarginalGain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 14, 0.3)
		e := NewFloat(MustModel(g, nil))
		m := e.Model()
		leak := 0.3
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = !m.IsSource(v) && rng.Float64() < 0.2
		}
		gains := e.ImpactsPartial(filters, leak)
		base := e.PhiPartial(filters, leak)
		for v := 0; v < g.N(); v++ {
			if filters[v] || m.IsSource(v) {
				continue
			}
			filters[v] = true
			want := base - e.PhiPartial(filters, leak)
			filters[v] = false
			if math.Abs(gains[v]-want) > 1e-6*(1+math.Abs(want)) {
				t.Logf("seed %d node %d: gain %v want %v", seed, v, gains[v], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartialMonotoneInLeak(t *testing.T) {
	// More leakage ⇒ more copies delivered.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 16, 0.3)
		e := NewFloat(MustModel(g, nil))
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = rng.Float64() < 0.4
		}
		prev := -1.0
		for _, leak := range []float64{0, 0.25, 0.5, 0.75, 1} {
			phi := e.PhiPartial(filters, leak)
			if phi < prev-1e-9 {
				t.Logf("seed %d: Φ decreased as leak grew", seed)
				return false
			}
			prev = phi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartialFigure1(t *testing.T) {
	// Filter at z2 with leak 0.5: z2 emits 1 + 0.5·(2−1) = 1.5, so w
	// receives 1 + 1.5 + 1 = 3.5 and Φ = 6 + 2 + 3.5 − ... total:
	// x1 + y1 + z1:1 + z2:2 + z3:1 + w:3.5 = 9.5.
	g := fig1(t)
	e := NewFloat(MustModel(g, nil))
	fz2 := MaskOf(g.N(), []int{4})
	if phi := e.PhiPartial(fz2, 0.5); math.Abs(phi-9.5) > 1e-12 {
		t.Errorf("Φ = %v, want 9.5", phi)
	}
	// FRPartial: MaxF = 1 (perfect), achieved reduction 0.5 → FR 0.5.
	if fr := e.FRPartial(fz2, 0.5); math.Abs(fr-0.5) > 1e-12 {
		t.Errorf("FRPartial = %v, want 0.5", fr)
	}
}

func TestPartialBadLeakPanics(t *testing.T) {
	g := fig1(t)
	e := NewFloat(MustModel(g, nil))
	defer func() {
		if recover() == nil {
			t.Error("leak > 1 did not panic")
		}
	}()
	e.PhiPartial(nil, 1.5)
}
