package flow

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// mutableDAG is a minimal DynDigraph for tests: adjacency slices plus a
// topological order maintained by full recomputation (the tests exercise
// the engine, not the overlay; dyn has its own Pearce–Kelly tests).
type mutableDAG struct {
	out, in [][]int
	ord     []int
}

func newMutableDAG(g *graph.Digraph) *mutableDAG {
	rank, err := g.TopoRank()
	if err != nil {
		panic(err)
	}
	d := &mutableDAG{out: make([][]int, g.N()), in: make([][]int, g.N()), ord: rank}
	for v := 0; v < g.N(); v++ {
		d.out[v] = append([]int(nil), g.Out(v)...)
		d.in[v] = append([]int(nil), g.In(v)...)
	}
	return d
}

func (d *mutableDAG) N() int          { return len(d.ord) }
func (d *mutableDAG) Out(v int) []int { return d.out[v] }
func (d *mutableDAG) In(v int) []int  { return d.in[v] }
func (d *mutableDAG) OrdOf(v int) int { return d.ord[v] }

func (d *mutableDAG) addEdge(u, v int) {
	d.out[u] = append(d.out[u], v)
	d.in[v] = append(d.in[v], u)
	d.reorder()
}

func (d *mutableDAG) removeEdge(u, v int) {
	drop := func(s []int, x int) []int {
		for i, w := range s {
			if w == x {
				return append(s[:i], s[i+1:]...)
			}
		}
		panic("edge missing")
	}
	d.out[u] = drop(d.out[u], v)
	d.in[v] = drop(d.in[v], u)
}

func (d *mutableDAG) hasEdge(u, v int) bool {
	for _, w := range d.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

func (d *mutableDAG) hasPath(u, v int) bool {
	if u == v {
		return true
	}
	seen := map[int]bool{u: true}
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range d.out[x] {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// reorder recomputes the topological order from scratch (Kahn).
func (d *mutableDAG) reorder() {
	n := len(d.ord)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(d.in[v])
	}
	var ready []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	pos := 0
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		d.ord[v] = pos
		pos++
		for _, w := range d.out[v] {
			if indeg[w]--; indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if pos != n {
		panic("mutableDAG became cyclic")
	}
}

// snapshot materializes the current adjacency for the reference engine.
func (d *mutableDAG) snapshot() *graph.Digraph {
	b := graph.NewBuilder(len(d.ord))
	for u := range d.out {
		for _, v := range d.out[u] {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// assertAgrees compares the incremental state against a fresh FloatEngine
// over a snapshot of the same graph and filter set.
func assertAgrees(t *testing.T, inc *Incremental, d *mutableDAG, sources []int, filters []bool) {
	t.Helper()
	m, err := NewModel(d.snapshot(), sources)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewFloat(m)
	rec := ref.Received(filters)
	suf := ref.Suffix(filters)
	const tol = 1e-9
	for v := 0; v < d.N(); v++ {
		if math.Abs(inc.Rec(v)-rec[v]) > tol*(1+math.Abs(rec[v])) {
			t.Fatalf("rec[%d] = %v, reference %v", v, inc.Rec(v), rec[v])
		}
		if math.Abs(inc.Suf(v)-suf[v]) > tol*(1+math.Abs(suf[v])) {
			t.Fatalf("suf[%d] = %v, reference %v", v, inc.Suf(v), suf[v])
		}
	}
	if phi := ref.Phi(filters); math.Abs(inc.Phi()-phi) > tol*(1+math.Abs(phi)) {
		t.Fatalf("Phi = %v, reference %v", inc.Phi(), phi)
	}
}

func TestIncrementalMatchesFloatUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		// A random layered-ish DAG with a super-source shape: node 0
		// reaches everything initially.
		n := 120
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(rng.Intn(v), v)
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u < v {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		d := newMutableDAG(g)
		sources := []int{0}
		inc := NewIncremental(d, sources, nil)
		filters := make([]bool, n)

		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0: // toggle a filter
				v := 1 + rng.Intn(n-1)
				filters[v] = !filters[v]
				inc.SetFilter(v, filters[v])
			case 1: // remove a random edge
				u := rng.Intn(n)
				if len(d.out[u]) == 0 {
					continue
				}
				v := d.out[u][rng.Intn(len(d.out[u]))]
				if len(d.in[v]) == 1 {
					continue // keep reachability from the source
				}
				d.removeEdge(u, v)
				inc.Update([]int{v}, []int{u})
			default: // add a random forward edge
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v || v == 0 || d.hasEdge(u, v) || d.hasPath(v, u) {
					continue
				}
				d.addEdge(u, v)
				inc.Update([]int{v}, []int{u})
			}
			if step%23 == 0 {
				assertAgrees(t, inc, d, sources, filters)
			}
		}
		assertAgrees(t, inc, d, sources, filters)
		inc.check(1e-9)
	}
}

func TestIncrementalDirtyRegionIsLocal(t *testing.T) {
	// A long chain with a side branch: mutating near the sink must not
	// touch the whole graph.
	n := 1000
	b := graph.NewBuilder(n)
	for v := 0; v < n-1; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.MustBuild()
	d := newMutableDAG(g)
	inc := NewIncremental(d, []int{0}, nil)
	before := inc.Stats()

	// An edge (n−5, n−2) near the sink: the forward cone is the last few
	// nodes, the backward cone ends immediately because suffix values
	// upstream do change... measure and bound rather than guess.
	u, v := n-5, n-2
	d.addEdge(u, v)
	inc.Update([]int{v}, []int{u})
	after := inc.Stats()
	fwd := after.ForwardVisits - before.ForwardVisits
	if fwd > 10 {
		t.Errorf("forward visits = %d for a sink-local mutation, want ≤ 10", fwd)
	}
	assertAgrees(t, inc, d, []int{0}, nil)
}

func TestIncrementalGrow(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	d := newMutableDAG(g)
	inc := NewIncremental(d, []int{0}, nil)

	// Grow the view by two nodes and wire 2→3→4.
	d.out = append(d.out, nil, nil)
	d.in = append(d.in, nil, nil)
	d.ord = append(d.ord, 3, 4)
	inc.Grow(false)
	d.addEdge(2, 3)
	d.addEdge(3, 4)
	inc.Update([]int{3, 4}, []int{2, 3})
	assertAgrees(t, inc, d, []int{0}, nil)
	if inc.Rec(4) != 1 {
		t.Errorf("rec[4] = %v, want 1", inc.Rec(4))
	}
}

func TestIncrementalGainMatchesImpacts(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	d := newMutableDAG(g)
	inc := NewIncremental(d, []int{0}, nil)
	m, err := NewModel(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := NewFloat(m).Impacts(nil)
	for v := 0; v < g.N(); v++ {
		if math.Abs(inc.Gain(v)-want[v]) > 1e-12 {
			t.Errorf("Gain(%d) = %v, want %v", v, inc.Gain(v), want[v])
		}
	}
	if v, gain := inc.ArgmaxGain(); v != 3 || gain != want[3] {
		t.Errorf("ArgmaxGain = (%d, %v), want (3, %v)", v, gain, want[3])
	}
}
