package flow

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/graph"
)

func TestMonteCarloDeterministicMatchesEngine(t *testing.T) {
	g := fig1(t)
	m := MustModel(g, nil)
	ev := NewFloat(m)
	for _, filters := range [][]bool{nil, MaskOf(g.N(), []int{4})} {
		res, err := MonteCarlo(m, filters, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs != 1 || res.StdErr != 0 {
			t.Errorf("deterministic model should need one run: %+v", res)
		}
		if res.Mean != ev.Phi(filters) {
			t.Errorf("MC %v != engine %v", res.Mean, ev.Phi(filters))
		}
	}
}

func TestMonteCarloUnfilteredMatchesExpectation(t *testing.T) {
	// Without filters the process is linear, so the analytic expectation
	// is exact; the MC mean must land within a few standard errors.
	g := fig1(t)
	m := MustModel(g, nil).WithWeights(func(u, v int) float64 { return 0.6 })
	ev := NewFloat(m)
	res, err := MonteCarlo(m, nil, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := ev.Phi(nil)
	if math.Abs(res.Mean-want) > 5*res.StdErr+1e-9 {
		t.Errorf("MC mean %v ± %v vs analytic %v", res.Mean, res.StdErr, want)
	}
	if res.StdErr <= 0 {
		t.Error("no spread on a random process")
	}
}

func TestMonteCarloJensenGap(t *testing.T) {
	// With a filter, the analytic engine uses min(1, E[rec]) which
	// overestimates the true E[min-like filtered emission]... the true
	// filtered Φ can only be ≤ the unfiltered Φ, and the analytic
	// filtered value sits between them. Verify the ordering
	// MC(filtered) ≤ analytic(unfiltered) and that filtering reduces the
	// MC mean.
	b := graph.NewBuilder(0)
	s := b.AddNode()
	x, y := b.AddNode(), b.AddNode()
	mid := b.AddNode()
	b.AddEdge(s, x)
	b.AddEdge(s, y)
	b.AddEdge(x, mid)
	b.AddEdge(y, mid)
	for i := 0; i < 6; i++ {
		leaf := b.AddNode()
		b.AddEdge(mid, leaf)
	}
	g := b.MustBuild()
	m := MustModel(g, []int{s}).WithWeights(func(u, v int) float64 { return 0.8 })
	filters := MaskOf(g.N(), []int{mid})

	unf, err := MonteCarlo(m, nil, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	fil, err := MonteCarlo(m, filters, 3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fil.Mean >= unf.Mean {
		t.Errorf("filtering did not reduce MC Φ: %v vs %v", fil.Mean, unf.Mean)
	}
	// The analytic filtered estimate uses emit = min(1, E[rec]) = 1 at
	// mid (E[rec] = 1.28); the truth is E[min(1, rec)] = P(rec ≥ 1) =
	// 1 − (1−0.64)² ... strictly less than 1, so the analytic engine
	// *underestimates* the filtered savings (overestimates emissions
	// downstream? it sets emission 1 ≥ E[first-copy forwardings]).
	ana := NewFloat(m).Phi(filters)
	if fil.Mean > ana+5*fil.StdErr {
		t.Errorf("true filtered Φ %v exceeds analytic bound %v", fil.Mean, ana)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}})
	m := MustModel(g, nil)
	if _, err := MonteCarlo(m, nil, 0, 1); err == nil {
		t.Error("runs=0 accepted")
	}
}

func TestMonteCarloReproducible(t *testing.T) {
	g := fig1(t)
	m := MustModel(g, nil).WithWeights(func(u, v int) float64 { return 0.5 })
	a, err := MonteCarlo(m, nil, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(m, nil, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.StdErr != b.StdErr {
		t.Error("same seed produced different estimates")
	}
}

// TestMonteCarloParallelDeterminism: the shard layout depends only on
// (runs, seed), so the estimate is bit-for-bit identical whether shards
// run inline or across the scheduler at any parallelism — including a
// run count that does not divide evenly into shards.
func TestMonteCarloParallelDeterminism(t *testing.T) {
	g := fig1(t)
	m := MustModel(g, nil).WithWeights(func(u, v int) float64 { return 0.5 })
	for _, runs := range []int{1, 16, 50, 200} {
		serial, err := MonteCarloP(m, nil, runs, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Runs != runs {
			t.Errorf("runs=%d: reported Runs = %d", runs, serial.Runs)
		}
		for _, procs := range []int{4, runtime.GOMAXPROCS(0)} {
			par, err := MonteCarloP(m, nil, runs, 42, procs)
			if err != nil {
				t.Fatal(err)
			}
			if par != serial {
				t.Errorf("runs=%d P=%d: %+v, serial %+v", runs, procs, par, serial)
			}
		}
		// The default entry point uses the scheduler; same contract.
		def, err := MonteCarlo(m, nil, runs, 42)
		if err != nil {
			t.Fatal(err)
		}
		if def != serial {
			t.Errorf("runs=%d: MonteCarlo %+v, MonteCarloP(…,1) %+v", runs, def, serial)
		}
	}
}
