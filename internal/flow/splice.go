package flow

import (
	"slices"

	"repro/internal/sched"
)

// SpliceOptions tunes a Splicer's cost threshold.
type SpliceOptions struct {
	// MaxConeFrac is the fraction of the graph a repair may touch —
	// counted both as incremental depth-sweep visits and as the
	// re-levelled position window — before Apply abandons the splice and
	// rebuilds the plan from scratch (a splice touching most of the graph
	// does strictly more work than a rebuild: it pays the same traversal
	// plus the bookkeeping). 0 means always rebuild; default 0.25.
	MaxConeFrac float64
}

// defaultMaxConeFrac is the Apply fallback threshold when the caller
// leaves SpliceOptions.MaxConeFrac unset.
const defaultMaxConeFrac = 0.25

// spliceBudgetFloor keeps the cone budget meaningful on small graphs,
// where a handful of visits would otherwise exceed frac*n and force a
// rebuild that costs about the same as the splice it replaced.
const spliceBudgetFloor = 64

func (o SpliceOptions) withDefaults() SpliceOptions {
	if o.MaxConeFrac == 0 {
		o.MaxConeFrac = defaultMaxConeFrac
	}
	if o.MaxConeFrac < 0 {
		o.MaxConeFrac = 0
	}
	return o
}

// SpliceStats describes what one Splicer.Apply call did.
type SpliceStats struct {
	// Spliced is true when the plan was repaired incrementally; false
	// when Apply fell back to a full rebuild (Reason says why).
	Spliced bool   `json:"spliced"`
	Reason  string `json:"reason,omitempty"`
	// NodesAdded is the batch's node growth.
	NodesAdded int `json:"nodes_added,omitempty"`
	// DepthVisits counts nodes visited by the incremental depth sweep,
	// Moved the nodes whose level actually changed, Window the plan
	// positions re-written, and RowsRebuilt the CSR rows rebuilt entry by
	// entry (the rest are copied or shared). On a rebuild all four are
	// set to whole-graph figures.
	DepthVisits int `json:"depth_visits"`
	Moved       int `json:"moved"`
	Window      int `json:"window"`
	RowsRebuilt int `json:"rows_rebuilt"`
}

// Work returns the node-visit cost of the repair — the quantity tenant
// accounting charges for plan maintenance.
func (st SpliceStats) Work() int64 {
	return int64(st.DepthVisits) + int64(st.Window) + int64(st.RowsRebuilt)
}

// Splicer incrementally repairs a Plan as its graph mutates, so dynamic
// workloads keep running on the flat plan kernels without paying a full
// O(V+E) buildPlan per mutation batch. Given the Pearce–Kelly dirty cone
// of a committed batch (dyn.ApplyResult's DirtyFwd/DirtyBwd), Apply:
//
//   - repairs the forward-depth labelling inside the affected cone only
//     (an ord-heap sweep, exactly like Incremental.Update);
//   - re-levels just the window of levels that gained or lost members,
//     merging unchanged level runs with the moved nodes to preserve the
//     canonical ascending-id within-level order;
//   - splices the position-indexed CSR: structurally changed rows are
//     rebuilt from the view, rows referencing repositioned nodes are
//     re-mapped, and everything else is block-copied with a constant
//     position shift for the tail;
//   - recomputes chunk tables for the window and shares or shifts the
//     rest.
//
// The result is a FRESH Plan — in-flight evaluations over the old plan
// stay valid — that is array-for-array identical to buildPlan run from
// scratch on the mutated graph (the within-level order is canonical, so
// the spliced and rebuilt plans agree exactly; splice_test pins this).
// Both plans share one scratch arena, so the pooled buffers stay warm
// across mutations and grow in place when AddNodes extends the graph.
//
// A Splicer supports only deterministic (unweighted) plans — the only
// kind a dynamic overlay serves. It is not safe for concurrent use;
// callers serialize Apply with plan consumers they hand the result to
// (the server does this under the per-graph mutation lock).
type Splicer struct {
	view DynDigraph
	plan *Plan
	opts SpliceOptions

	// depth is the maintained forward depth of every node — the splice
	// counterpart of Incremental's rec/emit state.
	depth []int32
	inQ   []bool // ord-heap membership scratch

	// Row-classification scratch, cleared after every Apply.
	inStruct, outStruct []bool
	inDirty, outDirty   []bool

	// Reusable per-call buffers.
	movedV, movedOld []int32
	rowBuf           []int32
	ordBuf           []int
	listBuf          []int32 // nodes whose dirty marks need clearing

	splices, rebuilds int64
	last              SpliceStats
}

// NewSplicer builds a splicer over the mutable view. When adopt is
// non-nil, unweighted and sized to the view's current node count, it
// becomes the starting plan (the registry hands over the model's already
// built plan this way, skipping a redundant build); otherwise the
// starting plan is built from the view.
func NewSplicer(view DynDigraph, adopt *Plan, opts SpliceOptions) *Splicer {
	s := &Splicer{view: view, opts: opts.withDefaults()}
	if adopt != nil && !adopt.weighted && adopt.mulW == nil && adopt.n == view.N() {
		s.plan = adopt
		s.grow(adopt.n)
		for l := 0; l < adopt.numLevels(); l++ {
			lo, hi := adopt.level(l)
			for i := lo; i < hi; i++ {
				s.depth[adopt.perm[i]] = int32(l)
			}
		}
		return s
	}
	s.plan = s.rebuildPlan()
	return s
}

// Plan returns the current plan. It is immutable; Apply swaps in a new
// one rather than mutating it.
func (s *Splicer) Plan() *Plan { return s.plan }

// Counters returns the cumulative number of incremental splices and full
// rebuilds performed.
func (s *Splicer) Counters() (splices, rebuilds int64) {
	return s.splices, s.rebuilds
}

// Last returns the stats of the most recent Apply or Rebuild.
func (s *Splicer) Last() SpliceStats { return s.last }

// Rebuild forces a from-scratch plan build against the view's current
// state — the resync path when the view mutated without Apply being told
// (dyn.Maintainer uses it for missed batches).
func (s *Splicer) Rebuild() *Plan {
	p := s.fullRebuild("forced")
	return p
}

// grow extends the per-node state to n entries.
func (s *Splicer) grow(n int) {
	for len(s.depth) < n {
		s.depth = append(s.depth, 0)
		s.inQ = append(s.inQ, false)
		s.inStruct = append(s.inStruct, false)
		s.outStruct = append(s.outStruct, false)
		s.inDirty = append(s.inDirty, false)
		s.outDirty = append(s.outDirty, false)
	}
}

// fullRebuild rebuilds the plan from the view, refreshing the maintained
// depths, and records the stats/counters for a non-spliced repair.
func (s *Splicer) fullRebuild(reason string) *Plan {
	p := s.rebuildPlan()
	n := p.n
	s.plan = p
	s.rebuilds++
	s.last = SpliceStats{
		Reason:      reason,
		DepthVisits: n,
		Moved:       n,
		Window:      n,
		RowsRebuilt: n,
	}
	return p
}

// Apply repairs the plan after a committed mutation batch. dirtyFwd must
// hold the heads and dirtyBwd the tails of every added or removed edge
// (dyn.ApplyResult supplies exactly these), and nodesAdded the batch's
// node growth; the view must already reflect the batch. It returns the
// repaired plan — a fresh immutable Plan sharing the old plan's scratch
// arena — plus what the repair did. When the affected cone exceeds
// SpliceOptions.MaxConeFrac of the graph, it falls back to a full
// rebuild (identical result, linear cost).
func (s *Splicer) Apply(dirtyFwd, dirtyBwd []int, nodesAdded int) (*Plan, SpliceStats) {
	p := s.plan
	n := s.view.N()
	oldN := p.n
	if oldN+nodesAdded != n {
		// The view moved without us; resync.
		return s.fullRebuild("desync"), s.last
	}
	s.grow(n)
	budget := int(s.opts.MaxConeFrac * float64(n))
	if budget < spliceBudgetFloor {
		budget = spliceBudgetFloor
	}
	if s.opts.MaxConeFrac <= 0 {
		budget = -1 // always rebuild
	}

	// ---- 1. Incremental depth repair over the dirty cone. Seeds are the
	// heads of changed edges plus every new node; the ascending-ord heap
	// guarantees a node is recomputed only after all its in-neighbors
	// have settled, exactly like Incremental.Update's forward sweep.
	st := SpliceStats{NodesAdded: nodesAdded}
	movedV, movedOld := s.movedV[:0], s.movedOld[:0]
	var h ordHeap
	h.less = func(a, b int) bool { return s.view.OrdOf(a) < s.view.OrdOf(b) }
	for v := oldN; v < n; v++ {
		s.depth[v] = -1 // "no old level": any computed depth counts as a move
		h.pushOnce(v, s.inQ)
	}
	for _, v := range dirtyFwd {
		h.pushOnce(v, s.inQ)
	}
	minL, maxL := int32(1)<<30, int32(-1)
	for h.len() > 0 {
		v := h.pop()
		s.inQ[v] = false
		st.DepthVisits++
		if budget >= 0 && st.DepthVisits > budget {
			for _, w := range h.a {
				s.inQ[w] = false
			}
			s.movedV, s.movedOld = movedV, movedOld
			return s.fullRebuild("cone-budget"), s.last
		}
		var d int32
		for _, q := range s.view.In(v) {
			if dq := s.depth[q] + 1; dq > d {
				d = dq
			}
		}
		old := s.depth[v]
		if d == old {
			continue
		}
		s.depth[v] = d
		movedV = append(movedV, int32(v))
		movedOld = append(movedOld, old)
		if old >= 0 {
			minL = min(minL, old)
			maxL = max(maxL, old)
		}
		minL = min(minL, d)
		maxL = max(maxL, d)
		for _, c := range s.view.Out(v) {
			h.pushOnce(c, s.inQ)
		}
	}
	if budget < 0 {
		s.movedV, s.movedOld = movedV, movedOld
		return s.fullRebuild("cone-budget"), s.last
	}
	s.movedV, s.movedOld = movedV, movedOld
	st.Moved = len(movedV)

	np := &Plan{n: n, chunkHint: p.chunkHint}

	// ---- 2. Re-level the affected window [minL, maxL]: the only levels
	// whose membership can have changed. Everything before the window
	// keeps its positions; everything after shifts uniformly by the node
	// growth (new nodes always land inside the window by construction).
	oldLevels := p.numLevels()
	var winStart, oldWinEnd, newWinEnd int
	delta := nodesAdded
	if st.Moved == 0 {
		// Pure CSR repair: the level structure is untouched (edge churn
		// that changes no depth), so perm/pos/levels/chunks are shared
		// with the old plan outright.
		if delta != 0 {
			// Unreachable: a new node always registers as moved.
			return s.fullRebuild("desync"), s.last
		}
		winStart, oldWinEnd, newWinEnd = oldN, oldN, oldN
		np.perm, np.pos, np.levelOff, np.levelChunks = p.perm, p.pos, p.levelOff, p.levelChunks
		np.identity = p.identity
	} else {
		loL, hiL := int(minL), int(maxL)
		oldWinEndLevel := min(hiL+1, oldLevels)
		winStart = int(p.levelOff[min(loL, oldLevels)])
		oldWinEnd = int(p.levelOff[oldWinEndLevel])
		newWinEnd = n - (oldN - oldWinEnd)
		if newWinEnd-winStart > budget {
			return s.fullRebuild("window-budget"), s.last
		}

		// Window level sizes: old sizes, minus moved-out, plus moved-in.
		nw := hiL - loL + 1
		sz := make([]int32, nw)
		for l := loL; l <= hiL && l < oldLevels; l++ {
			sz[l-loL] = p.levelOff[l+1] - p.levelOff[l]
		}
		for i, v := range movedV {
			if movedOld[i] >= 0 {
				sz[int(movedOld[i])-loL]--
			}
			sz[int(s.depth[v])-loL]++
		}

		// New level count. Exact longest-path depths keep interior levels
		// dense (a node at depth d>0 always has an in-neighbor at d-1), so
		// empty levels can only appear at the very top of the window when
		// it reaches the old deepest level — trim them.
		newLevels := oldLevels
		if oldWinEndLevel == oldLevels {
			top := nw - 1
			for top >= 0 && sz[top] == 0 {
				top--
			}
			newLevels = loL + top + 1
		}

		np.levelOff = make([]int32, newLevels+1)
		copy(np.levelOff, p.levelOff[:min(loL, newLevels)+1])
		run := int32(winStart)
		for l := loL; l < newLevels; l++ {
			np.levelOff[l] = run
			if l-loL < nw {
				run += sz[l-loL]
			} else {
				run += p.levelOff[l+1] - p.levelOff[l]
			}
		}
		np.levelOff[newLevels] = int32(n)

		// Positions: head block-copied, tail shifted by delta, window
		// levels rebuilt by merging each level's surviving run (already in
		// ascending id order) with its sorted moved-in nodes.
		np.perm = make([]int32, n)
		np.pos = make([]int32, n)
		copy(np.perm[:winStart], p.perm[:winStart])
		copy(np.pos, p.pos[:oldN])
		copy(np.perm[newWinEnd:], p.perm[oldWinEnd:])
		if delta != 0 {
			for i := newWinEnd; i < n; i++ {
				np.pos[np.perm[i]] = int32(i)
			}
		}
		slices.SortFunc(movedV, func(a, b int32) int {
			if c := int(s.depth[a]) - int(s.depth[b]); c != 0 {
				return c
			}
			return int(a - b)
		})
		mi := 0
		out := int32(winStart)
		for l := loL; l <= hiL && l < newLevels; l++ {
			oj, ojEnd := int32(0), int32(0)
			if l < oldLevels {
				oj, ojEnd = p.levelOff[l], p.levelOff[l+1]
			}
			l32 := int32(l)
			for {
				// Advance past old members that moved out of this level.
				for oj < ojEnd && s.depth[p.perm[oj]] != l32 {
					oj++
				}
				hasOld := oj < ojEnd
				hasNew := mi < len(movedV) && s.depth[movedV[mi]] == l32
				var v int32
				switch {
				case hasOld && (!hasNew || p.perm[oj] < movedV[mi]):
					v = p.perm[oj]
					oj++
				case hasNew:
					v = movedV[mi]
					mi++
				default:
					v = -1
				}
				if v < 0 {
					break
				}
				np.perm[out] = v
				np.pos[v] = out
				out++
			}
		}
		if int(out) != newWinEnd || mi != len(movedV) {
			// A window inconsistency means the dirty cone we were given
			// was incomplete; a rebuild is always sound.
			return s.fullRebuild("desync"), s.last
		}
		np.checkIdentity()
	}
	st.Window = newWinEnd - winStart

	// ---- 3. Classify CSR rows. Structural rows (edge set changed):
	// in-rows of dirty heads, out-rows of dirty tails, both rows of new
	// nodes — rebuilt from the view. Value-dirty rows (edge set intact
	// but a referenced neighbor's position changed): neighbors of every
	// window node whose position moved — re-mapped id-wise. Everything
	// else: block-copied, with tail references shifted by delta.
	listBuf := s.listBuf[:0]
	mark := func(marks []bool, v int32) {
		if !marks[v] {
			marks[v] = true
			listBuf = append(listBuf, v)
		}
	}
	for _, v := range dirtyFwd {
		s.inStruct[v] = true
	}
	for _, v := range dirtyBwd {
		s.outStruct[v] = true
	}
	for v := oldN; v < n; v++ {
		s.inStruct[v], s.outStruct[v] = true, true
	}
	for i := winStart; i < newWinEnd; i++ {
		v := int(np.perm[i])
		if v < oldN && int(p.pos[v]) == i {
			continue
		}
		for _, c := range s.view.Out(v) {
			mark(s.inDirty, int32(c))
		}
		for _, q := range s.view.In(v) {
			mark(s.outDirty, int32(q))
		}
	}

	// Capacity hint for the new CSR. The edge-count delta comes entirely
	// from structural in-rows; mild over-counting (a new node that is
	// also a dirty head) only pads the allocation.
	mNew := len(p.inAdj)
	for _, v := range dirtyFwd {
		mNew += len(s.view.In(v)) - s.oldInDeg(v, oldN)
	}
	for v := oldN; v < n; v++ {
		mNew += len(s.view.In(v))
	}
	if mNew < 0 {
		mNew = 0
	}

	oldTail := int32(oldWinEnd)
	d32 := int32(delta)
	np.inOff, np.inAdj = s.spliceCSR(np, p.inOff, p.inAdj, s.inStruct, s.inDirty, s.view.In, mNew, oldTail, d32, winStart, newWinEnd, &st)
	np.outOff, np.outAdj = s.spliceCSR(np, p.outOff, p.outAdj, s.outStruct, s.outDirty, s.view.Out, mNew, oldTail, d32, winStart, newWinEnd, &st)

	// Clear the classification marks for the next Apply.
	for _, v := range dirtyFwd {
		s.inStruct[v] = false
	}
	for _, v := range dirtyBwd {
		s.outStruct[v] = false
	}
	for v := oldN; v < n; v++ {
		s.inStruct[v], s.outStruct[v] = false, false
	}
	for _, v := range listBuf {
		s.inDirty[v], s.outDirty[v] = false, false
	}
	s.listBuf = listBuf[:0]

	// ---- 4. Chunk tables: shared before the window, recomputed inside
	// it, shifted by delta after it. falseMask is shared when the node
	// count is unchanged.
	if st.Moved > 0 {
		newLevels := np.numLevels()
		np.levelChunks = make([][]int32, newLevels)
		for l := 0; l < newLevels; l++ {
			lo, hi := np.level(l)
			switch {
			case hi <= winStart:
				np.levelChunks[l] = p.levelChunks[l]
			case lo >= newWinEnd && delta == 0:
				np.levelChunks[l] = p.levelChunks[l]
			case lo >= newWinEnd:
				if old := p.levelChunks[l]; old != nil {
					nb := make([]int32, len(old))
					for i, b := range old {
						nb[i] = b + d32
					}
					np.levelChunks[l] = nb
				}
			default:
				np.levelChunks[l] = np.chunksFor(lo, hi)
			}
		}
	}
	if n == oldN {
		np.falseMask = p.falseMask
	} else {
		np.falseMask = make([]bool, n)
	}
	np.arena = p.arena

	st.Spliced = true
	s.plan = np
	s.splices++
	s.last = st
	return np, st
}

// oldInDeg returns v's in-degree in the old plan (0 for new nodes).
func (s *Splicer) oldInDeg(v, oldN int) int {
	if v >= oldN {
		return 0
	}
	i := s.plan.pos[v]
	return int(s.plan.inOff[i+1] - s.plan.inOff[i])
}

// spliceCSR assembles one side's position-indexed CSR for the new plan.
// Structural rows are rebuilt from the view with the ascending-original-id
// order restored by sorting; dirty rows keep their edge set but re-map
// every entry through the node's new position; clean rows are copied with
// references at or past the old tail shifted by delta. Outside the
// re-level window a clean row's new position equals its old one, so
// consecutive clean rows are flushed as one block copy of the old
// adjacency span instead of row-by-row appends — on a big graph with a
// small dirty cone that bulk path is nearly the entire CSR.
func (s *Splicer) spliceCSR(np *Plan, oldOff, oldAdj []int32, structMark, dirtyMark []bool,
	view func(int) []int, mCap int, oldTail, delta int32, winStart, newWinEnd int, st *SpliceStats) ([]int32, []int32) {
	p := s.plan
	n := np.n
	off := make([]int32, n+1)
	adj := make([]int32, 0, mCap)

	emitRow := func(i, v int) {
		off[i] = int32(len(adj))
		switch {
		case structMark[v]:
			st.RowsRebuilt++
			row := s.rowBuf[:0]
			for _, q := range view(v) {
				row = append(row, int32(q))
			}
			slices.Sort(row)
			s.rowBuf = row
			for _, q := range row {
				adj = append(adj, np.pos[q])
			}
		case dirtyMark[v]:
			st.RowsRebuilt++
			op := p.pos[v]
			for _, e := range oldAdj[oldOff[op]:oldOff[op+1]] {
				adj = append(adj, np.pos[p.perm[e]])
			}
		default:
			op := p.pos[v]
			row := oldAdj[oldOff[op]:oldOff[op+1]]
			if delta == 0 {
				adj = append(adj, row...)
			} else {
				for _, e := range row {
					if e >= oldTail {
						e += delta
					}
					adj = append(adj, e)
				}
			}
		}
	}

	// bulkTo emits positions [lo, hi) where every clean row's old position
	// equals its new one: marked rows flush individually, clean runs copy
	// as one span with a constant offset shift.
	bulkTo := func(lo, hi int) {
		runStart := lo
		flush := func(end int) {
			if runStart >= end {
				return
			}
			o0, o1 := oldOff[runStart], oldOff[end]
			base := int32(len(adj)) - o0
			adj = append(adj, oldAdj[o0:o1]...)
			for j := runStart; j < end; j++ {
				off[j] = oldOff[j] + base
			}
		}
		for i := lo; i < hi; i++ {
			v := int(np.perm[i])
			if structMark[v] || dirtyMark[v] {
				flush(i)
				emitRow(i, v)
				runStart = i + 1
			}
		}
		flush(hi)
	}

	if delta == 0 {
		bulkTo(0, winStart)
	} else {
		// Node growth shifts tail positions, and even head rows can
		// reference them (out-edges cross the window), so every copied
		// entry needs the >= oldTail check — no block copies.
		for i := 0; i < winStart; i++ {
			emitRow(i, int(np.perm[i]))
		}
	}
	for i := winStart; i < newWinEnd; i++ {
		emitRow(i, int(np.perm[i]))
	}
	if delta == 0 {
		bulkTo(newWinEnd, n)
	} else {
		for i := newWinEnd; i < n; i++ {
			emitRow(i, int(np.perm[i]))
		}
	}
	off[n] = int32(len(adj))
	return off, adj
}

// rebuildPlan builds a canonical plan from the view's current state —
// the same layout buildPlan produces for a Model over the equivalent
// immutable snapshot, reusing the splicer's maintained depth state and
// the existing plan's scratch arena.
func (s *Splicer) rebuildPlan() *Plan {
	n := s.view.N()
	s.grow(n)
	p := &Plan{n: n}

	if cap(s.ordBuf) < n {
		s.ordBuf = make([]int, n)
	}
	order := s.ordBuf[:n]
	for v := 0; v < n; v++ {
		order[s.view.OrdOf(v)] = v
	}
	maxDepth := int32(-1)
	m := 0
	for _, v := range order {
		var d int32
		in := s.view.In(v)
		m += len(in)
		for _, q := range in {
			if dq := s.depth[q] + 1; dq > d {
				d = dq
			}
		}
		s.depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}

	p.levelOff = make([]int32, maxDepth+2)
	for v := 0; v < n; v++ {
		p.levelOff[s.depth[v]+1]++
	}
	for l := 1; l < len(p.levelOff); l++ {
		p.levelOff[l] += p.levelOff[l-1]
	}
	p.perm = make([]int32, n)
	p.pos = make([]int32, n)
	next := append([]int32(nil), p.levelOff...)
	for v := 0; v < n; v++ {
		i := next[s.depth[v]]
		next[s.depth[v]]++
		p.perm[i] = int32(v)
		p.pos[v] = i
	}
	p.checkIdentity()

	// The view's adjacency order is arbitrary (the overlay swap-deletes),
	// so every row is sorted to restore the canonical ascending-id order.
	p.inOff = make([]int32, n+1)
	p.outOff = make([]int32, n+1)
	p.inAdj = make([]int32, 0, m)
	p.outAdj = make([]int32, 0, m)
	fill := func(off []int32, adj []int32, view func(int) []int) []int32 {
		for i := 0; i < n; i++ {
			v := int(p.perm[i])
			off[i] = int32(len(adj))
			row := s.rowBuf[:0]
			for _, q := range view(v) {
				row = append(row, int32(q))
			}
			slices.Sort(row)
			s.rowBuf = row
			for _, q := range row {
				adj = append(adj, p.pos[q])
			}
		}
		off[n] = int32(len(adj))
		return adj
	}
	p.inAdj = fill(p.inOff, p.inAdj, s.view.In)
	p.outAdj = fill(p.outOff, p.outAdj, s.view.Out)

	p.falseMask = make([]bool, n)
	p.chunkHint = sched.Default().ChunkHint()
	p.levelChunks = make([][]int32, p.numLevels())
	for l := range p.levelChunks {
		lo, hi := p.level(l)
		p.levelChunks[l] = p.chunksFor(lo, hi)
	}
	if s.plan != nil {
		p.arena = s.plan.arena
	} else {
		p.arena = newPlanArena()
	}
	return p
}
