package flow

import "fmt"

// Partial (lossy) filters — the paper's footnote 1: "Generalizations that
// allow for a percentage of duplicates to make it through a filter are
// straightforward." A filter with leak ρ ∈ [0, 1] forwards the first copy
// plus a ρ fraction of the duplicates:
//
//	emit(v) = min(rec(v), 1 + ρ·(rec(v) − 1))
//
// ρ = 0 is the paper's perfect filter; ρ = 1 is no filtering at all. The
// closed-form marginal gain generalizes: with the leak-aware suffix
//
//	suffix(v) = Σ_{c ∈ Out(v)} w(v,c) · (1 + damp(c)·suffix(c)),
//	damp(c)   = ρ if c is a filter, 1 otherwise,
//
// the gain of adding a filter at v is (1−ρ)·(rec(v)−1)·suffix(v). Partial
// semantics involve real-valued emissions, so they are implemented on the
// float engine only.

// PartialEvaluator is implemented by evaluators supporting lossy filters.
type PartialEvaluator interface {
	Evaluator
	// PhiPartial is Φ(A, V) when every filter leaks a ρ fraction of
	// duplicates.
	PhiPartial(filters []bool, leak float64) float64
	// ImpactsPartial returns the exact marginal gain of upgrading each
	// non-filter node to a ρ-leaky filter.
	ImpactsPartial(filters []bool, leak float64) []float64
}

// forwardPartial is the leak-aware forward pass.
func (e *FloatEngine) forwardPartial(filters []bool, leak float64) (rec, emit []float64) {
	if leak < 0 || leak > 1 {
		panic(fmt.Sprintf("flow: leak %v outside [0,1]", leak))
	}
	g := e.m.g
	rec = make([]float64, g.N())
	emit = make([]float64, g.N())
	for _, v := range e.m.topo {
		r := 0.0
		for _, p := range g.In(v) {
			r += e.weight(p, v) * emit[p]
		}
		rec[v] = r
		switch {
		case e.m.isSrc[v]:
			emit[v] = 1
		case filters != nil && filters[v]:
			filtered := 1 + leak*(r-1)
			if filtered < r {
				emit[v] = filtered
			} else {
				emit[v] = r
			}
		default:
			emit[v] = r
		}
	}
	return rec, emit
}

// PhiPartial implements PartialEvaluator.
func (e *FloatEngine) PhiPartial(filters []bool, leak float64) float64 {
	rec, _ := e.forwardPartial(filters, leak)
	total := 0.0
	for _, r := range rec {
		total += r
	}
	return total
}

// SuffixPartial returns the leak-aware downstream amplification.
func (e *FloatEngine) SuffixPartial(filters []bool, leak float64) []float64 {
	g := e.m.g
	suf := make([]float64, g.N())
	topo := e.m.topo
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := 0.0
		for _, c := range g.Out(v) {
			w := e.weight(v, c)
			damp := 1.0
			if filters != nil && filters[c] {
				damp = leak
			}
			s += w * (1 + damp*suf[c])
		}
		suf[v] = s
	}
	return suf
}

// ImpactsPartial implements PartialEvaluator.
func (e *FloatEngine) ImpactsPartial(filters []bool, leak float64) []float64 {
	rec, _ := e.forwardPartial(filters, leak)
	suf := e.SuffixPartial(filters, leak)
	gains := make([]float64, len(rec))
	for v := range gains {
		if e.m.isSrc[v] || (filters != nil && filters[v]) || rec[v] <= 1 {
			continue
		}
		gains[v] = (1 - leak) * (rec[v] - 1) * suf[v]
	}
	return gains
}

// FPartial is Φ(∅,V) − Φ_ρ(A,V): the reduction achieved by ρ-leaky filters
// at A, measured against the unfiltered network.
func (e *FloatEngine) FPartial(filters []bool, leak float64) float64 {
	return e.phiEmpty - e.PhiPartial(filters, leak)
}

// FRPartial is the Filter Ratio of a ρ-leaky placement against the
// *perfect-filter* optimum F(V), so curves for different leaks share a
// scale: a leaky placement can approach at most (1−ρ)-ish of the perfect
// reduction on most graphs.
func (e *FloatEngine) FRPartial(filters []bool, leak float64) float64 {
	den := e.MaxF()
	if den <= 0 {
		return 1
	}
	r := e.FPartial(filters, leak) / den
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}
