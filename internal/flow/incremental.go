package flow

import "fmt"

// DynDigraph is the adjacency view the incremental evaluator consumes: a
// directed acyclic graph that mutates between Update calls, exposing its
// maintained topological order. dyn.Dynamic implements it; the interface
// lives here so flow does not import the mutable overlay.
type DynDigraph interface {
	N() int
	Out(v int) []int
	In(v int) []int
	// OrdOf returns v's position in a maintained topological order; values
	// form a permutation of [0, N()) and must be valid for the current edge
	// set whenever Update or SetFilter runs.
	OrdOf(v int) int
}

// IncStats counts the nodes the incremental engine actually recomputed —
// the observable form of dirty-region tracking. Cumulative; callers diff
// snapshots to attribute work to a mutation batch.
type IncStats struct {
	// ForwardVisits counts rec/emit recomputations (descendant cones).
	ForwardVisits int
	// BackwardVisits counts suffix recomputations (ancestor cones).
	BackwardVisits int
	// Updates counts Update/SetFilter calls that did any work.
	Updates int
}

// Incremental maintains the propagation state rec, emit and suffix of a
// mutating DAG under a fixed filter mask, recomputing only the dirty cone
// after each change: descendants of edge heads for the forward quantities,
// ancestors of edge tails for the backward one. It supports only the
// deterministic (unweighted) model — exactly what the fpd daemon serves —
// and is the engine behind dyn.Maintainer.
//
// Unlike FloatEngine, whose every query runs full O(|E|) passes, an
// Incremental amortizes: a localized mutation on a Twitter-shaped graph
// touches a handful of nodes, so placement maintenance after small batches
// costs orders of magnitude less than re-evaluating from scratch.
//
// Not safe for concurrent use.
type Incremental struct {
	g       DynDigraph
	isSrc   []bool
	filters []bool
	rec     []float64
	emit    []float64
	suf     []float64

	inQF, inQB []bool // queue-membership scratch
	// ordBuf is the reusable whole-graph sweep order (the dynamic
	// counterpart of a static plan's level-packed order, rebuilt from the
	// maintained positions instead of precomputed): Reinit refreshes it in
	// place, so full re-initializations after drift stop allocating O(N)
	// per call.
	ordBuf []int
	stats  IncStats
}

// NewIncremental builds the engine and runs one full initialization pass.
// sources must have in-degree 0 now and forever (dyn pins them); filters
// may be nil for the empty mask.
func NewIncremental(g DynDigraph, sources, filters []int) *Incremental {
	return NewIncrementalWith(g, sources, filters, nil)
}

// NewIncrementalWith is NewIncremental with the initialization pass run on
// the flat kernels of p (see ReinitWith) instead of the scalar sweeps. p
// may be nil or stale; the scalar path is the fallback.
func NewIncrementalWith(g DynDigraph, sources, filters []int, p *Plan) *Incremental {
	n := g.N()
	e := &Incremental{g: g}
	e.isSrc = make([]bool, n)
	for _, s := range sources {
		e.isSrc[s] = true
	}
	e.filters = make([]bool, n)
	for _, v := range filters {
		e.filters[v] = true
	}
	e.alloc(n)
	e.ReinitWith(p)
	return e
}

func (e *Incremental) alloc(n int) {
	e.rec = make([]float64, n)
	e.emit = make([]float64, n)
	e.suf = make([]float64, n)
	e.inQF = make([]bool, n)
	e.inQB = make([]bool, n)
}

// Grow resizes the engine to the view's current node count. New nodes are
// non-source; filterNew marks them as filters (the all-filters state grows
// that way). New nodes must still be isolated — grow before applying the
// batch's edge seeds via Update.
func (e *Incremental) Grow(filterNew bool) {
	n := e.g.N()
	if n <= len(e.rec) {
		return
	}
	grow := func(s []float64) []float64 { return append(s, make([]float64, n-len(s))...) }
	e.rec, e.emit, e.suf = grow(e.rec), grow(e.emit), grow(e.suf)
	for len(e.isSrc) < n {
		e.isSrc = append(e.isSrc, false)
		e.filters = append(e.filters, filterNew)
		e.inQF = append(e.inQF, false)
		e.inQB = append(e.inQB, false)
	}
}

// Reinit recomputes the full state with two whole-graph passes; used at
// construction and when a consumer lost sync with the view's mutations.
func (e *Incremental) Reinit() {
	n := e.g.N()
	if cap(e.ordBuf) < n {
		e.ordBuf = make([]int, n)
	}
	order := e.ordBuf[:n]
	for v := 0; v < n; v++ {
		order[e.g.OrdOf(v)] = v
	}
	for _, v := range order {
		e.recompute(v)
	}
	for i := n - 1; i >= 0; i-- {
		e.recomputeSuf(order[i])
	}
	e.stats.ForwardVisits += n
	e.stats.BackwardVisits += n
	e.stats.Updates++
}

// ReinitWith recomputes the full state like Reinit but on the flat
// forwardRange/suffixRange kernels of an up-to-date execution plan —
// sequential position order, no per-node heap or interface dispatch — and
// scatters the results back to original-id indexing. This is the path
// that makes dyn.Maintainer's "missed batches" rebuild run at plan-kernel
// speed instead of being the slowest pass in the system. A nil, stale or
// weighted plan falls back to the scalar Reinit.
func (e *Incremental) ReinitWith(p *Plan) {
	n := e.g.N()
	if p == nil || p.n != n || p.weighted {
		e.Reinit()
		return
	}
	s := p.getScratch()
	srcBuf := p.GetMask()
	src := p.fillMask(srcBuf, e.isSrc)
	fmask := p.fillMask(s.fmask, e.filters)
	p.forwardRange(src, fmask, s.rec, s.emit, 0, n)
	p.suffixRange(fmask, s.suf, 0, n)
	for i, v := range p.perm {
		e.rec[v] = s.rec[i]
		e.emit[v] = s.emit[i]
		e.suf[v] = s.suf[i]
	}
	p.PutMask(srcBuf)
	p.putScratch(s)
	e.stats.ForwardVisits += n
	e.stats.BackwardVisits += n
	e.stats.Updates++
}

// recompute refreshes rec and emit at v from its in-neighbors, reporting
// whether emit changed.
func (e *Incremental) recompute(v int) bool {
	r := 0.0
	for _, p := range e.g.In(v) {
		r += e.emit[p]
	}
	e.rec[v] = r
	var em float64
	switch {
	case e.isSrc[v]:
		em = 1
	case e.filters[v] && r > 1:
		em = 1
	default:
		em = r
	}
	changed := em != e.emit[v]
	e.emit[v] = em
	return changed
}

// recomputeSuf refreshes suffix at v from its out-neighbors, reporting
// whether it changed.
func (e *Incremental) recomputeSuf(v int) bool {
	s := 0.0
	for _, c := range e.g.Out(v) {
		if e.filters[c] {
			s++
		} else {
			s += 1 + e.suf[c]
		}
	}
	changed := s != e.suf[v]
	e.suf[v] = s
	return changed
}

// Update propagates a mutation already applied to the view: fwdSeeds are
// the heads of changed edges (their rec is stale), bwdSeeds the tails
// (their suffix is stale). Recomputation visits only nodes whose values
// actually change — the dirty cone — in topological order, so clean
// inputs are read, never recomputed.
func (e *Incremental) Update(fwdSeeds, bwdSeeds []int) {
	if len(fwdSeeds) == 0 && len(bwdSeeds) == 0 {
		return
	}
	// Forward sweep: ascending order positions, min-heap.
	var hf ordHeap
	hf.less = func(a, b int) bool { return e.g.OrdOf(a) < e.g.OrdOf(b) }
	for _, v := range fwdSeeds {
		hf.pushOnce(v, e.inQF)
	}
	for hf.len() > 0 {
		v := hf.pop()
		e.inQF[v] = false
		e.stats.ForwardVisits++
		if e.recompute(v) {
			for _, w := range e.g.Out(v) {
				hf.pushOnce(w, e.inQF)
			}
		}
	}
	// Backward sweep: descending order positions, max-heap.
	var hb ordHeap
	hb.less = func(a, b int) bool { return e.g.OrdOf(a) > e.g.OrdOf(b) }
	for _, v := range bwdSeeds {
		hb.pushOnce(v, e.inQB)
	}
	for hb.len() > 0 {
		v := hb.pop()
		e.inQB[v] = false
		e.stats.BackwardVisits++
		if e.recomputeSuf(v) {
			for _, p := range e.g.In(v) {
				hb.pushOnce(p, e.inQB)
			}
		}
	}
	e.stats.Updates++
}

// SetFilter toggles the filter at v and repairs the state: a filter change
// alters v's emission (descendant cone) and its parents' suffix terms
// (ancestor cone). Toggling a source is a no-op (sources already emit one
// copy).
func (e *Incremental) SetFilter(v int, on bool) {
	if e.filters[v] == on || e.isSrc[v] {
		return
	}
	e.filters[v] = on
	e.Update([]int{v}, e.g.In(v))
}

// Clone returns an independent copy of the engine's propagation state
// sharing the same graph view. Clones support concurrent read/Update use
// on their own state while the overlay itself is quiescent (the view is
// shared, not copied); dyn.Maintainer uses clones to probe candidate
// repairs without disturbing the live state.
func (e *Incremental) Clone() *Incremental {
	c := &Incremental{g: e.g, stats: e.stats}
	c.isSrc = append([]bool(nil), e.isSrc...)
	c.filters = append([]bool(nil), e.filters...)
	c.rec = append([]float64(nil), e.rec...)
	c.emit = append([]float64(nil), e.emit...)
	c.suf = append([]float64(nil), e.suf...)
	c.inQF = make([]bool, len(e.inQF))
	c.inQB = make([]bool, len(e.inQB))
	return c
}

// IsFilter reports whether v is currently a filter.
func (e *Incremental) IsFilter(v int) bool { return e.filters[v] }

// FilterNodes returns the current filter set, ascending.
func (e *Incremental) FilterNodes() []int { return NodesOf(e.filters) }

// Phi returns Φ(A, V) — the total copies received — from cached state.
// The O(n) sum avoids the numeric drift of maintaining a running total.
func (e *Incremental) Phi() float64 {
	total := 0.0
	for _, r := range e.rec {
		total += r
	}
	return total
}

// Rec returns the cached received count Φ(A, v).
func (e *Incremental) Rec(v int) float64 { return e.rec[v] }

// Suf returns the cached downstream amplification of v.
func (e *Incremental) Suf(v int) float64 { return e.suf[v] }

// Gain returns the exact marginal gain F(A∪{v}) − F(A) from cached state
// (0 for sources and current filters).
func (e *Incremental) Gain(v int) float64 {
	if e.isSrc[v] || e.filters[v] || e.rec[v] <= 1 {
		return 0
	}
	return (e.rec[v] - 1) * e.suf[v]
}

// HeldGain returns, for a current filter v, the reduction it is presently
// responsible for if it were the last filter added: (rec−1)·suffix under
// the current state. It is the Maintainer's cheap weakest-filter proxy
// (an under-estimate of the true removal loss, by submodularity).
func (e *Incremental) HeldGain(v int) float64 {
	if !e.filters[v] || e.rec[v] <= 1 {
		return 0
	}
	return (e.rec[v] - 1) * e.suf[v]
}

// ArgmaxGain returns the non-filter node with the largest marginal gain
// and that gain, ties toward the smaller id; v = -1 when every gain is 0.
func (e *Incremental) ArgmaxGain() (int, float64) {
	best, bestGain := -1, 0.0
	for v := range e.rec {
		if g := e.Gain(v); g > bestGain {
			best, bestGain = v, g
		}
	}
	return best, bestGain
}

// Stats returns the cumulative recomputation counters.
func (e *Incremental) Stats() IncStats { return e.stats }

// check panics unless the engine state matches a from-scratch pass; test
// hook.
func (e *Incremental) check(tol float64) {
	n := e.g.N()
	order := make([]int, n)
	for v := 0; v < n; v++ {
		order[e.g.OrdOf(v)] = v
	}
	fresh := &Incremental{g: e.g, isSrc: e.isSrc, filters: e.filters}
	fresh.alloc(n)
	for _, v := range order {
		fresh.recompute(v)
	}
	for i := n - 1; i >= 0; i-- {
		fresh.recomputeSuf(order[i])
	}
	for v := 0; v < n; v++ {
		if diff(e.rec[v], fresh.rec[v]) > tol || diff(e.emit[v], fresh.emit[v]) > tol || diff(e.suf[v], fresh.suf[v]) > tol {
			panic(fmt.Sprintf("flow: incremental state diverged at node %d: rec %v vs %v, emit %v vs %v, suf %v vs %v",
				v, e.rec[v], fresh.rec[v], e.emit[v], fresh.emit[v], e.suf[v], fresh.suf[v]))
		}
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// ordHeap is a binary heap of node ids under a caller-supplied ordering,
// with O(1) duplicate suppression through a shared membership mask.
type ordHeap struct {
	a    []int
	less func(a, b int) bool
}

func (h *ordHeap) len() int { return len(h.a) }

func (h *ordHeap) pushOnce(v int, inQ []bool) {
	if inQ[v] {
		return
	}
	inQ[v] = true
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.a[i], h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *ordHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, small := 2*i+1, 2*i+2, i
		if l < len(h.a) && h.less(h.a[l], h.a[small]) {
			small = l
		}
		if r < len(h.a) && h.less(h.a[r], h.a[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
