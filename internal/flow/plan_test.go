package flow

import (
	"math"
	"math/big"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// --- Reference engines: straight ports of the pre-plan per-node kernels
// iterating Model.Topo(), kept verbatim so the plan-backed passes are
// pinned bit-for-bit against the engines this refactor replaced.

type refFloat struct{ m *Model }

func (e *refFloat) weight(u, v int) float64 {
	if e.m.weight == nil {
		return 1
	}
	return e.m.weight(u, v)
}

func (e *refFloat) forward(filters []bool) (rec, emit []float64) {
	rec = make([]float64, e.m.g.N())
	emit = make([]float64, e.m.g.N())
	for _, v := range e.m.topo {
		r := 0.0
		for _, p := range e.m.g.In(v) {
			r += e.weight(p, v) * emit[p]
		}
		rec[v] = r
		switch {
		case e.m.isSrc[v]:
			emit[v] = 1
		case filters != nil && filters[v] && r > 1:
			emit[v] = 1
		default:
			emit[v] = r
		}
	}
	return rec, emit
}

func (e *refFloat) suffix(filters []bool) []float64 {
	suf := make([]float64, e.m.g.N())
	topo := e.m.topo
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := 0.0
		for _, c := range e.m.g.Out(v) {
			w := e.weight(v, c)
			if filters != nil && filters[c] {
				s += w
			} else {
				s += w * (1 + suf[c])
			}
		}
		suf[v] = s
	}
	return suf
}

func (e *refFloat) phi(filters []bool) float64 {
	rec, _ := e.forward(filters)
	total := 0.0
	for _, r := range rec {
		total += r
	}
	return total
}

func (e *refFloat) impacts(filters []bool) []float64 {
	rec, _ := e.forward(filters)
	suf := e.suffix(filters)
	gains := make([]float64, len(rec))
	for v := range gains {
		if e.m.isSrc[v] || (filters != nil && filters[v]) {
			continue
		}
		excess := rec[v] - 1
		if rec[v] < 1 {
			excess = 0
		}
		gains[v] = excess * suf[v]
	}
	return gains
}

func (e *refFloat) argmax(filters, banned []bool) (int, float64) {
	rec, _ := e.forward(filters)
	suf := e.suffix(filters)
	best, bestGain := -1, 0.0
	for v, r := range rec {
		if banned != nil && banned[v] {
			continue
		}
		if e.m.isSrc[v] || (filters != nil && filters[v]) || r <= 1 {
			continue
		}
		if gn := (r - 1) * suf[v]; gn > bestGain {
			best, bestGain = v, gn
		}
	}
	return best, bestGain
}

type refBig struct{ m *Model }

func (e *refBig) forward(filters []bool) (rec, emit []*big.Int) {
	rec = make([]*big.Int, e.m.g.N())
	emit = make([]*big.Int, e.m.g.N())
	for _, v := range e.m.topo {
		r := new(big.Int)
		for _, p := range e.m.g.In(v) {
			r.Add(r, emit[p])
		}
		rec[v] = r
		switch {
		case e.m.isSrc[v]:
			emit[v] = bigOne
		case filters != nil && filters[v] && r.Cmp(bigOne) > 0:
			emit[v] = bigOne
		default:
			emit[v] = r
		}
	}
	return rec, emit
}

func (e *refBig) phi(filters []bool) *big.Int {
	rec, _ := e.forward(filters)
	total := new(big.Int)
	for _, r := range rec {
		total.Add(total, r)
	}
	return total
}

func (e *refBig) suffix(filters []bool) []*big.Int {
	suf := make([]*big.Int, e.m.g.N())
	topo := e.m.topo
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := new(big.Int)
		for _, c := range e.m.g.Out(v) {
			s.Add(s, bigOne)
			if filters == nil || !filters[c] {
				s.Add(s, suf[c])
			}
		}
		suf[v] = s
	}
	return suf
}

// --- Golden equivalence suite.

// goldenGraph is one pinned model plus a label for failure messages.
type goldenGraph struct {
	name string
	m    *Model
}

func goldenGraphs(t testing.TB) []goldenGraph {
	t.Helper()
	var gs []goldenGraph
	add := func(name string, g *graph.Digraph, sources []int) {
		m, err := NewModel(g, sources)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gs = append(gs, goldenGraph{name, m})
	}
	add("fig1", fig1(t), nil)

	lg, src := gen.Layered(8, 40, 1, 3, 1)
	add("layered", lg, []int{src})

	qg, qsrc := gen.QuoteLike(1)
	add("quote", qg, []int{qsrc})

	tg, troot := gen.TwitterLike(0.02, 3)
	add("twitter-small", tg, []int{troot})

	rg, _ := gen.RandomDAG(300, 0.03, 7)
	add("random-dag", rg, nil)

	// Weighted (probabilistic) variant of the random DAG: deterministic
	// pseudo-random relay probabilities derived from the edge endpoints.
	wm, err := NewModel(rg, nil)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, goldenGraph{"random-dag-weighted", wm.WithWeights(func(u, v int) float64 {
		return float64((u*2654435761+v*40503)%1000) / 1000
	})})
	return gs
}

// goldenFilterSets returns the filter masks each graph is checked under:
// none, all, a pseudo-random set, and the greedy-chosen prefix (the mask
// sequence a real placement walks through).
func goldenFilterSets(m *Model, ev *FloatEngine) [][]bool {
	n := m.N()
	rng := rand.New(rand.NewSource(42))
	random := make([]bool, n)
	for v := 0; v < n; v++ {
		random[v] = !m.IsSource(v) && rng.Intn(4) == 0
	}
	greedy := make([]bool, n)
	for i := 0; i < 3; i++ {
		v, gain := ev.ArgmaxImpact(greedy, greedy)
		if v < 0 || gain <= 0 {
			break
		}
		greedy[v] = true
	}
	return [][]bool{nil, AllFilters(m), random, greedy}
}

func eqBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func checkBitsSlice(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for v := range got {
		if !eqBits(got[v], want[v]) {
			t.Fatalf("%s: node %d: got %v (%#x) want %v (%#x)",
				what, v, got[v], math.Float64bits(got[v]), want[v], math.Float64bits(want[v]))
		}
	}
}

// TestPlanFloatGolden pins every plan-backed float query bit-for-bit
// against the pre-refactor reference kernels, serially and at P = 4 and
// GOMAXPROCS.
func TestPlanFloatGolden(t *testing.T) {
	procsList := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, gg := range goldenGraphs(t) {
		ev := NewFloat(gg.m)
		ref := &refFloat{gg.m}
		for fi, filters := range goldenFilterSets(gg.m, ev) {
			wantRec, _ := ref.forward(filters)
			wantSuf := ref.suffix(filters)
			wantImp := ref.impacts(filters)
			wantPhi := ref.phi(filters)
			wantV, wantGain := ref.argmax(filters, filters)

			name := gg.name
			checkBitsSlice(t, name+" Received", ev.Received(filters), wantRec)
			checkBitsSlice(t, name+" Suffix", ev.Suffix(filters), wantSuf)
			checkBitsSlice(t, name+" Impacts", ev.Impacts(filters), wantImp)
			if got := ev.Phi(filters); filters != nil && !eqBits(got, wantPhi) {
				t.Fatalf("%s Phi(set %d): got %v want %v", name, fi, got, wantPhi)
			}
			if !eqBits(ev.phi(filters), wantPhi) {
				t.Fatalf("%s phi(set %d) mismatch", name, fi)
			}
			gotV, gotGain := ev.ArgmaxImpact(filters, filters)
			if gotV != wantV || !eqBits(gotGain, wantGain) {
				t.Fatalf("%s ArgmaxImpact(set %d): got (%d, %v) want (%d, %v)",
					name, fi, gotV, gotGain, wantV, wantGain)
			}
			for _, procs := range procsList {
				checkBitsSlice(t, name+" ImpactsP", ev.ImpactsP(filters, procs), wantImp)
				pv, pg := ev.ArgmaxImpactP(filters, filters, procs)
				if pv != wantV || !eqBits(pg, wantGain) {
					t.Fatalf("%s ArgmaxImpactP(set %d, procs %d): got (%d, %v) want (%d, %v)",
						name, fi, procs, pv, pg, wantV, wantGain)
				}
			}
		}
	}
}

// TestPlanBigGolden pins the plan-backed exact engine against the
// pre-refactor big-integer kernels: identical integers, identical float
// projections, at every parallelism.
func TestPlanBigGolden(t *testing.T) {
	procsList := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, gg := range goldenGraphs(t) {
		if gg.m.Weighted() {
			continue // BigEngine rejects weighted models
		}
		ev := NewBig(gg.m)
		fl := NewFloat(gg.m)
		ref := &refBig{gg.m}
		for fi, filters := range goldenFilterSets(gg.m, fl) {
			wantPhi := ref.phi(filters)
			if got := ev.PhiBig(filters); got.Cmp(wantPhi) != 0 {
				t.Fatalf("%s PhiBig(set %d): got %v want %v", gg.name, fi, got, wantPhi)
			}
			wantRec, _ := ref.forward(filters)
			checkBitsSlice(t, gg.name+" big Received", ev.Received(filters), bigsToFloats(wantRec))
			wantSuf := ref.suffix(filters)
			checkBitsSlice(t, gg.name+" big Suffix", ev.Suffix(filters), bigsToFloats(wantSuf))
			wantImp := ev.Impacts(filters)
			for _, procs := range procsList {
				checkBitsSlice(t, gg.name+" big ImpactsP", ev.ImpactsP(filters, procs), wantImp)
				sv, sg := ev.ArgmaxImpact(filters, filters)
				pv, pg := ev.ArgmaxImpactP(filters, filters, procs)
				if pv != sv || !eqBits(pg, sg) {
					t.Fatalf("%s big ArgmaxImpactP(set %d, procs %d): got (%d, %v) want (%d, %v)",
						gg.name, fi, procs, pv, pg, sv, sg)
				}
			}
		}
	}
}

// --- Plan invariants.

// checkPlanInvariants asserts the structural contract of a plan against
// its model: permutation validity, level-monotone order, CSR consistency
// and chunk-table sanity.
func checkPlanInvariants(t testing.TB, m *Model) {
	t.Helper()
	g := m.Graph()
	p := m.Plan()
	n := g.N()
	if p.N() != n || p.M() != g.M() {
		t.Fatalf("plan size %d/%d != graph %d/%d", p.N(), p.M(), n, g.M())
	}

	// perm is a permutation and pos its inverse.
	seen := make([]bool, n)
	for i, v := range p.perm {
		if v < 0 || int(v) >= n || seen[v] {
			t.Fatalf("perm[%d] = %d is not a permutation entry", i, v)
		}
		seen[v] = true
		if p.pos[v] != int32(i) {
			t.Fatalf("pos[%d] = %d, want %d", v, p.pos[v], i)
		}
	}

	// Level boundaries are monotone and cover [0, n]; level of a position
	// is recoverable for the monotonicity check below.
	if p.levelOff[0] != 0 || int(p.levelOff[p.numLevels()]) != n {
		t.Fatalf("levelOff %v does not cover [0, %d]", p.levelOff, n)
	}
	levelOfPos := make([]int, n)
	for l := 0; l < p.numLevels(); l++ {
		lo, hi := p.level(l)
		if hi < lo {
			t.Fatalf("level %d range [%d, %d) inverted", l, lo, hi)
		}
		for i := lo; i < hi; i++ {
			levelOfPos[i] = l
		}
	}

	// Every edge goes to a strictly later level (level-monotone order),
	// and both CSRs reproduce the graph's adjacency in the graph's own
	// neighbor order.
	for i := 0; i < n; i++ {
		v := int(p.perm[i])
		in := g.In(v)
		if int(p.inOff[i+1]-p.inOff[i]) != len(in) {
			t.Fatalf("in-degree mismatch at position %d (node %d)", i, v)
		}
		for k, q := range in {
			j := p.inOff[i] + int32(k)
			if int(p.perm[p.inAdj[j]]) != q {
				t.Fatalf("inAdj[%d] maps to %d, want %d", j, p.perm[p.inAdj[j]], q)
			}
			if levelOfPos[p.inAdj[j]] >= levelOfPos[i] {
				t.Fatalf("edge (%d,%d): level %d !< %d", q, v, levelOfPos[p.inAdj[j]], levelOfPos[i])
			}
			if p.inW != nil {
				if want := m.weight(q, v); p.inW[j] != want {
					t.Fatalf("inW[%d] = %v, want %v", j, p.inW[j], want)
				}
			}
		}
		out := g.Out(v)
		if int(p.outOff[i+1]-p.outOff[i]) != len(out) {
			t.Fatalf("out-degree mismatch at position %d (node %d)", i, v)
		}
		for k, c := range out {
			j := p.outOff[i] + int32(k)
			if int(p.perm[p.outAdj[j]]) != c {
				t.Fatalf("outAdj[%d] maps to %d, want %d", j, p.perm[p.outAdj[j]], c)
			}
			if levelOfPos[p.outAdj[j]] <= levelOfPos[i] {
				t.Fatalf("edge (%d,%d): level %d !> %d", v, c, levelOfPos[p.outAdj[j]], levelOfPos[i])
			}
		}
	}

	// Chunk tables, when present, tile their level exactly.
	for l, bounds := range p.levelChunks {
		if bounds == nil {
			continue
		}
		lo, hi := p.level(l)
		if int(bounds[0]) != lo || int(bounds[len(bounds)-1]) != hi {
			t.Fatalf("level %d chunks %v do not tile [%d, %d)", l, bounds, lo, hi)
		}
		for c := 1; c < len(bounds); c++ {
			if bounds[c] <= bounds[c-1] {
				t.Fatalf("level %d chunk bounds %v not increasing", l, bounds)
			}
		}
	}
}

func TestPlanInvariants(t *testing.T) {
	for _, gg := range goldenGraphs(t) {
		checkPlanInvariants(t, gg.m)
	}
	// Degenerate shapes: empty, single node, a pure chain (one node per
	// level) and a star (two levels).
	empty, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, m)
	chain := graph.MustFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	checkPlanInvariants(t, MustModel(chain, nil))
	star := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	checkPlanInvariants(t, MustModel(star, nil))
}

// FuzzPlanBuild feeds random DAGs (edges forced low→high, so always
// acyclic) through the plan builder and asserts the structural
// invariants, plus bit-identical Phi/Impacts between the plan-backed
// engine and the reference kernels.
func FuzzPlanBuild(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 0, 3, 3, 4})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(12), []byte{0, 11, 1, 2, 2, 9, 9, 10, 3, 4, 4, 5, 5, 6, 0, 7})
	f.Fuzz(func(t *testing.T, nRaw uint8, raw []byte) {
		n := int(nRaw%64) + 1
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(raw) && i < 256; i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u // low→high keeps the graph acyclic
			}
			b.AddEdge(u, v)
		}
		g, err := b.Build()
		if err != nil {
			t.Skip()
		}
		m, err := NewModel(g, nil)
		if err != nil {
			t.Skip() // e.g. no valid sources
		}
		checkPlanInvariants(t, m)

		ev := NewFloat(m)
		ref := &refFloat{m}
		filters := make([]bool, n)
		for v := 0; v < n; v++ {
			filters[v] = !m.IsSource(v) && v%3 == 0
		}
		for _, fs := range [][]bool{nil, filters} {
			if !eqBits(ev.phi(fs), ref.phi(fs)) {
				t.Fatalf("phi mismatch: %v vs %v", ev.phi(fs), ref.phi(fs))
			}
			got, want := ev.Impacts(fs), ref.impacts(fs)
			for v := range got {
				if !eqBits(got[v], want[v]) {
					t.Fatalf("impacts[%d]: %v vs %v", v, got[v], want[v])
				}
			}
		}
	})
}
