package flow

import (
	"math/big"

	"repro/internal/graph"
)

// This file implements the paper's path-counting view of the objective: in
// the deterministic model with no filters, Prefix(v) = #paths(s, v) and
// Suffix(v) = Σ_x #paths(v, x). These routines mirror the paper's plist
// bookkeeping and exist chiefly to validate the engines against an
// independent formulation; the engines themselves never materialize
// per-ancestor path tables.

// PathCountsFrom returns #paths(src, v) for every node v of the DAG as
// exact integers (#paths(src, src) = 1). It runs one topological pass.
func PathCountsFrom(g *graph.Digraph, src int) ([]*big.Int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	counts := make([]*big.Int, g.N())
	for i := range counts {
		counts[i] = new(big.Int)
	}
	counts[src].SetInt64(1)
	for _, v := range topo {
		if counts[v].Sign() == 0 {
			continue
		}
		for _, c := range g.Out(v) {
			counts[c].Add(counts[c], counts[v])
		}
	}
	return counts, nil
}

// PathCountsTo returns #paths(v, dst) for every node v of the DAG as exact
// integers (#paths(dst, dst) = 1).
func PathCountsTo(g *graph.Digraph, dst int) ([]*big.Int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	counts := make([]*big.Int, g.N())
	for i := range counts {
		counts[i] = new(big.Int)
	}
	counts[dst].SetInt64(1)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, c := range g.Out(v) {
			counts[v].Add(counts[v], counts[c])
		}
		if v == dst {
			counts[v].SetInt64(1)
		}
	}
	return counts, nil
}

// TotalPathsFrom returns Σ_x #paths(v, x) over all x ≠ v — the paper's
// Suffix(v) in the unfiltered deterministic model — for every node v.
func TotalPathsFrom(g *graph.Digraph) ([]*big.Int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// total(v) = Σ_{c∈Out(v)} (1 + total(c)): every path from v either
	// stops at a child or continues past it.
	totals := make([]*big.Int, g.N())
	for i := range totals {
		totals[i] = new(big.Int)
	}
	one := big.NewInt(1)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, c := range g.Out(v) {
			totals[v].Add(totals[v], one)
			totals[v].Add(totals[v], totals[c])
		}
	}
	return totals, nil
}

// PList mirrors the paper's per-node bookkeeping: plist[v][x] = #paths(x,v)
// for every ancestor x of v (including v itself with value 1). It is
// quadratic in memory and intended for validation on small graphs only.
type PList struct {
	g     *graph.Digraph
	lists []map[int]*big.Int
}

// NewPList computes the full plist table for a DAG.
func NewPList(g *graph.Digraph) (*PList, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	lists := make([]map[int]*big.Int, g.N())
	for _, v := range topo {
		lv := map[int]*big.Int{v: big.NewInt(1)}
		for _, p := range g.In(v) {
			for x, c := range lists[p] {
				if acc, ok := lv[x]; ok {
					acc.Add(acc, c)
				} else {
					lv[x] = new(big.Int).Set(c)
				}
			}
		}
		lists[v] = lv
	}
	return &PList{g: g, lists: lists}, nil
}

// Paths returns #paths(x, v) (0 when x does not reach v). The zero-length
// path makes Paths(v, v) = 1, matching the paper's convention
// plist_v[v] = 1.
func (p *PList) Paths(x, v int) *big.Int {
	if c, ok := p.lists[v][x]; ok {
		return new(big.Int).Set(c)
	}
	return new(big.Int)
}

// SuffixOf returns Σ_x plist_x[v] − 1 = the number of non-empty paths
// starting at v, i.e. the paper's Suffix(v) (formula (4) excludes the
// trivial path of v to itself, which the plist convention includes).
func (p *PList) SuffixOf(v int) *big.Int {
	total := new(big.Int)
	for x := 0; x < p.g.N(); x++ {
		if c, ok := p.lists[x][v]; ok {
			total.Add(total, c)
		}
	}
	return total.Sub(total, big.NewInt(1))
}
