package flow

import (
	"math/big"
)

// BigEngine evaluates the deterministic objective in exact math/big integer
// arithmetic. Path counts — and therefore copy counts — grow exponentially
// with graph depth, overflowing int64 on graphs as small as a few dozen
// layered nodes; BigEngine never loses precision, at the cost of allocation
// per arithmetic step. Greedy selections made through ArgmaxImpact compare
// exact integers, so the chosen filter sets are exactly those of the
// idealized algorithm. Weighted (probabilistic) models are not supported;
// use FloatEngine.
type BigEngine struct {
	m        *Model
	phiEmpty *big.Int
	maxF     *big.Int
}

// NewBig builds an exact evaluator for the model. It panics when the model
// carries edge weights, which have no exact integer semantics.
func NewBig(m *Model) *BigEngine {
	if m.Weighted() {
		panic("flow: BigEngine does not support weighted models")
	}
	e := &BigEngine{m: m}
	e.phiEmpty = e.phiBig(nil)
	e.maxF = new(big.Int).Sub(e.phiEmpty, e.phiBig(AllFilters(m)))
	return e
}

// Model implements Evaluator.
func (e *BigEngine) Model() *Model { return e.m }

// Clone implements Cloner. A BigEngine allocates per call and never
// mutates its cached invariants, so the clone shares them; the method
// exists so big-engine placements can join the same parallel candidate
// sharding as float ones.
func (e *BigEngine) Clone() Evaluator {
	c := *e
	return &c
}

var bigOne = big.NewInt(1)

// forwardBig computes rec and emit exactly. Entries of emit may alias
// entries of rec or bigOne; callers must not mutate them.
func (e *BigEngine) forwardBig(filters []bool) (rec, emit []*big.Int) {
	g := e.m.g
	rec = make([]*big.Int, g.N())
	emit = make([]*big.Int, g.N())
	for _, v := range e.m.topo {
		r := new(big.Int)
		for _, p := range g.In(v) {
			r.Add(r, emit[p])
		}
		rec[v] = r
		switch {
		case e.m.isSrc[v]:
			emit[v] = bigOne
		case filters != nil && filters[v] && r.Cmp(bigOne) > 0:
			emit[v] = bigOne
		default:
			emit[v] = r
		}
	}
	return rec, emit
}

func (e *BigEngine) phiBig(filters []bool) *big.Int {
	rec, _ := e.forwardBig(filters)
	total := new(big.Int)
	for _, r := range rec {
		total.Add(total, r)
	}
	return total
}

// PhiBig returns Φ(A, V) as an exact integer. The caller owns the result.
func (e *BigEngine) PhiBig(filters []bool) *big.Int {
	if filters == nil {
		return new(big.Int).Set(e.phiEmpty)
	}
	return e.phiBig(filters)
}

// FBig returns F(A) exactly.
func (e *BigEngine) FBig(filters []bool) *big.Int {
	return new(big.Int).Sub(e.phiEmpty, e.phiBig(filters))
}

// suffixBig computes the downstream amplification exactly.
func (e *BigEngine) suffixBig(filters []bool) []*big.Int {
	g := e.m.g
	suf := make([]*big.Int, g.N())
	topo := e.m.topo
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := new(big.Int)
		for _, c := range g.Out(v) {
			s.Add(s, bigOne)
			if filters == nil || !filters[c] {
				s.Add(s, suf[c])
			}
		}
		suf[v] = s
	}
	return suf
}

// impactsBig returns exact marginal gains.
func (e *BigEngine) impactsBig(filters []bool) []*big.Int {
	rec, _ := e.forwardBig(filters)
	suf := e.suffixBig(filters)
	gains := make([]*big.Int, len(rec))
	zero := new(big.Int)
	for v := range gains {
		if e.m.isSrc[v] || (filters != nil && filters[v]) || rec[v].Sign() == 0 {
			gains[v] = zero
			continue
		}
		excess := new(big.Int).Sub(rec[v], bigOne)
		gains[v] = excess.Mul(excess, suf[v])
	}
	return gains
}

// Phi implements Evaluator (float approximation of the exact value).
func (e *BigEngine) Phi(filters []bool) float64 { return bigToFloat(e.PhiBig(filters)) }

// Received implements Evaluator.
func (e *BigEngine) Received(filters []bool) []float64 {
	rec, _ := e.forwardBig(filters)
	return bigsToFloats(rec)
}

// Suffix implements Evaluator.
func (e *BigEngine) Suffix(filters []bool) []float64 {
	return bigsToFloats(e.suffixBig(filters))
}

// Impacts implements Evaluator.
func (e *BigEngine) Impacts(filters []bool) []float64 {
	return bigsToFloats(e.impactsBig(filters))
}

// ArgmaxImpact implements Evaluator with exact integer comparisons.
func (e *BigEngine) ArgmaxImpact(filters, banned []bool) (int, float64) {
	gains := e.impactsBig(filters)
	best := -1
	var bestGain *big.Int
	for v, gn := range gains {
		if banned != nil && banned[v] {
			continue
		}
		if gn.Sign() <= 0 {
			continue
		}
		if bestGain == nil || gn.Cmp(bestGain) > 0 {
			best, bestGain = v, gn
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bigToFloat(bestGain)
}

// F implements Evaluator.
func (e *BigEngine) F(filters []bool) float64 { return bigToFloat(e.FBig(filters)) }

// MaxF implements Evaluator.
func (e *BigEngine) MaxF() float64 { return bigToFloat(e.maxF) }

// MaxFBig returns F(V) exactly. The caller owns the result.
func (e *BigEngine) MaxFBig() *big.Int { return new(big.Int).Set(e.maxF) }

func bigToFloat(x *big.Int) float64 {
	f, _ := new(big.Float).SetInt(x).Float64()
	return f
}

func bigsToFloats(xs []*big.Int) []float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = bigToFloat(x)
	}
	return fs
}
