package flow

import (
	"math/big"
)

// BigEngine evaluates the deterministic objective in exact math/big integer
// arithmetic. Path counts — and therefore copy counts — grow exponentially
// with graph depth, overflowing int64 on graphs as small as a few dozen
// layered nodes; BigEngine never loses precision, at the cost of allocation
// per arithmetic step. Greedy selections made through ArgmaxImpact compare
// exact integers, so the chosen filter sets are exactly those of the
// idealized algorithm. Weighted (probabilistic) models are not supported;
// use FloatEngine.
type BigEngine struct {
	m        *Model
	p        *Plan
	phiEmpty *big.Int
	maxF     *big.Int
	// mul holds the exact node multiplicities of a coarse model (nil
	// entries for zero-weight nodes, nil slice for ordinary models);
	// immutable, shared by clones.
	mul []*big.Int
	// pc counts topological passes; the shallow Clone copy shares it.
	pc *passCount
}

// NewBig builds an exact evaluator for the model. It panics when the model
// carries edge weights, which have no exact integer semantics.
func NewBig(m *Model) *BigEngine {
	if m.Weighted() {
		panic("flow: BigEngine does not support weighted models")
	}
	e := &BigEngine{m: m, p: m.Plan(), pc: &passCount{}}
	if m.mul != nil {
		e.mul = make([]*big.Int, len(m.mul))
		for v, w := range m.mul {
			if w != 0 {
				e.mul[v] = big.NewInt(w)
			}
		}
	}
	e.phiEmpty = e.phiBig(nil)
	e.maxF = new(big.Int).Sub(e.phiEmpty, e.phiBig(AllFilters(m)))
	return e
}

// Model implements Evaluator.
func (e *BigEngine) Model() *Model { return e.m }

// Clone implements Cloner. A BigEngine allocates per call and never
// mutates its cached invariants, so the clone shares them; the method
// exists so big-engine placements can join the same parallel candidate
// sharding as float ones.
func (e *BigEngine) Clone() Evaluator {
	c := *e
	return &c
}

var bigOne = big.NewInt(1)

// stepForwardBig computes rec and emit at one node from its in-neighbors,
// accumulating in the same ascending in-neighbor order everywhere. It is
// the single per-node kernel shared by the serial and level-parallel
// passes, so both produce the same exact integers.
func (e *BigEngine) stepForwardBig(v int, filters []bool, rec, emit []*big.Int) {
	r := new(big.Int)
	for _, p := range e.m.g.In(v) {
		r.Add(r, emit[p])
	}
	rec[v] = r
	switch {
	case e.m.isSrc[v]:
		emit[v] = bigOne
	case filters != nil && filters[v] && r.Cmp(bigOne) > 0:
		emit[v] = bigOne
	default:
		emit[v] = r
	}
}

// forwardBig computes rec and emit exactly, sweeping the plan's
// level-packed order (a topological order of the original ids the rec and
// emit slices are indexed by). Entries of emit may alias entries of rec or
// bigOne; callers must not mutate them.
func (e *BigEngine) forwardBig(filters []bool) (rec, emit []*big.Int) {
	rec = make([]*big.Int, e.m.g.N())
	emit = make([]*big.Int, e.m.g.N())
	for _, v := range e.p.perm {
		e.stepForwardBig(int(v), filters, rec, emit)
	}
	e.pc.fwd.Add(1)
	return rec, emit
}

// Passes implements PassCounter.
func (e *BigEngine) Passes() (forward, suffix int64) {
	return e.pc.fwd.Load(), e.pc.suf.Load()
}

// forwardBigP is forwardBig with each plan level's nodes sharded across
// procs scheduler chunks. A node of a level only reads emit values of
// earlier levels and writes its own rec/emit slots, so the shards are
// disjoint; every slot is still produced by stepForwardBig, keeping the
// integers exactly those of the serial pass.
func (e *BigEngine) forwardBigP(filters []bool, procs int) (rec, emit []*big.Int) {
	rec = make([]*big.Int, e.m.g.N())
	emit = make([]*big.Int, e.m.g.N())
	for l := 0; l < e.p.numLevels(); l++ {
		e.p.runLevel(l, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e.stepForwardBig(int(e.p.perm[i]), filters, rec, emit)
			}
		})
	}
	e.pc.fwd.Add(1)
	return rec, emit
}

func (e *BigEngine) phiBig(filters []bool) *big.Int {
	rec, emit := e.forwardBig(filters)
	total := new(big.Int)
	var tmp big.Int
	for v, r := range rec {
		total.Add(total, r)
		if e.mul != nil && e.mul[v] != nil {
			// Coarse model: the supernode's contracted interior receives
			// emit(v) once per multiplicity unit.
			total.Add(total, tmp.Mul(e.mul[v], emit[v]))
		}
	}
	return total
}

// PhiBig returns Φ(A, V) as an exact integer. The caller owns the result.
func (e *BigEngine) PhiBig(filters []bool) *big.Int {
	if filters == nil {
		return new(big.Int).Set(e.phiEmpty)
	}
	return e.phiBig(filters)
}

// FBig returns F(A) exactly.
func (e *BigEngine) FBig(filters []bool) *big.Int {
	return new(big.Int).Sub(e.phiEmpty, e.phiBig(filters))
}

// stepSuffixBig computes the downstream amplification at one node from
// its out-neighbors; the per-node kernel shared with the parallel pass.
func (e *BigEngine) stepSuffixBig(v int, filters []bool, suf []*big.Int) {
	s := new(big.Int)
	if e.mul != nil && e.mul[v] != nil {
		// Coarse model: seed with the node's own multiplicity — one extra
		// unit of emission reaches each contracted interior receiver once.
		s.Set(e.mul[v])
	}
	for _, c := range e.m.g.Out(v) {
		s.Add(s, bigOne)
		if filters == nil || !filters[c] {
			s.Add(s, suf[c])
		}
	}
	suf[v] = s
}

// suffixBig computes the downstream amplification exactly, sweeping the
// plan order in reverse.
func (e *BigEngine) suffixBig(filters []bool) []*big.Int {
	suf := make([]*big.Int, e.m.g.N())
	perm := e.p.perm
	for i := len(perm) - 1; i >= 0; i-- {
		e.stepSuffixBig(int(perm[i]), filters, suf)
	}
	e.pc.suf.Add(1)
	return suf
}

// suffixBigP is suffixBig with each plan level's nodes sharded across
// procs scheduler chunks, levels descending: out-neighbors always live in
// strictly later levels, so their suffixes are final when a level runs.
func (e *BigEngine) suffixBigP(filters []bool, procs int) []*big.Int {
	suf := make([]*big.Int, e.m.g.N())
	for l := e.p.numLevels() - 1; l >= 0; l-- {
		e.p.runLevel(l, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e.stepSuffixBig(int(e.p.perm[i]), filters, suf)
			}
		})
	}
	e.pc.suf.Add(1)
	return suf
}

// gainAt assembles one node's exact marginal gain from the pass results;
// zero must be a shared zero-valued big.Int no caller mutates.
func (e *BigEngine) gainAt(v int, filters []bool, rec, suf []*big.Int, zero *big.Int) *big.Int {
	if e.m.isSrc[v] || (filters != nil && filters[v]) || rec[v].Sign() == 0 {
		return zero
	}
	excess := new(big.Int).Sub(rec[v], bigOne)
	return excess.Mul(excess, suf[v])
}

// impactsBig returns exact marginal gains.
func (e *BigEngine) impactsBig(filters []bool) []*big.Int {
	rec, _ := e.forwardBig(filters)
	suf := e.suffixBig(filters)
	gains := make([]*big.Int, len(rec))
	zero := new(big.Int)
	for v := range gains {
		gains[v] = e.gainAt(v, filters, rec, suf, zero)
	}
	return gains
}

// impactsBigP is impactsBig with level-parallel passes and a sharded
// assembly loop. Every integer is produced by the same kernels as the
// serial path, so the results are exactly equal.
func (e *BigEngine) impactsBigP(filters []bool, procs int) []*big.Int {
	rec, _ := e.forwardBigP(filters, procs)
	suf := e.suffixBigP(filters, procs)
	gains := make([]*big.Int, len(rec))
	zero := new(big.Int)
	parallelFor(len(gains), procs, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			gains[v] = e.gainAt(v, filters, rec, suf, zero)
		}
	})
	return gains
}

// Phi implements Evaluator (float approximation of the exact value).
func (e *BigEngine) Phi(filters []bool) float64 { return bigToFloat(e.PhiBig(filters)) }

// Received implements Evaluator.
func (e *BigEngine) Received(filters []bool) []float64 {
	rec, _ := e.forwardBig(filters)
	return bigsToFloats(rec)
}

// Suffix implements Evaluator.
func (e *BigEngine) Suffix(filters []bool) []float64 {
	return bigsToFloats(e.suffixBig(filters))
}

// Impacts implements Evaluator.
func (e *BigEngine) Impacts(filters []bool) []float64 {
	return bigsToFloats(e.impactsBig(filters))
}

// argmaxOver scans gains[lo:hi] for the strictly largest positive gain,
// ties toward the smaller node id — the selection rule shared by the
// serial scan and each parallel shard.
func argmaxOver(gains []*big.Int, banned []bool, lo, hi int) (int, *big.Int) {
	best := -1
	var bestGain *big.Int
	for v := lo; v < hi; v++ {
		gn := gains[v]
		if banned != nil && banned[v] {
			continue
		}
		if gn.Sign() <= 0 {
			continue
		}
		if bestGain == nil || gn.Cmp(bestGain) > 0 {
			best, bestGain = v, gn
		}
	}
	return best, bestGain
}

// ArgmaxImpact implements Evaluator with exact integer comparisons.
func (e *BigEngine) ArgmaxImpact(filters, banned []bool) (int, float64) {
	best, bestGain := argmaxOver(e.impactsBig(filters), banned, 0, e.m.g.N())
	if best < 0 {
		return -1, 0
	}
	return best, bigToFloat(bestGain)
}

// ArgmaxImpactP implements ParallelEvaluator with exact arithmetic: the
// passes shard by topological level and the scan shards into contiguous
// node ranges whose local maxima are reduced in ascending order under the
// same strict-improvement rule as the serial scan, so ties break toward
// the smaller node id exactly as ArgmaxImpact does.
func (e *BigEngine) ArgmaxImpactP(filters, banned []bool, procs int) (int, float64) {
	if procs <= 1 {
		return e.ArgmaxImpact(filters, banned)
	}
	gains := e.impactsBigP(filters, procs)
	type local struct {
		v    int
		gain *big.Int
	}
	locals := parallelForChunks(len(gains), procs, func(lo, hi int) local {
		v, gn := argmaxOver(gains, banned, lo, hi)
		return local{v, gn}
	})
	best := -1
	var bestGain *big.Int
	for _, l := range locals {
		if l.v >= 0 && (bestGain == nil || l.gain.Cmp(bestGain) > 0) {
			best, bestGain = l.v, l.gain
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bigToFloat(bestGain)
}

// ImpactsP implements ParallelEvaluator.
func (e *BigEngine) ImpactsP(filters []bool, procs int) []float64 {
	if procs <= 1 {
		return e.Impacts(filters)
	}
	return bigsToFloats(e.impactsBigP(filters, procs))
}

// F implements Evaluator.
func (e *BigEngine) F(filters []bool) float64 { return bigToFloat(e.FBig(filters)) }

// MaxF implements Evaluator.
func (e *BigEngine) MaxF() float64 { return bigToFloat(e.maxF) }

// MaxFBig returns F(V) exactly. The caller owns the result.
func (e *BigEngine) MaxFBig() *big.Int { return new(big.Int).Set(e.maxF) }

func bigToFloat(x *big.Int) float64 {
	f, _ := new(big.Float).SetInt(x).Float64()
	return f
}

func bigsToFloats(xs []*big.Int) []float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = bigToFloat(x)
	}
	return fs
}
