package flow

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// chainHeavyGraph builds the coarsener's home turf: a small random core
// with long single-in chains hanging off it, some re-entering the core,
// some dangling, plus a few shared leaf sinks.
func chainHeavyGraph(t testing.TB, n int, seed int64) *graph.Digraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	core := n / 5
	if core < 4 {
		core = 4
	}
	b := graph.NewBuilder(n)
	for v := 1; v < core; v++ {
		d := 1 + rng.Intn(3)
		for j := 0; j < d; j++ {
			b.AddEdge(rng.Intn(v), v)
		}
	}
	v := core
	for v < n {
		length := 2 + rng.Intn(6)
		if v+length > n {
			length = n - v
		}
		origin := rng.Intn(core)
		at := origin
		for j := 0; j < length; j++ {
			b.AddEdge(at, v)
			at = v
			v++
		}
		// Half the chains re-enter the core at a node strictly after the
		// origin: core edges ascend by id and chains are linear, so
		// re > origin admits a topological order (no cycles).
		if rng.Intn(2) == 0 && at >= core && origin+1 < core {
			re := origin + 1 + rng.Intn(core-origin-1)
			b.AddEdge(at, re)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twinRichGraph builds a DAG with many exact in-twins: sources feed rows
// of nodes that share identical parent sets.
func twinRichGraph(t testing.TB) *graph.Digraph {
	t.Helper()
	b := graph.NewBuilder(14)
	// 0, 1 sources; 2,3 mid; twins {4,5,6} share {2,3}; twins {7,8}
	// share {1}; 9..13 downstream fan.
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	for _, v := range []int{4, 5, 6} {
		b.AddEdge(2, v)
		b.AddEdge(3, v)
	}
	for _, v := range []int{7, 8} {
		b.AddEdge(1, v)
	}
	b.AddEdge(4, 9)
	b.AddEdge(5, 9)
	b.AddEdge(6, 10)
	b.AddEdge(7, 11)
	b.AddEdge(8, 12)
	b.AddEdge(9, 13)
	b.AddEdge(10, 13)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomTestDAG builds a random DAG with edges low→high; every non-root
// node gets at least one in-edge with probability keepConnected.
func randomTestDAG(t testing.TB, n int, p float64, seed int64) *graph.Digraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		deg := 0
		for u := 0; u < v; u++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
				deg++
			}
		}
		if deg == 0 && rng.Intn(4) != 0 {
			b.AddEdge(rng.Intn(v), v)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// maskFromQuotient projects a quotient filter mask to the matching
// original mask (filters at supernode heads).
func maskFromQuotient(cm *CoarsenMap, qmask []bool) []bool {
	mask := make([]bool, cm.N())
	for q, on := range qmask {
		if on {
			mask[cm.Head(q)] = true
		}
	}
	return mask
}

// checkFiberPartition verifies the CoarsenMap round-trip invariants.
func checkFiberPartition(t *testing.T, m *Model, cm *CoarsenMap) {
	t.Helper()
	n := m.N()
	seen := make([]int, n)
	for q := 0; q < cm.QN(); q++ {
		h := cm.Head(q)
		if cm.Quotient(h) != q {
			t.Fatalf("head %d of q%d maps to q%d", h, q, cm.Quotient(h))
		}
		if q > 0 && cm.Head(q-1) >= h {
			t.Fatalf("quotient ids not ascending by head: q%d head %d, q%d head %d", q-1, cm.Head(q-1), q, h)
		}
		headInFiber := false
		prev := int32(-1)
		for _, v := range cm.Fiber(q) {
			if v <= prev {
				t.Fatalf("fiber of q%d not ascending", q)
			}
			prev = v
			seen[v]++
			if int(v) == h {
				headInFiber = true
			}
			if cm.Quotient(int(v)) != q {
				t.Fatalf("fiber member %d of q%d maps to q%d", v, q, cm.Quotient(int(v)))
			}
		}
		if !headInFiber {
			t.Fatalf("head %d missing from its own fiber q%d", h, q)
		}
	}
	for _, v := range cm.Absorbed() {
		if cm.Quotient(int(v)) != -1 {
			t.Fatalf("absorbed node %d still maps to q%d", v, cm.Quotient(int(v)))
		}
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d covered %d times by fibers+absorbed", v, c)
		}
	}
}

// checkLosslessEquiv verifies the golden lossless contract: Φ, Impacts
// and Argmax on the quotient are exactly those of the original at every
// matching filter set, on the big engine (bit-exact by construction) and
// the float engine (bit-exact while counts are integer-representable).
func checkLosslessEquiv(t *testing.T, m, qm *Model, cm *CoarsenMap, seed int64) {
	t.Helper()
	ob, qb := NewBig(m), NewBig(qm)
	of, qf := NewFloat(m), NewFloat(qm)
	defer of.ReleaseScratch()
	defer qf.ReleaseScratch()

	if ob.PhiBig(nil).Cmp(qb.PhiBig(nil)) != 0 {
		t.Fatalf("Φ(∅) mismatch: orig %v quotient %v", ob.PhiBig(nil), qb.PhiBig(nil))
	}
	if ob.MaxFBig().Cmp(qb.MaxFBig()) != 0 {
		t.Fatalf("MaxF mismatch: orig %v quotient %v", ob.MaxFBig(), qb.MaxFBig())
	}
	if of.Phi(nil) != qf.Phi(nil) {
		t.Fatalf("float Φ(∅) mismatch: orig %v quotient %v", of.Phi(nil), qf.Phi(nil))
	}
	if of.Phi(nil) >= math.Ldexp(1, 52) {
		t.Fatalf("test graph too deep for float bit-exact comparisons: Φ=%g", of.Phi(nil))
	}

	rng := rand.New(rand.NewSource(seed))
	procs := []int{1, 4, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 4; trial++ {
		qmask := make([]bool, qm.N())
		for q := 0; q < qm.N(); q++ {
			if !qm.IsSource(q) && rng.Intn(3) == 0 {
				qmask[q] = true
			}
		}
		omask := maskFromQuotient(cm, qmask)

		if ob.PhiBig(omask).Cmp(qb.PhiBig(qmask)) != 0 {
			t.Fatalf("trial %d: Φ(A) mismatch: orig %v quotient %v", trial, ob.PhiBig(omask), qb.PhiBig(qmask))
		}
		if of.Phi(omask) != qf.Phi(qmask) {
			t.Fatalf("trial %d: float Φ(A) mismatch: orig %v quotient %v", trial, of.Phi(omask), qf.Phi(qmask))
		}

		// Per-head impacts: exact big gains and bit-exact float gains.
		og := ob.impactsBig(omask)
		qg := qb.impactsBig(qmask)
		ogf := of.Impacts(omask)
		qgf := qf.Impacts(qmask)
		for q := 0; q < qm.N(); q++ {
			h := cm.Head(q)
			if og[h].Cmp(qg[q]) != 0 {
				t.Fatalf("trial %d: impact mismatch at head %d (q%d): orig %v quotient %v", trial, h, q, og[h], qg[q])
			}
			if ogf[h] != qgf[q] {
				t.Fatalf("trial %d: float impact mismatch at head %d (q%d): orig %v quotient %v", trial, h, q, ogf[h], qgf[q])
			}
		}

		// Argmax correspondence at every parallelism: the quotient's pick
		// is the head of the original's pick, with equal gain.
		for _, pr := range procs {
			ov, ogain := ob.ArgmaxImpactP(omask, omask, pr)
			qv, qgain := qb.ArgmaxImpactP(qmask, qmask, pr)
			switch {
			case ov < 0 && qv < 0:
			case ov < 0 || qv < 0:
				t.Fatalf("trial %d procs %d: argmax existence mismatch: orig %d quotient %d", trial, pr, ov, qv)
			case cm.Head(qv) != ov:
				t.Fatalf("trial %d procs %d: argmax mismatch: orig %d, quotient head %d", trial, pr, ov, cm.Head(qv))
			case ogain != qgain:
				t.Fatalf("trial %d procs %d: argmax gain mismatch: %v vs %v", trial, pr, ogain, qgain)
			}
		}
	}
}

func TestCoarsenLosslessGolden(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Digraph
	}{
		{"chain-heavy", chainHeavyGraph(t, 400, 1)},
		{"chain-heavy-2", chainHeavyGraph(t, 300, 7)},
		{"random-sparse", randomTestDAG(t, 120, 0.03, 2)},
		{"twin-rich", twinRichGraph(t)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewModel(tc.g, nil)
			if err != nil {
				t.Fatal(err)
			}
			qm, cm, st, err := Coarsen(m, CoarsenOptions{Lossless: true})
			if err != nil {
				t.Fatal(err)
			}
			if !st.LosslessOnly || st.TwinsMerged != 0 {
				t.Fatalf("lossless coarsen fired twins: %+v", st)
			}
			if st.NodesAfter >= st.NodesBefore && st.Folded+st.SinksAbsorbed > 0 {
				t.Fatalf("stats inconsistent: %+v", st)
			}
			t.Logf("%s: %d → %d nodes (%d folded, %d sinks), %d → %d edges",
				tc.name, st.NodesBefore, st.NodesAfter, st.Folded, st.SinksAbsorbed, st.EdgesBefore, st.EdgesAfter)
			checkFiberPartition(t, m, cm)
			checkLosslessEquiv(t, m, qm, cm, 42)
		})
	}
}

func TestCoarsenChainHeavyShrinks(t *testing.T) {
	g := chainHeavyGraph(t, 1000, 3)
	m := MustModel(g, nil)
	_, _, st, err := Coarsen(m, CoarsenOptions{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(st.NodesAfter) / float64(st.NodesBefore); ratio > 0.5 {
		t.Fatalf("chain-heavy graph only shrank to %.0f%% (%+v)", 100*ratio, st)
	}
}

func TestCoarsenBoundedTwins(t *testing.T) {
	m := MustModel(twinRichGraph(t), nil)
	qm, cm, st, err := Coarsen(m, CoarsenOptions{Lossless: false})
	if err != nil {
		t.Fatal(err)
	}
	if st.TwinsMerged == 0 {
		t.Fatalf("twin-rich graph merged no twins: %+v", st)
	}
	if st.LosslessOnly {
		t.Fatalf("LosslessOnly set despite twin merges: %+v", st)
	}
	checkFiberPartition(t, m, cm)
	// Twin merging preserves Φ(∅) exactly even though filtered Φ is only
	// bounded.
	ob, qb := NewBig(m), NewBig(qm)
	if ob.PhiBig(nil).Cmp(qb.PhiBig(nil)) != 0 {
		t.Fatalf("bounded coarsen broke Φ(∅): orig %v quotient %v", ob.PhiBig(nil), qb.PhiBig(nil))
	}
	// And it must shrink strictly further than lossless alone.
	_, _, lst, err := Coarsen(m, CoarsenOptions{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesAfter >= lst.NodesAfter {
		t.Fatalf("bounded (%d nodes) not smaller than lossless (%d nodes)", st.NodesAfter, lst.NodesAfter)
	}
}

func TestCoarsenTargetRatio(t *testing.T) {
	g := chainHeavyGraph(t, 600, 5)
	m := MustModel(g, nil)
	// Ratio 1 in bounded mode: lossless rules still run to fixpoint, but
	// no twin round starts.
	_, _, st, err := Coarsen(m, CoarsenOptions{TargetRatio: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.TwinsMerged != 0 {
		t.Fatalf("ratio 1 still merged twins: %+v", st)
	}
	if st.Folded == 0 {
		t.Fatalf("lossless rules skipped at ratio 1: %+v", st)
	}
	if _, _, _, err := Coarsen(m, CoarsenOptions{TargetRatio: 1.5}); err == nil {
		t.Fatal("TargetRatio 1.5 accepted")
	}
	if _, _, _, err := Coarsen(m, CoarsenOptions{TargetRatio: -0.1}); err == nil {
		t.Fatal("negative TargetRatio accepted")
	}
}

func TestCoarsenDeterminism(t *testing.T) {
	g := chainHeavyGraph(t, 500, 11)
	m := MustModel(g, nil)
	for _, lossless := range []bool{true, false} {
		qm1, cm1, st1, err := Coarsen(m, CoarsenOptions{Lossless: lossless})
		if err != nil {
			t.Fatal(err)
		}
		qm2, cm2, st2, err := Coarsen(m, CoarsenOptions{Lossless: lossless})
		if err != nil {
			t.Fatal(err)
		}
		if st1 != st2 {
			t.Fatalf("lossless=%v: stats differ across runs: %+v vs %+v", lossless, st1, st2)
		}
		if cm1.QN() != cm2.QN() {
			t.Fatalf("lossless=%v: quotient sizes differ", lossless)
		}
		for q := 0; q < cm1.QN(); q++ {
			if cm1.Head(q) != cm2.Head(q) {
				t.Fatalf("lossless=%v: head of q%d differs: %d vs %d", lossless, q, cm1.Head(q), cm2.Head(q))
			}
			if qm1.NodeWeight(q) != qm2.NodeWeight(q) {
				t.Fatalf("lossless=%v: mul of q%d differs", lossless, q)
			}
		}
		g1, g2 := qm1.Graph(), qm2.Graph()
		if g1.M() != g2.M() {
			t.Fatalf("lossless=%v: edge counts differ: %d vs %d", lossless, g1.M(), g2.M())
		}
		for v := 0; v < g1.N(); v++ {
			o1, o2 := g1.Out(v), g2.Out(v)
			if len(o1) != len(o2) {
				t.Fatalf("lossless=%v: out-degree of q%d differs", lossless, v)
			}
			for j := range o1 {
				if o1[j] != o2[j] {
					t.Fatalf("lossless=%v: out-edge %d of q%d differs", lossless, j, v)
				}
			}
		}
	}
}

func TestCoarsenRejects(t *testing.T) {
	m := MustModel(randomTestDAG(t, 30, 0.1, 1), nil)
	wm := m.WithWeights(func(u, v int) float64 { return 0.5 })
	if _, _, _, err := Coarsen(wm, CoarsenOptions{}); err == nil {
		t.Fatal("coarsened a weighted model")
	}
	qm, _, _, err := Coarsen(m, CoarsenOptions{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if qm.Coarse() {
		if _, _, _, err := Coarsen(qm, CoarsenOptions{}); err == nil {
			t.Fatal("re-coarsened a coarse model")
		}
	}
}

// TestCoarseModelSampling pins the sampling engine's coarse support: on a
// quotient whose rows all fall below the sampling floor, estimates are
// exact and must match the float engine bit for bit.
func TestCoarseModelSampling(t *testing.T) {
	m := MustModel(chainHeavyGraph(t, 300, 9), nil)
	qm, _, _, err := Coarsen(m, CoarsenOptions{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFloat(qm)
	defer f.ReleaseScratch()
	se := NewSampling(qm, SampleOptions{Samples: 2, EdgeRate: 1, MinEdges: 1 << 20, Seed: 1})
	defer se.ReleaseScratch()
	if got, want := se.Phi(nil), f.Phi(nil); got != want {
		t.Fatalf("exact-mode sampled Φ(∅) = %v, float engine %v", got, want)
	}
	mask := make([]bool, qm.N())
	for v := 0; v < qm.N(); v += 3 {
		if !qm.IsSource(v) {
			mask[v] = true
		}
	}
	if got, want := se.Phi(mask), f.Phi(mask); got != want {
		t.Fatalf("exact-mode sampled Φ(A) = %v, float engine %v", got, want)
	}
	gi, fi := se.Impacts(nil), f.Impacts(nil)
	for v := range fi {
		if gi[v] != fi[v] {
			t.Fatalf("exact-mode sampled impact[%d] = %v, float %v", v, gi[v], fi[v])
		}
	}
}

func FuzzCoarsen(f *testing.F) {
	f.Add(uint8(20), uint8(30), int64(1), true)
	f.Add(uint8(40), uint8(10), int64(2), false)
	f.Add(uint8(60), uint8(5), int64(3), true)
	f.Add(uint8(12), uint8(80), int64(4), false)
	f.Fuzz(func(t *testing.T, nRaw, pRaw uint8, seed int64, lossless bool) {
		n := 2 + int(nRaw)%62
		p := float64(pRaw%100) / 200 // edge probability in [0, 0.5)
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			for u := 0; u < v; u++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewModel(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		qm, cm, st, err := Coarsen(m, CoarsenOptions{Lossless: lossless})
		if err != nil {
			t.Fatal(err)
		}
		checkFiberPartition(t, m, cm)
		for q := 0; q < cm.QN(); q++ {
			if qm.NodeWeight(q) < int64(len(cm.Fiber(q))-1) {
				t.Fatalf("q%d weight %d below member count %d", q, qm.NodeWeight(q), len(cm.Fiber(q))-1)
			}
		}

		// Φ(∅) is exact under EVERY rule, twin merges included.
		ob, qb := NewBig(m), NewBig(qm)
		if ob.PhiBig(nil).Cmp(qb.PhiBig(nil)) != 0 {
			t.Fatalf("Φ(∅) mismatch (lossless=%v, stats %+v): orig %v quotient %v",
				lossless, st, ob.PhiBig(nil), qb.PhiBig(nil))
		}

		// Round-trip projection: quotient picks project to their heads.
		var qpicks []int
		for q := 0; q < cm.QN(); q++ {
			if rng.Intn(4) == 0 {
				qpicks = append(qpicks, q)
			}
		}
		proj := cm.ProjectFilters(qpicks)
		for i, v := range proj {
			if cm.Quotient(v) != qpicks[i] || cm.Head(qpicks[i]) != v {
				t.Fatalf("projection of q%d is %d, not its head", qpicks[i], v)
			}
		}

		if !st.LosslessOnly {
			return
		}
		// Lossless contractions: filtered Φ, impacts and argmax must be
		// exactly the original's at head-filter sets.
		qmask := make([]bool, qm.N())
		for _, q := range qpicks {
			if !qm.IsSource(q) {
				qmask[q] = true
			}
		}
		omask := maskFromQuotient(cm, qmask)
		if ob.PhiBig(omask).Cmp(qb.PhiBig(qmask)) != 0 {
			t.Fatalf("lossless filtered Φ mismatch: orig %v quotient %v", ob.PhiBig(omask), qb.PhiBig(qmask))
		}
		og := ob.impactsBig(omask)
		qg := qb.impactsBig(qmask)
		for q := 0; q < qm.N(); q++ {
			if og[cm.Head(q)].Cmp(qg[q]) != 0 {
				t.Fatalf("lossless impact mismatch at head %d: %v vs %v", cm.Head(q), og[cm.Head(q)], qg[q])
			}
		}
		ov, _ := ob.ArgmaxImpact(omask, omask)
		qv, _ := qb.ArgmaxImpact(qmask, qmask)
		if (ov < 0) != (qv < 0) || (qv >= 0 && cm.Head(qv) != ov) {
			t.Fatalf("lossless argmax mismatch: orig %d quotient %d (head %v)", ov, qv, qv >= 0)
		}
	})
}
