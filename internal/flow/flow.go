// Package flow implements the information-propagation model of the
// filter-placement paper and the machinery to evaluate its objective
// function.
//
// Propagation model (paper §3). Source nodes generate one item and send a
// copy along each of their out-edges. Every other node blindly relays every
// copy it receives to all of its out-neighbors — unless it is a filter, in
// which case it relays each distinct item exactly once no matter how many
// copies arrive. Φ(A, v) denotes the number of copies node v receives when
// filters are installed at the node set A, and Φ(A, V) = Σ_v Φ(A, v). The
// objective of filter placement is F(A) = Φ(∅, V) − Φ(A, V).
//
// On a DAG the copy counts satisfy, in topological order,
//
//	rec(v)  = Σ_{p ∈ In(v)} w(p,v) · emit(p)
//	emit(v) = 1                     if v is a source
//	        = min(1, rec(v))        if v ∈ A (a filter)
//	        = rec(v)                otherwise
//
// where w ≡ 1 in the deterministic model and w(u,v) ∈ [0,1] is the relay
// probability in the probabilistic extension (expected-copy semantics).
// The package offers two interchangeable arithmetic engines: Float (fast,
// float64, supports edge weights) and Big (exact math/big integers for the
// deterministic model, immune to the exponential growth of path counts).
//
// The per-node marginal gain of adding one more filter has a closed form.
// With rec as above and
//
//	suffix(v) = Σ_{c ∈ Out(v)} w(v,c) · (1 + [c ∉ A]·suffix(c))
//
// computed in reverse topological order, the exact gain in the
// deterministic model is
//
//	F(A ∪ {v}) − F(A) = (rec(v) − min(1, rec(v))) · suffix(v).
//
// For A = ∅ this is the paper's impact I(v) = (Prefix(v) − 1) · Suffix(v).
// The closed form lets a greedy step run in O(|E|) instead of the paper's
// O(Δ·|E|) plist bookkeeping; tests verify it against brute-force
// re-evaluation of Φ.
package flow

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// ErrNotDAG is returned when a model is constructed over a cyclic graph. In
// a cyclic c-graph copy counts diverge (the paper exploits this in its
// Theorem 1 reduction); use the Simulator with a budget for such graphs, or
// extract an acyclic subgraph first (package acyclic).
var ErrNotDAG = errors.New("flow: communication graph must be acyclic")

// Model binds a DAG to its information sources and optional edge weights.
type Model struct {
	g       *graph.Digraph
	sources []int
	isSrc   []bool
	topo    []int
	// weight returns the relay probability of edge (u,v); nil means the
	// deterministic model (weight 1 everywhere).
	weight func(u, v int) float64
	// mul, when non-nil, carries per-node multiplicity weights: node v
	// stands for mul[v] additional receivers beyond itself, each receiving
	// one copy of whatever v emits. Quotient models built by Coarsen use
	// this so Φ over the quotient equals Φ over the contracted original:
	// Φ = Σ_v rec(v) + mul[v]·emit(v), and suffix passes seed each node
	// with mul[v]. nil (every ordinary model) means mul ≡ 0 everywhere.
	mul []int64
	// pc caches the model's execution plan. It is a pointer so the
	// copy-on-write constructors (WithWeights) can give the copy a fresh
	// cache without copying a used sync.Once.
	pc *planCache
}

// planCache lazily builds and then shares a Model's execution plan.
type planCache struct {
	once sync.Once
	plan *Plan
}

// NewModel validates and builds a propagation model. sources lists the
// information origins; when empty, every node with in-degree zero is a
// source. Every source must have in-degree zero, every node must be in
// range, and the graph must be a DAG.
func NewModel(g *graph.Digraph, sources []int) (*Model, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, ErrNotDAG
	}
	if len(sources) == 0 {
		sources = g.Sources()
	}
	isSrc := make([]bool, g.N())
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("flow: source %d out of range [0,%d)", s, g.N())
		}
		if g.InDegree(s) != 0 {
			return nil, fmt.Errorf("flow: source %d has in-degree %d; sources must have in-degree 0 (add a super-source instead)", s, g.InDegree(s))
		}
		isSrc[s] = true
	}
	return &Model{g: g, sources: append([]int(nil), sources...), isSrc: isSrc, topo: topo, pc: &planCache{}}, nil
}

// NewModelFromPlan stands up a Model over an already-built plan: the
// digraph is materialized from the plan's CSR in O(n+m) (no sort, no
// topological search — the plan's position order IS a topological
// order), and the plan cache is pre-filled so no engine ever triggers a
// buildPlan. This is how the server PATCH path turns a spliced plan into
// the registry's refreshed model without paying the from-scratch
// snapshot+build cost. Only unweighted plans are supported — exactly
// what the dynamic overlay produces.
func NewModelFromPlan(p *Plan, sources []int) (*Model, error) {
	if p.Weighted() {
		return nil, fmt.Errorf("flow: NewModelFromPlan supports only unweighted plans")
	}
	if p.Coarse() {
		return nil, fmt.Errorf("flow: NewModelFromPlan does not support coarse (quotient) plans")
	}
	g := p.Digraph()
	if len(sources) == 0 {
		sources = g.Sources()
	}
	isSrc := make([]bool, g.N())
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("flow: source %d out of range [0,%d)", s, g.N())
		}
		if g.InDegree(s) != 0 {
			return nil, fmt.Errorf("flow: source %d has in-degree %d; sources must have in-degree 0 (add a super-source instead)", s, g.InDegree(s))
		}
		isSrc[s] = true
	}
	topo := make([]int, p.n)
	for i, v := range p.perm {
		topo[i] = int(v)
	}
	pc := &planCache{plan: p}
	pc.once.Do(func() {}) // the plan is already built; pin the cache
	return &Model{g: g, sources: append([]int(nil), sources...), isSrc: isSrc, topo: topo, pc: pc}, nil
}

// NewCoarseModel builds a model whose nodes carry multiplicity weights —
// the quotient-graph form produced by Coarsen, where supernode v stands
// for mul[v] contracted receivers beyond itself. Evaluation semantics:
// every engine adds mul[v]·emit(v) to Φ and seeds v's suffix with mul[v],
// so the closed-form gain (rec−1)·suffix prices the contracted interior
// without ever expanding it. Weights must be non-negative; a nil or
// all-zero mul is equivalent to NewModel. Coarse models are always
// unweighted (deterministic relay).
func NewCoarseModel(g *graph.Digraph, sources []int, mul []int64) (*Model, error) {
	m, err := NewModel(g, sources)
	if err != nil {
		return nil, err
	}
	if mul == nil {
		return m, nil
	}
	if len(mul) != g.N() {
		return nil, fmt.Errorf("flow: mul length %d != node count %d", len(mul), g.N())
	}
	allZero := true
	for v, w := range mul {
		if w < 0 {
			return nil, fmt.Errorf("flow: mul[%d] = %d is negative", v, w)
		}
		if w != 0 {
			allZero = false
		}
	}
	if !allZero {
		m.mul = append([]int64(nil), mul...)
	}
	return m, nil
}

// MustModel is NewModel that panics on error, for tests and examples over
// known-good graphs.
func MustModel(g *graph.Digraph, sources []int) *Model {
	m, err := NewModel(g, sources)
	if err != nil {
		panic(err)
	}
	return m
}

// WithWeights returns a copy of the model using w(u,v) as the relay
// probability of each edge. Weights must lie in [0, 1]; they are checked
// lazily (engines validate the values they read). Only the Float engine
// supports weighted models.
func (m *Model) WithWeights(w func(u, v int) float64) *Model {
	if m.mul != nil {
		panic("flow: coarse (multiplicity-weighted) models do not support edge weights")
	}
	c := *m
	c.weight = w
	c.pc = &planCache{} // weights are baked into the plan; the copy needs its own
	return &c
}

// Plan returns the model's execution plan — the level-packed iteration
// order, re-indexed CSR and scratch arena every engine's passes run over —
// building it on first use. Plans are immutable and safe to share across
// engines, clones and goroutines.
func (m *Model) Plan() *Plan {
	m.pc.once.Do(func() { m.pc.plan = buildPlan(m) })
	return m.pc.plan
}

// checkedWeight returns the relay probability of edge (u,v), validating
// its range; the plan builder bakes the result into flat per-edge arrays.
func (m *Model) checkedWeight(u, v int) float64 {
	w := m.weight(u, v)
	if w < 0 || w > 1 {
		panic(fmt.Sprintf("flow: weight(%d,%d) = %v outside [0,1]", u, v, w))
	}
	return w
}

// Graph returns the underlying digraph.
func (m *Model) Graph() *graph.Digraph { return m.g }

// Sources returns the designated source nodes.
func (m *Model) Sources() []int { return m.sources }

// IsSource reports whether v is a source.
func (m *Model) IsSource(v int) bool { return m.isSrc[v] }

// Topo returns the cached deterministic topological order.
func (m *Model) Topo() []int { return m.topo }

// Weighted reports whether the model carries edge weights.
func (m *Model) Weighted() bool { return m.weight != nil }

// Coarse reports whether the model carries node multiplicity weights
// (it was built by NewCoarseModel over a contracted quotient graph).
func (m *Model) Coarse() bool { return m.mul != nil }

// NodeWeight returns node v's multiplicity weight (0 on ordinary models).
func (m *Model) NodeWeight(v int) int64 {
	if m.mul == nil {
		return 0
	}
	return m.mul[v]
}

// N returns the node count of the underlying graph.
func (m *Model) N() int { return m.g.N() }

// Evaluator computes the paper's objective quantities for a model. The two
// implementations are NewFloat (float64 arithmetic, supports probabilistic
// weights) and NewBig (exact big-integer arithmetic for the deterministic
// model). All filter sets are boolean masks of length N(); entries for
// source nodes are ignored (filtering a source never changes anything since
// sources already emit a single copy).
type Evaluator interface {
	// Model returns the model being evaluated.
	Model() *Model
	// Phi returns Φ(A, V): total copies received over all nodes. A nil
	// mask means no filters.
	Phi(filters []bool) float64
	// Received returns Φ(A, v) for every node v (the paper's Prefix(v)
	// when A is empty).
	Received(filters []bool) []float64
	// Suffix returns the downstream amplification of every node under
	// filters A (the paper's Suffix(v) when A is empty).
	Suffix(filters []bool) []float64
	// Impacts returns the exact marginal gain F(A∪{v}) − F(A) for every
	// node (0 for sources and for nodes already in A).
	Impacts(filters []bool) []float64
	// ArgmaxImpact returns the node with the largest marginal gain and
	// that gain, breaking ties toward the smaller node id. It returns
	// v = -1 when every candidate gain is zero. banned marks nodes that
	// must not be selected (typically the current filter set).
	ArgmaxImpact(filters, banned []bool) (v int, gain float64)
	// F returns the objective F(A) = Φ(∅,V) − Φ(A,V).
	F(filters []bool) float64
	// MaxF returns F(V), the largest achievable reduction (filters
	// everywhere, Proposition 1). It is the denominator of the paper's
	// Filter Ratio metric.
	MaxF() float64
}

// FR returns the paper's Filter Ratio F(A)/F(V) for the given filter set,
// clamped to [0, 1]. By convention FR is 1 when F(V) = 0 (a filter-less
// graph with no redundancy at all cannot be improved, so any placement is
// vacuously perfect).
func FR(ev Evaluator, filters []bool) float64 {
	den := ev.MaxF()
	if den <= 0 {
		return 1
	}
	r := ev.F(filters) / den
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// AllFilters returns the filter mask used by MaxF: every non-source node is
// a filter. Exported because experiments and Proposition 1 use it directly.
func AllFilters(m *Model) []bool {
	mask := make([]bool, m.N())
	for v := range mask {
		mask[v] = !m.IsSource(v)
	}
	return mask
}

// MaskOf converts a node list to a boolean mask of length n.
func MaskOf(n int, nodes []int) []bool {
	mask := make([]bool, n)
	for _, v := range nodes {
		mask[v] = true
	}
	return mask
}

// NodesOf converts a mask to an ascending node list.
func NodesOf(mask []bool) []int {
	var nodes []int
	for v, ok := range mask {
		if ok {
			nodes = append(nodes, v)
		}
	}
	return nodes
}
