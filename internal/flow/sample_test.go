package flow

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// sampleTestModel builds a random DAG (edges low→high) dense enough that
// many rows exceed the sampling floor, so the sampled kernels actually
// sample.
func sampleTestModel(t testing.TB, n int, p float64, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSamplingEngineDeterminismAcrossWorkers is the determinism gate of
// the tentpole: for a fixed seed the sampled estimates are bit-for-bit
// identical at P = 1, 4 and GOMAXPROCS — draws derive from (seed, pass,
// node) coordinates, never from chunking or scheduler state.
func TestSamplingEngineDeterminismAcrossWorkers(t *testing.T) {
	m := sampleTestModel(t, 500, 0.05, 3)
	filters := make([]bool, m.N())
	for v := 0; v < m.N(); v += 7 {
		if !m.IsSource(v) {
			filters[v] = true
		}
	}
	base := NewSampling(m, SampleOptions{Seed: 99, Parallelism: 1})
	refPhi := base.PhiEstimate(filters)
	refImp := base.Impacts(filters)
	refRec := base.Received(nil)
	base.ReleaseScratch()
	for _, procs := range []int{4, runtime.GOMAXPROCS(0)} {
		e := NewSampling(m, SampleOptions{Seed: 99, Parallelism: procs})
		if got := e.PhiEstimate(filters); got != refPhi {
			t.Errorf("P=%d: PhiEstimate %+v, serial %+v", procs, got, refPhi)
		}
		imp := e.Impacts(filters)
		for v := range imp {
			if imp[v] != refImp[v] {
				t.Fatalf("P=%d: Impacts[%d] = %v, serial %v", procs, v, imp[v], refImp[v])
			}
		}
		rec := e.Received(nil)
		for v := range rec {
			if rec[v] != refRec[v] {
				t.Fatalf("P=%d: Received[%d] = %v, serial %v", procs, v, rec[v], refRec[v])
			}
		}
		e.ReleaseScratch()
	}
}

// TestSamplingEngineExactBelowFloor: on a graph where every row's degree
// is at or below the sampling floor the sampled passes ARE the exact
// passes — estimates equal the float engine bit-for-bit with StdErr 0.
func TestSamplingEngineExactBelowFloor(t *testing.T) {
	g := graph.MustFromEdges(6, [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}})
	m := MustModel(g, nil)
	exact := NewFloat(m)
	se := NewSampling(m, SampleOptions{Seed: 7})
	if got, want := se.Phi(nil), exact.Phi(nil); got != want {
		t.Errorf("Phi(nil) = %v, exact %v", got, want)
	}
	if ci := se.PhiEstimate(nil); ci.StdErr != 0 {
		t.Errorf("StdErr = %v on an exactly-computed graph, want 0", ci.StdErr)
	}
	impS, impE := se.Impacts(nil), exact.Impacts(nil)
	for v := range impS {
		if impS[v] != impE[v] {
			t.Errorf("Impacts[%d] = %v, exact %v", v, impS[v], impE[v])
		}
	}
	if se.MaxF() != exact.MaxF() {
		t.Errorf("MaxF = %v, exact %v", se.MaxF(), exact.MaxF())
	}
	vS, gS := se.ArgmaxImpact(nil, nil)
	vE, gE := exact.ArgmaxImpact(nil, nil)
	if vS != vE || gS != gE {
		t.Errorf("ArgmaxImpact = (%d, %v), exact (%d, %v)", vS, gS, vE, gE)
	}
}

// hubTestModel builds a layered hub graph — the engine's target class:
// every level-(l+1) node receives edges from `fanIn` random level-l
// nodes, so rows are well above the sampling floor and within-row values
// share a magnitude.
func hubTestModel(t testing.TB, levels, perLevel, fanIn int, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(levels * perLevel)
	for l := 1; l < levels; l++ {
		for j := 0; j < perLevel; j++ {
			v := l*perLevel + j
			for c := 0; c < fanIn; c++ {
				b.AddEdge((l-1)*perLevel+rng.Intn(perLevel), v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSamplingEngineAccuracy: on a hub graph where rows really are
// sampled, the Φ estimate lands within a few percent of exact and the
// reported interval is a sane scale for the actual error.
func TestSamplingEngineAccuracy(t *testing.T) {
	m := hubTestModel(t, 8, 60, 24, 5)
	exact := NewFloat(m)
	want := exact.Phi(nil)
	for _, seed := range []int64{1, 2, 3} {
		se := NewSampling(m, SampleOptions{Seed: seed, Samples: 16})
		est := se.PhiEstimate(nil)
		relErr := math.Abs(est.Mean-want) / want
		if relErr > 0.05 {
			t.Errorf("seed %d: Phi estimate %v vs exact %v (rel err %.3f > 0.05)", seed, est.Mean, want, relErr)
		}
		if est.StdErr <= 0 {
			t.Errorf("seed %d: StdErr = %v on a sampled graph, want > 0", seed, est.StdErr)
		}
		if est.Runs != 16 {
			t.Errorf("seed %d: Runs = %d, want 16", seed, est.Runs)
		}
		// The interval should cover the actual error within a few widths.
		if err := math.Abs(est.Mean - want); err > 8*est.CI95()+1e-9*want {
			t.Errorf("seed %d: error %v far outside the reported CI95 %v", seed, err, est.CI95())
		}
		se.ReleaseScratch()
	}
}

// TestSamplingEngineClone: clones share invariants but not scratch, and
// produce identical estimates (streams are coordinate-derived).
func TestSamplingEngineClone(t *testing.T) {
	m := sampleTestModel(t, 300, 0.06, 9)
	e := NewSampling(m, SampleOptions{Seed: 4})
	c := e.Clone().(*SamplingEngine)
	if got, want := c.Phi(nil), e.Phi(nil); got != want {
		t.Errorf("clone Phi(nil) = %v, root %v", got, want)
	}
	filters := make([]bool, m.N())
	filters[m.N()/2] = !m.IsSource(m.N() / 2)
	if got, want := c.PhiEstimate(filters), e.PhiEstimate(filters); got != want {
		t.Errorf("clone PhiEstimate = %+v, root %+v", got, want)
	}
	c.ReleaseScratch()
	e.ReleaseScratch()
}

// TestSamplingEnginePassCounting: sampled passes are counted like engine
// passes, shared across clones.
func TestSamplingEnginePassCounting(t *testing.T) {
	m := sampleTestModel(t, 200, 0.05, 2)
	e := NewSampling(m, SampleOptions{Seed: 1, Samples: 4})
	f0, s0 := e.Passes()
	if f0 != 4 { // construction estimates Φ(∅,V): Samples forward passes
		t.Errorf("construction forward passes = %d, want 4", f0)
	}
	e.Impacts(nil)
	f1, s1 := e.Passes()
	if f1-f0 != 4 || s1-s0 != 4 {
		t.Errorf("Impacts pass delta = (%d, %d), want (4, 4)", f1-f0, s1-s0)
	}
}

// TestSampleOptionsNormalization pins defaults and clamps.
func TestSampleOptionsNormalization(t *testing.T) {
	o := SampleOptions{}.normalized()
	if o.Samples != DefaultSamples || o.EdgeRate != DefaultEdgeRate || o.MinEdges != DefaultMinSampleEdges {
		t.Errorf("zero options normalize to %+v", o)
	}
	if o.Parallelism < 1 {
		t.Errorf("normalized Parallelism = %d, want ≥ 1", o.Parallelism)
	}
	if o := (SampleOptions{Samples: 10_000, EdgeRate: 3}).normalized(); o.Samples != maxSamples || o.EdgeRate != 1 {
		t.Errorf("clamped options = %+v", o)
	}
}

// FuzzSampledPass feeds random DAGs through the sampling engine and
// asserts estimates are finite, deterministic across parallelism, and
// exactly equal to the float engine wherever no row crosses the
// sampling floor.
func FuzzSampledPass(f *testing.F) {
	f.Add(uint8(5), int64(1), []byte{0, 1, 1, 2, 0, 3, 3, 4})
	f.Add(uint8(12), int64(7), []byte{0, 11, 1, 2, 2, 9, 9, 10, 3, 4, 4, 5, 5, 6, 0, 7})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, raw []byte) {
		n := int(nRaw%64) + 1
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(raw) && i < 256; i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			b.AddEdge(u, v)
		}
		g, err := b.Build()
		if err != nil {
			t.Skip()
		}
		m, err := NewModel(g, nil)
		if err != nil {
			t.Skip()
		}
		serial := NewSampling(m, SampleOptions{Seed: seed, Samples: 3, Parallelism: 1})
		phi := serial.PhiEstimate(nil)
		if math.IsNaN(phi.Mean) || math.IsInf(phi.Mean, 0) || phi.StdErr < 0 {
			t.Fatalf("degenerate estimate %+v", phi)
		}
		imp := serial.Impacts(nil)
		for v, gn := range imp {
			if math.IsNaN(gn) || gn < 0 {
				t.Fatalf("Impacts[%d] = %v", v, gn)
			}
		}
		par := NewSampling(m, SampleOptions{Seed: seed, Samples: 3, Parallelism: 4})
		if got := par.PhiEstimate(nil); got != phi {
			t.Fatalf("parallel estimate %+v, serial %+v", got, phi)
		}
		belowFloor := true
		for v := 0; v < n; v++ {
			if g.InDegree(v) > DefaultMinSampleEdges {
				belowFloor = false
				break
			}
		}
		if belowFloor {
			if got, want := serial.Phi(nil), NewFloat(m).Phi(nil); got != want {
				t.Fatalf("below-floor Phi = %v, exact %v", got, want)
			}
		}
	})
}
