package flow

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Graph coarsening for multilevel placement: contract a Model into a
// quotient graph small enough that CELF's V-sized sweeps become cheap,
// while Φ on the quotient equals (lossless rules) or tightly bounds
// (twin merging) Φ on the original.
//
// The quotient is a plain unweighted DAG over SUPERNODES plus one integer
// per supernode — its multiplicity weight w(u), the number of contracted
// receivers the supernode stands for beyond its head. Engines evaluate
// quotient models through NewCoarseModel's semantics:
//
//	Φ_q = Σ_u rec(u) + w(u)·emit(u)        suffix_q(u) = w(u) + Σ edge terms
//
// Three contraction rules, applied in rounds until a fixpoint (lossless
// rules) and, in bounded mode, until the target ratio is reached:
//
//   - FOLD (lossless): a non-source supernode whose live external
//     in-degree — counted with edge multiplicity — is exactly 1 folds
//     into the supernode feeding it: w(parent) += 1 + w(child), and the
//     child's external out-edges become the parent's. This contracts
//     linear chains AND single-parent fan-out trees in one sweep, because
//     every member of a folded group provably receives exactly emit(head)
//     (each member's sole in-edge comes from inside the group, forming a
//     tree of single-in relays rooted at the head).
//   - SINK ABSORPTION (lossless): a memberless (w = 0) non-source
//     supernode with no live out-edges is dissolved into pure weight:
//     each live in-edge (p, t) adds 1 to w(find(p)) — t received one copy
//     of emit(find(p))'s head per edge, and its gain is identically 0
//     (suffix 0), so no candidate is lost. Processed in reverse
//     topological order so freshly exposed sinks cascade in one sweep.
//     Supernodes WITH members are never absorbed: their gain
//     (rec−1)·w is real and they must stay placeable.
//   - TWIN MERGE (bounded, only when Lossless is false): supernodes with
//     identical live in-neighbor multisets — which always receive equal
//     copy counts, and between which no path can exist — merge:
//     w(x) += 1 + w(y), y's in-edges die, y's out-edges transfer to x
//     (as parallel edges, preserving multiplicity). Φ(∅) stays exact;
//     under filters the quotient treats x and y as filtered together, so
//     placements need the local refinement step to pick the best fiber
//     member. Merging is DAG-safe: a path x ⇝ y would give y an
//     in-neighbor at depth ≥ depth(x), which — being also an in-neighbor
//     of x — contradicts depth(x) > depth(in-neighbor).
//
// Everything is deterministic: passes sweep ascending node/edge order or
// the model's topological order, twin classes are resolved in ascending
// head order, and quotient ids are assigned ascending by head original
// id — which preserves argmax tie-breaking (quotient id order == head id
// order) so lossless quotient CELF picks exactly the original's filters.

// CoarsenOptions configures Coarsen.
type CoarsenOptions struct {
	// TargetRatio stops BOUNDED contraction once the quotient has shrunk
	// to TargetRatio·N nodes; 0 coarsens to a fixpoint. Lossless rules
	// always run to fixpoint regardless (they never cost quality).
	// Must lie in [0, 1].
	TargetRatio float64
	// Lossless restricts contraction to the provably Φ-exact rules (fold,
	// sink absorption). The quotient then evaluates bit-identically to
	// the original at matching filter sets, and multilevel placement
	// needs no refinement.
	Lossless bool
	// MaxRounds bounds the contraction rounds; 0 means DefaultCoarsenRounds.
	MaxRounds int
}

// DefaultCoarsenRounds bounds contraction rounds when
// CoarsenOptions.MaxRounds is 0. Each round is O(N + M); real graphs
// reach their fixpoint in a handful.
const DefaultCoarsenRounds = 16

// CoarsenStats reports what a contraction did.
type CoarsenStats struct {
	NodesBefore   int `json:"nodes_before"`
	NodesAfter    int `json:"nodes_after"`
	EdgesBefore   int `json:"edges_before"`
	EdgesAfter    int `json:"edges_after"`
	Rounds        int `json:"rounds"`
	Folded        int `json:"folded"`
	SinksAbsorbed int `json:"sinks_absorbed"`
	TwinsMerged   int `json:"twins_merged"`
	// LosslessOnly reports that every rule that actually fired was
	// Φ-exact — true whenever Lossless was requested, and also in bounded
	// mode when no twin class existed. When true, quotient evaluation is
	// bit-identical to the original and projection needs no refinement.
	LosslessOnly bool `json:"lossless_only"`
}

// CoarsenMap is the reversible record of a contraction: which original
// nodes each supernode stands for, and where each original node went.
type CoarsenMap struct {
	n     int
	qn    int
	heads []int32 // quotient id -> original head id, ascending
	// origTo maps original id -> quotient id of its supernode, or -1 for
	// absorbed nodes (dissolved into a parent's weight).
	origTo []int32
	// fiberOff/fiberMem: CSR of each supernode's original members
	// (ascending, head included).
	fiberOff []int32
	fiberMem []int32
	absorbed []int32 // original ids dissolved by sink absorption, ascending
}

// N returns the original node count.
func (cm *CoarsenMap) N() int { return cm.n }

// QN returns the quotient node count.
func (cm *CoarsenMap) QN() int { return cm.qn }

// Head returns the original id of quotient node q's head — the one member
// external in-edges target, and the projection of a filter placed at q.
func (cm *CoarsenMap) Head(q int) int { return int(cm.heads[q]) }

// Quotient returns the quotient node original node v belongs to, or -1
// when v was absorbed (its reception is accounted as a parent's weight).
func (cm *CoarsenMap) Quotient(v int) int { return int(cm.origTo[v]) }

// Fiber returns quotient node q's original members in ascending id order
// (the head is always among them). The slice aliases internal storage.
func (cm *CoarsenMap) Fiber(q int) []int32 {
	return cm.fiberMem[cm.fiberOff[q]:cm.fiberOff[q+1]]
}

// Absorbed returns the original ids dissolved by sink absorption,
// ascending. The slice aliases internal storage.
func (cm *CoarsenMap) Absorbed() []int32 { return cm.absorbed }

// ProjectFilters maps a quotient placement back to original node ids
// (each quotient pick projects to its head), preserving pick order.
func (cm *CoarsenMap) ProjectFilters(qFilters []int) []int {
	out := make([]int, len(qFilters))
	for i, q := range qFilters {
		out[i] = int(cm.heads[q])
	}
	return out
}

// coarsener is the working state of one contraction, all on ORIGINAL ids.
type coarsener struct {
	m     *Model
	n     int
	edges [][2]int32 // ascending (u,v): the Digraph's out-CSR order
	dead  []bool     // edge ids no longer part of the quotient
	// inIdx CSR: in-edge ids of node v, sorted by (v, u).
	inIdxOff []int32
	inIdx    []int32

	parent   []int32 // union-find, path-halving; root == supernode head
	w        []int64 // per-root multiplicity weight
	absorbed []bool  // per-root: dissolved into pure weight
	alive    int     // live roots

	// Per-pass scratch, reset by each pass that uses it.
	cnt  []int32 // live in- or out-edge count per root
	aux  []int32 // sole in-edge source / id per root
	aux2 []int32

	stats CoarsenStats
}

// find returns the root (head) of v's supernode with path halving.
func (c *coarsener) find(v int32) int32 {
	p := c.parent
	for p[v] != v {
		p[v] = p[p[v]]
		v = p[v]
	}
	return v
}

// newCoarsener snapshots the model's edge set in deterministic order and
// builds the in-edge index.
func newCoarsener(m *Model) *coarsener {
	g := m.Graph()
	n := g.N()
	c := &coarsener{m: m, n: n, alive: n}
	c.edges = make([][2]int32, 0, g.M())
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			c.edges = append(c.edges, [2]int32{int32(u), int32(v)})
		}
	}
	mm := len(c.edges)
	c.dead = make([]bool, mm)
	// Counting sort of edge ids by target: stable, so within a target the
	// ids stay ascending by source.
	c.inIdxOff = make([]int32, n+1)
	for _, e := range c.edges {
		c.inIdxOff[e[1]+1]++
	}
	for v := 1; v <= n; v++ {
		c.inIdxOff[v] += c.inIdxOff[v-1]
	}
	c.inIdx = make([]int32, mm)
	next := append([]int32(nil), c.inIdxOff[:n]...)
	for id, e := range c.edges {
		c.inIdx[next[e[1]]] = int32(id)
		next[e[1]]++
	}
	c.parent = make([]int32, n)
	for v := range c.parent {
		c.parent[v] = int32(v)
	}
	c.w = make([]int64, n)
	c.absorbed = make([]bool, n)
	c.cnt = make([]int32, n)
	c.aux = make([]int32, n)
	c.aux2 = make([]int32, n)
	c.stats = CoarsenStats{NodesBefore: n, EdgesBefore: mm}
	return c
}

// liveRoot reports whether v is the head of a live supernode.
func (c *coarsener) liveRoot(v int32) bool {
	return c.parent[v] == v && !c.absorbed[v]
}

// foldPass contracts every supernode whose live external in-degree
// (with multiplicity) is exactly 1 into its feeder, sweeping heads in
// topological order so chains of foldable groups collapse in one pass.
func (c *coarsener) foldPass() int {
	cnt, src, eid := c.cnt, c.aux, c.aux2
	for i := range cnt {
		cnt[i] = 0
	}
	for id, e := range c.edges {
		if c.dead[id] {
			continue
		}
		ru, rv := c.find(e[0]), c.find(e[1])
		if ru == rv {
			c.dead[id] = true // became internal; never live again
			continue
		}
		cnt[rv]++
		src[rv] = ru
		eid[rv] = int32(id)
	}
	changed := 0
	for _, v := range c.m.Topo() {
		r := int32(v)
		if !c.liveRoot(r) || c.m.IsSource(v) || cnt[r] != 1 {
			continue
		}
		p := c.find(src[r]) // feeder may itself have folded this sweep
		if p == r {
			continue // defensive; cannot happen on a DAG
		}
		c.parent[r] = p
		c.w[p] += 1 + c.w[r]
		c.dead[eid[r]] = true
		c.alive--
		changed++
	}
	c.stats.Folded += changed
	return changed
}

// sinkPass dissolves memberless pure sinks into their feeders' weights,
// reverse-topological so cascades resolve in one sweep.
func (c *coarsener) sinkPass() int {
	out := c.cnt
	for i := range out {
		out[i] = 0
	}
	for id, e := range c.edges {
		if !c.dead[id] && c.find(e[0]) != c.find(e[1]) {
			out[c.find(e[0])]++
		}
	}
	changed := 0
	topo := c.m.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		r := int32(topo[i])
		if !c.liveRoot(r) || c.m.IsSource(int(r)) || out[r] != 0 || c.w[r] != 0 {
			continue
		}
		// w == 0 means r never acquired members, so its only in-edges are
		// its own original ones.
		c.absorbed[r] = true
		c.alive--
		changed++
		for _, id := range c.inIdx[c.inIdxOff[r]:c.inIdxOff[r+1]] {
			if c.dead[id] {
				continue
			}
			p := c.find(c.edges[id][0])
			c.w[p]++
			c.dead[id] = true
			if out[p] > 0 {
				out[p]-- // may expose p as the next sink up the chain
			}
		}
	}
	c.stats.SinksAbsorbed += changed
	return changed
}

// twinPass merges supernodes with identical live in-neighbor multisets
// (bounded rule). Classes resolve in ascending head order; within a
// class everyone merges into the smallest head.
func (c *coarsener) twinPass() int {
	// Gather each live root's in-signature: the multiset of feeder roots,
	// plus the edge ids backing it (to kill on merge). Signatures are
	// collected per root from the global live-edge sweep, so the rule
	// stays correct even if a future rule ever left a live edge
	// targeting a non-head member.
	type sig struct {
		srcs []int32 // sorted feeder roots, multiset
		eids []int32 // live in-edge ids of this root's group
		h    uint64  // multiset hash of srcs
	}
	sigs := make(map[int32]*sig, c.alive)
	for id, e := range c.edges {
		if c.dead[id] {
			continue
		}
		ru, rv := c.find(e[0]), c.find(e[1])
		if ru == rv {
			c.dead[id] = true
			continue
		}
		s := sigs[rv]
		if s == nil {
			s = &sig{}
			sigs[rv] = s
		}
		s.srcs = append(s.srcs, ru)
		s.eids = append(s.eids, int32(id))
	}
	// Hash-bucket the signatures; resolve buckets in ascending head order.
	buckets := make(map[uint64][]int32)
	order := make([]int32, 0, len(sigs))
	for r, s := range sigs {
		if !c.liveRoot(r) || c.m.IsSource(int(r)) {
			continue
		}
		sort.Slice(s.srcs, func(i, j int) bool { return s.srcs[i] < s.srcs[j] })
		s.h = mix64(uint64(len(s.srcs)) + sampleGamma)
		for _, u := range s.srcs {
			s.h = mix64(s.h ^ mix64(uint64(u)+sampleGamma))
		}
		buckets[s.h] = append(buckets[s.h], r)
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, rs := range buckets {
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	}
	equal := func(a, b []int32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	changed := 0
	merged := make(map[int32]bool)
	for _, x := range order {
		if merged[x] || !c.liveRoot(x) {
			continue
		}
		sx := sigs[x]
		for _, y := range buckets[sx.h] {
			if y <= x || merged[y] || !c.liveRoot(y) {
				continue
			}
			if !equal(sx.srcs, sigs[y].srcs) {
				continue
			}
			// Merge y into x: y's group joins x's, y's in-edges die
			// (their reception is now x's, weight-compensated), y's
			// out-edges implicitly transfer (their source root is x now).
			c.parent[y] = x
			c.w[x] += 1 + c.w[y]
			for _, id := range sigs[y].eids {
				c.dead[id] = true
			}
			merged[y] = true
			c.alive--
			changed++
		}
		merged[x] = true
	}
	c.stats.TwinsMerged += changed
	return changed
}

// Coarsen contracts m into a quotient model. The returned model carries
// per-supernode multiplicity weights (NewCoarseModel semantics), the map
// records the contraction reversibly, and the stats say what fired.
// Weighted (probabilistic) models cannot be coarsened — the fold
// identity needs exact unit relays.
func Coarsen(m *Model, opts CoarsenOptions) (*Model, *CoarsenMap, CoarsenStats, error) {
	if m.Weighted() {
		return nil, nil, CoarsenStats{}, fmt.Errorf("flow: cannot coarsen a weighted model")
	}
	if m.Coarse() {
		return nil, nil, CoarsenStats{}, fmt.Errorf("flow: cannot coarsen an already-coarse model")
	}
	if opts.TargetRatio < 0 || opts.TargetRatio > 1 {
		return nil, nil, CoarsenStats{}, fmt.Errorf("flow: coarsen target ratio %v outside [0, 1]", opts.TargetRatio)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultCoarsenRounds
	}
	c := newCoarsener(m)
	target := int(opts.TargetRatio * float64(c.n))
	for c.stats.Rounds < maxRounds {
		changed := 0
		// Lossless rules always run to their fixpoint: they cost nothing
		// in quality, and every node they remove is one CELF never sweeps.
		for {
			f := c.foldPass() + c.sinkPass()
			changed += f
			if f == 0 {
				break
			}
		}
		c.stats.Rounds++
		if opts.Lossless || c.alive <= target {
			break
		}
		t := c.twinPass()
		changed += t
		if t == 0 || changed == 0 {
			break
		}
		// Twin merges can expose new folds (merged groups may leave a
		// downstream node with a single live feeder); loop.
	}
	c.stats.LosslessOnly = c.stats.TwinsMerged == 0
	qm, cm, err := c.buildQuotient()
	if err != nil {
		return nil, nil, CoarsenStats{}, err
	}
	c.stats.NodesAfter = cm.qn
	c.stats.EdgesAfter = qm.Graph().M()
	return qm, cm, c.stats, nil
}

// buildQuotient materializes the quotient model and the coarsen map from
// the union-find state. Quotient ids ascend with head original ids.
func (c *coarsener) buildQuotient() (*Model, *CoarsenMap, error) {
	n := c.n
	cm := &CoarsenMap{n: n, origTo: make([]int32, n)}
	qid := make([]int32, n)
	for v := range qid {
		qid[v] = -1
	}
	for v := int32(0); v < int32(n); v++ {
		if c.liveRoot(v) {
			qid[v] = int32(cm.qn)
			cm.heads = append(cm.heads, v)
			cm.qn++
		}
	}
	mul := make([]int64, cm.qn)
	for q, h := range cm.heads {
		mul[q] = c.w[h]
	}
	// Fibers: every non-absorbed node belongs to its root's supernode.
	// Two-pass counting sort keeps members ascending within each fiber.
	cm.fiberOff = make([]int32, cm.qn+1)
	for v := int32(0); v < int32(n); v++ {
		r := c.find(v)
		if c.absorbed[r] {
			cm.origTo[v] = -1
			cm.absorbed = append(cm.absorbed, v)
			continue
		}
		cm.origTo[v] = qid[r]
		cm.fiberOff[qid[r]+1]++
	}
	for q := 1; q <= cm.qn; q++ {
		cm.fiberOff[q] += cm.fiberOff[q-1]
	}
	cm.fiberMem = make([]int32, cm.fiberOff[cm.qn])
	next := append([]int32(nil), cm.fiberOff[:cm.qn]...)
	for v := int32(0); v < int32(n); v++ {
		if q := cm.origTo[v]; q >= 0 {
			cm.fiberMem[next[q]] = v
			next[q]++
		}
	}
	// Quotient edges: live external edges, translated to quotient ids.
	// Parallel edges are kept — they carry reception multiplicity (two
	// live edges from one feeder mean two copies received).
	b := graph.NewBuilder(cm.qn).AllowParallelEdges()
	for id, e := range c.edges {
		if c.dead[id] {
			continue
		}
		ru, rv := c.find(e[0]), c.find(e[1])
		if ru == rv || c.absorbed[ru] || c.absorbed[rv] {
			continue
		}
		b.AddEdge(int(qid[ru]), int(qid[rv]))
	}
	qg, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("flow: quotient build: %w", err)
	}
	// Sources survive contraction untouched (in-degree 0 nodes never
	// fold, twin or absorb), so they map 1:1 onto quotient ids.
	qsources := make([]int, len(c.m.Sources()))
	for i, s := range c.m.Sources() {
		q := qid[int32(s)]
		if q < 0 || int(cm.heads[q]) != s {
			return nil, nil, fmt.Errorf("flow: source %d lost by contraction (internal invariant)", s)
		}
		qsources[i] = int(q)
	}
	qm, err := NewCoarseModel(qg, qsources, mul)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: quotient model: %w", err)
	}
	return qm, cm, nil
}
