package flow

import "fmt"

// FloatEngine evaluates the objective in float64 arithmetic. It is the
// default engine for experiments: path counts up to ~1e308 are representable
// and greedy algorithms only compare magnitudes, so the loss of exactness
// for astronomically large counts is immaterial in practice. It is also the
// only engine that supports the probabilistic (edge-weighted) model.
//
// Every pass — serial or level-parallel — executes over the model's shared
// execution Plan: the flat forwardRange/suffixRange kernels sweep
// level-packed, plan-indexed buffers sequentially, and per-query results
// are translated back to original node ids at the boundary. The kernels
// accumulate each node's neighbors in exactly the pre-plan order, so
// results are bit-for-bit those of the historical per-node engine (the
// reference suite in plan_test.go pins this).
//
// The hot paths (Phi, F, ArgmaxImpact — the inner loop of Greedy_All)
// reuse a scratch arena borrowed from the plan's pool, so a FloatEngine is
// not safe for concurrent use. Concurrent callers — the parallel candidate
// sharding in core.Place — call Clone, which shares the immutable Model,
// Plan and cached invariants but borrows its own arena on first use;
// ReleaseScratch hands the arena back when a clone retires. Methods
// returning slices (Received, Suffix, Impacts) always return freshly
// allocated results.
type FloatEngine struct {
	m *Model
	p *Plan
	// src is the plan-order source mask; immutable, shared by clones.
	src []bool
	// phiEmpty caches Φ(∅,V) and maxF caches F(V); both are invariants of
	// the model.
	phiEmpty float64
	maxF     float64
	// sc is the engine's borrowed scratch arena (nil until first use).
	sc *floatScratch
	// pc counts topological passes; shared with every clone.
	pc *passCount
}

// NewFloat builds a float64 evaluator for the model.
func NewFloat(m *Model) *FloatEngine {
	p := m.Plan()
	src := make([]bool, p.n)
	for i, v := range p.perm {
		src[i] = m.isSrc[v]
	}
	e := &FloatEngine{m: m, p: p, src: src, pc: &passCount{}}
	e.phiEmpty = e.phi(nil)
	e.maxF = e.phiEmpty - e.phi(AllFilters(m))
	return e
}

// Model implements Evaluator.
func (e *FloatEngine) Model() *Model { return e.m }

// Clone implements Cloner: the returned engine shares the immutable Model,
// Plan and the cached Φ(∅,V)/F(V) invariants but borrows its own scratch
// arena, so it may be used from another goroutine concurrently with the
// receiver. Cloning is O(1); scratch is borrowed from the plan pool on
// first use and returned by ReleaseScratch.
func (e *FloatEngine) Clone() Evaluator {
	return &FloatEngine{m: e.m, p: e.p, src: e.src, phiEmpty: e.phiEmpty, maxF: e.maxF, pc: e.pc}
}

// ReleaseScratch implements ScratchReleaser: the engine's borrowed arena
// goes back to the plan pool. The engine stays usable — the next hot-path
// call borrows a fresh arena — but must not be released while another
// goroutine is using it. core.Place releases retiring candidate-shard
// clones through this.
func (e *FloatEngine) ReleaseScratch() {
	e.p.putScratch(e.sc)
	e.sc = nil
}

func (e *FloatEngine) weight(u, v int) float64 {
	if e.m.weight == nil {
		return 1
	}
	w := e.m.weight(u, v)
	if w < 0 || w > 1 {
		panic(fmt.Sprintf("flow: weight(%d,%d) = %v outside [0,1]", u, v, w))
	}
	return w
}

// scratch borrows the engine's arena on first use.
func (e *FloatEngine) scratch() *floatScratch {
	if e.sc == nil {
		e.sc = e.p.getScratch()
	}
	return e.sc
}

// passes runs the forward (and optionally suffix) pass into the engine's
// scratch arena and returns it, translating the original-id filter mask
// into plan order first.
func (e *FloatEngine) passes(filters []bool, withSuffix bool) *floatScratch {
	sc := e.scratch()
	fm := e.p.fillMask(sc.fmask, filters)
	e.p.forwardRange(e.src, fm, sc.rec, sc.emit, 0, e.p.n)
	e.pc.fwd.Add(1)
	if withSuffix {
		e.p.suffixRange(fm, sc.suf, 0, e.p.n)
		e.pc.suf.Add(1)
	}
	return sc
}

// Passes implements PassCounter.
func (e *FloatEngine) Passes() (forward, suffix int64) {
	return e.pc.fwd.Load(), e.pc.suf.Load()
}

func (e *FloatEngine) phi(filters []bool) float64 {
	sc := e.passes(filters, false)
	return e.p.sumPhi(sc.rec, sc.emit)
}

// Phi implements Evaluator.
func (e *FloatEngine) Phi(filters []bool) float64 {
	if filters == nil {
		return e.phiEmpty
	}
	return e.phi(filters)
}

// Received implements Evaluator.
func (e *FloatEngine) Received(filters []bool) []float64 {
	sc := e.passes(filters, false)
	return e.p.scatter(sc.rec)
}

// Suffix implements Evaluator.
func (e *FloatEngine) Suffix(filters []bool) []float64 {
	sc := e.scratch()
	fm := e.p.fillMask(sc.fmask, filters)
	e.p.suffixRange(fm, sc.suf, 0, e.p.n)
	e.pc.suf.Add(1)
	return e.p.scatter(sc.suf)
}

// gainsInto assembles the closed-form marginal gains from plan-indexed
// pass results into an original-id-indexed slice over [lo, hi).
func (e *FloatEngine) gainsInto(gains []float64, sc *floatScratch, filters []bool, lo, hi int) {
	pos := e.p.pos
	for v := lo; v < hi; v++ {
		if e.m.isSrc[v] || (filters != nil && filters[v]) {
			continue
		}
		i := pos[v]
		r := sc.rec[i]
		excess := r - 1
		if r < 1 {
			excess = 0 // emission is unchanged by a filter when rec ≤ 1
		}
		gains[v] = excess * sc.suf[i]
	}
}

// Impacts implements Evaluator.
func (e *FloatEngine) Impacts(filters []bool) []float64 {
	sc := e.passes(filters, true)
	gains := make([]float64, e.p.n)
	e.gainsInto(gains, sc, filters, 0, e.p.n)
	return gains
}

// argmaxGains scans original ids [lo, hi) for the strictly largest
// positive gain, ties toward the smaller node id — the selection rule
// shared by the serial scan and each parallel shard.
func (e *FloatEngine) argmaxGains(sc *floatScratch, filters, banned []bool, lo, hi int) (int, float64) {
	pos := e.p.pos
	best, bestGain := -1, 0.0
	for v := lo; v < hi; v++ {
		if banned != nil && banned[v] {
			continue
		}
		i := pos[v]
		r := sc.rec[i]
		if e.m.isSrc[v] || (filters != nil && filters[v]) || r <= 1 {
			continue
		}
		if gn := (r - 1) * sc.suf[i]; gn > bestGain {
			best, bestGain = v, gn
		}
	}
	return best, bestGain
}

// ArgmaxImpact implements Evaluator. It is the Greedy_All inner loop and
// runs allocation-free over the engine's borrowed arena.
func (e *FloatEngine) ArgmaxImpact(filters, banned []bool) (int, float64) {
	sc := e.passes(filters, true)
	return e.argmaxGains(sc, filters, banned, 0, e.p.n)
}

// F implements Evaluator.
func (e *FloatEngine) F(filters []bool) float64 { return e.phiEmpty - e.Phi(filters) }

// MaxF implements Evaluator.
func (e *FloatEngine) MaxF() float64 { return e.maxF }
