package flow

import "fmt"

// FloatEngine evaluates the objective in float64 arithmetic. It is the
// default engine for experiments: path counts up to ~1e308 are representable
// and greedy algorithms only compare magnitudes, so the loss of exactness
// for astronomically large counts is immaterial in practice. It is also the
// only engine that supports the probabilistic (edge-weighted) model.
//
// The hot paths (Phi, F, ArgmaxImpact — the inner loop of Greedy_All) reuse
// internal scratch buffers, so a FloatEngine is not safe for concurrent
// use. Concurrent callers — the parallel candidate sharding in core.Place —
// call Clone, which shares the immutable Model and caches but gives each
// goroutine its own scratch state. Methods returning slices (Received,
// Suffix, Impacts) always return freshly allocated results.
type FloatEngine struct {
	m *Model
	// phiEmpty caches Φ(∅,V) and maxF caches F(V); both are invariants of
	// the model.
	phiEmpty float64
	maxF     float64
	// lv caches the topological level decomposition driving the parallel
	// passes; immutable once built, shared by clones.
	lv *passLevels
	// scratch buffers for the zero-allocation hot paths.
	scratchRec  []float64
	scratchEmit []float64
	scratchSuf  []float64
}

// NewFloat builds a float64 evaluator for the model.
func NewFloat(m *Model) *FloatEngine {
	e := &FloatEngine{m: m}
	e.phiEmpty = e.phi(nil)
	e.maxF = e.phiEmpty - e.phi(AllFilters(m))
	return e
}

// Model implements Evaluator.
func (e *FloatEngine) Model() *Model { return e.m }

// Clone implements Cloner: the returned engine shares the immutable Model
// and the cached Φ(∅,V)/F(V) invariants but owns fresh scratch buffers, so
// it may be used from another goroutine concurrently with the receiver.
// Cloning is O(1); scratch allocates lazily on first use.
func (e *FloatEngine) Clone() Evaluator {
	return &FloatEngine{m: e.m, phiEmpty: e.phiEmpty, maxF: e.maxF, lv: e.lv}
}

func (e *FloatEngine) weight(u, v int) float64 {
	if e.m.weight == nil {
		return 1
	}
	w := e.m.weight(u, v)
	if w < 0 || w > 1 {
		panic(fmt.Sprintf("flow: weight(%d,%d) = %v outside [0,1]", u, v, w))
	}
	return w
}

// forward computes rec and emit in topological order into freshly
// allocated slices. filters may be nil.
func (e *FloatEngine) forward(filters []bool) (rec, emit []float64) {
	rec = make([]float64, e.m.g.N())
	emit = make([]float64, e.m.g.N())
	e.forwardInto(filters, rec, emit)
	return rec, emit
}

// forwardInto runs the forward pass into caller-provided buffers.
func (e *FloatEngine) forwardInto(filters []bool, rec, emit []float64) {
	for _, v := range e.m.topo {
		e.stepForward(v, filters, rec, emit)
	}
}

// stepForward computes rec and emit at one node from its in-neighbors. It
// is the single per-node kernel shared by the serial and level-parallel
// passes, so both produce bit-identical floats.
func (e *FloatEngine) stepForward(v int, filters []bool, rec, emit []float64) {
	r := 0.0
	for _, p := range e.m.g.In(v) {
		r += e.weight(p, v) * emit[p]
	}
	rec[v] = r
	switch {
	case e.m.isSrc[v]:
		emit[v] = 1
	case filters != nil && filters[v] && r > 1:
		emit[v] = 1
	default:
		emit[v] = r
	}
}

// ensureScratch sizes the reusable buffers.
func (e *FloatEngine) ensureScratch() {
	n := e.m.g.N()
	if cap(e.scratchRec) < n {
		e.scratchRec = make([]float64, n)
		e.scratchEmit = make([]float64, n)
		e.scratchSuf = make([]float64, n)
	}
	e.scratchRec = e.scratchRec[:n]
	e.scratchEmit = e.scratchEmit[:n]
	e.scratchSuf = e.scratchSuf[:n]
}

func (e *FloatEngine) phi(filters []bool) float64 {
	e.ensureScratch()
	e.forwardInto(filters, e.scratchRec, e.scratchEmit)
	total := 0.0
	for _, r := range e.scratchRec {
		total += r
	}
	return total
}

// Phi implements Evaluator.
func (e *FloatEngine) Phi(filters []bool) float64 {
	if filters == nil {
		return e.phiEmpty
	}
	return e.phi(filters)
}

// Received implements Evaluator.
func (e *FloatEngine) Received(filters []bool) []float64 {
	rec, _ := e.forward(filters)
	return rec
}

// Suffix implements Evaluator.
func (e *FloatEngine) Suffix(filters []bool) []float64 {
	suf := make([]float64, e.m.g.N())
	e.suffixInto(filters, suf)
	return suf
}

// suffixInto runs the backward pass into a caller-provided buffer.
func (e *FloatEngine) suffixInto(filters []bool, suf []float64) {
	topo := e.m.topo
	for i := len(topo) - 1; i >= 0; i-- {
		e.stepSuffix(topo[i], filters, suf)
	}
}

// stepSuffix computes the downstream amplification at one node from its
// out-neighbors; the per-node kernel shared with the parallel pass.
func (e *FloatEngine) stepSuffix(v int, filters []bool, suf []float64) {
	s := 0.0
	for _, c := range e.m.g.Out(v) {
		w := e.weight(v, c)
		if filters != nil && filters[c] {
			s += w
		} else {
			s += w * (1 + suf[c])
		}
	}
	suf[v] = s
}

// Impacts implements Evaluator.
func (e *FloatEngine) Impacts(filters []bool) []float64 {
	rec, _ := e.forward(filters)
	suf := e.Suffix(filters)
	gains := make([]float64, len(rec))
	for v := range gains {
		if e.m.isSrc[v] || (filters != nil && filters[v]) {
			continue
		}
		excess := rec[v] - 1
		if rec[v] < 1 {
			excess = 0 // emission is unchanged by a filter when rec ≤ 1
		}
		gains[v] = excess * suf[v]
	}
	return gains
}

// ArgmaxImpact implements Evaluator. It is the Greedy_All inner loop and
// runs allocation-free over the engine's scratch buffers.
func (e *FloatEngine) ArgmaxImpact(filters, banned []bool) (int, float64) {
	e.ensureScratch()
	e.forwardInto(filters, e.scratchRec, e.scratchEmit)
	e.suffixInto(filters, e.scratchSuf)
	best, bestGain := -1, 0.0
	for v, r := range e.scratchRec {
		if banned != nil && banned[v] {
			continue
		}
		if e.m.isSrc[v] || (filters != nil && filters[v]) || r <= 1 {
			continue
		}
		if gn := (r - 1) * e.scratchSuf[v]; gn > bestGain {
			best, bestGain = v, gn
		}
	}
	return best, bestGain
}

// F implements Evaluator.
func (e *FloatEngine) F(filters []bool) float64 { return e.phiEmpty - e.Phi(filters) }

// MaxF implements Evaluator.
func (e *FloatEngine) MaxF() float64 { return e.maxF }
