package flow

import "fmt"

// FloatEngine evaluates the objective in float64 arithmetic. It is the
// default engine for experiments: path counts up to ~1e308 are representable
// and greedy algorithms only compare magnitudes, so the loss of exactness
// for astronomically large counts is immaterial in practice. It is also the
// only engine that supports the probabilistic (edge-weighted) model.
//
// The hot paths (Phi, F, ArgmaxImpact — the inner loop of Greedy_All) reuse
// internal scratch buffers, so a FloatEngine is not safe for concurrent
// use; build one engine per goroutine. Methods returning slices (Received,
// Suffix, Impacts) always return freshly allocated results.
type FloatEngine struct {
	m *Model
	// phiEmpty caches Φ(∅,V) and maxF caches F(V); both are invariants of
	// the model.
	phiEmpty float64
	maxF     float64
	// scratch buffers for the zero-allocation hot paths.
	scratchRec  []float64
	scratchEmit []float64
	scratchSuf  []float64
}

// NewFloat builds a float64 evaluator for the model.
func NewFloat(m *Model) *FloatEngine {
	e := &FloatEngine{m: m}
	e.phiEmpty = e.phi(nil)
	e.maxF = e.phiEmpty - e.phi(AllFilters(m))
	return e
}

// Model implements Evaluator.
func (e *FloatEngine) Model() *Model { return e.m }

func (e *FloatEngine) weight(u, v int) float64 {
	if e.m.weight == nil {
		return 1
	}
	w := e.m.weight(u, v)
	if w < 0 || w > 1 {
		panic(fmt.Sprintf("flow: weight(%d,%d) = %v outside [0,1]", u, v, w))
	}
	return w
}

// forward computes rec and emit in topological order into freshly
// allocated slices. filters may be nil.
func (e *FloatEngine) forward(filters []bool) (rec, emit []float64) {
	rec = make([]float64, e.m.g.N())
	emit = make([]float64, e.m.g.N())
	e.forwardInto(filters, rec, emit)
	return rec, emit
}

// forwardInto runs the forward pass into caller-provided buffers.
func (e *FloatEngine) forwardInto(filters []bool, rec, emit []float64) {
	g := e.m.g
	for _, v := range e.m.topo {
		r := 0.0
		for _, p := range g.In(v) {
			r += e.weight(p, v) * emit[p]
		}
		rec[v] = r
		switch {
		case e.m.isSrc[v]:
			emit[v] = 1
		case filters != nil && filters[v] && r > 1:
			emit[v] = 1
		default:
			emit[v] = r
		}
	}
}

// ensureScratch sizes the reusable buffers.
func (e *FloatEngine) ensureScratch() {
	n := e.m.g.N()
	if cap(e.scratchRec) < n {
		e.scratchRec = make([]float64, n)
		e.scratchEmit = make([]float64, n)
		e.scratchSuf = make([]float64, n)
	}
	e.scratchRec = e.scratchRec[:n]
	e.scratchEmit = e.scratchEmit[:n]
	e.scratchSuf = e.scratchSuf[:n]
}

func (e *FloatEngine) phi(filters []bool) float64 {
	e.ensureScratch()
	e.forwardInto(filters, e.scratchRec, e.scratchEmit)
	total := 0.0
	for _, r := range e.scratchRec {
		total += r
	}
	return total
}

// Phi implements Evaluator.
func (e *FloatEngine) Phi(filters []bool) float64 {
	if filters == nil {
		return e.phiEmpty
	}
	return e.phi(filters)
}

// Received implements Evaluator.
func (e *FloatEngine) Received(filters []bool) []float64 {
	rec, _ := e.forward(filters)
	return rec
}

// Suffix implements Evaluator.
func (e *FloatEngine) Suffix(filters []bool) []float64 {
	suf := make([]float64, e.m.g.N())
	e.suffixInto(filters, suf)
	return suf
}

// suffixInto runs the backward pass into a caller-provided buffer.
func (e *FloatEngine) suffixInto(filters []bool, suf []float64) {
	g := e.m.g
	topo := e.m.topo
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := 0.0
		for _, c := range g.Out(v) {
			w := e.weight(v, c)
			if filters != nil && filters[c] {
				s += w
			} else {
				s += w * (1 + suf[c])
			}
		}
		suf[v] = s
	}
}

// Impacts implements Evaluator.
func (e *FloatEngine) Impacts(filters []bool) []float64 {
	rec, _ := e.forward(filters)
	suf := e.Suffix(filters)
	gains := make([]float64, len(rec))
	for v := range gains {
		if e.m.isSrc[v] || (filters != nil && filters[v]) {
			continue
		}
		excess := rec[v] - 1
		if rec[v] < 1 {
			excess = 0 // emission is unchanged by a filter when rec ≤ 1
		}
		gains[v] = excess * suf[v]
	}
	return gains
}

// ArgmaxImpact implements Evaluator. It is the Greedy_All inner loop and
// runs allocation-free over the engine's scratch buffers.
func (e *FloatEngine) ArgmaxImpact(filters, banned []bool) (int, float64) {
	e.ensureScratch()
	e.forwardInto(filters, e.scratchRec, e.scratchEmit)
	e.suffixInto(filters, e.scratchSuf)
	best, bestGain := -1, 0.0
	for v, r := range e.scratchRec {
		if banned != nil && banned[v] {
			continue
		}
		if e.m.isSrc[v] || (filters != nil && filters[v]) || r <= 1 {
			continue
		}
		if gn := (r - 1) * e.scratchSuf[v]; gn > bestGain {
			best, bestGain = v, gn
		}
	}
	return best, bestGain
}

// F implements Evaluator.
func (e *FloatEngine) F(filters []bool) float64 { return e.phiEmpty - e.Phi(filters) }

// MaxF implements Evaluator.
func (e *FloatEngine) MaxF() float64 { return e.maxF }
