package flow

import (
	"fmt"

	"repro/internal/graph"
)

// Multi-item propagation — the paper's §3 notes the technical results are
// identical for the multiple-item version, and §6 names multirate sources
// as the model extension under investigation. Here each item is generated
// by its own source node (possibly at a rate ≠ 1 item per epoch) and
// propagates independently; a filter de-duplicates per item, so the total
// objective is the rate-weighted sum of the per-item objectives:
//
//	Φ_multi(A, V) = Σ_i rate_i · Φ_i(A, V)
//
// A sum of monotone submodular functions is monotone submodular, so
// Greedy_All retains its (1−1/e) guarantee on MultiEngine.
//
// Unlike the single-item model, an item's source may have in-edges: it
// receives (and counts) copies of *other* items like any relay, while for
// its own item it emits exactly one copy and recognizes — never re-relays —
// returning duplicates. Source nodes are therefore legitimate filter
// candidates in the multi-item setting.

// Item is one information stream in a multi-item model.
type Item struct {
	// Name is used in diagnostics only.
	Name string
	// Source is the node that generates the item.
	Source int
	// Rate is the item's generation rate (items per epoch); values ≤ 0
	// default to 1.
	Rate float64
}

// MultiEngine evaluates the multi-item objective. It implements Evaluator,
// so every placement algorithm in internal/core runs on it unchanged.
type MultiEngine struct {
	base    *Model
	items   []Item
	engines []*FloatEngine
	rates   []float64
}

// NewMulti builds a multi-item evaluator over a DAG. Each item's source
// must be a valid node; in-edges on sources are allowed (see the package
// comment for the semantics).
func NewMulti(g *graph.Digraph, items []Item) (*MultiEngine, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("flow: no items")
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, ErrNotDAG
	}
	// The base model drives candidate pruning (Evaluator.Model): its
	// sources default to the in-degree-zero nodes, which can never
	// usefully filter any item because they receive nothing.
	base, err := NewModel(g, nil)
	if err != nil {
		return nil, err
	}
	me := &MultiEngine{base: base, items: append([]Item(nil), items...)}
	for _, it := range items {
		if it.Source < 0 || it.Source >= g.N() {
			return nil, fmt.Errorf("flow: item %q source %d out of range [0,%d)", it.Name, it.Source, g.N())
		}
		isSrc := make([]bool, g.N())
		isSrc[it.Source] = true
		// Item models share the base model's plan cache: the plan is
		// structural (graph + weights only — source masks live in the
		// engines), so one plan serves every per-item engine.
		m := &Model{g: g, sources: []int{it.Source}, isSrc: isSrc, topo: topo, pc: base.pc}
		me.engines = append(me.engines, NewFloat(m))
		rate := it.Rate
		if rate <= 0 {
			rate = 1
		}
		me.rates = append(me.rates, rate)
	}
	return me, nil
}

// Items returns the configured items.
func (me *MultiEngine) Items() []Item { return append([]Item(nil), me.items...) }

// Model implements Evaluator; see NewMulti for what the base model means.
func (me *MultiEngine) Model() *Model { return me.base }

// Clone implements Cloner: per-item engines are cloned, everything else is
// shared immutable state.
func (me *MultiEngine) Clone() Evaluator {
	c := &MultiEngine{base: me.base, items: me.items, rates: me.rates}
	c.engines = make([]*FloatEngine, len(me.engines))
	for i, e := range me.engines {
		c.engines[i] = e.Clone().(*FloatEngine)
	}
	return c
}

// Passes implements PassCounter by summing the per-item engines' pass
// counts. Each item engine shares its counter with every clone derived
// from it, so the total attributes the multi-item placement's real pass
// workload regardless of candidate sharding — previously multi-item
// placements reported zero passes and escaped cost accounting entirely.
func (me *MultiEngine) Passes() (forward, suffix int64) {
	for _, e := range me.engines {
		f, s := e.Passes()
		forward += f
		suffix += s
	}
	return forward, suffix
}

// ReleaseScratch implements ScratchReleaser by releasing every per-item
// engine's borrowed arena.
func (me *MultiEngine) ReleaseScratch() {
	for _, e := range me.engines {
		e.ReleaseScratch()
	}
}

// Phi implements Evaluator: the rate-weighted total deliveries across all
// items.
func (me *MultiEngine) Phi(filters []bool) float64 {
	total := 0.0
	for i, e := range me.engines {
		total += me.rates[i] * e.Phi(filters)
	}
	return total
}

// PhiOf returns item i's (unweighted) Φ under the filter set.
func (me *MultiEngine) PhiOf(i int, filters []bool) float64 {
	return me.engines[i].Phi(filters)
}

// Received implements Evaluator: rate-weighted per-node deliveries.
func (me *MultiEngine) Received(filters []bool) []float64 {
	out := make([]float64, me.base.N())
	for i, e := range me.engines {
		for v, r := range e.Received(filters) {
			out[v] += me.rates[i] * r
		}
	}
	return out
}

// Suffix implements Evaluator: rate-weighted sum of per-item suffixes.
// Note the product form of the single-item impact does not survive the
// sum; use Impacts for exact gains.
func (me *MultiEngine) Suffix(filters []bool) []float64 {
	out := make([]float64, me.base.N())
	for i, e := range me.engines {
		for v, s := range e.Suffix(filters) {
			out[v] += me.rates[i] * s
		}
	}
	return out
}

// Impacts implements Evaluator: the exact multi-item marginal gain of each
// candidate, Σ_i rate_i · gain_i(v).
func (me *MultiEngine) Impacts(filters []bool) []float64 {
	out := make([]float64, me.base.N())
	for i, e := range me.engines {
		for v, gn := range e.Impacts(filters) {
			out[v] += me.rates[i] * gn
		}
	}
	return out
}

// ArgmaxImpact implements Evaluator.
func (me *MultiEngine) ArgmaxImpact(filters, banned []bool) (int, float64) {
	gains := me.Impacts(filters)
	best, bestGain := -1, 0.0
	for v, gn := range gains {
		if banned != nil && banned[v] {
			continue
		}
		if gn > bestGain {
			best, bestGain = v, gn
		}
	}
	return best, bestGain
}

// F implements Evaluator.
func (me *MultiEngine) F(filters []bool) float64 {
	total := 0.0
	for i, e := range me.engines {
		total += me.rates[i] * e.F(filters)
	}
	return total
}

// MaxF implements Evaluator: the rate-weighted sum of per-item maxima
// (filters everywhere except the respective item's source).
func (me *MultiEngine) MaxF() float64 {
	total := 0.0
	for i, e := range me.engines {
		total += me.rates[i] * e.MaxF()
	}
	return total
}
