package flow

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchLayered builds a layered DAG in the shape of the paper's synthetic
// communication networks: n nodes in layers of the given width, a
// backbone edge from each node to its same-slot successor one layer down
// (pinning every node's depth to its layer index), plus ~epn-1 extra
// forward edges per node. It returns the view and the extra-edge pool —
// churning only extra edges never moves a depth, the level structure a
// live layered network keeps while its links churn.
func benchLayered(n, width, epn int, seed int64) (*testDyn, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	d := newTestDyn(n)
	for v := width; v < n; v++ {
		d.addEdge(v-width, v)
	}
	extra := make([][2]int, 0, n*(epn-1))
	for len(extra) < n*(epn-1) {
		u := rng.Intn(n - width)
		lo := (u/width + 1) * width
		v := lo + rng.Intn(n-lo)
		if d.addEdge(u, v) {
			extra = append(extra, [2]int{u, v})
		}
	}
	return d, extra
}

// benchBanded builds a random DAG whose every edge spans at most band ids,
// so depth grows with id and is tightly coupled along the graph: removing
// edges anywhere can shift every downstream level. This is the splicer's
// worst case — the cone threshold is expected to degrade it to rebuild
// cost rather than let a splice do strictly more work.
func benchBanded(n, epn, band int, seed int64) (*testDyn, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	d := newTestDyn(n)
	edges := make([][2]int, 0, n*epn)
	for len(edges) < n*epn {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(band)
		if v >= n {
			continue
		}
		if d.addEdge(u, v) {
			edges = append(edges, [2]int{u, v})
		}
	}
	return d, edges
}

// benchRepair times plan repair under churn: each iteration removes a
// random c-edge set from the pool in one batch and re-adds it in the
// next, timing only the Splicer.Apply calls (graph mutation and batch
// construction run with the timer stopped). The edge set returns to the
// original after every iteration, so cost is stationary across b.N.
func benchRepair(b *testing.B, d *testDyn, pool [][2]int, churn float64, opts SpliceOptions) {
	s := NewSplicer(d, nil, opts)
	c := int(churn * float64(len(pool)))
	if c < 1 {
		c = 1
	}
	rng := rand.New(rand.NewSource(7))
	sel := make([][2]int, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range sel {
			sel[j] = pool[rng.Intn(len(pool))]
		}
		df, db := d.apply(testBatch{remove: sel})
		b.StartTimer()
		s.Apply(df, db, 0)
		b.StopTimer()
		df, db = d.apply(testBatch{add: sel})
		b.StartTimer()
		s.Apply(df, db, 0)
	}
	splices, rebuilds := s.Counters()
	b.ReportMetric(float64(splices)/float64(splices+rebuilds), "spliced-frac")
}

// BenchmarkPlanSplice is the tentpole's cost claim: incremental plan
// splicing vs from-scratch rebuild (MaxConeFrac < 0 forces the rebuild
// path through the identical driver) across churn rates and graph sizes.
// The layered workload is the design case (stable levels, link churn);
// the banded workload documents graceful degradation when churn shifts
// the level structure itself. Each op is a remove-batch repair plus an
// add-batch repair, so per-repair cost is half the reported ns/op.
func BenchmarkPlanSplice(b *testing.B) {
	const epn = 4
	for _, n := range []int{10_000, 50_000} {
		for _, churn := range []float64{0.001, 0.01, 0.05} {
			d, pool := benchLayered(n, 50, epn, 42)
			name := fmt.Sprintf("layered/n=%d/churn=%.1f%%", n, churn*100)
			b.Run(name+"/splice", func(b *testing.B) {
				benchRepair(b, d, pool, churn, SpliceOptions{})
			})
			b.Run(name+"/rebuild", func(b *testing.B) {
				benchRepair(b, d, pool, churn, SpliceOptions{MaxConeFrac: -1})
			})
		}
	}
	d, pool := benchBanded(50_000, epn, 64, 42)
	b.Run("banded/n=50000/churn=1.0%/splice", func(b *testing.B) {
		benchRepair(b, d, pool, 0.01, SpliceOptions{})
	})
	b.Run("banded/n=50000/churn=1.0%/rebuild", func(b *testing.B) {
		benchRepair(b, d, pool, 0.01, SpliceOptions{MaxConeFrac: -1})
	})
}
