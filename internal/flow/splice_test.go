package flow

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"repro/internal/graph"
)

// --- A minimal mutable DAG view for exercising the Splicer.
//
// flow cannot import dyn (dyn imports flow), so splice tests drive the
// Splicer through a local DynDigraph that mimics dyn.Dynamic's observable
// behavior: adjacency rows mutate by append / swap-delete (so their order
// is arbitrary, never sorted) and every edge goes low→high, making the
// identity a maintained topological order.

type testDyn struct{ out, in [][]int }

func newTestDyn(n int) *testDyn {
	return &testDyn{out: make([][]int, n), in: make([][]int, n)}
}

func (d *testDyn) N() int          { return len(d.out) }
func (d *testDyn) Out(v int) []int { return d.out[v] }
func (d *testDyn) In(v int) []int  { return d.in[v] }

// OrdOf: edges are always low→high, so ascending id is a valid
// topological order for every edge set these tests construct.
func (d *testDyn) OrdOf(v int) int { return v }

func (d *testDyn) has(u, v int) bool {
	for _, w := range d.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

func (d *testDyn) addEdge(u, v int) bool {
	if u == v || d.has(u, v) {
		return false
	}
	d.out[u] = append(d.out[u], v)
	d.in[v] = append(d.in[v], u)
	return true
}

func rmSwap(s []int, x int) []int {
	for i, y := range s {
		if y == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// testBatch is one mutation batch: node growth plus edge adds/removes.
type testBatch struct {
	addNodes    int
	add, remove [][2]int
}

// apply mutates the view the way dyn.Dynamic would (append adds,
// swap-delete removes) and returns the dirty-cone seeds dyn.ApplyResult
// reports: deduped heads and tails of every actually changed edge.
func (d *testDyn) apply(b testBatch) (dirtyFwd, dirtyBwd []int) {
	for i := 0; i < b.addNodes; i++ {
		d.out = append(d.out, nil)
		d.in = append(d.in, nil)
	}
	seenF, seenB := map[int]bool{}, map[int]bool{}
	touch := func(u, v int) {
		if !seenF[v] {
			seenF[v] = true
			dirtyFwd = append(dirtyFwd, v)
		}
		if !seenB[u] {
			seenB[u] = true
			dirtyBwd = append(dirtyBwd, u)
		}
	}
	for _, e := range b.add {
		if d.addEdge(e[0], e[1]) {
			touch(e[0], e[1])
		}
	}
	for _, e := range b.remove {
		u, v := e[0], e[1]
		if !d.has(u, v) {
			continue
		}
		d.out[u] = rmSwap(d.out[u], v)
		d.in[v] = rmSwap(d.in[v], u)
		touch(u, v)
	}
	return dirtyFwd, dirtyBwd
}

// model builds the reference Model over an immutable snapshot of the
// view — the from-scratch side every splice is pinned against.
func (d *testDyn) model(t testing.TB) *Model {
	t.Helper()
	b := graph.NewBuilder(d.N())
	for u, row := range d.out {
		for _, v := range row {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// plansEqual asserts two plans are array-for-array identical — the
// tentpole contract: a spliced plan must be indistinguishable from
// buildPlan run from scratch on the mutated graph.
func plansEqual(t testing.TB, what string, got, want *Plan) {
	t.Helper()
	if got.n != want.n || got.weighted != want.weighted || got.identity != want.identity {
		t.Fatalf("%s: header mismatch: n %d/%d weighted %v/%v identity %v/%v",
			what, got.n, want.n, got.weighted, want.weighted, got.identity, want.identity)
	}
	eq32 := func(field string, a, b []int32) {
		if !slices.Equal(a, b) {
			t.Fatalf("%s: %s mismatch:\n got %v\nwant %v", what, field, a, b)
		}
	}
	eq32("perm", got.perm, want.perm)
	eq32("pos", got.pos, want.pos)
	eq32("levelOff", got.levelOff, want.levelOff)
	eq32("inOff", got.inOff, want.inOff)
	eq32("inAdj", got.inAdj, want.inAdj)
	eq32("outOff", got.outOff, want.outOff)
	eq32("outAdj", got.outAdj, want.outAdj)
	if (got.inW != nil) != (want.inW != nil) || (got.outW != nil) != (want.outW != nil) {
		t.Fatalf("%s: weight array presence mismatch", what)
	}
	if len(got.falseMask) != len(want.falseMask) {
		t.Fatalf("%s: falseMask length %d != %d", what, len(got.falseMask), len(want.falseMask))
	}
	if got.chunkHint != want.chunkHint {
		t.Fatalf("%s: chunkHint %d != %d", what, got.chunkHint, want.chunkHint)
	}
	if len(got.levelChunks) != len(want.levelChunks) {
		t.Fatalf("%s: levelChunks count %d != %d", what, len(got.levelChunks), len(want.levelChunks))
	}
	for l := range got.levelChunks {
		if !slices.Equal(got.levelChunks[l], want.levelChunks[l]) {
			t.Fatalf("%s: levelChunks[%d] %v != %v", what, l, got.levelChunks[l], want.levelChunks[l])
		}
	}
}

// checkSpliceObservables pins every engine observable of a model stood up
// over the spliced plan (NewModelFromPlan) bit-for-bit against the
// reference model: float and big, serial and at P = 4 and GOMAXPROCS.
func checkSpliceObservables(t *testing.T, name string, sp *Plan, mRef *Model) {
	t.Helper()
	mSpl, err := NewModelFromPlan(sp, nil)
	if err != nil {
		t.Fatalf("%s: NewModelFromPlan: %v", name, err)
	}
	if mSpl.Plan() != sp {
		t.Fatalf("%s: NewModelFromPlan did not pin the plan", name)
	}
	procsList := []int{1, 4, runtime.GOMAXPROCS(0)}
	evS, evR := NewFloat(mSpl), NewFloat(mRef)
	bgS, bgR := NewBig(mSpl), NewBig(mRef)
	for fi, filters := range goldenFilterSets(mRef, evR) {
		tag := fmt.Sprintf("%s set %d", name, fi)
		checkBitsSlice(t, tag+" Received", evS.Received(filters), evR.Received(filters))
		checkBitsSlice(t, tag+" Suffix", evS.Suffix(filters), evR.Suffix(filters))
		checkBitsSlice(t, tag+" Impacts", evS.Impacts(filters), evR.Impacts(filters))
		if !eqBits(evS.phi(filters), evR.phi(filters)) {
			t.Fatalf("%s phi: %v != %v", tag, evS.phi(filters), evR.phi(filters))
		}
		sv, sg := evS.ArgmaxImpact(filters, filters)
		rv, rg := evR.ArgmaxImpact(filters, filters)
		if sv != rv || !eqBits(sg, rg) {
			t.Fatalf("%s ArgmaxImpact: (%d, %v) != (%d, %v)", tag, sv, sg, rv, rg)
		}
		if got, want := bgS.PhiBig(filters), bgR.PhiBig(filters); got.Cmp(want) != 0 {
			t.Fatalf("%s PhiBig: %v != %v", tag, got, want)
		}
		checkBitsSlice(t, tag+" big Impacts", bgS.Impacts(filters), bgR.Impacts(filters))
		for _, procs := range procsList {
			checkBitsSlice(t, tag+" ImpactsP", evS.ImpactsP(filters, procs), evR.ImpactsP(filters, procs))
			pv, pg := evS.ArgmaxImpactP(filters, filters, procs)
			if pv != rv || !eqBits(pg, rg) {
				t.Fatalf("%s ArgmaxImpactP(procs %d): (%d, %v) != (%d, %v)", tag, procs, pv, pg, rv, rg)
			}
			bv, bg := bgS.ArgmaxImpactP(filters, filters, procs)
			bv2, bg2 := bgR.ArgmaxImpactP(filters, filters, procs)
			if bv != bv2 || !eqBits(bg, bg2) {
				t.Fatalf("%s big ArgmaxImpactP(procs %d): (%d, %v) != (%d, %v)", tag, procs, bv, bg, bv2, bg2)
			}
		}
	}
}

func randomBatch(rng *rand.Rand, d *testDyn) testBatch {
	var b testBatch
	if rng.Intn(3) == 0 {
		b.addNodes = 1 + rng.Intn(3)
	}
	total := d.N() + b.addNodes
	for i := 0; i < 2+rng.Intn(6); i++ {
		u, v := rng.Intn(total), rng.Intn(total)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		b.add = append(b.add, [2]int{u, v})
	}
	var edges [][2]int
	for u, row := range d.out {
		for _, v := range row {
			edges = append(edges, [2]int{u, v})
		}
	}
	for i := 0; i < rng.Intn(4) && len(edges) > 0; i++ {
		b.remove = append(b.remove, edges[rng.Intn(len(edges))])
	}
	return b
}

// TestPlanSpliceGolden drives a Splicer through a long random mutation
// sequence (edge churn + node growth) and asserts after every batch that
// the spliced plan is array-identical to a from-scratch buildPlan and
// that every engine observable over it is bit-identical, float and big,
// serial and parallel.
func TestPlanSpliceGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := newTestDyn(140)
	for i := 0; i < 320; i++ {
		u, v := rng.Intn(140), rng.Intn(140)
		if u > v {
			u, v = v, u
		}
		d.addEdge(u, v)
	}
	s := NewSplicer(d, nil, SpliceOptions{})
	plansEqual(t, "initial", s.Plan(), d.model(t).Plan())
	arena := s.Plan().arena

	for round := 0; round < 16; round++ {
		b := randomBatch(rng, d)
		df, db := d.apply(b)
		p, st := s.Apply(df, db, b.addNodes)
		name := fmt.Sprintf("round %d (spliced=%v reason=%q)", round, st.Spliced, st.Reason)
		mRef := d.model(t)
		checkPlanInvariants(t, mRef)
		plansEqual(t, name, p, mRef.Plan())
		if p.arena != arena {
			t.Fatalf("%s: scratch arena not shared across the splice lineage", name)
		}
		if st.Spliced && st.Work() <= 0 {
			t.Fatalf("%s: spliced repair reported no work: %+v", name, st)
		}
		checkSpliceObservables(t, name, p, mRef)
	}
	splices, rebuilds := s.Counters()
	if splices == 0 {
		t.Fatalf("no batch took the splice path (rebuilds=%d)", rebuilds)
	}
}

// TestPlanSpliceNoMove pins the pure-CSR fast path: edge churn that
// changes no node's depth shares the old plan's permutation, levels and
// chunk tables outright and still matches a from-scratch build.
func TestPlanSpliceNoMove(t *testing.T) {
	d := newTestDyn(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		d.addEdge(e[0], e[1])
	}
	s := NewSplicer(d, nil, SpliceOptions{})
	old := s.Plan()

	df, db := d.apply(testBatch{add: [][2]int{{0, 3}}}) // depth[3] stays 3
	p, st := s.Apply(df, db, 0)
	if !st.Spliced || st.Moved != 0 {
		t.Fatalf("expected a no-move splice, got %+v", st)
	}
	if &p.perm[0] != &old.perm[0] || &p.levelOff[0] != &old.levelOff[0] {
		t.Fatalf("no-move splice should share perm/levelOff with the old plan")
	}
	plansEqual(t, "no-move add", p, d.model(t).Plan())

	df, db = d.apply(testBatch{remove: [][2]int{{0, 3}}})
	p, st = s.Apply(df, db, 0)
	if !st.Spliced || st.Moved != 0 {
		t.Fatalf("expected a no-move splice on removal, got %+v", st)
	}
	plansEqual(t, "no-move remove", p, d.model(t).Plan())
}

// TestPlanSpliceFallback pins the rebuild threshold: with MaxConeFrac < 0
// every Apply falls back, and the rebuilt plan is still identical to a
// from-scratch build (the fallback is a pure perf decision, never a
// semantic one).
func TestPlanSpliceFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := newTestDyn(60)
	for i := 0; i < 140; i++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u > v {
			u, v = v, u
		}
		d.addEdge(u, v)
	}
	s := NewSplicer(d, nil, SpliceOptions{MaxConeFrac: -1})
	for round := 0; round < 4; round++ {
		b := randomBatch(rng, d)
		df, db := d.apply(b)
		p, st := s.Apply(df, db, b.addNodes)
		if st.Spliced {
			t.Fatalf("round %d: MaxConeFrac<0 must force a rebuild, got %+v", round, st)
		}
		if st.Reason == "" {
			t.Fatalf("round %d: rebuild must carry a reason", round)
		}
		plansEqual(t, fmt.Sprintf("fallback round %d", round), p, d.model(t).Plan())
	}
	splices, rebuilds := s.Counters()
	if splices != 0 || rebuilds != 4 {
		t.Fatalf("counters = (%d, %d), want (0, 4)", splices, rebuilds)
	}
}

// TestSplicerAdoptAndRebuild pins NewSplicer's plan adoption (the
// registry hands over the model's already built plan) and the forced
// Rebuild resync path.
func TestSplicerAdoptAndRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := newTestDyn(80)
	for i := 0; i < 180; i++ {
		u, v := rng.Intn(80), rng.Intn(80)
		if u > v {
			u, v = v, u
		}
		d.addEdge(u, v)
	}
	mRef := d.model(t)
	adopted := mRef.Plan()
	s := NewSplicer(d, adopted, SpliceOptions{})
	if s.Plan() != adopted {
		t.Fatal("NewSplicer did not adopt the compatible plan")
	}

	// A batch applied on top of the adopted plan still splices to the
	// canonical result, proving the derived depth state was right.
	b := randomBatch(rng, d)
	df, db := d.apply(b)
	p, _ := s.Apply(df, db, b.addNodes)
	plansEqual(t, "after adopt", p, d.model(t).Plan())
	if p.arena != adopted.arena {
		t.Fatal("spliced plan must keep the adopted plan's arena")
	}

	// Mutate the view behind the splicer's back; Rebuild resyncs.
	d.apply(testBatch{add: [][2]int{{0, 79}, {1, 78}}})
	p = s.Rebuild()
	plansEqual(t, "forced rebuild", p, d.model(t).Plan())
	if st := s.Last(); st.Spliced || st.Reason != "forced" {
		t.Fatalf("Rebuild stats = %+v, want forced rebuild", st)
	}

	// Desync guard: lie about node growth; Apply must notice and rebuild.
	d.apply(testBatch{addNodes: 1})
	p, st := s.Apply(nil, nil, 0)
	if st.Spliced || st.Reason != "desync" {
		t.Fatalf("desync Apply stats = %+v, want desync rebuild", st)
	}
	plansEqual(t, "desync rebuild", p, d.model(t).Plan())
}

// FuzzPlanSplice feeds random DAGs plus random mutation batches through
// the Splicer and asserts the spliced plan is array-identical to a
// from-scratch buildPlan after every batch, with bit-identical float
// phi/impacts over the spliced-plan model.
func FuzzPlanSplice(f *testing.F) {
	f.Add(uint8(6), []byte{0, 1, 1, 2, 2, 3}, []byte{0, 0, 3, 1, 1, 4, 2, 0, 0})
	f.Add(uint8(9), []byte{0, 4, 4, 8, 1, 5}, []byte{2, 3, 0, 0, 1, 2, 1, 0, 4})
	f.Add(uint8(2), []byte{}, []byte{2, 0, 0, 2, 1, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, nRaw uint8, raw, muts []byte) {
		n := int(nRaw%48) + 2
		d := newTestDyn(n)
		for i := 0; i+1 < len(raw) && i < 192; i += 2 {
			u, v := int(raw[i])%n, int(raw[i+1])%n
			if u > v {
				u, v = v, u
			}
			d.addEdge(u, v)
		}
		s := NewSplicer(d, nil, SpliceOptions{})
		plansEqual(t, "initial", s.Plan(), d.model(t).Plan())

		// Decode mutation batches: 3 bytes per op, up to 4 ops per batch.
		for off := 0; off+2 < len(muts) && off < 96; {
			var b testBatch
			for k := 0; k < 4 && off+2 < len(muts); k++ {
				op, x, y := muts[off], int(muts[off+1]), int(muts[off+2])
				off += 3
				total := d.N() + b.addNodes
				switch op % 3 {
				case 0:
					u, v := x%total, y%total
					if u > v {
						u, v = v, u
					}
					if u != v {
						b.add = append(b.add, [2]int{u, v})
					}
				case 1:
					u, v := x%total, y%total
					if u > v {
						u, v = v, u
					}
					if u != v {
						b.remove = append(b.remove, [2]int{u, v})
					}
				case 2:
					nv := d.N() + b.addNodes
					b.addNodes++
					b.add = append(b.add, [2]int{x % nv, nv})
				}
			}
			df, db := d.apply(b)
			p, _ := s.Apply(df, db, b.addNodes)
			mRef := d.model(t)
			checkPlanInvariants(t, mRef)
			plansEqual(t, "spliced", p, mRef.Plan())

			mSpl, err := NewModelFromPlan(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			evS, evR := NewFloat(mSpl), NewFloat(mRef)
			filters := make([]bool, d.N())
			for v := range filters {
				filters[v] = !mRef.IsSource(v) && v%3 == 0
			}
			for _, fs := range [][]bool{nil, filters} {
				if !eqBits(evS.phi(fs), evR.phi(fs)) {
					t.Fatalf("phi mismatch: %v vs %v", evS.phi(fs), evR.phi(fs))
				}
				got, want := evS.Impacts(fs), evR.Impacts(fs)
				for v := range got {
					if !eqBits(got[v], want[v]) {
						t.Fatalf("impacts[%d]: %v vs %v", v, got[v], want[v])
					}
				}
			}
		}
	})
}
