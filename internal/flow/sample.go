package flow

import (
	"math"

	"repro/internal/sched"
)

// SamplingEngine estimates the objective with EDGE-SAMPLED topological
// passes over the model's shared execution Plan. Where the exact engines
// accumulate every in-edge of every node, a sampled forward pass visits
// only a per-node subset of a high-degree node's edges and scales the
// partial sum back up, so one pass costs O(V + rate·E) instead of
// O(V + E) — the lever that opens graphs where exact O(E)-per-pass
// evaluation is unaffordable. Low-degree rows (the overwhelming majority
// in power-law graphs) fall below the sampling floor and are computed
// exactly, so all of the variance concentrates on hubs, where averaging
// across many sampled edges is also most effective.
//
// Estimator. For node i with in-degree d above the floor, one pass
// visits m = ceil(rate·d) SYSTEMATICALLY sampled edges — evenly strided
// distinct indices with a random fractional offset, so each edge is
// included with probability exactly m/d from a single draw per row —
// and estimates
//
//	rec'(i) = (d/m) · Σ_t w(e_t)·emit'(e_t)
//
// an unbiased estimate of the exact recurrence given the upstream emit'
// values. Estimate error concentrates where a row's sampled values are
// heterogeneous: the engine is at its best on the hub-dominated
// propagation graphs the paper targets (many same-level inputs of
// comparable magnitude) and honest — via the reported interval — on
// deep graphs whose per-level noise compounds multiplicatively.
// The source/filter emission rule is applied to the estimate
// (emit' = 1 when rec' > 1 at a filter), which — exactly like the float
// engine's min(1, E[rec]) under the probabilistic model — introduces a
// small Jensen bias at filters; the engine therefore reports estimates,
// and callers that need guarantees (core's approx-celf) re-check the few
// decisions they commit on an exact engine. The suffix pass is sampled
// the same way over out-edges. An estimate averages Samples independent
// passes and reports Φ with an MCResult-style confidence interval from
// the per-pass spread.
//
// Determinism. Every random draw comes from a splitmix64 stream derived
// ONLY from (Seed, pass index, node id) — never from goroutine identity,
// chunk boundaries or scheduler state — so estimates are bit-for-bit
// reproducible for a given seed at ANY Parallelism and on any scheduler
// size, the same contract the exact parallel passes honor. Passes shard
// by topological level across sched.Default() exactly like the exact
// kernels.
//
// A SamplingEngine implements Evaluator (all results are estimates), is
// NOT safe for concurrent use, and follows the FloatEngine scratch
// discipline: Clone for concurrent callers, ReleaseScratch to hand the
// borrowed arena back.
type SamplingEngine struct {
	m *Model
	p *Plan
	// src is the plan-order source mask; immutable, shared by clones.
	src  []bool
	opts SampleOptions

	// phiEmpty caches the Φ(∅,V) estimate made at construction.
	phiEmpty MCResult
	// maxF lazily caches the F(V) estimate (one extra Φ estimate).
	maxF    float64
	maxFSet bool

	// sc is the per-pass working set borrowed from the plan arena.
	sc *floatScratch
	// acc accumulates across the Samples passes of one estimate.
	acc *sampleAcc
	// pc counts sampled topological passes; shared with every clone.
	pc *passCount
}

// SampleOptions configures a SamplingEngine.
type SampleOptions struct {
	// Samples is the number of independent sampled passes averaged per
	// estimate; the confidence interval tightens as 1/√Samples. 0 means
	// DefaultSamples.
	Samples int
	// EdgeRate is the fraction of a high-degree node's edges one sampled
	// pass visits; 0 means DefaultEdgeRate, values are clamped to (0,1].
	EdgeRate float64
	// MinEdges floors the per-node sampled edge count: rows whose floor
	// reaches their degree are computed exactly, so low-degree nodes
	// carry no sampling noise at all. 0 means DefaultMinSampleEdges.
	MinEdges int
	// Seed drives the deterministic per-node sample streams. A given
	// (Seed, Samples, EdgeRate) triple reproduces every estimate
	// bit-for-bit at any Parallelism.
	Seed int64
	// Parallelism bounds the level-parallel sharding of each sampled
	// pass on the shared scheduler. 0 means the scheduler's chunk hint;
	// 1 runs serially. It never affects results.
	Parallelism int
}

// Defaults for SampleOptions zero fields.
const (
	DefaultSamples        = 8
	DefaultEdgeRate       = 0.25
	DefaultMinSampleEdges = 8

	// maxSamples bounds a request's per-estimate pass count.
	maxSamples = 256
)

// normalized applies defaults and clamps.
func (o SampleOptions) normalized() SampleOptions {
	if o.Samples <= 0 {
		o.Samples = DefaultSamples
	}
	if o.Samples > maxSamples {
		o.Samples = maxSamples
	}
	if o.EdgeRate <= 0 {
		o.EdgeRate = DefaultEdgeRate
	}
	if o.EdgeRate > 1 {
		o.EdgeRate = 1
	}
	if o.MinEdges <= 0 {
		o.MinEdges = DefaultMinSampleEdges
	}
	if o.Parallelism == 0 {
		o.Parallelism = sched.Default().ChunkHint()
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return o
}

// sampleAcc accumulates plan-indexed pass sums and per-pass Φ samples
// across the Samples passes of one estimate.
type sampleAcc struct {
	rec, suf []float64
	// gain is ORIGINAL-id-indexed per-pass marginal-gain sums.
	gain []float64
	// phi holds one Φ sample per pass.
	phi []float64
}

func (a *sampleAcc) ensure(n int) {
	if cap(a.rec) < n {
		a.rec = make([]float64, n)
		a.suf = make([]float64, n)
		a.gain = make([]float64, n)
	}
	a.rec, a.suf, a.gain = a.rec[:n], a.suf[:n], a.gain[:n]
	a.phi = a.phi[:0]
}

// splitmix64 mixing constants (Steele et al., "Fast splittable
// pseudorandom number generators").
const (
	sampleGamma uint64 = 0x9E3779B97F4A7C15
	suffixSalt  uint64 = 0xD1B54A32D192ED03
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix used to
// derive independent streams from (seed, pass, node) coordinates.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// nodeStream seeds node i's draw stream for one pass.
func nodeStream(passSeed uint64, i int) uint64 {
	return mix64(passSeed ^ mix64(uint64(i)+sampleGamma))
}

// rowOffset turns a row's draw into the systematic-sampling fractional
// offset in [0, stride): the one random quantity a sampled row consumes.
func rowOffset(draw uint64, stride float64) float64 {
	return float64(draw>>11) / (1 << 53) * stride
}

// NewSampling builds a sampling evaluator over the model's plan. The
// construction cost is one Φ(∅,V) estimate (Samples sampled forward
// passes); F(V) is estimated lazily on first MaxF use.
func NewSampling(m *Model, opts SampleOptions) *SamplingEngine {
	p := m.Plan()
	src := make([]bool, p.n)
	for i, v := range p.perm {
		src[i] = m.isSrc[v]
	}
	e := &SamplingEngine{m: m, p: p, src: src, opts: opts.normalized(), pc: &passCount{}}
	e.phiEmpty = e.PhiEstimate(nil)
	return e
}

// Model implements Evaluator.
func (e *SamplingEngine) Model() *Model { return e.m }

// Config returns the normalized options the engine runs with.
func (e *SamplingEngine) Config() SampleOptions { return e.opts }

// Clone implements Cloner: the clone shares the immutable Model, Plan,
// source mask and cached Φ(∅,V) estimate but owns private scratch, so it
// may run concurrently with the receiver and produces identical
// estimates (all streams derive from coordinates, not state).
func (e *SamplingEngine) Clone() Evaluator {
	return &SamplingEngine{
		m: e.m, p: e.p, src: e.src, opts: e.opts,
		phiEmpty: e.phiEmpty, maxF: e.maxF, maxFSet: e.maxFSet, pc: e.pc,
	}
}

// ReleaseScratch implements ScratchReleaser.
func (e *SamplingEngine) ReleaseScratch() {
	e.p.putScratch(e.sc)
	e.sc = nil
	e.acc = nil
}

// Passes implements PassCounter; it counts SAMPLED passes, each costing
// O(V + EdgeRate·E) rather than an exact engine's O(V + E).
func (e *SamplingEngine) Passes() (forward, suffix int64) {
	return e.pc.fwd.Load(), e.pc.suf.Load()
}

func (e *SamplingEngine) scratch() *floatScratch {
	if e.sc == nil {
		e.sc = e.p.getScratch()
	}
	return e.sc
}

func (e *SamplingEngine) accumulators() *sampleAcc {
	if e.acc == nil {
		e.acc = &sampleAcc{}
	}
	e.acc.ensure(e.p.n)
	return e.acc
}

// rowSampleSize returns how many edge draws a degree-d row gets, or d
// itself when the row is computed exactly.
func (e *SamplingEngine) rowSampleSize(d int) int {
	m := int(math.Ceil(e.opts.EdgeRate * float64(d)))
	if m < e.opts.MinEdges {
		m = e.opts.MinEdges
	}
	if m >= d {
		return d
	}
	return m
}

// sampledForwardRange is forwardRange with per-row edge sampling: exact
// below the sampling floor, m systematically sampled distinct edges
// scaled by d/m above it. Draws derive from (passSeed, i) only, so any
// chunking of [lo, hi) produces identical results.
func (e *SamplingEngine) sampledForwardRange(passSeed uint64, fmask []bool, rec, emit []float64, lo, hi int) {
	p := e.p
	inOff, inAdj, inW := p.inOff, p.inAdj, p.inW
	src := e.src
	for i := lo; i < hi; i++ {
		rowLo, rowHi := int(inOff[i]), int(inOff[i+1])
		d := rowHi - rowLo
		var r float64
		if m := e.rowSampleSize(d); m >= d {
			if inW == nil {
				for _, q := range inAdj[rowLo:rowHi] {
					r += emit[q]
				}
			} else {
				adj := inAdj[rowLo:rowHi]
				w := inW[rowLo:rowHi]
				w = w[:len(adj)]
				for k, q := range adj {
					r += w[k] * emit[q]
				}
			}
		} else {
			stride := float64(d) / float64(m)
			u := rowOffset(nodeStream(passSeed, i), stride)
			var sum float64
			for t := 0; t < m; t++ {
				j := rowLo + int(u+float64(t)*stride)
				if j >= rowHi {
					j = rowHi - 1
				}
				if inW == nil {
					sum += emit[inAdj[j]]
				} else {
					sum += inW[j] * emit[inAdj[j]]
				}
			}
			r = sum * stride
		}
		rec[i] = r
		ev := r
		if src[i] || (fmask[i] && r > 1) {
			ev = 1
		}
		emit[i] = ev
	}
}

// sampledSuffixRange is suffixRange with the same per-row sampling over
// out-edges; the stream is salted so forward and suffix draws for one
// node are independent.
func (e *SamplingEngine) sampledSuffixRange(passSeed uint64, fmask []bool, suf []float64, lo, hi int) {
	p := e.p
	outOff, outAdj, outW := p.outOff, p.outAdj, p.outW
	mw := p.mulW
	seed := passSeed ^ suffixSalt
	for i := hi - 1; i >= lo; i-- {
		rowLo, rowHi := int(outOff[i]), int(outOff[i+1])
		d := rowHi - rowLo
		var s float64
		if mw != nil {
			// Coarse plan: seed with the supernode's own multiplicity,
			// exactly like the exact suffix kernel. Never sampled — it is
			// a node term, not an edge term.
			s = mw[i]
		}
		if m := e.rowSampleSize(d); m >= d {
			if outW == nil {
				for _, c := range outAdj[rowLo:rowHi] {
					t := 1 + suf[c]
					if fmask[c] {
						t = 1
					}
					s += t
				}
			} else {
				adj := outAdj[rowLo:rowHi]
				w := outW[rowLo:rowHi]
				w = w[:len(adj)]
				for k, c := range adj {
					t := 1 + suf[c]
					if fmask[c] {
						t = 1
					}
					s += w[k] * t
				}
			}
		} else {
			stride := float64(d) / float64(m)
			u := rowOffset(nodeStream(seed, i), stride)
			var sum float64
			for t := 0; t < m; t++ {
				j := rowLo + int(u+float64(t)*stride)
				if j >= rowHi {
					j = rowHi - 1
				}
				c := outAdj[j]
				tv := 1 + suf[c]
				if fmask[c] {
					tv = 1
				}
				if outW == nil {
					sum += tv
				} else {
					sum += outW[j] * tv
				}
			}
			s += sum * stride
		}
		suf[i] = s
	}
}

// passSeed derives pass s's stream root from the engine seed.
func (e *SamplingEngine) passSeed(s int) uint64 {
	return mix64(mix64(uint64(e.opts.Seed)) + uint64(s+1)*sampleGamma)
}

// estimate runs Samples independent sampled passes under filters,
// level-sharded on the shared scheduler, and leaves the per-node sums
// (and, with suffix, per-pass marginal gains) in the accumulators.
func (e *SamplingEngine) estimate(filters []bool, withSuffix bool) *sampleAcc {
	sc := e.scratch()
	fm := e.p.fillMask(sc.fmask, filters)
	acc := e.accumulators()
	n, procs := e.p.n, e.opts.Parallelism
	clear(acc.rec)
	clear(acc.suf)
	clear(acc.gain)
	perm, isSrc := e.p.perm, e.m.isSrc
	for s := 0; s < e.opts.Samples; s++ {
		ps := e.passSeed(s)
		for l := 0; l < e.p.numLevels(); l++ {
			e.p.runLevel(l, procs, func(lo, hi int) {
				e.sampledForwardRange(ps, fm, sc.rec, sc.emit, lo, hi)
			})
		}
		e.pc.fwd.Add(1)
		acc.phi = append(acc.phi, e.p.sumPhi(sc.rec, sc.emit))
		for i, r := range sc.rec {
			acc.rec[i] += r
		}
		if !withSuffix {
			continue
		}
		for l := e.p.numLevels() - 1; l >= 0; l-- {
			e.p.runLevel(l, procs, func(lo, hi int) {
				e.sampledSuffixRange(ps, fm, sc.suf, lo, hi)
			})
		}
		e.pc.suf.Add(1)
		for i, sv := range sc.suf {
			acc.suf[i] += sv
		}
		// Per-pass marginal gains: the closed form evaluated on ONE
		// pass's coherent (rec, suf) pair, then averaged across passes.
		// Averaging the products (not products of averages) keeps the
		// estimate an upper-bound-leaning one near rec ≈ 1, which is the
		// safe direction for CELF bounds.
		for i := 0; i < n; i++ {
			v := perm[i]
			if isSrc[v] || (filters != nil && filters[v]) {
				continue
			}
			if r := sc.rec[i]; r > 1 {
				acc.gain[v] += (r - 1) * sc.suf[i]
			}
		}
	}
	return acc
}

// mcFromSamples folds per-pass Φ samples into a mean ± stderr result.
func mcFromSamples(phi []float64) MCResult {
	n := float64(len(phi))
	var sum, sumSq float64
	for _, f := range phi {
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := 0.0
	if len(phi) > 1 {
		variance = (sumSq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
	}
	return MCResult{Mean: mean, StdErr: math.Sqrt(variance / n), Runs: len(phi)}
}

// PhiEstimate estimates Φ(A,V) with a confidence interval from the
// spread of the Samples independent sampled passes. When every row falls
// below the sampling floor the passes are exact and StdErr is 0.
func (e *SamplingEngine) PhiEstimate(filters []bool) MCResult {
	if filters == nil && e.phiEmpty.Runs > 0 {
		return e.phiEmpty
	}
	acc := e.estimate(filters, false)
	return mcFromSamples(acc.phi)
}

// Phi implements Evaluator; it is PhiEstimate's mean.
func (e *SamplingEngine) Phi(filters []bool) float64 {
	if filters == nil {
		return e.phiEmpty.Mean
	}
	return e.PhiEstimate(filters).Mean
}

// Received implements Evaluator: the mean per-node received estimate.
func (e *SamplingEngine) Received(filters []bool) []float64 {
	acc := e.estimate(filters, false)
	out := make([]float64, e.p.n)
	inv := 1 / float64(e.opts.Samples)
	for i, r := range acc.rec {
		out[e.p.perm[i]] = r * inv
	}
	return out
}

// Suffix implements Evaluator: the mean per-node suffix estimate.
func (e *SamplingEngine) Suffix(filters []bool) []float64 {
	sc := e.scratch()
	fm := e.p.fillMask(sc.fmask, filters)
	acc := e.accumulators()
	clear(acc.suf)
	procs := e.opts.Parallelism
	for s := 0; s < e.opts.Samples; s++ {
		ps := e.passSeed(s)
		for l := e.p.numLevels() - 1; l >= 0; l-- {
			e.p.runLevel(l, procs, func(lo, hi int) {
				e.sampledSuffixRange(ps, fm, sc.suf, lo, hi)
			})
		}
		e.pc.suf.Add(1)
		for i, sv := range sc.suf {
			acc.suf[i] += sv
		}
	}
	out := make([]float64, e.p.n)
	inv := 1 / float64(e.opts.Samples)
	for i, sv := range acc.suf {
		out[e.p.perm[i]] = sv * inv
	}
	return out
}

// Impacts implements Evaluator: mean estimated marginal gains, 0 for
// sources and current filters.
func (e *SamplingEngine) Impacts(filters []bool) []float64 {
	acc := e.estimate(filters, true)
	out := make([]float64, e.p.n)
	inv := 1 / float64(e.opts.Samples)
	for v := range out {
		out[v] = acc.gain[v] * inv
	}
	return out
}

// ArgmaxImpact implements Evaluator over the estimated gains, breaking
// ties toward the smaller node id like the exact engines.
func (e *SamplingEngine) ArgmaxImpact(filters, banned []bool) (int, float64) {
	imp := e.Impacts(filters)
	best, bestGain := -1, 0.0
	for v, g := range imp {
		if banned != nil && banned[v] {
			continue
		}
		if g > bestGain {
			best, bestGain = v, g
		}
	}
	return best, bestGain
}

// F implements Evaluator against the cached Φ(∅,V) estimate.
func (e *SamplingEngine) F(filters []bool) float64 {
	return e.phiEmpty.Mean - e.Phi(filters)
}

// MaxF implements Evaluator; the F(V) estimate is computed on first use
// and cached.
func (e *SamplingEngine) MaxF() float64 {
	if !e.maxFSet {
		e.maxF = e.phiEmpty.Mean - e.PhiEstimate(AllFilters(e.m)).Mean
		e.maxFSet = true
	}
	return e.maxF
}

// Interface conformance.
var (
	_ Evaluator       = (*SamplingEngine)(nil)
	_ Cloner          = (*SamplingEngine)(nil)
	_ ScratchReleaser = (*SamplingEngine)(nil)
	_ PassCounter     = (*SamplingEngine)(nil)
)
