package flow

import "repro/internal/sched"

// Parallel evaluation support. Greedy placement is embarrassingly parallel
// per round — the closed-form gains all derive from one forward and one
// backward topological pass, and the passes themselves decompose by
// topological level: every node of a level depends only on nodes of
// earlier levels, so a level's nodes can be computed concurrently. Each
// node is still computed by exactly one goroutine with the same per-node
// kernel (stepForward/stepSuffix for floats, stepForwardBig/stepSuffixBig
// for exact integers) and the same neighbor iteration order as the serial
// pass, so parallel results are bit-for-bit identical to serial ones
// regardless of worker count or shard boundaries.
//
// Execution runs on the process-wide sched.Default pool: the pass
// machinery only SPLITS work (into the same chunks at any setting) and
// submits the chunks as one sched batch, so concurrent placements from
// many graphs interleave on the shared workers instead of spawning
// goroutines per call.

// Cloner is implemented by evaluators that can duplicate themselves
// cheaply for concurrent use: the clone shares the immutable Model (and
// any cached invariants) but owns private scratch state. core.Place uses
// clones to shard per-candidate gain evaluations across the scheduler.
type Cloner interface {
	Evaluator
	// Clone returns an evaluator that may be used concurrently with the
	// receiver and with other clones. Results are bit-for-bit identical
	// to the receiver's.
	Clone() Evaluator
}

// ParallelEvaluator is implemented by evaluators whose passes parallelize
// internally. The *P methods behave exactly like their serial
// counterparts — including tie-breaking and floating-point results — using
// up to procs concurrent chunks; procs ≤ 1 is the serial path. Both
// FloatEngine and BigEngine implement it (BigEngine with exact integer
// arithmetic in every kernel).
type ParallelEvaluator interface {
	Evaluator
	// ArgmaxImpactP is ArgmaxImpact with level-parallel passes.
	ArgmaxImpactP(filters, banned []bool, procs int) (v int, gain float64)
	// ImpactsP is Impacts with level-parallel passes.
	ImpactsP(filters []bool, procs int) []float64
}

// passLevels is the topological level decomposition of a model's DAG:
// fwd[d] holds the nodes at forward depth d (all in-neighbors at depths
// < d), bwd[h] the nodes at backward height h (all out-neighbors at
// heights < h). Within a bucket nodes appear in topological order, so the
// decomposition is deterministic.
type passLevels struct {
	fwd [][]int
	bwd [][]int
}

// buildPassLevels computes the decomposition from the model's cached
// topological order; it depends only on the immutable Model, so engines
// of either arithmetic share the construction.
func buildPassLevels(m *Model) *passLevels {
	g, topo := m.g, m.topo
	n := g.N()
	depth := make([]int, n)
	maxDepth := 0
	for _, v := range topo {
		d := 0
		for _, p := range g.In(v) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	fwd := make([][]int, maxDepth+1)
	for _, v := range topo {
		fwd[depth[v]] = append(fwd[depth[v]], v)
	}
	height := make([]int, n)
	maxHeight := 0
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		h := 0
		for _, c := range g.Out(v) {
			if height[c]+1 > h {
				h = height[c] + 1
			}
		}
		height[v] = h
		if h > maxHeight {
			maxHeight = h
		}
	}
	bwd := make([][]int, maxHeight+1)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		bwd[height[v]] = append(bwd[height[v]], v)
	}
	return &passLevels{fwd: fwd, bwd: bwd}
}

// levels lazily builds the level decomposition. It mutates the engine (not
// the shared Model), so it follows the engine's single-goroutine contract;
// clones made after the first parallel call share the built decomposition.
func (e *FloatEngine) levels() *passLevels {
	if e.lv == nil {
		e.lv = buildPassLevels(e.m)
	}
	return e.lv
}

// minParallelSpan is the bucket size below which a level runs serially:
// scheduling chunks costs more than computing a few dozen nodes.
const minParallelSpan = 128

// parallelFor splits [0, n) into at most procs contiguous chunks and runs
// fn on each through the shared scheduler, returning when all complete.
// Small spans run inline. Chunk boundaries depend only on (n, procs),
// never on pool size, so any fn whose chunks are independent produces
// identical results at every setting.
func parallelFor(n, procs int, fn func(lo, hi int)) {
	if procs > n {
		procs = n
	}
	if procs <= 1 || n < minParallelSpan {
		fn(0, n)
		return
	}
	chunk := (n + procs - 1) / procs
	b := sched.Default().NewBatch()
	for lo := 0; lo < n; lo += chunk {
		lo, hi := lo, min(lo+chunk, n)
		b.Go(func() { fn(lo, hi) })
	}
	b.Wait()
}

// parallelForChunks is parallelFor returning fn's per-chunk results in
// ascending chunk order, so callers can reduce them with the same
// left-to-right rule a serial scan would apply.
func parallelForChunks[T any](n, procs int, fn func(lo, hi int) T) []T {
	if procs > n {
		procs = n
	}
	if procs <= 1 || n < minParallelSpan {
		return []T{fn(0, n)}
	}
	chunk := (n + procs - 1) / procs
	out := make([]T, (n+chunk-1)/chunk)
	b := sched.Default().NewBatch()
	for i := range out {
		i, lo, hi := i, i*chunk, min((i+1)*chunk, n)
		b.Go(func() { out[i] = fn(lo, hi) })
	}
	b.Wait()
	return out
}

// forwardIntoP is forwardInto with each level's nodes sharded across
// procs scheduler chunks.
func (e *FloatEngine) forwardIntoP(filters []bool, rec, emit []float64, procs int) {
	for _, bucket := range e.levels().fwd {
		b := bucket
		parallelFor(len(b), procs, func(lo, hi int) {
			for _, v := range b[lo:hi] {
				e.stepForward(v, filters, rec, emit)
			}
		})
	}
}

// suffixIntoP is suffixInto with each backward level's nodes sharded
// across procs scheduler chunks.
func (e *FloatEngine) suffixIntoP(filters []bool, suf []float64, procs int) {
	for _, bucket := range e.levels().bwd {
		b := bucket
		parallelFor(len(b), procs, func(lo, hi int) {
			for _, v := range b[lo:hi] {
				e.stepSuffix(v, filters, suf)
			}
		})
	}
}

// ArgmaxImpactP implements ParallelEvaluator. The scan shards into
// contiguous node ranges whose local maxima are reduced in ascending
// order under the same strict-improvement rule as the serial scan, so
// ties break toward the smaller node id exactly as ArgmaxImpact does.
func (e *FloatEngine) ArgmaxImpactP(filters, banned []bool, procs int) (int, float64) {
	if procs <= 1 {
		return e.ArgmaxImpact(filters, banned)
	}
	e.ensureScratch()
	e.forwardIntoP(filters, e.scratchRec, e.scratchEmit, procs)
	e.suffixIntoP(filters, e.scratchSuf, procs)
	type local struct {
		v    int
		gain float64
	}
	locals := parallelForChunks(len(e.scratchRec), procs, func(lo, hi int) local {
		best, bestGain := -1, 0.0
		for v := lo; v < hi; v++ {
			r := e.scratchRec[v]
			if banned != nil && banned[v] {
				continue
			}
			if e.m.isSrc[v] || (filters != nil && filters[v]) || r <= 1 {
				continue
			}
			if gn := (r - 1) * e.scratchSuf[v]; gn > bestGain {
				best, bestGain = v, gn
			}
		}
		return local{best, bestGain}
	})
	best, bestGain := -1, 0.0
	for _, l := range locals {
		if l.v >= 0 && l.gain > bestGain {
			best, bestGain = l.v, l.gain
		}
	}
	return best, bestGain
}

// ImpactsP implements ParallelEvaluator.
func (e *FloatEngine) ImpactsP(filters []bool, procs int) []float64 {
	if procs <= 1 {
		return e.Impacts(filters)
	}
	n := e.m.g.N()
	rec := make([]float64, n)
	emit := make([]float64, n)
	suf := make([]float64, n)
	e.forwardIntoP(filters, rec, emit, procs)
	e.suffixIntoP(filters, suf, procs)
	gains := make([]float64, n)
	parallelFor(n, procs, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if e.m.isSrc[v] || (filters != nil && filters[v]) {
				continue
			}
			excess := rec[v] - 1
			if rec[v] < 1 {
				excess = 0 // emission is unchanged by a filter when rec ≤ 1
			}
			gains[v] = excess * suf[v]
		}
	})
	return gains
}
