package flow

import "repro/internal/sched"

// Parallel evaluation support. Greedy placement is embarrassingly parallel
// per round — the closed-form gains all derive from one forward and one
// backward topological pass, and the passes themselves decompose by
// topological level: every node of a level depends only on nodes of
// earlier levels, so a level's nodes can be computed concurrently. The
// level structure, the level-packed iteration order and the precomputed
// chunk boundaries all live in the model's shared Plan; each node is still
// computed by the same flat kernel (forwardRange/suffixRange for floats,
// stepForwardBig/stepSuffixBig for exact integers) with the same neighbor
// accumulation order as the serial pass, so parallel results are
// bit-for-bit identical to serial ones regardless of worker count or
// shard boundaries.
//
// Execution runs on the process-wide sched.Default pool: the pass
// machinery only SPLITS work (into the same chunks at any setting) and
// submits the chunks as one sched batch, so concurrent placements from
// many graphs interleave on the shared workers instead of spawning
// goroutines per call.

// Cloner is implemented by evaluators that can duplicate themselves
// cheaply for concurrent use: the clone shares the immutable Model (and
// any cached invariants) but owns private scratch state. core.Place uses
// clones to shard per-candidate gain evaluations across the scheduler.
type Cloner interface {
	Evaluator
	// Clone returns an evaluator that may be used concurrently with the
	// receiver and with other clones. Results are bit-for-bit identical
	// to the receiver's.
	Clone() Evaluator
}

// ScratchReleaser is implemented by evaluators whose working memory is
// borrowed from a shared arena (the plan's scratch pool). Callers that
// retire an evaluator — core.Place when its candidate-shard clones finish
// — call ReleaseScratch so the arena is reused by the next placement
// instead of re-allocated.
type ScratchReleaser interface {
	// ReleaseScratch returns borrowed buffers to their pool. The
	// evaluator remains usable afterwards (buffers are re-borrowed on
	// demand) but must be quiescent when called.
	ReleaseScratch()
}

// ParallelEvaluator is implemented by evaluators whose passes parallelize
// internally. The *P methods behave exactly like their serial
// counterparts — including tie-breaking and floating-point results — using
// up to procs concurrent chunks; procs ≤ 1 is the serial path. Both
// FloatEngine and BigEngine implement it (BigEngine with exact integer
// arithmetic in every kernel).
type ParallelEvaluator interface {
	Evaluator
	// ArgmaxImpactP is ArgmaxImpact with level-parallel passes.
	ArgmaxImpactP(filters, banned []bool, procs int) (v int, gain float64)
	// ImpactsP is Impacts with level-parallel passes.
	ImpactsP(filters []bool, procs int) []float64
}

// minParallelSpan is the span below which a level runs serially:
// scheduling chunks costs more than computing a few dozen nodes.
const minParallelSpan = 128

// parallelFor splits [0, n) into at most procs contiguous chunks and runs
// fn on each through the shared scheduler, returning when all complete.
// Small spans run inline. Chunk boundaries depend only on (n, procs),
// never on pool size, so any fn whose chunks are independent produces
// identical results at every setting.
func parallelFor(n, procs int, fn func(lo, hi int)) {
	if procs > n {
		procs = n
	}
	if procs <= 1 || n < minParallelSpan {
		fn(0, n)
		return
	}
	chunk := (n + procs - 1) / procs
	b := sched.Default().NewBatch()
	for lo := 0; lo < n; lo += chunk {
		lo, hi := lo, min(lo+chunk, n)
		b.Go(func() { fn(lo, hi) })
	}
	b.Wait()
}

// parallelForChunks is parallelFor returning fn's per-chunk results in
// ascending chunk order, so callers can reduce them with the same
// left-to-right rule a serial scan would apply.
func parallelForChunks[T any](n, procs int, fn func(lo, hi int) T) []T {
	if procs > n {
		procs = n
	}
	if procs <= 1 || n < minParallelSpan {
		return []T{fn(0, n)}
	}
	chunk := (n + procs - 1) / procs
	out := make([]T, (n+chunk-1)/chunk)
	b := sched.Default().NewBatch()
	for i := range out {
		i, lo, hi := i, i*chunk, min((i+1)*chunk, n)
		b.Go(func() { out[i] = fn(lo, hi) })
	}
	b.Wait()
	return out
}

// passesP is passes with level-parallel plan execution.
func (e *FloatEngine) passesP(filters []bool, procs int) *floatScratch {
	sc := e.scratch()
	fm := e.p.fillMask(sc.fmask, filters)
	e.p.forwardLevels(e.src, fm, sc.rec, sc.emit, procs)
	e.p.suffixLevels(fm, sc.suf, procs)
	e.pc.fwd.Add(1)
	e.pc.suf.Add(1)
	return sc
}

// ArgmaxImpactP implements ParallelEvaluator. The scan shards into
// contiguous original-id ranges whose local maxima are reduced in
// ascending order under the same strict-improvement rule as the serial
// scan, so ties break toward the smaller node id exactly as ArgmaxImpact
// does.
func (e *FloatEngine) ArgmaxImpactP(filters, banned []bool, procs int) (int, float64) {
	if procs <= 1 {
		return e.ArgmaxImpact(filters, banned)
	}
	sc := e.passesP(filters, procs)
	type local struct {
		v    int
		gain float64
	}
	locals := parallelForChunks(e.p.n, procs, func(lo, hi int) local {
		v, gain := e.argmaxGains(sc, filters, banned, lo, hi)
		return local{v, gain}
	})
	best, bestGain := -1, 0.0
	for _, l := range locals {
		if l.v >= 0 && l.gain > bestGain {
			best, bestGain = l.v, l.gain
		}
	}
	return best, bestGain
}

// ImpactsP implements ParallelEvaluator.
func (e *FloatEngine) ImpactsP(filters []bool, procs int) []float64 {
	if procs <= 1 {
		return e.Impacts(filters)
	}
	sc := e.passesP(filters, procs)
	gains := make([]float64, e.p.n)
	parallelFor(e.p.n, procs, func(lo, hi int) {
		e.gainsInto(gains, sc, filters, lo, hi)
	})
	return gains
}
