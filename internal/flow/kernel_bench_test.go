package flow

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

// BenchmarkForwardPass measures one full forward pass (rec/emit over the
// whole graph) through the plan-backed flat kernel against the pre-plan
// reference kernel (per-node gather through the original CSR in
// Model.Topo() order) on the shapes that dominate real placements. The
// two produce bit-identical floats (TestPlanFloatGolden); the delta is
// pure iteration-layout signal — level-packed sequential sweeps vs
// scattered gathers. BENCH_kernel.json records the measured curve.
func BenchmarkForwardPass(b *testing.B) {
	shapes := []struct {
		name string
		m    *Model
	}{
		{"layered-10x100", func() *Model {
			g, src := gen.Layered(10, 100, 1, 4, 1)
			return MustModel(g, []int{src})
		}()},
		{"twitter-90k", func() *Model {
			g, root := gen.TwitterLike(1, 1)
			return MustModel(g, []int{root})
		}()},
	}
	for _, sh := range shapes {
		ev := NewFloat(sh.m)
		ref := &refFloat{sh.m}
		filters := make([]bool, sh.m.N())
		for i := 0; i < 3; i++ {
			if v, gain := ev.ArgmaxImpact(filters, filters); v >= 0 && gain > 0 {
				filters[v] = true
			}
		}
		b.Run(fmt.Sprintf("%s/plan", sh.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ev.phi(filters) <= 0 {
					b.Fatal("empty pass")
				}
			}
		})
		// The reference pass reuses preallocated buffers exactly like the
		// pre-plan engine's scratch, so the delta is layout, not GC.
		b.Run(fmt.Sprintf("%s/reference", sh.name), func(b *testing.B) {
			b.ReportAllocs()
			n := sh.m.N()
			rec, emit := make([]float64, n), make([]float64, n)
			for i := 0; i < b.N; i++ {
				if refPhiInto(ref, filters, rec, emit) <= 0 {
					b.Fatal("empty pass")
				}
			}
		})
	}
}

// refPhiInto is the pre-plan engine's scratch-reusing phi: forward pass in
// Model.Topo() order into caller buffers, then the original-order sum.
func refPhiInto(e *refFloat, filters []bool, rec, emit []float64) float64 {
	for _, v := range e.m.topo {
		r := 0.0
		for _, p := range e.m.g.In(v) {
			r += e.weight(p, v) * emit[p]
		}
		rec[v] = r
		switch {
		case e.m.isSrc[v]:
			emit[v] = 1
		case filters != nil && filters[v] && r > 1:
			emit[v] = 1
		default:
			emit[v] = r
		}
	}
	total := 0.0
	for _, r := range rec {
		total += r
	}
	return total
}

// BenchmarkSuffixPass is BenchmarkForwardPass for the backward pass.
func BenchmarkSuffixPass(b *testing.B) {
	g, root := gen.TwitterLike(1, 1)
	m := MustModel(g, []int{root})
	ev := NewFloat(m)
	ref := &refFloat{m}
	b.Run("twitter-90k/plan", func(b *testing.B) {
		b.ReportAllocs()
		sc := ev.scratch()
		fm := ev.p.fillMask(sc.fmask, nil)
		for i := 0; i < b.N; i++ {
			ev.p.suffixRange(fm, sc.suf, 0, ev.p.n)
		}
	})
	b.Run("twitter-90k/reference", func(b *testing.B) {
		b.ReportAllocs()
		suf := make([]float64, m.N())
		topo := m.Topo()
		for i := 0; i < b.N; i++ {
			for j := len(topo) - 1; j >= 0; j-- {
				v := topo[j]
				s := 0.0
				for _, c := range m.Graph().Out(v) {
					s += ref.weight(v, c) * (1 + suf[c])
				}
				suf[v] = s
			}
		}
	})
}
