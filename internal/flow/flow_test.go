package flow

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// fig1 builds the paper's Figure 1 graph: s→x, s→y, x→z1, x→z2, y→z2,
// y→z3, z1→w, z2→w, z3→w. Node ids: s=0 x=1 y=2 z1=3 z2=4 z3=5 w=6.
func fig1(t testing.TB) *graph.Digraph {
	t.Helper()
	return graph.MustFromEdges(7, [][2]int{
		{0, 1}, {0, 2},
		{1, 3}, {1, 4}, {2, 4}, {2, 5},
		{3, 6}, {4, 6}, {5, 6},
	})
}

func engines(t testing.TB, m *Model) map[string]Evaluator {
	t.Helper()
	return map[string]Evaluator{"float": NewFloat(m), "big": NewBig(m)}
}

func TestFigure1Accounting(t *testing.T) {
	g := fig1(t)
	m := MustModel(g, nil)
	for name, ev := range engines(t, m) {
		rec := ev.Received(nil)
		// Paper: z2 receives two copies; w receives 1+2+1 = 4.
		want := []float64{0, 1, 1, 1, 2, 1, 4}
		for v, w := range want {
			if rec[v] != w {
				t.Errorf("%s: rec[%d] = %v, want %v", name, v, rec[v], w)
			}
		}
		if phi := ev.Phi(nil); phi != 10 {
			t.Errorf("%s: Phi(∅) = %v, want 10", name, phi)
		}
		// Filter at z2 (node 4): z2 still receives 2 but emits 1, so w
		// receives 3. Φ = 9.
		fz2 := MaskOf(g.N(), []int{4})
		if phi := ev.Phi(fz2); phi != 9 {
			t.Errorf("%s: Phi({z2}) = %v, want 9", name, phi)
		}
		// z2 is the only node with din>1 and dout>0, so one filter
		// achieves the maximum reduction (Proposition 1) and FR = 1.
		if ev.MaxF() != 1 {
			t.Errorf("%s: MaxF = %v, want 1", name, ev.MaxF())
		}
		if fr := FR(ev, fz2); fr != 1 {
			t.Errorf("%s: FR({z2}) = %v, want 1", name, fr)
		}
	}
}

func TestSourceValidation(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}})
	if _, err := NewModel(g, []int{1}); err == nil {
		t.Error("source with in-degree 1 accepted")
	}
	if _, err := NewModel(g, []int{5}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := NewModel(g, nil); err != nil {
		t.Errorf("default sources rejected: %v", err)
	}
}

func TestCyclicRejected(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]int{{0, 1}, {1, 0}})
	if _, err := NewModel(g, nil); err != ErrNotDAG {
		t.Errorf("err = %v, want ErrNotDAG", err)
	}
}

func TestImpactIsMarginalGain(t *testing.T) {
	// Property: Impacts(A)[v] == F(A∪{v}) − F(A) for all v, on random
	// DAGs and random filter sets, for both engines.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 16, 0.3)
		m := MustModel(g, nil)
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = !m.IsSource(v) && rng.Float64() < 0.25
		}
		for name, ev := range engines(t, m) {
			gains := ev.Impacts(filters)
			base := ev.F(filters)
			for v := 0; v < g.N(); v++ {
				if filters[v] || m.IsSource(v) {
					if gains[v] != 0 {
						t.Logf("%s: gain of source/filter %d = %v", name, v, gains[v])
						return false
					}
					continue
				}
				with := append([]bool(nil), filters...)
				with[v] = true
				want := ev.F(with) - base
				if math.Abs(gains[v]-want) > 1e-6*(1+math.Abs(want)) {
					t.Logf("%s: gain[%d] = %v, want %v (seed %d)", name, v, gains[v], want, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMonotoneSubmodular(t *testing.T) {
	// F is monotone (adding a filter never decreases F) and submodular
	// (marginal gains shrink as the filter set grows).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 14, 0.3)
		m := MustModel(g, nil)
		ev := NewBig(m)
		small := make([]bool, g.N())
		large := make([]bool, g.N())
		for v := range small {
			if m.IsSource(v) {
				continue
			}
			switch rng.Intn(3) {
			case 0: // in both
				small[v], large[v] = true, true
			case 1: // only in the superset
				large[v] = true
			}
		}
		gSmall := ev.Impacts(small)
		gLarge := ev.Impacts(large)
		fSmall := ev.F(small)
		fLarge := ev.F(large)
		if fLarge < fSmall-1e-9 {
			t.Logf("monotonicity: F(large)=%v < F(small)=%v (seed %d)", fLarge, fSmall, seed)
			return false
		}
		for v := 0; v < g.N(); v++ {
			if large[v] || m.IsSource(v) {
				continue
			}
			if gLarge[v] > gSmall[v]+1e-6*(1+gSmall[v]) {
				t.Logf("submodularity: gain under superset %v > %v at %d (seed %d)", gLarge[v], gSmall[v], v, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 20, 0.25)
		m := MustModel(g, nil)
		fe, be := NewFloat(m), NewBig(m)
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = rng.Float64() < 0.2
		}
		if math.Abs(fe.Phi(filters)-be.Phi(filters)) > 1e-6*(1+be.Phi(filters)) {
			return false
		}
		fi, bi := fe.Impacts(filters), be.Impacts(filters)
		for v := range fi {
			if math.Abs(fi[v]-bi[v]) > 1e-6*(1+math.Abs(bi[v])) {
				return false
			}
		}
		fv, fg := fe.ArgmaxImpact(filters, filters)
		bv, bg := be.ArgmaxImpact(filters, filters)
		if fv != bv || math.Abs(fg-bg) > 1e-6*(1+math.Abs(bg)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimulatorMatchesEngines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 12, 0.3)
		m := MustModel(g, nil)
		ev := NewBig(m)
		sim, err := NewSimulator(g, nil)
		if err != nil {
			return false
		}
		filters := make([]bool, g.N())
		for v := range filters {
			filters[v] = rng.Float64() < 0.3
		}
		simRec, err := sim.Run(filters)
		if err != nil {
			t.Logf("simulator: %v (seed %d)", err, seed)
			return false
		}
		anaRec := ev.Received(filters)
		for v := range simRec {
			if float64(simRec[v]) != anaRec[v] {
				t.Logf("node %d: sim %d vs engine %v (seed %d)", v, simRec[v], anaRec[v], seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimulatorDivergesOnCycle(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 1}})
	sim, err := NewSimulator(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sim.MaxEvents = 1000
	if _, err := sim.Run(nil); err != ErrBudget {
		t.Errorf("cyclic unfiltered run: err = %v, want ErrBudget", err)
	}
	// A filter on the cycle restores finiteness: node 1 relays once.
	rec, err := sim.Run(MaskOf(3, []int{1}))
	if err != nil {
		t.Fatalf("filtered run: %v", err)
	}
	// 1 gets one copy from 0 and one from 2 (its own relay around the
	// cycle); 2 gets exactly one.
	if rec[1] != 2 || rec[2] != 1 {
		t.Errorf("rec = %v, want [0 2 1]", rec)
	}
}

func TestPathCountIdentities(t *testing.T) {
	// Paper formulas (1)–(4): with no filters and a single source s,
	// Prefix(v) = #paths(s,v) and Suffix(v) = Σ_x #paths(v,x), and the
	// plist bookkeeping agrees with both.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSourcedDAG(rng, 15, 0.3)
		src := g.Sources()
		if len(src) != 1 {
			return true // constructor guarantees one source; skip otherwise
		}
		s := src[0]
		m := MustModel(g, nil)
		ev := NewBig(m)
		rec, _ := ev.forwardBig(nil)
		counts, err := PathCountsFrom(g, s)
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if v == s {
				continue
			}
			if rec[v].Cmp(counts[v]) != 0 {
				t.Logf("Prefix(%d)=%v != #paths(s,%d)=%v", v, rec[v], v, counts[v])
				return false
			}
		}
		suf := ev.suffixBig(nil)
		totals, err := TotalPathsFrom(g)
		if err != nil {
			return false
		}
		pl, err := NewPList(g)
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if suf[v].Cmp(totals[v]) != 0 {
				t.Logf("Suffix(%d)=%v != total paths %v", v, suf[v], totals[v])
				return false
			}
			if pl.SuffixOf(v).Cmp(totals[v]) != 0 {
				t.Logf("plist suffix(%d)=%v != %v", v, pl.SuffixOf(v), totals[v])
				return false
			}
		}
		// Spot-check plist against PathCountsTo on one random target.
		dst := rng.Intn(g.N())
		to, err := PathCountsTo(g, dst)
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if pl.Paths(v, dst).Cmp(to[v]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPathCountsBigValues(t *testing.T) {
	// A ladder of d diamonds has 2^d source→sink paths; exercise exact
	// arithmetic beyond float64's integer range indirectly via strings.
	const d = 130
	b := graph.NewBuilder(0)
	prev := b.AddNode()
	for i := 0; i < d; i++ {
		l, r, join := b.AddNode(), b.AddNode(), b.AddNode()
		b.AddEdge(prev, l)
		b.AddEdge(prev, r)
		b.AddEdge(l, join)
		b.AddEdge(r, join)
		prev = join
	}
	g := b.MustBuild()
	counts, err := PathCountsFrom(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), d)
	if counts[prev].Cmp(want) != 0 {
		t.Errorf("#paths = %v, want 2^%d", counts[prev], d)
	}
	// The big engine survives the same graph; the float engine returns
	// +finite approximations.
	m := MustModel(g, nil)
	be := NewBig(m)
	if be.PhiBig(nil).Sign() <= 0 {
		t.Error("big engine lost the count")
	}
	fe := NewFloat(m)
	if math.IsNaN(fe.Phi(nil)) || fe.Phi(nil) <= 0 {
		t.Error("float engine produced a non-positive total")
	}
}

func TestWeightedModel(t *testing.T) {
	// Probabilistic propagation on Figure 1 with relay probability 1/2 on
	// every edge: expected copies halve per hop.
	g := fig1(t)
	m := MustModel(g, nil).WithWeights(func(u, v int) float64 { return 0.5 })
	ev := NewFloat(m)
	rec := ev.Received(nil)
	// x receives 0.5; z2 receives 2·(0.5·0.5) = 0.5; w receives
	// 3 · 0.25·0.5 = hmm: z's emit rec (0.25 each for z1,z3; 0.5 for z2),
	// each relayed with probability 0.5.
	if math.Abs(rec[1]-0.5) > 1e-12 {
		t.Errorf("rec[x] = %v, want 0.5", rec[1])
	}
	if math.Abs(rec[4]-0.5) > 1e-12 {
		t.Errorf("rec[z2] = %v, want 0.5", rec[4])
	}
	want := 0.5 * (0.25 + 0.5 + 0.25)
	if math.Abs(rec[6]-want) > 1e-12 {
		t.Errorf("rec[w] = %v, want %v", rec[6], want)
	}
	// Sub-unit received mass means filters change nothing: all gains 0.
	for v, gn := range ev.Impacts(nil) {
		if gn != 0 {
			t.Errorf("gain[%d] = %v, want 0", v, gn)
		}
	}
}

func TestWeightedRejectedByBig(t *testing.T) {
	g := fig1(t)
	m := MustModel(g, nil).WithWeights(func(u, v int) float64 { return 0.5 })
	defer func() {
		if recover() == nil {
			t.Error("NewBig accepted a weighted model")
		}
	}()
	NewBig(m)
}

func TestFRBounds(t *testing.T) {
	g := fig1(t)
	ev := NewFloat(MustModel(g, nil))
	if fr := FR(ev, nil); fr != 0 {
		t.Errorf("FR(∅) = %v, want 0", fr)
	}
	if fr := FR(ev, AllFilters(ev.Model())); fr != 1 {
		t.Errorf("FR(V) = %v, want 1", fr)
	}
	// Chain graph: no redundancy at all, MaxF = 0, FR defined as 1.
	chain := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	cev := NewFloat(MustModel(chain, nil))
	if cev.MaxF() != 0 {
		t.Errorf("chain MaxF = %v, want 0", cev.MaxF())
	}
	if fr := FR(cev, nil); fr != 1 {
		t.Errorf("chain FR = %v, want 1", fr)
	}
}

func TestArgmaxTieBreaksLow(t *testing.T) {
	// Two symmetric redundant nodes; argmax must return the smaller id.
	//   s→a, s→b, a→m1, b→m1, a→m2, b→m2, m1→t, m2→t
	g := graph.MustFromEdges(7, [][2]int{
		{0, 1}, {0, 2},
		{1, 3}, {2, 3}, {1, 4}, {2, 4},
		{3, 5}, {4, 5},
	})
	m := MustModel(g, nil)
	for name, ev := range engines(t, m) {
		v, gain := ev.ArgmaxImpact(nil, nil)
		if v != 3 {
			t.Errorf("%s: argmax = %d, want 3 (tie toward low id)", name, v)
		}
		if gain <= 0 {
			t.Errorf("%s: gain = %v, want > 0", name, gain)
		}
	}
}

func TestArgmaxAllZero(t *testing.T) {
	chain := graph.MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	m := MustModel(chain, nil)
	for name, ev := range engines(t, m) {
		if v, _ := ev.ArgmaxImpact(nil, nil); v != -1 {
			t.Errorf("%s: argmax on redundancy-free chain = %d, want -1", name, v)
		}
	}
}

func TestMaskHelpers(t *testing.T) {
	mask := MaskOf(5, []int{1, 3})
	if !mask[1] || !mask[3] || mask[0] || mask[2] || mask[4] {
		t.Errorf("MaskOf = %v", mask)
	}
	nodes := NodesOf(mask)
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Errorf("NodesOf = %v", nodes)
	}
}

func TestSimulatorProbabilistic(t *testing.T) {
	// With probability 1 the probabilistic simulator must match the
	// deterministic one exactly.
	g := fig1(t)
	sim, err := NewSimulator(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.Rand = rand.New(rand.NewSource(7))
	sim.Prob = func(u, v int) float64 { return 1 }
	rec, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec[6] != 4 {
		t.Errorf("rec[w] = %d, want 4", rec[6])
	}
	// With probability 0 nothing ever arrives.
	sim.Prob = func(u, v int) float64 { return 0 }
	rec, err = sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range rec {
		if r != 0 {
			t.Errorf("rec[%d] = %d, want 0", v, r)
		}
	}
}

// randomSourcedDAG builds a random DAG guaranteed to have node 0 as its only
// in-degree-zero node, so the default-source model has a single origin.
func randomSourcedDAG(rng *rand.Rand, n int, p float64) *graph.Digraph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	// Ensure connectivity from 0: give every in-degree-0 node (other than
	// 0) an edge from some earlier node.
	g := b.MustBuild()
	for v := 1; v < n; v++ {
		if g.InDegree(v) == 0 {
			b.AddEdge(rng.Intn(v), v)
		}
	}
	return b.MustBuild()
}
