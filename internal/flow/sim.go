package flow

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Simulator propagates individual copies through a c-graph, one relay event
// at a time, exactly as the paper's propagation story describes. It is
// deliberately independent of the analytic engines — no topological passes,
// no closed forms — so tests can use it as an oracle. Unlike the engines it
// also runs on cyclic graphs, where copy counts diverge unless filters cut
// every cycle; the event budget turns that divergence into a detectable
// error (this is exactly the finiteness criterion of the paper's Theorem 1
// reduction).
type Simulator struct {
	g       *graph.Digraph
	sources []int
	// MaxEvents bounds the total number of relay events before the
	// simulation aborts with ErrBudget. The default (1<<20) is generous
	// for test-sized graphs while stopping runaway cyclic propagation
	// quickly.
	MaxEvents int
	// Rand, when set together with Prob, drives probabilistic relaying:
	// each received copy is forwarded over each out-edge independently
	// with probability Prob(u,v).
	Rand *rand.Rand
	Prob func(u, v int) float64
}

// ErrBudget is returned when a simulation exceeds its event budget, which
// on a cyclic graph indicates divergent (infinite) propagation.
var ErrBudget = errors.New("flow: simulation exceeded event budget (divergent propagation?)")

// NewSimulator builds a simulator over any directed graph. sources defaults
// to the in-degree-zero nodes when empty.
func NewSimulator(g *graph.Digraph, sources []int) (*Simulator, error) {
	if len(sources) == 0 {
		sources = g.Sources()
	}
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("flow: source %d out of range [0,%d)", s, g.N())
		}
	}
	return &Simulator{g: g, sources: append([]int(nil), sources...), MaxEvents: 1 << 20}, nil
}

// Run propagates one item from every source and returns the number of
// copies each node received. filters may be nil. It returns ErrBudget when
// the event budget is exhausted.
func (s *Simulator) Run(filters []bool) ([]int64, error) {
	rec := make([]int64, s.g.N())
	relayed := make([]bool, s.g.N()) // per filter node: item already relayed?

	// The queue holds nodes that must emit copies; queued work is
	// (node, copies-to-forward). A FIFO keeps memory proportional to the
	// frontier rather than the total copy count.
	type work struct {
		v      int
		copies int64
	}
	var queue []work
	events := 0
	push := func(v int, copies int64) {
		if copies > 0 {
			queue = append(queue, work{v, copies})
		}
	}
	for _, src := range s.sources {
		push(src, 1)
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		for _, c := range s.g.Out(w.v) {
			delivered := w.copies
			if s.Prob != nil && s.Rand != nil {
				delivered = 0
				p := s.Prob(w.v, c)
				for i := int64(0); i < w.copies; i++ {
					if s.Rand.Float64() < p {
						delivered++
					}
				}
			}
			if delivered == 0 {
				continue
			}
			events++
			if events > s.MaxEvents {
				return nil, ErrBudget
			}
			rec[c] += delivered
			forward := delivered
			if filters != nil && filters[c] {
				if relayed[c] {
					forward = 0
				} else {
					forward = 1
					relayed[c] = true
				}
			}
			push(c, forward)
		}
	}
	return rec, nil
}

// Phi runs the simulation and returns Φ(A, V) = total copies received.
func (s *Simulator) Phi(filters []bool) (int64, error) {
	rec, err := s.Run(filters)
	if err != nil {
		return 0, err
	}
	total := int64(0)
	for _, r := range rec {
		total += r
	}
	return total, nil
}
