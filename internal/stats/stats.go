// Package stats provides the small statistical toolkit the experiment
// harness needs: empirical CDFs over integer samples (the paper's Figures 4
// and 6 plot in-degree CDFs), histograms, and mean/stddev accumulators for
// averaging the randomized baselines over repetitions (the paper averages
// 25 runs).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over integer samples.
type CDF struct {
	values []int     // distinct sample values, ascending
	cum    []float64 // cum[i] = P(X ≤ values[i])
	n      int
}

// NewCDF builds the empirical CDF of the samples. It panics on an empty
// sample set.
func NewCDF(samples []int) *CDF {
	if len(samples) == 0 {
		panic("stats: empty sample set")
	}
	s := append([]int(nil), samples...)
	sort.Ints(s)
	c := &CDF{n: len(s)}
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		c.values = append(c.values, s[i])
		c.cum = append(c.cum, float64(j)/float64(len(s)))
		i = j
	}
	return c
}

// P returns P(X ≤ x).
func (c *CDF) P(x int) float64 {
	i := sort.SearchInts(c.values, x+1) - 1
	if i < 0 {
		return 0
	}
	return c.cum[i]
}

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ q, for
// q ∈ (0, 1].
func (c *CDF) Quantile(q float64) int {
	for i, p := range c.cum {
		if p >= q {
			return c.values[i]
		}
	}
	return c.values[len(c.values)-1]
}

// Max returns the largest sample value.
func (c *CDF) Max() int { return c.values[len(c.values)-1] }

// Min returns the smallest sample value.
func (c *CDF) Min() int { return c.values[0] }

// N returns the sample count.
func (c *CDF) N() int { return c.n }

// Points returns the CDF's support and cumulative probabilities, suitable
// for plotting exactly like the paper's Figures 4 and 6.
func (c *CDF) Points() (values []int, cum []float64) {
	return append([]int(nil), c.values...), append([]float64(nil), c.cum...)
}

// Render draws the CDF as a fixed-width ASCII curve with the given number
// of columns, one row per decile, for terminal output.
func (c *CDF) Render(width int) string {
	if width < 8 {
		width = 8
	}
	var sb strings.Builder
	lo, hi := c.Min(), c.Max()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	fmt.Fprintf(&sb, "x in [%d, %d], n = %d\n", lo, hi, c.n)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		v := c.Quantile(q)
		bar := int(float64(v-lo) / float64(span) * float64(width-1))
		fmt.Fprintf(&sb, "P≤%4.2f %s▏ %d\n", q, strings.Repeat("─", bar), v)
	}
	return sb.String()
}

// Welford accumulates a running mean and variance (Welford's method); it is
// used to average the randomized placement baselines across repetitions.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the sample standard deviation (0 with fewer than two
// observations).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Histogram counts integer samples into unit buckets.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: map[int]int{}} }

// Add records one sample.
func (h *Histogram) Add(x int) {
	h.counts[x]++
	h.total++
}

// Count returns the number of samples equal to x.
func (h *Histogram) Count(x int) int { return h.counts[x] }

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of samples equal to x.
func (h *Histogram) Fraction(x int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[x]) / float64(h.total)
}
