package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]int{1, 1, 2, 5, 5, 5, 9, 9, 9, 9})
	cases := []struct {
		x    int
		want float64
	}{
		{0, 0}, {1, 0.2}, {2, 0.3}, {4, 0.3}, {5, 0.6}, {9, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("P(X≤%d) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Min() != 1 || c.Max() != 9 || c.N() != 10 {
		t.Errorf("min/max/n = %d/%d/%d", c.Min(), c.Max(), c.N())
	}
	if q := c.Quantile(0.5); q != 5 {
		t.Errorf("median = %d, want 5", q)
	}
	if q := c.Quantile(1.0); q != 9 {
		t.Errorf("Q(1) = %d, want 9", q)
	}
}

func TestCDFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCDF(nil) did not panic")
		}
	}()
	NewCDF(nil)
}

func TestCDFProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		samples := make([]int, n)
		for i := range samples {
			samples[i] = rng.Intn(50)
		}
		c := NewCDF(samples)
		vals, cum := c.Points()
		// Monotone, ends at exactly 1, values strictly increasing.
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] || cum[i] <= cum[i-1] {
				return false
			}
		}
		if math.Abs(cum[len(cum)-1]-1) > 1e-12 {
			return false
		}
		// P agrees with direct counting at a random point.
		x := rng.Intn(60) - 5
		cnt := 0
		for _, s := range samples {
			if s <= x {
				cnt++
			}
		}
		return math.Abs(c.P(x)-float64(cnt)/float64(n)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCDFRender(t *testing.T) {
	c := NewCDF([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 100})
	out := c.Render(40)
	if !strings.Contains(out, "n = 10") {
		t.Errorf("render missing sample count:\n%s", out)
	}
	if !strings.Contains(out, "P≤1.00") {
		t.Errorf("render missing final decile:\n%s", out)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(w.StdDev()-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", w.StdDev(), want)
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 {
		t.Error("zero-value Welford not zero")
	}
	w.Add(3)
	if w.StdDev() != 0 {
		t.Error("stddev of one sample not 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, x := range []int{1, 1, 2, 7} {
		h.Add(x)
	}
	if h.Count(1) != 2 || h.Count(7) != 1 || h.Count(3) != 0 {
		t.Error("counts wrong")
	}
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
	if math.Abs(h.Fraction(1)-0.5) > 1e-12 {
		t.Errorf("fraction = %v", h.Fraction(1))
	}
	empty := NewHistogram()
	if empty.Fraction(0) != 0 {
		t.Error("empty fraction not 0")
	}
}
