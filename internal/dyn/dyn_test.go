package dyn

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
)

// diamond is the 5-node diamond with junction 3 and sink 4.
func diamond(t *testing.T) *Dynamic {
	t.Helper()
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	d, err := FromDigraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// edgeSet returns the current edges as a sorted slice.
func edgeSet(d *Dynamic) [][2]int {
	var es [][2]int
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			es = append(es, [2]int{u, v})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

func TestFromDigraphRejectsCyclic(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	if _, err := FromDigraph(g, nil); !errors.Is(err, graph.ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestApplyInsertAndRemove(t *testing.T) {
	d := diamond(t)
	res, err := d.Apply(Batch{Add: [][2]int{{1, 4}, {0, 3}}, Remove: [][2]int{{2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesAdded != 2 || res.EdgesRemoved != 1 || res.NodesAdded != 0 {
		t.Errorf("result = %+v", res)
	}
	if !d.HasEdge(1, 4) || !d.HasEdge(0, 3) || d.HasEdge(2, 3) {
		t.Errorf("edge set wrong: %v", edgeSet(d))
	}
	if d.M() != 6 {
		t.Errorf("M = %d, want 6", d.M())
	}
	if got, want := res.DirtyFwd, []int{3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("DirtyFwd = %v, want %v", got, want)
	}
	if got, want := res.DirtyBwd, []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("DirtyBwd = %v, want %v", got, want)
	}
	assertValidOrder(t, d)
}

func TestApplyAddNodes(t *testing.T) {
	d := diamond(t)
	res, err := d.Apply(Batch{AddNodes: 2, Add: [][2]int{{4, 5}, {5, 6}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstNewNode != 5 || d.N() != 7 {
		t.Fatalf("FirstNewNode = %d, N = %d", res.FirstNewNode, d.N())
	}
	if !d.HasEdge(4, 5) || !d.HasEdge(5, 6) {
		t.Errorf("edges to new nodes missing")
	}
	assertValidOrder(t, d)
}

// TestCycleRejection is the satellite's table: dyn must refuse back-edges
// and leave the topological order and edge set exactly as they were.
func TestCycleRejection(t *testing.T) {
	cases := []struct {
		name  string
		batch Batch
	}{
		{"direct back-edge", Batch{Add: [][2]int{{4, 3}}}},
		{"two-hop back-edge", Batch{Add: [][2]int{{4, 1}}}},
		{"junction back-edge", Batch{Add: [][2]int{{3, 1}}}},
		{"valid then cyclic", Batch{Add: [][2]int{{1, 2}, {4, 1}}}},
		{"cycle via batch pair", Batch{Add: [][2]int{{1, 2}, {2, 1}}}},
		// The removal of (1,3) legalizes (4,1); (1,4) then closes the cycle,
		// so the whole batch — removal, accepted edge and its Pearce–Kelly
		// reorder — must roll back.
		{"removal cannot save cycle", Batch{Remove: [][2]int{{1, 3}}, Add: [][2]int{{4, 1}, {1, 4}}}},
		{"with node growth", Batch{AddNodes: 1, Add: [][2]int{{4, 5}, {5, 3}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := diamond(t)
			wantEdges := edgeSet(d)
			wantOrd := d.Order()
			wantGen := d.Gen()
			_, err := d.Apply(tc.batch)
			if !errors.Is(err, ErrCycle) {
				t.Fatalf("err = %v, want ErrCycle", err)
			}
			var ce *CycleError
			if !errors.As(err, &ce) {
				t.Fatalf("err %v does not carry a *CycleError", err)
			}
			if got := edgeSet(d); !reflect.DeepEqual(got, wantEdges) {
				t.Errorf("edges mutated after rejection: %v, want %v", got, wantEdges)
			}
			if got := d.Order(); !reflect.DeepEqual(got, wantOrd) {
				t.Errorf("topo order mutated after rejection: %v, want %v", got, wantOrd)
			}
			if d.Gen() != wantGen {
				t.Errorf("generation advanced after rejection")
			}
			if d.N() != 5 {
				t.Errorf("node growth survived rejection: N = %d", d.N())
			}
		})
	}
}

func TestApplyValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		batch Batch
		want  error
	}{
		{"self-loop", Batch{Add: [][2]int{{2, 2}}}, ErrBadNode},
		{"add out of range", Batch{Add: [][2]int{{0, 9}}}, ErrBadNode},
		{"remove out of range", Batch{Remove: [][2]int{{-1, 2}}}, ErrBadNode},
		{"negative growth", Batch{AddNodes: -1}, ErrBadNode},
		{"duplicate add", Batch{Add: [][2]int{{0, 3}, {0, 3}}}, ErrEdgeExists},
		{"existing add", Batch{Add: [][2]int{{0, 1}}}, ErrEdgeExists},
		{"missing remove", Batch{Remove: [][2]int{{0, 4}}}, ErrEdgeMissing},
		{"into pinned source", Batch{Add: [][2]int{{4, 0}}}, ErrPinnedSource},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := diamond(t)
			wantEdges := edgeSet(d)
			wantOrd := d.Order()
			if _, err := d.Apply(tc.batch); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if got := edgeSet(d); !reflect.DeepEqual(got, wantEdges) {
				t.Errorf("edges mutated after rejection")
			}
			if got := d.Order(); !reflect.DeepEqual(got, wantOrd) {
				t.Errorf("order mutated after rejection")
			}
		})
	}
}

// assertValidOrder checks ord is a permutation consistent with every edge.
func assertValidOrder(t *testing.T, d *Dynamic) {
	t.Helper()
	seen := make([]bool, d.N())
	for v := 0; v < d.N(); v++ {
		o := d.OrdOf(v)
		if o < 0 || o >= d.N() || seen[o] {
			t.Fatalf("ord is not a permutation: node %d has position %d", v, o)
		}
		seen[o] = true
	}
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			if d.OrdOf(u) >= d.OrdOf(v) {
				t.Fatalf("order violates edge (%d,%d): %d ≥ %d", u, v, d.OrdOf(u), d.OrdOf(v))
			}
		}
	}
}

// TestRandomChurnKeepsOrderValid hammers Apply with random single-edge
// batches — some cyclic, some not — and checks the maintained order and
// snapshot stay consistent throughout.
func TestRandomChurnKeepsOrderValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(40)
	for i := 0; i < 39; i++ {
		b.AddEdge(i, i+1)
	}
	d, err := FromDigraph(b.MustBuild(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	accepted, rejected := 0, 0
	for i := 0; i < 500; i++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u == v || v == 0 {
			continue
		}
		if d.HasEdge(u, v) {
			if _, err := d.Apply(Batch{Remove: [][2]int{{u, v}}}); err != nil {
				t.Fatalf("remove (%d,%d): %v", u, v, err)
			}
		} else if _, err := d.Apply(Batch{Add: [][2]int{{u, v}}}); err != nil {
			if !errors.Is(err, ErrCycle) {
				t.Fatalf("add (%d,%d): %v", u, v, err)
			}
			rejected++
		} else {
			accepted++
		}
		assertValidOrder(t, d)
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("churn not exercising both paths: %d accepted, %d rejected", accepted, rejected)
	}
	// The snapshot must agree with the overlay and be a DAG.
	snap := d.Snapshot()
	if snap.M() != d.M() || !snap.IsDAG() {
		t.Fatalf("snapshot disagrees: M %d vs %d, DAG %v", snap.M(), d.M(), snap.IsDAG())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := diamond(t)
	if _, err := d.Apply(Batch{Add: [][2]int{{1, 4}}}); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if snap.N() != 5 || snap.M() != 6 || !snap.HasEdge(1, 4) {
		t.Fatalf("snapshot = %d nodes %d edges", snap.N(), snap.M())
	}
}
