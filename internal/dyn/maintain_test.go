package dyn

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
)

// greedyF computes the from-scratch Greedy_All objective on the overlay's
// current snapshot — the quality reference for maintenance.
func greedyF(t *testing.T, d *Dynamic, k int) float64 {
	t.Helper()
	m, err := flow.NewModel(d.Snapshot(), d.Sources())
	if err != nil {
		t.Fatal(err)
	}
	ev := flow.NewFloat(m)
	filters := core.GreedyAll(ev, k)
	return ev.F(flow.MaskOf(m.N(), filters))
}

func TestMaintainInitialMatchesGreedyAll(t *testing.T) {
	g, root := gen.QuoteLike(1)
	d, err := FromDigraph(g, []int{root})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMaintainer(d, Options{K: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mt.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyInitial {
		t.Fatalf("strategy = %q, want initial", rep.Strategy)
	}
	if want := greedyF(t, d, 8); math.Abs(rep.FAfter-want) > 1e-6*want {
		t.Fatalf("initial F = %v, GreedyAll = %v", rep.FAfter, want)
	}
	if len(rep.Filters) == 0 || len(rep.Filters) > 8 {
		t.Fatalf("filters = %v", rep.Filters)
	}
}

// TestMaintainQualityUnderChurn is the acceptance criterion: on a churned
// Twitter-style graph, incremental maintenance must stay within 1% of
// from-scratch Greedy_All.
func TestMaintainQualityUnderChurn(t *testing.T) {
	const k = 10
	g, root := gen.TwitterLike(0.02, 1) // ≈2K nodes: CI-sized, same shape
	d, err := FromDigraph(g, []int{root})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMaintainer(d, Options{K: k}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}

	stream := gen.TwitterChurn(g, 8, 0.01, 2)
	incremental := 0
	for i, mu := range stream {
		if _, err := mt.Apply(Batch{Add: mu.Add, Remove: mu.Remove}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		rep, err := mt.Maintain(context.Background())
		if err != nil {
			t.Fatalf("maintain %d: %v", i, err)
		}
		if rep.Strategy == StrategyIncremental {
			incremental++
		}
		want := greedyF(t, d, k)
		if rep.FAfter < 0.99*want {
			t.Fatalf("batch %d (%s): F = %v below 99%% of GreedyAll's %v",
				i, rep.Strategy, rep.FAfter, want)
		}
		if math.Abs(rep.FAfter-mt.Objective()) > 1e-6*(1+want) {
			t.Fatalf("report F %v disagrees with state %v", rep.FAfter, mt.Objective())
		}
	}
	if incremental == 0 {
		t.Fatal("no batch took the incremental path; drift bound miscalibrated")
	}
}

func TestMaintainDriftFallback(t *testing.T) {
	g, root := gen.RandomDAG(300, 0.02, 3)
	d, err := FromDigraph(g, []int{root})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMaintainer(d, Options{K: 5, MaxDrift: 1e-9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}
	stream := gen.TwitterChurn(g, 1, 0.05, 4)
	if _, err := mt.Apply(Batch{Add: stream[0].Add, Remove: stream[0].Remove}); err != nil {
		t.Fatal(err)
	}
	rep, err := mt.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyRecompute {
		t.Fatalf("strategy = %q, want recompute under a zero drift bound", rep.Strategy)
	}
	if want := greedyF(t, d, 5); math.Abs(rep.FAfter-want) > 1e-6*(1+want) {
		t.Fatalf("recompute F = %v, GreedyAll = %v", rep.FAfter, want)
	}
}

func TestMaintainResyncAfterMissedBatch(t *testing.T) {
	g, root := gen.RandomDAG(200, 0.02, 5)
	d, err := FromDigraph(g, []int{root})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMaintainer(d, Options{K: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Mutate the overlay directly, bypassing the maintainer.
	stream := gen.TwitterChurn(g, 1, 0.02, 6)
	if _, err := d.Apply(Batch{Add: stream[0].Add, Remove: stream[0].Remove}); err != nil {
		t.Fatal(err)
	}
	rep, err := mt.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyRecompute {
		t.Fatalf("strategy = %q, want recompute after a missed batch", rep.Strategy)
	}
	if want := greedyF(t, d, 4); math.Abs(rep.FAfter-want) > 1e-6*(1+want) {
		t.Fatalf("resynced F = %v, GreedyAll = %v", rep.FAfter, want)
	}
}

// TestRejectedBatchLeavesFlowStateUntouched is the satellite's second half:
// after a rejected batch the maintained flow state must be exactly as
// before, and the next Maintain must still take the incremental path.
func TestRejectedBatchLeavesFlowStateUntouched(t *testing.T) {
	d := diamond(t)
	mt, err := NewMaintainer(d, Options{K: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}
	fBefore := mt.Objective()
	filtersBefore := mt.Filters()
	ordBefore := d.Order()

	if _, err := mt.Apply(Batch{Add: [][2]int{{1, 2}, {4, 1}}}); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if got := mt.Objective(); got != fBefore {
		t.Fatalf("objective moved across a rejected batch: %v → %v", fBefore, got)
	}
	if got := mt.Filters(); len(got) != len(filtersBefore) {
		t.Fatalf("filters moved across a rejected batch: %v → %v", filtersBefore, got)
	}
	for i := range ordBefore {
		if d.OrdOf(i) != ordBefore[i] {
			t.Fatalf("order moved across a rejected batch")
		}
	}
	rep, err := mt.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyIncremental {
		t.Fatalf("strategy = %q after rejected batch, want incremental", rep.Strategy)
	}
	if rep.Delta != 0 || len(rep.Added) != 0 || len(rep.Removed) != 0 {
		t.Fatalf("maintenance after a no-op: %+v", rep)
	}
}

func TestMaintainReportsMoves(t *testing.T) {
	// Start from a chain where node 1 is the only junction, then graft a
	// much better junction and check the report names the move.
	b := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}
	g, err := FromDigraph(graph.MustFromEdges(5, b), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMaintainer(g, Options{K: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mt.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Filters) != 1 || rep.Filters[0] != 3 {
		t.Fatalf("initial filters = %v, want [3]", rep.Filters)
	}
	// Grow a wide fan under node 4 and a second path into it: node 4
	// becomes the dominant junction.
	batch := Batch{AddNodes: 6, Add: [][2]int{{2, 4}, {4, 5}, {4, 6}, {4, 7}, {4, 8}, {4, 9}, {4, 10}}}
	if _, err := mt.Apply(batch); err != nil {
		t.Fatal(err)
	}
	rep, err = mt.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Filters) != 1 || rep.Filters[0] != 4 {
		t.Fatalf("maintained filters = %v, want [4] (strategy %s)", rep.Filters, rep.Strategy)
	}
	if rep.Strategy == StrategyIncremental {
		if len(rep.Added) != 1 || rep.Added[0] != 4 || len(rep.Removed) != 1 || rep.Removed[0] != 3 {
			t.Fatalf("moves = +%v −%v, want +[4] −[3]", rep.Added, rep.Removed)
		}
	}
	if rep.Delta <= 0 {
		t.Fatalf("delta = %v, want positive after the graph grew a junction", rep.Delta)
	}
}

func TestMaintainSetK(t *testing.T) {
	g, root := gen.QuoteLike(2)
	d, err := FromDigraph(g, []int{root})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMaintainer(d, Options{K: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := mt.SetK(3); err != nil {
		t.Fatal(err)
	}
	rep, err := mt.Maintain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Filters) > 3 {
		t.Fatalf("filters = %v after shrinking K to 3", rep.Filters)
	}
	if rep.Strategy != StrategyRecompute {
		t.Fatalf("strategy = %q, want recompute when the budget shrinks", rep.Strategy)
	}
}

// TestMaintainParallelismDeterministic checks that the initial placement
// and recompute fallback with parallel Greedy_All produce exactly the
// serial placement.
func TestMaintainParallelismDeterministic(t *testing.T) {
	build := func(par int) []int {
		g, root := gen.QuoteLike(3)
		d, err := FromDigraph(g, []int{root})
		if err != nil {
			t.Fatal(err)
		}
		mt, err := NewMaintainer(d, Options{K: 6, Parallelism: par}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := mt.Maintain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Filters
	}
	serial := build(1)
	parallel := build(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel maintainer placed %v, serial %v", parallel, serial)
	}
}

// TestMaintainerPlanTracksOverlay is the plan-splicing integration check:
// across a churn stream routed through the maintainer, the shared
// splicer's plan must describe exactly the overlay's current graph — same
// shape and bit-identical evaluator observables as a from-scratch model —
// and the bulk of the batches must take the splice path.
func TestMaintainerPlanTracksOverlay(t *testing.T) {
	g, root := gen.RandomDAG(400, 0.015, 11)
	d, err := FromDigraph(g, []int{root})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMaintainer(d, Options{K: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Maintain(context.Background()); err != nil {
		t.Fatal(err)
	}

	check := func(round int) {
		t.Helper()
		p := mt.Splicer().Plan()
		ref, err := flow.NewModel(d.Snapshot(), d.Sources())
		if err != nil {
			t.Fatalf("round %d: reference model: %v", round, err)
		}
		refPlan := ref.Plan()
		if p.N() != refPlan.N() || p.M() != refPlan.M() ||
			p.Levels() != refPlan.Levels() || p.MaxWidth() != refPlan.MaxWidth() {
			t.Fatalf("round %d: plan shape (n=%d m=%d levels=%d width=%d) != reference (n=%d m=%d levels=%d width=%d)",
				round, p.N(), p.M(), p.Levels(), p.MaxWidth(),
				refPlan.N(), refPlan.M(), refPlan.Levels(), refPlan.MaxWidth())
		}
		mp, err := flow.NewModelFromPlan(p, d.Sources())
		if err != nil {
			t.Fatalf("round %d: model over spliced plan: %v", round, err)
		}
		got, want := flow.NewFloat(mp), flow.NewFloat(ref)
		if gp, wp := got.Phi(nil), want.Phi(nil); gp != wp {
			t.Fatalf("round %d: phi over spliced plan = %v, from scratch = %v", round, gp, wp)
		}
		fm := flow.MaskOf(mp.N(), mt.Filters())
		gi, wi := got.Impacts(fm), want.Impacts(fm)
		for v := range gi {
			if gi[v] != wi[v] {
				t.Fatalf("round %d: impact[%d] over spliced plan = %v, from scratch = %v", round, v, gi[v], wi[v])
			}
		}
		gv, gg := got.ArgmaxImpact(fm, fm)
		wv, wg := want.ArgmaxImpact(fm, fm)
		if gv != wv || gg != wg {
			t.Fatalf("round %d: argmax over spliced plan = (%d, %v), from scratch = (%d, %v)", round, gv, gg, wv, wg)
		}
	}
	check(0)

	stream := gen.TwitterChurn(g, 12, 0.01, 12)
	for i, mu := range stream {
		if _, err := mt.Apply(Batch{Add: mu.Add, Remove: mu.Remove}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if _, err := mt.Maintain(context.Background()); err != nil {
			t.Fatalf("maintain %d: %v", i, err)
		}
		check(i + 1)
	}
	splices, _ := mt.Splicer().Counters()
	if splices == 0 {
		t.Fatal("no batch took the splice path; threshold miscalibrated for 1% churn")
	}
}

// TestMaintainerSharedSplicer checks the server wiring contract: a
// maintainer built over an externally supplied splicer repairs that
// splicer's plan in place rather than creating its own.
func TestMaintainerSharedSplicer(t *testing.T) {
	d := diamond(t)
	sp := flow.NewSplicer(d, nil, flow.SpliceOptions{})
	mt, err := NewMaintainer(d, Options{K: 2, Splicer: sp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Splicer() != sp {
		t.Fatal("maintainer did not adopt the supplied splicer")
	}
	if _, err := mt.Apply(Batch{AddNodes: 1, Add: [][2]int{{4, 5}}}); err != nil {
		t.Fatal(err)
	}
	if got := sp.Plan().N(); got != d.N() {
		t.Fatalf("shared splicer plan has n = %d, overlay has %d", got, d.N())
	}
}
