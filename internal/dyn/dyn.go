// Package dyn turns the repo's frozen communication graphs into evolving
// ones. The paper's motivating networks (Twitter followers, memetracker
// quote links, citation graphs) are streams: edges appear and disappear
// continuously, yet graph.Digraph is immutable, so before this package any
// edge change forced a full re-upload and a from-scratch placement run.
//
// Dynamic is a mutable overlay over the same node-id space: batched edge
// insertions and deletions plus node additions, with the topological order
// maintained incrementally in Pearce–Kelly style (ACM JEA 2006) so that a
// cycle-creating insertion is detected — and rejected with a typed error —
// in time proportional to the affected region between the edge's endpoints
// rather than the whole graph. Batches are atomic: a rejected batch leaves
// the edge set AND the maintained topological order exactly as they were.
//
// Maintainer (maintain.go) keeps a filter placement fresh across mutation
// batches: it warm-starts from the previous filter set and repairs it over
// dirty-cone incremental state (flow.Incremental) — the Φ/suffix/gain
// recomputation is cone-bounded while candidate selection is a plain O(n)
// scan over the cached gains — falling back to a full GreedyAllCtx
// recompute when the accumulated drift bound is exceeded.
package dyn

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Typed mutation errors. Apply wraps them with edge/node detail, so test
// with errors.Is.
var (
	// ErrCycle reports an insertion that would create a directed cycle.
	ErrCycle = errors.New("dyn: edge would create a cycle")
	// ErrEdgeExists reports an insertion of an already-present edge.
	ErrEdgeExists = errors.New("dyn: edge already present")
	// ErrEdgeMissing reports a removal of an absent edge.
	ErrEdgeMissing = errors.New("dyn: edge not present")
	// ErrBadNode reports a node id outside the (post-growth) node range, a
	// self-loop, or a negative AddNodes count.
	ErrBadNode = errors.New("dyn: bad node")
	// ErrPinnedSource reports an insertion into a designated source node,
	// which would break the propagation model (sources must keep in-degree
	// zero).
	ErrPinnedSource = errors.New("dyn: edge into pinned source")
)

// CycleError carries the offending edge of a rejected insertion. It
// satisfies errors.Is(err, ErrCycle).
type CycleError struct {
	U, V int
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("dyn: edge (%d,%d) would create a cycle", e.U, e.V)
}

// Is makes errors.Is(err, ErrCycle) true for any CycleError.
func (e *CycleError) Is(target error) bool { return target == ErrCycle }

// Batch is one atomic group of mutations. Nodes are added first (ids
// n, n+1, …, n+AddNodes−1), then removals are applied, then insertions, so
// an insertion may both reference a brand-new node and rely on slack opened
// by a removal in the same batch. If any mutation is invalid the whole
// batch is rolled back.
type Batch struct {
	// AddNodes appends this many fresh isolated nodes.
	AddNodes int `json:"add_nodes,omitempty"`
	// Add lists directed edges (u, v) to insert.
	Add [][2]int `json:"add,omitempty"`
	// Remove lists directed edges (u, v) to delete.
	Remove [][2]int `json:"remove,omitempty"`
}

// Empty reports whether the batch mutates nothing.
func (b Batch) Empty() bool {
	return b.AddNodes == 0 && len(b.Add) == 0 && len(b.Remove) == 0
}

// ApplyResult summarizes a committed batch, including the dirty seeds the
// flow layer needs: recomputation of multiplicity state can be confined to
// descendants of DirtyFwd and ancestors of DirtyBwd instead of the whole
// graph.
type ApplyResult struct {
	NodesAdded   int `json:"nodes_added"`
	EdgesAdded   int `json:"edges_added"`
	EdgesRemoved int `json:"edges_removed"`
	// FirstNewNode is the id of the first appended node, -1 when none.
	FirstNewNode int `json:"first_new_node"`
	// DirtyFwd lists the deduplicated heads v of changed edges (u, v):
	// received-copy counts are stale only for them and their descendants.
	DirtyFwd []int `json:"-"`
	// DirtyBwd lists the deduplicated tails u of changed edges: suffix
	// amplification is stale only for them and their ancestors.
	DirtyBwd []int `json:"-"`
	// Reordered counts nodes whose topological position moved.
	Reordered int `json:"reordered"`
}

// Dynamic is a mutable DAG overlay. It is not safe for concurrent use;
// callers serialize access (the fpd registry guards each entry with a
// mutex).
type Dynamic struct {
	out, in [][]int
	ord     []int // ord[v] = position of v in the maintained topo order
	pinned  []bool
	sources []int
	edges   int
	gen     uint64
}

// FromDigraph builds a Dynamic overlay from an immutable DAG. sources
// designates the information origins (empty means every in-degree-0 node);
// they are pinned: insertions targeting a source are rejected, so the
// overlay always remains a valid propagation model for flow.NewModel.
// Returns graph.ErrCyclic for cyclic inputs.
func FromDigraph(g *graph.Digraph, sources []int) (*Dynamic, error) {
	rank, err := g.TopoRank()
	if err != nil {
		return nil, err
	}
	n := g.N()
	if len(sources) == 0 {
		sources = g.Sources()
	}
	d := &Dynamic{
		out:    make([][]int, n),
		in:     make([][]int, n),
		ord:    rank,
		pinned: make([]bool, n),
		edges:  g.M(),
	}
	for v := 0; v < n; v++ {
		d.out[v] = append([]int(nil), g.Out(v)...)
		d.in[v] = append([]int(nil), g.In(v)...)
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("%w: source %d outside [0,%d)", ErrBadNode, s, n)
		}
		if len(d.in[s]) != 0 {
			return nil, fmt.Errorf("%w: source %d has in-degree %d", ErrBadNode, s, len(d.in[s]))
		}
		d.pinned[s] = true
	}
	d.sources = append([]int(nil), sources...)
	return d, nil
}

// N returns the current node count.
func (d *Dynamic) N() int { return len(d.ord) }

// M returns the current edge count.
func (d *Dynamic) M() int { return d.edges }

// Out returns the out-neighbors of v in arbitrary order. The slice aliases
// internal storage and is invalidated by the next Apply.
func (d *Dynamic) Out(v int) []int { return d.out[v] }

// In returns the in-neighbors of v in arbitrary order. The slice aliases
// internal storage and is invalidated by the next Apply.
func (d *Dynamic) In(v int) []int { return d.in[v] }

// OrdOf returns the position of v in the maintained topological order.
func (d *Dynamic) OrdOf(v int) int { return d.ord[v] }

// Order returns ord[v] for every node as a fresh slice; it is always a
// valid topological order of the current edge set.
func (d *Dynamic) Order() []int { return append([]int(nil), d.ord...) }

// Gen returns the mutation generation, incremented by every committed
// batch. Consumers caching derived state compare generations to detect
// missed batches.
func (d *Dynamic) Gen() uint64 { return d.gen }

// Sources returns the pinned source nodes.
func (d *Dynamic) Sources() []int { return append([]int(nil), d.sources...) }

// IsSource reports whether v is a pinned source.
func (d *Dynamic) IsSource(v int) bool { return d.pinned[v] }

// HasEdge reports whether (u, v) is currently present.
func (d *Dynamic) HasEdge(u, v int) bool {
	if u < 0 || u >= len(d.ord) || v < 0 || v >= len(d.ord) {
		return false
	}
	// Scan the smaller endpoint list.
	if len(d.out[u]) <= len(d.in[v]) {
		for _, w := range d.out[u] {
			if w == v {
				return true
			}
		}
		return false
	}
	for _, w := range d.in[v] {
		if w == u {
			return true
		}
	}
	return false
}

// Snapshot materializes the current edge set as an immutable Digraph
// (labels are not carried). Cost is O(n + m log m); use it for
// interoperating with the placement algorithms and for serving reads.
func (d *Dynamic) Snapshot() *graph.Digraph {
	b := graph.NewBuilder(len(d.ord))
	for u := range d.out {
		for _, v := range d.out[u] {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// undoLog records enough to restore a Dynamic to its pre-batch state: ord
// saves are replayed in reverse so the earliest save per node wins.
type undoLog struct {
	nodesAdded int
	added      [][2]int // edges appended (newest last)
	removed    [][2]int // edges deleted (newest last)
	ordNode    []int
	ordVal     []int
}

// Apply commits a batch atomically. On any error — bad node id, self-loop,
// duplicate insertion, missing removal, edge into a pinned source, or a
// cycle-creating insertion — every already-applied mutation of the batch is
// rolled back, including Pearce–Kelly order shifts, and the error is
// returned (cycle rejections satisfy errors.Is(err, ErrCycle)).
func (d *Dynamic) Apply(b Batch) (ApplyResult, error) {
	n := len(d.ord)
	if b.AddNodes < 0 {
		return ApplyResult{}, fmt.Errorf("%w: negative AddNodes %d", ErrBadNode, b.AddNodes)
	}
	n2 := n + b.AddNodes

	// Precheck everything that doesn't depend on reachability, so most
	// rejections cost nothing to roll back.
	seen := make(map[[2]int]bool, len(b.Add)+len(b.Remove))
	for _, e := range b.Add {
		u, v := e[0], e[1]
		switch {
		case u < 0 || u >= n2 || v < 0 || v >= n2:
			return ApplyResult{}, fmt.Errorf("%w: edge (%d,%d) outside [0,%d)", ErrBadNode, u, v, n2)
		case u == v:
			return ApplyResult{}, fmt.Errorf("%w: self-loop at %d", ErrBadNode, u)
		case v < n && d.pinned[v]:
			return ApplyResult{}, fmt.Errorf("%w: (%d,%d) targets source %d", ErrPinnedSource, u, v, v)
		case d.HasEdge(u, v):
			return ApplyResult{}, fmt.Errorf("%w: (%d,%d)", ErrEdgeExists, u, v)
		case seen[e]:
			return ApplyResult{}, fmt.Errorf("%w: (%d,%d) listed twice", ErrEdgeExists, u, v)
		}
		seen[e] = true
	}
	for _, e := range b.Remove {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return ApplyResult{}, fmt.Errorf("%w: edge (%d,%d) outside [0,%d)", ErrBadNode, u, v, n)
		}
		if !d.HasEdge(u, v) {
			return ApplyResult{}, fmt.Errorf("%w: (%d,%d)", ErrEdgeMissing, u, v)
		}
		if seen[e] {
			return ApplyResult{}, fmt.Errorf("%w: (%d,%d) listed twice", ErrEdgeMissing, u, v)
		}
		seen[e] = true
	}

	undo := &undoLog{nodesAdded: b.AddNodes}
	for i := 0; i < b.AddNodes; i++ {
		d.out = append(d.out, nil)
		d.in = append(d.in, nil)
		d.ord = append(d.ord, len(d.ord))
		d.pinned = append(d.pinned, false)
	}
	for _, e := range b.Remove {
		d.removeEdge(e[0], e[1])
		undo.removed = append(undo.removed, e)
	}
	for _, e := range b.Add {
		if err := d.insertEdge(e[0], e[1], undo); err != nil {
			d.rollback(undo)
			return ApplyResult{}, err
		}
		undo.added = append(undo.added, e)
	}

	d.edges += len(b.Add) - len(b.Remove)
	d.gen++
	res := ApplyResult{
		NodesAdded:   b.AddNodes,
		EdgesAdded:   len(b.Add),
		EdgesRemoved: len(b.Remove),
		FirstNewNode: -1,
		Reordered:    len(undo.ordNode),
	}
	if b.AddNodes > 0 {
		res.FirstNewNode = n
	}
	res.DirtyFwd, res.DirtyBwd = dirtySeeds(b)
	return res, nil
}

// dirtySeeds deduplicates the heads (forward seeds) and tails (backward
// seeds) of every changed edge.
func dirtySeeds(b Batch) (fwd, bwd []int) {
	fs := make(map[int]bool, len(b.Add)+len(b.Remove))
	bs := make(map[int]bool, len(b.Add)+len(b.Remove))
	for _, es := range [][][2]int{b.Add, b.Remove} {
		for _, e := range es {
			bs[e[0]] = true
			fs[e[1]] = true
		}
	}
	for v := range fs {
		fwd = append(fwd, v)
	}
	for v := range bs {
		bwd = append(bwd, v)
	}
	sort.Ints(fwd)
	sort.Ints(bwd)
	return fwd, bwd
}

// removeEdge swap-deletes (u, v) from both adjacency lists. The edge is
// known to exist. Deletions never invalidate the maintained order.
func (d *Dynamic) removeEdge(u, v int) {
	d.out[u] = swapOut(d.out[u], v)
	d.in[v] = swapOut(d.in[v], u)
}

func swapOut(adj []int, x int) []int {
	for i, w := range adj {
		if w == x {
			last := len(adj) - 1
			adj[i] = adj[last]
			return adj[:last]
		}
	}
	panic("dyn: edge missing from adjacency")
}

// insertEdge is the Pearce–Kelly insertion: when ord[u] > ord[v] it
// discovers the affected region between the endpoints, rejects the edge if
// v reaches u, and otherwise compacts ancestors-of-u before
// descendants-of-v into the same index slots, logging prior positions for
// rollback.
func (d *Dynamic) insertEdge(u, v int, undo *undoLog) error {
	if d.ord[u] > d.ord[v] {
		fwd, hitsU := d.forwardFrom(v, d.ord[u], u)
		if hitsU {
			return &CycleError{U: u, V: v}
		}
		bwd := d.backwardFrom(u, d.ord[v])
		d.reorder(bwd, fwd, undo)
	}
	d.out[u] = append(d.out[u], v)
	d.in[v] = append(d.in[v], u)
	return nil
}

// forwardFrom collects nodes reachable from start with order index ≤ ub,
// reporting whether target was reached.
func (d *Dynamic) forwardFrom(start, ub, target int) ([]int, bool) {
	seen := map[int]bool{start: true}
	stack := []int{start}
	var visited []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited = append(visited, x)
		for _, w := range d.out[x] {
			if w == target {
				return nil, true
			}
			if !seen[w] && d.ord[w] <= ub {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return visited, false
}

// backwardFrom collects nodes that reach start with order index ≥ lb.
func (d *Dynamic) backwardFrom(start, lb int) []int {
	seen := map[int]bool{start: true}
	stack := []int{start}
	var visited []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited = append(visited, x)
		for _, w := range d.in[x] {
			if !seen[w] && d.ord[w] >= lb {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return visited
}

// reorder reassigns the affected region's order indices — ancestors of u
// first, then descendants of v, each group keeping its internal relative
// order — logging every prior position.
func (d *Dynamic) reorder(deltaB, deltaF []int, undo *undoLog) {
	byOrd := func(s []int) {
		sort.Slice(s, func(i, j int) bool { return d.ord[s[i]] < d.ord[s[j]] })
	}
	byOrd(deltaB)
	byOrd(deltaF)
	nodes := append(append([]int(nil), deltaB...), deltaF...)
	slots := make([]int, len(nodes))
	for i, x := range nodes {
		slots[i] = d.ord[x]
	}
	sort.Ints(slots)
	for i, x := range nodes {
		if d.ord[x] != slots[i] {
			undo.ordNode = append(undo.ordNode, x)
			undo.ordVal = append(undo.ordVal, d.ord[x])
			d.ord[x] = slots[i]
		}
	}
}

// rollback restores the pre-batch state: un-append inserted edges (newest
// first, so tails pop correctly), restore order indices in reverse (the
// earliest save per node is applied last), re-append removed edges, and
// truncate grown arrays.
func (d *Dynamic) rollback(undo *undoLog) {
	for i := len(undo.added) - 1; i >= 0; i-- {
		u, v := undo.added[i][0], undo.added[i][1]
		d.out[u] = d.out[u][:len(d.out[u])-1]
		d.in[v] = d.in[v][:len(d.in[v])-1]
	}
	for i := len(undo.ordNode) - 1; i >= 0; i-- {
		d.ord[undo.ordNode[i]] = undo.ordVal[i]
	}
	for i := len(undo.removed) - 1; i >= 0; i-- {
		u, v := undo.removed[i][0], undo.removed[i][1]
		d.out[u] = append(d.out[u], v)
		d.in[v] = append(d.in[v], u)
	}
	if undo.nodesAdded > 0 {
		n := len(d.ord) - undo.nodesAdded
		d.out = d.out[:n]
		d.in = d.in[:n]
		d.ord = d.ord[:n]
		d.pinned = d.pinned[:n]
	}
}
