package dyn

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/obs"
)

// Options configures a Maintainer. Zero values pick the documented
// defaults.
type Options struct {
	// K is the filter budget (required, ≥ 1).
	K int
	// MaxDrift is the fraction of the graph's propagation state that may be
	// recomputed across batches before Maintain abandons incremental repair
	// and falls back to a from-scratch core.Place greedy-all run. The unit
	// is dirty-cone node visits per graph node; default 0.5.
	MaxDrift float64
	// SwapLimit bounds the filter-swap rounds of one incremental repair;
	// default 4.
	SwapLimit int
	// MinGainFrac is the relative objective improvement below which repair
	// stops; default 1e-9.
	MinGainFrac float64
	// Parallelism bounds the worker goroutines of the Greedy_All runs (the
	// initial placement and the drift fallback); ≤ 1 is serial. Placements
	// are bit-for-bit identical at any setting (see core.Place).
	Parallelism int
	// Splicer, when non-nil, is the plan splicer the Maintainer keeps in
	// sync with the overlay (the server registry shares one splicer between
	// the maintainer and the placement path). It must be built over the
	// same overlay. When nil, the Maintainer creates its own.
	Splicer *flow.Splicer
}

func (o Options) withDefaults() Options {
	if o.MaxDrift <= 0 {
		o.MaxDrift = 0.5
	}
	if o.SwapLimit <= 0 {
		o.SwapLimit = 4
	}
	if o.MinGainFrac <= 0 {
		o.MinGainFrac = 1e-9
	}
	return o
}

// Maintain strategies reported by Report.Strategy.
const (
	// StrategyInitial is the first placement on a fresh Maintainer.
	StrategyInitial = "initial"
	// StrategyIncremental repaired the previous placement in place.
	StrategyIncremental = "incremental"
	// StrategyRecompute fell back to a full GreedyAllCtx run (drift bound
	// exceeded, or the Maintainer lost sync with the overlay).
	StrategyRecompute = "recompute"
)

// Report describes what one Maintain call did.
type Report struct {
	Strategy string `json:"strategy"`
	K        int    `json:"k"`
	// Filters is the refreshed placement, ascending.
	Filters []int `json:"filters"`
	// FBefore is the objective of the previous placement evaluated on the
	// CURRENT graph; FAfter the refreshed placement's objective. Delta is
	// their difference — what maintenance recovered.
	FBefore float64 `json:"f_before"`
	FAfter  float64 `json:"f_after"`
	Delta   float64 `json:"delta"`
	// PhiEmpty, MaxF and FRatio are the paper's report quantities on the
	// current graph.
	PhiEmpty float64 `json:"phi_empty"`
	MaxF     float64 `json:"max_f"`
	FRatio   float64 `json:"fr"`
	// Added and Removed list which filters moved.
	Added   []int `json:"added,omitempty"`
	Removed []int `json:"removed,omitempty"`
	// Swaps counts accepted swap rounds; TouchedForward/TouchedBackward
	// count dirty-cone node visits since the previous Maintain.
	Swaps           int `json:"swaps"`
	TouchedForward  int `json:"touched_forward"`
	TouchedBackward int `json:"touched_backward"`
}

// Maintainer keeps a filter placement fresh on a mutating graph. It owns
// three incremental flow states over the same overlay — the empty-filter
// state (for Φ(∅,V)), the all-filters state (for F(V), the Filter-Ratio
// denominator) and the current placement's state — each repaired per batch
// within the dirty cone only. Maintain then fixes the placement itself:
// top-up to the budget, then bounded weakest-filter swaps with exact
// objective verification, reverting any swap that does not improve F. When
// accumulated drift exceeds Options.MaxDrift, it recomputes the placement
// from scratch with the paper's Greedy_All instead.
//
// A Maintainer supports only deterministic (unweighted) models. It is not
// safe for concurrent use.
type Maintainer struct {
	d    *Dynamic
	opts Options

	base *flow.Incremental // no filters: Φ(∅,·)
	full *flow.Incremental // all non-source filters: F(V)
	cur  *flow.Incremental // the maintained placement

	// splicer keeps an execution plan spliced alongside the overlay, so
	// full re-initializations (Reinit after missed batches) and recompute
	// placements run on the flat plan kernels instead of per-node scalar
	// sweeps, and so the server can reuse the repaired plan for
	// placements without rebuilding it from a snapshot.
	splicer *flow.Splicer

	lastGen   uint64
	placed    bool
	touchedF  int
	touchedB  int
	lastStats flow.IncStats
}

// NewMaintainer builds a Maintainer over the overlay. The first Maintain
// call computes the initial placement with a full Greedy_All run (strategy
// "initial"); pass the previous filter set in initial to warm-start from an
// existing placement instead.
func NewMaintainer(d *Dynamic, opts Options, initial []int) (*Maintainer, error) {
	opts = opts.withDefaults()
	if opts.K < 1 {
		return nil, fmt.Errorf("dyn: maintainer budget K = %d, want ≥ 1", opts.K)
	}
	n := d.N()
	for _, v := range initial {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: initial filter %d outside [0,%d)", ErrBadNode, v, n)
		}
		if d.IsSource(v) {
			// A source filter is meaningless (sources emit one copy) and
			// would corrupt the budget: the engine refuses to clear it, so
			// repair would grow the placement past K around it.
			return nil, fmt.Errorf("%w: initial filter %d is a source", ErrBadNode, v)
		}
	}
	sources := d.Sources()
	all := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !d.IsSource(v) {
			all = append(all, v)
		}
	}
	sp := opts.Splicer
	if sp == nil {
		sp = flow.NewSplicer(d, nil, flow.SpliceOptions{})
	}
	p := sp.Plan()
	mt := &Maintainer{
		d:       d,
		opts:    opts,
		splicer: sp,
		base:    flow.NewIncrementalWith(d, sources, nil, p),
		full:    flow.NewIncrementalWith(d, sources, all, p),
		cur:     flow.NewIncrementalWith(d, sources, initial, p),
	}
	mt.placed = len(initial) > 0
	mt.lastGen = d.Gen()
	mt.lastStats = mt.cur.Stats()
	return mt, nil
}

// K returns the maintenance budget.
func (mt *Maintainer) K() int { return mt.opts.K }

// SetK changes the budget. Shrinking takes effect at the next Maintain
// (weakest filters are dropped); growing is a plain top-up.
func (mt *Maintainer) SetK(k int) error {
	if k < 1 {
		return fmt.Errorf("dyn: maintainer budget K = %d, want ≥ 1", k)
	}
	mt.opts.K = k
	return nil
}

// Graph returns the underlying overlay.
func (mt *Maintainer) Graph() *Dynamic { return mt.d }

// Filters returns the current placement, ascending.
func (mt *Maintainer) Filters() []int { return mt.cur.FilterNodes() }

// Objective returns F(A) of the current placement on the current graph.
func (mt *Maintainer) Objective() float64 { return mt.base.Phi() - mt.cur.Phi() }

// Apply routes a batch through the overlay and, on success, repairs the
// three flow states within the dirty cone. A rejected batch (e.g. a
// cycle-creating edge) leaves both the overlay and all flow state
// untouched.
func (mt *Maintainer) Apply(b Batch) (ApplyResult, error) {
	res, err := mt.d.Apply(b)
	if err != nil {
		return res, err
	}
	if res.NodesAdded > 0 {
		mt.base.Grow(false)
		mt.cur.Grow(false)
		mt.full.Grow(true) // new nodes join the all-filters mask
	}
	mt.base.Update(res.DirtyFwd, res.DirtyBwd)
	mt.full.Update(res.DirtyFwd, res.DirtyBwd)
	mt.cur.Update(res.DirtyFwd, res.DirtyBwd)
	mt.splicer.Apply(res.DirtyFwd, res.DirtyBwd, res.NodesAdded)
	mt.accountDrift()
	mt.lastGen = mt.d.Gen()
	return res, nil
}

// Splicer returns the plan splicer the Maintainer keeps in sync with the
// overlay; Splicer().Plan() is always current after a successful Apply or
// Maintain.
func (mt *Maintainer) Splicer() *flow.Splicer { return mt.splicer }

// accountDrift accumulates the current-state dirty-cone visits since the
// last reading.
func (mt *Maintainer) accountDrift() {
	st := mt.cur.Stats()
	mt.touchedF += st.ForwardVisits - mt.lastStats.ForwardVisits
	mt.touchedB += st.BackwardVisits - mt.lastStats.BackwardVisits
	mt.lastStats = st
}

// Maintain refreshes the placement after one or more Apply calls and
// reports what moved. Strategy selection: the first call places from
// scratch ("initial"); exceeded drift, missed batches (the overlay mutated
// without going through Apply) or a shrunken budget trigger a full
// Greedy_All recompute ("recompute"); otherwise the previous placement is
// repaired in place ("incremental").
func (mt *Maintainer) Maintain(ctx context.Context) (*Report, error) {
	if mt.d.Gen() != mt.lastGen {
		// Missed batches: the cached flow state is unsound. Rebuild the
		// plan once, re-initialize all three flow states on its flat
		// kernels, then recompute the placement below.
		span := obs.TraceFrom(ctx).Begin("plan-rebuild")
		mt.base.Grow(false)
		mt.cur.Grow(false)
		mt.full.Grow(true)
		p := mt.splicer.Rebuild()
		mt.base.ReinitWith(p)
		mt.full.ReinitWith(p)
		mt.cur.ReinitWith(p)
		span.End()
		mt.lastStats = mt.cur.Stats()
		mt.lastGen = mt.d.Gen()
		mt.touchedF = mt.d.N() // force the drift fallback
	}

	prev := mt.cur.FilterNodes()
	rep := &Report{
		K:       mt.opts.K,
		FBefore: mt.Objective(),
	}

	n := mt.d.N()
	drift := float64(mt.touchedF+mt.touchedB) / float64(max(n, 1))
	switch {
	case !mt.placed:
		rep.Strategy = StrategyInitial
	case drift > mt.opts.MaxDrift || len(prev) > mt.opts.K:
		rep.Strategy = StrategyRecompute
	default:
		rep.Strategy = StrategyIncremental
	}

	var err error
	if rep.Strategy == StrategyIncremental {
		err = mt.repair(ctx, rep)
	} else {
		err = mt.recompute(ctx)
	}
	if err != nil {
		return nil, err
	}

	rep.TouchedForward, rep.TouchedBackward = mt.touchedF, mt.touchedB
	// Repair work is not drift: resync the stats baseline instead of
	// accounting it toward the next Maintain's fallback decision.
	mt.touchedF, mt.touchedB = 0, 0
	mt.lastStats = mt.cur.Stats()
	mt.placed = true

	rep.Filters = mt.cur.FilterNodes()
	rep.FAfter = mt.Objective()
	rep.Delta = rep.FAfter - rep.FBefore
	rep.PhiEmpty = mt.base.Phi()
	rep.MaxF = mt.base.Phi() - mt.full.Phi()
	if rep.MaxF > 0 {
		rep.FRatio = min(max(rep.FAfter/rep.MaxF, 0), 1)
	} else {
		rep.FRatio = 1
	}
	rep.Added, rep.Removed = diffSets(prev, rep.Filters)
	return rep, nil
}

// recompute runs the paper's Greedy_All from scratch and swaps the
// resulting placement into the incremental state. The model is stood up
// over the splicer's current plan in O(n+m) — no overlay snapshot, no
// plan rebuild — so the fallback path, too, runs on the flat kernels.
func (mt *Maintainer) recompute(ctx context.Context) error {
	m, err := flow.NewModelFromPlan(mt.splicer.Plan(), mt.d.Sources())
	if err != nil {
		// The spliced plan should always be adoptable; a snapshot build is
		// the conservative fallback if it ever is not.
		m, err = flow.NewModel(mt.d.Snapshot(), mt.d.Sources())
		if err != nil {
			return err
		}
	}
	res, err := core.Place(ctx, flow.NewFloat(m), mt.opts.K, core.Options{
		Strategy:    core.StrategyGreedyAll,
		Parallelism: mt.opts.Parallelism,
	})
	if err != nil {
		return err
	}
	mt.cur = flow.NewIncrementalWith(mt.d, mt.d.Sources(), res.Filters, mt.splicer.Plan())
	mt.lastStats = mt.cur.Stats()
	return nil
}

// repair fixes the previous placement in place: greedy top-up to the
// budget, then at most SwapLimit weakest-filter swaps, each verified
// against the exact objective and reverted when not an improvement.
func (mt *Maintainer) repair(ctx context.Context, rep *Report) error {
	k := mt.opts.K
	floor := mt.opts.MinGainFrac * max(rep.FBefore, 1)

	for len(mt.cur.FilterNodes()) < k {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, gain := mt.cur.ArgmaxGain()
		if v < 0 || gain <= floor {
			break
		}
		mt.cur.SetFilter(v, true)
	}

	for rep.Swaps < mt.opts.SwapLimit {
		if err := ctx.Err(); err != nil {
			return err
		}
		w, gainW := mt.cur.ArgmaxGain()
		if w < 0 || gainW <= floor {
			break
		}
		// Weakest current filter by held-gain proxy: what it presently
		// blocks, scaled by its amplification. The proxy only picks the
		// eviction victim; profitability is verified against the exact
		// objective below and reverted when wrong.
		f, held := -1, 0.0
		for _, c := range mt.cur.FilterNodes() {
			h := mt.cur.HeldGain(c)
			if f < 0 || h < held {
				f, held = c, h
			}
		}
		if f < 0 {
			break
		}
		f0 := mt.Objective()
		mt.cur.SetFilter(f, false)
		w2, g2 := mt.cur.ArgmaxGain()
		if w2 < 0 || g2 <= floor || w2 == f {
			mt.cur.SetFilter(f, true)
			break
		}
		mt.cur.SetFilter(w2, true)
		if f1 := mt.Objective(); f1 <= f0+floor {
			mt.cur.SetFilter(w2, false)
			mt.cur.SetFilter(f, true)
			break
		}
		rep.Swaps++
	}
	return nil
}

// diffSets returns added = b∖a and removed = a∖b for ascending int sets.
func diffSets(a, b []int) (added, removed []int) {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a) || (j < len(b) && b[j] < a[i]):
			added = append(added, b[j])
			j++
		case j == len(b) || a[i] < b[j]:
			removed = append(removed, a[i])
			i++
		default:
			i++
			j++
		}
	}
	return added, removed
}
